#include "data/shard_dataset.h"

#include <stdexcept>

#include "chem/molecule_matrix.h"
#include "chem/smiles.h"

namespace sqvae::data {

ShardDataset::ShardDataset(const std::vector<std::string>& paths,
                           std::size_t matrix_dim)
    : matrix_dim_(matrix_dim) {
  if (matrix_dim_ == 0) {
    throw std::runtime_error("ShardDataset: matrix_dim must be positive");
  }
  if (paths.empty()) {
    throw std::runtime_error("ShardDataset: no shard paths given");
  }
  first_row_.push_back(0);
  for (const std::string& path : paths) {
    std::string error;
    auto reader = ShardReader::open(path, &error);
    if (!reader) {
      throw std::runtime_error("ShardDataset: " + error);
    }
    total_ += reader->size();
    first_row_.push_back(total_);
    shards_.push_back(std::move(*reader));
  }
  // Validate every record up front (parse + size check) so copy_row is
  // infallible afterwards — it runs inside OpenMP regions where a throw
  // would terminate the process. One pass over the corpus at open time;
  // nothing is retained.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    for (std::size_t i = 0; i < shards_[s].size(); ++i) {
      const std::string_view record = shards_[s].smiles(i);
      const auto mol = chem::from_smiles(std::string(record));
      if (!mol) {
        throw std::runtime_error(
            "ShardDataset: " + shards_[s].path() + ": record " +
            std::to_string(i) + " is not parseable SMILES: '" +
            std::string(record) + "'");
      }
      const std::size_t atoms = static_cast<std::size_t>(mol->num_atoms());
      if (atoms > matrix_dim_) {
        throw std::runtime_error(
            "ShardDataset: " + shards_[s].path() + ": record " +
            std::to_string(i) + " has " + std::to_string(atoms) +
            " atoms, exceeding matrix_dim " + std::to_string(matrix_dim_) +
            " ('" + std::string(record) +
            "'); rebuild the shard with moldb_make --max_atoms=" +
            std::to_string(matrix_dim_));
      }
      if (atoms > max_atoms_) max_atoms_ = atoms;
    }
  }
}

std::string_view ShardDataset::smiles(std::size_t row) const {
  // first_row_ is a short ascending prefix-sum list; linear scan beats a
  // binary search for the handful of shards a run typically opens.
  std::size_t s = 0;
  while (s + 1 < first_row_.size() && first_row_[s + 1] <= row) ++s;
  return shards_[s].smiles(row - first_row_[s]);
}

void ShardDataset::copy_row(std::size_t row, double* out) const {
  const std::string_view record = smiles(row);
  const auto mol = chem::from_smiles(std::string(record));
  // Unreachable after the constructor's validation pass; kept as a hard
  // stop rather than silent zero features.
  if (!mol) {
    throw std::runtime_error("ShardDataset: undecodable record at row " +
                             std::to_string(row));
  }
  const std::vector<double> features =
      chem::molecule_to_features(*mol, matrix_dim_);
  for (std::size_t c = 0; c < features.size(); ++c) out[c] = features[c];
}

}  // namespace sqvae::data
