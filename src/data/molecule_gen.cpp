#include "data/molecule_gen.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "chem/rings.h"

namespace sqvae::data {

using chem::BondType;
using chem::Element;
using chem::Molecule;

namespace {

/// Free valence available for new single bonds at atom i, under the
/// element's *default* valence (growth never makes hypervalent atoms).
int free_valence(const Molecule& mol, int i) {
  const int used = static_cast<int>(std::ceil(mol.valence_used(i) - 1e-9));
  return std::max(0, chem::default_valence(mol.atom(i)) - used);
}

Element sample_element(const MoleculeGenConfig& config, sqvae::Rng& rng,
                       bool ring_member) {
  std::vector<double> w = config.element_weights;
  assert(w.size() == chem::kAllElements.size());
  if (ring_member) {
    // Fluorine is monovalent and cannot sit in a ring; oxygen/sulfur are
    // rarer ring members.
    w[3] = 0.0;
    w[2] *= 0.5;
    w[4] *= 0.5;
  }
  return chem::kAllElements[rng.weighted_choice(w)];
}

/// Adds one aromatic ring (5 or 6 atoms, at most one heteroatom) to `mol`.
/// The ring is fused to an existing atom chain via a single bond when the
/// molecule is non-empty. Returns atoms added.
int add_aromatic_ring(Molecule& mol, const MoleculeGenConfig& config,
                      sqvae::Rng& rng, int budget) {
  const int size = rng.bernoulli(0.25) ? 5 : 6;
  if (budget < size) return 0;

  // Attachment point: an existing atom with free valence.
  int attach = -1;
  if (mol.num_atoms() > 0) {
    std::vector<int> candidates;
    for (int i = 0; i < mol.num_atoms(); ++i) {
      if (free_valence(mol, i) >= 1) candidates.push_back(i);
    }
    if (candidates.empty()) return 0;
    attach = candidates[rng.uniform_index(candidates.size())];
  }

  // Ring atoms: carbons with at most one heteroatom. Only pyridine-type N
  // is used: with aromatic bond order 1.5, an aromatic N consumes exactly
  // its valence of 3, whereas aromatic O/S would be over-valent under this
  // arithmetic (lone-pair aromaticity is not modelled — see DESIGN.md).
  std::vector<int> ring;
  const bool hetero = rng.bernoulli(0.35);
  const int hetero_pos = hetero ? rng.uniform_int(0, size - 1) : -1;
  for (int k = 0; k < size; ++k) {
    const Element e = (k == hetero_pos) ? Element::kN : Element::kC;
    ring.push_back(mol.add_atom(e));
  }
  for (int k = 0; k < size; ++k) {
    mol.set_bond(ring[static_cast<std::size_t>(k)],
                 ring[static_cast<std::size_t>((k + 1) % size)],
                 BondType::kAromatic);
  }
  if (attach >= 0) {
    // Attach through an aromatic carbon with a free valence slot
    // (aromatic C uses 3.0 of its 4; N/O/S ring members are full).
    std::vector<int> slots;
    for (int a : ring) {
      if (free_valence(mol, a) >= 1) slots.push_back(a);
    }
    if (!slots.empty()) {
      mol.set_bond(attach, slots[rng.uniform_index(slots.size())],
                   BondType::kSingle);
    }
  }
  (void)config;
  return size;
}

}  // namespace

MoleculeGenConfig qm9_config(int max_atoms) {
  MoleculeGenConfig c;
  c.min_atoms = 4;
  c.max_atoms = max_atoms;
  c.element_weights = {0.72, 0.14, 0.14, 0.0, 0.0};
  c.aromatic_ring_rate = 0.35;  // small molecules: mostly chains
  c.aliphatic_ring_prob = 0.20;
  c.double_bond_prob = 0.20;
  c.triple_bond_prob = 0.04;
  return c;
}

MoleculeGenConfig pdbbind_config(int max_atoms) {
  MoleculeGenConfig c;
  c.min_atoms = 12;
  c.max_atoms = max_atoms;
  c.element_weights = {0.70, 0.12, 0.13, 0.02, 0.03};
  c.aromatic_ring_rate = 1.6;  // drug-like ligands average 1-3 rings
  c.aliphatic_ring_prob = 0.35;
  c.double_bond_prob = 0.12;
  c.triple_bond_prob = 0.01;
  return c;
}

chem::Molecule generate_molecule(const MoleculeGenConfig& config,
                                 sqvae::Rng& rng) {
  assert(config.min_atoms >= 1 && config.min_atoms <= config.max_atoms);
  const int target = rng.uniform_int(config.min_atoms, config.max_atoms);

  Molecule mol;

  // Aromatic rings first (they consume 5-6 atoms each).
  double ring_budget = config.aromatic_ring_rate;
  while (ring_budget > 0.0 && rng.bernoulli(std::min(1.0, ring_budget))) {
    add_aromatic_ring(mol, config, rng, target - mol.num_atoms());
    ring_budget -= 1.0;
  }

  // Seed atom when no ring was placed.
  if (mol.num_atoms() == 0) {
    mol.add_atom(sample_element(config, rng, /*ring_member=*/false));
  }

  // Tree growth: attach new atoms to uniformly chosen atoms with free
  // valence.
  while (mol.num_atoms() < target) {
    std::vector<int> candidates;
    for (int i = 0; i < mol.num_atoms(); ++i) {
      if (free_valence(mol, i) >= 1) candidates.push_back(i);
    }
    if (candidates.empty()) break;  // saturated (e.g. all-F substituents)
    const int parent = candidates[rng.uniform_index(candidates.size())];
    const int child =
        mol.add_atom(sample_element(config, rng, /*ring_member=*/false));
    mol.set_bond(parent, child, BondType::kSingle);
  }

  // Optional aliphatic ring closure: connect two atoms at graph distance
  // >= 3 that both have free valence.
  if (rng.bernoulli(config.aliphatic_ring_prob) && mol.num_atoms() >= 5) {
    std::vector<std::pair<int, int>> pairs;
    for (int a = 0; a < mol.num_atoms(); ++a) {
      if (free_valence(mol, a) < 1) continue;
      for (int b = a + 1; b < mol.num_atoms(); ++b) {
        if (free_valence(mol, b) < 1) continue;
        if (mol.bond_between(a, b) != BondType::kNone) continue;
        // Cheap distance screen: no common neighbor (distance >= 3 gives
        // rings of size >= 4; exact distance check is unnecessary).
        bool share = false;
        for (int u : mol.neighbors(a)) {
          for (int v : mol.neighbors(b)) {
            if (u == v || u == b || v == a) share = true;
          }
        }
        if (!share) pairs.emplace_back(a, b);
      }
    }
    if (!pairs.empty()) {
      const auto [a, b] = pairs[rng.uniform_index(pairs.size())];
      mol.set_bond(a, b, BondType::kSingle);
    }
  }

  // Bond-order upgrades on acyclic single bonds with spare valence on both
  // ends.
  const auto bonds_snapshot = mol.bonds();
  for (const chem::Bond& b : bonds_snapshot) {
    if (b.type != BondType::kSingle) continue;
    const int fa = free_valence(mol, b.a);
    const int fb = free_valence(mol, b.b);
    if (fa >= 2 && fb >= 2 && rng.bernoulli(config.triple_bond_prob)) {
      mol.set_bond(b.a, b.b, BondType::kTriple);
    } else if (fa >= 1 && fb >= 1 && rng.bernoulli(config.double_bond_prob)) {
      mol.set_bond(b.a, b.b, BondType::kDouble);
    }
  }

  assert(chem::is_valid(mol));
  return mol;
}

std::vector<chem::Molecule> generate_molecules(
    const MoleculeGenConfig& config, std::size_t count, sqvae::Rng& rng) {
  std::vector<chem::Molecule> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(generate_molecule(config, rng));
  }
  return out;
}

}  // namespace sqvae::data
