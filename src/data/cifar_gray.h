// Procedural 32x32 grayscale image dataset (CIFAR-10 stand-in).
//
// Fig. 8(b-c) of the paper uses grayscale CIFAR-10 purely to visualise
// high-dimensional reconstruction quality. This generator produces 32x32
// grayscale images in [0, 1] with natural-image-like statistics: a smooth
// low-frequency background (random 2D cosine mixture) plus one of several
// foreground shapes (disc, bar, checker patch, triangle) with soft edges
// and additive noise. Eight shape/texture classes stand in for the ten
// CIFAR categories (DESIGN.md §3).
#pragma once

#include <vector>

#include "data/dataset.h"

namespace sqvae::data {

struct CifarGrayDataset {
  Dataset features;         // count x 1024, values in [0, 1]
  std::vector<int> labels;  // class id per row
};

inline constexpr int kCifarGrayClasses = 8;

/// `count` images, classes cycling through the 8 generators.
CifarGrayDataset make_cifar_gray(std::size_t count, sqvae::Rng& rng);

}  // namespace sqvae::data
