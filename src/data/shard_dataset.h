// Streaming molecule dataset over content-addressed shards.
//
// ShardDataset memory-maps one or more shard files (shard_store.h) and
// serves molecule-matrix feature rows on demand: row r is the r-th record
// across the shard list (records within a shard are in key order, so the
// row order is a pure function of shard contents), decoded SMILES ->
// Molecule -> flattened dim x dim molecule matrix at copy_row time. Peak
// memory is the mmap page cache plus one molecule — never the corpus —
// which is what lets sqvae_train --shards run epochs over
// millions-of-molecule stores.
//
// Determinism: copy_row(r) is a pure function of the shard bytes, so a
// training run fed by a ShardDataset is bit-identical to the same run fed
// by an in-memory Dataset holding the same molecules in the same order
// (tested in data_shard_dataset_test.cpp). Mini-batch shuffling and
// per-sample noise streams are keyed by row index (data/dataset.h
// make_batches + Rng::stream in the trainer), so they are unaffected by
// where the row bytes live.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/shard_store.h"

namespace sqvae::data {

class ShardDataset final : public RowSource {
 public:
  /// Opens and validates every shard, then scans all records with a cheap
  /// lexical atom counter to guarantee each molecule fits the dim x dim
  /// matrix encoding. Throws std::runtime_error with a precise
  /// shard/record message on any open failure or oversize molecule, so
  /// copy_row cannot fail later inside a parallel training region.
  ShardDataset(const std::vector<std::string>& paths, std::size_t matrix_dim);

  std::size_t rows() const override { return total_; }
  std::size_t cols() const override { return matrix_dim_ * matrix_dim_; }
  void copy_row(std::size_t row, double* out) const override;

  std::size_t matrix_dim() const { return matrix_dim_; }
  std::size_t num_shards() const { return shards_.size(); }

  /// Canonical SMILES of row `row` (points into the mapping).
  std::string_view smiles(std::size_t row) const;

  /// Largest heavy-atom count across all records (from the open-time scan).
  std::size_t max_atoms() const { return max_atoms_; }

 private:
  std::vector<ShardReader> shards_;
  std::vector<std::size_t> first_row_;  // prefix sums, size num_shards + 1
  std::size_t total_ = 0;
  std::size_t matrix_dim_ = 0;
  std::size_t max_atoms_ = 0;
};

}  // namespace sqvae::data
