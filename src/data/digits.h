// Procedural 8x8 Digits dataset.
//
// The paper visualises low-dimensional reconstruction with the scikit-learn
// Digits set (8x8 grayscale, intensities 0..16). This generator rasterises
// ten hand-drawn 8x8 glyph templates and perturbs them (sub-pixel shift,
// intensity jitter, pixel noise) to produce an arbitrarily large labelled
// dataset with the same resolution and value range — the reconstruction
// code path is identical to the real dataset's (DESIGN.md §3).
#pragma once

#include <vector>

#include "data/dataset.h"

namespace sqvae::data {

struct DigitsDataset {
  Dataset features;          // count x 64, values in [0, 16]
  std::vector<int> labels;   // digit class per row
};

/// `count` jittered digit images, classes cycling 0..9.
DigitsDataset make_digits(std::size_t count, sqvae::Rng& rng);

/// The clean 8x8 template of digit `d` (0..9), values in [0, 16].
std::vector<double> digit_template(int d);

/// Renders an 8x8 (or any square) image as ASCII for examples/benches.
std::string ascii_image(const std::vector<double>& pixels, std::size_t width,
                        double max_value);

}  // namespace sqvae::data
