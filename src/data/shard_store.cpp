#include "data/shard_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>

namespace sqvae::data {

namespace {

constexpr char kMagic[8] = {'S', 'Q', 'M', 'O', 'L', 'D', 'B', '\n'};
constexpr std::size_t kHeaderSize = 72;
constexpr std::size_t kIndexEntrySize = 28;
constexpr std::uint64_t kFnv64Offset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnv64Prime = 0x100000001b3ull;

std::uint64_t fnv64(std::uint64_t state, const void* bytes, std::size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(bytes);
  for (std::size_t i = 0; i < n; ++i) {
    state ^= p[i];
    state *= kFnv64Prime;
  }
  return state;
}

void put_u32(std::vector<char>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::vector<char>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

void set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

bool write_all(int fd, const char* bytes, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t w = ::write(fd, bytes + done, n - done);
    if (w < 0) return false;
    done += static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// ShardWriter
// ---------------------------------------------------------------------------

ShardWriter::ShardWriter(std::string path, bool dedup)
    : path_(std::move(path)),
      tmp_path_(path_ + ".tmp"),
      dedup_(dedup),
      data_checksum_(kFnv64Offset) {
  fd_ = ::open(tmp_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) return;
  // Header placeholder; finish() overwrites it with the real one.
  const std::vector<char> zeros(kHeaderSize, 0);
  ok_ = write_all(fd_, zeros.data(), zeros.size());
  buffer_.reserve(1 << 20);
}

ShardWriter::~ShardWriter() {
  if (fd_ >= 0) ::close(fd_);
  if (!finished_) std::remove(tmp_path_.c_str());
}

ShardWriter::Insert ShardWriter::insert(const chem::MolHash& key,
                                        std::string_view smiles) {
  if (!ok_ || finished_) return Insert::kError;
  if (smiles.size() > std::numeric_limits<std::uint32_t>::max() ||
      smiles.find('\n') != std::string_view::npos) {
    return Insert::kError;
  }
  if (dedup_ && !seen_.insert(key).second) {
    ++duplicates_;
    return Insert::kDuplicate;
  }
  const std::size_t record_start = buffer_.size();
  put_u32(buffer_, static_cast<std::uint32_t>(smiles.size()));
  buffer_.insert(buffer_.end(), smiles.begin(), smiles.end());
  data_checksum_ = fnv64(data_checksum_, buffer_.data() + record_start,
                         buffer_.size() - record_start);
  index_.push_back(Entry{key, data_size_,
                         static_cast<std::uint32_t>(smiles.size())});
  data_size_ += 4 + smiles.size();
  if (buffer_.size() >= (1u << 20)) {
    ok_ = write_all(fd_, buffer_.data(), buffer_.size());
    buffer_.clear();
  }
  return ok_ ? Insert::kAdded : Insert::kError;
}

bool ShardWriter::finish(std::string* error) {
  if (finished_) {
    set_error(error, "shard writer already finished");
    return false;
  }
  finished_ = true;  // the destructor must not unlink the published file
  auto fail = [&](const std::string& message) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    std::remove(tmp_path_.c_str());
    set_error(error, message);
    return false;
  };
  if (!ok_ || fd_ < 0) return fail("shard writer stream failed: " + tmp_path_);
  if (!buffer_.empty() && !write_all(fd_, buffer_.data(), buffer_.size())) {
    return fail("cannot write data block: " + tmp_path_);
  }
  buffer_.clear();

  std::stable_sort(index_.begin(), index_.end(),
                   [](const Entry& a, const Entry& b) {
                     return a.key < b.key;
                   });
  for (std::size_t i = 1; i < index_.size(); ++i) {
    if (!(index_[i - 1].key < index_[i].key)) {
      // Only reachable through the dedup = false fast path with a caller
      // that violated its uniqueness guarantee.
      return fail("duplicate keys in shard index: " + path_);
    }
  }

  std::vector<char> block;
  block.reserve(index_.size() * kIndexEntrySize);
  for (const Entry& e : index_) {
    put_u64(block, e.key.hi);
    put_u64(block, e.key.lo);
    put_u64(block, e.offset);
    put_u32(block, e.length);
  }
  const std::uint64_t index_checksum =
      fnv64(kFnv64Offset, block.data(), block.size());
  if (!write_all(fd_, block.data(), block.size())) {
    return fail("cannot write index block: " + tmp_path_);
  }

  std::vector<char> header;
  header.reserve(kHeaderSize);
  header.insert(header.end(), kMagic, kMagic + sizeof(kMagic));
  put_u32(header, kShardFormatVersion);
  put_u32(header, 0);  // flags
  put_u64(header, index_.size());
  put_u64(header, kHeaderSize);
  put_u64(header, data_size_);
  put_u64(header, kHeaderSize + data_size_);
  put_u64(header, index_.size() * kIndexEntrySize);
  put_u64(header, data_checksum_);
  put_u64(header, index_checksum);
  if (::lseek(fd_, 0, SEEK_SET) != 0 ||
      !write_all(fd_, header.data(), header.size())) {
    return fail("cannot write header: " + tmp_path_);
  }
  if (::close(fd_) != 0) {
    fd_ = -1;
    return fail("cannot close: " + tmp_path_);
  }
  fd_ = -1;
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    return fail("cannot rename " + tmp_path_ + " -> " + path_);
  }
  return true;
}

// ---------------------------------------------------------------------------
// ShardReader
// ---------------------------------------------------------------------------

ShardReader::ShardReader(ShardReader&& other) noexcept {
  *this = std::move(other);
}

ShardReader& ShardReader::operator=(ShardReader&& other) noexcept {
  if (this != &other) {
    reset();
    path_ = std::move(other.path_);
    map_ = other.map_;
    map_size_ = other.map_size_;
    data_ = other.data_;
    index_ = other.index_;
    count_ = other.count_;
    data_size_ = other.data_size_;
    other.map_ = nullptr;
    other.map_size_ = 0;
    other.data_ = nullptr;
    other.index_ = nullptr;
    other.count_ = 0;
  }
  return *this;
}

ShardReader::~ShardReader() { reset(); }

void ShardReader::reset() {
  if (map_ != nullptr) ::munmap(map_, map_size_);
  map_ = nullptr;
  map_size_ = 0;
  data_ = nullptr;
  index_ = nullptr;
  count_ = 0;
}

std::optional<ShardReader> ShardReader::open(const std::string& path,
                                             std::string* error) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    set_error(error, path + ": cannot open");
    return std::nullopt;
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    set_error(error, path + ": cannot stat");
    return std::nullopt;
  }
  const std::uint64_t file_size = static_cast<std::uint64_t>(st.st_size);
  if (file_size < kHeaderSize) {
    ::close(fd);
    set_error(error, path + ": truncated header (" +
                         std::to_string(file_size) + " bytes, need " +
                         std::to_string(kHeaderSize) + ")");
    return std::nullopt;
  }
  void* map = ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (map == MAP_FAILED) {
    set_error(error, path + ": mmap failed");
    return std::nullopt;
  }
  ShardReader reader;
  reader.path_ = path;
  reader.map_ = map;
  reader.map_size_ = file_size;

  const unsigned char* base = static_cast<const unsigned char*>(map);
  auto reject = [&](const std::string& message) {
    set_error(error, path + ": " + message);
    return std::nullopt;
  };
  if (std::memcmp(base, kMagic, sizeof(kMagic)) != 0) {
    return reject("bad magic (not a molecule shard)");
  }
  const std::uint32_t version = get_u32(base + 8);
  if (version != kShardFormatVersion) {
    return reject("unsupported shard version " + std::to_string(version) +
                  " (this build reads version " +
                  std::to_string(kShardFormatVersion) + ")");
  }
  const std::uint64_t count = get_u64(base + 16);
  const std::uint64_t data_offset = get_u64(base + 24);
  const std::uint64_t data_size = get_u64(base + 32);
  const std::uint64_t index_offset = get_u64(base + 40);
  const std::uint64_t index_size = get_u64(base + 48);
  const std::uint64_t data_checksum = get_u64(base + 56);
  const std::uint64_t index_checksum = get_u64(base + 64);

  if (data_offset != kHeaderSize) return reject("bad data offset");
  if (data_size > file_size - kHeaderSize) {
    return reject("truncated data block");
  }
  if (index_offset != kHeaderSize + data_size) {
    return reject("bad index offset");
  }
  if (count > (file_size - index_offset) / kIndexEntrySize ||
      index_size != count * kIndexEntrySize) {
    return reject("bad index size");
  }
  if (index_offset + index_size != file_size) {
    return reject("file size mismatch (truncated or trailing garbage)");
  }
  const unsigned char* data = base + data_offset;
  const unsigned char* index = base + index_offset;
  if (fnv64(kFnv64Offset, data, data_size) != data_checksum) {
    return reject("data checksum mismatch (corrupt shard)");
  }
  if (fnv64(kFnv64Offset, index, index_size) != index_checksum) {
    return reject("index checksum mismatch (corrupt shard)");
  }
  chem::MolHash previous;
  for (std::uint64_t i = 0; i < count; ++i) {
    const unsigned char* e = index + i * kIndexEntrySize;
    const chem::MolHash key{get_u64(e), get_u64(e + 8)};
    if (i > 0 && !(previous < key)) {
      return reject("index keys not strictly increasing at entry " +
                    std::to_string(i));
    }
    previous = key;
    const std::uint64_t offset = get_u64(e + 16);
    const std::uint32_t length = get_u32(e + 24);
    if (offset > data_size || data_size - offset < 4 ||
        data_size - offset - 4 < length) {
      return reject("record " + std::to_string(i) + " out of bounds");
    }
    if (get_u32(data + offset) != length) {
      return reject("record " + std::to_string(i) +
                    " framing mismatch (index/data length disagree)");
    }
  }
  reader.data_ = data;
  reader.index_ = index;
  reader.count_ = count;
  reader.data_size_ = data_size;
  return reader;
}

chem::MolHash ShardReader::key(std::size_t i) const {
  const unsigned char* e = index_ + i * kIndexEntrySize;
  return chem::MolHash{get_u64(e), get_u64(e + 8)};
}

std::string_view ShardReader::smiles(std::size_t i) const {
  const unsigned char* e = index_ + i * kIndexEntrySize;
  const std::uint64_t offset = get_u64(e + 16);
  const std::uint32_t length = get_u32(e + 24);
  return std::string_view(
      reinterpret_cast<const char*>(data_ + offset + 4), length);
}

std::optional<std::size_t> ShardReader::find(const chem::MolHash& key) const {
  std::size_t lo = 0, hi = count_;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    const chem::MolHash k = this->key(mid);
    if (k < key) {
      lo = mid + 1;
    } else if (key < k) {
      hi = mid;
    } else {
      return mid;
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// merge_shards
// ---------------------------------------------------------------------------

bool merge_shards(const std::vector<std::string>& inputs,
                  const std::string& output, MergeStats* stats,
                  std::string* error) {
  std::vector<ShardReader> readers;
  readers.reserve(inputs.size());
  for (const std::string& path : inputs) {
    auto reader = ShardReader::open(path, error);
    if (!reader) return false;
    readers.push_back(std::move(*reader));
  }
  MergeStats local;
  local.inputs = readers.size();
  for (const ShardReader& r : readers) local.input_records += r.size();

  // Each input is already key-sorted; a linear scan over the (few) shard
  // cursors streams the union in global key order, which lets the writer
  // skip its dedup set entirely — memory stays at O(output index).
  ShardWriter writer(output, /*dedup=*/false);
  std::vector<std::size_t> cursor(readers.size(), 0);
  for (;;) {
    bool have_min = false;
    chem::MolHash min_key;
    for (std::size_t s = 0; s < readers.size(); ++s) {
      if (cursor[s] >= readers[s].size()) continue;
      const chem::MolHash k = readers[s].key(cursor[s]);
      if (!have_min || k < min_key) {
        have_min = true;
        min_key = k;
      }
    }
    if (!have_min) break;
    bool written = false;
    std::string_view payload;
    for (std::size_t s = 0; s < readers.size(); ++s) {
      if (cursor[s] >= readers[s].size()) continue;
      if (!(readers[s].key(cursor[s]) == min_key)) continue;
      const std::string_view record = readers[s].smiles(cursor[s]);
      if (!written) {
        if (writer.insert(min_key, record) != ShardWriter::Insert::kAdded) {
          set_error(error, output + ": write failed during merge");
          return false;
        }
        written = true;
        payload = record;
      } else {
        ++local.cross_duplicates;
        if (record != payload) {
          // Same 128-bit key, different canonical SMILES: either a hash
          // collision (~2^-64 odds) or a corrupt input that still passed
          // its checksums. Refuse to pick silently.
          set_error(error, readers[s].path() +
                               ": key collision with differing payloads ('" +
                               std::string(record) + "' vs '" +
                               std::string(payload) + "')");
          return false;
        }
      }
      ++cursor[s];
    }
  }
  local.written = writer.added();
  if (!writer.finish(error)) return false;
  if (stats != nullptr) *stats = local;
  return true;
}

}  // namespace sqvae::data
