// Dataset file I/O.
//
// Plain numeric CSV (no header, one sample per row) so users can train on
// their own feature matrices — e.g. molecule matrices exported from an
// external toolkit — and SMILES-list files for molecule datasets. Loaders
// validate rectangularity and report line-precise errors.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "chem/molecule.h"
#include "data/dataset.h"

namespace sqvae::data {

/// Writes samples as numeric CSV. Returns false on I/O failure.
bool save_csv(const Dataset& dataset, const std::string& path);

struct CsvError {
  std::size_t line = 0;  // 1-based; 0 = file-level error
  std::string message;
};

/// Reads a numeric CSV; every row must have the same number of fields.
/// On failure returns std::nullopt and fills `error` (when non-null).
std::optional<Dataset> load_csv(const std::string& path,
                                CsvError* error = nullptr);

/// Outcome of save_smiles: how many lines were written, which input
/// indices could not be serialized, and whether the stream stayed healthy.
/// A complete, lossless save is `io_ok && skipped.empty()`.
struct SaveSmilesResult {
  bool io_ok = false;             // file opened and every write succeeded
  std::size_t written = 0;        // lines emitted
  std::vector<std::size_t> skipped;  // indices that failed to serialize
};

/// Writes one canonical SMILES per line. Molecules that cannot be written
/// (multi-fragment, empty) are skipped — and reported through the result,
/// so callers can distinguish a full save from a lossy one.
SaveSmilesResult save_smiles(const std::vector<chem::Molecule>& molecules,
                             const std::string& path);

/// Reads a SMILES-per-line file; empty lines and '#' comments are skipped.
/// Unparseable lines are reported through `error` and abort the load.
std::optional<std::vector<chem::Molecule>> load_smiles(
    const std::string& path, CsvError* error = nullptr);

}  // namespace sqvae::data
