// Dataset containers, splits, normalisation, and mini-batching.
//
// A Dataset is a dense sample matrix (rows = samples, columns = features)
// plus optional provenance. Training follows the paper's protocol: 85/15
// train/test split, shuffled mini-batches of 32, and (for the fully quantum
// baselines of Fig. 4(b)) per-sample L1 normalisation.
#pragma once

#include <cstddef>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"

namespace sqvae::data {

using sqvae::Matrix;

struct Dataset {
  Matrix samples;  // num_samples x num_features

  std::size_t size() const { return samples.rows(); }
  std::size_t num_features() const { return samples.cols(); }

  /// Rows [indices] gathered into a new matrix (mini-batch assembly).
  Matrix gather(const std::vector<std::size_t>& indices) const;
};

/// Row-streaming abstraction over sample storage. The training engine
/// copies one sample row at a time, so anything that can produce a feature
/// row on demand — an in-memory Matrix or a memory-mapped molecule shard
/// decoded record by record (shard_dataset.h) — can feed it without the
/// corpus ever being materialized. copy_row must be safe to call
/// concurrently from multiple threads (the data-parallel engine does).
class RowSource {
 public:
  virtual ~RowSource() = default;
  virtual std::size_t rows() const = 0;
  virtual std::size_t cols() const = 0;
  /// Copies row `row` into out[0 .. cols()).
  virtual void copy_row(std::size_t row, double* out) const = 0;
};

/// RowSource view of a Matrix the caller keeps alive.
class MatrixRowSource final : public RowSource {
 public:
  explicit MatrixRowSource(const Matrix& m) : m_(&m) {}
  std::size_t rows() const override { return m_->rows(); }
  std::size_t cols() const override { return m_->cols(); }
  void copy_row(std::size_t row, double* out) const override {
    for (std::size_t c = 0; c < m_->cols(); ++c) out[c] = (*m_)(row, c);
  }

 private:
  const Matrix* m_;
};

/// Contiguous row range [begin, begin + count) of another RowSource (e.g.
/// a streamed train/test split without materializing either side).
class RowSlice final : public RowSource {
 public:
  RowSlice(const RowSource& base, std::size_t begin, std::size_t count)
      : base_(&base), begin_(begin), count_(count) {}
  std::size_t rows() const override { return count_; }
  std::size_t cols() const override { return base_->cols(); }
  void copy_row(std::size_t row, double* out) const override {
    base_->copy_row(begin_ + row, out);
  }

 private:
  const RowSource* base_;
  std::size_t begin_;
  std::size_t count_;
};

/// Rows [begin, begin + count) of `source` copied into a Matrix (e.g. a
/// small held-out test set pulled from a streamed corpus).
Matrix materialize_rows(const RowSource& source, std::size_t begin,
                        std::size_t count);

struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

/// Shuffles rows and splits with `test_fraction` held out (paper: 0.15).
TrainTestSplit train_test_split(const Dataset& dataset, double test_fraction,
                                sqvae::Rng& rng);

/// Divides each row by its L1 norm (the paper's normalisation for the
/// fully-quantum baselines; rows with ~zero norm are left unchanged).
Dataset l1_normalize_rows(const Dataset& dataset);

/// Scales all features by a constant (e.g. 1/16 for Digits pixel range).
Dataset scale(const Dataset& dataset, double factor);

/// Shuffled mini-batch index lists covering [0, n); the last batch may be
/// smaller. Batches change every call (epoch) through `rng`.
std::vector<std::vector<std::size_t>> make_batches(std::size_t n,
                                                   std::size_t batch_size,
                                                   sqvae::Rng& rng);

}  // namespace sqvae::data
