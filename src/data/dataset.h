// Dataset containers, splits, normalisation, and mini-batching.
//
// A Dataset is a dense sample matrix (rows = samples, columns = features)
// plus optional provenance. Training follows the paper's protocol: 85/15
// train/test split, shuffled mini-batches of 32, and (for the fully quantum
// baselines of Fig. 4(b)) per-sample L1 normalisation.
#pragma once

#include <cstddef>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"

namespace sqvae::data {

using sqvae::Matrix;

struct Dataset {
  Matrix samples;  // num_samples x num_features

  std::size_t size() const { return samples.rows(); }
  std::size_t num_features() const { return samples.cols(); }

  /// Rows [indices] gathered into a new matrix (mini-batch assembly).
  Matrix gather(const std::vector<std::size_t>& indices) const;
};

struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

/// Shuffles rows and splits with `test_fraction` held out (paper: 0.15).
TrainTestSplit train_test_split(const Dataset& dataset, double test_fraction,
                                sqvae::Rng& rng);

/// Divides each row by its L1 norm (the paper's normalisation for the
/// fully-quantum baselines; rows with ~zero norm are left unchanged).
Dataset l1_normalize_rows(const Dataset& dataset);

/// Scales all features by a constant (e.g. 1/16 for Digits pixel range).
Dataset scale(const Dataset& dataset, double factor);

/// Shuffled mini-batch index lists covering [0, n); the last batch may be
/// smaller. Batches change every call (epoch) through `rng`.
std::vector<std::vector<std::size_t>> make_batches(std::size_t n,
                                                   std::size_t batch_size,
                                                   sqvae::Rng& rng);

}  // namespace sqvae::data
