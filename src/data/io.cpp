#include "data/io.h"

#include <cctype>
#include <charconv>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "chem/smiles.h"

namespace sqvae::data {

bool save_csv(const Dataset& dataset, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  f << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (std::size_t r = 0; r < dataset.size(); ++r) {
    for (std::size_t c = 0; c < dataset.num_features(); ++c) {
      if (c) f << ',';
      f << dataset.samples(r, c);
    }
    f << '\n';
  }
  return static_cast<bool>(f);
}

namespace {
void set_error(CsvError* error, std::size_t line, std::string message) {
  if (error != nullptr) {
    error->line = line;
    error->message = std::move(message);
  }
}
}  // namespace

std::optional<Dataset> load_csv(const std::string& path, CsvError* error) {
  std::ifstream f(path);
  if (!f) {
    set_error(error, 0, "cannot open file: " + path);
    return std::nullopt;
  }
  std::vector<std::vector<double>> rows;
  std::string line;
  std::size_t line_number = 0;
  std::size_t width = 0;
  while (std::getline(f, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::vector<double> row;
    std::stringstream ls(line);
    std::string field;
    while (std::getline(ls, field, ',')) {
      // std::from_chars, not std::stod: stod honours the global LC_NUMERIC
      // locale (a comma-decimal locale silently misparses "1.5") and folds
      // out-of-range fields into the same exception as syntax errors. The
      // charconv parse is locale-independent and distinguishes the two.
      const char* begin = field.data();
      const char* end = field.data() + field.size();
      while (begin < end &&
             std::isspace(static_cast<unsigned char>(*begin))) {
        ++begin;
      }
      while (end > begin &&
             std::isspace(static_cast<unsigned char>(end[-1]))) {
        --end;
      }
      double v = 0.0;
      const auto [ptr, ec] = std::from_chars(begin, end, v);
      if (ec == std::errc::result_out_of_range) {
        set_error(error, line_number, "number out of range: '" + field + "'");
        return std::nullopt;
      }
      if (ec != std::errc{} || ptr != end || begin == end) {
        set_error(error, line_number, "not a number: '" + field + "'");
        return std::nullopt;
      }
      row.push_back(v);
    }
    if (row.empty()) {
      set_error(error, line_number, "empty row");
      return std::nullopt;
    }
    if (width == 0) {
      width = row.size();
    } else if (row.size() != width) {
      set_error(error, line_number,
                "row has " + std::to_string(row.size()) +
                    " fields, expected " + std::to_string(width));
      return std::nullopt;
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) {
    set_error(error, 0, "file contains no samples");
    return std::nullopt;
  }
  Matrix samples(rows.size(), width);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < width; ++c) samples(r, c) = rows[r][c];
  }
  return Dataset{std::move(samples)};
}

SaveSmilesResult save_smiles(const std::vector<chem::Molecule>& molecules,
                             const std::string& path) {
  SaveSmilesResult result;
  std::ofstream f(path);
  if (!f) return result;
  for (std::size_t i = 0; i < molecules.size(); ++i) {
    const auto smiles = chem::to_smiles(molecules[i]);
    if (!smiles || smiles->empty()) {
      result.skipped.push_back(i);
      continue;
    }
    f << *smiles << '\n';
    ++result.written;
  }
  result.io_ok = static_cast<bool>(f);
  return result;
}

std::optional<std::vector<chem::Molecule>> load_smiles(const std::string& path,
                                                       CsvError* error) {
  std::ifstream f(path);
  if (!f) {
    set_error(error, 0, "cannot open file: " + path);
    return std::nullopt;
  }
  std::vector<chem::Molecule> out;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(f, line)) {
    ++line_number;
    // Trim trailing whitespace/CR.
    while (!line.empty() &&
           std::isspace(static_cast<unsigned char>(line.back()))) {
      line.pop_back();
    }
    if (line.empty() || line[0] == '#') continue;
    const auto mol = chem::from_smiles(line);
    if (!mol) {
      set_error(error, line_number, "unparseable SMILES: '" + line + "'");
      return std::nullopt;
    }
    out.push_back(*mol);
  }
  return out;
}

}  // namespace sqvae::data
