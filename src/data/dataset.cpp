#include "data/dataset.h"

#include <cassert>

namespace sqvae::data {

Matrix Dataset::gather(const std::vector<std::size_t>& indices) const {
  Matrix out(indices.size(), samples.cols());
  for (std::size_t r = 0; r < indices.size(); ++r) {
    assert(indices[r] < samples.rows());
    for (std::size_t c = 0; c < samples.cols(); ++c) {
      out(r, c) = samples(indices[r], c);
    }
  }
  return out;
}

Matrix materialize_rows(const RowSource& source, std::size_t begin,
                        std::size_t count) {
  assert(begin + count <= source.rows());
  Matrix out(count, source.cols());
  for (std::size_t r = 0; r < count; ++r) {
    source.copy_row(begin + r, out.data() + r * source.cols());
  }
  return out;
}

TrainTestSplit train_test_split(const Dataset& dataset, double test_fraction,
                                sqvae::Rng& rng) {
  assert(test_fraction >= 0.0 && test_fraction < 1.0);
  const std::size_t n = dataset.size();
  std::vector<std::size_t> perm = rng.permutation(n);
  const std::size_t test_count =
      static_cast<std::size_t>(static_cast<double>(n) * test_fraction);
  std::vector<std::size_t> test_idx(
      perm.begin(), perm.begin() + static_cast<std::ptrdiff_t>(test_count));
  std::vector<std::size_t> train_idx(
      perm.begin() + static_cast<std::ptrdiff_t>(test_count), perm.end());
  return TrainTestSplit{Dataset{dataset.gather(train_idx)},
                        Dataset{dataset.gather(test_idx)}};
}

Dataset l1_normalize_rows(const Dataset& dataset) {
  Matrix out = dataset.samples;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    double norm = 0.0;
    for (std::size_t c = 0; c < out.cols(); ++c) norm += std::abs(out(r, c));
    if (norm > 1e-12) {
      for (std::size_t c = 0; c < out.cols(); ++c) out(r, c) /= norm;
    }
  }
  return Dataset{std::move(out)};
}

Dataset scale(const Dataset& dataset, double factor) {
  return Dataset{dataset.samples * factor};
}

std::vector<std::vector<std::size_t>> make_batches(std::size_t n,
                                                   std::size_t batch_size,
                                                   sqvae::Rng& rng) {
  assert(batch_size > 0);
  std::vector<std::size_t> perm = rng.permutation(n);
  std::vector<std::vector<std::size_t>> batches;
  for (std::size_t start = 0; start < n; start += batch_size) {
    const std::size_t end = std::min(n, start + batch_size);
    batches.emplace_back(perm.begin() + static_cast<std::ptrdiff_t>(start),
                         perm.begin() + static_cast<std::ptrdiff_t>(end));
  }
  return batches;
}

}  // namespace sqvae::data
