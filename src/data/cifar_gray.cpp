#include "data/cifar_gray.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace sqvae::data {

namespace {

constexpr int kSize = 32;

double soft_edge(double signed_distance, double softness) {
  // 1 inside (negative distance), 0 outside, smooth across the boundary.
  return 1.0 / (1.0 + std::exp(signed_distance / softness));
}

/// Renders one image of class `cls` into `out` (row-major 32x32).
void render(int cls, sqvae::Rng& rng, std::vector<double>& out) {
  // Low-frequency background common to all classes.
  const double ax = rng.uniform(0.2, 1.0);
  const double ay = rng.uniform(0.2, 1.0);
  const double px = rng.uniform(0.0, 2.0 * std::numbers::pi);
  const double py = rng.uniform(0.0, 2.0 * std::numbers::pi);
  const double base = rng.uniform(0.2, 0.5);

  const double cx = rng.uniform(8.0, 24.0);
  const double cy = rng.uniform(8.0, 24.0);
  const double radius = rng.uniform(5.0, 10.0);
  const double angle = rng.uniform(0.0, std::numbers::pi);
  const double fg = rng.uniform(0.5, 0.95);
  const double freq = rng.uniform(0.4, 1.2);

  for (int y = 0; y < kSize; ++y) {
    for (int x = 0; x < kSize; ++x) {
      const double u = static_cast<double>(x) / kSize;
      const double v = static_cast<double>(y) / kSize;
      double value = base +
                     0.12 * std::cos(2.0 * std::numbers::pi * ax * u + px) +
                     0.12 * std::cos(2.0 * std::numbers::pi * ay * v + py);

      const double dx = x - cx;
      const double dy = y - cy;
      double mask = 0.0;
      switch (cls) {
        case 0: {  // disc
          mask = soft_edge(std::sqrt(dx * dx + dy * dy) - radius, 1.0);
          break;
        }
        case 1: {  // ring
          const double r = std::sqrt(dx * dx + dy * dy);
          mask = soft_edge(std::abs(r - radius) - 2.0, 0.8);
          break;
        }
        case 2: {  // bar
          const double t = dx * std::cos(angle) + dy * std::sin(angle);
          mask = soft_edge(std::abs(t) - 3.0, 0.8);
          break;
        }
        case 3: {  // square
          mask = soft_edge(std::max(std::abs(dx), std::abs(dy)) - radius, 1.0);
          break;
        }
        case 4: {  // stripes
          const double t = dx * std::cos(angle) + dy * std::sin(angle);
          mask = 0.5 + 0.5 * std::sin(freq * t);
          mask *= soft_edge(std::sqrt(dx * dx + dy * dy) - 14.0, 2.0);
          break;
        }
        case 5: {  // checker patch
          const int qx = static_cast<int>(std::floor(x / 4.0));
          const int qy = static_cast<int>(std::floor(y / 4.0));
          mask = ((qx + qy) % 2 == 0) ? 1.0 : 0.0;
          mask *= soft_edge(std::max(std::abs(dx), std::abs(dy)) - 12.0, 1.5);
          break;
        }
        case 6: {  // triangle (half-plane intersection)
          const double d1 = dy + dx * 0.8 - radius;
          const double d2 = dy - dx * 0.8 - radius;
          const double d3 = -dy - radius * 0.5;
          mask = soft_edge(std::max({d1, d2, d3}), 1.2);
          break;
        }
        default: {  // 7: two blobs
          const double r1 = std::sqrt(dx * dx + dy * dy);
          const double dx2 = x - (kSize - cx);
          const double dy2 = y - (kSize - cy);
          const double r2 = std::sqrt(dx2 * dx2 + dy2 * dy2);
          mask = std::max(soft_edge(r1 - radius * 0.7, 1.0),
                          soft_edge(r2 - radius * 0.7, 1.0));
          break;
        }
      }
      value = value * (1.0 - mask) + fg * mask;
      value += rng.normal(0.0, 0.02);
      out[static_cast<std::size_t>(y * kSize + x)] =
          std::clamp(value, 0.0, 1.0);
    }
  }
}

}  // namespace

CifarGrayDataset make_cifar_gray(std::size_t count, sqvae::Rng& rng) {
  CifarGrayDataset ds;
  ds.features = Dataset{Matrix(count, kSize * kSize)};
  ds.labels.resize(count);
  std::vector<double> img(kSize * kSize);
  for (std::size_t i = 0; i < count; ++i) {
    const int cls = static_cast<int>(i % kCifarGrayClasses);
    ds.labels[i] = cls;
    render(cls, rng, img);
    for (std::size_t c = 0; c < img.size(); ++c) {
      ds.features.samples(i, c) = img[c];
    }
  }
  return ds;
}

}  // namespace sqvae::data
