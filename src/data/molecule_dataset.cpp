#include "data/molecule_dataset.h"

#include <cassert>

#include "chem/molecule_matrix.h"

namespace sqvae::data {

Dataset MoleculeDataset::features() const {
  Matrix x(molecules.size(), matrix_dim * matrix_dim);
  for (std::size_t r = 0; r < molecules.size(); ++r) {
    const std::vector<double> f =
        chem::molecule_to_features(molecules[r], matrix_dim);
    for (std::size_t c = 0; c < f.size(); ++c) x(r, c) = f[c];
  }
  return Dataset{std::move(x)};
}

MoleculeDataset make_qm9_like(std::size_t count, std::size_t dim,
                              sqvae::Rng& rng) {
  MoleculeDataset ds;
  ds.matrix_dim = dim;
  const MoleculeGenConfig config = qm9_config(static_cast<int>(dim));
  ds.molecules = generate_molecules(config, count, rng);
  return ds;
}

MoleculeDataset make_pdbbind_like(std::size_t count, std::size_t dim,
                                  sqvae::Rng& rng) {
  assert(dim >= 12);
  MoleculeDataset ds;
  ds.matrix_dim = dim;
  const MoleculeGenConfig config = pdbbind_config(static_cast<int>(dim));
  ds.molecules = generate_molecules(config, count, rng);
  return ds;
}

}  // namespace sqvae::data
