// Synthetic molecule generation (QM9-like and PDBbind-ligand-like).
//
// The paper trains on QM9 (<= 9 heavy atoms, C/N/O) and on PDBbind v2019
// refined ligands filtered to <= 32 heavy atoms over C/N/O/F/S. Neither
// dataset ships with this repository, so generate_molecule() synthesises
// valence-correct molecules with the same alphabet, size range, ring
// content, and bond-type distribution (DESIGN.md §3): a random
// spanning-tree skeleton grown atom by atom under free-valence
// constraints, aromatic 5/6-rings inserted first, optional aliphatic ring
// closures, and a bond-order upgrade pass. Every emitted molecule
// satisfies chem::is_valid().
#pragma once

#include "chem/molecule.h"
#include "chem/sanitize.h"
#include "common/rng.h"

namespace sqvae::data {

struct MoleculeGenConfig {
  int min_atoms = 4;
  int max_atoms = 9;
  /// Element sampling weights in kAllElements order (C, N, O, F, S).
  /// Zero disables an element (QM9 uses {C, N, O} only).
  std::vector<double> element_weights = {0.70, 0.14, 0.14, 0.01, 0.01};
  /// Expected number of aromatic rings (Poisson-ish via repeated trials).
  double aromatic_ring_rate = 0.8;
  /// Probability of attempting one extra aliphatic ring closure.
  double aliphatic_ring_prob = 0.25;
  /// Probability of upgrading an eligible single bond to a double bond.
  double double_bond_prob = 0.15;
  /// Probability of upgrading an eligible single bond to a triple bond.
  double triple_bond_prob = 0.02;
};

/// QM9-like molecules: C/N/O, small.
MoleculeGenConfig qm9_config(int max_atoms = 8);

/// PDBbind-ligand-like molecules: C/N/O/F/S, drug-sized (12-32 atoms),
/// more aromatic rings.
MoleculeGenConfig pdbbind_config(int max_atoms = 32);

/// One random valid molecule.
chem::Molecule generate_molecule(const MoleculeGenConfig& config,
                                 sqvae::Rng& rng);

/// A batch of random valid molecules.
std::vector<chem::Molecule> generate_molecules(const MoleculeGenConfig& config,
                                               std::size_t count,
                                               sqvae::Rng& rng);

}  // namespace sqvae::data
