// Content-addressed, memory-mapped molecule shard store.
//
// A shard is a single file holding canonical-SMILES records keyed by their
// 128-bit content hash (chem/mol_hash.h). Equal molecules — in any input
// atom order — canonicalize to the same SMILES and therefore the same key,
// so insertion-time duplicate detection is exact. The format is designed
// for corpus-scale training: a reader memory-maps the file and serves
// random-access reads with zero parsing or allocation, and a writer streams
// records to disk with memory bounded by the index (28 bytes per unique
// record), never by the corpus text.
//
// File layout (version 1; all integers little-endian):
//
//   header  72 bytes   magic "SQMOLDB\n" | u32 version | u32 flags |
//                      u64 record_count | u64 data_offset | u64 data_size |
//                      u64 index_offset | u64 index_size |
//                      u64 data_checksum | u64 index_checksum
//   data    data_size  records back-to-back, insertion order:
//                      u32 byte_length | SMILES bytes (no terminator)
//   index   28 * count entries sorted ascending by key, each:
//                      u64 key_hi | u64 key_lo | u64 record_offset
//                      (data-relative) | u32 byte_length
//
// The checksums are 64-bit FNV-1a over the raw data and index blocks.
// open() validates magic, version, block geometry (rejecting truncated or
// oversized files), both checksums, strict index ordering (duplicate keys
// cannot exist in a well-formed shard), and per-record framing, so a
// reader never serves bytes from a corrupt store. Records are addressed in
// *index order* (sorted by key): the iteration order of a shard is a pure
// function of its content set, independent of insertion order — merges and
// streamed training epochs are deterministic for free.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "chem/mol_hash.h"

namespace sqvae::data {

inline constexpr std::uint32_t kShardFormatVersion = 1;

/// Streaming shard builder. Records go to a temporary file as they are
/// inserted (RSS stays bounded by the in-memory index + key set, ~44
/// bytes per unique record); finish() writes the index and header and
/// atomically renames the temporary into place. A writer that is
/// destroyed without finish() leaves no file behind.
class ShardWriter {
 public:
  enum class Insert { kAdded, kDuplicate, kError };

  /// `dedup = false` skips the in-memory key set: the caller guarantees
  /// strictly increasing keys (the k-way merge does), and finish() still
  /// verifies that ordering before publishing the shard.
  explicit ShardWriter(std::string path, bool dedup = true);
  ~ShardWriter();
  ShardWriter(const ShardWriter&) = delete;
  ShardWriter& operator=(const ShardWriter&) = delete;

  /// True while the underlying stream is healthy.
  bool ok() const { return ok_; }

  /// Appends one canonical-SMILES record under `key`. kDuplicate leaves
  /// the store unchanged. `smiles` must not contain '\n' (records are
  /// dumped line-oriented) and must fit in 32 bits.
  Insert insert(const chem::MolHash& key, std::string_view smiles);

  std::size_t added() const { return index_.size(); }
  std::size_t duplicates() const { return duplicates_; }

  /// Sorts the index, writes index + header, fsync-free atomic rename.
  /// Returns false (with `error` filled when non-null) on any I/O failure
  /// or ordering violation; the temporary file is removed either way.
  bool finish(std::string* error = nullptr);

 private:
  struct Entry {
    chem::MolHash key;
    std::uint64_t offset = 0;
    std::uint32_t length = 0;
  };

  std::string path_;
  std::string tmp_path_;
  int fd_ = -1;
  bool ok_ = false;
  bool finished_ = false;
  bool dedup_ = true;
  std::vector<Entry> index_;
  std::unordered_set<chem::MolHash, chem::MolHashHasher> seen_;
  std::size_t duplicates_ = 0;
  std::uint64_t data_size_ = 0;
  std::uint64_t data_checksum_;
  std::vector<char> buffer_;  // write coalescing
};

/// Memory-mapped shard reader. Move-only; the mapping lives as long as the
/// reader (string_views returned by smiles() point into it).
class ShardReader {
 public:
  /// Opens and fully validates a shard. std::nullopt (with a precise
  /// message in `error` when non-null) on any structural defect.
  static std::optional<ShardReader> open(const std::string& path,
                                         std::string* error = nullptr);

  ShardReader(ShardReader&& other) noexcept;
  ShardReader& operator=(ShardReader&& other) noexcept;
  ShardReader(const ShardReader&) = delete;
  ShardReader& operator=(const ShardReader&) = delete;
  ~ShardReader();

  /// Number of records.
  std::size_t size() const { return count_; }

  /// Key of record `i` (records are ordered by ascending key).
  chem::MolHash key(std::size_t i) const;

  /// Canonical SMILES of record `i`; points into the mapping.
  std::string_view smiles(std::size_t i) const;

  /// Binary search by key; index of the record or std::nullopt.
  std::optional<std::size_t> find(const chem::MolHash& key) const;
  bool contains(const chem::MolHash& key) const {
    return find(key).has_value();
  }

  const std::string& path() const { return path_; }
  std::uint64_t data_bytes() const { return data_size_; }

 private:
  ShardReader() = default;
  void reset();

  std::string path_;
  void* map_ = nullptr;
  std::size_t map_size_ = 0;
  const unsigned char* data_ = nullptr;   // data block
  const unsigned char* index_ = nullptr;  // index block
  std::size_t count_ = 0;
  std::uint64_t data_size_ = 0;
};

struct MergeStats {
  std::size_t inputs = 0;
  std::size_t input_records = 0;     // sum over input shards
  std::size_t cross_duplicates = 0;  // records dropped by the merge
  std::size_t written = 0;           // unique records in the output
};

/// K-way merge of shards into one deduplicated shard. Inputs are streamed
/// in key order (each shard's index is sorted), so memory stays bounded by
/// the output index regardless of corpus size. Returns false with a
/// message in `error` (when non-null) on any open/validate/write failure.
bool merge_shards(const std::vector<std::string>& inputs,
                  const std::string& output, MergeStats* stats = nullptr,
                  std::string* error = nullptr);

}  // namespace sqvae::data
