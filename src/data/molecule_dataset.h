// Molecule datasets as feature matrices.
//
// Wraps the synthetic generators into the matrix-feature Dataset format the
// models consume: each molecule becomes one row, the flattened dim x dim
// molecule matrix (dim = 8 for QM9-like / Fig. 4, dim = 32 for
// PDBbind-like / Figs. 5-8 and Table II).
#pragma once

#include <vector>

#include "chem/molecule.h"
#include "data/dataset.h"
#include "data/molecule_gen.h"

namespace sqvae::data {

struct MoleculeDataset {
  std::vector<chem::Molecule> molecules;
  std::size_t matrix_dim = 0;

  /// One row per molecule: flattened matrix encoding.
  Dataset features() const;
};

/// QM9-like dataset: `count` molecules with <= `dim` heavy atoms over
/// C/N/O, encoded into dim x dim matrices (paper: dim = 8).
MoleculeDataset make_qm9_like(std::size_t count, std::size_t dim,
                              sqvae::Rng& rng);

/// PDBbind-ligand-like dataset: `count` molecules with 12..dim heavy atoms
/// over C/N/O/F/S (paper: 2492 ligands, dim = 32).
MoleculeDataset make_pdbbind_like(std::size_t count, std::size_t dim,
                                  sqvae::Rng& rng);

}  // namespace sqvae::data
