#include "data/digits.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <string>

namespace sqvae::data {

namespace {

// 8x8 glyphs, '#' = full intensity, '+' = half, '.' = faint, ' ' = blank.
// Drawn to resemble the scikit-learn Digits renderings.
constexpr std::array<const char*, 10> kGlyphs = {
    // 0
    "  ####  "
    " #    # "
    " #    # "
    " #    # "
    " #    # "
    " #    # "
    " #    # "
    "  ####  ",
    // 1
    "   ##   "
    "  ###   "
    "   ##   "
    "   ##   "
    "   ##   "
    "   ##   "
    "   ##   "
    "  ####  ",
    // 2
    "  ####  "
    " #    # "
    "      # "
    "     #  "
    "    #   "
    "   #    "
    "  #     "
    " ###### ",
    // 3
    "  ####  "
    " #    # "
    "      # "
    "   ###  "
    "      # "
    "      # "
    " #    # "
    "  ####  ",
    // 4
    "    ##  "
    "   # #  "
    "  #  #  "
    " #   #  "
    " ###### "
    "     #  "
    "     #  "
    "     #  ",
    // 5
    " ###### "
    " #      "
    " #      "
    " #####  "
    "      # "
    "      # "
    " #    # "
    "  ####  ",
    // 6
    "  ####  "
    " #      "
    " #      "
    " #####  "
    " #    # "
    " #    # "
    " #    # "
    "  ####  ",
    // 7
    " ###### "
    "      # "
    "     #  "
    "     #  "
    "    #   "
    "    #   "
    "   #    "
    "   #    ",
    // 8
    "  ####  "
    " #    # "
    " #    # "
    "  ####  "
    " #    # "
    " #    # "
    " #    # "
    "  ####  ",
    // 9
    "  ####  "
    " #    # "
    " #    # "
    "  ##### "
    "      # "
    "      # "
    "      # "
    "  ####  ",
};

double glyph_pixel(int d, int row, int col) {
  if (row < 0 || row > 7 || col < 0 || col > 7) return 0.0;
  const char c = kGlyphs[static_cast<std::size_t>(d)][row * 8 + col];
  switch (c) {
    case '#': return 16.0;
    case '+': return 8.0;
    case '.': return 4.0;
    default: return 0.0;
  }
}

}  // namespace

std::vector<double> digit_template(int d) {
  assert(d >= 0 && d <= 9);
  std::vector<double> img(64, 0.0);
  for (int r = 0; r < 8; ++r) {
    for (int c = 0; c < 8; ++c) {
      img[static_cast<std::size_t>(r * 8 + c)] = glyph_pixel(d, r, c);
    }
  }
  return img;
}

DigitsDataset make_digits(std::size_t count, sqvae::Rng& rng) {
  DigitsDataset ds;
  ds.features = Dataset{Matrix(count, 64)};
  ds.labels.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    const int d = static_cast<int>(i % 10);
    ds.labels[i] = d;
    // Sub-pixel shift via bilinear sampling of the shifted template plus a
    // global intensity scale and additive noise.
    const double dy = rng.uniform(-0.8, 0.8);
    const double dx = rng.uniform(-0.8, 0.8);
    const double gain = rng.uniform(0.8, 1.0);
    for (int r = 0; r < 8; ++r) {
      for (int c = 0; c < 8; ++c) {
        const double sr = r + dy;
        const double sc = c + dx;
        const int r0 = static_cast<int>(std::floor(sr));
        const int c0 = static_cast<int>(std::floor(sc));
        const double fr = sr - r0;
        const double fc = sc - c0;
        double v = glyph_pixel(d, r0, c0) * (1 - fr) * (1 - fc) +
                   glyph_pixel(d, r0 + 1, c0) * fr * (1 - fc) +
                   glyph_pixel(d, r0, c0 + 1) * (1 - fr) * fc +
                   glyph_pixel(d, r0 + 1, c0 + 1) * fr * fc;
        v = gain * v + rng.normal(0.0, 0.5);
        ds.features.samples(i, static_cast<std::size_t>(r * 8 + c)) =
            std::clamp(v, 0.0, 16.0);
      }
    }
  }
  return ds;
}

std::string ascii_image(const std::vector<double>& pixels, std::size_t width,
                        double max_value) {
  static constexpr char kRamp[] = " .:-=+*#%@";
  const std::size_t levels = sizeof(kRamp) - 2;  // exclude terminator
  std::string out;
  for (std::size_t i = 0; i < pixels.size(); ++i) {
    const double t = std::clamp(pixels[i] / max_value, 0.0, 1.0);
    out += kRamp[static_cast<std::size_t>(t * static_cast<double>(levels))];
    if ((i + 1) % width == 0) out += '\n';
  }
  return out;
}

}  // namespace sqvae::data
