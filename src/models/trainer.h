// Training engine shared by every experiment.
//
// Implements the paper's protocol (Section IV-B): Adam with beta1 = 0.9,
// beta2 = 0.999, mini-batches of 32, 20 epochs by default, and separate
// quantum/classical learning-rate groups for the heterogeneous-LR study.
//
// Two epoch engines:
//
//   * data-parallel (default) — every mini-batch is sharded across OpenMP
//     threads at sample granularity: each sample builds its own ad::Tape
//     and backpropagates into a private gradient buffer (ad::GradSink), so
//     threads never touch shared Parameter::grad. Per-sample
//     reparameterisation noise comes from stateless streams keyed by
//     (noise_seed, epoch, dataset row) — Rng::stream — and the per-sample
//     gradients are reduced in fixed sample order after the parallel
//     region. Both choices make the math independent of the thread count:
//     training is bit-identical at 1 and N threads. Models whose quantum
//     layers measure through a stochastic backend
//     (Autoencoder::stochastic_forward) are automatically run at 1 thread,
//     because those backends advance a shared call counter per estimate.
//
//   * serial (data_parallel = false) — the legacy one-tape-per-batch loop,
//     kept as the A/B baseline for bench_train_micro and for models that
//     want batch-level reparameterisation draws from the caller's Rng.
//
// Both engines weight epoch statistics by *sample* count, so a final short
// batch no longer skews the reported means.
//
// Checkpoint/resume: with `checkpoint_path` set, fit() writes a v2
// checkpoint (parameters + Adam moments + LR positions + epoch cursor +
// Rng state, see models/checkpoint.h) every `checkpoint_every` epochs, and
// with `resume = true` continues from it such that the resumed run is
// bit-equivalent to one that was never interrupted. Caveat: the guarantee
// covers exact-statevector training (the default). Stochastic measurement
// backends (trajectory/shots) keep a per-backend call counter that is not
// checkpointed — fit() rebuilds them from SimulationOptions, so their
// measurement-noise streams restart at resume; gradients (exact adjoint
// path) and every other state are still restored exactly.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "models/autoencoder.h"

namespace sqvae::models {

struct TrainConfig {
  std::size_t epochs = 20;
  std::size_t batch_size = 32;
  double quantum_lr = 1e-3;
  double classical_lr = 1e-3;
  double kl_weight = 0.01;  // generative models only
  /// Global-norm gradient clipping threshold; 0 disables. Useful for the
  /// aggressive-learning-rate corners of the Fig. 7 grid.
  double grad_clip = 0.0;
  /// Per-epoch multiplicative learning-rate decay; 1 keeps the paper's
  /// constant schedule.
  double lr_decay = 1.0;
  /// When set, fit() switches the model's quantum layers to this simulation
  /// regime (exact / noise trajectories / finite shots — see qsim/backend.h)
  /// before training, so one experiment config selects the regime end to
  /// end. Unset leaves the model's current backends untouched.
  std::optional<qsim::SimulationOptions> sim{};

  // ---- data-parallel engine --------------------------------------------
  /// False selects the legacy serial one-tape-per-batch loop.
  bool data_parallel = true;
  /// OpenMP threads for the data-parallel engine: 0 = all available,
  /// 1 = serial execution of the same sharded math. Results are identical
  /// for every value.
  int num_threads = 0;
  /// Base seed of the per-sample reparameterisation-noise streams used by
  /// the data-parallel engine (sample noise = Rng::stream(noise_seed,
  /// epoch, row)). The serial engine draws from the caller's Rng instead.
  std::uint64_t noise_seed = 0x5eedab1e0b5eedull;

  // ---- checkpoint / resume ---------------------------------------------
  /// When non-empty, fit() saves a v2 checkpoint here every
  /// `checkpoint_every` epochs (and always after the final epoch). The
  /// best model so far is additionally kept at checkpoint_path + ".best".
  std::string checkpoint_path{};
  std::size_t checkpoint_every = 1;
  /// Continue from `checkpoint_path` if it exists (bit-equivalent to the
  /// uninterrupted run). A missing file starts a fresh run; a corrupt or
  /// mismatched file throws.
  bool resume = false;

  // ---- early stopping / best-model tracking ----------------------------
  /// Stop when the monitored metric (test MSE when a test set is given,
  /// else training loss) has not improved by more than
  /// `early_stop_min_delta` for this many consecutive epochs; 0 disables.
  std::size_t early_stop_patience = 0;
  double early_stop_min_delta = 0.0;
  /// Restore the best-metric parameters into the model after fit().
  bool restore_best = false;
};

struct EpochStats {
  std::size_t epoch = 0;
  double train_loss = 0.0;  // sample-weighted mean total loss
  double train_mse = 0.0;   // sample-weighted mean reconstruction MSE
  double train_kl = 0.0;    // sample-weighted mean KL (0 for AEs)
  double test_mse = 0.0;    // full-test-set reconstruction MSE (when given)
  double seconds = 0.0;     // wall-clock time of the epoch
};

using EpochCallback = std::function<void(const EpochStats&)>;

class Trainer {
 public:
  Trainer(Autoencoder& model, const TrainConfig& config);

  /// Trains on `train` (rows = samples); evaluates reconstruction MSE on
  /// `test` after each epoch when non-null. Returns per-epoch statistics
  /// (resumed runs return only the epochs they executed).
  std::vector<EpochStats> fit(const Matrix& train, const Matrix* test,
                              sqvae::Rng& rng,
                              const EpochCallback& callback = {});

  /// Streaming variant: samples are pulled row by row from `train` (e.g. a
  /// ShardDataset over memory-mapped molecule shards), so the corpus is
  /// never materialized. Bit-identical to the Matrix overload on the same
  /// rows: batching, per-sample noise streams, and the gradient reduction
  /// are all keyed by row index, not by storage.
  std::vector<EpochStats> fit(const data::RowSource& train, const Matrix* test,
                              sqvae::Rng& rng,
                              const EpochCallback& callback = {});

  /// Best-model tracking results of the last fit() call. The metric is
  /// test MSE when a test set was given, else training loss.
  bool has_best() const { return has_best_; }
  std::size_t best_epoch() const { return best_epoch_; }
  double best_metric() const { return best_metric_; }
  /// True when restore_best actually rewound the model after the last
  /// fit() (false when disabled, nothing tracked, or the stored best
  /// parameters failed to load).
  bool best_restored() const { return best_restored_; }

  /// Thread count the data-parallel engine actually uses for `model`
  /// under `config` (1 for stochastic-backend models or OpenMP-less
  /// builds). Exposed for benches and tests.
  static int resolve_threads(const Autoencoder& model,
                             const TrainConfig& config);

 private:
  Autoencoder& model_;
  TrainConfig config_;
  bool has_best_ = false;
  std::size_t best_epoch_ = 0;
  double best_metric_ = 0.0;
  bool best_restored_ = false;
};

}  // namespace sqvae::models
