// Training loop shared by every experiment.
//
// Implements the paper's protocol (Section IV-B): Adam with beta1 = 0.9,
// beta2 = 0.999, mini-batches of 32, 20 epochs by default, and separate
// quantum/classical learning-rate groups for the heterogeneous-LR study.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "models/autoencoder.h"

namespace sqvae::models {

struct TrainConfig {
  std::size_t epochs = 20;
  std::size_t batch_size = 32;
  double quantum_lr = 1e-3;
  double classical_lr = 1e-3;
  double kl_weight = 0.01;  // generative models only
  /// Global-norm gradient clipping threshold; 0 disables. Useful for the
  /// aggressive-learning-rate corners of the Fig. 7 grid.
  double grad_clip = 0.0;
  /// Per-epoch multiplicative learning-rate decay; 1 keeps the paper's
  /// constant schedule.
  double lr_decay = 1.0;
  /// When set, fit() switches the model's quantum layers to this simulation
  /// regime (exact / noise trajectories / finite shots — see qsim/backend.h)
  /// before training, so one experiment config selects the regime end to
  /// end. Unset leaves the model's current backends untouched.
  std::optional<qsim::SimulationOptions> sim{};
};

struct EpochStats {
  std::size_t epoch = 0;
  double train_loss = 0.0;  // batch-averaged total loss
  double train_mse = 0.0;   // batch-averaged reconstruction MSE
  double train_kl = 0.0;    // batch-averaged KL (0 for AEs)
  double test_mse = 0.0;    // full-test-set reconstruction MSE (when given)
  double seconds = 0.0;     // wall-clock time of the epoch
};

using EpochCallback = std::function<void(const EpochStats&)>;

class Trainer {
 public:
  Trainer(Autoencoder& model, const TrainConfig& config);

  /// Trains on `train` (rows = samples); evaluates reconstruction MSE on
  /// `test` after each epoch when non-null. Returns per-epoch statistics.
  std::vector<EpochStats> fit(const Matrix& train, const Matrix* test,
                              sqvae::Rng& rng,
                              const EpochCallback& callback = {});

 private:
  Autoencoder& model_;
  TrainConfig config_;
};

}  // namespace sqvae::models
