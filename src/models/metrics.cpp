#include "models/metrics.h"

#include <set>

#include "chem/scaffold.h"
#include "chem/smiles.h"
#include "models/generation.h"

namespace sqvae::models {

ExtendedMetrics evaluate_extended_molecules(
    const std::vector<chem::Molecule>& molecules,
    const std::vector<chem::Molecule>& training_set) {
  ExtendedMetrics m;
  m.requested = molecules.size();

  std::set<std::string> train_smiles;
  std::vector<chem::Fingerprint> train_fps;
  train_fps.reserve(training_set.size());
  for (const chem::Molecule& t : training_set) {
    if (auto s = chem::to_smiles(t)) train_smiles.insert(*s);
    train_fps.push_back(chem::morgan_fingerprint(t));
  }

  std::set<std::string> unique_smiles;
  std::set<std::string> scaffolds;
  std::vector<chem::Fingerprint> sample_fps;
  std::size_t novel = 0;
  std::size_t lipinski_pass = 0;
  double distance_sum = 0.0;

  for (const chem::Molecule& mol : molecules) {
    if (mol.empty()) continue;
    // Validity means the molecule survives a SMILES round trip: a sample
    // that cannot be canonicalised (e.g. multiple fragments) must not
    // count towards `valid` while being excluded from uniqueness/novelty —
    // that mismatch of denominators would inflate every per-valid rate.
    const auto smiles = chem::to_smiles(mol);
    if (!smiles) continue;
    ++m.valid;
    const bool is_new_unique = unique_smiles.insert(*smiles).second;
    if (is_new_unique && !train_smiles.count(*smiles)) ++novel;

    const chem::Fingerprint fp = chem::morgan_fingerprint(mol);
    distance_sum += 1.0 - chem::nearest_similarity(fp, train_fps);
    sample_fps.push_back(fp);

    if (auto scaffold = chem::scaffold_smiles(mol)) {
      scaffolds.insert(*scaffold);
    }
    if (chem::lipinski(mol).passes) ++lipinski_pass;
  }

  m.unique = unique_smiles.size();
  if (m.unique > 0) {
    m.novelty = static_cast<double>(novel) / static_cast<double>(m.unique);
  }
  if (m.valid > 0) {
    m.mean_distance_to_train =
        distance_sum / static_cast<double>(m.valid);
    m.scaffold_diversity = static_cast<double>(scaffolds.size()) /
                           static_cast<double>(m.valid);
    m.lipinski_pass_rate = static_cast<double>(lipinski_pass) /
                           static_cast<double>(m.valid);
  }
  m.internal_diversity = chem::internal_diversity(sample_fps);
  return m;
}

ExtendedMetrics evaluate_extended(
    const Matrix& samples, std::size_t matrix_dim,
    const std::vector<chem::Molecule>& training_set) {
  std::vector<chem::Molecule> molecules;
  molecules.reserve(samples.rows());
  for (std::size_t r = 0; r < samples.rows(); ++r) {
    molecules.push_back(decode_sample(samples.row(r), matrix_dim));
  }
  return evaluate_extended_molecules(molecules, training_set);
}

}  // namespace sqvae::models
