// Common interface of the autoencoder zoo.
//
// The paper evaluates six families on a shared protocol:
//   classical AE / VAE                       (models/classical.h)
//   F-BQ-AE / F-BQ-VAE  fully quantum        (models/baseline_quantum.h)
//   H-BQ-AE / H-BQ-VAE  hybrid baseline      (models/baseline_quantum.h)
//   SQ-AE  / SQ-VAE     scalable, patched    (models/scalable_quantum.h)
//
// Every model implements forward() (reconstruction graph; VAEs also emit
// (mu, logvar) and reparameterise internally) and decode() (latent ->
// features, the generator network). The base class derives the training
// loss (MSE, plus KL for generative models), inference-mode
// reconstruction, prior sampling, and the quantum/classical parameter
// split that the heterogeneous-learning-rate optimizer groups rely on.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "autodiff/tape.h"
#include "common/rng.h"
#include "nn/optim.h"
#include "qsim/backend.h"

namespace sqvae::models {

using ad::Tape;
using ad::Var;
using sqvae::Matrix;

/// Result of one reconstruction pass.
struct ForwardResult {
  Var reconstruction;
  std::optional<Var> mu;      // generative models only
  std::optional<Var> logvar;  // generative models only
};

/// Scalar diagnostics of one loss evaluation.
struct LossStats {
  double total = 0.0;
  double reconstruction_mse = 0.0;
  double kl = 0.0;
};

class Autoencoder {
 public:
  virtual ~Autoencoder() = default;

  /// Builds the reconstruction graph for a batch var. `rng` supplies the
  /// reparameterisation noise (unused by vanilla AEs).
  virtual ForwardResult forward(Tape& tape, Var input, sqvae::Rng& rng) = 0;

  /// Generator network: latent batch -> feature batch.
  virtual Var decode(Tape& tape, Var z) = 0;

  /// Deterministic latent code of each input row: the encoder output for
  /// plain AEs, the mean of q(z|x) for VAEs (the reparameterisation without
  /// noise). One encoder API across the zoo — latent-space optimization and
  /// the serving layer's `encode` endpoint both go through here.
  virtual Var encode_mean(Tape& tape, Var input) = 0;

  virtual std::size_t input_dim() const = 0;
  virtual std::size_t latent_dim() const = 0;
  virtual bool is_generative() const = 0;

  /// Parameters living in quantum circuits (rotation angles).
  virtual std::vector<ad::Parameter*> quantum_parameters() = 0;
  /// Parameters of classical layers.
  virtual std::vector<ad::Parameter*> classical_parameters() = 0;

  /// Switches the simulation regime of every quantum layer in the model
  /// (exact statevector, noise trajectories, or finite shots — see
  /// qsim/backend.h). No-op for purely classical models, so experiments can
  /// set options uniformly across the autoencoder zoo.
  virtual void set_simulation_options(const qsim::SimulationOptions&) {}

  /// True when any quantum layer currently measures through a stochastic
  /// backend (noise trajectories or finite shots). Those backends advance a
  /// shared call counter per estimate, so concurrent forward passes would
  /// race; the data-parallel trainer checks this and serialises such
  /// models instead of sharding them across threads.
  virtual bool stochastic_forward() const { return false; }

  // ---- derived functionality -------------------------------------------

  /// Weight on the KL term of generative losses (loss = MSE + kl_weight*KL).
  /// The paper trains with "a single loss term"; the default weight keeps
  /// the KL gradient from drowning the 1024-feature MSE (see DESIGN.md §4).
  double kl_weight() const { return kl_weight_; }
  void set_kl_weight(double w) { kl_weight_ = w; }

  /// Builds loss = MSE(recon, input) [+ kl_weight * KL] on the tape.
  Var build_loss(Tape& tape, const Matrix& batch, sqvae::Rng& rng,
                 LossStats* stats = nullptr);

  /// Inference-mode reconstruction (graph built and discarded).
  Matrix reconstruct(const Matrix& batch, sqvae::Rng& rng);

  /// Inference-mode deterministic latent codes (encode_mean, no tape kept).
  Matrix encode_values(const Matrix& batch);

  /// Inference-mode decode: latent batch -> feature batch (no tape kept).
  Matrix decode_values(const Matrix& z);

  /// Mean reconstruction MSE over a dataset, inference mode.
  double evaluate_mse(const Matrix& data, sqvae::Rng& rng);

  /// Draws `count` samples by decoding z ~ N(0, I). Requires
  /// is_generative().
  Matrix sample(std::size_t count, sqvae::Rng& rng);

  std::size_t num_quantum_parameters();
  std::size_t num_classical_parameters();

  /// Two optimizer groups: quantum parameters at `quantum_lr`, classical at
  /// `classical_lr` (Fig. 7's heterogeneous learning rates). Groups with no
  /// parameters are omitted.
  std::vector<nn::ParamGroup> param_groups(double quantum_lr,
                                           double classical_lr);

 private:
  double kl_weight_ = 0.01;
};

}  // namespace sqvae::models
