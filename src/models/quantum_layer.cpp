#include "models/quantum_layer.h"

#include <cassert>
#include <numbers>

#include "qsim/adjoint.h"
#include "qsim/embedding.h"
#include "qsim/observable.h"

namespace sqvae::models {

using qsim::Circuit;
using qsim::Statevector;

namespace {

Matrix init_weights(int count, sqvae::Rng& rng) {
  Matrix w(1, static_cast<std::size_t>(count));
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = rng.uniform(-std::numbers::pi, std::numbers::pi);
  }
  return w;
}

int weight_offset_for(const QuantumLayerConfig& config) {
  return config.input == QuantumLayerConfig::InputMode::kAngle
             ? config.num_qubits
             : 0;
}

Circuit build_circuit(const QuantumLayerConfig& config) {
  Circuit c(config.num_qubits);
  int slot = 0;
  if (config.input == QuantumLayerConfig::InputMode::kAngle) {
    slot = c.angle_embedding(slot);  // slots [0, num_qubits)
  }
  c.strongly_entangling_layers(config.entangling_layers, slot);
  return c;
}

}  // namespace

QuantumLayer::QuantumLayer(const QuantumLayerConfig& config, sqvae::Rng& rng)
    : config_(config),
      weight_slot_offset_(weight_offset_for(config)),
      circuit_(build_circuit(config)),
      weights_(init_weights(
          Circuit::entangling_layer_param_count(config.num_qubits,
                                                config.entangling_layers),
          rng)) {
  if (config_.input == QuantumLayerConfig::InputMode::kAngle) {
    assert(config_.input_dim == config_.num_qubits &&
           "angle embedding uses one qubit per feature");
  } else {
    assert(config_.input_dim <= (1 << config_.num_qubits) &&
           "amplitude embedding fits at most 2^n features");
  }
}

int QuantumLayer::output_dim() const {
  return config_.output == QuantumLayerConfig::OutputMode::kExpectationZ
             ? config_.num_qubits
             : (1 << config_.num_qubits);
}

std::vector<double> QuantumLayer::slot_values(
    const std::vector<double>& input_row) const {
  std::vector<double> slots;
  if (config_.input == QuantumLayerConfig::InputMode::kAngle) {
    slots = input_row;
  }
  slots.insert(slots.end(), weights_.value.data(),
               weights_.value.data() + weights_.value.size());
  return slots;
}

Statevector QuantumLayer::initial_state(
    const std::vector<double>& input_row) const {
  if (config_.input == QuantumLayerConfig::InputMode::kAmplitude) {
    return qsim::amplitude_embedding(input_row, config_.num_qubits);
  }
  return Statevector(config_.num_qubits);
}

std::vector<double> QuantumLayer::measure(const Statevector& state) const {
  if (config_.output == QuantumLayerConfig::OutputMode::kExpectationZ) {
    return qsim::expectations_z(state);
  }
  return state.probabilities();
}

Matrix QuantumLayer::forward_values(const Matrix& input) const {
  assert(input.cols() == static_cast<std::size_t>(config_.input_dim));
  Matrix out(input.rows(), static_cast<std::size_t>(output_dim()));
  for (std::size_t r = 0; r < input.rows(); ++r) {
    const std::vector<double> row = input.row(r);
    Statevector state = initial_state(row);
    qsim::run(circuit_, slot_values(row), state);
    const std::vector<double> y = measure(state);
    for (std::size_t c = 0; c < y.size(); ++c) out(r, c) = y[c];
  }
  return out;
}

ad::Var QuantumLayer::forward(ad::Tape& tape, ad::Var input) {
  // Copy, not reference: tape.leaf() below appends a node and may
  // reallocate the tape's node storage.
  const Matrix in_value = tape.value(input);
  assert(in_value.cols() == static_cast<std::size_t>(config_.input_dim));

  ad::Var w = tape.leaf(&weights_);
  Matrix out = forward_values(in_value);

  // The backward closure recomputes per-sample adjoint sweeps from the
  // *taped* input and weight values (both immutable for this tape's
  // lifetime).
  auto backward = [this, input, w](ad::Tape& t, const Matrix& out_grad) {
    const Matrix& in_v = t.value(input);
    const std::size_t batch = in_v.rows();
    Matrix grad_in(batch, static_cast<std::size_t>(config_.input_dim));
    Matrix grad_w(1, weights_.value.size());

    for (std::size_t r = 0; r < batch; ++r) {
      const std::vector<double> row = in_v.row(r);
      const std::vector<double> cotangent = out_grad.row(r);

      std::vector<double> diag;
      if (config_.output == QuantumLayerConfig::OutputMode::kExpectationZ) {
        diag = qsim::weighted_z_diagonal(config_.num_qubits, cotangent);
      } else {
        diag = qsim::probability_vjp_diagonal(cotangent);
      }

      const qsim::AdjointResult res = qsim::adjoint_gradient(
          circuit_, slot_values(row), initial_state(row), diag);

      // Weight gradients: slots [offset, offset + W).
      for (std::size_t k = 0; k < weights_.value.size(); ++k) {
        grad_w(0, k) +=
            res.param_grads[static_cast<std::size_t>(weight_slot_offset_) + k];
      }
      // Input gradients.
      if (config_.input == QuantumLayerConfig::InputMode::kAngle) {
        for (int q = 0; q < config_.num_qubits; ++q) {
          grad_in(r, static_cast<std::size_t>(q)) =
              res.param_grads[static_cast<std::size_t>(q)];
        }
      } else {
        const std::vector<double> state_grad =
            qsim::real_initial_gradient(res);
        const std::vector<double> dx =
            qsim::amplitude_embedding_backward(row, state_grad);
        for (std::size_t c = 0; c < dx.size(); ++c) grad_in(r, c) = dx[c];
      }
    }
    t.accum_grad(input, grad_in);
    t.accum_grad(w, grad_w);
  };

  return tape.custom({input, w}, std::move(out), std::move(backward));
}

}  // namespace sqvae::models
