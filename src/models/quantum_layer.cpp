#include "models/quantum_layer.h"

#include <cassert>
#include <numbers>

#include "qsim/adjoint.h"
#include "qsim/embedding.h"
#include "qsim/observable.h"

namespace sqvae::models {

using qsim::Circuit;
using qsim::Statevector;

namespace {

Matrix init_weights(int count, sqvae::Rng& rng) {
  Matrix w(1, static_cast<std::size_t>(count));
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = rng.uniform(-std::numbers::pi, std::numbers::pi);
  }
  return w;
}

int weight_offset_for(const QuantumLayerConfig& config) {
  return config.input == QuantumLayerConfig::InputMode::kAngle
             ? config.num_qubits
             : 0;
}

Circuit build_circuit(const QuantumLayerConfig& config) {
  Circuit c(config.num_qubits);
  int slot = 0;
  if (config.input == QuantumLayerConfig::InputMode::kAngle) {
    slot = c.angle_embedding(slot);  // slots [0, num_qubits)
  }
  c.strongly_entangling_layers(config.entangling_layers, slot);
  return c;
}

}  // namespace

QuantumLayer::QuantumLayer(const QuantumLayerConfig& config, sqvae::Rng& rng)
    : config_(config),
      weight_slot_offset_(weight_offset_for(config)),
      circuit_(build_circuit(config)),
      executor_(circuit_),
      backend_(qsim::SimulationBackend::create(config.sim)),
      weights_(init_weights(
          Circuit::entangling_layer_param_count(config.num_qubits,
                                                config.entangling_layers),
          rng)) {
  if (config_.input == QuantumLayerConfig::InputMode::kAngle) {
    assert(config_.input_dim == config_.num_qubits &&
           "angle embedding uses one qubit per feature");
  } else {
    assert(config_.input_dim <= (1 << config_.num_qubits) &&
           "amplitude embedding fits at most 2^n features");
  }
}

int QuantumLayer::output_dim() const {
  return config_.output == QuantumLayerConfig::OutputMode::kExpectationZ
             ? config_.num_qubits
             : (1 << config_.num_qubits);
}

std::vector<double> QuantumLayer::slot_values(
    const std::vector<double>& input_row) const {
  std::vector<double> slots;
  if (config_.input == QuantumLayerConfig::InputMode::kAngle) {
    slots = input_row;
  }
  slots.insert(slots.end(), weights_.value.data(),
               weights_.value.data() + weights_.value.size());
  return slots;
}

Statevector QuantumLayer::initial_state(
    const std::vector<double>& input_row) const {
  if (config_.input == QuantumLayerConfig::InputMode::kAmplitude) {
    return qsim::amplitude_embedding(input_row, config_.num_qubits);
  }
  return Statevector(config_.num_qubits);
}

void QuantumLayer::set_simulation_options(
    const qsim::SimulationOptions& options) {
  config_.sim = options;
  backend_ = qsim::SimulationBackend::create(options);
}

Matrix QuantumLayer::forward_values(const Matrix& input) const {
  assert(input.cols() == static_cast<std::size_t>(config_.input_dim));
  const std::size_t batch = input.rows();

  // Assemble per-sample slot vectors and initial states, then advance the
  // whole mini-batch through the configured backend (exact statevector,
  // noise trajectories, or shot sampling — all share the compiled plan).
  std::vector<std::vector<double>> slots(batch);
  std::vector<Statevector> initials;
  initials.reserve(batch);
  for (std::size_t r = 0; r < batch; ++r) {
    const std::vector<double> row = input.row(r);
    slots[r] = slot_values(row);
    initials.push_back(initial_state(row));
  }
  const std::vector<std::vector<double>> measured =
      config_.output == QuantumLayerConfig::OutputMode::kExpectationZ
          ? backend_->expectations_z_batch(executor_, slots, initials)
          : backend_->probabilities_batch(executor_, slots, initials);

  Matrix out(batch, static_cast<std::size_t>(output_dim()));
  for (std::size_t r = 0; r < batch; ++r) {
    const std::vector<double>& y = measured[r];
    for (std::size_t c = 0; c < y.size(); ++c) out(r, c) = y[c];
  }
  return out;
}

ad::Var QuantumLayer::forward(ad::Tape& tape, ad::Var input) {
  // Copy, not reference: tape.leaf() below appends a node and may
  // reallocate the tape's node storage.
  const Matrix in_value = tape.value(input);
  assert(in_value.cols() == static_cast<std::size_t>(config_.input_dim));

  ad::Var w = tape.leaf(&weights_);
  Matrix out = forward_values(in_value);

  // The backward closure recomputes batched adjoint sweeps from the *taped*
  // input and weight values (both immutable for this tape's lifetime).
  auto backward = [this, input, w](ad::Tape& t, const Matrix& out_grad) {
    const Matrix& in_v = t.value(input);
    const std::size_t batch = in_v.rows();
    Matrix grad_in(batch, static_cast<std::size_t>(config_.input_dim));
    Matrix grad_w(1, weights_.value.size());

    // One adjoint sweep per sample, run as a batch through the executor.
    std::vector<std::vector<double>> slots(batch);
    std::vector<std::vector<double>> diags(batch);
    std::vector<Statevector> initials;
    initials.reserve(batch);
    for (std::size_t r = 0; r < batch; ++r) {
      const std::vector<double> row = in_v.row(r);
      const std::vector<double> cotangent = out_grad.row(r);
      if (config_.output == QuantumLayerConfig::OutputMode::kExpectationZ) {
        diags[r] = qsim::weighted_z_diagonal(config_.num_qubits, cotangent);
      } else {
        diags[r] = qsim::probability_vjp_diagonal(cotangent);
      }
      slots[r] = slot_values(row);
      initials.push_back(initial_state(row));
    }
    const std::vector<qsim::AdjointResult> batch_res =
        executor_.adjoint_batch(slots, initials, diags);

    for (std::size_t r = 0; r < batch; ++r) {
      const qsim::AdjointResult& res = batch_res[r];

      // Weight gradients: slots [offset, offset + W).
      for (std::size_t k = 0; k < weights_.value.size(); ++k) {
        grad_w(0, k) +=
            res.param_grads[static_cast<std::size_t>(weight_slot_offset_) + k];
      }
      // Input gradients.
      if (config_.input == QuantumLayerConfig::InputMode::kAngle) {
        for (int q = 0; q < config_.num_qubits; ++q) {
          grad_in(r, static_cast<std::size_t>(q)) =
              res.param_grads[static_cast<std::size_t>(q)];
        }
      } else {
        const std::vector<double> state_grad =
            qsim::real_initial_gradient(res);
        const std::vector<double> dx =
            qsim::amplitude_embedding_backward(in_v.row(r), state_grad);
        for (std::size_t c = 0; c < dx.size(); ++c) grad_in(r, c) = dx[c];
      }
    }
    t.accum_grad(input, grad_in);
    t.accum_grad(w, grad_w);
  };

  return tape.custom({input, w}, std::move(out), std::move(backward));
}

}  // namespace sqvae::models
