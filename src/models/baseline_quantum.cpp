#include "models/baseline_quantum.h"

#include <cassert>

#include "models/classical.h"

namespace sqvae::models {

namespace {

int log2_exact(std::size_t v) {
  int k = 0;
  while ((std::size_t{1} << k) < v) ++k;
  assert((std::size_t{1} << k) == v && "input_dim must be a power of two");
  return k;
}

QuantumLayerConfig encoder_config(const BaselineQuantumConfig& c) {
  QuantumLayerConfig q;
  q.num_qubits = c.num_qubits();
  q.entangling_layers = c.entangling_layers;
  q.input = QuantumLayerConfig::InputMode::kAmplitude;
  q.output = QuantumLayerConfig::OutputMode::kExpectationZ;
  q.input_dim = static_cast<int>(c.input_dim);
  q.sim = qsim::derive_layer_options(c.sim, 0);
  return q;
}

QuantumLayerConfig decoder_config(const BaselineQuantumConfig& c) {
  QuantumLayerConfig q;
  q.num_qubits = c.num_qubits();
  q.entangling_layers = c.entangling_layers;
  q.input = QuantumLayerConfig::InputMode::kAngle;
  q.output = QuantumLayerConfig::OutputMode::kProbabilities;
  q.input_dim = c.num_qubits();
  q.sim = qsim::derive_layer_options(c.sim, 1);
  return q;
}

}  // namespace

int BaselineQuantumConfig::num_qubits() const { return log2_exact(input_dim); }

BaselineQuantumAutoencoder::BaselineQuantumAutoencoder(
    const BaselineQuantumConfig& config, sqvae::Rng& rng)
    : config_(config),
      encoder_(encoder_config(config), rng),
      decoder_(decoder_config(config), rng) {
  const std::size_t n = latent_dim();
  if (config_.hybrid) {
    latent_fc_ = std::make_unique<nn::Linear>(n, n, rng);
    output_fc_ =
        std::make_unique<nn::Linear>(config_.input_dim, config_.input_dim, rng);
  }
  if (config_.generative) {
    mu_head_ = std::make_unique<nn::Linear>(n, n, rng);
    logvar_head_ = std::make_unique<nn::Linear>(n, n, rng);
  }
}

Var BaselineQuantumAutoencoder::encode(Tape& tape, Var input) {
  Var h = encoder_.forward(tape, input);
  if (latent_fc_) h = latent_fc_->forward(tape, h);
  return h;
}

Var BaselineQuantumAutoencoder::encode_mean(Tape& tape, Var input) {
  Var h = encode(tape, input);
  if (config_.generative) return mu_head_->forward(tape, h);
  return h;
}

ForwardResult BaselineQuantumAutoencoder::forward(Tape& tape, Var input,
                                                  sqvae::Rng& rng) {
  Var h = encode(tape, input);
  if (config_.generative) {
    Var mu = mu_head_->forward(tape, h);
    Var logvar = logvar_head_->forward(tape, h);
    Var z = reparameterize(tape, mu, logvar, rng);
    return ForwardResult{decode(tape, z), mu, logvar};
  }
  return ForwardResult{decode(tape, h), std::nullopt, std::nullopt};
}

Var BaselineQuantumAutoencoder::decode(Tape& tape, Var z) {
  Var probs = decoder_.forward(tape, z);
  if (output_fc_) return output_fc_->forward(tape, probs);
  return probs;
}

std::vector<ad::Parameter*> BaselineQuantumAutoencoder::quantum_parameters() {
  return {&encoder_.weights(), &decoder_.weights()};
}

void BaselineQuantumAutoencoder::set_simulation_options(
    const qsim::SimulationOptions& sim) {
  config_.sim = sim;
  encoder_.set_simulation_options(qsim::derive_layer_options(sim, 0));
  decoder_.set_simulation_options(qsim::derive_layer_options(sim, 1));
}

std::vector<ad::Parameter*>
BaselineQuantumAutoencoder::classical_parameters() {
  std::vector<ad::Parameter*> out;
  auto append = [&out](nn::Linear* l) {
    if (l != nullptr) {
      out.push_back(&l->weight);
      out.push_back(&l->bias);
    }
  };
  append(latent_fc_.get());
  append(mu_head_.get());
  append(logvar_head_.get());
  append(output_fc_.get());
  return out;
}

namespace {
std::unique_ptr<BaselineQuantumAutoencoder> make_baseline(
    std::size_t input_dim, int layers, bool hybrid, bool generative,
    sqvae::Rng& rng) {
  BaselineQuantumConfig c;
  c.input_dim = input_dim;
  c.entangling_layers = layers;
  c.hybrid = hybrid;
  c.generative = generative;
  return std::make_unique<BaselineQuantumAutoencoder>(c, rng);
}
}  // namespace

std::unique_ptr<BaselineQuantumAutoencoder> make_fbq_ae(std::size_t input_dim,
                                                        int layers,
                                                        sqvae::Rng& rng) {
  return make_baseline(input_dim, layers, false, false, rng);
}
std::unique_ptr<BaselineQuantumAutoencoder> make_fbq_vae(std::size_t input_dim,
                                                         int layers,
                                                         sqvae::Rng& rng) {
  return make_baseline(input_dim, layers, false, true, rng);
}
std::unique_ptr<BaselineQuantumAutoencoder> make_hbq_ae(std::size_t input_dim,
                                                        int layers,
                                                        sqvae::Rng& rng) {
  return make_baseline(input_dim, layers, true, false, rng);
}
std::unique_ptr<BaselineQuantumAutoencoder> make_hbq_vae(std::size_t input_dim,
                                                         int layers,
                                                         sqvae::Rng& rng) {
  return make_baseline(input_dim, layers, true, true, rng);
}

}  // namespace sqvae::models
