// Latent-space optimization: property-targeted molecule generation.
//
// The VAE drug-discovery loop the paper positions itself in (Gomez-
// Bombarelli et al.-style) does not stop at prior sampling: one optimizes
// a black-box objective (QED, docking score, ...) *in the latent space*,
// decoding candidate points to molecules. Because our objectives go
// through a decode+sanitize step they are non-differentiable, so this
// module implements the standard derivative-free loop: a (mu, sigma)
// evolution strategy with elite selection, seeded from prior samples —
// effective in low-dimensional latents (LSD 10-96) and fully
// deterministic given the Rng.
#pragma once

#include <functional>

#include "common/matrix.h"
#include "common/rng.h"
#include "models/autoencoder.h"

namespace sqvae::models {

/// Black-box objective over a decoded feature vector (higher is better).
using LatentObjective = std::function<double(const std::vector<double>&)>;

struct LatentOptimizeConfig {
  std::size_t population = 32;   // candidates per generation
  std::size_t elites = 8;        // survivors refitting (mu, sigma)
  std::size_t generations = 20;
  double initial_sigma = 1.0;    // prior scale
  double sigma_floor = 0.05;     // keeps exploration alive
  /// Optional starting mean; empty = the prior's origin. Seeding at the
  /// encoder output of a known-good molecule ("lead optimization") makes
  /// the search local around that lead instead of global.
  std::vector<double> initial_mu;
};

struct LatentOptimizeResult {
  std::vector<double> best_latent;
  std::vector<double> best_features;  // decoded from best_latent
  double best_score = -1e300;
  /// Best score after each generation (monotone non-decreasing).
  std::vector<double> history;
};

/// Maximises `objective` over the model's latent space via a cross-entropy
/// / ES loop: sample population ~ N(mu, diag(sigma)), decode in one batch,
/// score, refit (mu, sigma) on the elites. Requires a generative model.
LatentOptimizeResult optimize_latent(Autoencoder& model,
                                     const LatentObjective& objective,
                                     const LatentOptimizeConfig& config,
                                     sqvae::Rng& rng);

/// Ready-made objective: QED of the sanitized molecule decoded from a
/// feature vector (matrix_dim^2 features), the usual demo target.
LatentObjective qed_objective(std::size_t matrix_dim);

}  // namespace sqvae::models
