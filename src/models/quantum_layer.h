// QuantumLayer: a variational quantum circuit as a differentiable node in
// the classical autodiff graph.
//
// This is the C++ equivalent of wrapping a PennyLane QNode in a
// torch.nn.Module, which is how the paper's hybrid models are built. One
// layer = data embedding (angle or amplitude) -> L strongly entangling
// layers (Fig. 2(b)) -> measurement (per-qubit <Z> or basis probabilities).
//
// Differentiation: the tape sees the layer as one custom op. Its backward
// runs one adjoint sweep per sample with the *weighted* observable
// diag(sum_q w_q Z_q) (expectation output) or diag(w) (probability
// output), where w is the upstream cotangent — so the full vector-Jacobian
// product costs a single sweep regardless of output dimension, and the
// same sweep yields input gradients: through the angle-embedding rotation
// slots (angle mode) or through the L2-normalisation Jacobian of the
// initial state (amplitude mode).
//
// Weight convention: a 1 x (3 * num_qubits * layers) row parameter, slots
// ordered layer-major then qubit-major then (phi, theta, omega) — the
// StronglyEntanglingLayers layout. Initialised uniform in [-pi, pi], the
// paper's quantum parameter range.
#pragma once

#include <memory>

#include "autodiff/tape.h"
#include "common/rng.h"
#include "qsim/backend.h"
#include "qsim/circuit.h"
#include "qsim/executor.h"

namespace sqvae::models {

struct QuantumLayerConfig {
  int num_qubits = 4;
  int entangling_layers = 3;

  enum class InputMode {
    kAngle,      // input dim = num_qubits rotation angles
    kAmplitude,  // input dim <= 2^num_qubits real features
  };
  enum class OutputMode {
    kExpectationZ,   // output dim = num_qubits
    kProbabilities,  // output dim = 2^num_qubits
  };

  InputMode input = InputMode::kAngle;
  OutputMode output = OutputMode::kExpectationZ;

  /// Input feature count. For kAngle this must equal num_qubits; for
  /// kAmplitude it may be any value <= 2^num_qubits (zero-padded).
  int input_dim = 4;

  /// Which simulation regime the layer's measurements run under: exact
  /// statevector (default), Monte-Carlo noise trajectories, or finite
  /// measurement shots. Gradients always use the exact adjoint path; see
  /// qsim/backend.h.
  qsim::SimulationOptions sim{};
};

class QuantumLayer {
 public:
  QuantumLayer(const QuantumLayerConfig& config, sqvae::Rng& rng);

  /// Builds the forward pass for a batch (rows = samples) and registers the
  /// adjoint backward. Input column count must equal config().input_dim.
  ad::Var forward(ad::Tape& tape, ad::Var input);

  /// Inference-only forward (no tape).
  Matrix forward_values(const Matrix& input) const;

  const QuantumLayerConfig& config() const { return config_; }
  int output_dim() const;
  std::size_t num_parameters() const { return weights_.size(); }
  ad::Parameter& weights() { return weights_; }
  const qsim::Circuit& circuit() const { return circuit_; }
  /// The compiled (gate-fused, batch-parallel) execution plan every forward
  /// and adjoint pass of this layer runs through.
  const qsim::CircuitExecutor& executor() const { return executor_; }

  /// The measurement backend the layer's forward passes run through.
  const qsim::SimulationBackend& backend() const { return *backend_; }

  /// Switches the simulation regime in place (e.g. train exactly, evaluate
  /// under shot noise). Replaces the backend, so stochastic streams restart
  /// from the new options' seed.
  void set_simulation_options(const qsim::SimulationOptions& options);

 private:
  /// Assembles the full slot vector for one sample (angle mode prepends the
  /// input angles to the weights) and the initial state.
  std::vector<double> slot_values(const std::vector<double>& input_row) const;
  qsim::Statevector initial_state(const std::vector<double>& input_row) const;

  QuantumLayerConfig config_;
  // Angle mode: embedding inputs occupy slots [0, num_qubits); weights
  // start at this offset. Declared before circuit_ so the builder can rely
  // on it being final.
  int weight_slot_offset_ = 0;
  qsim::Circuit circuit_;
  qsim::CircuitExecutor executor_;  // compiled from circuit_, kept in sync
  // Measurement backend built from config_.sim; all forward measurements
  // (exact, trajectory-noisy, or shot-sampled) route through it.
  std::unique_ptr<qsim::SimulationBackend> backend_;
  ad::Parameter weights_;
};

}  // namespace sqvae::models
