// Baseline quantum autoencoders (Section III-B): F-BQ-AE/VAE and
// H-BQ-AE/VAE.
//
// Encoder: amplitude embedding of the whole feature vector into
// n = log2(input_dim) qubits, L entangling layers, per-qubit <Z> -> an
// n-dimensional latent (LSD = n; 6 for the 64-dim Digits/QM9 models,
// 10 for the 1024-dim PDBbind baseline of Fig. 5(a)).
// Decoder: angle embedding of the latent, L entangling layers, basis-state
// probabilities -> input_dim outputs.
//
// The fully quantum variants (F-BQ) stop there: reconstruction lives in the
// probability simplex, which is why they only work on L1-normalised data
// (Fig. 4(b)) and fail at original scale (Fig. 4(a), Fig. 5(a)). Hybrid
// variants (H-BQ) add a latent FC (n -> n) and a final FC
// (input_dim -> input_dim) that restores the original scale. VAE variants
// insert (mu, logvar) heads (n -> n each) between encoder and decoder.
#pragma once

#include <memory>

#include "models/autoencoder.h"
#include "models/quantum_layer.h"
#include "nn/linear.h"

namespace sqvae::models {

struct BaselineQuantumConfig {
  std::size_t input_dim = 64;  // must be a power of two
  int entangling_layers = 3;
  bool hybrid = false;       // H-BQ: latent FC + output FC
  bool generative = false;   // VAE: (mu, logvar) heads + reparameterisation
  /// Simulation regime of both circuit layers (see qsim/backend.h).
  qsim::SimulationOptions sim{};

  int num_qubits() const;
};

class BaselineQuantumAutoencoder final : public Autoencoder {
 public:
  BaselineQuantumAutoencoder(const BaselineQuantumConfig& config,
                             sqvae::Rng& rng);

  ForwardResult forward(Tape& tape, Var input, sqvae::Rng& rng) override;
  Var decode(Tape& tape, Var z) override;
  std::size_t input_dim() const override { return config_.input_dim; }
  std::size_t latent_dim() const override {
    return static_cast<std::size_t>(config_.num_qubits());
  }
  bool is_generative() const override { return config_.generative; }
  std::vector<ad::Parameter*> quantum_parameters() override;
  std::vector<ad::Parameter*> classical_parameters() override;
  void set_simulation_options(const qsim::SimulationOptions& sim) override;
  bool stochastic_forward() const override {
    return encoder_.backend().kind() != qsim::BackendKind::kStatevector ||
           decoder_.backend().kind() != qsim::BackendKind::kStatevector;
  }

  /// Encoder-only pass: input batch -> latent batch (tests, examples).
  Var encode(Tape& tape, Var input);

  /// encode() for the AE variants; the mu head's output for the VAEs.
  Var encode_mean(Tape& tape, Var input) override;

 private:
  BaselineQuantumConfig config_;
  QuantumLayer encoder_;
  QuantumLayer decoder_;
  // Optional classical parts (null when not configured).
  std::unique_ptr<nn::Linear> latent_fc_;    // hybrid
  std::unique_ptr<nn::Linear> output_fc_;    // hybrid
  std::unique_ptr<nn::Linear> mu_head_;      // generative
  std::unique_ptr<nn::Linear> logvar_head_;  // generative
};

// Convenience factories matching the paper's names.
std::unique_ptr<BaselineQuantumAutoencoder> make_fbq_ae(
    std::size_t input_dim, int layers, sqvae::Rng& rng);
std::unique_ptr<BaselineQuantumAutoencoder> make_fbq_vae(
    std::size_t input_dim, int layers, sqvae::Rng& rng);
std::unique_ptr<BaselineQuantumAutoencoder> make_hbq_ae(
    std::size_t input_dim, int layers, sqvae::Rng& rng);
std::unique_ptr<BaselineQuantumAutoencoder> make_hbq_vae(
    std::size_t input_dim, int layers, sqvae::Rng& rng);

}  // namespace sqvae::models
