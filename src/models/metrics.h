// Extended generative-chemistry metrics beyond Table II.
//
// Standard evaluation of molecular generative models (MOSES/GuacaMol
// style) augments validity/uniqueness and property means with novelty
// against the training set, internal diversity (mean pairwise Tanimoto
// distance of ECFP fingerprints), scaffold diversity, and a screen pass
// rate (Lipinski). These quantify whether a model memorises or explores —
// the question the paper's latent-space-dimension study circles around.
#pragma once

#include <vector>

#include "chem/fingerprint.h"
#include "chem/molecule.h"
#include "common/matrix.h"

namespace sqvae::models {

struct ExtendedMetrics {
  std::size_t requested = 0;
  /// Non-empty samples with a canonical SMILES (round-trip valid) — the
  /// shared denominator of every per-valid rate below.
  std::size_t valid = 0;
  std::size_t unique = 0;
  /// Fraction of unique valid molecules absent from the training set
  /// (canonical-SMILES comparison).
  double novelty = 0.0;
  /// Mean (1 - nearest-neighbor Tanimoto to training set) of valid samples.
  double mean_distance_to_train = 0.0;
  /// Mean pairwise Tanimoto distance within the sample set.
  double internal_diversity = 0.0;
  /// Distinct Murcko scaffolds per valid molecule.
  double scaffold_diversity = 0.0;
  /// Fraction of valid molecules passing Lipinski (<= 1 violation).
  double lipinski_pass_rate = 0.0;
};

/// Scores decoded feature samples (rows = flattened matrix_dim^2 features)
/// against a training reference set.
ExtendedMetrics evaluate_extended(
    const Matrix& samples, std::size_t matrix_dim,
    const std::vector<chem::Molecule>& training_set);

/// Same for an existing molecule list (e.g. dataset self-evaluation).
ExtendedMetrics evaluate_extended_molecules(
    const std::vector<chem::Molecule>& molecules,
    const std::vector<chem::Molecule>& training_set);

}  // namespace sqvae::models
