#include "models/latent_optimize.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "chem/qed.h"
#include "models/generation.h"

namespace sqvae::models {

LatentOptimizeResult optimize_latent(Autoencoder& model,
                                     const LatentObjective& objective,
                                     const LatentOptimizeConfig& config,
                                     sqvae::Rng& rng) {
  assert(model.is_generative());
  assert(config.elites >= 1 && config.elites <= config.population);
  const std::size_t lsd = model.latent_dim();

  std::vector<double> mu(lsd, 0.0);
  if (!config.initial_mu.empty()) {
    assert(config.initial_mu.size() == lsd);
    mu = config.initial_mu;
  }
  std::vector<double> sigma(lsd, config.initial_sigma);

  LatentOptimizeResult result;
  result.history.reserve(config.generations);

  struct Scored {
    std::size_t row;
    double score;
  };

  for (std::size_t gen = 0; gen < config.generations; ++gen) {
    // Sample the generation and decode it in one batch.
    Matrix z(config.population, lsd);
    for (std::size_t r = 0; r < config.population; ++r) {
      for (std::size_t c = 0; c < lsd; ++c) {
        z(r, c) = mu[c] + sigma[c] * rng.normal();
      }
    }
    ad::Tape tape;
    ad::Var decoded = model.decode(tape, tape.constant(z));
    const Matrix& features = tape.value(decoded);

    std::vector<Scored> scored(config.population);
    for (std::size_t r = 0; r < config.population; ++r) {
      scored[r] = Scored{r, objective(features.row(r))};
    }
    std::sort(scored.begin(), scored.end(),
              [](const Scored& a, const Scored& b) {
                return a.score > b.score;
              });

    if (scored.front().score > result.best_score) {
      result.best_score = scored.front().score;
      result.best_latent = z.row(scored.front().row);
      result.best_features = features.row(scored.front().row);
    }
    result.history.push_back(result.best_score);

    // Refit (mu, sigma) on the elites.
    for (std::size_t c = 0; c < lsd; ++c) {
      double mean = 0.0;
      for (std::size_t e = 0; e < config.elites; ++e) {
        mean += z(scored[e].row, c);
      }
      mean /= static_cast<double>(config.elites);
      double var = 0.0;
      for (std::size_t e = 0; e < config.elites; ++e) {
        const double d = z(scored[e].row, c) - mean;
        var += d * d;
      }
      var /= static_cast<double>(config.elites);
      mu[c] = mean;
      sigma[c] = std::max(std::sqrt(var), config.sigma_floor);
    }
  }
  return result;
}

LatentObjective qed_objective(std::size_t matrix_dim) {
  return [matrix_dim](const std::vector<double>& features) {
    const chem::Molecule mol = decode_sample(features, matrix_dim);
    return chem::qed(mol);
  };
}

}  // namespace sqvae::models
