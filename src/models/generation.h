// Molecule-generation pipeline and drug-property evaluation (Table II).
//
// Sampled feature vectors are decoded to molecule matrices, rounded,
// sanitized (chem/sanitize.h), and scored: QED, normalised logP and
// normalised SA — the three metrics the paper reports for 1000 samples per
// model. Validity/uniqueness diagnostics mirror the standard generative-
// chemistry evaluation and are used by the property bench and examples.
#pragma once

#include <string>
#include <vector>

#include "chem/molecule.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "models/autoencoder.h"

namespace sqvae::models {

struct GenerationMetrics {
  std::size_t requested = 0;
  std::size_t valid = 0;   // non-empty after sanitize
  std::size_t unique = 0;  // distinct canonical SMILES among valid
  double mean_qed = 0.0;   // averages over valid molecules
  double mean_logp = 0.0;  // normalised logP in [0, 1]
  double mean_sa = 0.0;    // normalised SA in [0, 1]
  double mean_heavy_atoms = 0.0;
};

/// Decodes one feature row (flattened dim x dim matrix) into a sanitized
/// molecule.
chem::Molecule decode_sample(const std::vector<double>& features,
                             std::size_t matrix_dim);

/// Decodes and scores a batch of feature rows.
GenerationMetrics evaluate_feature_samples(const Matrix& samples,
                                           std::size_t matrix_dim);

/// Samples `count` molecules from a generative model and scores them
/// (the Table II protocol: count = 1000).
GenerationMetrics sample_and_evaluate(Autoencoder& model, std::size_t count,
                                      std::size_t matrix_dim,
                                      sqvae::Rng& rng);

/// Scores an existing molecule set (used to report dataset reference
/// values next to model samples).
GenerationMetrics evaluate_molecules(const std::vector<chem::Molecule>& mols);

}  // namespace sqvae::models
