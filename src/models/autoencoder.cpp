#include "models/autoencoder.h"

#include <cassert>

namespace sqvae::models {

Var Autoencoder::build_loss(Tape& tape, const Matrix& batch, sqvae::Rng& rng,
                            LossStats* stats) {
  Var input = tape.constant(batch);
  ForwardResult fwd = forward(tape, input, rng);
  Var mse = tape.mse_loss(fwd.reconstruction, batch);
  Var total = mse;
  double kl_value = 0.0;
  if (is_generative()) {
    assert(fwd.mu && fwd.logvar && "generative forward must emit (mu,logvar)");
    Var kl = tape.kl_gaussian(*fwd.mu, *fwd.logvar);
    kl_value = tape.value(kl)(0, 0);
    total = tape.add(mse, tape.scale(kl, kl_weight_));
  }
  if (stats != nullptr) {
    stats->reconstruction_mse = tape.value(mse)(0, 0);
    stats->kl = kl_value;
    stats->total = tape.value(total)(0, 0);
  }
  return total;
}

Matrix Autoencoder::reconstruct(const Matrix& batch, sqvae::Rng& rng) {
  Tape tape;
  Var input = tape.constant(batch);
  ForwardResult fwd = forward(tape, input, rng);
  return tape.value(fwd.reconstruction);
}

Matrix Autoencoder::encode_values(const Matrix& batch) {
  Tape tape;
  Var z = encode_mean(tape, tape.constant(batch));
  return tape.value(z);
}

Matrix Autoencoder::decode_values(const Matrix& z) {
  Tape tape;
  Var out = decode(tape, tape.constant(z));
  return tape.value(out);
}

double Autoencoder::evaluate_mse(const Matrix& data, sqvae::Rng& rng) {
  const Matrix recon = reconstruct(data, rng);
  return recon.mse(data);
}

Matrix Autoencoder::sample(std::size_t count, sqvae::Rng& rng) {
  assert(is_generative() && "vanilla autoencoders cannot sample");
  Matrix z(count, latent_dim());
  for (std::size_t i = 0; i < z.size(); ++i) z[i] = rng.normal();
  Tape tape;
  Var out = decode(tape, tape.constant(std::move(z)));
  return tape.value(out);
}

std::size_t Autoencoder::num_quantum_parameters() {
  std::size_t n = 0;
  for (const ad::Parameter* p : quantum_parameters()) n += p->size();
  return n;
}

std::size_t Autoencoder::num_classical_parameters() {
  std::size_t n = 0;
  for (const ad::Parameter* p : classical_parameters()) n += p->size();
  return n;
}

std::vector<nn::ParamGroup> Autoencoder::param_groups(double quantum_lr,
                                                      double classical_lr) {
  std::vector<nn::ParamGroup> groups;
  auto q = quantum_parameters();
  auto c = classical_parameters();
  if (!q.empty()) groups.push_back(nn::ParamGroup{std::move(q), quantum_lr});
  if (!c.empty()) groups.push_back(nn::ParamGroup{std::move(c), classical_lr});
  return groups;
}

}  // namespace sqvae::models
