#include "models/classical.h"

#include <cassert>

namespace sqvae::models {

namespace {

std::vector<std::size_t> encoder_dims(const ClassicalConfig& c,
                                      bool to_latent) {
  std::vector<std::size_t> dims;
  dims.push_back(c.input_dim);
  for (std::size_t h : c.hidden) dims.push_back(h);
  if (to_latent) dims.push_back(c.latent_dim);
  return dims;
}

std::vector<std::size_t> decoder_dims(const ClassicalConfig& c) {
  std::vector<std::size_t> dims;
  dims.push_back(c.latent_dim);
  for (auto it = c.hidden.rbegin(); it != c.hidden.rend(); ++it) {
    dims.push_back(*it);
  }
  dims.push_back(c.input_dim);
  return dims;
}

}  // namespace

ClassicalConfig classical_config_64(std::size_t latent_dim) {
  return ClassicalConfig{64, {32, 16}, latent_dim};
}

ClassicalConfig classical_config_1024(std::size_t latent_dim) {
  // Hidden widths scale the paper's 64-dim shape (32, 16) up to 1024-dim
  // inputs; 256/128 keeps every swept latent dimension (up to 128, Fig.
  // 5(b)) narrower than the preceding hidden layer.
  return ClassicalConfig{1024, {256, 128}, latent_dim};
}

Var reparameterize(Tape& tape, Var mu, Var logvar, sqvae::Rng& rng) {
  const Matrix& mv = tape.value(mu);
  Matrix eps(mv.rows(), mv.cols());
  for (std::size_t i = 0; i < eps.size(); ++i) eps[i] = rng.normal();
  Var sigma = tape.exp_(tape.scale(logvar, 0.5));
  return tape.add(mu, tape.mul(sigma, tape.constant(std::move(eps))));
}

// ---------------------------------------------------------------- AE ----

ClassicalAe::ClassicalAe(const ClassicalConfig& config, sqvae::Rng& rng)
    : config_(config),
      encoder_(encoder_dims(config, /*to_latent=*/true),
               nn::Activation::kReLU, rng),
      decoder_(decoder_dims(config), nn::Activation::kReLU, rng) {}

ForwardResult ClassicalAe::forward(Tape& tape, Var input, sqvae::Rng&) {
  Var z = encoder_.forward(tape, input);
  return ForwardResult{decode(tape, z), std::nullopt, std::nullopt};
}

Var ClassicalAe::encode_mean(Tape& tape, Var input) {
  return encoder_.forward(tape, input);
}

Var ClassicalAe::decode(Tape& tape, Var z) {
  return decoder_.forward(tape, z);
}

std::vector<ad::Parameter*> ClassicalAe::classical_parameters() {
  std::vector<ad::Parameter*> out = encoder_.parameters();
  for (ad::Parameter* p : decoder_.parameters()) out.push_back(p);
  return out;
}

// --------------------------------------------------------------- VAE ----

ClassicalVae::ClassicalVae(const ClassicalConfig& config, sqvae::Rng& rng)
    : config_(config),
      encoder_trunk_(encoder_dims(config, /*to_latent=*/false),
                     nn::Activation::kReLU, rng),
      mu_head_(config.hidden.back(), config.latent_dim, rng),
      logvar_head_(config.hidden.back(), config.latent_dim, rng),
      decoder_(decoder_dims(config), nn::Activation::kReLU, rng) {
  assert(!config.hidden.empty());
}

ForwardResult ClassicalVae::forward(Tape& tape, Var input, sqvae::Rng& rng) {
  // The trunk MLP's last layer is linear; apply the hidden activation to it
  // before the heads (trunk output *is* the last hidden representation).
  Var h = tape.relu(encoder_trunk_.forward(tape, input));
  Var mu = mu_head_.forward(tape, h);
  Var logvar = logvar_head_.forward(tape, h);
  Var z = reparameterize(tape, mu, logvar, rng);
  return ForwardResult{decode(tape, z), mu, logvar};
}

Var ClassicalVae::decode(Tape& tape, Var z) {
  return decoder_.forward(tape, z);
}

Var ClassicalVae::encode_mean(Tape& tape, Var input) {
  Var h = tape.relu(encoder_trunk_.forward(tape, input));
  return mu_head_.forward(tape, h);
}

std::vector<ad::Parameter*> ClassicalVae::classical_parameters() {
  std::vector<ad::Parameter*> out = encoder_trunk_.parameters();
  for (ad::Parameter* p : mu_head_.parameters()) out.push_back(p);
  for (ad::Parameter* p : logvar_head_.parameters()) out.push_back(p);
  for (ad::Parameter* p : decoder_.parameters()) out.push_back(p);
  return out;
}

}  // namespace sqvae::models
