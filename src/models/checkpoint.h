// Model checkpointing: save/restore the parameter state of any model in
// the zoo (every trainable value lives in ad::Parameter objects exposed by
// quantum_parameters() + classical_parameters()).
//
// Format: a small text header ("sqvae-checkpoint 1", parameter count),
// then one line per parameter with its shape and row-major values printed
// with max_digits10 so a save/load round trip is bit-exact for doubles.
// Loading validates the shape sequence against the target model, so
// restoring into a differently configured model fails loudly.
#pragma once

#include <string>
#include <vector>

#include "autodiff/tape.h"
#include "models/autoencoder.h"

namespace sqvae::models {

/// Serialises parameters in order (quantum first, then classical).
std::string checkpoint_to_text(Autoencoder& model);

/// Restores parameters from text into `model`. Returns false (leaving the
/// model untouched) on a header/shape/count mismatch or parse error.
bool checkpoint_from_text(const std::string& text, Autoencoder& model);

/// File convenience wrappers.
bool save_checkpoint(Autoencoder& model, const std::string& path);
bool load_checkpoint(const std::string& path, Autoencoder& model);

}  // namespace sqvae::models
