// Model checkpointing: save/restore the parameter state of any model in
// the zoo (every trainable value lives in ad::Parameter objects exposed by
// quantum_parameters() + classical_parameters()).
//
// Two text formats:
//
//   v1 ("sqvae-checkpoint 1") — parameter values only: a header with the
//   parameter count, then one line per parameter with its shape and
//   row-major values printed with max_digits10 so a save/load round trip
//   is bit-exact for doubles.
//
//   v2 ("sqvae-checkpoint 2") — full training state for exact resume: the
//   v1 parameter block plus the epoch cursor, best-model tracking
//   counters, the complete Adam state (per-group learning rates and m/v
//   moments, step count — see nn::Adam::serialize), and the training Rng
//   state. Restoring a v2 checkpoint makes a resumed Trainer::fit
//   bit-equivalent to a run that was never interrupted (for exact-
//   statevector training; stochastic measurement backends restart their
//   noise streams — see trainer.h).
//
// Loading validates the shape sequence against the target model and
// rejects any non-whitespace trailing content (truncated or concatenated
// files fail loudly instead of loading silently). On any error the target
// objects are left untouched.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "autodiff/tape.h"
#include "common/rng.h"
#include "models/autoencoder.h"
#include "nn/optim.h"

namespace sqvae::models {

/// Training-loop state carried by a v2 checkpoint alongside the model
/// parameters. `optimizer` and `rng` are optional attachments: when
/// non-null they are serialised on save and restored on load; a null
/// pointer writes (or skips) an empty block.
struct TrainState {
  /// Next epoch index to run (an interrupted run resumes here).
  std::size_t next_epoch = 0;

  nn::Adam* optimizer = nullptr;
  sqvae::Rng* rng = nullptr;

  // Best-model tracking (see TrainConfig): the monitored metric's best
  // value so far and the early-stopping counter.
  bool has_best = false;
  std::size_t best_epoch = 0;
  double best_metric = 0.0;
  std::size_t epochs_since_improvement = 0;
};

/// The parameter list in checkpoint order (quantum first, then
/// classical) — the ordering contract every checkpoint format version and
/// every parameter snapshot (serve::LoadedModel) must agree on. Defined
/// once here so consumers cannot drift.
std::vector<ad::Parameter*> checkpoint_parameters(Autoencoder& model);

/// Serialises parameters in order (quantum first, then classical). v1.
std::string checkpoint_to_text(Autoencoder& model);

/// Restores parameters from v1 text into `model`. Returns false (leaving
/// the model untouched) on a header/shape/count mismatch, parse error, or
/// trailing garbage.
bool checkpoint_from_text(const std::string& text, Autoencoder& model);

/// Serialises parameters plus training state (checkpoint v2).
std::string checkpoint_to_text_v2(Autoencoder& model, const TrainState& state);

/// Restores a v2 checkpoint into `model` and `state` (including
/// *state.optimizer / *state.rng when those pointers are set). All-or-
/// nothing: on failure every target is left untouched. A v2 file whose
/// optimizer/rng blocks are empty leaves the attached objects unchanged.
bool checkpoint_from_text_v2(const std::string& text, Autoencoder& model,
                             TrainState& state);

/// Writes `text` to `path` via a sibling temp file + rename, so a kill or
/// write error mid-save never destroys an existing good file. Used by
/// every checkpoint save; exposed for other writers of resume-critical
/// files.
bool write_file_atomic(const std::string& path, const std::string& text);

/// Inference-only load: restores the parameter block of a v1 *or* v2
/// checkpoint into `model` and ignores any v2 training state. Unlike
/// checkpoint_from_text_v2 it requires no attached optimizer/rng objects
/// and accepts files whose Adam moments were stripped (an "optimizer 0"
/// block), so a serving process can load training checkpoints without
/// carrying optimizer machinery. The parameter block is still validated
/// shape-by-shape (all-or-nothing on failure); everything after it in a v2
/// file is deliberately not parsed — a truncated *training* tail must not
/// prevent serving the parameters, which are already complete. v1 files
/// keep the strict trailing-garbage check (they end at the parameters).
bool load_params_only(const std::string& text, Autoencoder& model);

/// File convenience wrapper for load_params_only.
bool load_params_checkpoint(const std::string& path, Autoencoder& model);

/// File convenience wrappers (v1).
bool save_checkpoint(Autoencoder& model, const std::string& path);
bool load_checkpoint(const std::string& path, Autoencoder& model);

/// File convenience wrappers (v2).
bool save_train_checkpoint(const std::string& path, Autoencoder& model,
                           const TrainState& state);
bool load_train_checkpoint(const std::string& path, Autoencoder& model,
                           TrainState& state);

}  // namespace sqvae::models
