#include "models/generation.h"

#include <set>

#include "chem/logp.h"
#include "chem/molecule_matrix.h"
#include "chem/qed.h"
#include "chem/sa_score.h"
#include "chem/sanitize.h"
#include "chem/smiles.h"

namespace sqvae::models {

chem::Molecule decode_sample(const std::vector<double>& features,
                             std::size_t matrix_dim) {
  const chem::Molecule raw =
      chem::features_to_molecule(features, matrix_dim);
  return chem::sanitize(raw);
}

namespace {

GenerationMetrics score(const std::vector<chem::Molecule>& molecules,
                        std::size_t requested) {
  GenerationMetrics m;
  m.requested = requested;
  std::set<std::string> smiles_set;
  double qed_sum = 0.0, logp_sum = 0.0, sa_sum = 0.0, atoms_sum = 0.0;
  for (const chem::Molecule& mol : molecules) {
    if (mol.empty()) continue;
    ++m.valid;
    qed_sum += chem::qed(mol);
    logp_sum += chem::normalized_logp(mol);
    sa_sum += chem::normalized_sa_score(mol);
    atoms_sum += static_cast<double>(mol.num_atoms());
    if (auto s = chem::to_smiles(mol)) smiles_set.insert(*s);
  }
  m.unique = smiles_set.size();
  if (m.valid > 0) {
    const double n = static_cast<double>(m.valid);
    m.mean_qed = qed_sum / n;
    m.mean_logp = logp_sum / n;
    m.mean_sa = sa_sum / n;
    m.mean_heavy_atoms = atoms_sum / n;
  }
  return m;
}

}  // namespace

GenerationMetrics evaluate_feature_samples(const Matrix& samples,
                                           std::size_t matrix_dim) {
  std::vector<chem::Molecule> molecules;
  molecules.reserve(samples.rows());
  for (std::size_t r = 0; r < samples.rows(); ++r) {
    molecules.push_back(decode_sample(samples.row(r), matrix_dim));
  }
  return score(molecules, samples.rows());
}

GenerationMetrics sample_and_evaluate(Autoencoder& model, std::size_t count,
                                      std::size_t matrix_dim,
                                      sqvae::Rng& rng) {
  const Matrix samples = model.sample(count, rng);
  return evaluate_feature_samples(samples, matrix_dim);
}

GenerationMetrics evaluate_molecules(
    const std::vector<chem::Molecule>& mols) {
  return score(mols, mols.size());
}

}  // namespace sqvae::models
