// Classical autoencoder baselines (Section III-B of the paper).
//
// Encoder: input -> hidden MLP (ReLU) -> latent; decoder mirrors the
// encoder. The paper's 64-dim models use hidden layers 32 and 16 with a
// 6-dim latent; the 1024-dim PDBbind models keep the same two-hidden-layer
// shape scaled up (128, 64 — see DESIGN.md). The VAE replaces the
// encoder's final projection with (mu, logvar) heads and reparameterises.
#pragma once

#include <memory>

#include "models/autoencoder.h"
#include "nn/linear.h"

namespace sqvae::models {

struct ClassicalConfig {
  std::size_t input_dim = 64;
  std::vector<std::size_t> hidden = {32, 16};
  std::size_t latent_dim = 6;
};

/// Paper defaults for the 64-dim (Digits / QM9) experiments.
ClassicalConfig classical_config_64(std::size_t latent_dim = 6);
/// Defaults for the 1024-dim (PDBbind / CIFAR) experiments.
ClassicalConfig classical_config_1024(std::size_t latent_dim = 10);

class ClassicalAe final : public Autoencoder {
 public:
  ClassicalAe(const ClassicalConfig& config, sqvae::Rng& rng);

  ForwardResult forward(Tape& tape, Var input, sqvae::Rng& rng) override;
  Var decode(Tape& tape, Var z) override;
  Var encode_mean(Tape& tape, Var input) override;
  std::size_t input_dim() const override { return config_.input_dim; }
  std::size_t latent_dim() const override { return config_.latent_dim; }
  bool is_generative() const override { return false; }
  std::vector<ad::Parameter*> quantum_parameters() override { return {}; }
  std::vector<ad::Parameter*> classical_parameters() override;

 private:
  ClassicalConfig config_;
  nn::Mlp encoder_;
  nn::Mlp decoder_;
};

class ClassicalVae final : public Autoencoder {
 public:
  ClassicalVae(const ClassicalConfig& config, sqvae::Rng& rng);

  ForwardResult forward(Tape& tape, Var input, sqvae::Rng& rng) override;
  Var decode(Tape& tape, Var z) override;
  Var encode_mean(Tape& tape, Var input) override;
  std::size_t input_dim() const override { return config_.input_dim; }
  std::size_t latent_dim() const override { return config_.latent_dim; }
  bool is_generative() const override { return true; }
  std::vector<ad::Parameter*> quantum_parameters() override { return {}; }
  std::vector<ad::Parameter*> classical_parameters() override;

 private:
  ClassicalConfig config_;
  nn::Mlp encoder_trunk_;  // input -> last hidden
  nn::Linear mu_head_;
  nn::Linear logvar_head_;
  nn::Mlp decoder_;
};

/// Reparameterisation z = mu + exp(logvar/2) * eps as tape ops; `eps` is
/// drawn from `rng`. Shared by every generative model in the zoo.
Var reparameterize(Tape& tape, Var mu, Var logvar, sqvae::Rng& rng);

}  // namespace sqvae::models
