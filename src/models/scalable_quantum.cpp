#include "models/scalable_quantum.h"

#include <cassert>

#include "models/classical.h"

namespace sqvae::models {

namespace {

int log2_exact(std::size_t v) {
  int k = 0;
  while ((std::size_t{1} << k) < v) ++k;
  assert((std::size_t{1} << k) == v &&
         "input_dim / patches must be a power of two");
  return k;
}

/// Per-patch stream decorrelation: encoder patch p is layer 2p, decoder
/// patch p is layer 2p+1 in derive_layer_options' index space, so one
/// model-level SimulationOptions drives all patches without replaying
/// identical noise.
qsim::SimulationOptions patch_sim(const qsim::SimulationOptions& sim,
                                  std::uint64_t layer_index) {
  return qsim::derive_layer_options(sim, layer_index);
}

QuantumLayerConfig patch_encoder_config(const ScalableQuantumConfig& c,
                                        int patch) {
  QuantumLayerConfig q;
  q.num_qubits = c.qubits_per_patch();
  q.entangling_layers = c.entangling_layers;
  q.input = QuantumLayerConfig::InputMode::kAmplitude;
  q.output = QuantumLayerConfig::OutputMode::kExpectationZ;
  q.input_dim =
      static_cast<int>(c.input_dim / static_cast<std::size_t>(c.patches));
  q.sim = patch_sim(c.sim, 2 * static_cast<std::uint64_t>(patch));
  return q;
}

QuantumLayerConfig patch_decoder_config(const ScalableQuantumConfig& c,
                                        int patch) {
  QuantumLayerConfig q;
  q.num_qubits = c.qubits_per_patch();
  q.entangling_layers = c.entangling_layers;
  q.input = QuantumLayerConfig::InputMode::kAngle;
  q.output = QuantumLayerConfig::OutputMode::kExpectationZ;
  q.input_dim = c.qubits_per_patch();
  q.sim = patch_sim(c.sim, 2 * static_cast<std::uint64_t>(patch) + 1);
  return q;
}

}  // namespace

int ScalableQuantumConfig::qubits_per_patch() const {
  assert(patches > 0 && input_dim % static_cast<std::size_t>(patches) == 0);
  return log2_exact(input_dim / static_cast<std::size_t>(patches));
}

std::size_t ScalableQuantumConfig::latent_dim() const {
  return static_cast<std::size_t>(patches) *
         static_cast<std::size_t>(qubits_per_patch());
}

int patches_for_lsd_1024(std::size_t lsd) {
  switch (lsd) {
    case 18: return 2;   // 2 * log2(512) = 18
    case 32: return 4;   // 4 * log2(256) = 32
    case 56: return 8;   // 8 * log2(128) = 56
    case 96: return 16;  // 16 * log2(64) = 96
    default:
      assert(false && "unsupported LSD for 1024-dim patched circuits");
      return 0;
  }
}

ScalableQuantumAutoencoder::ScalableQuantumAutoencoder(
    const ScalableQuantumConfig& config, sqvae::Rng& rng)
    : config_(config),
      encoder_fc_(config.latent_dim(), config.latent_dim(), rng),
      output_fc_(config.latent_dim(), config.input_dim, rng) {
  encoder_patches_.reserve(static_cast<std::size_t>(config.patches));
  decoder_patches_.reserve(static_cast<std::size_t>(config.patches));
  for (int p = 0; p < config.patches; ++p) {
    encoder_patches_.emplace_back(patch_encoder_config(config, p), rng);
    decoder_patches_.emplace_back(patch_decoder_config(config, p), rng);
  }
  if (config.generative) {
    mu_head_ =
        std::make_unique<nn::Linear>(config.latent_dim(), config.latent_dim(),
                                     rng);
    logvar_head_ =
        std::make_unique<nn::Linear>(config.latent_dim(), config.latent_dim(),
                                     rng);
  }
}

Var ScalableQuantumAutoencoder::encode(Tape& tape, Var input) {
  const std::size_t chunk =
      config_.input_dim / static_cast<std::size_t>(config_.patches);
  std::vector<Var> measured;
  measured.reserve(encoder_patches_.size());
  for (std::size_t p = 0; p < encoder_patches_.size(); ++p) {
    Var sub = tape.slice_cols(input, p * chunk, chunk);
    measured.push_back(encoder_patches_[p].forward(tape, sub));
  }
  Var h = tape.concat_cols(measured);
  return encoder_fc_.forward(tape, h);
}

Var ScalableQuantumAutoencoder::encode_mean(Tape& tape, Var input) {
  Var h = encode(tape, input);
  if (config_.generative) return mu_head_->forward(tape, h);
  return h;
}

ForwardResult ScalableQuantumAutoencoder::forward(Tape& tape, Var input,
                                                  sqvae::Rng& rng) {
  Var h = encode(tape, input);
  if (config_.generative) {
    Var mu = mu_head_->forward(tape, h);
    Var logvar = logvar_head_->forward(tape, h);
    Var z = reparameterize(tape, mu, logvar, rng);
    return ForwardResult{decode(tape, z), mu, logvar};
  }
  return ForwardResult{decode(tape, h), std::nullopt, std::nullopt};
}

Var ScalableQuantumAutoencoder::decode(Tape& tape, Var z) {
  const std::size_t q = static_cast<std::size_t>(config_.qubits_per_patch());
  std::vector<Var> measured;
  measured.reserve(decoder_patches_.size());
  for (std::size_t p = 0; p < decoder_patches_.size(); ++p) {
    Var sub = tape.slice_cols(z, p * q, q);
    measured.push_back(decoder_patches_[p].forward(tape, sub));
  }
  Var h = tape.concat_cols(measured);
  return output_fc_.forward(tape, h);
}

std::vector<ad::Parameter*> ScalableQuantumAutoencoder::quantum_parameters() {
  std::vector<ad::Parameter*> out;
  for (QuantumLayer& l : encoder_patches_) out.push_back(&l.weights());
  for (QuantumLayer& l : decoder_patches_) out.push_back(&l.weights());
  return out;
}

void ScalableQuantumAutoencoder::set_simulation_options(
    const qsim::SimulationOptions& sim) {
  config_.sim = sim;
  for (std::size_t p = 0; p < encoder_patches_.size(); ++p) {
    encoder_patches_[p].set_simulation_options(
        patch_sim(sim, 2 * static_cast<std::uint64_t>(p)));
    decoder_patches_[p].set_simulation_options(
        patch_sim(sim, 2 * static_cast<std::uint64_t>(p) + 1));
  }
}

bool ScalableQuantumAutoencoder::stochastic_forward() const {
  for (const QuantumLayer& l : encoder_patches_) {
    if (l.backend().kind() != qsim::BackendKind::kStatevector) return true;
  }
  for (const QuantumLayer& l : decoder_patches_) {
    if (l.backend().kind() != qsim::BackendKind::kStatevector) return true;
  }
  return false;
}

std::vector<ad::Parameter*>
ScalableQuantumAutoencoder::classical_parameters() {
  std::vector<ad::Parameter*> out;
  for (ad::Parameter* p : encoder_fc_.parameters()) out.push_back(p);
  for (ad::Parameter* p : output_fc_.parameters()) out.push_back(p);
  if (mu_head_) {
    for (ad::Parameter* p : mu_head_->parameters()) out.push_back(p);
    for (ad::Parameter* p : logvar_head_->parameters()) out.push_back(p);
  }
  return out;
}

std::unique_ptr<ScalableQuantumAutoencoder> make_sq_ae(
    const ScalableQuantumConfig& config, sqvae::Rng& rng) {
  ScalableQuantumConfig c = config;
  c.generative = false;
  return std::make_unique<ScalableQuantumAutoencoder>(c, rng);
}

std::unique_ptr<ScalableQuantumAutoencoder> make_sq_vae(
    ScalableQuantumConfig config, sqvae::Rng& rng) {
  config.generative = true;
  return std::make_unique<ScalableQuantumAutoencoder>(config, rng);
}

}  // namespace sqvae::models
