// Scalable quantum autoencoders (Section III-C): SQ-AE and SQ-VAE with
// patched quantum circuits.
//
// The patched architecture partitions the input_dim-dimensional feature
// vector into `patches` equal sub-vectors. Each sub-vector is amplitude-
// embedded into its own circuit of q = log2(input_dim / patches) qubits
// with independent weights; the concatenated per-qubit <Z> outputs give a
// latent of dimension LSD = patches * q — 18, 32, 56, 96 for 2, 4, 8, 16
// patches at input_dim 1024, exactly the paper's Table II columns. The
// decoder splits the latent back into `patches` chunks of q angles, runs
// per-patch circuits with expectation outputs, and maps the concatenated
// measurements to input_dim features through a final FC layer; a
// symmetric FC (LSD -> LSD) follows the encoder measurements ("both
// quantum encoder and decoder are connected to a classical layer").
#pragma once

#include <memory>
#include <vector>

#include "models/autoencoder.h"
#include "models/quantum_layer.h"
#include "nn/linear.h"

namespace sqvae::models {

struct ScalableQuantumConfig {
  std::size_t input_dim = 1024;
  int patches = 8;
  int entangling_layers = 5;  // Fig. 6's selected depth
  bool generative = false;    // SQ-VAE
  /// Simulation regime of every patch circuit (see qsim/backend.h); each
  /// patch derives a decorrelated stream from this seed.
  qsim::SimulationOptions sim{};

  /// Qubits per patch: log2(input_dim / patches); input_dim must be
  /// divisible by patches with a power-of-two quotient.
  int qubits_per_patch() const;
  /// LSD = patches * qubits_per_patch().
  std::size_t latent_dim() const;
};

/// Patch count for a target LSD at input_dim 1024 (paper Table II):
/// 18 -> 2, 32 -> 4, 56 -> 8, 96 -> 16. Asserts on unknown LSDs.
int patches_for_lsd_1024(std::size_t lsd);

class ScalableQuantumAutoencoder final : public Autoencoder {
 public:
  ScalableQuantumAutoencoder(const ScalableQuantumConfig& config,
                             sqvae::Rng& rng);

  ForwardResult forward(Tape& tape, Var input, sqvae::Rng& rng) override;
  Var decode(Tape& tape, Var z) override;
  std::size_t input_dim() const override { return config_.input_dim; }
  std::size_t latent_dim() const override { return config_.latent_dim(); }
  bool is_generative() const override { return config_.generative; }
  std::vector<ad::Parameter*> quantum_parameters() override;
  std::vector<ad::Parameter*> classical_parameters() override;
  void set_simulation_options(const qsim::SimulationOptions& sim) override;
  bool stochastic_forward() const override;

  /// Encoder pass (patched embedding + measurements + encoder FC).
  Var encode(Tape& tape, Var input);

  /// Deterministic latent code: encode() for the AE; the mu head's output
  /// for the VAE (the mean of q(z|x), i.e. the reparameterisation without
  /// noise). This is the right seed for latent-space optimization.
  Var encode_mean(Tape& tape, Var input) override;

  const ScalableQuantumConfig& config() const { return config_; }

 private:
  ScalableQuantumConfig config_;
  std::vector<QuantumLayer> encoder_patches_;
  std::vector<QuantumLayer> decoder_patches_;
  nn::Linear encoder_fc_;                    // LSD -> LSD
  nn::Linear output_fc_;                     // LSD -> input_dim
  std::unique_ptr<nn::Linear> mu_head_;      // generative
  std::unique_ptr<nn::Linear> logvar_head_;  // generative
};

std::unique_ptr<ScalableQuantumAutoencoder> make_sq_ae(
    const ScalableQuantumConfig& config, sqvae::Rng& rng);
std::unique_ptr<ScalableQuantumAutoencoder> make_sq_vae(
    ScalableQuantumConfig config, sqvae::Rng& rng);

}  // namespace sqvae::models
