#include "models/checkpoint.h"

#include <cstdio>
#include <fstream>
#include <iomanip>
#include <limits>
#include <optional>
#include <sstream>

#include "common/parse.h"

namespace sqvae::models {

std::vector<ad::Parameter*> checkpoint_parameters(Autoencoder& model) {
  std::vector<ad::Parameter*> params = model.quantum_parameters();
  for (ad::Parameter* p : model.classical_parameters()) params.push_back(p);
  return params;
}

namespace {

/// True when only whitespace remains on `in` — a checkpoint with trailing
/// garbage (truncated tail of a concatenated file, stray bytes) must not
/// load as if it were complete.
bool at_clean_end(std::istream& in) {
  in >> std::ws;
  return in.eof() || in.peek() == std::char_traits<char>::eof();
}

void write_parameters(std::ostream& os,
                      const std::vector<ad::Parameter*>& params) {
  os << params.size() << '\n';
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (const ad::Parameter* p : params) {
    os << p->value.rows() << ' ' << p->value.cols();
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      os << ' ' << p->value[i];
    }
    os << '\n';
  }
}

/// Parses the parameter block into staging storage; the model is only
/// mutated by commit_parameters() once the whole checkpoint is consistent.
bool read_parameters(std::istream& in,
                     const std::vector<ad::Parameter*>& params,
                     std::vector<Matrix>& staged) {
  std::size_t count = 0;
  if (!(in >> count)) return false;
  if (count != params.size()) return false;
  staged.clear();
  staged.reserve(count);
  for (ad::Parameter* p : params) {
    std::size_t rows = 0, cols = 0;
    if (!(in >> rows >> cols)) return false;
    if (rows != p->value.rows() || cols != p->value.cols()) return false;
    Matrix m(rows, cols);
    for (std::size_t i = 0; i < m.size(); ++i) {
      if (!parse_double(in, m[i])) return false;
    }
    staged.push_back(std::move(m));
  }
  return true;
}

void commit_parameters(const std::vector<ad::Parameter*>& params,
                       std::vector<Matrix>& staged) {
  for (std::size_t k = 0; k < params.size(); ++k) {
    params[k]->value = std::move(staged[k]);
    params[k]->zero_grad();
  }
}

}  // namespace

std::string checkpoint_to_text(Autoencoder& model) {
  const auto params = checkpoint_parameters(model);
  std::ostringstream os;
  os << "sqvae-checkpoint 1\n";
  write_parameters(os, params);
  return os.str();
}

bool checkpoint_from_text(const std::string& text, Autoencoder& model) {
  std::istringstream in(text);
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != "sqvae-checkpoint" ||
      version != 1) {
    return false;
  }
  const auto params = checkpoint_parameters(model);
  std::vector<Matrix> staged;
  if (!read_parameters(in, params, staged)) return false;
  if (!at_clean_end(in)) return false;
  commit_parameters(params, staged);
  return true;
}

std::string checkpoint_to_text_v2(Autoencoder& model,
                                  const TrainState& state) {
  const auto params = checkpoint_parameters(model);
  std::ostringstream os;
  os << "sqvae-checkpoint 2\n";
  write_parameters(os, params);
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "epoch " << state.next_epoch << '\n';
  os << "best " << (state.has_best ? 1 : 0) << ' ' << state.best_epoch << ' '
     << state.best_metric << ' ' << state.epochs_since_improvement << '\n';
  os << "optimizer " << (state.optimizer != nullptr ? 1 : 0) << '\n';
  if (state.optimizer != nullptr) state.optimizer->serialize(os);
  os << "rng " << (state.rng != nullptr ? 1 : 0) << '\n';
  if (state.rng != nullptr) {
    const sqvae::Rng::State s = state.rng->state();
    os << s.state_hi << ' ' << s.state_lo << ' ' << s.cached_normal << ' '
       << (s.has_cached_normal ? 1 : 0) << '\n';
  }
  return os.str();
}

bool checkpoint_from_text_v2(const std::string& text, Autoencoder& model,
                             TrainState& state) {
  std::istringstream in(text);
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != "sqvae-checkpoint" ||
      version != 2) {
    return false;
  }
  const auto params = checkpoint_parameters(model);
  std::vector<Matrix> staged;
  if (!read_parameters(in, params, staged)) return false;

  std::string tag;
  TrainState parsed = state;  // keeps the optimizer/rng attachments
  if (!(in >> tag >> parsed.next_epoch) || tag != "epoch") return false;
  int has_best = 0;
  if (!(in >> tag >> has_best >> parsed.best_epoch) || tag != "best" ||
      (has_best != 0 && has_best != 1) ||
      !parse_double(in, parsed.best_metric) ||
      !(in >> parsed.epochs_since_improvement)) {
    return false;
  }
  parsed.has_best = has_best == 1;

  // Optimizer block: staged in a scratch copy so a later failure leaves the
  // attached optimizer untouched.
  int has_optimizer = 0;
  if (!(in >> tag >> has_optimizer) || tag != "optimizer" ||
      (has_optimizer != 0 && has_optimizer != 1)) {
    return false;
  }
  std::optional<nn::Adam> staged_optimizer;
  if (has_optimizer == 1) {
    if (state.optimizer == nullptr) return false;
    staged_optimizer.emplace(*state.optimizer);
    if (!staged_optimizer->deserialize(in)) return false;
  }

  int has_rng = 0;
  if (!(in >> tag >> has_rng) || tag != "rng" ||
      (has_rng != 0 && has_rng != 1)) {
    return false;
  }
  bool restore_rng = false;
  sqvae::Rng::State rng_state;
  if (has_rng == 1) {
    if (state.rng == nullptr) return false;
    int has_cached = 0;
    if (!(in >> rng_state.state_hi >> rng_state.state_lo) ||
        !parse_double(in, rng_state.cached_normal) || !(in >> has_cached) ||
        (has_cached != 0 && has_cached != 1)) {
      return false;
    }
    rng_state.has_cached_normal = has_cached == 1;
    restore_rng = true;
  }

  if (!at_clean_end(in)) return false;

  commit_parameters(params, staged);
  if (staged_optimizer.has_value()) {
    *state.optimizer = std::move(*staged_optimizer);
  }
  if (restore_rng) state.rng->set_state(rng_state);
  state.next_epoch = parsed.next_epoch;
  state.has_best = parsed.has_best;
  state.best_epoch = parsed.best_epoch;
  state.best_metric = parsed.best_metric;
  state.epochs_since_improvement = parsed.epochs_since_improvement;
  return true;
}

bool load_params_only(const std::string& text, Autoencoder& model) {
  std::istringstream in(text);
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != "sqvae-checkpoint" ||
      (version != 1 && version != 2)) {
    return false;
  }
  const auto params = checkpoint_parameters(model);
  std::vector<Matrix> staged;
  if (!read_parameters(in, params, staged)) return false;
  // v2 training state (epoch/best/optimizer/rng blocks) is ignored here —
  // see the header contract. v1 ends at the parameters, so trailing bytes
  // still mean a corrupt file.
  if (version == 1 && !at_clean_end(in)) return false;
  commit_parameters(params, staged);
  return true;
}

bool load_params_checkpoint(const std::string& path, Autoencoder& model) {
  std::ifstream f(path);
  if (!f) return false;
  std::ostringstream buffer;
  buffer << f.rdbuf();
  return load_params_only(buffer.str(), model);
}

bool write_file_atomic(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp);
    if (!f) return false;
    f << text;
    if (!f) {
      f.close();
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool save_checkpoint(Autoencoder& model, const std::string& path) {
  return write_file_atomic(path, checkpoint_to_text(model));
}

bool load_checkpoint(const std::string& path, Autoencoder& model) {
  std::ifstream f(path);
  if (!f) return false;
  std::ostringstream buffer;
  buffer << f.rdbuf();
  return checkpoint_from_text(buffer.str(), model);
}

bool save_train_checkpoint(const std::string& path, Autoencoder& model,
                           const TrainState& state) {
  return write_file_atomic(path, checkpoint_to_text_v2(model, state));
}

bool load_train_checkpoint(const std::string& path, Autoencoder& model,
                           TrainState& state) {
  std::ifstream f(path);
  if (!f) return false;
  std::ostringstream buffer;
  buffer << f.rdbuf();
  return checkpoint_from_text_v2(buffer.str(), model, state);
}

}  // namespace sqvae::models
