#include "models/checkpoint.h"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

namespace sqvae::models {

namespace {

std::vector<ad::Parameter*> all_parameters(Autoencoder& model) {
  std::vector<ad::Parameter*> params = model.quantum_parameters();
  for (ad::Parameter* p : model.classical_parameters()) params.push_back(p);
  return params;
}

}  // namespace

std::string checkpoint_to_text(Autoencoder& model) {
  const auto params = all_parameters(model);
  std::ostringstream os;
  os << "sqvae-checkpoint 1\n" << params.size() << '\n';
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (const ad::Parameter* p : params) {
    os << p->value.rows() << ' ' << p->value.cols();
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      os << ' ' << p->value[i];
    }
    os << '\n';
  }
  return os.str();
}

bool checkpoint_from_text(const std::string& text, Autoencoder& model) {
  std::istringstream in(text);
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != "sqvae-checkpoint" ||
      version != 1) {
    return false;
  }
  std::size_t count = 0;
  if (!(in >> count)) return false;
  const auto params = all_parameters(model);
  if (count != params.size()) return false;

  // Parse into staging storage first: the model is only mutated when the
  // whole checkpoint is consistent.
  std::vector<Matrix> staged;
  staged.reserve(count);
  for (ad::Parameter* p : params) {
    std::size_t rows = 0, cols = 0;
    if (!(in >> rows >> cols)) return false;
    if (rows != p->value.rows() || cols != p->value.cols()) return false;
    Matrix m(rows, cols);
    for (std::size_t i = 0; i < m.size(); ++i) {
      if (!(in >> m[i])) return false;
    }
    staged.push_back(std::move(m));
  }
  for (std::size_t k = 0; k < params.size(); ++k) {
    params[k]->value = std::move(staged[k]);
    params[k]->zero_grad();
  }
  return true;
}

bool save_checkpoint(Autoencoder& model, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  f << checkpoint_to_text(model);
  return static_cast<bool>(f);
}

bool load_checkpoint(const std::string& path, Autoencoder& model) {
  std::ifstream f(path);
  if (!f) return false;
  std::ostringstream buffer;
  buffer << f.rdbuf();
  return checkpoint_from_text(buffer.str(), model);
}

}  // namespace sqvae::models
