#include "models/trainer.h"

#include <cmath>

#include "common/stopwatch.h"
#include "data/dataset.h"

namespace sqvae::models {

namespace {

/// Scales all gradients so their global L2 norm is at most `max_norm`.
void clip_gradients(const std::vector<nn::ParamGroup>& groups,
                    double max_norm) {
  double sum_sq = 0.0;
  for (const nn::ParamGroup& g : groups) {
    for (const ad::Parameter* p : g.params) {
      for (std::size_t i = 0; i < p->grad.size(); ++i) {
        sum_sq += p->grad[i] * p->grad[i];
      }
    }
  }
  const double norm = std::sqrt(sum_sq);
  if (norm <= max_norm || norm == 0.0) return;
  const double scale = max_norm / norm;
  for (const nn::ParamGroup& g : groups) {
    for (ad::Parameter* p : g.params) {
      for (std::size_t i = 0; i < p->grad.size(); ++i) {
        p->grad[i] *= scale;
      }
    }
  }
}

}  // namespace

Trainer::Trainer(Autoencoder& model, const TrainConfig& config)
    : model_(model), config_(config) {}

std::vector<EpochStats> Trainer::fit(const Matrix& train, const Matrix* test,
                                     sqvae::Rng& rng,
                                     const EpochCallback& callback) {
  model_.set_kl_weight(config_.kl_weight);
  if (config_.sim.has_value()) {
    model_.set_simulation_options(*config_.sim);
  }
  const std::vector<nn::ParamGroup> groups =
      model_.param_groups(config_.quantum_lr, config_.classical_lr);
  nn::Adam optimizer(groups);

  std::vector<EpochStats> history;
  history.reserve(config_.epochs);

  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    Stopwatch watch;
    if (config_.lr_decay != 1.0 && epoch > 0) {
      for (std::size_t g = 0; g < optimizer.num_groups(); ++g) {
        optimizer.set_lr(g, optimizer.lr(g) * config_.lr_decay);
      }
    }
    const auto batches =
        data::make_batches(train.rows(), config_.batch_size, rng);

    double loss_sum = 0.0;
    double mse_sum = 0.0;
    double kl_sum = 0.0;
    for (const auto& indices : batches) {
      Matrix batch(indices.size(), train.cols());
      for (std::size_t r = 0; r < indices.size(); ++r) {
        for (std::size_t c = 0; c < train.cols(); ++c) {
          batch(r, c) = train(indices[r], c);
        }
      }
      ad::Tape tape;
      LossStats stats;
      ad::Var loss = model_.build_loss(tape, batch, rng, &stats);
      optimizer.zero_grad();
      tape.backward(loss);
      if (config_.grad_clip > 0.0) {
        clip_gradients(groups, config_.grad_clip);
      }
      optimizer.step();
      loss_sum += stats.total;
      mse_sum += stats.reconstruction_mse;
      kl_sum += stats.kl;
    }

    EpochStats stats;
    stats.epoch = epoch;
    const double nb = static_cast<double>(batches.size());
    stats.train_loss = loss_sum / nb;
    stats.train_mse = mse_sum / nb;
    stats.train_kl = kl_sum / nb;
    if (test != nullptr && test->rows() > 0) {
      stats.test_mse = model_.evaluate_mse(*test, rng);
    }
    stats.seconds = watch.seconds();
    if (callback) callback(stats);
    history.push_back(stats);
  }
  return history;
}

}  // namespace sqvae::models
