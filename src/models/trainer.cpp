#include "models/trainer.h"

#include <cassert>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "common/stopwatch.h"
#include "data/dataset.h"
#include "models/checkpoint.h"

namespace sqvae::models {

namespace {

/// Scales all gradients so their global L2 norm is at most `max_norm`.
void clip_gradients(const std::vector<nn::ParamGroup>& groups,
                    double max_norm) {
  double sum_sq = 0.0;
  for (const nn::ParamGroup& g : groups) {
    for (const ad::Parameter* p : g.params) {
      for (std::size_t i = 0; i < p->grad.size(); ++i) {
        sum_sq += p->grad[i] * p->grad[i];
      }
    }
  }
  const double norm = std::sqrt(sum_sq);
  if (norm <= max_norm || norm == 0.0) return;
  const double scale = max_norm / norm;
  for (const nn::ParamGroup& g : groups) {
    for (ad::Parameter* p : g.params) {
      for (std::size_t i = 0; i < p->grad.size(); ++i) {
        p->grad[i] *= scale;
      }
    }
  }
}

/// Per-sample gradient buffer: one (possibly still-empty) matrix per
/// parameter, indexed by the trainer's fixed parameter order. Empty slots
/// mean "no gradient flowed here" and are skipped by the reduction.
class IndexedGradSink final : public ad::GradSink {
 public:
  IndexedGradSink(const std::unordered_map<ad::Parameter*, std::size_t>& index,
                  std::vector<Matrix>& grads)
      : index_(index), grads_(grads) {}

  void accumulate(ad::Parameter* p, const Matrix& grad) override {
    const auto it = index_.find(p);
    assert(it != index_.end() && "gradient for a parameter outside the model");
    if (it == index_.end()) return;
    Matrix& slot = grads_[it->second];
    if (slot.empty()) {
      slot = grad;
    } else {
      slot += grad;
    }
  }

 private:
  const std::unordered_map<ad::Parameter*, std::size_t>& index_;
  std::vector<Matrix>& grads_;
};

struct EpochSums {
  double loss = 0.0;
  double mse = 0.0;
  double kl = 0.0;
  std::size_t samples = 0;
};

/// The sharded engine's cross-thread state, made explicit so the lock
/// discipline (or deliberate absence of one) is auditable in one place.
///
/// This is the *only* state OpenMP worker threads share during a
/// data-parallel batch, and it is intentionally lock-free: sample s
/// writes exclusively into slot(s) — its private gradient vector and
/// LossStats — so writes are disjoint by construction and the fixed-order
/// reduction below reads them only after the parallel region's implicit
/// barrier. No GUARDED_BY applies because no mutex exists; adding one
/// would serialise the engine and change nothing about the result, which
/// is bit-identical for every thread count already (the determinism
/// contract pinned by tests/trainer_parallel_test.cpp).
struct ShardedEpochState {
  ShardedEpochState(std::size_t batch_size, std::size_t num_params)
      : sample_grads(batch_size, std::vector<Matrix>(num_params)),
        sample_stats(batch_size) {}

  /// Thread-private gradient slot of sample `s`; no other sample's thread
  /// may touch it.
  std::vector<Matrix>& grads(std::size_t s) { return sample_grads[s]; }
  LossStats* stats(std::size_t s) { return &sample_stats[s]; }

  std::vector<std::vector<Matrix>> sample_grads;
  std::vector<LossStats> sample_stats;
};

}  // namespace

Trainer::Trainer(Autoencoder& model, const TrainConfig& config)
    : model_(model), config_(config) {}

int Trainer::resolve_threads(const Autoencoder& model,
                             const TrainConfig& config) {
  // Stochastic measurement backends advance a shared call counter per
  // estimate; concurrent forwards would race and break the determinism
  // contract, so those models run the sharded math serially.
  if (model.stochastic_forward()) return 1;
#ifdef _OPENMP
  int threads = config.num_threads;
  if (threads <= 0) threads = omp_get_max_threads();
  return threads > 0 ? threads : 1;
#else
  (void)config;
  return 1;
#endif
}

std::vector<EpochStats> Trainer::fit(const Matrix& train, const Matrix* test,
                                     sqvae::Rng& rng,
                                     const EpochCallback& callback) {
  const data::MatrixRowSource source(train);
  return fit(source, test, rng, callback);
}

std::vector<EpochStats> Trainer::fit(const data::RowSource& train,
                                     const Matrix* test, sqvae::Rng& rng,
                                     const EpochCallback& callback) {
  model_.set_kl_weight(config_.kl_weight);
  if (config_.sim.has_value()) {
    model_.set_simulation_options(*config_.sim);
  }
  const std::vector<nn::ParamGroup> groups =
      model_.param_groups(config_.quantum_lr, config_.classical_lr);
  nn::Adam optimizer(groups);

  // Fixed parameter order (group-major) for the deterministic gradient
  // reduction of the data-parallel engine.
  std::vector<ad::Parameter*> params;
  std::unordered_map<ad::Parameter*, std::size_t> param_index;
  for (const nn::ParamGroup& g : groups) {
    for (ad::Parameter* p : g.params) {
      param_index.emplace(p, params.size());
      params.push_back(p);
    }
  }

  has_best_ = false;
  best_epoch_ = 0;
  best_metric_ = std::numeric_limits<double>::infinity();
  std::size_t epochs_since_improvement = 0;
  std::string best_text;

  std::size_t start_epoch = 0;
  if (config_.resume && !config_.checkpoint_path.empty()) {
    std::ifstream probe(config_.checkpoint_path);
    if (probe.good()) {
      probe.close();
      TrainState state;
      state.optimizer = &optimizer;
      state.rng = &rng;
      if (!load_train_checkpoint(config_.checkpoint_path, model_, state)) {
        throw std::runtime_error("Trainer: cannot resume from '" +
                                 config_.checkpoint_path +
                                 "' (corrupt or mismatched checkpoint)");
      }
      start_epoch = state.next_epoch;
      has_best_ = state.has_best;
      best_epoch_ = state.best_epoch;
      if (state.has_best) best_metric_ = state.best_metric;
      epochs_since_improvement = state.epochs_since_improvement;
      // The best parameters seen before the interruption live in the
      // sibling ".best" file; reload them so restore_best still works when
      // no post-resume epoch improves on the pre-kill best.
      std::ifstream best_file(config_.checkpoint_path + ".best");
      if (best_file) {
        std::ostringstream buffer;
        buffer << best_file.rdbuf();
        best_text = buffer.str();
      }
    }
  }

  // A run that already ended via early stopping must stay stopped: without
  // this, every --resume invocation would creep one more epoch past the
  // stop point (the counter satisfies the condition again only after the
  // extra epoch fails to improve).
  const bool already_stopped =
      config_.early_stop_patience > 0 &&
      epochs_since_improvement >= config_.early_stop_patience;
  if (already_stopped) start_epoch = config_.epochs;

  // Only consumed by the omp pragma below; unused in OpenMP-less builds.
  [[maybe_unused]] const int threads = resolve_threads(model_, config_);

  std::vector<EpochStats> history;
  history.reserve(config_.epochs > start_epoch ? config_.epochs - start_epoch
                                               : 0);

  for (std::size_t epoch = start_epoch; epoch < config_.epochs; ++epoch) {
    Stopwatch watch;
    if (config_.lr_decay != 1.0 && epoch > 0) {
      for (std::size_t g = 0; g < optimizer.num_groups(); ++g) {
        optimizer.set_lr(g, optimizer.lr(g) * config_.lr_decay);
      }
    }
    const auto batches =
        data::make_batches(train.rows(), config_.batch_size, rng);

    EpochSums sums;
    for (const auto& indices : batches) {
      const std::size_t batch_size = indices.size();
      if (batch_size == 0) continue;

      if (config_.data_parallel) {
        // ---- sharded engine: one tape + private gradients per sample ----
        ShardedEpochState shared(batch_size, params.size());
        const std::int64_t n = static_cast<std::int64_t>(batch_size);
#ifdef _OPENMP
#pragma omp parallel for schedule(static) num_threads(threads)
#endif
        for (std::int64_t s = 0; s < n; ++s) {
          const std::size_t row = indices[static_cast<std::size_t>(s)];
          Matrix sample(1, train.cols());
          train.copy_row(row, sample.data());
          // Stateless per-sample stream: the noise a sample sees depends
          // only on (noise_seed, epoch, row), never on which thread runs
          // it or in what order.
          sqvae::Rng sample_rng = sqvae::Rng::stream(
              config_.noise_seed, static_cast<std::uint64_t>(epoch),
              static_cast<std::uint64_t>(row));
          ad::Tape tape;
          IndexedGradSink sink(param_index,
                               shared.grads(static_cast<std::size_t>(s)));
          tape.set_grad_sink(&sink);
          ad::Var loss =
              model_.build_loss(tape, sample, sample_rng,
                                shared.stats(static_cast<std::size_t>(s)));
          tape.backward(loss);
        }

        // Fixed-order reduction (sample 0, 1, ..., B-1), then one scale by
        // 1/B: bit-identical for every thread count, and equal to the
        // gradient of the batch-mean loss.
        optimizer.zero_grad();
        for (std::size_t s = 0; s < batch_size; ++s) {
          for (std::size_t k = 0; k < params.size(); ++k) {
            if (!shared.sample_grads[s][k].empty()) {
              params[k]->grad += shared.sample_grads[s][k];
            }
          }
        }
        const double inv_batch = 1.0 / static_cast<double>(batch_size);
        for (ad::Parameter* p : params) p->grad *= inv_batch;
        if (config_.grad_clip > 0.0) {
          clip_gradients(groups, config_.grad_clip);
        }
        optimizer.step();

        for (const LossStats& s : shared.sample_stats) {
          sums.loss += s.total;
          sums.mse += s.reconstruction_mse;
          sums.kl += s.kl;
        }
        sums.samples += batch_size;
      } else {
        // ---- legacy serial engine: one tape per batch ----
        Matrix batch(batch_size, train.cols());
        for (std::size_t r = 0; r < batch_size; ++r) {
          train.copy_row(indices[r], batch.data() + r * train.cols());
        }
        ad::Tape tape;
        LossStats stats;
        ad::Var loss = model_.build_loss(tape, batch, rng, &stats);
        optimizer.zero_grad();
        tape.backward(loss);
        if (config_.grad_clip > 0.0) {
          clip_gradients(groups, config_.grad_clip);
        }
        optimizer.step();
        // Weight by the batch's sample count: per-batch stats are means
        // over the batch, so equal weighting would over-weight a final
        // short batch.
        const double weight = static_cast<double>(batch_size);
        sums.loss += stats.total * weight;
        sums.mse += stats.reconstruction_mse * weight;
        sums.kl += stats.kl * weight;
        sums.samples += batch_size;
      }
    }

    EpochStats stats;
    stats.epoch = epoch;
    const double n = static_cast<double>(sums.samples > 0 ? sums.samples : 1);
    stats.train_loss = sums.loss / n;
    stats.train_mse = sums.mse / n;
    stats.train_kl = sums.kl / n;
    if (test != nullptr && test->rows() > 0) {
      stats.test_mse = model_.evaluate_mse(*test, rng);
    }
    stats.seconds = watch.seconds();
    if (callback) callback(stats);
    history.push_back(stats);

    // ---- best-model tracking + early stopping ----
    const double metric = (test != nullptr && test->rows() > 0)
                              ? stats.test_mse
                              : stats.train_loss;
    const bool improved =
        !has_best_ || metric < best_metric_ - config_.early_stop_min_delta;
    if (!has_best_ || metric < best_metric_) {
      has_best_ = true;
      best_metric_ = metric;
      best_epoch_ = epoch;
      if (config_.restore_best || !config_.checkpoint_path.empty()) {
        best_text = checkpoint_to_text(model_);
        if (!config_.checkpoint_path.empty()) {
          write_file_atomic(config_.checkpoint_path + ".best", best_text);
        }
      }
    }
    epochs_since_improvement = improved ? 0 : epochs_since_improvement + 1;
    const bool stopping =
        config_.early_stop_patience > 0 &&
        epochs_since_improvement >= config_.early_stop_patience;

    // ---- periodic checkpoint (after all of this epoch's rng draws) ----
    if (!config_.checkpoint_path.empty()) {
      const std::size_t every =
          config_.checkpoint_every > 0 ? config_.checkpoint_every : 1;
      const bool last = epoch + 1 == config_.epochs;
      if ((epoch + 1) % every == 0 || last || stopping) {
        TrainState state;
        state.next_epoch = epoch + 1;
        state.optimizer = &optimizer;
        state.rng = &rng;
        state.has_best = has_best_;
        state.best_epoch = best_epoch_;
        state.best_metric = has_best_ ? best_metric_ : 0.0;
        state.epochs_since_improvement = epochs_since_improvement;
        if (!save_train_checkpoint(config_.checkpoint_path, model_, state)) {
          std::fprintf(stderr,
                       "Trainer: failed to write checkpoint '%s' "
                       "(epoch %zu)\n",
                       config_.checkpoint_path.c_str(), epoch);
        }
      }
    }

    if (stopping) break;
  }

  best_restored_ = false;
  if (config_.restore_best && has_best_ && !best_text.empty()) {
    best_restored_ = checkpoint_from_text(best_text, model_);
    if (!best_restored_) {
      std::fprintf(stderr,
                   "Trainer: failed to restore best parameters (corrupt "
                   "'%s.best'?)\n",
                   config_.checkpoint_path.c_str());
    }
  }
  return history;
}

}  // namespace sqvae::models
