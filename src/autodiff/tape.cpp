#include "autodiff/tape.h"

#include <cassert>
#include <cmath>

namespace sqvae::ad {

Tape::Node& Tape::node(Var v) {
  assert(v.valid() && static_cast<std::size_t>(v.id) < nodes_.size());
  return nodes_[static_cast<std::size_t>(v.id)];
}

const Tape::Node& Tape::node(Var v) const {
  assert(v.valid() && static_cast<std::size_t>(v.id) < nodes_.size());
  return nodes_[static_cast<std::size_t>(v.id)];
}

Var Tape::push(Matrix value, bool needs_grad,
               std::function<void(Tape&)> backward) {
  Node n;
  n.value = std::move(value);
  n.needs_grad = needs_grad;
  n.backward = std::move(backward);
  nodes_.push_back(std::move(n));
  return Var{static_cast<int>(nodes_.size()) - 1};
}

void Tape::ensure_grad(Var v) {
  Node& n = node(v);
  if (n.grad.rows() != n.value.rows() || n.grad.cols() != n.value.cols()) {
    n.grad = Matrix(n.value.rows(), n.value.cols());
  }
}

Var Tape::constant(Matrix value) { return push(std::move(value), false, {}); }

Var Tape::leaf(Parameter* p) {
  assert(p != nullptr);
  Var v = push(p->value, true, {});
  node(v).param = p;
  return v;
}

const Matrix& Tape::value(Var v) const { return node(v).value; }

const Matrix& Tape::grad(Var v) const {
  const Node& n = node(v);
  return n.grad;
}

bool Tape::requires_grad(Var v) const { return node(v).needs_grad; }

void Tape::accum_grad(Var v, const Matrix& g) {
  Node& n = node(v);
  if (!n.needs_grad) return;
  assert(g.rows() == n.value.rows() && g.cols() == n.value.cols());
  ensure_grad(v);
  n.grad += g;
}

Var Tape::matmul(Var a, Var b) {
  const Matrix& av = value(a);
  const Matrix& bv = value(b);
  const bool ng = requires_grad(a) || requires_grad(b);
  Var out = push(av.matmul(bv), ng, {});
  if (ng) {
    node(out).backward = [a, b, out](Tape& t) {
      const Matrix& g = t.node(out).grad;
      if (t.requires_grad(a)) {
        t.accum_grad(a, g.matmul(t.value(b).transpose()));
      }
      if (t.requires_grad(b)) {
        t.accum_grad(b, t.value(a).transpose().matmul(g));
      }
    };
  }
  return out;
}

Var Tape::add(Var a, Var b) {
  const Matrix& av = value(a);
  const Matrix& bv = value(b);
  assert(av.rows() == bv.rows() && av.cols() == bv.cols());
  const bool ng = requires_grad(a) || requires_grad(b);
  Var out = push(av + bv, ng, {});
  if (ng) {
    node(out).backward = [a, b, out](Tape& t) {
      const Matrix& g = t.node(out).grad;
      t.accum_grad(a, g);
      t.accum_grad(b, g);
    };
  }
  return out;
}

Var Tape::add_bias(Var a, Var bias) {
  const Matrix& av = value(a);
  const Matrix& bv = value(bias);
  assert(bv.rows() == 1 && bv.cols() == av.cols());
  Matrix out_v = av;
  for (std::size_t r = 0; r < av.rows(); ++r) {
    for (std::size_t c = 0; c < av.cols(); ++c) out_v(r, c) += bv(0, c);
  }
  const bool ng = requires_grad(a) || requires_grad(bias);
  Var out = push(std::move(out_v), ng, {});
  if (ng) {
    node(out).backward = [a, bias, out](Tape& t) {
      const Matrix& g = t.node(out).grad;
      t.accum_grad(a, g);
      if (t.requires_grad(bias)) {
        Matrix bg(1, g.cols());
        for (std::size_t r = 0; r < g.rows(); ++r) {
          for (std::size_t c = 0; c < g.cols(); ++c) bg(0, c) += g(r, c);
        }
        t.accum_grad(bias, bg);
      }
    };
  }
  return out;
}

Var Tape::sub(Var a, Var b) {
  const Matrix& av = value(a);
  const Matrix& bv = value(b);
  assert(av.rows() == bv.rows() && av.cols() == bv.cols());
  const bool ng = requires_grad(a) || requires_grad(b);
  Var out = push(av - bv, ng, {});
  if (ng) {
    node(out).backward = [a, b, out](Tape& t) {
      const Matrix& g = t.node(out).grad;
      t.accum_grad(a, g);
      if (t.requires_grad(b)) {
        Matrix neg = g;
        neg *= -1.0;
        t.accum_grad(b, neg);
      }
    };
  }
  return out;
}

Var Tape::mul(Var a, Var b) {
  const Matrix& av = value(a);
  const Matrix& bv = value(b);
  assert(av.rows() == bv.rows() && av.cols() == bv.cols());
  Matrix out_v = av;
  for (std::size_t i = 0; i < out_v.size(); ++i) out_v[i] *= bv[i];
  const bool ng = requires_grad(a) || requires_grad(b);
  Var out = push(std::move(out_v), ng, {});
  if (ng) {
    node(out).backward = [a, b, out](Tape& t) {
      const Matrix& g = t.node(out).grad;
      if (t.requires_grad(a)) {
        Matrix ga = g;
        const Matrix& bv2 = t.value(b);
        for (std::size_t i = 0; i < ga.size(); ++i) ga[i] *= bv2[i];
        t.accum_grad(a, ga);
      }
      if (t.requires_grad(b)) {
        Matrix gb = g;
        const Matrix& av2 = t.value(a);
        for (std::size_t i = 0; i < gb.size(); ++i) gb[i] *= av2[i];
        t.accum_grad(b, gb);
      }
    };
  }
  return out;
}

Var Tape::scale(Var a, double s) {
  const bool ng = requires_grad(a);
  Var out = push(value(a) * s, ng, {});
  if (ng) {
    node(out).backward = [a, out, s](Tape& t) {
      t.accum_grad(a, t.node(out).grad * s);
    };
  }
  return out;
}

Var Tape::relu(Var a) {
  Matrix out_v = value(a);
  for (std::size_t i = 0; i < out_v.size(); ++i) {
    if (out_v[i] < 0.0) out_v[i] = 0.0;
  }
  const bool ng = requires_grad(a);
  Var out = push(std::move(out_v), ng, {});
  if (ng) {
    node(out).backward = [a, out](Tape& t) {
      Matrix g = t.node(out).grad;
      const Matrix& av = t.value(a);
      for (std::size_t i = 0; i < g.size(); ++i) {
        if (av[i] <= 0.0) g[i] = 0.0;
      }
      t.accum_grad(a, g);
    };
  }
  return out;
}

Var Tape::sigmoid(Var a) {
  Matrix out_v = value(a);
  for (std::size_t i = 0; i < out_v.size(); ++i) {
    out_v[i] = 1.0 / (1.0 + std::exp(-out_v[i]));
  }
  const bool ng = requires_grad(a);
  Var out = push(std::move(out_v), ng, {});
  if (ng) {
    node(out).backward = [a, out](Tape& t) {
      Matrix g = t.node(out).grad;
      const Matrix& ov = t.value(out);
      for (std::size_t i = 0; i < g.size(); ++i) {
        g[i] *= ov[i] * (1.0 - ov[i]);
      }
      t.accum_grad(a, g);
    };
  }
  return out;
}

Var Tape::tanh_(Var a) {
  Matrix out_v = value(a);
  for (std::size_t i = 0; i < out_v.size(); ++i) out_v[i] = std::tanh(out_v[i]);
  const bool ng = requires_grad(a);
  Var out = push(std::move(out_v), ng, {});
  if (ng) {
    node(out).backward = [a, out](Tape& t) {
      Matrix g = t.node(out).grad;
      const Matrix& ov = t.value(out);
      for (std::size_t i = 0; i < g.size(); ++i) g[i] *= 1.0 - ov[i] * ov[i];
      t.accum_grad(a, g);
    };
  }
  return out;
}

Var Tape::exp_(Var a) {
  Matrix out_v = value(a);
  for (std::size_t i = 0; i < out_v.size(); ++i) out_v[i] = std::exp(out_v[i]);
  const bool ng = requires_grad(a);
  Var out = push(std::move(out_v), ng, {});
  if (ng) {
    node(out).backward = [a, out](Tape& t) {
      Matrix g = t.node(out).grad;
      const Matrix& ov = t.value(out);
      for (std::size_t i = 0; i < g.size(); ++i) g[i] *= ov[i];
      t.accum_grad(a, g);
    };
  }
  return out;
}

Var Tape::concat_cols(const std::vector<Var>& parts) {
  assert(!parts.empty());
  const std::size_t rows = value(parts[0]).rows();
  std::size_t cols = 0;
  bool ng = false;
  for (Var p : parts) {
    assert(value(p).rows() == rows);
    cols += value(p).cols();
    ng = ng || requires_grad(p);
  }
  Matrix out_v(rows, cols);
  std::size_t offset = 0;
  for (Var p : parts) {
    const Matrix& pv = value(p);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < pv.cols(); ++c) {
        out_v(r, offset + c) = pv(r, c);
      }
    }
    offset += pv.cols();
  }
  Var out = push(std::move(out_v), ng, {});
  if (ng) {
    std::vector<Var> parts_copy = parts;
    node(out).backward = [parts_copy, out](Tape& t) {
      const Matrix& g = t.node(out).grad;
      std::size_t off = 0;
      for (Var p : parts_copy) {
        const Matrix& pv = t.value(p);
        if (t.requires_grad(p)) {
          Matrix pg(pv.rows(), pv.cols());
          for (std::size_t r = 0; r < pv.rows(); ++r) {
            for (std::size_t c = 0; c < pv.cols(); ++c) {
              pg(r, c) = g(r, off + c);
            }
          }
          t.accum_grad(p, pg);
        }
        off += pv.cols();
      }
    };
  }
  return out;
}

Var Tape::slice_cols(Var a, std::size_t start, std::size_t len) {
  const Matrix& av = value(a);
  assert(start + len <= av.cols());
  Matrix out_v(av.rows(), len);
  for (std::size_t r = 0; r < av.rows(); ++r) {
    for (std::size_t c = 0; c < len; ++c) out_v(r, c) = av(r, start + c);
  }
  const bool ng = requires_grad(a);
  Var out = push(std::move(out_v), ng, {});
  if (ng) {
    node(out).backward = [a, out, start, len](Tape& t) {
      const Matrix& g = t.node(out).grad;
      const Matrix& av2 = t.value(a);
      Matrix ag(av2.rows(), av2.cols());
      for (std::size_t r = 0; r < av2.rows(); ++r) {
        for (std::size_t c = 0; c < len; ++c) ag(r, start + c) = g(r, c);
      }
      t.accum_grad(a, ag);
    };
  }
  return out;
}

Var Tape::mse_loss(Var pred, const Matrix& target) {
  const Matrix& pv = value(pred);
  assert(pv.rows() == target.rows() && pv.cols() == target.cols());
  const double n = static_cast<double>(pv.size());
  double loss = 0.0;
  for (std::size_t i = 0; i < pv.size(); ++i) {
    const double d = pv[i] - target[i];
    loss += d * d;
  }
  Matrix out_v(1, 1);
  out_v(0, 0) = loss / n;
  const bool ng = requires_grad(pred);
  Var out = push(std::move(out_v), ng, {});
  if (ng) {
    Matrix target_copy = target;
    node(out).backward = [pred, out, target_copy, n](Tape& t) {
      const double g = t.node(out).grad(0, 0);
      const Matrix& pv2 = t.value(pred);
      Matrix pg(pv2.rows(), pv2.cols());
      for (std::size_t i = 0; i < pv2.size(); ++i) {
        pg[i] = g * 2.0 * (pv2[i] - target_copy[i]) / n;
      }
      t.accum_grad(pred, pg);
    };
  }
  return out;
}

Var Tape::kl_gaussian(Var mu, Var logvar) {
  const Matrix& mv = value(mu);
  const Matrix& lv = value(logvar);
  assert(mv.rows() == lv.rows() && mv.cols() == lv.cols());
  const double batch = static_cast<double>(mv.rows());
  double loss = 0.0;
  for (std::size_t i = 0; i < mv.size(); ++i) {
    loss += 0.5 * (std::exp(lv[i]) + mv[i] * mv[i] - 1.0 - lv[i]);
  }
  Matrix out_v(1, 1);
  out_v(0, 0) = loss / batch;
  const bool ng = requires_grad(mu) || requires_grad(logvar);
  Var out = push(std::move(out_v), ng, {});
  if (ng) {
    node(out).backward = [mu, logvar, out, batch](Tape& t) {
      const double g = t.node(out).grad(0, 0);
      const Matrix& mv2 = t.value(mu);
      const Matrix& lv2 = t.value(logvar);
      if (t.requires_grad(mu)) {
        Matrix mg(mv2.rows(), mv2.cols());
        for (std::size_t i = 0; i < mv2.size(); ++i) {
          mg[i] = g * mv2[i] / batch;
        }
        t.accum_grad(mu, mg);
      }
      if (t.requires_grad(logvar)) {
        Matrix lg(lv2.rows(), lv2.cols());
        for (std::size_t i = 0; i < lv2.size(); ++i) {
          lg[i] = g * 0.5 * (std::exp(lv2[i]) - 1.0) / batch;
        }
        t.accum_grad(logvar, lg);
      }
    };
  }
  return out;
}

Var Tape::custom(const std::vector<Var>& inputs, Matrix value,
                 CustomBackward backward) {
  bool ng = false;
  for (Var v : inputs) ng = ng || requires_grad(v);
  Var out = push(std::move(value), ng, {});
  if (ng) {
    node(out).backward = [out, backward](Tape& t) {
      backward(t, t.node(out).grad);
    };
  }
  return out;
}

void Tape::backward(Var loss) {
  Node& ln = node(loss);
  assert(ln.value.rows() == 1 && ln.value.cols() == 1 &&
         "backward() must start from a scalar node");
  ensure_grad(loss);
  ln.grad(0, 0) = 1.0;
  for (std::size_t i = nodes_.size(); i > 0; --i) {
    Node& n = nodes_[i - 1];
    if (!n.needs_grad) continue;
    ensure_grad(Var{static_cast<int>(i - 1)});
    if (n.backward) n.backward(*this);
    if (n.param != nullptr) {
      if (grad_sink_ != nullptr) {
        grad_sink_->accumulate(n.param, n.grad);
      } else {
        n.param->grad += n.grad;
      }
    }
  }
}

}  // namespace sqvae::ad
