// Reverse-mode automatic differentiation over dense matrices.
//
// The tape is a define-by-run graph, rebuilt on every forward pass (the
// PyTorch execution model the paper's training code uses). Values are
// sqvae::Matrix with the batch dimension in rows. Model parameters live
// outside the tape in ad::Parameter objects; Tape::leaf() brings a
// parameter into a graph and Tape::backward() accumulates its gradient back
// into Parameter::grad, so one optimizer step can follow several
// accumulating backward passes.
//
// The op set is exactly what the paper's autoencoders need (affine layers,
// ReLU/sigmoid/tanh, Gaussian reparameterisation, MSE + KL losses, column
// concat/slice for patched circuits) plus Tape::custom(), the escape hatch
// through which the quantum circuit inserts itself as a differentiable node
// (models/quantum_layer.*).
#pragma once

#include <functional>
#include <vector>

#include "common/matrix.h"

namespace sqvae::ad {

using sqvae::Matrix;

/// A trainable tensor: value plus accumulated gradient, persistent across
/// tape rebuilds. The optimizer consumes and zeroes `grad`.
struct Parameter {
  Matrix value;
  Matrix grad;

  explicit Parameter(Matrix v)
      : value(std::move(v)), grad(value.rows(), value.cols()) {}

  void zero_grad() { grad = Matrix(value.rows(), value.cols()); }
  std::size_t size() const { return value.size(); }
};

class Tape;

/// Destination for Parameter-leaf gradients during Tape::backward(). By
/// default leaves accumulate into their Parameter::grad (shared, mutable);
/// a sink redirects that accumulation so several tapes can backpropagate
/// through the *same* parameters concurrently, each into private buffers —
/// the mechanism behind the data-parallel trainer's per-thread gradients.
class GradSink {
 public:
  virtual ~GradSink() = default;
  /// Called once per parameter leaf with that leaf's full gradient.
  virtual void accumulate(Parameter* p, const Matrix& grad) = 0;
};

/// Lightweight handle to a tape node. Valid only for the tape that created
/// it and only until that tape is cleared.
struct Var {
  int id = -1;
  bool valid() const { return id >= 0; }
};

class Tape {
 public:
  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  // ---- graph sources ------------------------------------------------
  /// Non-differentiable input (data batches, sampled noise, targets).
  Var constant(Matrix value);
  /// Differentiable leaf bound to an external parameter; backward()
  /// accumulates into p->grad.
  Var leaf(Parameter* p);

  // ---- elementwise / linear algebra ----------------------------------
  Var matmul(Var a, Var b);
  /// Same-shape elementwise sum.
  Var add(Var a, Var b);
  /// Adds a 1 x cols bias row to every row of `a`.
  Var add_bias(Var a, Var bias);
  Var sub(Var a, Var b);
  /// Elementwise product (same shape).
  Var mul(Var a, Var b);
  Var scale(Var a, double s);
  Var relu(Var a);
  Var sigmoid(Var a);
  Var tanh_(Var a);
  Var exp_(Var a);

  // ---- shape ----------------------------------------------------------
  /// Horizontal concatenation; all inputs share the row count.
  Var concat_cols(const std::vector<Var>& parts);
  /// Columns [start, start+len) of `a`.
  Var slice_cols(Var a, std::size_t start, std::size_t len);

  // ---- losses (scalar 1x1 outputs) -------------------------------------
  /// Mean over batch *and* features of squared error against a constant
  /// target (PyTorch MSELoss 'mean' reduction, as used for reconstruction).
  Var mse_loss(Var pred, const Matrix& target);
  /// KL( N(mu, exp(logvar)) || N(0, I) ), summed over latent dims and
  /// averaged over the batch: mean_b 0.5 sum_d (exp(lv)+mu^2-1-lv).
  Var kl_gaussian(Var mu, Var logvar);

  // ---- custom ops -------------------------------------------------------
  /// Backward callback for custom(): receives the upstream gradient of the
  /// custom node and must push input gradients via accum_grad().
  using CustomBackward = std::function<void(Tape&, const Matrix& out_grad)>;

  /// Inserts a node with an externally computed `value` depending on
  /// `inputs`. `backward` is invoked during Tape::backward() with the
  /// node's output gradient.
  Var custom(const std::vector<Var>& inputs, Matrix value,
             CustomBackward backward);

  /// Adds `g` into the gradient buffer of `v` (no-op when `v` does not
  /// require a gradient). For use inside CustomBackward callbacks.
  void accum_grad(Var v, const Matrix& g);

  // ---- access -----------------------------------------------------------
  const Matrix& value(Var v) const;
  /// Gradient buffer of `v` after backward(); zero matrix when untouched.
  const Matrix& grad(Var v) const;
  bool requires_grad(Var v) const;
  std::size_t num_nodes() const { return nodes_.size(); }

  /// Reverse sweep from a scalar (1x1) node. Parameter leaves accumulate
  /// into their Parameter::grad, or into the installed GradSink when one is
  /// set.
  void backward(Var loss);

  /// Redirects parameter-leaf accumulation in backward() to `sink`
  /// (nullptr restores the default Parameter::grad accumulation). The sink
  /// must outlive every subsequent backward() call.
  void set_grad_sink(GradSink* sink) { grad_sink_ = sink; }

 private:
  struct Node {
    Matrix value;
    Matrix grad;
    bool needs_grad = false;
    Parameter* param = nullptr;  // leaf binding
    std::function<void(Tape&)> backward;
  };

  Node& node(Var v);
  const Node& node(Var v) const;
  Var push(Matrix value, bool needs_grad, std::function<void(Tape&)> backward);
  void ensure_grad(Var v);

  std::vector<Node> nodes_;
  GradSink* grad_sink_ = nullptr;
};

}  // namespace sqvae::ad
