// Octanol-water partition coefficient (logP) — Crippen-style atomic
// contribution model.
//
// Wildman & Crippen (1999) estimate logP as a sum of per-atom
// contributions selected by local environment. This implementation carries
// a condensed contribution table covering the environments expressible in
// the C/N/O/F/S heavy-atom alphabet (aromatic vs aliphatic carbon, carbons
// attached to heteroatoms, amine/amide/aromatic nitrogens, hydroxyl/ether/
// carbonyl oxygens, thioethers, fluorine) plus hydrogen contributions
// keyed on the heavy atom they attach to. It is a documented substitution
// for RDKit's MolLogP (see DESIGN.md §3): deterministic, bounded, and
// monotone in the same structural features, which is what Table II's
// relative comparison requires.
#pragma once

#include "chem/molecule.h"

namespace sqvae::chem {

/// Raw Crippen-style logP estimate.
double crippen_logp(const Molecule& mol);

/// logP remapped to [0, 1] with the MolGAN/molecular-GAN convention used by
/// the paper's evaluation code: clip((logP + 2.12178879609) /
/// (6.0422004495 + 2.12178879609), 0, 1).
double normalized_logp(const Molecule& mol);

}  // namespace sqvae::chem
