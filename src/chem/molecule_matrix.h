// Molecule-matrix codec (Fig. 3 of the paper).
//
// A molecule with n heavy atoms maps to a dim x dim symmetric matrix
// (dim >= n, padded with zeros): diagonal element (i,i) carries the atom
// code of atom i, off-diagonal (i,j) carries the bond code between atoms i
// and j. The autoencoders treat the flattened matrix as the feature vector;
// decode() is the inverse used on network outputs, rounding each entry to
// the nearest legal code. Rounded matrices usually violate valence rules,
// so decode is normally followed by sanitize() (see sanitize.h) before any
// property is computed — the same role RDKit sanitization plays in the
// paper's evaluation.
#pragma once

#include "chem/molecule.h"
#include "common/matrix.h"

namespace sqvae::chem {

/// Encodes `mol` (n atoms, n <= dim) into a dim x dim matrix.
sqvae::Matrix encode_molecule(const Molecule& mol, std::size_t dim);

/// Decodes a (possibly non-integral, possibly asymmetric) matrix into a
/// molecular graph:
///  1. symmetrise: m <- (m + m^T)/2;
///  2. round the diagonal to the nearest integer in [0,5]; 0 = no atom;
///  3. round off-diagonals between present atoms to the nearest integer in
///     [0,4] (3 decodes to TRIPLE);
/// Entries involving absent atoms are ignored. No valence repair here.
Molecule decode_molecule(const sqvae::Matrix& m);

/// Flattens encode_molecule row-major into a feature vector (the model
/// input format).
std::vector<double> molecule_to_features(const Molecule& mol,
                                         std::size_t dim);

/// Reshapes a dim*dim feature vector to a matrix and decodes it.
Molecule features_to_molecule(const std::vector<double>& features,
                              std::size_t dim);

}  // namespace sqvae::chem
