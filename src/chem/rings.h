// Ring perception.
//
// Computes a small set of smallest rings (an SSSR-style cycle basis) via
// per-bond shortest-cycle search: for every bond (u, v), the shortest path
// from u to v avoiding that bond closes the smallest ring through it.
// Deduplicated, this yields the relevant rings for the descriptor layer
// (ring counts, aromatic-ring detection, ring membership of atoms/bonds).
// The cyclomatic number bonds - atoms + components upper-bounds the basis
// size and is exposed for invariant checks in tests.
#pragma once

#include <vector>

#include "chem/molecule.h"

namespace sqvae::chem {

/// One ring as an ordered atom cycle (no repeated atoms; size >= 3).
using Ring = std::vector<int>;

struct RingInfo {
  std::vector<Ring> rings;
  /// Per-atom flag: member of at least one perceived ring.
  std::vector<bool> atom_in_ring;
  /// Per-bond flag (indexed like Molecule::bonds()).
  std::vector<bool> bond_in_ring;
};

/// Perceives rings of `mol`. Rings larger than `max_ring_size` are ignored
/// (drug-likeness descriptors only care about small rings; 12 covers
/// everything the generators emit, macrocycle handling is in sa_score).
RingInfo perceive_rings(const Molecule& mol, int max_ring_size = 12);

/// bonds - atoms + components: the number of independent cycles.
int cyclomatic_number(const Molecule& mol);

/// Rings whose bonds are all aromatic.
std::vector<Ring> aromatic_rings(const Molecule& mol, const RingInfo& info);

}  // namespace sqvae::chem
