#include "chem/element.h"

namespace sqvae::chem {

bool element_from_code(int code, Element* out) {
  if (code < 1 || code > 5) return false;
  *out = static_cast<Element>(code);
  return true;
}

bool bond_from_code(int code, BondType* out) {
  if (code < 0 || code > 4) return false;
  *out = static_cast<BondType>(code);
  return true;
}

std::string element_symbol(Element e) {
  switch (e) {
    case Element::kC: return "C";
    case Element::kN: return "N";
    case Element::kO: return "O";
    case Element::kF: return "F";
    case Element::kS: return "S";
  }
  return "?";
}

bool element_from_symbol(const std::string& symbol, Element* out) {
  if (symbol == "C") { *out = Element::kC; return true; }
  if (symbol == "N") { *out = Element::kN; return true; }
  if (symbol == "O") { *out = Element::kO; return true; }
  if (symbol == "F") { *out = Element::kF; return true; }
  if (symbol == "S") { *out = Element::kS; return true; }
  return false;
}

double atomic_weight(Element e) {
  switch (e) {
    case Element::kC: return 12.011;
    case Element::kN: return 14.007;
    case Element::kO: return 15.999;
    case Element::kF: return 18.998;
    case Element::kS: return 32.06;
  }
  return 0.0;
}

int default_valence(Element e) {
  switch (e) {
    case Element::kC: return 4;
    case Element::kN: return 3;
    case Element::kO: return 2;
    case Element::kF: return 1;
    case Element::kS: return 2;
  }
  return 0;
}

int max_valence(Element e) {
  switch (e) {
    case Element::kC: return 4;
    case Element::kN: return 3;
    case Element::kO: return 2;
    case Element::kF: return 1;
    case Element::kS: return 6;
  }
  return 0;
}

double bond_order(BondType b) {
  switch (b) {
    case BondType::kNone: return 0.0;
    case BondType::kSingle: return 1.0;
    case BondType::kDouble: return 2.0;
    case BondType::kTriple: return 3.0;
    case BondType::kAromatic: return 1.5;
  }
  return 0.0;
}

}  // namespace sqvae::chem
