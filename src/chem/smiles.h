// SMILES reading and writing for the C/N/O/F/S organic subset.
//
// Supported grammar (sufficient for every molecule expressible in the
// paper's molecule-matrix alphabet):
//   atoms:         C N O F S (aliphatic), c n o s (aromatic)
//   bonds:         -  =  #  :  and the default bond (single, or aromatic
//                  between two aromatic atoms)
//   branches:      ( ... )
//   ring closures: digits 1-9 and %nn two-digit closures
//   disconnected:  '.' is rejected (matrices encode single fragments)
// No charges, isotopes, stereo descriptors, or bracket atoms.
//
// to_smiles() emits a canonical form (canonical_ranks ordering), so equal
// molecules produce byte-identical strings — the uniqueness/novelty metrics
// of the generation benches depend on this.
#pragma once

#include <optional>
#include <string>

#include "chem/molecule.h"

namespace sqvae::chem {

/// Canonical SMILES for `mol`. Empty molecules produce "".
/// Multi-fragment molecules are rejected (returns std::nullopt) — encode a
/// sanitized (single-fragment) molecule instead.
std::optional<std::string> to_smiles(const Molecule& mol);

/// Parses `smiles` under the grammar above. std::nullopt on any syntax
/// error, unknown atom, unclosed ring bond, or valence violation.
std::optional<Molecule> from_smiles(const std::string& smiles);

}  // namespace sqvae::chem
