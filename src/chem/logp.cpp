#include "chem/logp.h"

#include <algorithm>

#include "chem/descriptors.h"

namespace sqvae::chem {

namespace {

/// Per-heavy-atom contribution (condensed Wildman-Crippen table).
double atom_contribution(const AtomEnvironment& env, const Molecule& mol,
                         int index) {
  switch (env.element) {
    case Element::kC:
      if (env.aromatic) {
        // Aromatic carbon; slightly lower when substituted by heteroatoms.
        return env.hetero_neighbors > 0 ? 0.1581 : 0.2955;
      }
      if (env.has_triple_bond) return 0.1330;
      if (env.double_bonded_o > 0) return -0.2783;  // carbonyl carbon
      if (env.hetero_neighbors > 0) return -0.2035; // C bonded to N/O/F/S
      return 0.1441;                                 // plain aliphatic C
    case Element::kN: {
      if (env.aromatic) return -0.3239;
      // Amide nitrogen: bonded to a carbonyl carbon.
      for (int v : mol.neighbors(index)) {
        if (mol.atom(v) != Element::kC) continue;
        for (int w : mol.neighbors(v)) {
          if (mol.atom(w) == Element::kO &&
              mol.bond_between(v, w) == BondType::kDouble) {
            return -0.6027;
          }
        }
      }
      if (env.has_triple_bond) return -0.5660;  // nitrile N
      return -1.0190;                            // amine
    }
    case Element::kO:
      if (env.aromatic) return 0.1552;
      if (env.degree == 1 && env.implicit_h == 0) return -0.2893;  // C=O
      if (env.implicit_h >= 1) return -0.3939;                     // hydroxyl
      return -0.0684;                                              // ether
    case Element::kF:
      return 0.4202;
    case Element::kS:
      if (env.aromatic) return 0.6237;
      return 0.6482;  // thiol/thioether
  }
  return 0.0;
}

/// Contribution of implicit hydrogens, keyed on the heavy atom.
double hydrogen_contribution(const AtomEnvironment& env) {
  switch (env.element) {
    case Element::kC:
      return 0.1230;  // hydrocarbon H
    case Element::kN:
    case Element::kO:
      return -0.2677;  // H on polar heteroatom
    case Element::kS:
      return 0.0000;
    case Element::kF:
      return 0.0;
  }
  return 0.0;
}

}  // namespace

double crippen_logp(const Molecule& mol) {
  if (mol.empty()) return 0.0;
  const RingInfo rings = perceive_rings(mol);
  const std::vector<AtomEnvironment> envs = atom_environments(mol, rings);
  double logp = 0.0;
  for (int i = 0; i < mol.num_atoms(); ++i) {
    const AtomEnvironment& env = envs[static_cast<std::size_t>(i)];
    logp += atom_contribution(env, mol, i);
    logp += env.implicit_h * hydrogen_contribution(env);
  }
  return logp;
}

double normalized_logp(const Molecule& mol) {
  constexpr double kMin = -2.12178879609;
  constexpr double kMax = 6.0422004495;
  const double v = (crippen_logp(mol) - kMin) / (kMax - kMin);
  return std::clamp(v, 0.0, 1.0);
}

}  // namespace sqvae::chem
