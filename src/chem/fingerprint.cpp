#include "chem/fingerprint.h"

#include <algorithm>

namespace sqvae::chem {

namespace {

/// Deterministic 64-bit mix (SplitMix64 finalizer).
std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

std::uint64_t combine(std::uint64_t seed, std::uint64_t value) {
  return mix(seed * 0x9e3779b97f4a7c15ull + value + 1ull);
}

/// Radius-0 invariant of an atom: element, degree, H count, aromaticity.
std::uint64_t atom_invariant(const Molecule& mol, int i) {
  std::uint64_t inv = 0;
  inv = combine(inv, static_cast<std::uint64_t>(element_code(mol.atom(i))));
  inv = combine(inv, static_cast<std::uint64_t>(mol.degree(i)));
  inv = combine(inv, static_cast<std::uint64_t>(mol.implicit_hydrogens(i)));
  inv = combine(inv, mol.is_aromatic_atom(i) ? 1u : 0u);
  return inv;
}

}  // namespace

Fingerprint morgan_fingerprint(const Molecule& mol, int radius) {
  Fingerprint fp;
  const int n = mol.num_atoms();
  if (n == 0) return fp;

  std::vector<std::uint64_t> env(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    env[static_cast<std::size_t>(i)] = atom_invariant(mol, i);
    fp.set(env[static_cast<std::size_t>(i)] % kFingerprintBits);
  }

  // Iteratively widen each environment: fold in the sorted
  // (bond-code, neighbor-environment) pairs — the ECFP update rule.
  std::vector<std::uint64_t> next(static_cast<std::size_t>(n));
  for (int r = 1; r <= radius; ++r) {
    for (int i = 0; i < n; ++i) {
      std::vector<std::pair<int, std::uint64_t>> neigh;
      for (int v : mol.neighbors(i)) {
        neigh.emplace_back(bond_code(mol.bond_between(i, v)),
                           env[static_cast<std::size_t>(v)]);
      }
      std::sort(neigh.begin(), neigh.end());
      std::uint64_t h = combine(static_cast<std::uint64_t>(r),
                                env[static_cast<std::size_t>(i)]);
      for (const auto& [bond, nb_env] : neigh) {
        h = combine(h, static_cast<std::uint64_t>(bond));
        h = combine(h, nb_env);
      }
      next[static_cast<std::size_t>(i)] = h;
      fp.set(h % kFingerprintBits);
    }
    env.swap(next);
  }
  return fp;
}

double tanimoto(const Fingerprint& a, const Fingerprint& b) {
  const std::size_t inter = (a & b).count();
  const std::size_t uni = (a | b).count();
  if (uni == 0) return 1.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double internal_diversity(const std::vector<Fingerprint>& fingerprints) {
  const std::size_t n = fingerprints.size();
  if (n < 2) return 0.0;
  double sum = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      sum += 1.0 - tanimoto(fingerprints[i], fingerprints[j]);
      ++pairs;
    }
  }
  return sum / static_cast<double>(pairs);
}

double nearest_similarity(const Fingerprint& probe,
                          const std::vector<Fingerprint>& references) {
  double best = 0.0;
  for (const Fingerprint& ref : references) {
    best = std::max(best, tanimoto(probe, ref));
  }
  return best;
}

}  // namespace sqvae::chem
