#include "chem/qed.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "chem/logp.h"

namespace sqvae::chem {

namespace {

struct AdsParams {
  double a, b, c, d, e, f, dmax;
};

// Published ADS parameter rows (Bickerton et al. 2012, as in RDKit qed.py):
// order MW, ALOGP, HBA, HBD, PSA, ROTB, AROM, ALERTS.
constexpr std::array<AdsParams, 8> kAds = {{
    {2.817065973, 392.5754953, 290.7489764, 2.419764353, 49.22325677,
     65.37051707, 104.9805561},
    {3.172690585, 137.8624751, 2.534937431, 4.581497897, 0.822739154,
     0.576295591, 131.3186604},
    {2.948620388, 160.4605972, 3.615294657, 4.435986202, 0.290141953,
     1.300669958, 148.7763046},
    {1.618662227, 1010.051101, 0.985094388, 0.000000001, 0.713820843,
     0.920922555, 258.1632616},
    {1.876861559, 125.2232657, 62.90773554, 87.83366614, 12.01999824,
     28.51324732, 104.5686167},
    {0.010000000, 272.4121427, 2.558379970, 1.565547684, 1.271567166,
     2.758063707, 105.4420403},
    {3.217788970, 957.7374108, 2.274627939, 0.000000001, 1.317690384,
     0.375760881, 312.3372610},
    {0.010000000, 1199.094025, -0.09002883, 0.000000001, 0.185904477,
     0.875193782, 417.7253140},
}};

// Mean weights from the QED paper ("QED_w,mo" weighting).
constexpr std::array<double, 8> kMeanWeights = {0.66, 0.46, 0.05, 0.61,
                                                0.06, 0.65, 0.48, 0.95};

double ads(const AdsParams& p, double x) {
  const double exp1 = 1.0 + std::exp(-(x - p.c + p.d / 2.0) / p.e);
  const double exp2 = 1.0 + std::exp(-(x - p.c - p.d / 2.0) / p.f);
  const double v = p.a + p.b / exp1 * (1.0 - 1.0 / exp2);
  return v / p.dmax;
}

double qed_from_properties(const QedProperties& props,
                           const std::array<double, 8>& weights) {
  const std::array<double, 8> values = {props.mw,   props.alogp, props.hba,
                                        props.hbd,  props.psa,   props.rotb,
                                        props.arom, props.alerts};
  double log_sum = 0.0;
  double weight_sum = 0.0;
  for (std::size_t i = 0; i < 8; ++i) {
    const double d =
        std::clamp(ads(kAds[i], values[i]), 1e-6, 1.0);
    log_sum += weights[i] * std::log(d);
    weight_sum += weights[i];
  }
  return std::exp(log_sum / weight_sum);
}

}  // namespace

QedProperties qed_properties(const Molecule& mol) {
  const Descriptors d = compute_descriptors(mol);
  QedProperties p;
  p.mw = d.molecular_weight;
  p.alogp = crippen_logp(mol);
  p.hba = static_cast<double>(d.hba);
  p.hbd = static_cast<double>(d.hbd);
  p.psa = d.tpsa;
  p.rotb = static_cast<double>(d.rotatable_bonds);
  p.arom = static_cast<double>(d.aromatic_rings);
  p.alerts = static_cast<double>(d.alerts);
  return p;
}

double qed_desirability(int index, double value) {
  return std::clamp(ads(kAds[static_cast<std::size_t>(index)], value), 0.0,
                    1.0);
}

double qed(const Molecule& mol) {
  if (mol.empty()) return 0.0;
  return qed_from_properties(qed_properties(mol), kMeanWeights);
}

double qed_unweighted(const Molecule& mol) {
  if (mol.empty()) return 0.0;
  constexpr std::array<double, 8> ones = {1, 1, 1, 1, 1, 1, 1, 1};
  return qed_from_properties(qed_properties(mol), ones);
}

}  // namespace sqvae::chem
