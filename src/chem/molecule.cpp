#include "chem/molecule.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sqvae::chem {

int Molecule::add_atom(Element e) {
  atoms_.push_back(e);
  adjacency_.emplace_back();
  return static_cast<int>(atoms_.size()) - 1;
}

int Molecule::find_bond(int a, int b) const {
  if (a > b) std::swap(a, b);
  for (int bi : adjacency_[static_cast<std::size_t>(a)]) {
    const Bond& bd = bonds_[static_cast<std::size_t>(bi)];
    if (bd.a == a && bd.b == b) return bi;
  }
  return -1;
}

void Molecule::set_bond(int a, int b, BondType type) {
  assert(a >= 0 && a < num_atoms() && b >= 0 && b < num_atoms() && a != b);
  if (a > b) std::swap(a, b);
  const int existing = find_bond(a, b);
  if (type == BondType::kNone) {
    if (existing < 0) return;
    // Remove bond `existing`; swap-with-last keeps indices dense, then fix
    // adjacency references to the moved bond.
    const int last = static_cast<int>(bonds_.size()) - 1;
    auto detach = [this](int atom, int bond_index) {
      auto& adj = adjacency_[static_cast<std::size_t>(atom)];
      adj.erase(std::find(adj.begin(), adj.end(), bond_index));
    };
    detach(bonds_[static_cast<std::size_t>(existing)].a, existing);
    detach(bonds_[static_cast<std::size_t>(existing)].b, existing);
    if (existing != last) {
      const Bond moved = bonds_[static_cast<std::size_t>(last)];
      bonds_[static_cast<std::size_t>(existing)] = moved;
      auto relabel = [this, last, existing](int atom) {
        auto& adj = adjacency_[static_cast<std::size_t>(atom)];
        *std::find(adj.begin(), adj.end(), last) = existing;
      };
      relabel(moved.a);
      relabel(moved.b);
    }
    bonds_.pop_back();
    return;
  }
  if (existing >= 0) {
    bonds_[static_cast<std::size_t>(existing)].type = type;
    return;
  }
  bonds_.push_back(Bond{a, b, type});
  const int bi = static_cast<int>(bonds_.size()) - 1;
  adjacency_[static_cast<std::size_t>(a)].push_back(bi);
  adjacency_[static_cast<std::size_t>(b)].push_back(bi);
}

BondType Molecule::bond_between(int a, int b) const {
  assert(a >= 0 && a < num_atoms() && b >= 0 && b < num_atoms());
  if (a == b) return BondType::kNone;
  const int bi = find_bond(a, b);
  return bi < 0 ? BondType::kNone : bonds_[static_cast<std::size_t>(bi)].type;
}

std::vector<int> Molecule::neighbors(int i) const {
  std::vector<int> out;
  out.reserve(adjacency_[static_cast<std::size_t>(i)].size());
  for (int bi : adjacency_[static_cast<std::size_t>(i)]) {
    const Bond& b = bonds_[static_cast<std::size_t>(bi)];
    out.push_back(b.a == i ? b.b : b.a);
  }
  return out;
}

int Molecule::degree(int i) const {
  return static_cast<int>(adjacency_[static_cast<std::size_t>(i)].size());
}

double Molecule::valence_used(int i) const {
  double v = 0.0;
  for (int bi : adjacency_[static_cast<std::size_t>(i)]) {
    v += bond_order(bonds_[static_cast<std::size_t>(bi)].type);
  }
  return v;
}

int Molecule::implicit_hydrogens(int i) const {
  const Element e = atom(i);
  const int used = static_cast<int>(std::ceil(valence_used(i) - 1e-9));
  if (e == Element::kS) {
    for (int allowed : {2, 4, 6}) {
      if (used <= allowed) return allowed - used;
    }
    return 0;
  }
  const int dv = default_valence(e);
  return used >= dv ? 0 : dv - used;
}

int Molecule::aromatic_bond_count(int i) const {
  int count = 0;
  for (int bi : adjacency_[static_cast<std::size_t>(i)]) {
    if (bonds_[static_cast<std::size_t>(bi)].type == BondType::kAromatic) {
      ++count;
    }
  }
  return count;
}

double Molecule::max_allowed_valence(int i) const {
  double allowed = static_cast<double>(max_valence(atom(i)));
  if (aromatic_bond_count(i) >= 3) allowed += 0.5;
  return allowed;
}

bool Molecule::valences_ok() const {
  for (int i = 0; i < num_atoms(); ++i) {
    if (valence_used(i) > max_allowed_valence(i) + 1e-9) {
      return false;
    }
  }
  return true;
}

std::vector<int> Molecule::components(int* num_components) const {
  std::vector<int> comp(static_cast<std::size_t>(num_atoms()), -1);
  int count = 0;
  std::vector<int> stack;
  for (int start = 0; start < num_atoms(); ++start) {
    if (comp[static_cast<std::size_t>(start)] >= 0) continue;
    stack.push_back(start);
    comp[static_cast<std::size_t>(start)] = count;
    while (!stack.empty()) {
      const int u = stack.back();
      stack.pop_back();
      for (int v : neighbors(u)) {
        if (comp[static_cast<std::size_t>(v)] < 0) {
          comp[static_cast<std::size_t>(v)] = count;
          stack.push_back(v);
        }
      }
    }
    ++count;
  }
  if (num_components != nullptr) *num_components = count;
  return comp;
}

Molecule Molecule::subgraph(const std::vector<int>& keep) const {
  Molecule sub;
  std::vector<int> remap(static_cast<std::size_t>(num_atoms()), -1);
  for (int old_index : keep) {
    remap[static_cast<std::size_t>(old_index)] = sub.add_atom(atom(old_index));
  }
  for (const Bond& b : bonds_) {
    const int na = remap[static_cast<std::size_t>(b.a)];
    const int nb = remap[static_cast<std::size_t>(b.b)];
    if (na >= 0 && nb >= 0) sub.set_bond(na, nb, b.type);
  }
  return sub;
}

double Molecule::molecular_weight() const {
  constexpr double kHydrogenWeight = 1.008;
  double w = 0.0;
  for (int i = 0; i < num_atoms(); ++i) {
    w += atomic_weight(atom(i));
    w += kHydrogenWeight * implicit_hydrogens(i);
  }
  return w;
}

bool Molecule::is_aromatic_atom(int i) const {
  for (int bi : adjacency_[static_cast<std::size_t>(i)]) {
    if (bonds_[static_cast<std::size_t>(bi)].type == BondType::kAromatic) {
      return true;
    }
  }
  return false;
}

}  // namespace sqvae::chem
