// Valence repair for decoded molecules.
//
// Autoencoder outputs, rounded to the nearest matrix codes, routinely
// violate chemistry: atoms exceed their maximum valence, aromatic bonds
// appear outside rings, and the graph may be disconnected. sanitize()
// repairs a decoded molecule deterministically so that drug-property
// metrics (Table II) are computed on valid structures — the role RDKit's
// sanitization plays in the paper's pipeline:
//
//  1. aromatic bonds not in any perceived ring are demoted to single;
//  2. while any atom exceeds its maximum valence, the incident bond with
//     the highest order at the most-over-valent atom is demoted one step
//     (AROMATIC -> SINGLE counts as one step; SINGLE -> removed), ties
//     broken by bond index for determinism;
//  3. only the largest connected component is kept (ties: the one
//     containing the lowest atom index).
//
// The result is guaranteed to satisfy Molecule::valences_ok() and be
// connected (or empty).
#pragma once

#include "chem/molecule.h"

namespace sqvae::chem {

struct SanitizeStats {
  int aromatic_demotions = 0;
  int valence_demotions = 0;
  int bonds_removed = 0;
  int atoms_dropped = 0;  // removed with smaller fragments
};

/// Repairs `mol` per the policy above. `stats` (optional) reports what was
/// changed, which the generation benchmarks log as a validity diagnostic.
Molecule sanitize(const Molecule& mol, SanitizeStats* stats = nullptr);

/// True when the molecule needs no repair: valences within limits, all
/// aromatic bonds in rings, single connected component (empty molecules are
/// valid).
bool is_valid(const Molecule& mol);

}  // namespace sqvae::chem
