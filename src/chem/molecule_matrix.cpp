#include "chem/molecule_matrix.h"

#include <cassert>
#include <cmath>

namespace sqvae::chem {

sqvae::Matrix encode_molecule(const Molecule& mol, std::size_t dim) {
  assert(static_cast<std::size_t>(mol.num_atoms()) <= dim);
  sqvae::Matrix m(dim, dim);
  for (int i = 0; i < mol.num_atoms(); ++i) {
    m(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) =
        static_cast<double>(element_code(mol.atom(i)));
  }
  for (const Bond& b : mol.bonds()) {
    const double code = static_cast<double>(bond_code(b.type));
    m(static_cast<std::size_t>(b.a), static_cast<std::size_t>(b.b)) = code;
    m(static_cast<std::size_t>(b.b), static_cast<std::size_t>(b.a)) = code;
  }
  return m;
}

namespace {
int round_clamped(double v, int lo, int hi) {
  const int r = static_cast<int>(std::lround(v));
  return r < lo ? lo : (r > hi ? hi : r);
}
}  // namespace

Molecule decode_molecule(const sqvae::Matrix& m) {
  assert(m.rows() == m.cols());
  const std::size_t dim = m.rows();

  // Which matrix rows correspond to atoms, and their elements.
  Molecule mol;
  std::vector<int> atom_of_row(dim, -1);
  for (std::size_t i = 0; i < dim; ++i) {
    const int code = round_clamped(m(i, i), 0, 5);
    Element e;
    if (element_from_code(code, &e)) {
      atom_of_row[i] = mol.add_atom(e);
    }
  }

  for (std::size_t i = 0; i < dim; ++i) {
    if (atom_of_row[i] < 0) continue;
    for (std::size_t j = i + 1; j < dim; ++j) {
      if (atom_of_row[j] < 0) continue;
      const double sym = 0.5 * (m(i, j) + m(j, i));
      const int code = round_clamped(sym, 0, 4);
      BondType b;
      if (bond_from_code(code, &b) && b != BondType::kNone) {
        mol.set_bond(atom_of_row[i], atom_of_row[j], b);
      }
    }
  }
  return mol;
}

std::vector<double> molecule_to_features(const Molecule& mol,
                                         std::size_t dim) {
  const sqvae::Matrix m = encode_molecule(mol, dim);
  return std::vector<double>(m.data(), m.data() + m.size());
}

Molecule features_to_molecule(const std::vector<double>& features,
                              std::size_t dim) {
  assert(features.size() == dim * dim);
  sqvae::Matrix m(dim, dim);
  for (std::size_t i = 0; i < features.size(); ++i) m[i] = features[i];
  return decode_molecule(m);
}

}  // namespace sqvae::chem
