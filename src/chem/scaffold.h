// Murcko scaffold extraction and Lipinski rule-of-five filtering.
//
// The Bemis-Murcko scaffold of a molecule is its ring systems plus the
// linkers connecting them, with all acyclic side chains pruned — the
// standard notion of a molecule's "core" used for scaffold-diversity
// statistics of generated libraries. The Lipinski check is the classic
// oral-bioavailability screen (MW <= 500, logP <= 5, HBD <= 5, HBA <= 10)
// reported by drug-discovery pipelines alongside QED.
#pragma once

#include <optional>
#include <string>

#include "chem/molecule.h"

namespace sqvae::chem {

/// Bemis-Murcko scaffold: iteratively removes terminal atoms that are not
/// part of any ring or ring-ring linker. Acyclic molecules have an empty
/// scaffold.
Molecule murcko_scaffold(const Molecule& mol);

/// Canonical SMILES of the scaffold; std::nullopt for acyclic molecules
/// (empty scaffold).
std::optional<std::string> scaffold_smiles(const Molecule& mol);

struct LipinskiReport {
  double molecular_weight = 0.0;
  double logp = 0.0;
  int hbd = 0;
  int hba = 0;
  int violations = 0;  // 0..4
  bool passes = true;  // the common "at most one violation" criterion
};

/// Evaluates the rule of five.
LipinskiReport lipinski(const Molecule& mol);

/// Hill-notation molecular formula including implicit hydrogens, e.g.
/// "C6H6", "C2H6O", "CH4N2O".
std::string molecular_formula(const Molecule& mol);

}  // namespace sqvae::chem
