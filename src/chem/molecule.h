// Heavy-atom molecular graph.
//
// Atoms are indexed 0..n-1 in insertion order; bonds are undirected and
// stored once (a < b normalised). Hydrogens are implicit: each atom's
// implicit-H count is the gap between its consumed valence (sum of bond
// orders, aromatic = 1.5) and the smallest allowed valence state of its
// element that covers the consumption. This mirrors how RDKit fills
// valences for the organic subset and is what the descriptor and property
// code (HBD, logP hydrogen contributions, molecular weight) relies on.
#pragma once

#include <cstddef>
#include <vector>

#include "chem/element.h"

namespace sqvae::chem {

struct Bond {
  int a = 0;  // smaller atom index
  int b = 0;  // larger atom index
  BondType type = BondType::kSingle;
};

class Molecule {
 public:
  Molecule() = default;

  /// Adds an atom; returns its index.
  int add_atom(Element e);

  /// Adds a bond between distinct existing atoms. Replaces the type when a
  /// bond between a and b already exists. BondType::kNone removes the bond.
  void set_bond(int a, int b, BondType type);

  /// BondType::kNone when no bond exists.
  BondType bond_between(int a, int b) const;

  int num_atoms() const { return static_cast<int>(atoms_.size()); }
  int num_bonds() const { return static_cast<int>(bonds_.size()); }
  bool empty() const { return atoms_.empty(); }

  Element atom(int i) const { return atoms_[static_cast<std::size_t>(i)]; }
  const std::vector<Element>& atoms() const { return atoms_; }
  const std::vector<Bond>& bonds() const { return bonds_; }

  /// Indices of atoms bonded to `i`.
  std::vector<int> neighbors(int i) const;

  /// Number of explicit (heavy-atom) bonds at atom `i`.
  int degree(int i) const;

  /// Sum of bond orders at atom `i` (aromatic counts 1.5).
  double valence_used(int i) const;

  /// Implicit hydrogens on atom `i`: the smallest allowed valence state of
  /// the element minus ceil(valence_used), floored at 0. For sulfur the
  /// allowed states are {2, 4, 6}; other elements have a single state.
  int implicit_hydrogens(int i) const;

  /// Number of aromatic bonds incident to atom `i`.
  int aromatic_bond_count(int i) const;

  /// Valence ceiling for atom `i`: max_valence(element), plus a 0.5
  /// allowance when the atom carries >= 3 aromatic bonds. Under the
  /// order-1.5 aromatic arithmetic a ring-fusion carbon (naphthalene
  /// bridgehead) consumes 4.5, which is chemically a plain tetravalent
  /// carbon — the allowance admits exactly that case.
  double max_allowed_valence(int i) const;

  /// True when every atom's consumed valence fits within
  /// max_allowed_valence. (Aromatic-bonds-must-be-in-rings is a structural
  /// condition checked by chem::is_valid in sanitize.h.)
  bool valences_ok() const;

  /// Connected components; component id per atom, and the component count.
  std::vector<int> components(int* num_components = nullptr) const;

  /// The induced subgraph on `keep` (indices into this molecule), with
  /// atoms re-indexed in `keep` order.
  Molecule subgraph(const std::vector<int>& keep) const;

  /// Molecular weight including implicit hydrogens.
  double molecular_weight() const;

  /// True when atom i participates in at least one aromatic bond.
  bool is_aromatic_atom(int i) const;

 private:
  int find_bond(int a, int b) const;  // index into bonds_, -1 if absent

  std::vector<Element> atoms_;
  std::vector<Bond> bonds_;
  std::vector<std::vector<int>> adjacency_;  // atom -> bond indices
};

}  // namespace sqvae::chem
