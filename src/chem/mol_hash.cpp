#include "chem/mol_hash.h"

#include "chem/smiles.h"

namespace sqvae::chem {

namespace {

// 128-bit FNV-1a constants (Fowler–Noll–Vo, standard parameters).
constexpr unsigned __int128 make_u128(std::uint64_t hi, std::uint64_t lo) {
  return (static_cast<unsigned __int128>(hi) << 64) | lo;
}
constexpr unsigned __int128 kFnvOffset =
    make_u128(0x6c62272e07bb0142ull, 0x62b821756295c58dull);
constexpr unsigned __int128 kFnvPrime = make_u128(0x0000000001000000ull,
                                                  0x000000000000013bull);

/// 64-bit finalizer (MurmurHash3 fmix64): full avalanche, so nearby FNV
/// states map to uncorrelated outputs in each half.
std::uint64_t fmix64(std::uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdull;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ull;
  k ^= k >> 33;
  return k;
}

}  // namespace

MolHash hash_bytes(std::string_view bytes) {
  unsigned __int128 state = kFnvOffset;
  for (unsigned char c : bytes) {
    state ^= c;
    state *= kFnvPrime;
  }
  // Mix the length so "a" in a longer stream and "a" alone differ even if a
  // caller ever concatenates; then avalanche each half with cross-feeding so
  // the 64-bit halves are independently well distributed.
  state ^= static_cast<unsigned __int128>(bytes.size());
  const std::uint64_t raw_hi = static_cast<std::uint64_t>(state >> 64);
  const std::uint64_t raw_lo = static_cast<std::uint64_t>(state);
  MolHash h;
  h.hi = fmix64(raw_hi ^ (raw_lo * 0x9e3779b97f4a7c15ull));
  h.lo = fmix64(raw_lo ^ (raw_hi * 0xc2b2ae3d27d4eb4full));
  return h;
}

std::optional<MolHash> hash_molecule(const Molecule& mol) {
  const std::optional<std::string> smiles = to_smiles(mol);
  if (!smiles) return std::nullopt;
  return hash_bytes(*smiles);
}

std::string hash_hex(const MolHash& h) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[static_cast<std::size_t>(15 - i)] = kDigits[(h.hi >> (4 * i)) & 0xf];
    out[static_cast<std::size_t>(31 - i)] = kDigits[(h.lo >> (4 * i)) & 0xf];
  }
  return out;
}

std::optional<MolHash> hash_from_hex(std::string_view hex) {
  if (hex.size() != 32) return std::nullopt;
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  MolHash h;
  for (int i = 0; i < 32; ++i) {
    const int v = nibble(hex[static_cast<std::size_t>(i)]);
    if (v < 0) return std::nullopt;
    if (i < 16) {
      h.hi = (h.hi << 4) | static_cast<std::uint64_t>(v);
    } else {
      h.lo = (h.lo << 4) | static_cast<std::uint64_t>(v);
    }
  }
  return h;
}

}  // namespace sqvae::chem
