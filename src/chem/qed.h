// Quantitative Estimate of Druglikeness (QED).
//
// Bickerton et al. (Nature Chemistry 2012): QED is the weighted geometric
// mean of eight desirability values, each obtained by passing one molecular
// descriptor (MW, ALOGP, HBA, HBD, PSA, ROTB, AROM, ALERTS) through an
// asymmetric double sigmoid (ADS) fitted to the descriptor's distribution
// over approved drugs. This implementation uses the published ADS parameter
// table (the one shipped in RDKit's qed.py) and the "mean-weights" variant,
// with descriptors computed by this library's own models (descriptors.h,
// logp.h) in place of RDKit's — see DESIGN.md §3 for the substitution note.
// Output is in (0, 1], higher = more drug-like.
#pragma once

#include "chem/descriptors.h"
#include "chem/molecule.h"

namespace sqvae::chem {

/// The eight QED descriptor values for a molecule.
struct QedProperties {
  double mw = 0.0;
  double alogp = 0.0;
  double hba = 0.0;
  double hbd = 0.0;
  double psa = 0.0;
  double rotb = 0.0;
  double arom = 0.0;
  double alerts = 0.0;
};

/// Extracts the QED descriptor block.
QedProperties qed_properties(const Molecule& mol);

/// ADS desirability of a single descriptor value; `index` selects the
/// parameter row (0=MW .. 7=ALERTS). Exposed for tests.
double qed_desirability(int index, double value);

/// Weighted-geometric-mean QED with the published mean weights.
double qed(const Molecule& mol);

/// Unweighted QED (all weights 1), exposed for the property ablation bench.
double qed_unweighted(const Molecule& mol);

}  // namespace sqvae::chem
