// Circular (ECFP/Morgan-style) fingerprints and molecular similarity.
//
// Generative-chemistry evaluations report diversity and novelty on top of
// the validity/uniqueness and property metrics of Table II; both need a
// molecular similarity measure. This module hashes each atom's circular
// environment of radius 0..R into a fixed-width bit vector (the ECFP
// construction) and provides Tanimoto similarity over those bit sets —
// the de-facto standard. Bits are deterministic across runs and platforms
// (the hash is specified here, not delegated to std::hash).
#pragma once

#include <bitset>
#include <cstdint>
#include <vector>

#include "chem/molecule.h"

namespace sqvae::chem {

inline constexpr std::size_t kFingerprintBits = 2048;
using Fingerprint = std::bitset<kFingerprintBits>;

/// ECFP-style circular fingerprint with environments of radius 0..radius
/// (radius 2 ~ ECFP4).
Fingerprint morgan_fingerprint(const Molecule& mol, int radius = 2);

/// |a & b| / |a | b|; defined as 1 for two empty fingerprints.
double tanimoto(const Fingerprint& a, const Fingerprint& b);

/// Mean pairwise (1 - Tanimoto) over a set — the "internal diversity"
/// metric of generative-model evaluations. Returns 0 for fewer than two
/// fingerprints.
double internal_diversity(const std::vector<Fingerprint>& fingerprints);

/// Largest Tanimoto similarity of `probe` against `references`; 0 when
/// references is empty. 1 - this value is the per-molecule novelty.
double nearest_similarity(const Fingerprint& probe,
                          const std::vector<Fingerprint>& references);

}  // namespace sqvae::chem
