#include "chem/descriptors.h"

namespace sqvae::chem {

std::vector<AtomEnvironment> atom_environments(const Molecule& mol,
                                               const RingInfo& rings) {
  std::vector<AtomEnvironment> envs(static_cast<std::size_t>(mol.num_atoms()));
  for (int i = 0; i < mol.num_atoms(); ++i) {
    AtomEnvironment& env = envs[static_cast<std::size_t>(i)];
    env.element = mol.atom(i);
    env.implicit_h = mol.implicit_hydrogens(i);
    env.degree = mol.degree(i);
    env.aromatic = mol.is_aromatic_atom(i);
    env.in_ring = rings.atom_in_ring[static_cast<std::size_t>(i)];
    for (int v : mol.neighbors(i)) {
      const Element ne = mol.atom(v);
      if (ne != Element::kC) ++env.hetero_neighbors;
      const BondType bt = mol.bond_between(i, v);
      if (bt == BondType::kDouble) {
        env.has_double_bond = true;
        if (ne == Element::kO) ++env.double_bonded_o;
      }
      if (bt == BondType::kTriple) env.has_triple_bond = true;
    }
  }
  return envs;
}

namespace {

/// Ertl-style TPSA fragment contribution for one atom environment.
/// Values are the published Ertl (2000) contributions for the most common
/// matching environments of the C/N/O/F/S alphabet.
double tpsa_contribution(const AtomEnvironment& env) {
  switch (env.element) {
    case Element::kC:
    case Element::kF:
      return 0.0;
    case Element::kN:
      if (env.aromatic) {
        return env.implicit_h > 0 ? 15.79 : 12.89;
      }
      if (env.implicit_h >= 2) return 26.02;  // primary amine
      if (env.implicit_h == 1) return 12.03;  // secondary amine
      return 3.24;                            // tertiary amine
    case Element::kO:
      if (env.aromatic) return 13.14;
      if (env.degree == 1 && env.implicit_h == 0) return 17.07;  // carbonyl O
      if (env.implicit_h >= 1) return 20.23;                     // hydroxyl
      return 9.23;                                               // ether
    case Element::kS:
      if (env.aromatic) return 28.24;
      if (env.implicit_h >= 1) return 38.80;  // thiol
      return 25.30;                           // thioether / sulfoxide core
  }
  return 0.0;
}

}  // namespace

Descriptors compute_descriptors(const Molecule& mol) {
  Descriptors d;
  if (mol.empty()) return d;

  const RingInfo rings = perceive_rings(mol);
  const std::vector<AtomEnvironment> envs = atom_environments(mol, rings);

  d.molecular_weight = mol.molecular_weight();
  d.heavy_atoms = mol.num_atoms();
  d.rings = cyclomatic_number(mol);
  d.aromatic_rings = static_cast<int>(aromatic_rings(mol, rings).size());

  for (const AtomEnvironment& env : envs) {
    if (env.element == Element::kN || env.element == Element::kO) {
      ++d.hba;
      if (env.implicit_h > 0) ++d.hbd;
    }
    if (env.element == Element::kS && env.implicit_h > 0) ++d.hbd;
    d.tpsa += tpsa_contribution(env);
  }

  // Rotatable bonds: acyclic single bonds between two non-terminal atoms.
  for (std::size_t bi = 0; bi < mol.bonds().size(); ++bi) {
    const Bond& b = mol.bonds()[bi];
    if (b.type != BondType::kSingle) continue;
    if (rings.bond_in_ring[bi]) continue;
    if (mol.degree(b.a) < 2 || mol.degree(b.b) < 2) continue;
    ++d.rotatable_bonds;
  }

  d.alerts = structural_alert_count(mol);
  return d;
}

int hydrogen_bond_acceptors(const Molecule& mol) {
  return compute_descriptors(mol).hba;
}

int hydrogen_bond_donors(const Molecule& mol) {
  return compute_descriptors(mol).hbd;
}

double topological_polar_surface_area(const Molecule& mol) {
  return compute_descriptors(mol).tpsa;
}

int rotatable_bond_count(const Molecule& mol) {
  return compute_descriptors(mol).rotatable_bonds;
}

int aromatic_ring_count(const Molecule& mol) {
  const RingInfo rings = perceive_rings(mol);
  return static_cast<int>(aromatic_rings(mol, rings).size());
}

int structural_alert_count(const Molecule& mol) {
  // A compact structural-alert set expressible in the C/N/O/F/S alphabet.
  // Each alert family counts at most once per occurrence site, mirroring
  // how the Brenk/QED alert list flags unstable or reactive motifs.
  int alerts = 0;

  // Heteroatom-heteroatom single bonds (peroxide O-O, disulfide S-S, N-N).
  for (const Bond& b : mol.bonds()) {
    const Element ea = mol.atom(b.a);
    const Element eb = mol.atom(b.b);
    const bool hetero_a = ea == Element::kO || ea == Element::kN ||
                          ea == Element::kS;
    const bool hetero_b = eb == Element::kO || eb == Element::kN ||
                          eb == Element::kS;
    if (hetero_a && hetero_b) {
      if (ea == Element::kO && eb == Element::kO) ++alerts;          // peroxide
      if (ea == Element::kS && eb == Element::kS) ++alerts;  // disulfide
      if (ea == Element::kN && eb == Element::kN &&
          b.type == BondType::kDouble) {
        ++alerts;  // azo
      }
    }
  }

  const RingInfo rings = perceive_rings(mol);
  for (const Ring& ring : rings.rings) {
    // Strained 3-membered rings containing a heteroatom (epoxide/aziridine).
    if (ring.size() == 3) {
      for (int a : ring) {
        if (mol.atom(a) != Element::kC) {
          ++alerts;
          break;
        }
      }
    }
    // Macrocycles are flagged by the QED alert list as unusual.
    if (ring.size() > 8) ++alerts;
  }

  // Excessive halogenation.
  int fluorines = 0;
  for (int i = 0; i < mol.num_atoms(); ++i) {
    if (mol.atom(i) == Element::kF) ++fluorines;
  }
  if (fluorines > 3) ++alerts;

  // Cumulated double bonds at one carbon (allene-like sp carbon).
  for (int i = 0; i < mol.num_atoms(); ++i) {
    int doubles = 0;
    for (int v : mol.neighbors(i)) {
      if (mol.bond_between(i, v) == BondType::kDouble) ++doubles;
    }
    if (mol.atom(i) == Element::kC && doubles >= 2) ++alerts;
  }
  return alerts;
}

}  // namespace sqvae::chem
