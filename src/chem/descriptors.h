// Molecular descriptors over the heavy-atom graph.
//
// These feed the drug-property models (qed.h, logp.h, sa_score.h) used to
// evaluate sampled ligands in Table II. Definitions follow the standard
// cheminformatics conventions (Lipinski HBA/HBD, Veber rotatable bonds,
// Ertl-style TPSA fragment contributions) restricted to the C/N/O/F/S
// alphabet of the molecule-matrix encoding.
#pragma once

#include "chem/molecule.h"
#include "chem/rings.h"

namespace sqvae::chem {

/// Local environment of an atom, shared by TPSA, logP, and QED alerts.
struct AtomEnvironment {
  Element element = Element::kC;
  int implicit_h = 0;
  int degree = 0;
  bool aromatic = false;
  bool in_ring = false;
  int hetero_neighbors = 0;   // bonded N/O/F/S
  int double_bonded_o = 0;    // =O neighbors (carbonyl/sulfonyl oxygens)
  bool has_double_bond = false;
  bool has_triple_bond = false;
};

/// Environments for every atom (one ring perception pass, reused).
std::vector<AtomEnvironment> atom_environments(const Molecule& mol,
                                               const RingInfo& rings);

/// Aggregate descriptor block used by QED and the property benches.
struct Descriptors {
  double molecular_weight = 0.0;
  int heavy_atoms = 0;
  int hba = 0;              // Lipinski acceptors: N + O count
  int hbd = 0;              // Lipinski donors: N/O/S atoms bearing >= 1 H
  double tpsa = 0.0;        // topological polar surface area (approximate)
  int rotatable_bonds = 0;  // acyclic single bonds between non-terminal atoms
  int aromatic_rings = 0;
  int rings = 0;            // cyclomatic number
  int alerts = 0;           // structural-alert count (see qed.cpp)
};

/// Computes all descriptors in one pass.
Descriptors compute_descriptors(const Molecule& mol);

// Individual descriptor entry points (used by tests and examples).
int hydrogen_bond_acceptors(const Molecule& mol);
int hydrogen_bond_donors(const Molecule& mol);
double topological_polar_surface_area(const Molecule& mol);
int rotatable_bond_count(const Molecule& mol);
int aromatic_ring_count(const Molecule& mol);
int structural_alert_count(const Molecule& mol);

}  // namespace sqvae::chem
