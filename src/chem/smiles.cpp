#include "chem/smiles.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>
#include <vector>

#include "chem/canonical.h"

namespace sqvae::chem {

// --------------------------------------------------------------------------
// Writer
// --------------------------------------------------------------------------

namespace {

std::pair<int, int> edge_key(int a, int b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

/// Bond symbol to print before an atom or ring-closure digit.
std::string bond_symbol(const Molecule& mol, int a, int b) {
  const BondType t = mol.bond_between(a, b);
  const bool both_aromatic =
      mol.is_aromatic_atom(a) && mol.is_aromatic_atom(b);
  switch (t) {
    case BondType::kSingle:
      // Explicit '-' between two aromatic atoms (e.g. biphenyl) — otherwise
      // the default bond would be read back as aromatic.
      return both_aromatic ? "-" : "";
    case BondType::kDouble:
      return "=";
    case BondType::kTriple:
      return "#";
    case BondType::kAromatic:
      return "";  // default between two aromatic atoms
    case BondType::kNone:
      return "";
  }
  return "";
}

std::string atom_token(const Molecule& mol, int i) {
  std::string sym = element_symbol(mol.atom(i));
  if (mol.is_aromatic_atom(i)) {
    for (char& c : sym) c = static_cast<char>(std::tolower(c));
  }
  return sym;
}

std::string digit_token(int digit) {
  if (digit < 10) return std::to_string(digit);
  std::ostringstream os;
  os << '%';
  if (digit < 10) os << '0';
  os << digit;
  return os.str();
}

}  // namespace

std::optional<std::string> to_smiles(const Molecule& mol) {
  if (mol.empty()) return std::string{};
  int num_components = 0;
  mol.components(&num_components);
  if (num_components != 1) return std::nullopt;

  const std::vector<int> rank = canonical_ranks(mol);
  const int n = mol.num_atoms();

  int start = 0;
  for (int i = 1; i < n; ++i) {
    if (rank[static_cast<std::size_t>(i)] <
        rank[static_cast<std::size_t>(start)]) {
      start = i;
    }
  }
  auto by_rank = [&rank](int x, int y) {
    return rank[static_cast<std::size_t>(x)] <
           rank[static_cast<std::size_t>(y)];
  };

  // Pass 1: rank-ordered DFS to classify edges into tree edges and ring
  // (back) edges, assigning each ring edge a closure digit.
  std::map<std::pair<int, int>, int> ring_digit;
  {
    int next_digit = 1;
    std::vector<bool> seen(static_cast<std::size_t>(n), false);
    std::vector<std::pair<int, int>> stack;  // (atom, parent)
    stack.emplace_back(start, -1);
    while (!stack.empty()) {
      const auto [atom, parent] = stack.back();
      stack.pop_back();
      if (seen[static_cast<std::size_t>(atom)]) continue;
      seen[static_cast<std::size_t>(atom)] = true;
      std::vector<int> neighbors = mol.neighbors(atom);
      // Reverse rank order so the stack pops lowest rank first, matching
      // the writer's traversal below.
      std::sort(neighbors.begin(), neighbors.end(),
                [&](int x, int y) { return by_rank(y, x); });
      for (int v : neighbors) {
        if (v == parent) continue;
        if (seen[static_cast<std::size_t>(v)]) {
          const auto key = edge_key(atom, v);
          if (!ring_digit.count(key)) ring_digit[key] = next_digit++;
        } else {
          stack.emplace_back(v, atom);
        }
      }
    }
  }

  // Pass 2: emit. Each ring digit is printed at both endpoints.
  std::ostringstream out;
  std::vector<bool> visited(static_cast<std::size_t>(n), false);
  std::map<std::pair<int, int>, int> digit_prints_left;
  for (const auto& [k, d] : ring_digit) digit_prints_left[k] = 2;

  struct Frame {
    int atom = -1;
    std::vector<int> children;
    std::size_t next_child = 0;
    bool opened_paren = false;
  };

  auto emit_atom = [&](int atom, int parent) {
    visited[static_cast<std::size_t>(atom)] = true;
    out << atom_token(mol, atom);
    std::vector<int> neighbors = mol.neighbors(atom);
    std::sort(neighbors.begin(), neighbors.end(), by_rank);
    for (int v : neighbors) {
      if (v == parent) continue;
      const auto key = edge_key(atom, v);
      const auto it = ring_digit.find(key);
      if (it == ring_digit.end()) continue;
      auto& left = digit_prints_left[key];
      if (left == 0) continue;
      out << bond_symbol(mol, atom, v) << digit_token(it->second);
      --left;
    }
    Frame f;
    f.atom = atom;
    for (int v : neighbors) {
      if (v == parent) continue;
      if (ring_digit.count(edge_key(atom, v))) continue;  // ring, not tree
      f.children.push_back(v);
    }
    return f;
  };

  std::vector<Frame> frames;
  frames.push_back(emit_atom(start, -1));
  while (!frames.empty()) {
    Frame& f = frames.back();
    if (f.next_child >= f.children.size()) {
      if (f.opened_paren) out << ')';
      frames.pop_back();
      continue;
    }
    const int v = f.children[f.next_child++];
    if (visited[static_cast<std::size_t>(v)]) continue;
    const bool last = (f.next_child == f.children.size());
    if (!last) out << '(';
    out << bond_symbol(mol, f.atom, v);
    Frame child = emit_atom(v, f.atom);
    child.opened_paren = !last;
    frames.push_back(std::move(child));
  }
  return out.str();
}

// --------------------------------------------------------------------------
// Parser
// --------------------------------------------------------------------------

namespace {

struct PendingRing {
  int atom = -1;
  char bond = 0;  // explicit bond char seen before the digit, 0 = default
};

/// Resolves a bond given an explicit bond character (0 = default: aromatic
/// when both atoms are aromatic, single otherwise).
BondType resolve_bond(char bond_char, bool a_aromatic, bool b_aromatic) {
  switch (bond_char) {
    case '-': return BondType::kSingle;
    case '=': return BondType::kDouble;
    case '#': return BondType::kTriple;
    case ':': return BondType::kAromatic;
    case 0:
      return (a_aromatic && b_aromatic) ? BondType::kAromatic
                                        : BondType::kSingle;
    default: return BondType::kNone;
  }
}

}  // namespace

std::optional<Molecule> from_smiles(const std::string& smiles) {
  Molecule mol;
  std::vector<bool> aromatic_flag;
  std::vector<int> branch_stack;
  int previous_atom = -1;
  char pending_bond = 0;
  std::map<int, PendingRing> open_rings;

  auto add_parsed_atom = [&](Element e, bool aromatic) {
    const int idx = mol.add_atom(e);
    aromatic_flag.push_back(aromatic);
    if (previous_atom >= 0) {
      const BondType t = resolve_bond(
          pending_bond,
          aromatic_flag[static_cast<std::size_t>(previous_atom)], aromatic);
      if (t == BondType::kNone) return false;
      mol.set_bond(previous_atom, idx, t);
    }
    previous_atom = idx;
    pending_bond = 0;
    return true;
  };

  auto handle_ring_digit = [&](int digit) {
    if (previous_atom < 0) return false;
    auto it = open_rings.find(digit);
    if (it == open_rings.end()) {
      open_rings[digit] = PendingRing{previous_atom, pending_bond};
      pending_bond = 0;
      return true;
    }
    const PendingRing open = it->second;
    open_rings.erase(it);
    if (open.atom == previous_atom) return false;
    // The closure bond may be annotated at either end; explicit wins.
    const char bond_char = pending_bond ? pending_bond : open.bond;
    const BondType t = resolve_bond(
        bond_char, aromatic_flag[static_cast<std::size_t>(open.atom)],
        aromatic_flag[static_cast<std::size_t>(previous_atom)]);
    if (t == BondType::kNone) return false;
    if (mol.bond_between(open.atom, previous_atom) != BondType::kNone) {
      return false;  // duplicate bond
    }
    mol.set_bond(open.atom, previous_atom, t);
    pending_bond = 0;
    return true;
  };

  for (std::size_t i = 0; i < smiles.size(); ++i) {
    const char c = smiles[i];
    bool ok = true;
    switch (c) {
      case 'C': ok = add_parsed_atom(Element::kC, false); break;
      case 'N': ok = add_parsed_atom(Element::kN, false); break;
      case 'O': ok = add_parsed_atom(Element::kO, false); break;
      case 'F': ok = add_parsed_atom(Element::kF, false); break;
      case 'S': ok = add_parsed_atom(Element::kS, false); break;
      case 'c': ok = add_parsed_atom(Element::kC, true); break;
      case 'n': ok = add_parsed_atom(Element::kN, true); break;
      case 'o': ok = add_parsed_atom(Element::kO, true); break;
      case 's': ok = add_parsed_atom(Element::kS, true); break;
      case '-':
      case '=':
      case '#':
      case ':':
        ok = (pending_bond == 0);
        pending_bond = c;
        break;
      case '(':
        ok = (previous_atom >= 0);
        if (ok) branch_stack.push_back(previous_atom);
        break;
      case ')':
        ok = !branch_stack.empty();
        if (ok) {
          previous_atom = branch_stack.back();
          branch_stack.pop_back();
        }
        break;
      case '%': {
        if (i + 2 >= smiles.size() ||
            !std::isdigit(static_cast<unsigned char>(smiles[i + 1])) ||
            !std::isdigit(static_cast<unsigned char>(smiles[i + 2]))) {
          return std::nullopt;
        }
        const int digit = (smiles[i + 1] - '0') * 10 + (smiles[i + 2] - '0');
        i += 2;
        ok = handle_ring_digit(digit);
        break;
      }
      default:
        if (std::isdigit(static_cast<unsigned char>(c))) {
          ok = handle_ring_digit(c - '0');
        } else {
          return std::nullopt;  // '.', brackets, charges, stereo: unsupported
        }
        break;
    }
    if (!ok) return std::nullopt;
  }
  if (!branch_stack.empty() || !open_rings.empty()) return std::nullopt;
  if (pending_bond != 0) return std::nullopt;
  if (mol.empty()) return std::nullopt;
  if (!mol.valences_ok()) return std::nullopt;
  return mol;
}

}  // namespace sqvae::chem
