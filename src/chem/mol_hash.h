// Content hashing for canonical molecules.
//
// The shard store (src/data/shard_store.h) keys every molecule by a 128-bit
// hash of its canonical SMILES string: equal molecules — regardless of the
// atom order they were built or parsed in — canonicalize to byte-identical
// SMILES (chem/smiles.h) and therefore to identical keys, which is what
// makes content-addressed deduplication exact. The hash is a dependency-free
// 128-bit FNV-1a over the SMILES bytes with a murmur-style 64-bit avalanche
// finalizer on each half; the function is fixed for all time for a given
// shard-format version (changing it would silently un-deduplicate existing
// stores), deterministic across platforms, and has no truncation/length
// extension pitfalls for the short strings it sees. It is NOT a
// cryptographic hash: collisions are astronomically unlikely for corpus
// sizes (~2^-64 at 4 billion records) but not adversarially hard.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "chem/molecule.h"

namespace sqvae::chem {

/// 128-bit content key, ordered lexicographically (hi, then lo).
struct MolHash {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const MolHash& a, const MolHash& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const MolHash& a, const MolHash& b) {
    return !(a == b);
  }
  friend bool operator<(const MolHash& a, const MolHash& b) {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }
};

/// Hasher for unordered containers keyed by MolHash. The key is already a
/// high-quality hash, so this just folds the halves.
struct MolHashHasher {
  std::size_t operator()(const MolHash& h) const {
    return static_cast<std::size_t>(h.hi ^ (h.lo * 0x9e3779b97f4a7c15ull));
  }
};

/// 128-bit FNV-1a + avalanche over arbitrary bytes (the primitive; exposed
/// for tests and for hashing already-canonical SMILES strings directly).
MolHash hash_bytes(std::string_view bytes);

/// Canonical content key of `mol`: hash_bytes(to_smiles(mol)).
/// std::nullopt when the molecule cannot be written (multi-fragment).
/// The empty molecule hashes the empty string, deterministically.
std::optional<MolHash> hash_molecule(const Molecule& mol);

/// 32-character lowercase hex rendering (hi then lo, zero padded).
std::string hash_hex(const MolHash& h);

/// Inverse of hash_hex; std::nullopt unless exactly 32 hex characters.
std::optional<MolHash> hash_from_hex(std::string_view hex);

}  // namespace sqvae::chem
