#include "chem/sa_score.h"

#include <algorithm>
#include <cmath>

#include "chem/descriptors.h"

namespace sqvae::chem {

double sa_score(const Molecule& mol) {
  if (mol.empty()) return 10.0;

  const RingInfo rings = perceive_rings(mol);
  const std::vector<AtomEnvironment> envs = atom_environments(mol, rings);
  const int n = mol.num_atoms();

  // --- Fragment-commonness term (replaces the PubChem frequency table).
  // Each atom environment contributes a commonness value in [-1, 1];
  // common environments lower the score.
  double commonness = 0.0;
  for (const AtomEnvironment& env : envs) {
    double c = 0.0;
    switch (env.element) {
      case Element::kC:
        c = env.aromatic ? 0.9 : (env.hetero_neighbors <= 1 ? 0.8 : 0.3);
        if (env.has_triple_bond) c -= 0.5;
        break;
      case Element::kN:
        c = env.aromatic ? 0.6 : (env.hetero_neighbors == 0 ? 0.5 : -0.2);
        break;
      case Element::kO:
        c = env.hetero_neighbors == 0 ? 0.6 : -0.3;
        break;
      case Element::kF:
        c = 0.4;
        break;
      case Element::kS:
        c = env.hetero_neighbors == 0 ? 0.2 : -0.4;
        break;
    }
    if (env.degree >= 4) c -= 0.6;  // quaternary centres are hard
    commonness += c;
  }
  // Average commonness in [-1, 1] -> fragment score in roughly [-2, 2],
  // mirroring the magnitude of Ertl's fragment term.
  const double fragment_score =
      -2.0 * (commonness / static_cast<double>(n));

  // --- Complexity penalties (Ertl's functional forms).
  const double size_penalty =
      std::pow(static_cast<double>(n), 1.005) - static_cast<double>(n);

  int macrocycles = 0;
  for (const Ring& r : rings.rings) {
    if (static_cast<int>(r.size()) > 8) ++macrocycles;
  }
  const double macro_penalty =
      macrocycles > 0 ? std::log10(2.0) * (1.0 + macrocycles) : 0.0;

  // Ring-complexity: fused systems produce more ring-bonds per atom.
  int ring_bonds = 0;
  for (std::size_t bi = 0; bi < mol.bonds().size(); ++bi) {
    if (rings.bond_in_ring[bi]) ++ring_bonds;
  }
  int ring_atoms = 0;
  for (int i = 0; i < n; ++i) {
    if (rings.atom_in_ring[static_cast<std::size_t>(i)]) ++ring_atoms;
  }
  const double fused_excess =
      ring_atoms > 0 ? std::max(0, ring_bonds - ring_atoms) : 0;
  const double ring_penalty = std::log10(fused_excess + 1.0) * 2.0;

  // Branching: atoms with degree >= 3 beyond what a simple scaffold needs.
  int branch_points = 0;
  for (int i = 0; i < n; ++i) {
    if (mol.degree(i) >= 3) ++branch_points;
  }
  const double branch_penalty =
      std::log10(1.0 + static_cast<double>(branch_points));

  // Heteroatom density far from drug-typical (~25%) is unusual chemistry.
  int heteroatoms = 0;
  for (int i = 0; i < n; ++i) {
    if (mol.atom(i) != Element::kC) ++heteroatoms;
  }
  const double hetero_frac =
      static_cast<double>(heteroatoms) / static_cast<double>(n);
  const double hetero_penalty = 2.0 * std::abs(hetero_frac - 0.25);

  double raw = 1.0 + fragment_score + size_penalty + macro_penalty +
               ring_penalty + branch_penalty + hetero_penalty + 3.0;
  // The +3.0 centres the easy/hard range so plain drug-like scaffolds land
  // around 2-4 and pathological graphs saturate near 10, matching the
  // Ertl score's empirical distribution.
  return std::clamp(raw, 1.0, 10.0);
}

double normalized_sa_score(const Molecule& mol) {
  return std::clamp((10.0 - sa_score(mol)) / 9.0, 0.0, 1.0);
}

}  // namespace sqvae::chem
