#include "chem/rings.h"

#include <algorithm>
#include <queue>
#include <set>

namespace sqvae::chem {

namespace {

/// Shortest path from s to t avoiding the direct edge (s, t); empty when
/// unreachable or longer than max_len.
std::vector<int> shortest_path_avoiding_edge(const Molecule& mol, int s, int t,
                                             int max_len) {
  std::vector<int> parent(static_cast<std::size_t>(mol.num_atoms()), -2);
  std::queue<std::pair<int, int>> q;  // (node, depth)
  q.emplace(s, 0);
  parent[static_cast<std::size_t>(s)] = -1;
  while (!q.empty()) {
    const auto [u, depth] = q.front();
    q.pop();
    if (depth >= max_len) continue;
    for (int v : mol.neighbors(u)) {
      if (u == s && v == t) continue;  // skip the direct edge
      if (parent[static_cast<std::size_t>(v)] != -2) continue;
      parent[static_cast<std::size_t>(v)] = u;
      if (v == t) {
        std::vector<int> path;
        for (int x = t; x != -1; x = parent[static_cast<std::size_t>(x)]) {
          path.push_back(x);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      q.emplace(v, depth + 1);
    }
  }
  return {};
}

/// Canonical key of a ring: sorted atom list.
std::vector<int> ring_key(const Ring& r) {
  std::vector<int> k = r;
  std::sort(k.begin(), k.end());
  return k;
}

}  // namespace

RingInfo perceive_rings(const Molecule& mol, int max_ring_size) {
  RingInfo info;
  info.atom_in_ring.assign(static_cast<std::size_t>(mol.num_atoms()), false);
  info.bond_in_ring.assign(static_cast<std::size_t>(mol.num_bonds()), false);

  std::set<std::vector<int>> seen;
  for (const Bond& b : mol.bonds()) {
    // The smallest ring through bond (a, b) is the shortest a->b path not
    // using the bond itself, closed by the bond.
    const std::vector<int> path =
        shortest_path_avoiding_edge(mol, b.a, b.b, max_ring_size - 1);
    if (path.size() < 3) continue;  // no ring through this bond
    Ring ring = path;               // a ... b, closed by bond (a, b)
    auto key = ring_key(ring);
    if (seen.insert(std::move(key)).second) {
      info.rings.push_back(std::move(ring));
    }
  }

  for (const Ring& ring : info.rings) {
    for (std::size_t k = 0; k < ring.size(); ++k) {
      info.atom_in_ring[static_cast<std::size_t>(ring[k])] = true;
    }
  }
  // Mark ring bonds: bond (a, b) is in a ring when a and b are adjacent in
  // some perceived ring cycle.
  for (std::size_t bi = 0; bi < mol.bonds().size(); ++bi) {
    const Bond& b = mol.bonds()[bi];
    for (const Ring& ring : info.rings) {
      const std::size_t n = ring.size();
      for (std::size_t k = 0; k < n; ++k) {
        const int u = ring[k];
        const int v = ring[(k + 1) % n];
        if ((u == b.a && v == b.b) || (u == b.b && v == b.a)) {
          info.bond_in_ring[bi] = true;
        }
      }
    }
  }
  return info;
}

int cyclomatic_number(const Molecule& mol) {
  int components = 0;
  mol.components(&components);
  return mol.num_bonds() - mol.num_atoms() + components;
}

std::vector<Ring> aromatic_rings(const Molecule& mol, const RingInfo& info) {
  std::vector<Ring> out;
  for (const Ring& ring : info.rings) {
    bool all_aromatic = true;
    const std::size_t n = ring.size();
    for (std::size_t k = 0; k < n && all_aromatic; ++k) {
      if (mol.bond_between(ring[k], ring[(k + 1) % n]) !=
          BondType::kAromatic) {
        all_aromatic = false;
      }
    }
    if (all_aromatic) out.push_back(ring);
  }
  return out;
}

}  // namespace sqvae::chem
