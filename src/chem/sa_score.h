// Synthetic Accessibility (SA) score.
//
// Ertl & Schuffenhauer (2009) score synthesis difficulty on [1, 10]
// (1 = easy) as fragment-frequency score plus complexity penalties. Without
// the PubChem fragment-frequency database this implementation keeps the
// complexity-penalty structure (size, ring complexity, macrocycles,
// branching, unusual motifs) and replaces the fragment score with a
// common-environment bonus computed from the same atom environments the
// other property models use (aromatic carbons, plain chains and common
// functional groups score as "easy"; dense heteroatom clusters and unusual
// valences as "hard"). See DESIGN.md §3.
//
// Table II of the paper reports SA normalised to [0, 1] with higher =
// better (more accessible); normalized_sa_score() applies the standard
// (10 - SA) / 9 remapping used by the MolGAN evaluation code.
#pragma once

#include "chem/molecule.h"

namespace sqvae::chem {

/// Raw Ertl-style SA score in [1, 10]; 1 = trivially synthesizable.
double sa_score(const Molecule& mol);

/// (10 - sa_score) / 9, clipped to [0, 1]; higher = more accessible.
double normalized_sa_score(const Molecule& mol);

}  // namespace sqvae::chem
