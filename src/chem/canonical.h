// Canonical atom ranking (Morgan / extended-connectivity refinement).
//
// Produces an atom ordering invariant under graph isomorphism, so two
// differently-indexed encodings of the same molecule yield the same
// canonical SMILES — the property the round-trip tests and the generation
// uniqueness metrics rely on.
#pragma once

#include <vector>

#include "chem/molecule.h"

namespace sqvae::chem {

/// Rank per atom in [0, num_atoms): 0 is the canonical start atom.
/// Ties that survive refinement (symmetric or refinement-equivalent atoms)
/// are broken by a graph-invariant search: every tied candidate is
/// tentatively promoted and the completion with the lexicographically
/// smallest relabelling-invariant signature wins, so the resulting
/// permutation — and the canonical SMILES and content hashes built on it —
/// is identical for every input atom ordering of the same molecule.
std::vector<int> canonical_ranks(const Molecule& mol);

}  // namespace sqvae::chem
