// Canonical atom ranking (Morgan / extended-connectivity refinement).
//
// Produces an atom ordering invariant under graph isomorphism, so two
// differently-indexed encodings of the same molecule yield the same
// canonical SMILES — the property the round-trip tests and the generation
// uniqueness metrics rely on.
#pragma once

#include <vector>

#include "chem/molecule.h"

namespace sqvae::chem {

/// Rank per atom in [0, num_atoms): 0 is the canonical start atom.
/// Symmetric atoms receive ties broken deterministically (by refined
/// invariant, then by a canonical BFS), so the result is a permutation.
std::vector<int> canonical_ranks(const Molecule& mol);

}  // namespace sqvae::chem
