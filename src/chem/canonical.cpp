#include "chem/canonical.h"

#include <algorithm>
#include <cstdint>

namespace sqvae::chem {

namespace {

/// Initial invariant: element, degree, implicit H count, aromaticity,
/// and the multiset of incident bond orders (packed). Depends only on the
/// atom's local structure, never on atom indices.
std::uint64_t initial_invariant(const Molecule& mol, int i) {
  std::uint64_t inv = 0;
  inv = inv * 8 + static_cast<std::uint64_t>(element_code(mol.atom(i)));
  inv = inv * 8 + static_cast<std::uint64_t>(mol.degree(i));
  inv = inv * 8 + static_cast<std::uint64_t>(mol.implicit_hydrogens(i));
  inv = inv * 2 + (mol.is_aromatic_atom(i) ? 1u : 0u);
  int order_counts[5] = {0, 0, 0, 0, 0};
  for (int v : mol.neighbors(i)) {
    ++order_counts[bond_code(mol.bond_between(i, v))];
  }
  for (int c : order_counts) inv = inv * 33 + static_cast<std::uint64_t>(c);
  return inv;
}

/// Dense ranks of `keys`: equal keys -> equal rank, ranks ordered by key.
std::vector<int> compress(const std::vector<std::uint64_t>& keys) {
  std::vector<std::uint64_t> sorted = keys;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  std::vector<int> out(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    out[i] = static_cast<int>(
        std::lower_bound(sorted.begin(), sorted.end(), keys[i]) -
        sorted.begin());
  }
  return out;
}

int count_distinct(const std::vector<int>& ranks) {
  return ranks.empty() ? 0
                       : 1 + *std::max_element(ranks.begin(), ranks.end());
}

/// Morgan refinement to a fixed point: fold sorted (neighbor class, bond
/// code) pairs into each atom's key until the class count stops growing.
std::vector<int> refine(const Molecule& mol, std::vector<int> current) {
  const int n = mol.num_atoms();
  int distinct = count_distinct(current);
  for (int iter = 0; iter < n && distinct < n; ++iter) {
    std::vector<std::uint64_t> keys(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      std::vector<int> neigh;
      for (int v : mol.neighbors(i)) {
        // Combine the neighbor's class with the connecting bond's code so
        // that bond patterns distinguish otherwise-equal neighbors.
        neigh.push_back(current[static_cast<std::size_t>(v)] * 5 +
                        bond_code(mol.bond_between(i, v)));
      }
      std::sort(neigh.begin(), neigh.end());
      std::uint64_t k =
          static_cast<std::uint64_t>(current[static_cast<std::size_t>(i)]);
      for (int v : neigh) {
        k = k * 1000003ull + static_cast<std::uint64_t>(v) + 1ull;
      }
      keys[static_cast<std::size_t>(i)] = k;
    }
    std::vector<int> next = compress(keys);
    const int next_distinct = count_distinct(next);
    if (next_distinct == distinct) break;
    current = std::move(next);
    distinct = next_distinct;
  }
  return current;
}

/// Relabelling-invariant serialization of a *discrete* ranking (a full
/// permutation): per rank, the atom's local invariant followed by its
/// sorted (neighbor rank, bond code) edge list. Two rankings produce equal
/// signatures iff the rank-labelled graphs are identical — in which case
/// every downstream consumer (the SMILES writer walks atoms by rank and
/// molecule structure only) emits identical output.
std::vector<std::uint64_t> ranking_signature(const Molecule& mol,
                                             const std::vector<int>& ranks) {
  const int n = mol.num_atoms();
  std::vector<int> atom_of_rank(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    atom_of_rank[static_cast<std::size_t>(ranks[static_cast<std::size_t>(i)])] =
        i;
  }
  std::vector<std::uint64_t> sig;
  sig.reserve(static_cast<std::size_t>(n) * 4);
  for (int r = 0; r < n; ++r) {
    const int a = atom_of_rank[static_cast<std::size_t>(r)];
    sig.push_back(initial_invariant(mol, a));
    std::vector<std::uint64_t> edges;
    for (int v : mol.neighbors(a)) {
      edges.push_back(
          static_cast<std::uint64_t>(ranks[static_cast<std::size_t>(v)]) * 8 +
          static_cast<std::uint64_t>(bond_code(mol.bond_between(a, v))));
    }
    std::sort(edges.begin(), edges.end());
    sig.insert(sig.end(), edges.begin(), edges.end());
    sig.push_back(~0ull);  // rank separator
  }
  return sig;
}

struct Completion {
  bool found = false;
  std::vector<std::uint64_t> sig;
  std::vector<int> ranks;
};

/// Completes a refined partial ranking into a full permutation.
///
/// Ties left by refinement (symmetric or refinement-equivalent atoms) are
/// broken by branching: every member of the smallest still-tied class is
/// tentatively promoted, the partition re-refined, and the recursion keeps
/// the completion whose ranking_signature is lexicographically smallest.
/// The minimum over all members is invariant under input atom reordering —
/// a permuted encoding branches over the same (relabelled) candidate set
/// and compares the same relabelling-invariant signatures — which is what
/// makes canonical SMILES, and therefore content hashes, stable across
/// atom orderings. (The previous tie-break promoted the member with the
/// lowest *input index*, which silently produced different canonical
/// strings for permuted encodings of molecules where refinement leaves
/// non-equivalent atoms tied.)
///
/// Cost: branching multiplies by the tied-class size at each level, but
/// refinement discretizes rapidly after each promotion; for chemical
/// graphs of this repository's alphabet (<= ~32 atoms) the search visits a
/// handful of leaves (e.g. benzene: 6 x 2 = 12).
void complete_ranking(const Molecule& mol, std::vector<int> current,
                      Completion* best) {
  const int n = mol.num_atoms();
  current = refine(mol, current);
  const int distinct = count_distinct(current);
  if (distinct == n) {
    std::vector<std::uint64_t> sig = ranking_signature(mol, current);
    if (!best->found || sig < best->sig) {
      best->found = true;
      best->sig = std::move(sig);
      best->ranks = std::move(current);
    }
    return;
  }
  // Smallest class id with more than one member.
  std::vector<int> class_count(static_cast<std::size_t>(distinct), 0);
  for (int i = 0; i < n; ++i) {
    ++class_count[static_cast<std::size_t>(
        current[static_cast<std::size_t>(i)])];
  }
  int tied_class = -1;
  for (int c = 0; c < distinct; ++c) {
    if (class_count[static_cast<std::size_t>(c)] > 1) {
      tied_class = c;
      break;
    }
  }
  for (int m = 0; m < n; ++m) {
    if (current[static_cast<std::size_t>(m)] != tied_class) continue;
    // Promote: give `m` a key just below its class peers and recurse.
    std::vector<std::uint64_t> keys(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      keys[static_cast<std::size_t>(i)] =
          static_cast<std::uint64_t>(current[static_cast<std::size_t>(i)]) *
              2ull +
          1ull;
    }
    keys[static_cast<std::size_t>(m)] -= 1ull;
    complete_ranking(mol, compress(keys), best);
  }
}

}  // namespace

std::vector<int> canonical_ranks(const Molecule& mol) {
  const int n = mol.num_atoms();
  if (n == 0) return {};

  std::vector<std::uint64_t> inv(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    inv[static_cast<std::size_t>(i)] = initial_invariant(mol, i);
  }
  Completion best;
  complete_ranking(mol, compress(inv), &best);
  return best.ranks;
}

}  // namespace sqvae::chem
