#include "chem/canonical.h"

#include <algorithm>
#include <cstdint>
#include <map>

namespace sqvae::chem {

namespace {

/// Initial invariant: element, degree, implicit H count, aromaticity,
/// and the multiset of incident bond orders (packed).
std::uint64_t initial_invariant(const Molecule& mol, int i) {
  std::uint64_t inv = 0;
  inv = inv * 8 + static_cast<std::uint64_t>(element_code(mol.atom(i)));
  inv = inv * 8 + static_cast<std::uint64_t>(mol.degree(i));
  inv = inv * 8 + static_cast<std::uint64_t>(mol.implicit_hydrogens(i));
  inv = inv * 2 + (mol.is_aromatic_atom(i) ? 1u : 0u);
  int order_counts[5] = {0, 0, 0, 0, 0};
  for (int v : mol.neighbors(i)) {
    ++order_counts[bond_code(mol.bond_between(i, v))];
  }
  for (int c : order_counts) inv = inv * 33 + static_cast<std::uint64_t>(c);
  return inv;
}

}  // namespace

std::vector<int> canonical_ranks(const Molecule& mol) {
  const int n = mol.num_atoms();
  std::vector<int> rank(static_cast<std::size_t>(n), 0);
  if (n == 0) return rank;

  // Start from initial invariants compressed to dense ranks.
  std::vector<std::uint64_t> inv(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    inv[static_cast<std::size_t>(i)] = initial_invariant(mol, i);
  }
  auto compress = [&](const std::vector<std::uint64_t>& keys) {
    std::vector<std::uint64_t> sorted = keys;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    std::vector<int> out(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      out[i] = static_cast<int>(
          std::lower_bound(sorted.begin(), sorted.end(), keys[i]) -
          sorted.begin());
    }
    return out;
  };

  std::vector<int> current = compress(inv);
  int distinct = 1 + *std::max_element(current.begin(), current.end());

  // Morgan refinement: fold sorted neighbor ranks into each atom's key
  // until the number of distinct classes stops growing.
  for (int iter = 0; iter < n; ++iter) {
    std::vector<std::uint64_t> keys(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      std::vector<int> neigh;
      for (int v : mol.neighbors(i)) {
        // Combine the neighbor's class with the connecting bond's code so
        // that bond patterns distinguish otherwise-equal neighbors.
        neigh.push_back(current[static_cast<std::size_t>(v)] * 5 +
                        bond_code(mol.bond_between(i, v)));
      }
      std::sort(neigh.begin(), neigh.end());
      std::uint64_t k = static_cast<std::uint64_t>(
          current[static_cast<std::size_t>(i)]);
      for (int v : neigh) {
        k = k * 1000003ull + static_cast<std::uint64_t>(v) + 1ull;
      }
      keys[static_cast<std::size_t>(i)] = k;
    }
    std::vector<int> next = compress(keys);
    const int next_distinct = 1 + *std::max_element(next.begin(), next.end());
    if (next_distinct == distinct) break;
    current = std::move(next);
    distinct = next_distinct;
  }

  // Break remaining ties (symmetric atoms) deterministically: repeatedly
  // single out the lowest-class tied atom and re-refine. This yields a full
  // permutation while keeping isomorphism invariance for asymmetric parts.
  while (distinct < n) {
    // Find the smallest class with more than one member and promote its
    // first member (by current class ordering, then by a canonical BFS
    // order from already-ranked atoms — index order is a deterministic
    // final fallback that is stable across encodings after refinement).
    std::map<int, std::vector<int>> classes;
    for (int i = 0; i < n; ++i) {
      classes[current[static_cast<std::size_t>(i)]].push_back(i);
    }
    int chosen = -1;
    for (const auto& [cls, members] : classes) {
      if (members.size() > 1) {
        chosen = members.front();
        break;
      }
    }
    if (chosen < 0) break;
    // Promote: give `chosen` a key just below its class peers and refine.
    std::vector<std::uint64_t> keys(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      keys[static_cast<std::size_t>(i)] =
          static_cast<std::uint64_t>(current[static_cast<std::size_t>(i)]) *
              2ull +
          1ull;
    }
    keys[static_cast<std::size_t>(chosen)] -= 1ull;
    current = compress(keys);
    // Re-run Morgan refinement with the new seed classes.
    for (int iter = 0; iter < n; ++iter) {
      std::vector<std::uint64_t> rkeys(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) {
        std::vector<int> neigh;
        for (int v : mol.neighbors(i)) {
          neigh.push_back(current[static_cast<std::size_t>(v)] * 5 +
                          bond_code(mol.bond_between(i, v)));
        }
        std::sort(neigh.begin(), neigh.end());
        std::uint64_t k = static_cast<std::uint64_t>(
            current[static_cast<std::size_t>(i)]);
        for (int v : neigh) {
          k = k * 1000003ull + static_cast<std::uint64_t>(v) + 1ull;
        }
        rkeys[static_cast<std::size_t>(i)] = k;
      }
      std::vector<int> next = compress(rkeys);
      const int next_distinct =
          1 + *std::max_element(next.begin(), next.end());
      const int cur_distinct =
          1 + *std::max_element(current.begin(), current.end());
      if (next_distinct == cur_distinct) break;
      current = std::move(next);
    }
    distinct = 1 + *std::max_element(current.begin(), current.end());
  }

  return current;
}

}  // namespace sqvae::chem
