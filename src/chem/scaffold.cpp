#include "chem/scaffold.h"

#include <map>
#include <sstream>

#include "chem/descriptors.h"
#include "chem/logp.h"
#include "chem/rings.h"
#include "chem/smiles.h"

namespace sqvae::chem {

Molecule murcko_scaffold(const Molecule& mol) {
  if (mol.empty()) return Molecule{};
  const RingInfo rings = perceive_rings(mol);
  bool any_ring = false;
  for (bool f : rings.atom_in_ring) any_ring = any_ring || f;
  if (!any_ring) return Molecule{};  // acyclic: empty scaffold

  // Iteratively prune degree-<=1 atoms that are not ring members. What
  // remains is rings plus the shortest connecting framework.
  std::vector<bool> keep(static_cast<std::size_t>(mol.num_atoms()), true);
  bool changed = true;
  auto live_degree = [&](int i) {
    int d = 0;
    for (int v : mol.neighbors(i)) {
      if (keep[static_cast<std::size_t>(v)]) ++d;
    }
    return d;
  };
  while (changed) {
    changed = false;
    for (int i = 0; i < mol.num_atoms(); ++i) {
      if (!keep[static_cast<std::size_t>(i)]) continue;
      if (rings.atom_in_ring[static_cast<std::size_t>(i)]) continue;
      if (live_degree(i) <= 1) {
        keep[static_cast<std::size_t>(i)] = false;
        changed = true;
      }
    }
  }
  std::vector<int> kept;
  for (int i = 0; i < mol.num_atoms(); ++i) {
    if (keep[static_cast<std::size_t>(i)]) kept.push_back(i);
  }
  // Scaffold bonds retain their types; exocyclic double bonds to pruned
  // atoms disappear with the atoms (standard Murcko simplification).
  return mol.subgraph(kept);
}

std::optional<std::string> scaffold_smiles(const Molecule& mol) {
  const Molecule scaffold = murcko_scaffold(mol);
  if (scaffold.empty()) return std::nullopt;
  return to_smiles(scaffold);
}

LipinskiReport lipinski(const Molecule& mol) {
  const Descriptors d = compute_descriptors(mol);
  LipinskiReport report;
  report.molecular_weight = d.molecular_weight;
  report.logp = crippen_logp(mol);
  report.hbd = d.hbd;
  report.hba = d.hba;
  if (report.molecular_weight > 500.0) ++report.violations;
  if (report.logp > 5.0) ++report.violations;
  if (report.hbd > 5) ++report.violations;
  if (report.hba > 10) ++report.violations;
  report.passes = report.violations <= 1;
  return report;
}

std::string molecular_formula(const Molecule& mol) {
  // Hill order: C first, then H, then the rest alphabetically.
  std::map<std::string, int> counts;
  int hydrogens = 0;
  for (int i = 0; i < mol.num_atoms(); ++i) {
    ++counts[element_symbol(mol.atom(i))];
    hydrogens += mol.implicit_hydrogens(i);
  }
  std::ostringstream os;
  auto emit = [&os](const std::string& symbol, int count) {
    if (count == 0) return;
    os << symbol;
    if (count > 1) os << count;
  };
  emit("C", counts["C"]);
  emit("H", hydrogens);
  for (const auto& [symbol, count] : counts) {
    if (symbol == "C") continue;
    emit(symbol, count);
  }
  return os.str();
}

}  // namespace sqvae::chem
