// Element and bond alphabets.
//
// The paper's molecule-matrix encoding (Fig. 3) assigns diagonal codes
// 1-C, 2-N, 3-O for QM9 and additionally 4-F, 5-S for PDBbind ligands, and
// off-diagonal bond codes 0-NONE, 1-SINGLE, 2-DOUBLE, 4-AROMATIC (we also
// carry 3-TRIPLE, which the QM9 alphabet contains even though the paper's
// example omits it). Only heavy atoms are represented; hydrogens are
// implicit and derived from default valences as in standard cheminformatics
// toolkits.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace sqvae::chem {

enum class Element : std::uint8_t {
  kC = 1,
  kN = 2,
  kO = 3,
  kF = 4,
  kS = 5,
};

enum class BondType : std::uint8_t {
  kNone = 0,
  kSingle = 1,
  kDouble = 2,
  kTriple = 3,
  kAromatic = 4,
};

/// All elements of the PDBbind alphabet, in matrix-code order.
inline constexpr std::array<Element, 5> kAllElements = {
    Element::kC, Element::kN, Element::kO, Element::kF, Element::kS};

/// Matrix code of an element (1..5).
inline int element_code(Element e) { return static_cast<int>(e); }

/// Element from a matrix code; returns false when the code is not 1..5.
bool element_from_code(int code, Element* out);

/// Matrix code of a bond (0..4).
inline int bond_code(BondType b) { return static_cast<int>(b); }

/// BondType from a matrix code; returns false for codes outside 0..4.
bool bond_from_code(int code, BondType* out);

/// "C", "N", ... symbol.
std::string element_symbol(Element e);

/// Element from symbol (case-sensitive, upper case); false if unknown.
bool element_from_symbol(const std::string& symbol, Element* out);

/// Standard atomic weight (g/mol).
double atomic_weight(Element e);

/// Default (organic-subset) valence: C 4, N 3, O 2, F 1, S 2.
int default_valence(Element e);

/// Maximum valence the sanitizer tolerates (S may be hypervalent: 6).
int max_valence(Element e);

/// Bond order used in valence arithmetic: 1, 2, 3, and 1.5 for aromatic.
double bond_order(BondType b);

/// Number of electron-pair-donor/acceptor relevant heteroatoms etc. are
/// derived in descriptors.h; this header only carries per-element basics.

}  // namespace sqvae::chem
