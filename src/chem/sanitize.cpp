#include "chem/sanitize.h"

#include <algorithm>

#include "chem/rings.h"

namespace sqvae::chem {

namespace {

BondType demoted(BondType t) {
  switch (t) {
    case BondType::kTriple: return BondType::kDouble;
    case BondType::kDouble: return BondType::kSingle;
    case BondType::kAromatic: return BondType::kSingle;
    case BondType::kSingle: return BondType::kNone;
    case BondType::kNone: return BondType::kNone;
  }
  return BondType::kNone;
}

/// Demotes non-ring aromatic bonds to single bonds.
int fix_acyclic_aromatics(Molecule& mol) {
  int changes = 0;
  // Re-perceive after each pass: demotions can break rings that other
  // aromatic bonds relied on.
  for (bool changed = true; changed;) {
    changed = false;
    const RingInfo info = perceive_rings(mol);
    for (std::size_t bi = 0; bi < mol.bonds().size(); ++bi) {
      const Bond b = mol.bonds()[bi];
      if (b.type == BondType::kAromatic && !info.bond_in_ring[bi]) {
        mol.set_bond(b.a, b.b, BondType::kSingle);
        ++changes;
        changed = true;
        break;  // bond indices may have shifted; restart the scan
      }
    }
  }
  return changes;
}

}  // namespace

Molecule sanitize(const Molecule& mol, SanitizeStats* stats) {
  SanitizeStats local;
  Molecule m = mol;

  local.aromatic_demotions = fix_acyclic_aromatics(m);

  // Valence repair loop. Terminates: every demotion strictly decreases the
  // total bond order.
  for (;;) {
    // Most-over-valent atom.
    int worst = -1;
    double worst_excess = 1e-9;
    for (int i = 0; i < m.num_atoms(); ++i) {
      const double excess = m.valence_used(i) - m.max_allowed_valence(i);
      if (excess > worst_excess) {
        worst_excess = excess;
        worst = i;
      }
    }
    if (worst < 0) break;

    // Highest-order incident bond; ties by (neighbor excess, atom index).
    int best_neighbor = -1;
    BondType best_type = BondType::kNone;
    for (int v : m.neighbors(worst)) {
      const BondType t = m.bond_between(worst, v);
      const bool better =
          bond_order(t) > bond_order(best_type) ||
          (bond_order(t) == bond_order(best_type) && v < best_neighbor);
      if (best_neighbor < 0 || better) {
        best_neighbor = v;
        best_type = t;
      }
    }
    if (best_neighbor < 0) break;  // isolated over-valent atom: impossible
    const BondType next = demoted(best_type);
    m.set_bond(worst, best_neighbor, next);
    if (next == BondType::kNone) {
      ++local.bonds_removed;
    } else {
      ++local.valence_demotions;
    }
  }

  // Demotions may have created new acyclic aromatic bonds (by removing ring
  // bonds); repair once more.
  local.aromatic_demotions += fix_acyclic_aromatics(m);

  // Largest connected component.
  int num_components = 0;
  const std::vector<int> comp = m.components(&num_components);
  if (num_components > 1) {
    std::vector<int> sizes(static_cast<std::size_t>(num_components), 0);
    for (int c : comp) ++sizes[static_cast<std::size_t>(c)];
    int best = 0;
    for (int c = 1; c < num_components; ++c) {
      if (sizes[static_cast<std::size_t>(c)] >
          sizes[static_cast<std::size_t>(best)]) {
        best = c;
      }
    }
    std::vector<int> keep;
    for (int i = 0; i < m.num_atoms(); ++i) {
      if (comp[static_cast<std::size_t>(i)] == best) keep.push_back(i);
    }
    local.atoms_dropped = m.num_atoms() - static_cast<int>(keep.size());
    m = m.subgraph(keep);
  }

  if (stats != nullptr) *stats = local;
  return m;
}

bool is_valid(const Molecule& mol) {
  if (mol.empty()) return true;
  if (!mol.valences_ok()) return false;
  int num_components = 0;
  mol.components(&num_components);
  if (num_components > 1) return false;
  const RingInfo info = perceive_rings(mol);
  for (std::size_t bi = 0; bi < mol.bonds().size(); ++bi) {
    if (mol.bonds()[bi].type == BondType::kAromatic &&
        !info.bond_in_ring[bi]) {
      return false;
    }
  }
  return true;
}

}  // namespace sqvae::chem
