// Minimal command-line flag parsing for bench binaries and examples.
//
// Supported syntax: --name=value, --name value, and bare --name for
// booleans. Unknown flags raise an error listing the registered names so
// bench invocations fail loudly rather than silently running the default
// configuration.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace sqvae {

/// Registry + parser for a flat set of command-line flags.
class Flags {
 public:
  /// Registers a string flag with a default value and help text.
  void add_string(const std::string& name, std::string default_value,
                  std::string help);
  /// Registers an integer flag.
  void add_int(const std::string& name, long long default_value,
               std::string help);
  /// Registers a floating-point flag.
  void add_double(const std::string& name, double default_value,
                  std::string help);
  /// Registers a boolean flag (bare --name sets it true).
  void add_bool(const std::string& name, bool default_value, std::string help);

  /// Parses argv. Returns false (after printing usage) when --help is
  /// requested. Throws std::invalid_argument on unknown flags or malformed
  /// values.
  bool parse(int argc, const char* const* argv);

  std::string get_string(const std::string& name) const;
  long long get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// Usage text built from registered flags.
  std::string usage(const std::string& program) const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };
  struct Entry {
    Type type;
    std::string value;
    std::string default_value;
    std::string help;
  };
  const Entry& entry(const std::string& name, Type expected) const;

  std::map<std::string, Entry> entries_;
};

}  // namespace sqvae
