// Small dense row-major matrix/vector math used by the classical layers,
// dataset codecs, and result tables. This is deliberately a simple, fully
// owned value type (no expression templates, no views) — the heavy numeric
// work in this project happens in the quantum statevector kernels and in
// the autodiff tensor ops, both of which operate on raw contiguous storage.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace sqvae {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, zero-initialised.
  Matrix(std::size_t rows, std::size_t cols);

  /// rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill);

  /// Constructs from nested initializer lists; all rows must have the same
  /// length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Flat element access (row-major).
  double& operator[](std::size_t i) { return data_[i]; }
  double operator[](std::size_t i) const { return data_[i]; }

  Matrix transpose() const;
  Matrix matmul(const Matrix& rhs) const;

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s);

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double s) { return a *= s; }
  friend Matrix operator*(double s, Matrix a) { return a *= s; }

  bool operator==(const Matrix& rhs) const = default;

  /// Sum of all elements.
  double sum() const;
  /// Sum of |x| over all elements (L1 norm of the flattened matrix).
  double l1_norm() const;
  /// sqrt of sum of squares (Frobenius norm).
  double frobenius_norm() const;
  /// Largest element.
  double max() const;
  /// Smallest element.
  double min() const;

  /// Mean squared difference against another matrix of the same shape.
  double mse(const Matrix& other) const;

  /// Row r as a flat vector.
  std::vector<double> row(std::size_t r) const;

  /// Human-readable rendering, mostly for tests and examples.
  std::string to_string(int precision = 3) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// y = A x for a flat vector x with x.size() == A.cols().
std::vector<double> matvec(const Matrix& a, const std::vector<double>& x);

/// Dot product; sizes must match.
double dot(const std::vector<double>& a, const std::vector<double>& b);

/// Sum of |x_i|.
double l1_norm(const std::vector<double>& v);

/// sqrt of sum of squares.
double l2_norm(const std::vector<double>& v);

/// Divides v by its L1 norm; returns v unchanged when the norm is ~0.
std::vector<double> l1_normalized(std::vector<double> v);

/// Mean squared error between two equally sized vectors.
double mse(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace sqvae
