// Clang Thread Safety Analysis annotation macros.
//
// These expand to clang's capability attributes when the compiler supports
// them (clang with -Wthread-safety; the CI thread-safety lane builds the
// whole tree with -Wthread-safety -Werror) and to nothing everywhere else,
// so gcc builds are byte-identical with or without annotations.
//
// Conventions for new code (see README.md "Static analysis & correctness
// tooling"):
//
//   * Never declare a naked std::mutex / std::condition_variable in src/ —
//     use sq::Mutex / sq::MutexLock / sq::CondVar from common/mutex.h (the
//     determinism lint enforces this).
//   * Every field a lock protects gets GUARDED_BY(mu_). Every private
//     helper that assumes the lock is held gets REQUIRES(mu_). Public
//     entry points that take the lock themselves get EXCLUDES(mu_).
//   * Condition waits are written as explicit `while (!pred) cv_.wait(mu_)`
//     loops, not predicate lambdas: the analysis cannot see that a lambda
//     body runs under the lock, and the loop form needs no assertion
//     escape hatches.
//
// The macro set and the wrapper-class patterns in common/mutex.h follow
// the upstream clang documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html); keeping the
// canonical names makes the annotations readable to anyone who knows the
// analysis from other codebases. This header is the single place in the
// repo where analysis attributes are defined — annotated code never
// mentions __attribute__((...)) directly, so there is exactly one
// off-switch for non-clang compilers.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SQVAE_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef SQVAE_THREAD_ANNOTATION
#define SQVAE_THREAD_ANNOTATION(x)  // no-op: gcc, MSVC, old clang
#endif

/// Declares a class to be a capability ("mutex" for lockable types). The
/// analysis tracks which capabilities are held at every program point.
#define CAPABILITY(x) SQVAE_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class whose constructor acquires and destructor
/// releases a capability (sq::MutexLock).
#define SCOPED_CAPABILITY SQVAE_THREAD_ANNOTATION(scoped_lockable)

/// Field annotation: reads and writes require holding `x`.
#define GUARDED_BY(x) SQVAE_THREAD_ANNOTATION(guarded_by(x))

/// Pointer-field annotation: the pointed-to data requires holding `x`
/// (the pointer itself may be read freely).
#define PT_GUARDED_BY(x) SQVAE_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function precondition: the caller must hold the capability; the
/// function neither acquires nor releases it.
#define REQUIRES(...) \
  SQVAE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Shared (reader) variant of REQUIRES.
#define REQUIRES_SHARED(...) \
  SQVAE_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability and holds it on return.
#define ACQUIRE(...) \
  SQVAE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The function releases a capability the caller held.
#define RELEASE(...) \
  SQVAE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `b`.
#define TRY_ACQUIRE(b, ...) \
  SQVAE_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

/// Function precondition: the caller must NOT hold the capability (the
/// function acquires it itself; calling with it held would deadlock).
#define EXCLUDES(...) SQVAE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Tells the analysis the capability is held without acquiring it — the
/// escape hatch for contexts it cannot see into (e.g. a callback invoked
/// under a lock). Prefer restructuring over asserting.
#define ASSERT_CAPABILITY(x) SQVAE_THREAD_ANNOTATION(assert_capability(x))

/// Documents that a function returns a reference to the capability
/// guarding its result.
#define RETURN_CAPABILITY(x) SQVAE_THREAD_ANNOTATION(lock_returned(x))

/// Lock-ordering declarations (deadlock prevention).
#define ACQUIRED_BEFORE(...) \
  SQVAE_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  SQVAE_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Opts one function out of the analysis entirely. Must not appear
/// outside common/mutex.h (the CI lane's zero-suppression rule); it
/// exists for the wrapper internals, where the analysis cannot model the
/// underlying std primitives.
#define NO_THREAD_SAFETY_ANALYSIS \
  SQVAE_THREAD_ANNOTATION(no_thread_safety_analysis)
