#include "common/flags.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace sqvae {

void Flags::add_string(const std::string& name, std::string default_value,
                       std::string help) {
  entries_[name] =
      Entry{Type::kString, default_value, default_value, std::move(help)};
}

void Flags::add_int(const std::string& name, long long default_value,
                    std::string help) {
  const std::string v = std::to_string(default_value);
  entries_[name] = Entry{Type::kInt, v, v, std::move(help)};
}

void Flags::add_double(const std::string& name, double default_value,
                       std::string help) {
  std::ostringstream os;
  os << default_value;
  entries_[name] = Entry{Type::kDouble, os.str(), os.str(), std::move(help)};
}

void Flags::add_bool(const std::string& name, bool default_value,
                     std::string help) {
  const std::string v = default_value ? "true" : "false";
  entries_[name] = Entry{Type::kBool, v, v, std::move(help)};
}

bool Flags::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage(argv[0]).c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      throw std::invalid_argument("unknown flag --" + name + "\n" +
                                  usage(argv[0]));
    }
    Entry& e = it->second;
    if (!has_value) {
      if (e.type == Type::kBool) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        throw std::invalid_argument("flag --" + name + " requires a value");
      }
    }
    // Validate typed values eagerly so errors point at the flag.
    try {
      switch (e.type) {
        case Type::kInt:
          (void)std::stoll(value);
          break;
        case Type::kDouble:
          (void)std::stod(value);
          break;
        case Type::kBool:
          if (value != "true" && value != "false" && value != "1" &&
              value != "0") {
            throw std::invalid_argument(value);
          }
          break;
        case Type::kString:
          break;
      }
    } catch (const std::exception&) {
      throw std::invalid_argument("bad value for flag --" + name + ": " +
                                  value);
    }
    e.value = value;
  }
  return true;
}

const Flags::Entry& Flags::entry(const std::string& name,
                                 Type expected) const {
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.type != expected) {
    throw std::invalid_argument("flag not registered with this type: " + name);
  }
  return it->second;
}

std::string Flags::get_string(const std::string& name) const {
  return entry(name, Type::kString).value;
}

long long Flags::get_int(const std::string& name) const {
  return std::stoll(entry(name, Type::kInt).value);
}

double Flags::get_double(const std::string& name) const {
  return std::stod(entry(name, Type::kDouble).value);
}

bool Flags::get_bool(const std::string& name) const {
  const std::string& v = entry(name, Type::kBool).value;
  return v == "true" || v == "1";
}

std::string Flags::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& [name, e] : entries_) {
    os << "  --" << name << " (default: " << e.default_value << ")  "
       << e.help << "\n";
  }
  return os.str();
}

}  // namespace sqvae
