// Result-table formatting for the benchmark harness.
//
// Every bench binary reproduces one table or figure from the paper; this
// helper prints the rows both as an aligned plain-text table (for the
// console) and as CSV (for downstream plotting), so the paper's series can
// be compared directly against the reproduction.
#pragma once

#include <string>
#include <vector>

namespace sqvae {

/// Column-aligned text/CSV table builder.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row of pre-formatted cells; must match the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string fmt(double v, int precision = 4);

  std::size_t num_rows() const { return rows_.size(); }

  /// Aligned plain-text rendering.
  std::string to_text() const;

  /// RFC-4180-ish CSV rendering (no quoting needed for our content).
  std::string to_csv() const;

  /// Writes CSV to `path`; returns false on I/O failure.
  bool write_csv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sqvae
