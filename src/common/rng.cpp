#include "common/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace sqvae {

namespace {
// SplitMix64: used to expand the user seed into the 128-bit PCG state so
// that low-entropy seeds (0, 1, 2, ...) still yield well-separated streams.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  state_hi_ = splitmix64(s);
  state_lo_ = splitmix64(s) | 1ull;  // LCG increment must be odd
}

Rng::result_type Rng::operator()() {
  // 64-bit truncated-multiply LCG step followed by an xorshift-multiply
  // output permutation. Not literally PCG-XSL-RR-128 but the same design
  // family; passes the statistical sanity checks in tests/common_rng_test.
  state_hi_ = state_hi_ * 6364136223846793005ull + state_lo_;
  std::uint64_t z = state_hi_;
  z ^= z >> 32;
  z *= 0xd6e8feb86659fd93ull;
  z ^= z >> 32;
  z *= 0xd6e8feb86659fd93ull;
  z ^= z >> 32;
  return z;
}

double Rng::uniform() {
  // 53 top bits -> double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t v;
  do {
    v = (*this)();
  } while (v >= limit);
  return v % n;
}

int Rng::uniform_int(int lo, int hi) {
  assert(lo <= hi);
  return lo + static_cast<int>(uniform_index(
                  static_cast<std::uint64_t>(hi - lo) + 1ull));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 is kept away from 0 so log() is finite.
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::size_t Rng::weighted_choice(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  assert(total > 0.0);
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (r < w) return i;
    r -= w;
  }
  // Floating-point round-off can leave r marginally above the last bucket;
  // return the last positive-weight index in that case.
  for (std::size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return 0;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  shuffle(p);
  return p;
}

Rng Rng::split() { return Rng((*this)()); }

Rng Rng::stream(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
  // Two SplitMix64 avalanche rounds fold (a, b) into the seed; each input
  // is pre-multiplied by a distinct odd constant so (a, b) and (b, a) land
  // in unrelated streams.
  std::uint64_t x = seed;
  x = splitmix64(x) ^ (a * 0x9e3779b97f4a7c15ull + 0xbf58476d1ce4e5b9ull);
  x = splitmix64(x) ^ (b * 0x94d049bb133111ebull + 0xd6e8feb86659fd93ull);
  return Rng(splitmix64(x));
}

Rng::State Rng::state() const {
  return State{state_hi_, state_lo_, cached_normal_, has_cached_normal_};
}

void Rng::set_state(const State& s) {
  state_hi_ = s.state_hi;
  state_lo_ = s.state_lo;
  cached_normal_ = s.cached_normal;
  has_cached_normal_ = s.has_cached_normal;
}

}  // namespace sqvae
