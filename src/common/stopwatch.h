// Wall-clock stopwatch used by the trainers and bench binaries to report
// per-epoch timings.
#pragma once

#include <chrono>

namespace sqvae {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace sqvae
