#include "common/matrix.h"

#include <cassert>
#include <cmath>
#include <sstream>

namespace sqvae {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows.size() ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    assert(r.size() == cols_ && "all rows must have equal length");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::matmul(const Matrix& rhs) const {
  assert(cols_ == rhs.rows_);
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        out(i, j) += aik * rhs(k, j);
      }
    }
  }
  return out;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  assert(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  assert(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

double Matrix::sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double Matrix::l1_norm() const {
  double s = 0.0;
  for (double v : data_) s += std::abs(v);
  return s;
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Matrix::max() const {
  assert(!data_.empty());
  double m = data_[0];
  for (double v : data_) m = v > m ? v : m;
  return m;
}

double Matrix::min() const {
  assert(!data_.empty());
  double m = data_[0];
  for (double v : data_) m = v < m ? v : m;
  return m;
}

double Matrix::mse(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  assert(!data_.empty());
  double s = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    const double d = data_[i] - other.data_[i];
    s += d * d;
  }
  return s / static_cast<double>(data_.size());
}

std::vector<double> Matrix::row(std::size_t r) const {
  assert(r < rows_);
  return std::vector<double>(
      data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
      data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_));
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c) os << ' ';
      os << (*this)(r, c);
    }
    os << '\n';
  }
  return os.str();
}

std::vector<double> matvec(const Matrix& a, const std::vector<double>& x) {
  assert(a.cols() == x.size());
  std::vector<double> y(a.rows(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double s = 0.0;
    for (std::size_t c = 0; c < a.cols(); ++c) s += a(r, c) * x[c];
    y[r] = s;
  }
  return y;
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double l1_norm(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += std::abs(x);
  return s;
}

double l2_norm(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

std::vector<double> l1_normalized(std::vector<double> v) {
  const double n = l1_norm(v);
  if (n > 1e-12) {
    for (double& x : v) x /= n;
  }
  return v;
}

double mse(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size() && !a.empty());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s / static_cast<double>(a.size());
}

}  // namespace sqvae
