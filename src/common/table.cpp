#include "common/table.h"

#include <cassert>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace sqvae {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::to_text() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_csv();
  return static_cast<bool>(f);
}

}  // namespace sqvae
