// Annotated mutual-exclusion primitives: sq::Mutex, sq::MutexLock,
// sq::CondVar.
//
// These are zero-cost wrappers over std::mutex / std::condition_variable
// carrying clang Thread Safety Analysis annotations
// (common/thread_annotations.h), so lock discipline is checked at compile
// time: every GUARDED_BY field access without the lock, every REQUIRES
// helper called unlocked, and every double acquisition is a -Wthread-safety
// error in the CI thread-safety lane. Under gcc the annotations vanish and
// the wrappers compile to exactly the std primitives they hold
// (tests/common_mutex_test.cpp pins the behavioural equivalence).
//
// Usage pattern (see batch_queue.h for a full example):
//
//   sq::Mutex mu_;
//   sq::CondVar cv_;
//   std::deque<Work> queue_ GUARDED_BY(mu_);
//   bool closed_ GUARDED_BY(mu_) = false;
//
//   void push(Work w) EXCLUDES(mu_) {
//     {
//       sq::MutexLock lock(mu_);
//       queue_.push_back(std::move(w));
//     }
//     cv_.notify_all();
//   }
//
//   Work pop() EXCLUDES(mu_) {
//     sq::MutexLock lock(mu_);
//     while (!closed_ && queue_.empty()) cv_.wait(mu_);
//     ...
//   }
//
// Condition waits are explicit while loops over the predicate, not
// predicate lambdas: the analysis cannot see that a lambda body runs
// under the lock, so the loop form is the only one that checks cleanly
// without ASSERT_CAPABILITY escape hatches. CondVar therefore offers no
// predicate overloads by design.
//
// The determinism lint (ci/determinism_lint.py, rule naked-mutex) bans
// std::mutex / std::condition_variable everywhere else in src/; this
// header is the single sanctioned point of contact with the std
// primitives.
#pragma once

#include <cassert>
#include <chrono>
#include <condition_variable>  // lint-allow(naked-mutex): the wrapped primitive
#include <cstdint>
#include <mutex>  // lint-allow(naked-mutex): the wrapped primitive

#include "common/thread_annotations.h"

namespace sq {

class CondVar;

/// Annotated exclusive mutex. Non-recursive, non-copyable; same semantics
/// as the std::mutex it wraps.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Declares to the analysis that the calling context holds this mutex
  /// without acquiring it — for code the analysis cannot see into (e.g. a
  /// callback documented to run under the lock). Prefer restructuring;
  /// this is an assertion, not a synchronisation.
  void assert_held() const ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;  // lint-allow(naked-mutex): the wrapped primitive
};

/// RAII lock over sq::Mutex (the std::lock_guard / std::unique_lock
/// replacement). Supports early release and re-acquisition, both visible
/// to the analysis; the destructor releases only if still held.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(&mu) {
    mu_->lock();
    held_ = true;
  }
  ~MutexLock() RELEASE() {
    if (held_) mu_->unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Early release (before scope end). The destructor then does nothing.
  void unlock() RELEASE() {
    assert(held_ && "MutexLock::unlock without the lock held");
    held_ = false;
    mu_->unlock();
  }

  /// Re-acquire after an early unlock.
  void lock() ACQUIRE() {
    assert(!held_ && "MutexLock::lock while already held");
    mu_->lock();
    held_ = true;
  }

 private:
  Mutex* mu_;
  bool held_ = false;
};

/// Annotated condition variable bound to sq::Mutex. Waits require the
/// mutex held (checked by the analysis) and atomically release/reacquire
/// it around the sleep, exactly like std::condition_variable. Spurious
/// wakeups happen; always wait inside a `while (!predicate)` loop.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Releases `mu`, sleeps until notified (or spuriously woken), then
  /// reacquires `mu` before returning.
  void wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted(mu.mu_, std::adopt_lock);
    cv_.wait(adopted);
    adopted.release();
  }

  /// Timed wait: returns std::cv_status::timeout when `deadline` passed
  /// without a notification. `mu` is held again on return either way.
  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(adopted, deadline);
    adopted.release();
    return status;
  }

  /// Timed wait relative to now; same contract as wait_until.
  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& timeout)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(adopted, timeout);
    adopted.release();
    return status;
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  // lint-allow(naked-mutex): the wrapped primitive
  std::condition_variable cv_;
};

}  // namespace sq
