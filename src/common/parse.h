// Whitespace-token double parsing that accepts the full output range of
// operator<<, including the non-finite spellings ("nan", "-nan", "inf",
// "-inf") that std::num_get rejects. Checkpoints of a diverged run (NaN
// losses, inf Adam moments) must still round-trip — a save that can never
// be loaded again is worse than no save.
#pragma once

#include <cstdlib>
#include <istream>
#include <string>

namespace sqvae {

/// Reads one whitespace-delimited token and converts it with strtod.
/// Returns false (leaving `out` unspecified) on stream failure or when the
/// token is not entirely a number.
inline bool parse_double(std::istream& in, double& out) {
  std::string token;
  if (!(in >> token) || token.empty()) return false;
  char* end = nullptr;
  out = std::strtod(token.c_str(), &end);
  return end == token.c_str() + token.size();
}

}  // namespace sqvae
