// Deterministic pseudo-random number generation for the whole library.
//
// Every stochastic component in this repository (dataset generators, weight
// initialisation, mini-batch shuffling, latent-space sampling) draws from an
// explicitly seeded sqvae::Rng so that experiments are reproducible
// run-to-run and machine-to-machine. The generator is a PCG64 variant
// (O'Neill, 2014): a 128-bit LCG state with an output permutation; it is
// small, fast, and has far better statistical quality than std::minstd and
// none of the implementation-defined variability of std::mt19937 stream
// consumption through std::normal_distribution.
#pragma once

#include <cstdint>
#include <vector>

namespace sqvae {

/// Deterministic random number generator (PCG64-like).
///
/// Satisfies the UniformRandomBitGenerator requirements, so it can also be
/// passed to <random> distributions, although the member helpers below are
/// preferred because their sequences are fully specified by this library
/// rather than by the standard-library vendor.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator from a seed. Two Rng objects constructed with
  /// the same seed produce identical sequences.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit value.
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int uniform_int(int lo, int hi);

  /// Standard normal deviate (Box-Muller with cached second value).
  double normal();

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli draw with probability p of returning true.
  bool bernoulli(double p);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Non-positive weights are treated as zero; requires at least one
  /// positive weight.
  std::size_t weighted_choice(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of the index range [0, n); returns the permutation.
  std::vector<std::size_t> permutation(std::size_t n);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = uniform_index(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator; used to give each subsystem its
  /// own stream while keeping a single top-level seed.
  Rng split();

  /// Derives the generator of an independent stream fully determined by
  /// (seed, a, b) — no shared mutable state, so streams can be recreated in
  /// any order on any thread. The data-parallel trainer keys per-sample
  /// reparameterisation noise as stream(noise_seed, epoch, sample_row),
  /// which is what makes its results independent of how samples are
  /// assigned to OpenMP threads.
  static Rng stream(std::uint64_t seed, std::uint64_t a, std::uint64_t b);

  /// Complete generator state. Checkpoints persist it so a resumed training
  /// run continues the exact random sequence of the interrupted one
  /// (including the Box-Muller half-pair cache).
  struct State {
    std::uint64_t state_hi = 0;
    std::uint64_t state_lo = 0;
    double cached_normal = 0.0;
    bool has_cached_normal = false;
  };
  State state() const;
  void set_state(const State& s);

 private:
  std::uint64_t state_hi_;
  std::uint64_t state_lo_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace sqvae
