#include "nn/linear.h"

#include <cassert>
#include <cmath>

namespace sqvae::nn {

namespace {
Matrix xavier_uniform(std::size_t in, std::size_t out, sqvae::Rng& rng) {
  Matrix w(in, out);
  const double bound = std::sqrt(6.0 / static_cast<double>(in + out));
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = rng.uniform(-bound, bound);
  }
  return w;
}
}  // namespace

Linear::Linear(std::size_t in_features, std::size_t out_features,
               sqvae::Rng& rng)
    : weight(xavier_uniform(in_features, out_features, rng)),
      bias(Matrix(1, out_features)) {}

Var Linear::forward(Tape& tape, Var x) {
  assert(tape.value(x).cols() == in_features());
  return tape.add_bias(tape.matmul(x, tape.leaf(&weight)), tape.leaf(&bias));
}

Var apply_activation(Tape& tape, Var x, Activation a) {
  switch (a) {
    case Activation::kNone:
      return x;
    case Activation::kReLU:
      return tape.relu(x);
    case Activation::kSigmoid:
      return tape.sigmoid(x);
    case Activation::kTanh:
      return tape.tanh_(x);
  }
  return x;
}

Mlp::Mlp(const std::vector<std::size_t>& dims, Activation hidden_activation,
         sqvae::Rng& rng)
    : activation_(hidden_activation) {
  assert(dims.size() >= 2);
  layers_.reserve(dims.size() - 1);
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(dims[i], dims[i + 1], rng);
  }
}

Var Mlp::forward(Tape& tape, Var x) {
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    x = layers_[i].forward(tape, x);
    if (i + 1 < layers_.size()) {
      x = apply_activation(tape, x, activation_);
    }
  }
  return x;
}

std::size_t Mlp::num_parameters() const {
  std::size_t n = 0;
  for (const auto& l : layers_) n += l.num_parameters();
  return n;
}

std::vector<Parameter*> Mlp::parameters() {
  std::vector<Parameter*> out;
  for (auto& l : layers_) {
    out.push_back(&l.weight);
    out.push_back(&l.bias);
  }
  return out;
}

}  // namespace sqvae::nn
