// Affine layer and multilayer-perceptron helpers over the autodiff tape.
#pragma once

#include <string>
#include <vector>

#include "autodiff/tape.h"
#include "common/rng.h"

namespace sqvae::nn {

using ad::Parameter;
using ad::Tape;
using ad::Var;

/// Supported nonlinearities for MLP construction.
enum class Activation { kNone, kReLU, kSigmoid, kTanh };

/// y = x W + b with W: in x out, b: 1 x out.
/// Weights are initialised with Glorot/Xavier uniform, biases with zero —
/// matching the PyTorch defaults the paper's classical layers rely on.
class Linear {
 public:
  Linear(std::size_t in_features, std::size_t out_features, sqvae::Rng& rng);

  Var forward(Tape& tape, Var x);

  std::size_t in_features() const { return weight.value.rows(); }
  std::size_t out_features() const { return weight.value.cols(); }

  /// Trainable-parameter count (weights + biases).
  std::size_t num_parameters() const {
    return weight.size() + bias.size();
  }

  std::vector<Parameter*> parameters() { return {&weight, &bias}; }

  Parameter weight;
  Parameter bias;
};

/// A stack of Linear layers with one activation applied after every layer
/// except the last (the paper's encoder/decoder use ReLU between layers and
/// a linear output).
class Mlp {
 public:
  /// `dims` = {in, h1, ..., out}; requires dims.size() >= 2.
  Mlp(const std::vector<std::size_t>& dims, Activation hidden_activation,
      sqvae::Rng& rng);

  Var forward(Tape& tape, Var x);

  std::size_t num_parameters() const;
  std::vector<Parameter*> parameters();

  std::vector<Linear>& layers() { return layers_; }

 private:
  std::vector<Linear> layers_;
  Activation activation_;
};

/// Applies an activation as a tape op.
Var apply_activation(Tape& tape, Var x, Activation a);

}  // namespace sqvae::nn
