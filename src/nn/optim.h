// Optimizers with parameter groups.
//
// Parameter groups are load-bearing for this paper: the heterogeneous
// learning-rate study (Fig. 7) trains the quantum rotation angles and the
// classical weights of one hybrid model with *different* learning rates
// within a single Adam instance — exactly PyTorch's param_groups mechanism.
#pragma once

#include <iosfwd>
#include <vector>

#include "autodiff/tape.h"

namespace sqvae::nn {

using ad::Parameter;

/// A set of parameters sharing one learning rate.
struct ParamGroup {
  std::vector<Parameter*> params;
  double lr = 1e-3;
};

/// Adam (Kingma & Ba, 2015) with the paper's defaults beta1=0.9,
/// beta2=0.999, eps=1e-8, and per-group learning rates.
class Adam {
 public:
  explicit Adam(std::vector<ParamGroup> groups, double beta1 = 0.9,
                double beta2 = 0.999, double eps = 1e-8);

  /// Applies one update from the gradients accumulated in each parameter.
  void step();

  /// Zeroes all parameter gradients.
  void zero_grad();

  /// Changes the learning rate of group `g`.
  void set_lr(std::size_t g, double lr);
  double lr(std::size_t g) const { return groups_[g].lr; }
  std::size_t num_groups() const { return groups_.size(); }

  /// Total number of scalar parameters across all groups.
  std::size_t num_parameters() const;

  /// Global step count (number of step() calls applied so far).
  long long step_count() const { return t_; }

  /// Writes the full optimizer state — step count, per-group learning
  /// rates, and per-parameter first/second moments — as whitespace-
  /// separated text with max_digits10 precision, so serialize/deserialize
  /// round trips are bit-exact for doubles. Checkpoint v2 embeds this
  /// block; a resumed run's Adam is indistinguishable from one that never
  /// stopped.
  void serialize(std::ostream& os) const;

  /// Restores state written by serialize(). The group/parameter shape
  /// structure must match this optimizer's; on any mismatch or parse error
  /// the optimizer is left untouched and false is returned.
  bool deserialize(std::istream& in);

 private:
  struct State {
    Matrix m;
    Matrix v;
  };
  std::vector<ParamGroup> groups_;
  std::vector<std::vector<State>> state_;  // parallel to groups_
  double beta1_, beta2_, eps_;
  long long t_ = 0;
};

/// Plain SGD with per-group learning rates (used in optimizer tests as a
/// behavioural baseline).
class Sgd {
 public:
  explicit Sgd(std::vector<ParamGroup> groups);
  void step();
  void zero_grad();

 private:
  std::vector<ParamGroup> groups_;
};

}  // namespace sqvae::nn
