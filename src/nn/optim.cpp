#include "nn/optim.h"

#include <cassert>
#include <cmath>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <string>

#include "common/parse.h"

namespace sqvae::nn {

Adam::Adam(std::vector<ParamGroup> groups, double beta1, double beta2,
           double eps)
    : groups_(std::move(groups)), beta1_(beta1), beta2_(beta2), eps_(eps) {
  state_.resize(groups_.size());
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    state_[g].reserve(groups_[g].params.size());
    for (Parameter* p : groups_[g].params) {
      assert(p != nullptr);
      state_[g].push_back(State{Matrix(p->value.rows(), p->value.cols()),
                                Matrix(p->value.rows(), p->value.cols())});
    }
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    const double lr = groups_[g].lr;
    for (std::size_t i = 0; i < groups_[g].params.size(); ++i) {
      Parameter& p = *groups_[g].params[i];
      State& s = state_[g][i];
      for (std::size_t k = 0; k < p.value.size(); ++k) {
        const double grad = p.grad[k];
        s.m[k] = beta1_ * s.m[k] + (1.0 - beta1_) * grad;
        s.v[k] = beta2_ * s.v[k] + (1.0 - beta2_) * grad * grad;
        const double mhat = s.m[k] / bc1;
        const double vhat = s.v[k] / bc2;
        p.value[k] -= lr * mhat / (std::sqrt(vhat) + eps_);
      }
    }
  }
}

void Adam::zero_grad() {
  for (auto& group : groups_) {
    for (Parameter* p : group.params) p->zero_grad();
  }
}

void Adam::set_lr(std::size_t g, double lr) {
  assert(g < groups_.size());
  groups_[g].lr = lr;
}

std::size_t Adam::num_parameters() const {
  std::size_t n = 0;
  for (const auto& group : groups_) {
    for (const Parameter* p : group.params) n += p->size();
  }
  return n;
}

void Adam::serialize(std::ostream& os) const {
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "adam " << t_ << ' ' << groups_.size() << '\n';
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    os << groups_[g].lr << ' ' << groups_[g].params.size() << '\n';
    for (std::size_t i = 0; i < groups_[g].params.size(); ++i) {
      const State& s = state_[g][i];
      os << s.m.rows() << ' ' << s.m.cols();
      for (std::size_t k = 0; k < s.m.size(); ++k) os << ' ' << s.m[k];
      for (std::size_t k = 0; k < s.v.size(); ++k) os << ' ' << s.v[k];
      os << '\n';
    }
  }
}

bool Adam::deserialize(std::istream& in) {
  std::string magic;
  long long t = 0;
  std::size_t num_groups = 0;
  if (!(in >> magic >> t >> num_groups) || magic != "adam" || t < 0 ||
      num_groups != groups_.size()) {
    return false;
  }
  // Parse into staging storage; the optimizer mutates only on full success.
  std::vector<double> lrs(num_groups);
  std::vector<std::vector<State>> staged(num_groups);
  for (std::size_t g = 0; g < num_groups; ++g) {
    std::size_t num_params = 0;
    if (!parse_double(in, lrs[g]) || !(in >> num_params) ||
        num_params != groups_[g].params.size()) {
      return false;
    }
    staged[g].reserve(num_params);
    for (std::size_t i = 0; i < num_params; ++i) {
      std::size_t rows = 0, cols = 0;
      if (!(in >> rows >> cols)) return false;
      const Parameter& p = *groups_[g].params[i];
      if (rows != p.value.rows() || cols != p.value.cols()) return false;
      State s{Matrix(rows, cols), Matrix(rows, cols)};
      for (std::size_t k = 0; k < s.m.size(); ++k) {
        if (!parse_double(in, s.m[k])) return false;
      }
      for (std::size_t k = 0; k < s.v.size(); ++k) {
        if (!parse_double(in, s.v[k])) return false;
      }
      staged[g].push_back(std::move(s));
    }
  }
  t_ = t;
  for (std::size_t g = 0; g < num_groups; ++g) groups_[g].lr = lrs[g];
  state_ = std::move(staged);
  return true;
}

Sgd::Sgd(std::vector<ParamGroup> groups) : groups_(std::move(groups)) {}

void Sgd::step() {
  for (auto& group : groups_) {
    for (Parameter* p : group.params) {
      for (std::size_t k = 0; k < p->value.size(); ++k) {
        p->value[k] -= group.lr * p->grad[k];
      }
    }
  }
}

void Sgd::zero_grad() {
  for (auto& group : groups_) {
    for (Parameter* p : group.params) p->zero_grad();
  }
}

}  // namespace sqvae::nn
