#include "nn/optim.h"

#include <cassert>
#include <cmath>

namespace sqvae::nn {

Adam::Adam(std::vector<ParamGroup> groups, double beta1, double beta2,
           double eps)
    : groups_(std::move(groups)), beta1_(beta1), beta2_(beta2), eps_(eps) {
  state_.resize(groups_.size());
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    state_[g].reserve(groups_[g].params.size());
    for (Parameter* p : groups_[g].params) {
      assert(p != nullptr);
      state_[g].push_back(State{Matrix(p->value.rows(), p->value.cols()),
                                Matrix(p->value.rows(), p->value.cols())});
    }
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    const double lr = groups_[g].lr;
    for (std::size_t i = 0; i < groups_[g].params.size(); ++i) {
      Parameter& p = *groups_[g].params[i];
      State& s = state_[g][i];
      for (std::size_t k = 0; k < p.value.size(); ++k) {
        const double grad = p.grad[k];
        s.m[k] = beta1_ * s.m[k] + (1.0 - beta1_) * grad;
        s.v[k] = beta2_ * s.v[k] + (1.0 - beta2_) * grad * grad;
        const double mhat = s.m[k] / bc1;
        const double vhat = s.v[k] / bc2;
        p.value[k] -= lr * mhat / (std::sqrt(vhat) + eps_);
      }
    }
  }
}

void Adam::zero_grad() {
  for (auto& group : groups_) {
    for (Parameter* p : group.params) p->zero_grad();
  }
}

void Adam::set_lr(std::size_t g, double lr) {
  assert(g < groups_.size());
  groups_[g].lr = lr;
}

std::size_t Adam::num_parameters() const {
  std::size_t n = 0;
  for (const auto& group : groups_) {
    for (const Parameter* p : group.params) n += p->size();
  }
  return n;
}

Sgd::Sgd(std::vector<ParamGroup> groups) : groups_(std::move(groups)) {}

void Sgd::step() {
  for (auto& group : groups_) {
    for (Parameter* p : group.params) {
      for (std::size_t k = 0; k < p->value.size(); ++k) {
        p->value[k] -= group.lr * p->grad[k];
      }
    }
  }
}

void Sgd::zero_grad() {
  for (auto& group : groups_) {
    for (Parameter* p : group.params) p->zero_grad();
  }
}

}  // namespace sqvae::nn
