// ShardSupervisor: forks and babysits N SO_REUSEPORT shard processes.
//
// Multi-process serving (`sqvae_serve --workers=N`) runs N independent
// event-loop processes, each binding the same port with SO_REUSEPORT so
// the kernel load-balances accepted connections across them. Processes —
// not threads — because each shard owns a full serving stack (event
// loop, worker pool, response cache) with zero shared mutable state, so
// a crash in one shard cannot corrupt another, and because SO_REUSEPORT
// distributes at accept time with no user-space coordination.
//
// The supervisor itself is deliberately tiny and thread-free: it forks
// the shards (fork MUST happen before any thread exists — each shard
// creates its InferenceService worker pool only inside the child), then
// sits in a poll/waitpid loop:
//
//   * Crash restart — a shard that exits non-zero (or on a signal)
//     outside a drain is re-forked. Consecutive fast crashes (< 1s of
//     lifetime) back off linearly and give up after max_fast_crashes,
//     terminating the fleet: a shard that cannot hold up its port for a
//     second is misconfigured, not unlucky.
//   * Coordinated drain — request_drain() (async-signal-safe: one byte
//     to a self-pipe; the CLI's SIGTERM/SIGINT handler calls it)
//     forwards SIGTERM to every live shard; each shard runs its event
//     loop's graceful drain. run() returns 0 iff every shard exited 0.
//   * Rollout fan-out — request_rollout() (async-signal-safe; the SIGHUP
//     handler's hook) forwards SIGHUP to every live shard, which reload
//     their checkpoint through the event loop's request_reload() path.
//
// In the child, the supervisor restores SIGTERM/SIGINT/SIGHUP to their
// defaults (the parent's handlers point at the supervisor's self-pipe,
// which the child must not inherit), closes the self-pipe, runs
// shard_main(shard), and _exit()s with its return value — never
// returning into the parent's stack.
//
// Unix-only (fork); start() fails with an error elsewhere.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

namespace sqvae::serve {

struct SupervisorConfig {
  /// Number of shard processes to fork.
  int workers = 1;
  /// Give up after this many consecutive fast crashes (< 1s lifetime) of
  /// one shard; slower crash loops reset the count on each healthy
  /// second of lifetime.
  int max_fast_crashes = 8;
  /// Base restart delay; consecutive fast crashes back off linearly
  /// (1x, 2x, 3x, ...).
  std::uint64_t restart_backoff_ms = 100;
};

class ShardSupervisor {
 public:
  explicit ShardSupervisor(const SupervisorConfig& config);
  ~ShardSupervisor();

  ShardSupervisor(const ShardSupervisor&) = delete;
  ShardSupervisor& operator=(const ShardSupervisor&) = delete;

  /// Forks the shards and supervises until a drain completes (0 iff all
  /// shards exited 0) or a shard crash-loops past max_fast_crashes (1).
  /// `shard_main` runs in each child and must be fork-safe: call run()
  /// before creating any threads. False-like failures of fork itself
  /// return 1 with `error` set when given.
  int run(const std::function<int(int shard)>& shard_main,
          std::string* error = nullptr);

  /// Initiates a coordinated graceful drain (SIGTERM fan-out).
  /// Async-signal-safe; callable from any thread, multiple times.
  void request_drain();

  /// Fans SIGHUP out to every live shard (checkpoint rollout).
  /// Async-signal-safe.
  void request_rollout();

  /// Shards restarted after a crash so far (not an atomic hot path; for
  /// tests and the exit log line).
  std::uint64_t restarts() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace sqvae::serve
