#include "serve/service.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/rng.h"

namespace sqvae::serve {

namespace {

// Domain-separation salts for the two per-request streams: noise (latent
// sampling, VAE reparameterisation) and stochastic-measurement seeding.
// Distinct salts keep the streams decorrelated even though both derive
// from the same request seed.
constexpr std::uint64_t kNoiseSalt = 0x5e7e0001ull;
constexpr std::uint64_t kMeasureSalt = 0x5e7e0002ull;

/// Private noise generator of a request.
sqvae::Rng request_noise_rng(std::uint64_t seed) {
  return sqvae::Rng(qsim::backend_detail::derive_seed(kNoiseSalt, seed, 0, 0));
}

/// Simulation options of a stochastic request: the spec's regime with a
/// stream seed mixed from (spec seed, request seed). Installing these on a
/// replica also rewinds its backends' call counters, so the request's
/// measurement noise is a pure function of the seed.
qsim::SimulationOptions request_sim_options(const ModelSpec& spec,
                                            std::uint64_t seed) {
  qsim::SimulationOptions opts = spec.sim;
  opts.seed =
      qsim::backend_detail::derive_seed(spec.sim.seed, kMeasureSalt, seed, 0);
  return opts;
}

/// z ~ N(0, I) row for latent_sample, fully determined by the request seed.
std::vector<double> latent_sample_row(std::size_t latent_dim,
                                      std::uint64_t seed) {
  sqvae::Rng rng = request_noise_rng(seed);
  std::vector<double> z(latent_dim);
  for (double& v : z) v = rng.normal();
  return z;
}

InferenceResult failure(std::string message) {
  InferenceResult result;
  result.error = std::move(message);
  return result;
}

/// Resolves one request: the callback seam first (event loop / cache
/// owners — see batch_queue.h), then the promise.
void finish(Request& request, InferenceResult result) {
  if (request.on_done) request.on_done(result);
  request.promise.set_value(std::move(result));
}

/// Validates a request's payload against the model; returns an empty
/// string when valid.
std::string validate(const LoadedModel& loaded, Endpoint endpoint,
                     const std::vector<double>& input) {
  auto dim_error = [&](const char* what, std::size_t expected) {
    if (input.size() == expected) return std::string();
    return std::string(endpoint_name(endpoint)) + " expects " + what + " of " +
           std::to_string(expected) + " values, got " +
           std::to_string(input.size());
  };
  switch (endpoint) {
    case Endpoint::kEncode:
    case Endpoint::kReconstruct:
      return dim_error("a feature row", loaded.input_dim());
    case Endpoint::kDecode:
      return dim_error("a latent row", loaded.latent_dim());
    case Endpoint::kLatentSample:
      if (!loaded.is_generative()) {
        return "latent_sample requires a generative model (VAE)";
      }
      if (!input.empty()) {
        return "latent_sample takes no payload (z is drawn from the seed)";
      }
      return std::string();
  }
  return "unknown endpoint";
}

/// True when requests on this (model, endpoint) may share one batched
/// pass: every stochastic draw must already be per-request (latent_sample
/// pre-draws z from the seed) or absent. See the header's contract.
bool coalescible(const LoadedModel& loaded, Endpoint endpoint) {
  if (loaded.stochastic()) return false;
  switch (endpoint) {
    case Endpoint::kEncode:
    case Endpoint::kDecode:
    case Endpoint::kLatentSample:
      return true;
    case Endpoint::kReconstruct:
      return !loaded.is_generative();  // VAEs reparameterise per request
  }
  return false;
}

/// Executes already-validated requests as one batched pass. Requires
/// coalescible(loaded, endpoint); rows are computed independently, so the
/// result rows are bit-identical to size-1 batches of the same requests.
std::vector<std::vector<double>> run_coalesced(
    const LoadedModel& loaded, models::Autoencoder& model, Endpoint endpoint,
    const std::vector<const Request*>& requests) {
  const std::size_t batch = requests.size();
  const std::size_t in_cols = endpoint == Endpoint::kLatentSample ||
                                      endpoint == Endpoint::kDecode
                                  ? loaded.latent_dim()
                                  : loaded.input_dim();
  Matrix rows(batch, in_cols);
  for (std::size_t r = 0; r < batch; ++r) {
    if (endpoint == Endpoint::kLatentSample) {
      const std::vector<double> z =
          latent_sample_row(loaded.latent_dim(), requests[r]->seed);
      for (std::size_t c = 0; c < in_cols; ++c) rows(r, c) = z[c];
    } else {
      const std::vector<double>& z = requests[r]->input;
      for (std::size_t c = 0; c < in_cols; ++c) rows(r, c) = z[c];
    }
  }

  Matrix out;
  switch (endpoint) {
    case Endpoint::kEncode:
      out = model.encode_values(rows);
      break;
    case Endpoint::kDecode:
    case Endpoint::kLatentSample:
      out = model.decode_values(rows);
      break;
    case Endpoint::kReconstruct: {
      // Non-generative only (see coalescible): the rng is never consulted.
      sqvae::Rng unused(0);
      out = model.reconstruct(rows, unused);
      break;
    }
  }

  std::vector<std::vector<double>> results(batch);
  for (std::size_t r = 0; r < batch; ++r) {
    results[r].resize(out.cols());
    for (std::size_t c = 0; c < out.cols(); ++c) results[r][c] = out(r, c);
  }
  return results;
}

}  // namespace

InferenceResult execute_single(const LoadedModel& loaded,
                               models::Autoencoder& replica, Endpoint endpoint,
                               const std::vector<double>& input,
                               std::uint64_t seed) {
  const std::string error = validate(loaded, endpoint, input);
  if (!error.empty()) return failure(error);

  Request request;
  request.endpoint = endpoint;
  request.input = input;
  request.seed = seed;

  InferenceResult result;
  result.ok = true;

  if (coalescible(loaded, endpoint)) {
    const std::vector<const Request*> one{&request};
    result.values = std::move(run_coalesced(loaded, replica, endpoint, one)[0]);
    return result;
  }

  // Stochastic path: re-seed the replica's measurement backends from the
  // request (no-op for purely classical models), then run a single row
  // with a private noise stream.
  if (loaded.stochastic()) {
    replica.set_simulation_options(request_sim_options(loaded.spec(), seed));
  }
  sqvae::Rng noise = request_noise_rng(seed);
  Matrix row(1, input.size());
  for (std::size_t c = 0; c < input.size(); ++c) row(0, c) = input[c];

  Matrix out;
  switch (endpoint) {
    case Endpoint::kEncode:
      out = replica.encode_values(row);
      break;
    case Endpoint::kDecode:
      out = replica.decode_values(row);
      break;
    case Endpoint::kReconstruct:
      out = replica.reconstruct(row, noise);
      break;
    case Endpoint::kLatentSample: {
      const std::vector<double> z =
          latent_sample_row(loaded.latent_dim(), seed);
      Matrix zrow(1, z.size());
      for (std::size_t c = 0; c < z.size(); ++c) zrow(0, c) = z[c];
      out = replica.decode_values(zrow);
      break;
    }
  }
  result.values.resize(out.cols());
  for (std::size_t c = 0; c < out.cols(); ++c) result.values[c] = out(0, c);
  return result;
}

Priority endpoint_priority(Endpoint endpoint) {
  switch (endpoint) {
    case Endpoint::kEncode:
    case Endpoint::kDecode:
      return Priority::kHigh;
    case Endpoint::kReconstruct:
    case Endpoint::kLatentSample:
      return Priority::kNormal;
  }
  return Priority::kNormal;
}

InferenceService::InferenceService(ModelRegistry& registry,
                                   const ServeConfig& config,
                                   ServerStats* stats)
    : registry_(registry),
      config_(config),
      stats_(stats),
      cache_(config.cache_bytes > 0
                 ? std::make_unique<ResponseCache>(config.cache_bytes, stats)
                 : nullptr),
      queue_(config.max_batch, config.max_batch_wait_us, config.max_queue,
             config.shed_on_full, stats) {
  int threads = config.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

InferenceService::~InferenceService() { shutdown(); }

void InferenceService::shutdown() {
  // Check-and-set and the joins all happen under the lock: without it two
  // concurrent shutdowns could both see shut_down_ == false and both join
  // the same thread (undefined behaviour). The second caller now blocks
  // until the first finishes draining, then returns.
  sq::MutexLock lock(shutdown_mu_);
  if (shut_down_) return;
  shut_down_ = true;
  queue_.close();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

std::future<InferenceResult> InferenceService::submit(const std::string& model,
                                                      Endpoint endpoint,
                                                      std::vector<double> input,
                                                      std::uint64_t seed) {
  if (cache_ == nullptr) {
    return queue_.push(model, endpoint, std::move(input), seed,
                       endpoint_priority(endpoint));
  }
  // Cached path: adapt the callback seam back to a future. The promise
  // must be shared because the callback may outlive this frame (it fires
  // on a worker thread).
  auto promise = std::make_shared<std::promise<InferenceResult>>();
  std::future<InferenceResult> future = promise->get_future();
  submit_cb(model, endpoint, std::move(input), seed,
            [promise](const InferenceResult& result) {
              promise->set_value(result);
            });
  return future;
}

void InferenceService::submit_cb(
    const std::string& model, Endpoint endpoint, std::vector<double> input,
    std::uint64_t seed, std::function<void(const InferenceResult&)> done) {
  const Priority priority = endpoint_priority(endpoint);
  if (cache_ == nullptr) {
    queue_.push(model, endpoint, std::move(input), seed, priority,
                std::move(done));
    return;
  }

  // The registry generation stands in for "model parameters" in the key
  // (unique per publish — see response_cache.h). Generation 0 = unknown
  // model; let the queue path produce the canonical error.
  const std::uint64_t generation = registry_.generation(model);
  const CacheKey key =
      response_cache_key(generation, endpoint, input, seed);

  InferenceResult cached;
  const ResponseCache::Lookup outcome =
      cache_->lookup_or_join(key, &cached, done);
  switch (outcome) {
    case ResponseCache::Lookup::kHit:
      done(cached);
      return;
    case ResponseCache::Lookup::kJoined:
      return;  // the owner's publish resolves `done`
    case ResponseCache::Lookup::kOwner:
      break;
  }

  // Owner: compute through the queue, publish the result (which stores
  // it if ok and resolves every waiter that joined meanwhile), then
  // answer this request. Shed/closed failures also flow through publish,
  // so joined waiters never hang on an owner that was refused admission.
  ResponseCache* cache = cache_.get();
  queue_.push(model, endpoint, std::move(input), seed, priority,
              [cache, key, done](const InferenceResult& result) {
                cache->publish(key, result);
                done(result);
              });
}

InferenceResult InferenceService::encode(const std::vector<double>& x,
                                         std::uint64_t seed,
                                         const std::string& model) {
  return submit(model, Endpoint::kEncode, x, seed).get();
}

InferenceResult InferenceService::decode(const std::vector<double>& z,
                                         std::uint64_t seed,
                                         const std::string& model) {
  return submit(model, Endpoint::kDecode, z, seed).get();
}

InferenceResult InferenceService::reconstruct(const std::vector<double>& x,
                                              std::uint64_t seed,
                                              const std::string& model) {
  return submit(model, Endpoint::kReconstruct, x, seed).get();
}

InferenceResult InferenceService::latent_sample(std::uint64_t seed,
                                                const std::string& model) {
  return submit(model, Endpoint::kLatentSample, {}, seed).get();
}

void InferenceService::worker_loop() {
  std::unordered_map<std::string, Replica> cache;
  while (true) {
    std::vector<Request> batch = queue_.pop_batch();
    if (batch.empty()) return;
    execute_batch(batch, cache);
  }
}

void InferenceService::execute_batch(
    std::vector<Request>& batch,
    std::unordered_map<std::string, Replica>& cache) {
  const std::string& name = batch.front().model;
  const ModelEntry entry = registry_.get(name);
  if (entry.model == nullptr) {
    for (Request& r : batch) {
      finish(r, failure("unknown model: " + name));
    }
    return;
  }

  Replica& replica = cache[name];
  if (replica.generation != entry.generation || replica.model == nullptr) {
    replica.model = entry.model->make_replica();
    replica.loaded = entry.model;
    replica.generation = entry.generation;
  }
  if (replica.model == nullptr) {
    for (Request& r : batch) {
      finish(r, failure("internal error: replica build failed"));
    }
    return;
  }
  const LoadedModel& loaded = *replica.loaded;
  const Endpoint endpoint = batch.front().endpoint;

  // Validation failures resolve immediately; the rest execute.
  std::vector<Request*> work;
  work.reserve(batch.size());
  for (Request& r : batch) {
    const std::string error = validate(loaded, endpoint, r.input);
    if (!error.empty()) {
      finish(r, failure(error));
    } else {
      work.push_back(&r);
    }
  }
  if (work.empty()) return;

  if (coalescible(loaded, endpoint)) {
    std::vector<const Request*> requests(work.begin(), work.end());
    std::vector<std::vector<double>> rows =
        run_coalesced(loaded, *replica.model, endpoint, requests);
    for (std::size_t i = 0; i < work.size(); ++i) {
      InferenceResult result;
      result.ok = true;
      result.values = std::move(rows[i]);
      finish(*work[i], std::move(result));
    }
    return;
  }

  // Stochastic (or per-request-noise) work: the batch still amortised
  // queue/wakeup costs, but execution is per request by contract.
  for (Request* r : work) {
    finish(*r,
           execute_single(loaded, *replica.model, endpoint, r->input, r->seed));
  }
}

}  // namespace sqvae::serve
