// ServerStats: lock-free serving observability for the /stats endpoint.
//
// Every counter is a relaxed std::atomic: producers (the event-loop
// thread, worker threads finishing requests, the response cache) bump
// them on hot paths without synchronisation, and the /stats endpoint
// renders a point-in-time snapshot. Relaxed ordering is sound because the
// numbers are monitoring data — each counter is individually exact
// (atomic increments never lose updates), only cross-counter consistency
// is approximate, which is the universal contract of stats endpoints.
//
// Latency lives in a fixed log2-bucketed histogram (LatencyHistogram):
// recording is one atomic increment into the bucket of
// floor(log2(micros)), and percentiles are reconstructed at read time
// with linear interpolation inside the winning bucket. The bucket bounds
// are part of the public contract (bucket_upper_us) because the
// Prometheus exposition needs honest `le` bounds; the interpolation
// error is bounded by one bucket width — the true percentile lies inside
// [2^b, 2^(b+1)) alongside the estimate, so the estimate is never off by
// more than a factor of 2 (and the bound is exact, not heuristic: every
// sample in the bucket is within those bounds by construction).
//
// Two wire formats render the same counters:
//   * render_stats_response — the serve line protocol's flat JSON object
//     (one line), readable by the same minimal parsers that read
//     inference replies;
//   * render_stats_prometheus — Prometheus text exposition format 0.0.4
//     (multi-line, HELP/TYPE metadata, shard/endpoint labels, cumulative
//     histogram buckets), served by {"op": "stats", "format":
//     "prometheus"} and by the --stats_port HTTP scrape endpoint.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace sqvae::serve {

/// Log2-bucketed latency histogram over microseconds. Bucket 0 counts
/// samples of 0-1us; bucket b >= 1 counts samples in [2^b, 2^(b+1)) us
/// (the last bucket is open-ended: record_us clamps). 40 buckets cover
/// ~12 days, far beyond any request latency.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 40;

  void record_us(std::uint64_t us) {
    std::uint64_t v = us;
    int b = 0;
    while (v > 1 && b < kBuckets - 1) {
      v >>= 1;
      ++b;
    }
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_us_.fetch_add(us, std::memory_order_relaxed);
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  /// Sum of all recorded values in microseconds (Prometheus _sum).
  std::uint64_t sum_us() const {
    return sum_us_.load(std::memory_order_relaxed);
  }

  std::uint64_t bucket_count(int b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  /// Inclusive upper bound of bucket b in microseconds: 2^(b+1) - 1
  /// (values are integer microseconds, so bucket 0 = {0, 1}us has bound
  /// 1, bucket 3 = [8, 16) has bound 15). These are the honest
  /// Prometheus `le` bounds; the last bucket is open-ended and maps to
  /// le="+Inf".
  static std::uint64_t bucket_upper_us(int b) {
    return (1ull << (b + 1)) - 1;
  }

  /// Percentile estimate in microseconds (q in [0, 1]): finds the bucket
  /// holding the q-th sample and interpolates linearly inside its true
  /// bounds [2^b, 2^(b+1)), so the estimate is off by at most one bucket
  /// width (a factor of 2). 0 when the histogram is empty.
  double percentile_us(double q) const;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_us_{0};
};

/// Number of inference endpoints. Mirrors the Endpoint enum in
/// batch_queue.h — which includes this header, so the count is a plain
/// constant here and stats.cpp asserts it against the enum. Indexed by
/// static_cast<int>(Endpoint).
constexpr int kStatsEndpoints = 4;

/// Wire name of endpoint index e (the Endpoint enum's wire names).
const char* stats_endpoint_name(int e);

/// Per-endpoint request breakdown: encode / decode / reconstruct /
/// latent_sample split out from the global counters, so one expensive
/// endpoint cannot hide behind a cheap one's volume in the p99.
struct EndpointStats {
  std::atomic<std::uint64_t> requests{0};
  /// Responses with ok == false (validation failures, shed, internal).
  std::atomic<std::uint64_t> errors{0};
  /// Wall time from request parse to response ready, this endpoint only.
  LatencyHistogram latency;
};

/// One process-wide bundle of serving counters. All monotonic except the
/// explicit gauges. Members are written by the event loop, the service's
/// worker threads, and the response cache; read by /stats.
struct ServerStats {
  // ---- connections (event loop) ---------------------------------------
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> connections_active{0};  // gauge
  std::atomic<std::uint64_t> connections_closed{0};
  /// Peer died mid-stream: EPIPE / ECONNRESET / EOF with unread output.
  std::atomic<std::uint64_t> connections_reset{0};
  /// Admission control: accepted then refused because the connection
  /// limit was reached (the peer gets one overloaded error line).
  std::atomic<std::uint64_t> connections_shed{0};
  std::atomic<std::uint64_t> connections_idle_closed{0};

  // ---- requests --------------------------------------------------------
  std::atomic<std::uint64_t> requests_total{0};
  std::atomic<std::uint64_t> responses_total{0};
  /// Lines that failed to parse (the client got an error reply).
  std::atomic<std::uint64_t> protocol_errors{0};
  /// Requests refused with the overloaded error by queue load shedding.
  std::atomic<std::uint64_t> requests_shed{0};

  // ---- response cache --------------------------------------------------
  std::atomic<std::uint64_t> cache_hits{0};
  std::atomic<std::uint64_t> cache_misses{0};
  /// Requests that joined an identical in-flight computation instead of
  /// recomputing (the dedup win: N identical concurrent requests cost one
  /// execution).
  std::atomic<std::uint64_t> cache_inflight_joined{0};
  std::atomic<std::uint64_t> cache_evictions{0};
  std::atomic<std::uint64_t> cache_bytes{0};    // gauge
  std::atomic<std::uint64_t> cache_entries{0};  // gauge

  /// Wall time from request parse to response ready, all endpoints.
  LatencyHistogram latency;

  /// Per-endpoint breakdown, indexed by static_cast<int>(Endpoint).
  EndpointStats endpoint[kStatsEndpoints];
};

/// Renders the /stats response line: {"ok": true, "op": "stats", ...} with
/// every counter above (including the per-endpoint breakdown as
/// <name>_requests / <name>_errors / <name>_p50_us / <name>_p99_us) plus
/// the sampled gauges passed in (queue depth and registry generation live
/// outside ServerStats).
std::string render_stats_response(const ServerStats& stats,
                                  std::uint64_t queue_depth,
                                  std::uint64_t registry_generation,
                                  bool has_id, std::uint64_t id);

/// Renders the Prometheus text exposition (format 0.0.4) of the same
/// counters: HELP/TYPE metadata per family, every sample labelled
/// shard="<shard>", per-endpoint counters and latency histograms labelled
/// endpoint="<name>" with cumulative le buckets from
/// LatencyHistogram::bucket_upper_us (seconds, Prometheus convention).
/// The body's final line is "# EOF" (a comment, ignored by parsers) so
/// line-protocol clients reading the in-band variant know where the
/// multi-line body ends.
std::string render_stats_prometheus(const ServerStats& stats,
                                    std::uint64_t queue_depth,
                                    std::uint64_t registry_generation,
                                    int shard);

/// Escapes a Prometheus label value (backslash, double quote, newline).
std::string prometheus_escape_label(const std::string& value);

}  // namespace sqvae::serve
