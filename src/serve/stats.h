// ServerStats: lock-free serving observability for the /stats endpoint.
//
// Every counter is a relaxed std::atomic: producers (the event-loop
// thread, worker threads finishing requests, the response cache) bump
// them on hot paths without synchronisation, and the /stats endpoint
// renders a point-in-time snapshot. Relaxed ordering is sound because the
// numbers are monitoring data — each counter is individually exact
// (atomic increments never lose updates), only cross-counter consistency
// is approximate, which is the universal contract of stats endpoints.
//
// Latency lives in a fixed log2-bucketed histogram (LatencyHistogram):
// recording is one atomic increment into the bucket of
// floor(log2(micros)), and percentiles are reconstructed at read time
// with linear interpolation inside the winning bucket — p50/p99 accurate
// to well under a bucket width (~2x resolution), with zero allocation and
// a bounded footprint regardless of traffic volume.
//
// The /stats wire format is the serve line protocol's response shape: one
// flat JSON object of numeric key/values (see render_stats_response), so
// the same minimal parsers that read inference replies read stats.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace sqvae::serve {

/// Log2-bucketed latency histogram over microseconds. Bucket b counts
/// samples with floor(log2(us)) == b (bucket 0 additionally holds 0us);
/// 40 buckets cover ~12 days, far beyond any request latency.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 40;

  void record_us(std::uint64_t us) {
    int b = 0;
    while (us > 1 && b < kBuckets - 1) {
      us >>= 1;
      ++b;
    }
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  /// Percentile estimate in microseconds (q in [0, 1]): finds the bucket
  /// holding the q-th sample and interpolates linearly inside it. 0 when
  /// the histogram is empty.
  double percentile_us(double q) const;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
};

/// One process-wide bundle of serving counters. All monotonic except the
/// explicit gauges. Members are written by the event loop, the service's
/// worker threads, and the response cache; read by /stats.
struct ServerStats {
  // ---- connections (event loop) ---------------------------------------
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> connections_active{0};  // gauge
  std::atomic<std::uint64_t> connections_closed{0};
  /// Peer died mid-stream: EPIPE / ECONNRESET / EOF with unread output.
  std::atomic<std::uint64_t> connections_reset{0};
  /// Admission control: accepted then refused because the connection
  /// limit was reached (the peer gets one overloaded error line).
  std::atomic<std::uint64_t> connections_shed{0};
  std::atomic<std::uint64_t> connections_idle_closed{0};

  // ---- requests --------------------------------------------------------
  std::atomic<std::uint64_t> requests_total{0};
  std::atomic<std::uint64_t> responses_total{0};
  /// Lines that failed to parse (the client got an error reply).
  std::atomic<std::uint64_t> protocol_errors{0};
  /// Requests refused with the overloaded error by queue load shedding.
  std::atomic<std::uint64_t> requests_shed{0};

  // ---- response cache --------------------------------------------------
  std::atomic<std::uint64_t> cache_hits{0};
  std::atomic<std::uint64_t> cache_misses{0};
  /// Requests that joined an identical in-flight computation instead of
  /// recomputing (the dedup win: N identical concurrent requests cost one
  /// execution).
  std::atomic<std::uint64_t> cache_inflight_joined{0};
  std::atomic<std::uint64_t> cache_evictions{0};
  std::atomic<std::uint64_t> cache_bytes{0};    // gauge
  std::atomic<std::uint64_t> cache_entries{0};  // gauge

  /// Wall time from request parse to response ready.
  LatencyHistogram latency;
};

/// Renders the /stats response line: {"ok": true, "op": "stats", ...} with
/// every counter above plus the sampled gauges passed in (queue depth and
/// registry generation live outside ServerStats).
std::string render_stats_response(const ServerStats& stats,
                                  std::uint64_t queue_depth,
                                  std::uint64_t registry_generation,
                                  bool has_id, std::uint64_t id);

}  // namespace sqvae::serve
