// EventLoopServer: non-blocking epoll front end for sqvae_serve.
//
// One thread owns every socket. The pre-PR TCP front end spawned a
// detached reader/writer thread pair per connection, which caps a process
// at a few hundred sockets (two stacks each, scheduler pressure, no
// admission control). This loop replaces those threads with a single
// epoll_wait dispatcher holding tens of thousands of connections, while
// compute stays exactly where it was: the InferenceService worker pool.
//
//   * Edge-triggered readiness (EPOLLET): every readable event drains the
//     socket to EAGAIN into the connection's input buffer; frames (lines)
//     are carved off incrementally, so a request split one byte per
//     segment and ten requests coalesced into one segment both parse
//     identically (tests feed both shapes).
//   * Per-connection ordered response slots: each parsed request claims
//     the next slot in arrival order; worker callbacks complete slots out
//     of order (via a completion queue + eventfd wakeup), and the writer
//     flushes only the ready in-order prefix — responses leave in request
//     order per connection, same contract as the old thread pair.
//   * Bounded output queue: a connection whose unread responses exceed
//     max_outbuf_bytes stops having its input parsed (TCP backpressures
//     the sender) until the backlog drains — one slow reader cannot
//     balloon server memory.
//   * Admission control: beyond max_conns, a new connection gets one
//     "overloaded" error line and is closed (counted in
//     connections_shed); queue-level shedding is the service's
//     shed_on_full (see batch_queue.h).
//   * Idle timeout: connections with no traffic and no pending work for
//     idle_timeout_ms are closed (connections_idle_closed).
//   * Dead peers: EPIPE / ECONNRESET / unexpected EOF tear the
//     connection down immediately with stats accounting
//     (connections_reset); in-flight results for it are dropped on
//     arrival. A half-closed peer (FIN after its last request) still
//     receives every pending response before the server closes.
//   * Graceful drain: request_stop() (async-signal-safe — callable from
//     a SIGTERM handler) stops accepting, parses no further input,
//     finishes and flushes every in-flight response, then closes within
//     drain_timeout_ms.
//   * Zero-downtime rollout: request_reload() (async-signal-safe — the
//     SIGHUP handler's hook) makes the loop thread invoke
//     config.on_reload, which republishes the checkpoint through the
//     ModelRegistry; traffic keeps flowing, generation-pinned.
//   * Multi-process sharding: with config.reuse_port, N shard processes
//     bind the same port via SO_REUSEPORT and the kernel load-balances
//     accepted connections across them (see supervisor.h).
//
// Not built on non-Linux platforms (epoll): start() fails with an error.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "serve/service.h"
#include "serve/stats.h"

namespace sqvae::serve {

struct EventLoopConfig {
  /// TCP port on 127.0.0.1; 0 = ephemeral (read the choice via port()).
  int port = 0;
  /// Bind with SO_REUSEPORT so N shard processes share one port and the
  /// kernel load-balances accepts across them (multi-process serving;
  /// see src/serve/supervisor.h).
  bool reuse_port = false;
  /// Shard index reported in the Prometheus export's shard label.
  int shard = 0;
  /// Invoked on the loop thread after request_reload() — the checkpoint
  /// rollout hook (typically: re-load the checkpoint file and publish it
  /// into the ModelRegistry; in-flight batches are generation-pinned and
  /// finish on the old snapshot, see registry.h).
  std::function<void()> on_reload;
  int listen_backlog = 1024;
  /// Connection-count admission limit (see header notes).
  std::size_t max_conns = 10000;
  /// A single request line larger than this is a protocol error and
  /// closes the connection (frame-flood protection).
  std::size_t max_line_bytes = 1 << 20;
  /// Output backlog cap per connection; above it, input parsing pauses.
  std::size_t max_outbuf_bytes = 4u << 20;
  /// Close connections idle (no traffic, no pending work) this long.
  /// 0 = never.
  std::uint64_t idle_timeout_ms = 0;
  /// Graceful-drain deadline after request_stop().
  std::uint64_t drain_timeout_ms = 10000;
};

class EventLoopServer {
 public:
  /// `service` and `stats` must outlive the server. The service should be
  /// configured with shed_on_full (the loop must never block in submit).
  EventLoopServer(InferenceService& service, const EventLoopConfig& config,
                  ServerStats& stats);
  /// The service must be shut down (workers joined) before destruction:
  /// worker completion callbacks post into this object.
  ~EventLoopServer();

  EventLoopServer(const EventLoopServer&) = delete;
  EventLoopServer& operator=(const EventLoopServer&) = delete;

  /// Binds and listens. False + `error` on failure (port in use,
  /// unsupported platform).
  bool start(std::string* error);

  /// The bound port (after start(); resolves config.port == 0).
  int port() const;

  /// Runs the loop on the calling thread until request_stop() completes a
  /// drain. Returns 0 on a clean drain, 1 on a loop-level failure.
  int run();

  /// Initiates graceful drain; async-signal-safe (one eventfd write).
  /// Safe to call from any thread, multiple times.
  void request_stop();

  /// Requests a checkpoint rollout: the loop thread invokes
  /// config.on_reload at the next iteration. Async-signal-safe (one
  /// eventfd write) — this is the SIGHUP hook. No-op without on_reload.
  void request_reload();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace sqvae::serve
