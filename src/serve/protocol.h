// Line protocol of sqvae_serve: one JSON-ish object per line in, one per
// line out (stdin/stdout or a TCP connection — see cli/sqvae_serve.cpp).
//
// Request:  {"op": "reconstruct", "seed": 7, "x": [0.1, ...],
//            "model": "default", "id": 42}
//   op     one of encode / decode / reconstruct / latent_sample (required)
//   x      payload row (feature row for encode/reconstruct, latent row for
//          decode; omitted for latent_sample)
//   seed   per-request determinism seed (default 0)
//   model  registry name (default "default")
//   id     opaque tag echoed back, for pipelined clients (optional)
//   format "json" (default) or "prometheus" — stats op only: selects the
//          one-line JSON object or the multi-line Prometheus text
//          exposition (terminated by a "# EOF" line)
//
// Response: {"ok": true, "id": 42, "op": "reconstruct", "y": [...]}
//       or  {"ok": false, "id": 42, "error": "..."}
//
// The parser accepts the JSON subset the protocol needs — one flat object
// of string / integer / number-array values, no nesting, no string
// escapes — and ignores unknown keys so clients may annotate requests.
// Values are printed with max_digits10, so piping the same requests twice
// (or through --reference) diffs byte-identical when the math is.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/batch_queue.h"

namespace sqvae::serve {

struct WireRequest {
  std::string op;
  std::string model = "default";
  std::uint64_t seed = 0;
  std::vector<double> x;
  bool has_id = false;
  std::uint64_t id = 0;

  /// True for {"op": "stats"}: answered by the transport layer (event
  /// loop or stdin driver) from its ServerStats, never enqueued.
  bool is_stats = false;
  /// {"op": "stats", "format": "prometheus"}: the transport answers with
  /// the multi-line Prometheus text exposition instead of the one-line
  /// JSON object. The body's last line is "# EOF" — clients read up to
  /// it, since the line protocol's one-line framing does not apply.
  bool stats_prometheus = false;
  Endpoint endpoint = Endpoint::kReconstruct;  // parsed from op
};

/// Parses one request line. False + `error` on malformed input or an
/// unknown op; blank lines return false with an empty error (skip them).
bool parse_request_line(const std::string& line, WireRequest* out,
                        std::string* error);

/// Formats the response line (ok or error form) for a parsed request.
std::string format_response(const WireRequest& request,
                            const InferenceResult& result);

/// Error response for a line that failed to parse.
std::string format_parse_error(const std::string& error);

}  // namespace sqvae::serve
