#include "serve/loaded_model.h"

#include <fstream>
#include <sstream>

#include "models/baseline_quantum.h"
#include "models/checkpoint.h"
#include "models/classical.h"
#include "models/scalable_quantum.h"

namespace sqvae::serve {

namespace {

/// Weight-initialisation seed for spec-built models. The values are always
/// replaced by checkpoint parameters; a fixed seed just keeps build_model
/// deterministic so replica construction cannot introduce variance.
constexpr std::uint64_t kBuildSeed = 0x10adedull;

}  // namespace

std::unique_ptr<models::Autoencoder> build_model(const ModelSpec& spec,
                                                 std::string* error) {
  Rng rng(kBuildSeed);
  const std::string& kind = spec.kind;
  if (kind == "classical-ae" || kind == "classical-vae") {
    models::ClassicalConfig c = spec.input_dim >= 1024
                                    ? models::classical_config_1024(spec.latent)
                                    : models::classical_config_64(spec.latent);
    c.input_dim = spec.input_dim;
    if (kind == "classical-ae") {
      return std::make_unique<models::ClassicalAe>(c, rng);
    }
    return std::make_unique<models::ClassicalVae>(c, rng);
  }
  if (kind == "fbq-ae" || kind == "fbq-vae" || kind == "hbq-ae" ||
      kind == "hbq-vae") {
    if ((spec.input_dim & (spec.input_dim - 1)) != 0 || spec.input_dim == 0) {
      if (error != nullptr) {
        *error = "baseline quantum models need a power-of-two input_dim";
      }
      return nullptr;
    }
    models::BaselineQuantumConfig c;
    c.input_dim = spec.input_dim;
    c.entangling_layers = spec.entangling_layers;
    c.hybrid = kind[0] == 'h';
    c.generative = kind.ends_with("vae");
    c.sim = spec.sim;
    return std::make_unique<models::BaselineQuantumAutoencoder>(c, rng);
  }
  if (kind == "sq-ae" || kind == "sq-vae") {
    if (spec.patches <= 0 ||
        spec.input_dim % static_cast<std::size_t>(spec.patches) != 0) {
      if (error != nullptr) {
        *error = "sq-* models need input_dim divisible by patches";
      }
      return nullptr;
    }
    const std::size_t per_patch =
        spec.input_dim / static_cast<std::size_t>(spec.patches);
    if ((per_patch & (per_patch - 1)) != 0) {
      if (error != nullptr) {
        *error = "sq-* models need a power-of-two input_dim / patches";
      }
      return nullptr;
    }
    models::ScalableQuantumConfig c;
    c.input_dim = spec.input_dim;
    c.patches = spec.patches;
    c.entangling_layers = spec.entangling_layers;
    c.sim = spec.sim;
    if (kind == "sq-ae") return models::make_sq_ae(c, rng);
    return models::make_sq_vae(c, rng);
  }
  if (error != nullptr) *error = "unknown model kind: " + kind;
  return nullptr;
}

std::shared_ptr<const LoadedModel> LoadedModel::from_checkpoint_text(
    const ModelSpec& spec, const std::string& text, std::string* error) {
  std::unique_ptr<models::Autoencoder> model = build_model(spec, error);
  if (model == nullptr) return nullptr;
  if (!models::load_params_only(text, *model)) {
    if (error != nullptr) {
      *error = "checkpoint does not match the model spec (or is corrupt)";
    }
    return nullptr;
  }
  return from_model(spec, *model);
}

std::shared_ptr<const LoadedModel> LoadedModel::from_checkpoint_file(
    const ModelSpec& spec, const std::string& path, std::string* error) {
  std::ifstream f(path);
  if (!f) {
    if (error != nullptr) *error = "cannot read checkpoint: " + path;
    return nullptr;
  }
  std::ostringstream buffer;
  buffer << f.rdbuf();
  return from_checkpoint_text(spec, buffer.str(), error);
}

std::shared_ptr<const LoadedModel> LoadedModel::from_model(
    const ModelSpec& spec, models::Autoencoder& model) {
  auto loaded = std::shared_ptr<LoadedModel>(new LoadedModel());
  loaded->spec_ = spec;
  loaded->input_dim_ = model.input_dim();
  loaded->latent_dim_ = model.latent_dim();
  loaded->generative_ = model.is_generative();
  // models::checkpoint_parameters defines the snapshot order, so replicas
  // and checkpoint files can never disagree on which matrix is which.
  for (const ad::Parameter* p : models::checkpoint_parameters(model)) {
    loaded->params_.push_back(p->value);
  }
  return loaded;
}

std::unique_ptr<models::Autoencoder> LoadedModel::make_replica() const {
  std::string error;
  std::unique_ptr<models::Autoencoder> model = build_model(spec_, &error);
  // The spec was validated when this snapshot was built, so a failure here
  // is a programming error, not an input error.
  if (model == nullptr) return nullptr;
  const std::vector<ad::Parameter*> params =
      models::checkpoint_parameters(*model);
  if (params.size() != params_.size()) return nullptr;
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (params[i]->value.rows() != params_[i].rows() ||
        params[i]->value.cols() != params_[i].cols()) {
      return nullptr;
    }
    params[i]->value = params_[i];
    params[i]->zero_grad();
  }
  return model;
}

}  // namespace sqvae::serve
