#include "serve/supervisor.h"

#ifdef __unix__

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <vector>

namespace sqvae::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Self-pipe commands (single bytes, written by async-signal-safe
/// request_* methods, read by the supervision loop).
constexpr char kCmdDrain = 't';
constexpr char kCmdRollout = 'h';

/// A shard that died in under this long counts as a fast crash.
constexpr std::chrono::seconds kFastCrashWindow{1};

struct Shard {
  pid_t pid = -1;
  Clock::time_point spawned{};
  int fast_crashes = 0;
  /// Respawn scheduled (crash backoff): spawn when now >= respawn_at.
  bool pending_respawn = false;
  Clock::time_point respawn_at{};
  bool exited = false;
  int wait_status = 0;
};

}  // namespace

struct ShardSupervisor::Impl {
  SupervisorConfig config;
  int pipe_rd = -1;
  int pipe_wr = -1;
  std::atomic<std::uint64_t> restarts{0};

  std::vector<Shard> shards;
  bool draining = false;
  bool failed = false;

  explicit Impl(const SupervisorConfig& c) : config(c) {
    int fds[2] = {-1, -1};
    if (::pipe2(fds, O_NONBLOCK | O_CLOEXEC) == 0) {
      pipe_rd = fds[0];
      pipe_wr = fds[1];
    }
  }

  ~Impl() {
    if (pipe_rd >= 0) ::close(pipe_rd);
    if (pipe_wr >= 0) ::close(pipe_wr);
  }

  bool spawn(int i, const std::function<int(int)>& shard_main) {
    const pid_t pid = ::fork();
    if (pid < 0) return false;
    if (pid == 0) {
      // The parent's SIGTERM/SIGINT/SIGHUP handlers route into this
      // supervisor's self-pipe; the child must not inherit them (its
      // shard_main installs its own, pointing at its event loop).
      std::signal(SIGTERM, SIG_DFL);
      std::signal(SIGINT, SIG_DFL);
      std::signal(SIGHUP, SIG_DFL);
      if (pipe_rd >= 0) ::close(pipe_rd);
      if (pipe_wr >= 0) ::close(pipe_wr);
      const int rc = shard_main(i);
      // _exit, not exit: the child shares the parent's atexit
      // registrations and must not run them (double-flush, double-free
      // of process-wide state owned by the parent).
      std::fflush(nullptr);
      ::_exit(rc & 0xff);
    }
    Shard& shard = shards[static_cast<std::size_t>(i)];
    shard.pid = pid;
    shard.spawned = Clock::now();
    shard.pending_respawn = false;
    shard.exited = false;
    return true;
  }

  void signal_live(int signo) {
    for (const Shard& shard : shards) {
      if (shard.pid > 0) ::kill(shard.pid, signo);
    }
  }

  void begin_drain() {
    if (draining) return;
    draining = true;
    // Shards with a respawn pending stay down: the fleet is going away.
    for (Shard& shard : shards) {
      if (shard.pid < 0 && shard.pending_respawn) {
        shard.pending_respawn = false;
        shard.exited = true;
        shard.wait_status = 0;
      }
    }
    signal_live(SIGTERM);
  }

  void drain_pipe() {
    char buf[64];
    while (true) {
      const ssize_t n = ::read(pipe_rd, buf, sizeof(buf));
      if (n <= 0) return;
      for (ssize_t i = 0; i < n; ++i) {
        if (buf[i] == kCmdDrain) begin_drain();
        if (buf[i] == kCmdRollout && !draining) signal_live(SIGHUP);
      }
    }
  }

  /// Handles one reaped child. Returns false when the supervisor should
  /// give up (crash loop).
  bool handle_exit(int i, int status, const std::function<int(int)>& main) {
    Shard& shard = shards[static_cast<std::size_t>(i)];
    const auto lifetime = Clock::now() - shard.spawned;
    shard.pid = -1;
    if (draining) {
      shard.exited = true;
      shard.wait_status = status;
      return true;
    }
    // Outside a drain every exit is unexpected — crash or a stray
    // per-shard SIGTERM — and the supervisor's job is to keep the fleet
    // at N: restart it, with linear backoff on consecutive fast crashes.
    const bool fast = lifetime < kFastCrashWindow;
    shard.fast_crashes = fast ? shard.fast_crashes + 1 : 0;
    if (WIFSIGNALED(status)) {
      std::fprintf(stderr,
                   "sqvae_serve: shard %d died on signal %d; restarting\n", i,
                   WTERMSIG(status));
    } else {
      std::fprintf(stderr,
                   "sqvae_serve: shard %d exited %d unexpectedly; "
                   "restarting\n",
                   i, WEXITSTATUS(status));
    }
    if (shard.fast_crashes > config.max_fast_crashes) {
      std::fprintf(stderr,
                   "sqvae_serve: shard %d crash-looped %d times; giving up\n",
                   i, shard.fast_crashes);
      failed = true;
      shard.exited = true;
      shard.wait_status = status;
      begin_drain();
      return true;
    }
    restarts.fetch_add(1, std::memory_order_relaxed);
    if (fast) {
      shard.pending_respawn = true;
      shard.respawn_at =
          Clock::now() + std::chrono::milliseconds(config.restart_backoff_ms *
                                                   static_cast<std::uint64_t>(
                                                       shard.fast_crashes));
    } else if (!spawn(i, main)) {
      failed = true;
      begin_drain();
    }
    return true;
  }

  int run(const std::function<int(int)>& shard_main, std::string* error) {
    const auto fail = [&](const char* what) {
      if (error != nullptr) {
        *error = std::string(what) + ": " + std::strerror(errno);
      }
      return 1;
    };
    if (pipe_rd < 0) return fail("pipe2");
    shards.assign(static_cast<std::size_t>(config.workers), Shard{});
    for (int i = 0; i < config.workers; ++i) {
      if (!spawn(i, shard_main)) {
        // Partial fleet: tear down what was forked and report.
        failed = true;
        begin_drain();
        for (std::size_t j = 0; j < shards.size(); ++j) {
          if (static_cast<int>(j) >= i) shards[j].exited = true;
        }
        (void)fail("fork");
        break;
      }
    }

    while (true) {
      // Reap everything that has exited.
      while (true) {
        int status = 0;
        const pid_t pid = ::waitpid(-1, &status, WNOHANG);
        if (pid <= 0) break;
        for (std::size_t i = 0; i < shards.size(); ++i) {
          if (shards[i].pid == pid) {
            handle_exit(static_cast<int>(i), status, shard_main);
            break;
          }
        }
      }

      // Pending respawns whose backoff elapsed.
      if (!draining) {
        const Clock::time_point now = Clock::now();
        for (std::size_t i = 0; i < shards.size(); ++i) {
          Shard& shard = shards[i];
          if (shard.pending_respawn && now >= shard.respawn_at) {
            if (!spawn(static_cast<int>(i), shard_main)) {
              failed = true;
              begin_drain();
              shard.exited = true;
            }
          }
        }
      }

      if (draining) {
        bool all_exited = true;
        bool all_clean = !failed;
        for (const Shard& shard : shards) {
          if (shard.pid > 0) all_exited = false;
          if (shard.exited &&
              !(WIFEXITED(shard.wait_status) &&
                WEXITSTATUS(shard.wait_status) == 0)) {
            all_clean = false;
          }
        }
        if (all_exited) return all_clean ? 0 : 1;
      }

      pollfd pfd{};
      pfd.fd = pipe_rd;
      pfd.events = POLLIN;
      // The 50ms tick bounds respawn-backoff and reap latency; SIGCHLD
      // is not handled (waitpid polling keeps the loop signal-free
      // beyond the self-pipe).
      const int n = ::poll(&pfd, 1, 50);
      if (n > 0 && (pfd.revents & POLLIN) != 0) drain_pipe();
    }
  }
};

ShardSupervisor::ShardSupervisor(const SupervisorConfig& config)
    : impl_(std::make_unique<Impl>(config)) {}

ShardSupervisor::~ShardSupervisor() = default;

int ShardSupervisor::run(const std::function<int(int shard)>& shard_main,
                         std::string* error) {
  return impl_->run(shard_main, error);
}

void ShardSupervisor::request_drain() {
  (void)!::write(impl_->pipe_wr, &kCmdDrain, 1);
}

void ShardSupervisor::request_rollout() {
  (void)!::write(impl_->pipe_wr, &kCmdRollout, 1);
}

std::uint64_t ShardSupervisor::restarts() const {
  return impl_->restarts.load(std::memory_order_relaxed);
}

}  // namespace sqvae::serve

#else  // !__unix__

namespace sqvae::serve {

struct ShardSupervisor::Impl {};

ShardSupervisor::ShardSupervisor(const SupervisorConfig&) {}

ShardSupervisor::~ShardSupervisor() = default;

int ShardSupervisor::run(const std::function<int(int shard)>&,
                         std::string* error) {
  if (error != nullptr) *error = "multi-process serving requires fork (unix)";
  return 1;
}

void ShardSupervisor::request_drain() {}

void ShardSupervisor::request_rollout() {}

std::uint64_t ShardSupervisor::restarts() const { return 0; }

}  // namespace sqvae::serve

#endif  // __unix__
