#include "serve/batch_queue.h"

#include <algorithm>
#include <chrono>

namespace sqvae::serve {

const char* endpoint_name(Endpoint e) {
  switch (e) {
    case Endpoint::kEncode:
      return "encode";
    case Endpoint::kDecode:
      return "decode";
    case Endpoint::kReconstruct:
      return "reconstruct";
    case Endpoint::kLatentSample:
      return "latent_sample";
  }
  return "?";
}

bool parse_endpoint(const std::string& name, Endpoint* out) {
  if (name == "encode") {
    *out = Endpoint::kEncode;
  } else if (name == "decode") {
    *out = Endpoint::kDecode;
  } else if (name == "reconstruct") {
    *out = Endpoint::kReconstruct;
  } else if (name == "latent_sample") {
    *out = Endpoint::kLatentSample;
  } else {
    return false;
  }
  return true;
}

BatchQueue::BatchQueue(std::size_t max_batch, std::uint64_t max_wait_us,
                       std::size_t max_depth, bool shed_on_full,
                       ServerStats* stats)
    : max_batch_(max_batch == 0 ? 1 : max_batch),
      max_wait_us_(max_wait_us),
      max_depth_(max_depth),
      shed_on_full_(shed_on_full),
      stats_(stats) {}

std::future<InferenceResult> BatchQueue::push(
    std::string model, Endpoint endpoint, std::vector<double> input,
    std::uint64_t seed, Priority priority,
    std::function<void(const InferenceResult&)> on_done) {
  Request request;
  request.model = std::move(model);
  request.endpoint = endpoint;
  request.input = std::move(input);
  request.seed = seed;
  request.priority = priority;
  request.on_done = std::move(on_done);
  std::future<InferenceResult> future = request.promise.get_future();

  auto resolve_now = [&request](std::string error) {
    InferenceResult result;
    result.error = std::move(error);
    if (request.on_done) request.on_done(result);
    request.promise.set_value(std::move(result));
  };

  {
    sq::MutexLock lock(mu_);
    if (max_depth_ > 0) {
      // High-priority requests may dip into a reserve beyond max_depth
      // (max_depth/4 extra, at least 1) so a backlog of expensive
      // normal-lane work can neither starve nor shed the cheap lane.
      const std::size_t limit =
          priority == Priority::kHigh
              ? max_depth_ + std::max<std::size_t>(1, max_depth_ / 4)
              : max_depth_;
      if (shed_on_full_) {
        // Load shedding: never block the producer (the event loop's one
        // thread); reply overloaded immediately.
        if (!closed_ && depth_locked() >= limit) {
          ++total_shed_;
          if (stats_ != nullptr) {
            stats_->requests_shed.fetch_add(1, std::memory_order_relaxed);
          }
          lock.unlock();
          resolve_now("overloaded: queue full, request shed");
          return future;
        }
      } else {
        // Backpressure: block the producer until a worker makes room (or
        // the queue closes). pop_batch notifies after removing requests.
        while (!closed_ && depth_locked() >= limit) cv_.wait(mu_);
      }
    }
    if (closed_) {
      lock.unlock();
      resolve_now("service is shut down");
      return future;
    }
    request.enqueued = std::chrono::steady_clock::now();
    (priority == Priority::kHigh ? high_ : normal_)
        .push_back(std::move(request));
    ++total_requests_;
  }
  // notify_all, not notify_one: the woken worker may be one that is
  // holding a half-formed batch with a *different* key and will take
  // nothing, while an idle worker keeps sleeping.
  cv_.notify_all();
  return future;
}

void BatchQueue::collect_matching(std::vector<Request>& batch) {
  // pop_batch reserved max_batch_ slots up front, so push_back below never
  // reallocates and the key can be read through a stable reference instead
  // of a per-batch heap copy of the model name.
  const std::string& model = batch.front().model;
  const Endpoint endpoint = batch.front().endpoint;
  for (std::deque<Request>* lane : {&high_, &normal_}) {
    for (auto it = lane->begin();
         it != lane->end() && batch.size() < max_batch_;) {
      if (it->model == model && it->endpoint == endpoint) {
        batch.push_back(std::move(*it));
        it = lane->erase(it);
      } else {
        ++it;
      }
    }
  }
}

std::vector<Request> BatchQueue::pop_batch() {
  sq::MutexLock lock(mu_);
  while (!closed_ && depth_locked() == 0) cv_.wait(mu_);
  std::vector<Request> batch;
  if (depth_locked() == 0) return batch;  // closed and drained
  batch.reserve(max_batch_);  // stable references for collect_matching

  // Seed the batch from the high lane when it has work; coalescing below
  // still spans both lanes, so priority never reduces batching.
  std::deque<Request>& lane = high_.empty() ? normal_ : high_;
  batch.push_back(std::move(lane.front()));
  lane.pop_front();
  collect_matching(batch);

  if (batch.size() < max_batch_ && max_wait_us_ > 0 && !closed_) {
    // Hold the batch open briefly for stragglers. The deadline is anchored
    // at the oldest request's enqueue time (see the header's straggler
    // policy), so time already spent queued counts against the wait. Every
    // wake re-scans for matching requests; non-matching arrivals were
    // notified to everyone, so an idle worker picks them up concurrently.
    const auto deadline =
        batch.front().enqueued + std::chrono::microseconds(max_wait_us_);
    while (batch.size() < max_batch_ && !closed_) {
      if (cv_.wait_until(mu_, deadline) == std::cv_status::timeout) {
        collect_matching(batch);
        break;
      }
      collect_matching(batch);
    }
  }

  ++total_batches_;
  // Requests left the queue: wake any producer blocked on backpressure
  // (and fellow workers, if non-matching requests remain queued).
  if (max_depth_ > 0) cv_.notify_all();
  return batch;
}

void BatchQueue::close() {
  {
    sq::MutexLock lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t BatchQueue::depth() const {
  sq::MutexLock lock(mu_);
  return depth_locked();
}

std::uint64_t BatchQueue::total_requests() const {
  sq::MutexLock lock(mu_);
  return total_requests_;
}

std::uint64_t BatchQueue::total_batches() const {
  sq::MutexLock lock(mu_);
  return total_batches_;
}

std::uint64_t BatchQueue::total_shed() const {
  sq::MutexLock lock(mu_);
  return total_shed_;
}

}  // namespace sqvae::serve
