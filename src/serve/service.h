// InferenceService: batched model serving with per-request determinism.
//
// Topology: callers submit single-sample requests (endpoint + payload +
// seed) into a BatchQueue; a pool of worker threads pops micro-batches and
// executes them against private replicas of the ModelRegistry's current
// LoadedModel generation. Replicas are cached per (worker, model name) and
// rebuilt only when the registry's generation counter moves, so hot-
// swapping a checkpoint is race-free: in-flight batches finish on the old
// immutable snapshot, later batches see the new one.
//
// Determinism contract: a request's result depends only on (model
// parameters + spec, endpoint, payload, request seed) — never on batch
// composition, worker count, queue timing, or concurrent traffic. It is
// enforced by construction:
//
//   * deterministic work (statevector-regime encode/decode, non-generative
//     reconstruct, and the decode half of latent_sample) is coalesced into
//     one batched pass — sound because every layer of the stack computes
//     rows independently (linear layers are per-row dot products, each
//     sample owns its statevector), so row i of a size-B batch is bit-
//     identical to a size-1 batch;
//   * stochastic work (VAE reparameterisation, trajectory/shot
//     measurement) runs per request: reparameterisation noise comes from a
//     private Rng derived from the request seed, and stochastic
//     measurement backends are re-seeded per request by mixing the spec
//     seed with the request seed (which also rewinds their call counter),
//     so replaying a seed replays the exact noise.
//
// execute_single() below *is* the contract's reference implementation:
// serving N requests concurrently through the pool is bit-identical to
// calling it N times serially (sqvae_serve --reference does exactly that,
// and tests/serve_determinism_test.cpp hammers the equivalence for all
// three simulation backends).
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "serve/batch_queue.h"
#include "serve/loaded_model.h"
#include "serve/registry.h"
#include "serve/response_cache.h"
#include "serve/stats.h"

namespace sqvae::serve {

struct ServeConfig {
  /// Micro-batch cap: a worker coalesces at most this many same-key
  /// requests into one execution. 1 = per-request dispatch (the bench
  /// baseline).
  std::size_t max_batch = 16;
  /// Straggler wait (see batch_queue.h): 0 = opportunistic coalescing
  /// only; > 0 additionally holds sub-max_batch batches open for this long
  /// after the oldest request's arrival — for open-loop/pipelined clients.
  std::uint64_t max_batch_wait_us = 0;
  /// Worker threads; 0 = hardware concurrency.
  int threads = 0;
  /// Queue-depth bound: submit() blocks once this many requests are
  /// queued, backpressuring producers so an unbounded pipelined client
  /// cannot balloon memory. 0 = unbounded.
  std::size_t max_queue = 1024;
  /// Load shedding: when true, a submit into a full queue fails
  /// immediately with an "overloaded" error instead of blocking — the
  /// admission-control mode the event loop requires (batch_queue.h).
  bool shed_on_full = false;
  /// Response-cache byte budget; 0 disables caching entirely (no keying,
  /// no in-flight dedup). The determinism contract makes responses
  /// content-addressable — see response_cache.h.
  std::size_t cache_bytes = 0;
};

/// Queue lane of an endpoint: encode/decode are one cheap coalesced
/// forward pass and ride the high-priority lane so a backlog of
/// reconstructs cannot starve them; reconstruct/latent_sample (full
/// passes, per-request noise for VAEs) ride the normal lane.
Priority endpoint_priority(Endpoint endpoint);

/// Reference implementation of one request — see the determinism contract
/// above. `replica` must be a private (not concurrently used) replica of
/// `loaded`; stochastic requests re-seed its measurement backends.
InferenceResult execute_single(const LoadedModel& loaded,
                               models::Autoencoder& replica, Endpoint endpoint,
                               const std::vector<double>& input,
                               std::uint64_t seed);

class InferenceService {
 public:
  /// The registry must outlive the service; so must `stats` when given
  /// (it receives cache and shed counters). Workers start immediately.
  InferenceService(ModelRegistry& registry, const ServeConfig& config,
                   ServerStats* stats = nullptr);
  ~InferenceService();

  InferenceService(const InferenceService&) = delete;
  InferenceService& operator=(const InferenceService&) = delete;

  /// Asynchronous submission; the future resolves when a worker finishes
  /// (or immediately: cache hit, shed, validation). Routed through the
  /// response cache when one is configured.
  std::future<InferenceResult> submit(const std::string& model,
                                      Endpoint endpoint,
                                      std::vector<double> input,
                                      std::uint64_t seed);

  /// Callback form of submit — the seam the epoll event loop uses: no
  /// future, no blocking. `done` is invoked exactly once with the result:
  /// inline (on the calling thread) for cache hits and immediate
  /// failures, on a worker thread otherwise, and on the *owner's* worker
  /// thread for requests that joined an in-flight duplicate. Callbacks
  /// must be cheap and non-blocking — workers execute them on the hot
  /// path.
  void submit_cb(const std::string& model, Endpoint endpoint,
                 std::vector<double> input, std::uint64_t seed,
                 std::function<void(const InferenceResult&)> done);

  // ---- synchronous conveniences ----------------------------------------
  InferenceResult encode(const std::vector<double>& x, std::uint64_t seed,
                         const std::string& model = "default");
  InferenceResult decode(const std::vector<double>& z, std::uint64_t seed,
                         const std::string& model = "default");
  InferenceResult reconstruct(const std::vector<double>& x,
                              std::uint64_t seed,
                              const std::string& model = "default");
  InferenceResult latent_sample(std::uint64_t seed,
                                const std::string& model = "default");

  /// Drains workers and rejects further submissions. Idempotent and safe
  /// against concurrent callers; also run by the destructor. Must not be
  /// called from a worker thread (it joins them).
  void shutdown() EXCLUDES(shutdown_mu_);

  const ServeConfig& config() const { return config_; }
  int num_workers() const { return static_cast<int>(workers_.size()); }
  /// Queue statistics (total_requests / total_batches expose the achieved
  /// coalescing ratio).
  const BatchQueue& queue() const { return queue_; }
  /// The response cache, or null when cache_bytes was 0.
  const ResponseCache* cache() const { return cache_.get(); }
  /// The registry this service serves from (for /stats generation).
  const ModelRegistry& registry() const { return registry_; }

 private:
  /// One worker's cached materialisation of a registry entry.
  struct Replica {
    std::uint64_t generation = 0;
    std::shared_ptr<const LoadedModel> loaded;
    std::unique_ptr<models::Autoencoder> model;
  };

  void worker_loop();
  void execute_batch(std::vector<Request>& batch,
                     std::unordered_map<std::string, Replica>& cache);

  ModelRegistry& registry_;
  ServeConfig config_;
  ServerStats* stats_;
  std::unique_ptr<ResponseCache> cache_;
  BatchQueue queue_;
  std::vector<std::thread> workers_;
  /// Serialises shutdown(): two concurrent callers must not both observe
  /// shut_down_ == false and race to join the same threads. Workers never
  /// call shutdown, so joining under the lock cannot deadlock.
  sq::Mutex shutdown_mu_;
  bool shut_down_ GUARDED_BY(shutdown_mu_) = false;
};

}  // namespace sqvae::serve
