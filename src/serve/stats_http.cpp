#include "serve/stats_http.h"

#ifdef __unix__

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <string>
#include <thread>
#include <utility>

namespace sqvae::serve {

namespace {

/// Reads until the blank line ending the request head, the peer closes,
/// or ~1s elapses. The request itself is ignored — every scrape gets the
/// same body — but not reading it first risks a RST racing the response.
void swallow_request(int fd) {
  char buf[4096];
  std::string head;
  for (int spins = 0; spins < 20; ++spins) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    if (::poll(&pfd, 1, 50) <= 0) continue;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return;
    head.append(buf, static_cast<std::size_t>(n));
    if (head.find("\r\n\r\n") != std::string::npos ||
        head.find("\n\n") != std::string::npos || head.size() > 65536) {
      return;
    }
  }
}

void send_all(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

struct StatsHttpServer::Impl {
  int config_port;
  std::function<std::string()> render;
  int listen_fd = -1;
  int bound_port = 0;
  std::atomic<bool> stopping{false};
  std::thread accept_thread;

  Impl(int port, std::function<std::string()> r)
      : config_port(port), render(std::move(r)) {}

  ~Impl() {
    stop();
    if (listen_fd >= 0) ::close(listen_fd);
  }

  bool start(std::string* error) {
    const auto fail = [&](const char* what) {
      if (error != nullptr) {
        *error = std::string(what) + ": " + std::strerror(errno);
      }
      return false;
    };
    listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd < 0) return fail("socket");
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(config_port));
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      return fail("bind(stats_port)");
    }
    if (::listen(listen_fd, 16) < 0) return fail("listen");
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) ==
        0) {
      bound_port = static_cast<int>(ntohs(addr.sin_port));
    }
    accept_thread = std::thread([this] { accept_loop(); });
    return true;
  }

  void accept_loop() {
    while (!stopping.load(std::memory_order_acquire)) {
      pollfd pfd{};
      pfd.fd = listen_fd;
      pfd.events = POLLIN;
      // The 100ms tick bounds stop() latency; scrape rates are seconds.
      const int n = ::poll(&pfd, 1, 100);
      if (n <= 0 || (pfd.revents & POLLIN) == 0) continue;
      const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
      if (fd < 0) continue;
      swallow_request(fd);
      const std::string body = render();
      std::string head =
          "HTTP/1.0 200 OK\r\n"
          "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
          "Content-Length: " +
          std::to_string(body.size()) +
          "\r\n"
          "Connection: close\r\n\r\n";
      send_all(fd, head);
      send_all(fd, body);
      ::close(fd);
    }
  }

  // Idempotent for a single calling thread (the owner): joinable() goes
  // false after the first join.
  void stop() {
    stopping.store(true, std::memory_order_release);
    if (accept_thread.joinable()) accept_thread.join();
  }
};

StatsHttpServer::StatsHttpServer(int port, std::function<std::string()> render)
    : impl_(std::make_unique<Impl>(port, std::move(render))) {}

StatsHttpServer::~StatsHttpServer() = default;

bool StatsHttpServer::start(std::string* error) {
  return impl_->start(error);
}

int StatsHttpServer::port() const { return impl_->bound_port; }

void StatsHttpServer::stop() { impl_->stop(); }

}  // namespace sqvae::serve

#else  // !__unix__

namespace sqvae::serve {

struct StatsHttpServer::Impl {};

StatsHttpServer::StatsHttpServer(int, std::function<std::string()>) {}

StatsHttpServer::~StatsHttpServer() = default;

bool StatsHttpServer::start(std::string* error) {
  if (error != nullptr) *error = "the stats HTTP endpoint requires unix";
  return false;
}

int StatsHttpServer::port() const { return 0; }

void StatsHttpServer::stop() {}

}  // namespace sqvae::serve

#endif  // __unix__
