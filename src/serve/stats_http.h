// StatsHttpServer: a minimal plain-HTTP scrape endpoint for Prometheus.
//
// Prometheus scrapes over HTTP; the serve line protocol is not HTTP. This
// server bridges the gap with the smallest thing that satisfies a
// scraper: one background thread accepts connections on 127.0.0.1:port,
// answers every request (any method, any path) with a 200 text/plain
// response whose body comes from the injected render callback, and
// closes. No keep-alive, no routing, no TLS — metrics only, loopback
// only; anything fancier belongs in a real reverse proxy.
//
// Each shard runs its own instance on stats_port + shard: per-shard
// metrics need per-shard addresses (binding one SO_REUSEPORT scrape port
// would hand each scrape to a random shard and make time series
// incoherent).
//
// Unix-only (sockets + poll); start() fails with an error elsewhere.
#pragma once

#include <functional>
#include <memory>
#include <string>

namespace sqvae::serve {

class StatsHttpServer {
 public:
  /// `render` produces the response body; it runs on the server's
  /// accept thread and must be thread-safe against the serving stack
  /// (the stats renderers are: relaxed-atomic snapshots).
  StatsHttpServer(int port, std::function<std::string()> render);
  /// Stops and joins the accept thread.
  ~StatsHttpServer();

  StatsHttpServer(const StatsHttpServer&) = delete;
  StatsHttpServer& operator=(const StatsHttpServer&) = delete;

  /// Binds 127.0.0.1:port and starts the accept thread. False + `error`
  /// on failure (port in use, unsupported platform).
  bool start(std::string* error);

  /// The bound port (after start(); resolves port == 0).
  int port() const;

  /// Stops the accept thread (idempotent; also run by the destructor).
  void stop();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace sqvae::serve
