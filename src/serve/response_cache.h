// ResponseCache: content-addressed response caching with in-flight
// request deduplication.
//
// The serving determinism contract (service.h) states that a response is
// a pure function of (model parameters, endpoint, payload, request seed)
// — nothing else. That makes responses content-addressable with exactly
// the keying idiom of the molecule shard store (src/chem/mol_hash.h): the
// cache key is the 128-bit chem::hash_bytes digest of a canonical byte
// serialisation of
//
//     (registry generation, endpoint, payload bits, seed)
//
// where the registry generation stands in for "model parameters": it is
// unique across every publish of a ModelRegistry (registry.h), so hot-
// swapping a checkpoint moves every request onto fresh keys and stale
// entries become unreachable the instant the generation bumps —
// invalidation by keying, no epochs, no sweeps. Unreachable entries age
// out through normal LRU eviction. Payload doubles are hashed by bit
// pattern (not text), so keys cost one pass over the bytes.
//
// Sharding: the key's low bits pick one of kShards independent
// (mutex, map, LRU list) shards, so concurrent lookups from the event
// loop and publishes from worker threads contend only 1/kShards of the
// time. The byte budget is split evenly per shard; eviction is plain LRU
// within a shard.
//
// In-flight deduplication: when N identical requests arrive while the
// first is still computing, lookup_or_join makes request 1 the *owner*
// (it must compute and then publish/fail) and parks requests 2..N as
// waiters on the in-flight entry; publish resolves every waiter with the
// same InferenceResult — one computation, N bit-identical replies. A
// waiter callback runs on the publishing thread, outside all cache locks.
//
// Only ok results are stored (errors are cheap to recompute and would
// poison hot keys); both outcomes resolve waiters.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "chem/mol_hash.h"
#include "common/mutex.h"
#include "serve/batch_queue.h"
#include "serve/stats.h"

namespace sqvae::serve {

using CacheKey = chem::MolHash;

/// Canonical cache key of a request under a specific registry generation.
CacheKey response_cache_key(std::uint64_t generation, Endpoint endpoint,
                            const std::vector<double>& payload,
                            std::uint64_t seed);

class ResponseCache {
 public:
  enum class Lookup {
    kHit,     // *out filled with the cached response
    kOwner,   // caller must compute, then publish() or fail()
    kJoined,  // an identical computation is in flight; the callback fires
              // when it publishes or fails
  };

  using Waiter = std::function<void(const InferenceResult&)>;

  /// `byte_budget` caps the summed payload bytes of cached responses
  /// (0 disables storage — lookups miss, but in-flight dedup still
  /// works). `stats` (optional) receives hit/miss/dedup/eviction and
  /// byte/entry gauges.
  explicit ResponseCache(std::size_t byte_budget,
                         ServerStats* stats = nullptr);

  /// One atomic step of the protocol above: hit fills `out`; owner must
  /// later publish()/fail() the key exactly once; joined parks `waiter`.
  Lookup lookup_or_join(const CacheKey& key, InferenceResult* out,
                        Waiter waiter);

  /// Owner path: stores `result` (if ok and within budget) and resolves
  /// every waiter parked on `key` with it.
  void publish(const CacheKey& key, const InferenceResult& result);

  /// Owner path when the computation never produced a result (e.g. the
  /// request was shed after winning ownership): resolves waiters with the
  /// error, stores nothing.
  void fail(const CacheKey& key, const std::string& error);

  // ---- introspection ---------------------------------------------------
  std::size_t entries() const;
  std::size_t bytes() const;

  static constexpr std::size_t kShards = 16;

 private:
  struct Entry {
    InferenceResult result;
    std::size_t bytes = 0;
    /// Position in `lru` (most-recent at front); valid iff cached.
    std::list<CacheKey>::iterator lru_pos;
  };

  struct InFlight {
    std::vector<Waiter> waiters;
  };

  struct Shard {
    mutable sq::Mutex mu;
    std::unordered_map<CacheKey, Entry, chem::MolHashHasher> map
        GUARDED_BY(mu);
    std::unordered_map<CacheKey, InFlight, chem::MolHashHasher> inflight
        GUARDED_BY(mu);
    std::list<CacheKey> lru GUARDED_BY(mu);  // front = most recently used
    std::size_t bytes GUARDED_BY(mu) = 0;
  };

  Shard& shard_of(const CacheKey& key) {
    return shards_[static_cast<std::size_t>(key.lo) % kShards];
  }

  /// Resolves and clears the in-flight entry; returns the waiters to run
  /// (outside the shard lock).
  std::vector<Waiter> take_waiters(Shard& shard, const CacheKey& key)
      REQUIRES(shard.mu);

  const std::size_t shard_budget_;
  ServerStats* stats_;
  Shard shards_[kShards];
};

}  // namespace sqvae::serve
