#include "serve/event_loop.h"

#include <cstdio>

#ifdef __linux__

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "serve/protocol.h"

namespace sqvae::serve {

namespace {

using Clock = std::chrono::steady_clock;

// epoll user-data tokens below kFirstConnToken identify the fixed fds.
constexpr std::uint64_t kListenerToken = 0;
constexpr std::uint64_t kStopToken = 1;
constexpr std::uint64_t kWakeToken = 2;
constexpr std::uint64_t kReloadToken = 3;
constexpr std::uint64_t kFirstConnToken = 4;

constexpr const char* kOverloadedConnLine =
    "{\"ok\": false, \"error\": \"overloaded: connection limit reached\"}\n";

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// One response slot of a connection, in request order. Immediate
/// responses (parse errors, /stats) are born ready; inference slots
/// become ready when their worker completion arrives.
struct Slot {
  bool ready = false;
  bool timed = false;  // record latency on completion (inference slots)
  int endpoint = -1;   // per-endpoint latency attribution (timed slots)
  std::string line;
  Clock::time_point submitted{};
};

struct Conn {
  int fd = -1;
  std::uint64_t token = 0;
  std::string inbuf;
  std::deque<Slot> slots;
  /// Sequence number of slots.front(); slot seq i lives at index
  /// i - base_seq. Completions address slots by (token, seq), which stays
  /// stable while earlier slots are flushed away.
  std::uint64_t base_seq = 0;
  std::string outbuf;
  std::size_t out_off = 0;
  Clock::time_point last_activity{};
  bool want_write = false;        // EPOLLOUT armed
  bool input_closed = false;      // no further input is parsed
  bool peer_half_closed = false;  // read EOF; flush, then close
  bool close_after_flush = false; // fatal protocol error; flush, then close
  bool paused = false;            // output backlog: input parsing paused
};

struct Completion {
  std::uint64_t token = 0;
  std::uint64_t seq = 0;
  std::string line;
};

}  // namespace

struct EventLoopServer::Impl {
  InferenceService& service;
  EventLoopConfig config;
  ServerStats& stats;

  int epoll_fd = -1;
  int listen_fd = -1;
  int stop_fd = -1;
  int wake_fd = -1;
  int reload_fd = -1;
  int bound_port = 0;

  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns;
  std::uint64_t next_token = kFirstConnToken;

  /// The only cross-thread state of the loop: worker completion callbacks
  /// push here; the loop thread swaps the vector out under the lock in
  /// drain_completions. Everything else in Impl is loop-thread-only.
  sq::Mutex completions_mu;
  std::vector<Completion> completions GUARDED_BY(completions_mu);

  bool draining = false;
  Clock::time_point drain_deadline{};
  Clock::time_point last_idle_sweep{};

  Impl(InferenceService& s, const EventLoopConfig& c, ServerStats& st)
      : service(s), config(c), stats(st) {}

  ~Impl() {
    // lint-allow(unordered-iter): fd close order is immaterial
    for (auto& [token, conn] : conns) {
      if (conn->fd >= 0) ::close(conn->fd);
    }
    if (listen_fd >= 0) ::close(listen_fd);
    if (stop_fd >= 0) ::close(stop_fd);
    if (wake_fd >= 0) ::close(wake_fd);
    if (reload_fd >= 0) ::close(reload_fd);
    if (epoll_fd >= 0) ::close(epoll_fd);
  }

  bool add_fd(int fd, std::uint64_t token, std::uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.u64 = token;
    return ::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) == 0;
  }

  bool start(std::string* error) {
    const auto fail = [&](const char* what) {
      if (error != nullptr) {
        *error = std::string(what) + ": " + std::strerror(errno);
      }
      return false;
    };
    epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd < 0) return fail("epoll_create1");
    stop_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    wake_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    reload_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (stop_fd < 0 || wake_fd < 0 || reload_fd < 0) return fail("eventfd");

    listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd < 0) return fail("socket");
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (config.reuse_port &&
        ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEPORT, &one,
                     sizeof(one)) != 0) {
      return fail("setsockopt(SO_REUSEPORT)");
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(config.port));
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      return fail("bind");
    }
    if (::listen(listen_fd, config.listen_backlog) < 0) return fail("listen");
    if (!set_nonblocking(listen_fd)) return fail("fcntl");

    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) ==
        0) {
      bound_port = static_cast<int>(ntohs(addr.sin_port));
    }

    // Listener and eventfds are level-triggered (no drain-to-EAGAIN
    // obligations); connection sockets are edge-triggered (added in
    // accept_ready).
    if (!add_fd(listen_fd, kListenerToken, EPOLLIN) ||
        !add_fd(stop_fd, kStopToken, EPOLLIN) ||
        !add_fd(wake_fd, kWakeToken, EPOLLIN) ||
        !add_fd(reload_fd, kReloadToken, EPOLLIN)) {
      return fail("epoll_ctl");
    }
    return true;
  }

  // ---- connection lifecycle --------------------------------------------

  void accept_ready() {
    while (true) {
      const int fd = ::accept4(listen_fd, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        // Transient accept failures (EMFILE under load, aborted
        // handshakes) must not stop the loop.
        return;
      }
      if (draining) {
        ::close(fd);
        continue;
      }
      if (conns.size() >= config.max_conns) {
        // Admission control: one overloaded line, then close. The socket
        // buffer is empty, so this tiny write cannot meaningfully block.
        (void)!::write(fd, kOverloadedConnLine,
                       std::strlen(kOverloadedConnLine));
        ::close(fd);
        stats.connections_shed.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

      auto conn = std::make_unique<Conn>();
      conn->fd = fd;
      conn->token = next_token++;
      conn->last_activity = Clock::now();
      if (!add_fd(fd, conn->token, EPOLLIN | EPOLLRDHUP | EPOLLET)) {
        ::close(fd);
        continue;
      }
      stats.connections_accepted.fetch_add(1, std::memory_order_relaxed);
      stats.connections_active.fetch_add(1, std::memory_order_relaxed);
      conns.emplace(conn->token, std::move(conn));
    }
  }

  void teardown(Conn* conn, bool reset) {
    ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
    ::close(conn->fd);
    conn->fd = -1;
    stats.connections_active.fetch_sub(1, std::memory_order_relaxed);
    stats.connections_closed.fetch_add(1, std::memory_order_relaxed);
    if (reset) {
      stats.connections_reset.fetch_add(1, std::memory_order_relaxed);
    }
    // Late completions for this token are dropped on arrival.
    conns.erase(conn->token);
  }

  // ---- input path -------------------------------------------------------

  /// Drains the socket to EAGAIN (edge-triggered contract) and parses
  /// every complete frame. Returns false if the connection was torn down.
  bool handle_readable(Conn* conn) {
    if (conn->input_closed) return true;
    char buf[16384];
    while (true) {
      const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
      if (n > 0) {
        conn->last_activity = Clock::now();
        conn->inbuf.append(buf, static_cast<std::size_t>(n));
        if (!process_inbuf(conn)) return false;
        if (conn->paused || conn->input_closed) {
          // Backpressure (or a fatal frame error): leave the rest in the
          // socket buffer; TCP throttles the sender. The pending edge is
          // re-created by resume_input's explicit re-read.
          return true;
        }
        continue;
      }
      if (n == 0) {
        // Peer finished sending. A half-closed peer still gets every
        // pending response; close now only if nothing is outstanding.
        conn->peer_half_closed = true;
        conn->input_closed = true;
        if (conn->slots.empty() && conn->outbuf.size() == conn->out_off) {
          teardown(conn, /*reset=*/false);
          return false;
        }
        return true;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      // ECONNRESET and friends: the peer died mid-stream.
      teardown(conn, /*reset=*/true);
      return false;
    }
  }

  /// Carves complete lines out of the input buffer and dispatches them.
  /// Returns false if the connection was torn down.
  bool process_inbuf(Conn* conn) {
    std::size_t start = 0;
    while (!conn->input_closed) {
      const std::size_t nl = conn->inbuf.find('\n', start);
      if (nl == std::string::npos) break;
      std::string line = conn->inbuf.substr(start, nl - start);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      start = nl + 1;
      handle_line(conn, line);
      if (conn->paused) break;
    }
    conn->inbuf.erase(0, start);
    if (!conn->input_closed && conn->inbuf.size() > config.max_line_bytes) {
      // A frame larger than the cap can never complete: answer with one
      // protocol error, then flush and close.
      stats.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      Slot slot;
      slot.ready = true;
      slot.line = format_parse_error("request line exceeds " +
                                     std::to_string(config.max_line_bytes) +
                                     " bytes");
      conn->slots.push_back(std::move(slot));
      conn->inbuf.clear();
      conn->input_closed = true;
      conn->close_after_flush = true;
    }
    return flush(conn);
  }

  void handle_line(Conn* conn, const std::string& line) {
    WireRequest request;
    std::string error;
    if (!parse_request_line(line, &request, &error)) {
      if (error.empty()) return;  // blank line
      stats.requests_total.fetch_add(1, std::memory_order_relaxed);
      stats.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      Slot slot;
      slot.ready = true;
      slot.line = format_parse_error(error);
      conn->slots.push_back(std::move(slot));
      return;
    }
    stats.requests_total.fetch_add(1, std::memory_order_relaxed);

    if (request.is_stats) {
      Slot slot;
      slot.ready = true;
      slot.line =
          request.stats_prometheus
              ? render_stats_prometheus(
                    stats, service.queue().depth(),
                    service.registry().generation(request.model),
                    config.shard)
              : render_stats_response(
                    stats, service.queue().depth(),
                    service.registry().generation(request.model),
                    request.has_id, request.id);
      conn->slots.push_back(std::move(slot));
      return;
    }
    stats.endpoint[static_cast<int>(request.endpoint)].requests.fetch_add(
        1, std::memory_order_relaxed);

    Slot slot;
    slot.timed = true;
    slot.endpoint = static_cast<int>(request.endpoint);
    slot.submitted = Clock::now();
    const std::uint64_t seq =
        conn->base_seq + static_cast<std::uint64_t>(conn->slots.size());
    conn->slots.push_back(std::move(slot));

    // The completion callback runs on a worker thread (or inline for a
    // cache hit): it renders the response — the wire request's op/id
    // survive in the capture — posts it, and kicks the wake eventfd. It
    // must not touch `conn`: the connection may be gone by then.
    //
    // The submit arguments are copied out *before* the callback is built:
    // the callback takes the WireRequest by move (its op/model/id strings
    // would otherwise be heap-copied per request), and evaluation order
    // between a `std::move(request)` capture and sibling arguments
    // reading `request.model` is unspecified.
    const std::uint64_t token = conn->token;
    const std::string model = request.model;
    const Endpoint endpoint = request.endpoint;
    const std::uint64_t seed = request.seed;
    std::vector<double> payload = std::move(request.x);
    request.x.clear();
    Impl* impl = this;
    auto on_done = [impl, token, seq, endpoint,
                    request = std::move(request)](
                       const InferenceResult& result) {
      if (!result.ok) {
        impl->stats.endpoint[static_cast<int>(endpoint)].errors.fetch_add(
            1, std::memory_order_relaxed);
      }
      Completion completion;
      completion.token = token;
      completion.seq = seq;
      completion.line = format_response(request, result);
      {
        sq::MutexLock lock(impl->completions_mu);
        impl->completions.push_back(std::move(completion));
      }
      const std::uint64_t one = 1;
      (void)!::write(impl->wake_fd, &one, sizeof(one));
    };
    service.submit_cb(model, endpoint, std::move(payload), seed,
                      std::move(on_done));
  }

  /// Un-pauses a connection whose output backlog drained: parses frames
  /// that were already buffered, then re-reads the socket (the paused
  /// edge was consumed, so the read must be explicit).
  bool resume_input(Conn* conn) {
    conn->paused = false;
    if (!process_inbuf(conn)) return false;
    if (conn->paused || conn->input_closed) return true;
    return handle_readable(conn);
  }

  // ---- output path ------------------------------------------------------

  void arm_write(Conn* conn, bool on) {
    if (conn->want_write == on) return;
    conn->want_write = on;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP | EPOLLET | (on ? EPOLLOUT : 0u);
    ev.data.u64 = conn->token;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev);
  }

  /// Moves the ready in-order slot prefix into the output buffer and
  /// writes as much as the socket accepts. Returns false if the
  /// connection was torn down.
  bool flush(Conn* conn) {
    while (!conn->slots.empty() && conn->slots.front().ready) {
      Slot& slot = conn->slots.front();
      conn->outbuf += slot.line;
      conn->outbuf += '\n';
      stats.responses_total.fetch_add(1, std::memory_order_relaxed);
      if (slot.timed) {
        const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                            Clock::now() - slot.submitted)
                            .count();
        stats.latency.record_us(static_cast<std::uint64_t>(us));
        if (slot.endpoint >= 0 && slot.endpoint < kStatsEndpoints) {
          stats.endpoint[slot.endpoint].latency.record_us(
              static_cast<std::uint64_t>(us));
        }
      }
      conn->slots.pop_front();
      ++conn->base_seq;
    }

    while (conn->out_off < conn->outbuf.size()) {
      const ssize_t n =
          ::write(conn->fd, conn->outbuf.data() + conn->out_off,
                  conn->outbuf.size() - conn->out_off);
      if (n > 0) {
        conn->out_off += static_cast<std::size_t>(n);
        conn->last_activity = Clock::now();
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        arm_write(conn, true);
        break;
      }
      if (n < 0 && errno == EINTR) continue;
      // EPIPE / ECONNRESET: the peer died mid-write. Tear down with
      // stats accounting — this is the regression path where the old
      // thread-per-connection writer could wedge on a dead socket.
      teardown(conn, /*reset=*/true);
      return false;
    }

    if (conn->out_off == conn->outbuf.size()) {
      conn->outbuf.clear();
      conn->out_off = 0;
      arm_write(conn, false);
      if (conn->close_after_flush ||
          (conn->peer_half_closed && conn->slots.empty()) ||
          (draining && conn->slots.empty())) {
        teardown(conn, /*reset=*/false);
        return false;
      }
    }

    const std::size_t backlog = conn->outbuf.size() - conn->out_off;
    if (!conn->paused && backlog > config.max_outbuf_bytes) {
      conn->paused = true;  // resume_input() runs when the backlog halves
    } else if (conn->paused && backlog < config.max_outbuf_bytes / 2) {
      return resume_input(conn);
    }
    return true;
  }

  // ---- completions / drain / idle ---------------------------------------

  void drain_completions() {
    std::uint64_t counter = 0;
    (void)!::read(wake_fd, &counter, sizeof(counter));
    std::vector<Completion> batch;
    {
      sq::MutexLock lock(completions_mu);
      batch.swap(completions);
    }
    for (Completion& completion : batch) {
      const auto it = conns.find(completion.token);
      if (it == conns.end()) continue;  // connection died first: dropped
      Conn* conn = it->second.get();
      const std::uint64_t idx = completion.seq - conn->base_seq;
      if (idx >= conn->slots.size()) continue;  // defensive; cannot happen
      Slot& slot =
          conn->slots[static_cast<std::size_t>(idx)];
      slot.ready = true;
      slot.line = std::move(completion.line);
      flush(conn);
    }
  }

  void begin_drain() {
    if (draining) return;
    draining = true;
    drain_deadline =
        Clock::now() + std::chrono::milliseconds(config.drain_timeout_ms);
    if (listen_fd >= 0) {
      ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, listen_fd, nullptr);
      ::close(listen_fd);
      listen_fd = -1;
    }
    // Parse no further input; flush what is in flight. Idle connections
    // close immediately. Collect tokens first: flush() may erase conns.
    std::vector<std::uint64_t> tokens;
    tokens.reserve(conns.size());
    // lint-allow(unordered-iter): per-connection flag set, no output order
    for (auto& [token, conn] : conns) {
      conn->input_closed = true;
      tokens.push_back(token);
    }
    for (const std::uint64_t token : tokens) {
      const auto it = conns.find(token);
      if (it != conns.end()) flush(it->second.get());
    }
  }

  void idle_sweep() {
    if (config.idle_timeout_ms == 0) return;
    const Clock::time_point now = Clock::now();
    if (now - last_idle_sweep < std::chrono::milliseconds(250)) return;
    last_idle_sweep = now;
    const auto timeout = std::chrono::milliseconds(config.idle_timeout_ms);
    std::vector<std::uint64_t> victims;
    // lint-allow(unordered-iter): teardown order of idle peers is immaterial
    for (const auto& [token, conn] : conns) {
      // Pending work counts as activity: a connection waiting on its
      // response is not idle.
      if (conn->slots.empty() && conn->outbuf.size() == conn->out_off &&
          now - conn->last_activity > timeout) {
        victims.push_back(token);
      }
    }
    for (const std::uint64_t token : victims) {
      const auto it = conns.find(token);
      if (it == conns.end()) continue;
      stats.connections_idle_closed.fetch_add(1, std::memory_order_relaxed);
      teardown(it->second.get(), /*reset=*/false);
    }
  }

  int run() {
    epoll_event events[256];
    while (true) {
      int timeout_ms = config.idle_timeout_ms > 0 ? 250 : 1000;
      if (draining) {
        if (conns.empty()) return 0;
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                              drain_deadline - Clock::now())
                              .count();
        if (left <= 0) {
          // Deadline: force-close whatever is still stuck.
          while (!conns.empty()) {
            teardown(conns.begin()->second.get(), /*reset=*/true);
          }
          return 0;
        }
        timeout_ms = static_cast<int>(
            std::min<long long>(left, timeout_ms));
      }

      const int n = ::epoll_wait(epoll_fd, events,
                                 static_cast<int>(std::size(events)),
                                 timeout_ms);
      if (n < 0) {
        if (errno == EINTR) continue;
        std::perror("epoll_wait");
        return 1;
      }
      for (int i = 0; i < n; ++i) {
        const std::uint64_t token = events[i].data.u64;
        const std::uint32_t ev = events[i].events;
        if (token == kListenerToken) {
          accept_ready();
          continue;
        }
        if (token == kStopToken) {
          std::uint64_t counter = 0;
          (void)!::read(stop_fd, &counter, sizeof(counter));
          begin_drain();
          continue;
        }
        if (token == kWakeToken) {
          drain_completions();
          continue;
        }
        if (token == kReloadToken) {
          std::uint64_t counter = 0;
          (void)!::read(reload_fd, &counter, sizeof(counter));
          // Coalesced: N SIGHUPs before this wakeup reload once. The
          // hook runs on the loop thread — checkpoint loading is
          // millisecond-scale, and in-flight batches are pinned to the
          // generation they started with (registry.h), so traffic
          // neither drops nor mixes generations.
          if (config.on_reload) config.on_reload();
          continue;
        }
        const auto it = conns.find(token);
        if (it == conns.end()) continue;  // closed earlier this batch
        Conn* conn = it->second.get();
        if ((ev & (EPOLLHUP | EPOLLERR)) != 0) {
          const bool reset = !conn->slots.empty() ||
                             conn->outbuf.size() != conn->out_off ||
                             (ev & EPOLLERR) != 0;
          teardown(conn, reset);
          continue;
        }
        if ((ev & EPOLLOUT) != 0) {
          if (!flush(conn)) continue;
        }
        if ((ev & (EPOLLIN | EPOLLRDHUP)) != 0) {
          if (!handle_readable(conn)) continue;
        }
      }
      idle_sweep();
    }
  }
};

EventLoopServer::EventLoopServer(InferenceService& service,
                                 const EventLoopConfig& config,
                                 ServerStats& stats)
    : impl_(std::make_unique<Impl>(service, config, stats)) {}

EventLoopServer::~EventLoopServer() = default;

bool EventLoopServer::start(std::string* error) {
  return impl_->start(error);
}

int EventLoopServer::port() const { return impl_->bound_port; }

int EventLoopServer::run() { return impl_->run(); }

void EventLoopServer::request_stop() {
  const std::uint64_t one = 1;
  (void)!::write(impl_->stop_fd, &one, sizeof(one));
}

void EventLoopServer::request_reload() {
  const std::uint64_t one = 1;
  (void)!::write(impl_->reload_fd, &one, sizeof(one));
}

}  // namespace sqvae::serve

#else  // !__linux__

namespace sqvae::serve {

struct EventLoopServer::Impl {};

EventLoopServer::EventLoopServer(InferenceService&, const EventLoopConfig&,
                                 ServerStats&) {}

EventLoopServer::~EventLoopServer() = default;

bool EventLoopServer::start(std::string* error) {
  if (error != nullptr) {
    *error = "the event-loop server requires Linux epoll";
  }
  return false;
}

int EventLoopServer::port() const { return 0; }

int EventLoopServer::run() { return 1; }

void EventLoopServer::request_stop() {}

void EventLoopServer::request_reload() {}

}  // namespace sqvae::serve

#endif  // __linux__
