#include "serve/response_cache.h"

#include <cstring>
#include <utility>

namespace sqvae::serve {

namespace {

/// Approximate heap footprint of one cached response (payload + node
/// overhead), charged against the byte budget.
std::size_t entry_bytes(const InferenceResult& result) {
  return result.values.size() * sizeof(double) + result.error.size() + 96;
}

void bump(std::atomic<std::uint64_t>* counter, std::uint64_t delta = 1) {
  if (counter != nullptr) counter->fetch_add(delta, std::memory_order_relaxed);
}

}  // namespace

CacheKey response_cache_key(std::uint64_t generation, Endpoint endpoint,
                            const std::vector<double>& payload,
                            std::uint64_t seed) {
  // Canonical byte serialisation: fixed-width little-endian-as-stored
  // header fields, then the payload's raw double bit patterns. The layout
  // is unambiguous (all fields fixed width, payload length implied by the
  // buffer size), so distinct requests serialise to distinct buffers.
  std::string bytes;
  bytes.reserve(24 + payload.size() * sizeof(double));
  const std::uint64_t header[3] = {generation,
                                   static_cast<std::uint64_t>(endpoint), seed};
  bytes.append(reinterpret_cast<const char*>(header), sizeof(header));
  if (!payload.empty()) {
    bytes.append(reinterpret_cast<const char*>(payload.data()),
                 payload.size() * sizeof(double));
  }
  return chem::hash_bytes(bytes);
}

ResponseCache::ResponseCache(std::size_t byte_budget, ServerStats* stats)
    : shard_budget_(byte_budget / kShards), stats_(stats) {}

ResponseCache::Lookup ResponseCache::lookup_or_join(const CacheKey& key,
                                                    InferenceResult* out,
                                                    Waiter waiter) {
  Shard& shard = shard_of(key);
  sq::MutexLock lock(shard.mu);

  const auto hit = shard.map.find(key);
  if (hit != shard.map.end()) {
    // Refresh LRU position and answer from the cache.
    shard.lru.splice(shard.lru.begin(), shard.lru, hit->second.lru_pos);
    *out = hit->second.result;
    bump(stats_ != nullptr ? &stats_->cache_hits : nullptr);
    return Lookup::kHit;
  }

  const auto flying = shard.inflight.find(key);
  if (flying != shard.inflight.end()) {
    flying->second.waiters.push_back(std::move(waiter));
    bump(stats_ != nullptr ? &stats_->cache_inflight_joined : nullptr);
    return Lookup::kJoined;
  }

  shard.inflight.emplace(key, InFlight{});
  bump(stats_ != nullptr ? &stats_->cache_misses : nullptr);
  return Lookup::kOwner;
}

std::vector<ResponseCache::Waiter> ResponseCache::take_waiters(
    Shard& shard, const CacheKey& key) {
  std::vector<Waiter> waiters;
  const auto it = shard.inflight.find(key);
  if (it != shard.inflight.end()) {
    waiters = std::move(it->second.waiters);
    shard.inflight.erase(it);
  }
  return waiters;
}

void ResponseCache::publish(const CacheKey& key,
                            const InferenceResult& result) {
  std::vector<Waiter> waiters;
  {
    Shard& shard = shard_of(key);
    sq::MutexLock lock(shard.mu);
    waiters = take_waiters(shard, key);

    const std::size_t bytes = entry_bytes(result);
    if (result.ok && shard_budget_ > 0 && bytes <= shard_budget_ &&
        shard.map.find(key) == shard.map.end()) {
      // Evict least-recently-used entries until the new one fits.
      while (shard.bytes + bytes > shard_budget_ && !shard.lru.empty()) {
        const CacheKey victim = shard.lru.back();
        shard.lru.pop_back();
        const auto vit = shard.map.find(victim);
        const std::size_t victim_bytes = vit->second.bytes;
        shard.bytes -= victim_bytes;
        shard.map.erase(vit);
        bump(stats_ != nullptr ? &stats_->cache_evictions : nullptr);
        if (stats_ != nullptr) {
          stats_->cache_entries.fetch_sub(1, std::memory_order_relaxed);
          stats_->cache_bytes.fetch_sub(victim_bytes,
                                        std::memory_order_relaxed);
        }
      }
      shard.lru.push_front(key);
      Entry entry;
      entry.result = result;
      entry.bytes = bytes;
      entry.lru_pos = shard.lru.begin();
      shard.map.emplace(key, std::move(entry));
      shard.bytes += bytes;
      if (stats_ != nullptr) {
        stats_->cache_bytes.fetch_add(bytes, std::memory_order_relaxed);
        stats_->cache_entries.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  for (const Waiter& w : waiters) {
    if (w) w(result);
  }
}

void ResponseCache::fail(const CacheKey& key, const std::string& error) {
  std::vector<Waiter> waiters;
  {
    Shard& shard = shard_of(key);
    sq::MutexLock lock(shard.mu);
    waiters = take_waiters(shard, key);
  }
  InferenceResult result;
  result.ok = false;
  result.error = error;
  for (const Waiter& w : waiters) {
    if (w) w(result);
  }
}

std::size_t ResponseCache::entries() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    sq::MutexLock lock(shard.mu);
    n += shard.map.size();
  }
  return n;
}

std::size_t ResponseCache::bytes() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    sq::MutexLock lock(shard.mu);
    n += shard.bytes;
  }
  return n;
}

}  // namespace sqvae::serve
