// ModelRegistry: named, hot-swappable LoadedModel snapshots.
//
// publish() installs a snapshot under a name and stamps it with a
// monotonically increasing generation counter; get() hands out the current
// snapshot as a shared_ptr, so an in-flight batch keeps executing against
// the generation it started with even while a newer one is being
// published. Worker threads cache (generation, replica) pairs and compare
// generations per batch — a swap costs readers one atomic-ish mutex peek
// per batch, and replicas are rebuilt lazily only when the generation
// actually moved (see service.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "serve/loaded_model.h"

namespace sqvae::serve {

struct ModelEntry {
  std::shared_ptr<const LoadedModel> model;
  /// Generation stamp: unique across all publishes in this registry, so
  /// re-publishing a name always changes the visible generation.
  std::uint64_t generation = 0;
};

class ModelRegistry {
 public:
  /// Installs (or replaces) the snapshot under `name`; returns its
  /// generation stamp. Thread-safe against concurrent get()/publish().
  std::uint64_t publish(const std::string& name,
                        std::shared_ptr<const LoadedModel> model)
      EXCLUDES(mu_);

  /// Current snapshot for `name`, or an entry with a null model (and
  /// generation 0) when the name is unknown.
  ModelEntry get(const std::string& name) const EXCLUDES(mu_);

  /// Generation stamp of `name` (0 when unknown) — the cheap staleness
  /// probe workers use before touching the snapshot itself.
  std::uint64_t generation(const std::string& name) const EXCLUDES(mu_);

  std::vector<std::string> names() const EXCLUDES(mu_);

 private:
  mutable sq::Mutex mu_;
  std::unordered_map<std::string, ModelEntry> entries_ GUARDED_BY(mu_);
  std::uint64_t next_generation_ GUARDED_BY(mu_) = 1;
};

}  // namespace sqvae::serve
