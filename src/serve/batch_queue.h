// BatchQueue: micro-batch coalescing of concurrent single-sample requests.
//
// Serving traffic arrives one sample at a time, but every layer below the
// queue is batch-shaped: one tape amortises autodiff-node overhead over
// the batch, and CircuitExecutor::run_batch amortises plan binding and
// parallelises the per-sample statevectors. The queue recovers that batch
// shape at runtime: a worker popping work takes the oldest request, then
// coalesces every queued request with the same (model, endpoint) key — up
// to `max_batch` of them.
//
// Straggler policy: with `max_wait_us` = 0 (the default) coalescing is
// purely opportunistic — a worker takes whatever is queued *now*, which
// under sustained concurrent load already forms near-concurrency-sized
// batches (requests accumulate while the previous batch executes) and adds
// zero idle latency. A non-zero `max_wait_us` additionally holds a
// sub-max_batch batch open for stragglers, with the deadline anchored at
// the *oldest request's enqueue time* — so requests that already aged in
// the queue during the previous execution are never delayed again, and the
// knob bounds the total queue-added latency of any request. Use it for
// open-loop/pipelined clients where submissions keep streaming regardless
// of responses; closed-loop clients (submit, block, repeat) gain nothing
// from waiting, since their next requests cannot arrive before the current
// batch resolves. max_batch = 1 degenerates to per-request dispatch, the
// A/B baseline of bench_serve.
//
// Requests with different keys are left queued for other workers, so one
// slow model cannot head-of-line-block another model's traffic beyond the
// scan cost.
//
// Admission control (the internet-shaped additions):
//
//   * Load shedding — with `shed_on_full` a push into a full queue fails
//     *immediately* with an "overloaded" error instead of blocking the
//     producer. Blocking backpressure is right for a pipe (stdin mode:
//     the OS pipe buffer backpressures the writer), but an event loop
//     must never block its only thread — it replies "overloaded" and
//     stays responsive. Shed requests count in total_shed() (and the
//     optional ServerStats' requests_shed).
//   * Priority lane — pushes carry a Priority; workers drain the high
//     lane first and high-priority pushes are admitted into a reserve
//     beyond max_depth (max_depth/4 extra), so cheap interactive
//     endpoints (encode/decode — one coalesced forward pass) are neither
//     starved nor shed by a backlog of expensive reconstructs. Coalescing
//     spans both lanes: a batch seeded from the high lane absorbs
//     matching normal-lane requests too, so priority never *reduces*
//     batching.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "serve/stats.h"

namespace sqvae::serve {

enum class Endpoint {
  kEncode,        // features -> deterministic latent code (encode_mean)
  kDecode,        // latent -> features
  kReconstruct,   // features -> features (VAEs reparameterise per request)
  kLatentSample,  // z ~ N(0, I) from the request seed -> decode
};

const char* endpoint_name(Endpoint e);
bool parse_endpoint(const std::string& name, Endpoint* out);

struct InferenceResult {
  bool ok = false;
  std::string error;           // set when !ok
  std::vector<double> values;  // latent or feature row
};

/// Queue lane of a request (see the admission-control notes above).
enum class Priority {
  kNormal,
  kHigh,
};

struct Request {
  std::string model;  // registry name
  Endpoint endpoint = Endpoint::kReconstruct;
  std::vector<double> input;  // empty for latent_sample
  /// Every stochastic draw this request triggers (reparameterisation
  /// noise, latent sampling, stochastic measurement streams) derives from
  /// this seed and nothing else — the serving determinism contract.
  std::uint64_t seed = 0;
  Priority priority = Priority::kNormal;
  std::promise<InferenceResult> promise;
  /// Called (if set) by the executing worker with the result, right
  /// before the promise is fulfilled — the callback seam event-driven
  /// callers (the epoll loop, the response cache's owner path) use
  /// instead of blocking on the future. Runs on the worker thread.
  std::function<void(const InferenceResult&)> on_done;
  /// Set by push(); anchors the straggler-wait deadline.
  std::chrono::steady_clock::time_point enqueued{};
};

class BatchQueue {
 public:
  /// `max_depth` bounds the number of queued (not yet popped) requests.
  /// When full: with `shed_on_full` false (default), push() blocks —
  /// natural backpressure for pipe producers; with it true, push() fails
  /// the future immediately with an "overloaded" error (load shedding;
  /// see the admission-control notes above). 0 = unbounded.
  /// `stats` (optional) receives shed counts.
  BatchQueue(std::size_t max_batch, std::uint64_t max_wait_us,
             std::size_t max_depth = 0, bool shed_on_full = false,
             ServerStats* stats = nullptr);

  /// Enqueues a request; the future resolves when a worker finishes it.
  /// Blocks while the queue is at max_depth (unless shedding — see
  /// above). High-priority requests may use the reserve beyond
  /// max_depth. `on_done` (optional) is invoked by the worker with the
  /// result just before the future resolves.
  std::future<InferenceResult> push(
      std::string model, Endpoint endpoint, std::vector<double> input,
      std::uint64_t seed, Priority priority = Priority::kNormal,
      std::function<void(const InferenceResult&)> on_done = nullptr)
      EXCLUDES(mu_);

  /// Blocks until at least one request is available (or the queue closes),
  /// then coalesces up to max_batch same-key requests as described above.
  /// An empty result means closed-and-drained: workers should exit.
  std::vector<Request> pop_batch() EXCLUDES(mu_);

  /// Wakes all waiters; subsequent pushes fail the returned future.
  /// Already-queued requests still drain through pop_batch.
  void close() EXCLUDES(mu_);

  std::size_t depth() const EXCLUDES(mu_);

  // Coalescing statistics (monotonic; for tests and the CLI's shutdown
  // report).
  std::uint64_t total_requests() const EXCLUDES(mu_);
  std::uint64_t total_batches() const EXCLUDES(mu_);
  std::uint64_t total_shed() const EXCLUDES(mu_);

 private:
  /// Moves every queued request matching (model, endpoint) of `batch[0]`
  /// into `batch` — high lane first, then normal — up to max_batch_.
  /// `batch` must have capacity for max_batch_ elements already (the
  /// matching key is read through a reference into it, which a
  /// reallocation would invalidate).
  void collect_matching(std::vector<Request>& batch) REQUIRES(mu_);
  /// Queued request count across both lanes.
  std::size_t depth_locked() const REQUIRES(mu_) {
    return high_.size() + normal_.size();
  }

  const std::size_t max_batch_;
  const std::uint64_t max_wait_us_;
  const std::size_t max_depth_;
  const bool shed_on_full_;
  ServerStats* const stats_;

  mutable sq::Mutex mu_;
  sq::CondVar cv_;
  std::deque<Request> high_ GUARDED_BY(mu_);
  std::deque<Request> normal_ GUARDED_BY(mu_);
  bool closed_ GUARDED_BY(mu_) = false;
  std::uint64_t total_requests_ GUARDED_BY(mu_) = 0;
  std::uint64_t total_batches_ GUARDED_BY(mu_) = 0;
  std::uint64_t total_shed_ GUARDED_BY(mu_) = 0;
};

}  // namespace sqvae::serve
