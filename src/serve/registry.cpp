#include "serve/registry.h"

#include <algorithm>

namespace sqvae::serve {

std::uint64_t ModelRegistry::publish(const std::string& name,
                                     std::shared_ptr<const LoadedModel> model) {
  sq::MutexLock lock(mu_);
  const std::uint64_t generation = next_generation_++;
  entries_[name] = ModelEntry{std::move(model), generation};
  return generation;
}

ModelEntry ModelRegistry::get(const std::string& name) const {
  sq::MutexLock lock(mu_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) return ModelEntry{};
  return it->second;
}

std::uint64_t ModelRegistry::generation(const std::string& name) const {
  sq::MutexLock lock(mu_);
  const auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second.generation;
}

std::vector<std::string> ModelRegistry::names() const {
  sq::MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  // lint-allow(unordered-iter): sorted immediately below
  for (const auto& [name, entry] : entries_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace sqvae::serve
