// LoadedModel: an immutable, shareable snapshot of a trained model.
//
// The serving layer never hands the zoo's mutable Autoencoder objects to
// more than one thread: forward passes build tapes against the model's
// ad::Parameter objects, and stochastic measurement backends are replaced
// per request (see service.h), so a shared instance would race. Instead a
// checkpoint loads once into a LoadedModel — the architecture description
// (ModelSpec) plus a frozen copy of every parameter matrix — and each
// worker thread materialises its own private *replica* from that snapshot.
// Replicas are cheap (the zoo's models are a handful of small matrices and
// compiled circuit plans) and bit-identical: two replicas of one
// LoadedModel produce bit-identical outputs for identical requests.
//
// LoadedModel is deeply const after construction, which is what makes the
// registry's hot-swap sound: publishing a new generation never mutates the
// snapshot an in-flight batch is still executing against.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/matrix.h"
#include "models/autoencoder.h"
#include "qsim/backend.h"

namespace sqvae::serve {

/// Architecture description sufficient to rebuild any model of the zoo —
/// the serving-side mirror of sqvae_train's model flags. Checkpoints store
/// parameter values only, so the spec travels alongside them.
struct ModelSpec {
  /// Zoo name: classical-ae, classical-vae, fbq-ae, fbq-vae, hbq-ae,
  /// hbq-vae, sq-ae, sq-vae (as sqvae_train --model).
  std::string kind = "sq-ae";
  std::size_t input_dim = 64;
  int entangling_layers = 3;
  int patches = 2;          // sq-* only
  std::size_t latent = 6;   // classical models only
  /// Simulation regime replicas run under. For stochastic regimes
  /// (trajectory / shots) the service derives a fresh per-request seed from
  /// this value and the request seed — see service.h.
  qsim::SimulationOptions sim{};
};

/// Builds a freshly-initialised model for `spec` (weights from a fixed
/// internal seed; callers overwrite them with checkpoint parameters).
/// Returns null and fills `error` on an unknown kind or invalid shape.
std::unique_ptr<models::Autoencoder> build_model(const ModelSpec& spec,
                                                 std::string* error);

class LoadedModel {
 public:
  /// Loads checkpoint text (v1 or v2; training state ignored — see
  /// models/checkpoint.h load_params_only) into a snapshot. Null + `error`
  /// on a spec/checkpoint mismatch or parse failure.
  static std::shared_ptr<const LoadedModel> from_checkpoint_text(
      const ModelSpec& spec, const std::string& text, std::string* error);

  /// File convenience wrapper for from_checkpoint_text.
  static std::shared_ptr<const LoadedModel> from_checkpoint_file(
      const ModelSpec& spec, const std::string& path, std::string* error);

  /// Snapshots the current parameters of a live model (benches, tests).
  static std::shared_ptr<const LoadedModel> from_model(
      const ModelSpec& spec, models::Autoencoder& model);

  const ModelSpec& spec() const { return spec_; }
  std::size_t input_dim() const { return input_dim_; }
  std::size_t latent_dim() const { return latent_dim_; }
  bool is_generative() const { return generative_; }
  /// True when the spec's simulation regime is stochastic (trajectory or
  /// shot-sampling measurements).
  bool stochastic() const {
    return spec_.sim.backend != qsim::BackendKind::kStatevector;
  }

  /// Materialises a private mutable replica carrying this snapshot's
  /// parameters. Each worker thread owns its own replica; replicas of one
  /// snapshot are bit-identical.
  std::unique_ptr<models::Autoencoder> make_replica() const;

 private:
  LoadedModel() = default;

  ModelSpec spec_;
  std::vector<Matrix> params_;  // quantum parameters first, then classical
  std::size_t input_dim_ = 0;
  std::size_t latent_dim_ = 0;
  bool generative_ = false;
};

}  // namespace sqvae::serve
