#include "serve/protocol.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/parse.h"

namespace sqvae::serve {

namespace {

/// Minimal scanner over the protocol's JSON subset (see protocol.h).
class Scanner {
 public:
  explicit Scanner(const std::string& text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool peek_is(char c) {
    skip_ws();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

  bool string_value(std::string* out) {
    if (!eat('"')) return false;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') return false;  // escapes unsupported
      out->push_back(text_[pos_++]);
    }
    return pos_ < text_.size() && text_[pos_++] == '"';
  }

  bool number_value(double* out) {
    skip_ws();
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    *out = std::strtod(begin, &end);
    if (end == begin) return false;
    pos_ += static_cast<std::size_t>(end - begin);
    return true;
  }

  /// Full-range uint64 (seed/id): going through a double would corrupt
  /// values above 2^53 and overflow to UB at 2^64.
  bool uint_value(std::uint64_t* out) {
    skip_ws();
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return false;  // also rejects the sign strtoull would wrap around
    }
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(begin, &end, 10);
    if (end == begin || errno == ERANGE) return false;
    pos_ += static_cast<std::size_t>(end - begin);
    *out = v;
    return true;
  }

  bool array_value(std::vector<double>* out) {
    if (!eat('[')) return false;
    out->clear();
    if (eat(']')) return true;
    while (true) {
      double v = 0.0;
      // Non-finite payloads (strtod accepts "nan"/"inf", and overflow
      // yields inf) are rejected: they are not JSON, and echoing the
      // resulting NaN outputs would make the *response* invalid JSON too.
      if (!number_value(&v) || !std::isfinite(v)) return false;
      out->push_back(v);
      if (eat(']')) return true;
      if (!eat(',')) return false;
    }
  }

  /// Skips a value of any supported shape (for unknown keys).
  bool skip_value() {
    skip_ws();
    if (peek_is('"')) {
      std::string ignored;
      return string_value(&ignored);
    }
    if (peek_is('[')) {
      std::vector<double> ignored;
      return array_value(&ignored);
    }
    if (peek_is('t')) return literal("true");
    if (peek_is('f')) return literal("false");
    if (peek_is('n')) return literal("null");
    double ignored = 0.0;
    return number_value(&ignored);
  }

  bool literal(const char* word) {
    skip_ws();
    for (const char* p = word; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) return false;
      ++pos_;
    }
    return true;
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

/// Error strings quote the offending key ("expected ':' after \"op\""),
/// so they must be escaped or the error response itself is invalid JSON.
std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

bool blank(const std::string& line) {
  for (char c : line) {
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace

bool parse_request_line(const std::string& line, WireRequest* out,
                        std::string* error) {
  *out = WireRequest{};
  error->clear();
  if (blank(line)) return false;

  std::string format;
  Scanner scan(line);
  if (!scan.eat('{')) {
    *error = "request must be a {...} object";
    return false;
  }
  if (!scan.eat('}')) {
    while (true) {
      std::string key;
      if (!scan.string_value(&key)) {
        *error = "expected a \"key\"";
        return false;
      }
      if (!scan.eat(':')) {
        *error = "expected ':' after \"" + key + "\"";
        return false;
      }
      bool parsed = true;
      if (key == "op") {
        parsed = scan.string_value(&out->op);
      } else if (key == "model") {
        parsed = scan.string_value(&out->model);
      } else if (key == "seed") {
        parsed = scan.uint_value(&out->seed);
      } else if (key == "id") {
        parsed = scan.uint_value(&out->id);
        out->has_id = true;
      } else if (key == "x") {
        parsed = scan.array_value(&out->x);
      } else if (key == "format") {
        parsed = scan.string_value(&format);
      } else {
        parsed = scan.skip_value();
      }
      if (!parsed) {
        *error = "malformed value for \"" + key + "\"";
        return false;
      }
      if (scan.eat('}')) break;
      if (!scan.eat(',')) {
        *error = "expected ',' or '}'";
        return false;
      }
    }
  }
  if (!scan.at_end()) {
    *error = "trailing content after the request object";
    return false;
  }
  if (out->op.empty()) {
    *error = "missing \"op\"";
    return false;
  }
  if (out->op == "stats") {
    out->is_stats = true;
    // "format" selects the stats wire shape; it is ignored (skipped like
    // any unknown key) on inference ops.
    if (format == "prometheus") {
      out->stats_prometheus = true;
    } else if (!format.empty() && format != "json") {
      *error = "unknown stats format: " + format + " (json, prometheus)";
      return false;
    }
    return true;
  }
  if (!parse_endpoint(out->op, &out->endpoint)) {
    *error = "unknown op: " + out->op +
             " (encode, decode, reconstruct, latent_sample, stats)";
    return false;
  }
  return true;
}

std::string format_response(const WireRequest& request,
                            const InferenceResult& result) {
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "{\"ok\": " << (result.ok ? "true" : "false");
  if (request.has_id) os << ", \"id\": " << request.id;
  if (result.ok) {
    os << ", \"op\": \"" << request.op << "\", \"y\": [";
    for (std::size_t i = 0; i < result.values.size(); ++i) {
      if (i > 0) os << ", ";
      os << result.values[i];
    }
    os << "]}";
  } else {
    os << ", \"error\": \"" << escape_json(result.error) << "\"}";
  }
  return os.str();
}

std::string format_parse_error(const std::string& error) {
  return "{\"ok\": false, \"error\": \"" + escape_json(error) + "\"}";
}

}  // namespace sqvae::serve
