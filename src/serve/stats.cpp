#include "serve/stats.h"

#include <cstdio>

namespace sqvae::serve {

double LatencyHistogram::percentile_us(double q) const {
  // Snapshot the buckets once; concurrent recording keeps each bucket
  // individually exact, so the estimate is a valid point-in-time view.
  std::uint64_t counts[kBuckets];
  std::uint64_t total = 0;
  for (int b = 0; b < kBuckets; ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
    total += counts[b];
  }
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;

  // The q-th sample (1-based rank) and the bucket that holds it.
  const double rank = q * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    if (counts[b] == 0) continue;
    const double before = static_cast<double>(seen);
    seen += counts[b];
    if (static_cast<double>(seen) < rank) continue;
    // Linear interpolation inside [2^(b-1), 2^b) (bucket 0 = [0, 1]).
    const double lo = b == 0 ? 0.0 : static_cast<double>(1ull << (b - 1));
    const double hi = static_cast<double>(1ull << b);
    const double frac =
        counts[b] == 0 ? 0.0
                       : (rank - before) / static_cast<double>(counts[b]);
    return lo + (hi - lo) * (frac < 0.0 ? 0.0 : frac > 1.0 ? 1.0 : frac);
  }
  return static_cast<double>(1ull << (kBuckets - 1));
}

std::string render_stats_response(const ServerStats& stats,
                                  std::uint64_t queue_depth,
                                  std::uint64_t registry_generation,
                                  bool has_id, std::uint64_t id) {
  const auto v = [](const std::atomic<std::uint64_t>& a) {
    return static_cast<unsigned long long>(a.load(std::memory_order_relaxed));
  };
  char buf[1536];
  int n = std::snprintf(buf, sizeof(buf), "{\"ok\": true, ");
  if (has_id) {
    n += std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                       "\"id\": %llu, ", static_cast<unsigned long long>(id));
  }
  n += std::snprintf(
      buf + n, sizeof(buf) - static_cast<std::size_t>(n),
      "\"op\": \"stats\", "
      "\"connections_accepted\": %llu, \"connections_active\": %llu, "
      "\"connections_closed\": %llu, \"connections_reset\": %llu, "
      "\"connections_shed\": %llu, \"connections_idle_closed\": %llu, "
      "\"requests_total\": %llu, \"responses_total\": %llu, "
      "\"protocol_errors\": %llu, \"requests_shed\": %llu, "
      "\"cache_hits\": %llu, \"cache_misses\": %llu, "
      "\"cache_inflight_joined\": %llu, \"cache_evictions\": %llu, "
      "\"cache_bytes\": %llu, \"cache_entries\": %llu, "
      "\"queue_depth\": %llu, \"registry_generation\": %llu, "
      "\"latency_count\": %llu, \"latency_p50_us\": %.1f, "
      "\"latency_p99_us\": %.1f}",
      v(stats.connections_accepted), v(stats.connections_active),
      v(stats.connections_closed), v(stats.connections_reset),
      v(stats.connections_shed), v(stats.connections_idle_closed),
      v(stats.requests_total), v(stats.responses_total),
      v(stats.protocol_errors), v(stats.requests_shed), v(stats.cache_hits),
      v(stats.cache_misses), v(stats.cache_inflight_joined),
      v(stats.cache_evictions), v(stats.cache_bytes), v(stats.cache_entries),
      static_cast<unsigned long long>(queue_depth),
      static_cast<unsigned long long>(registry_generation),
      static_cast<unsigned long long>(stats.latency.count()),
      stats.latency.percentile_us(0.50), stats.latency.percentile_us(0.99));
  return std::string(buf, static_cast<std::size_t>(n));
}

}  // namespace sqvae::serve
