#include "serve/stats.h"

#include <cstdio>
#include <sstream>

#include "serve/batch_queue.h"

namespace sqvae::serve {

static_assert(static_cast<int>(Endpoint::kLatentSample) + 1 == kStatsEndpoints,
              "kStatsEndpoints must mirror the Endpoint enum");

const char* stats_endpoint_name(int e) {
  return endpoint_name(static_cast<Endpoint>(e));
}

double LatencyHistogram::percentile_us(double q) const {
  // Snapshot the buckets once; concurrent recording keeps each bucket
  // individually exact, so the estimate is a valid point-in-time view.
  std::uint64_t counts[kBuckets];
  std::uint64_t total = 0;
  for (int b = 0; b < kBuckets; ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
    total += counts[b];
  }
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;

  // The q-th sample (1-based rank) and the bucket that holds it.
  const double rank = q * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    if (counts[b] == 0) continue;
    const double before = static_cast<double>(seen);
    seen += counts[b];
    if (static_cast<double>(seen) < rank) continue;
    // Linear interpolation inside the bucket's true bounds: bucket 0
    // holds [0, 2)us, bucket b >= 1 holds [2^b, 2^(b+1))us. Every sample
    // in the bucket lies inside [lo, hi), so the estimate is off by at
    // most hi - lo — one bucket width, a factor of 2.
    const double lo = b == 0 ? 0.0 : static_cast<double>(1ull << b);
    const double hi = static_cast<double>(1ull << (b + 1));
    const double frac =
        counts[b] == 0 ? 0.0
                       : (rank - before) / static_cast<double>(counts[b]);
    return lo + (hi - lo) * (frac < 0.0 ? 0.0 : frac > 1.0 ? 1.0 : frac);
  }
  return static_cast<double>(bucket_upper_us(kBuckets - 1));
}

std::string render_stats_response(const ServerStats& stats,
                                  std::uint64_t queue_depth,
                                  std::uint64_t registry_generation,
                                  bool has_id, std::uint64_t id) {
  const auto v = [](const std::atomic<std::uint64_t>& a) {
    return static_cast<unsigned long long>(a.load(std::memory_order_relaxed));
  };
  std::ostringstream os;
  os << "{\"ok\": true, ";
  if (has_id) os << "\"id\": " << id << ", ";
  os << "\"op\": \"stats\", "
     << "\"connections_accepted\": " << v(stats.connections_accepted)
     << ", \"connections_active\": " << v(stats.connections_active)
     << ", \"connections_closed\": " << v(stats.connections_closed)
     << ", \"connections_reset\": " << v(stats.connections_reset)
     << ", \"connections_shed\": " << v(stats.connections_shed)
     << ", \"connections_idle_closed\": " << v(stats.connections_idle_closed)
     << ", \"requests_total\": " << v(stats.requests_total)
     << ", \"responses_total\": " << v(stats.responses_total)
     << ", \"protocol_errors\": " << v(stats.protocol_errors)
     << ", \"requests_shed\": " << v(stats.requests_shed)
     << ", \"cache_hits\": " << v(stats.cache_hits)
     << ", \"cache_misses\": " << v(stats.cache_misses)
     << ", \"cache_inflight_joined\": " << v(stats.cache_inflight_joined)
     << ", \"cache_evictions\": " << v(stats.cache_evictions)
     << ", \"cache_bytes\": " << v(stats.cache_bytes)
     << ", \"cache_entries\": " << v(stats.cache_entries)
     << ", \"queue_depth\": " << queue_depth
     << ", \"registry_generation\": " << registry_generation;
  // Percentiles are <= 2^40 so ~14 chars, but %.1f's worst case for an
  // arbitrary double is ~310 — size for the compiler's view of it.
  char buf[384];
  std::snprintf(buf, sizeof(buf),
                ", \"latency_count\": %llu, \"latency_p50_us\": %.1f, "
                "\"latency_p99_us\": %.1f",
                static_cast<unsigned long long>(stats.latency.count()),
                stats.latency.percentile_us(0.50),
                stats.latency.percentile_us(0.99));
  os << buf;
  for (int e = 0; e < kStatsEndpoints; ++e) {
    const EndpointStats& ep = stats.endpoint[e];
    const char* name = stats_endpoint_name(e);
    os << ", \"" << name << "_requests\": " << v(ep.requests) << ", \""
       << name << "_errors\": " << v(ep.errors);
    std::snprintf(buf, sizeof(buf), ", \"%s_p50_us\": %.1f", name,
                  ep.latency.percentile_us(0.50));
    os << buf;
    std::snprintf(buf, sizeof(buf), ", \"%s_p99_us\": %.1f", name,
                  ep.latency.percentile_us(0.99));
    os << buf;
  }
  os << "}";
  return os.str();
}

std::string prometheus_escape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

namespace {

/// Appends one metric family: HELP, TYPE, then one sample per (extra
/// label set, value) pair the caller emits via the returned helper.
void family(std::string* out, const char* name, const char* type,
            const char* help) {
  *out += "# HELP ";
  *out += name;
  *out += ' ';
  *out += help;
  *out += "\n# TYPE ";
  *out += name;
  *out += ' ';
  *out += type;
  *out += '\n';
}

void sample(std::string* out, const char* name, const std::string& labels,
            double value) {
  char buf[64];
  // %.17g round-trips doubles; counters are integers and print as such.
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  *out += name;
  if (!labels.empty()) {
    *out += '{';
    *out += labels;
    *out += '}';
  }
  *out += ' ';
  *out += buf;
  *out += '\n';
}

}  // namespace

std::string render_stats_prometheus(const ServerStats& stats,
                                    std::uint64_t queue_depth,
                                    std::uint64_t registry_generation,
                                    int shard) {
  const auto v = [](const std::atomic<std::uint64_t>& a) {
    return static_cast<double>(a.load(std::memory_order_relaxed));
  };
  const std::string shard_label = "shard=\"" + std::to_string(shard) + "\"";

  std::string out;
  out.reserve(8192);

  struct Counter {
    const char* name;
    const char* type;
    const char* help;
    double value;
  };
  const Counter counters[] = {
      {"sqvae_connections_accepted_total", "counter",
       "Connections accepted by the event loop.",
       v(stats.connections_accepted)},
      {"sqvae_connections_active", "gauge", "Currently open connections.",
       v(stats.connections_active)},
      {"sqvae_connections_closed_total", "counter", "Connections closed.",
       v(stats.connections_closed)},
      {"sqvae_connections_reset_total", "counter",
       "Connections torn down because the peer died mid-stream.",
       v(stats.connections_reset)},
      {"sqvae_connections_shed_total", "counter",
       "Connections refused by the --max_conns admission limit.",
       v(stats.connections_shed)},
      {"sqvae_connections_idle_closed_total", "counter",
       "Connections closed by the --idle_ms timeout.",
       v(stats.connections_idle_closed)},
      {"sqvae_requests_total", "counter", "Request lines received.",
       v(stats.requests_total)},
      {"sqvae_responses_total", "counter", "Response lines sent.",
       v(stats.responses_total)},
      {"sqvae_protocol_errors_total", "counter",
       "Request lines that failed to parse.", v(stats.protocol_errors)},
      {"sqvae_requests_shed_total", "counter",
       "Requests refused by queue load shedding.", v(stats.requests_shed)},
      {"sqvae_cache_hits_total", "counter", "Response cache hits.",
       v(stats.cache_hits)},
      {"sqvae_cache_misses_total", "counter", "Response cache misses.",
       v(stats.cache_misses)},
      {"sqvae_cache_inflight_joined_total", "counter",
       "Requests that joined an identical in-flight computation.",
       v(stats.cache_inflight_joined)},
      {"sqvae_cache_evictions_total", "counter", "Response cache evictions.",
       v(stats.cache_evictions)},
      {"sqvae_cache_bytes", "gauge", "Response cache resident bytes.",
       v(stats.cache_bytes)},
      {"sqvae_cache_entries", "gauge", "Response cache resident entries.",
       v(stats.cache_entries)},
      {"sqvae_queue_depth", "gauge", "Batch queue depth at scrape time.",
       static_cast<double>(queue_depth)},
      {"sqvae_model_generation", "gauge",
       "Registry generation of the default model (bumps on rollout).",
       static_cast<double>(registry_generation)},
  };
  for (const Counter& c : counters) {
    family(&out, c.name, c.type, c.help);
    sample(&out, c.name, shard_label, c.value);
  }

  family(&out, "sqvae_endpoint_requests_total", "counter",
         "Requests received, by endpoint.");
  for (int e = 0; e < kStatsEndpoints; ++e) {
    const std::string labels =
        shard_label + ",endpoint=\"" +
        prometheus_escape_label(stats_endpoint_name(e)) + "\"";
    sample(&out, "sqvae_endpoint_requests_total", labels,
           v(stats.endpoint[e].requests));
  }
  family(&out, "sqvae_endpoint_errors_total", "counter",
         "Non-ok responses, by endpoint.");
  for (int e = 0; e < kStatsEndpoints; ++e) {
    const std::string labels =
        shard_label + ",endpoint=\"" +
        prometheus_escape_label(stats_endpoint_name(e)) + "\"";
    sample(&out, "sqvae_endpoint_errors_total", labels,
           v(stats.endpoint[e].errors));
  }

  // Latency histograms: cumulative le buckets in seconds. The le bounds
  // are the histogram's true inclusive bounds (bucket_upper_us), so a
  // bucket's count is exactly the number of requests at or under its
  // bound — honest buckets, no interpolation on this path.
  family(&out, "sqvae_request_latency_seconds", "histogram",
         "Request wall time from parse to response ready, by endpoint.");
  for (int e = 0; e < kStatsEndpoints; ++e) {
    const LatencyHistogram& h = stats.endpoint[e].latency;
    const std::string labels =
        shard_label + ",endpoint=\"" +
        prometheus_escape_label(stats_endpoint_name(e)) + "\"";
    // One bucket snapshot feeds the cumulative series, the +Inf bucket,
    // and _count: deriving +Inf from the separate count() atomic could
    // momentarily disagree with the bucket sums under concurrent
    // recording and break the validator's monotonicity check.
    std::uint64_t cumulative = 0;
    for (int b = 0; b < LatencyHistogram::kBuckets - 1; ++b) {
      cumulative += h.bucket_count(b);
      char le[48];
      std::snprintf(le, sizeof(le), "%.17g",
                    static_cast<double>(LatencyHistogram::bucket_upper_us(b)) /
                        1e6);
      sample(&out, "sqvae_request_latency_seconds_bucket",
             labels + ",le=\"" + le + "\"",
             static_cast<double>(cumulative));
    }
    cumulative += h.bucket_count(LatencyHistogram::kBuckets - 1);
    sample(&out, "sqvae_request_latency_seconds_bucket",
           labels + ",le=\"+Inf\"", static_cast<double>(cumulative));
    sample(&out, "sqvae_request_latency_seconds_sum", labels,
           static_cast<double>(h.sum_us()) / 1e6);
    sample(&out, "sqvae_request_latency_seconds_count", labels,
           static_cast<double>(cumulative));
  }

  // Comment terminator: line-protocol clients reading the in-band
  // variant stop here; Prometheus parsers ignore comments.
  out += "# EOF";
  return out;
}

}  // namespace sqvae::serve
