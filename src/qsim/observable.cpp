#include "qsim/observable.h"

#include <cassert>
#include <cstddef>

namespace sqvae::qsim {

std::vector<double> z_diagonal(int num_qubits, int qubit) {
  assert(qubit >= 0 && qubit < num_qubits);
  const std::size_t dim = std::size_t{1} << num_qubits;
  const std::size_t bit = std::size_t{1} << qubit;
  std::vector<double> d(dim);
  for (std::size_t i = 0; i < dim; ++i) d[i] = (i & bit) ? -1.0 : 1.0;
  return d;
}

std::vector<double> weighted_z_diagonal(int num_qubits,
                                        const std::vector<double>& weights) {
  assert(static_cast<int>(weights.size()) == num_qubits);
  const std::size_t dim = std::size_t{1} << num_qubits;
  std::vector<double> d(dim, 0.0);
  for (std::size_t i = 0; i < dim; ++i) {
    double s = 0.0;
    for (int q = 0; q < num_qubits; ++q) {
      s += (i & (std::size_t{1} << q)) ? -weights[static_cast<std::size_t>(q)]
                                       : weights[static_cast<std::size_t>(q)];
    }
    d[i] = s;
  }
  return d;
}

std::vector<double> probability_vjp_diagonal(std::vector<double> cotangent) {
  return cotangent;
}

}  // namespace sqvae::qsim
