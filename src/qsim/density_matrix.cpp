#include "qsim/density_matrix.h"

#include <cassert>

namespace sqvae::qsim {

DensityMatrix::DensityMatrix(int num_qubits)
    : num_qubits_(num_qubits), dim_(std::size_t{1} << num_qubits) {
  assert(num_qubits >= 1 && num_qubits <= 12);
  data_.assign(dim_ * dim_, cplx{0.0, 0.0});
  data_[0] = cplx{1.0, 0.0};
}

DensityMatrix DensityMatrix::from_pure(const Statevector& psi) {
  DensityMatrix rho(psi.num_qubits());
  for (std::size_t r = 0; r < rho.dim_; ++r) {
    for (std::size_t c = 0; c < rho.dim_; ++c) {
      rho.at(r, c) = psi[r] * std::conj(psi[c]);
    }
  }
  return rho;
}

void DensityMatrix::apply_single(const Mat2& u, int target) {
  assert(target >= 0 && target < num_qubits_);
  const std::size_t bit = std::size_t{1} << target;
  // Left multiply: rho <- U rho (acts on the row index).
  for (std::size_t col = 0; col < dim_; ++col) {
    for (std::size_t r = 0; r < dim_; ++r) {
      if (r & bit) continue;
      const cplx a = at(r, col);
      const cplx b = at(r | bit, col);
      at(r, col) = u[0] * a + u[1] * b;
      at(r | bit, col) = u[2] * a + u[3] * b;
    }
  }
  // Right multiply: rho <- rho U^dag (acts on the column index with U*).
  for (std::size_t row = 0; row < dim_; ++row) {
    for (std::size_t c = 0; c < dim_; ++c) {
      if (c & bit) continue;
      const cplx a = at(row, c);
      const cplx b = at(row, c | bit);
      at(row, c) = std::conj(u[0]) * a + std::conj(u[1]) * b;
      at(row, c | bit) = std::conj(u[2]) * a + std::conj(u[3]) * b;
    }
  }
}

void DensityMatrix::apply_controlled_single(const Mat2& u, int control,
                                            int target) {
  assert(control != target);
  const std::size_t tbit = std::size_t{1} << target;
  const std::size_t cbit = std::size_t{1} << control;
  for (std::size_t col = 0; col < dim_; ++col) {
    for (std::size_t r = 0; r < dim_; ++r) {
      if ((r & cbit) == 0 || (r & tbit) != 0) continue;
      const cplx a = at(r, col);
      const cplx b = at(r | tbit, col);
      at(r, col) = u[0] * a + u[1] * b;
      at(r | tbit, col) = u[2] * a + u[3] * b;
    }
  }
  for (std::size_t row = 0; row < dim_; ++row) {
    for (std::size_t c = 0; c < dim_; ++c) {
      if ((c & cbit) == 0 || (c & tbit) != 0) continue;
      const cplx a = at(row, c);
      const cplx b = at(row, c | tbit);
      at(row, c) = std::conj(u[0]) * a + std::conj(u[1]) * b;
      at(row, c | tbit) = std::conj(u[2]) * a + std::conj(u[3]) * b;
    }
  }
}

void DensityMatrix::apply_op(const GateOp& op,
                             const std::vector<double>& params) {
  const double theta = resolve_param(op, params);
  switch (op.kind) {
    case GateKind::kCNOT:
      apply_controlled_single(gate_matrix(GateKind::kX, 0.0), op.control,
                              op.target);
      return;
    case GateKind::kCZ:
      apply_controlled_single(gate_matrix(GateKind::kZ, 0.0), op.control,
                              op.target);
      return;
    case GateKind::kSWAP:
      // SWAP = CNOT(a,b) CNOT(b,a) CNOT(a,b).
      apply_controlled_single(gate_matrix(GateKind::kX, 0.0), op.control,
                              op.target);
      apply_controlled_single(gate_matrix(GateKind::kX, 0.0), op.target,
                              op.control);
      apply_controlled_single(gate_matrix(GateKind::kX, 0.0), op.control,
                              op.target);
      return;
    case GateKind::kCRX:
    case GateKind::kCRY:
    case GateKind::kCRZ:
      apply_controlled_single(gate_matrix(op.kind, theta), op.control,
                              op.target);
      return;
    default:
      apply_single(gate_matrix(op.kind, theta), op.target);
      return;
  }
}

void DensityMatrix::apply_depolarizing(int target, double p) {
  if (p <= 0.0) return;
  // rho -> (1-p) rho + (p/3) (X rho X + Y rho Y + Z rho Z).
  DensityMatrix x = *this;
  x.apply_single(gate_matrix(GateKind::kX, 0.0), target);
  DensityMatrix y = *this;
  y.apply_single(gate_matrix(GateKind::kY, 0.0), target);
  DensityMatrix z = *this;
  z.apply_single(gate_matrix(GateKind::kZ, 0.0), target);
  const double keep = 1.0 - p;
  const double mix = p / 3.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] = keep * data_[i] +
               mix * (x.data_[i] + y.data_[i] + z.data_[i]);
  }
}

double DensityMatrix::trace() const {
  double t = 0.0;
  for (std::size_t i = 0; i < dim_; ++i) t += at(i, i).real();
  return t;
}

double DensityMatrix::purity() const {
  // Tr(rho^2) = sum_{ij} rho_ij rho_ji = sum_{ij} |rho_ij|^2 (Hermitian).
  double p = 0.0;
  for (const cplx& v : data_) p += std::norm(v);
  return p;
}

double DensityMatrix::expectation_z(int qubit) const {
  const std::size_t bit = std::size_t{1} << qubit;
  double e = 0.0;
  for (std::size_t i = 0; i < dim_; ++i) {
    e += ((i & bit) ? -1.0 : 1.0) * at(i, i).real();
  }
  return e;
}

std::vector<double> DensityMatrix::probabilities() const {
  std::vector<double> p(dim_);
  for (std::size_t i = 0; i < dim_; ++i) p[i] = at(i, i).real();
  return p;
}

double DensityMatrix::expectation_diag(const std::vector<double>& diag) const {
  assert(diag.size() == dim_);
  double e = 0.0;
  for (std::size_t i = 0; i < dim_; ++i) e += diag[i] * at(i, i).real();
  return e;
}

DensityMatrix run_density(const Circuit& circuit,
                          const std::vector<double>& params,
                          const NoiseModel& noise) {
  DensityMatrix rho(circuit.num_qubits());
  for (const GateOp& op : circuit.ops()) {
    rho.apply_op(op, params);
    rho.apply_depolarizing(op.target, noise.gate_error);
    if (op.control >= 0) {
      rho.apply_depolarizing(op.control, noise.gate_error);
    }
  }
  return rho;
}

}  // namespace sqvae::qsim
