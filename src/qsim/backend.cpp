#include "qsim/backend.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>

#include "common/rng.h"
#include "qsim/kernels.h"

namespace sqvae::qsim {

namespace backend_detail {

namespace {
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}
}  // namespace

std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t call,
                          std::uint64_t sample, std::uint64_t draw) {
  // Chained avalanches: each input fully diffuses before the next folds in,
  // so (seed, call, sample, draw) tuples map to well-separated streams.
  std::uint64_t s = splitmix64(seed);
  s = splitmix64(s ^ call);
  s = splitmix64(s ^ sample);
  return splitmix64(s ^ draw);
}

}  // namespace backend_detail

SimulationOptions derive_layer_options(const SimulationOptions& options,
                                       std::uint64_t layer_index) {
  SimulationOptions out = options;
  out.seed = backend_detail::derive_seed(options.seed, 0, layer_index, 0);
  return out;
}

namespace {

using backend_detail::derive_seed;

/// Writes the measurement (per-qubit <Z> or basis probabilities) into a
/// caller-owned row — the hot-loop variant, so per-trajectory measurements
/// never allocate. Runs through the size-aware kernel layer, like the
/// trajectory replay itself (every apply_* above goes through
/// Statevector and therefore kernels::table_for(): serial inside the
/// batch-parallel loops, amplitude-parallel for large single states).
void measure_into(const Statevector& state, bool probabilities, double* row) {
  const std::size_t dim = state.dim();
  const cplx* amps = state.amplitudes().data();
  if (probabilities) {
    kernels::table_for(dim).probabilities(amps, dim, row);
    return;
  }
  const int n = state.num_qubits();
  for (int q = 0; q < n; ++q) {
    row[q] = kernels::table_for(dim).expectation_z(amps, dim, q);
  }
}

std::vector<double> measure_row(const Statevector& state, bool probabilities) {
  std::vector<double> row(probabilities
                              ? state.dim()
                              : static_cast<std::size_t>(state.num_qubits()));
  measure_into(state, probabilities, row.data());
  return row;
}

// ---- trajectory machinery -------------------------------------------------

/// Flat list of noise-insertion points: after op i, first its target, then
/// (for two-qubit gates) its control — the same order as run_noisy().
struct NoiseLocations {
  std::vector<int> op_index;
  std::vector<int> qubit;

  explicit NoiseLocations(const std::vector<GateOp>& ops) {
    op_index.reserve(2 * ops.size());
    qubit.reserve(2 * ops.size());
    for (std::size_t i = 0; i < ops.size(); ++i) {
      op_index.push_back(static_cast<int>(i));
      qubit.push_back(ops[i].target);
      if (ops[i].control >= 0) {
        op_index.push_back(static_cast<int>(i));
        qubit.push_back(ops[i].control);
      }
    }
  }

  std::size_t size() const { return op_index.size(); }
};

/// First location index >= `start` where an error fires, or `count` when the
/// rest of the circuit stays clean. Geometric gap-sampling: one uniform draw
/// per error event instead of one Bernoulli per location, identical in
/// distribution to independent Bernoulli(p) at every location.
std::size_t next_error_location(sqvae::Rng& rng, double p, std::size_t start,
                                std::size_t count) {
  if (p <= 0.0 || start >= count) return count;
  if (p >= 1.0) return start;
  const double u = rng.uniform();  // [0, 1)
  // P(skip = k) = (1-p)^k p  <=>  skip = floor(log(1-u) / log(1-p)).
  const double skip = std::floor(std::log1p(-u) / std::log1p(-p));
  if (!(skip < static_cast<double>(count - start))) return count;
  return start + static_cast<std::size_t>(skip);
}

/// Applies one op with its pre-bound matrix (no fusion).
void apply_bound_op(Statevector& state, const GateOp& op, const Mat2& m) {
  switch (op.kind) {
    case GateKind::kCNOT:
      state.apply_cnot(op.control, op.target);
      break;
    case GateKind::kCZ:
      state.apply_cz(op.control, op.target);
      break;
    case GateKind::kSWAP:
      state.apply_swap(op.control, op.target);
      break;
    case GateKind::kCRX:
    case GateKind::kCRY:
    case GateKind::kCRZ:
      state.apply_controlled_single(m, op.control, op.target);
      break;
    default:
      state.apply_single(m, op.target);
      break;
  }
}

/// Run-time re-fusion of single-qubit gates around sampled error
/// insertions: single-qubit matrices accumulate per wire and are applied in
/// one kernel call when a two-qubit gate — or a Pauli error — touches the
/// wire. This recovers the executor's compile-time fusion win on the
/// stochastic path, where fusion boundaries differ per trajectory.
class LazyFuser {
 public:
  explicit LazyFuser(int num_qubits)
      : pending_(static_cast<std::size_t>(num_qubits)),
        has_(static_cast<std::size_t>(num_qubits), 0) {}

  void reset() { std::fill(has_.begin(), has_.end(), 0); }

  void push(int wire, const Mat2& m) {
    const std::size_t w = static_cast<std::size_t>(wire);
    pending_[w] = has_[w] ? matmul2(m, pending_[w]) : m;
    has_[w] = 1;
  }

  void flush(Statevector& state, int wire) {
    const std::size_t w = static_cast<std::size_t>(wire);
    if (!has_[w]) return;
    state.apply_single(pending_[w], wire);
    has_[w] = 0;
  }

  void flush_all(Statevector& state) {
    for (std::size_t w = 0; w < has_.size(); ++w) {
      flush(state, static_cast<int>(w));
    }
  }

 private:
  std::vector<Mat2> pending_;
  std::vector<char> has_;
};

void fused_apply(Statevector& state, LazyFuser& fuser, const GateOp& op,
                 const Mat2& m) {
  switch (op.kind) {
    case GateKind::kCNOT:
    case GateKind::kCZ:
    case GateKind::kSWAP:
    case GateKind::kCRX:
    case GateKind::kCRY:
    case GateKind::kCRZ:
      fuser.flush(state, op.control);
      fuser.flush(state, op.target);
      apply_bound_op(state, op, m);
      break;
    default:
      fuser.push(op.target, m);
      break;
  }
}

/// Per-sample trajectory engine. A noiseless pass caches a *bounded* set of
/// intermediate states (at most kMaxSnapshots, one every `stride` gates) so
/// a trajectory whose first sampled error follows gate i replays only the
/// gates from the nearest snapshot at or before i — the bound keeps total
/// memory O(2^n) with a fixed constant instead of O(gates * 2^n), at the
/// cost of re-applying at most stride-1 gates per error trajectory.
class TrajectorySample {
 public:
  /// Snapshot-count cap: 64 statevectors is ~4 MB at 12 qubits, and with
  /// realistic circuit depths the replay overhead stays under a couple of
  /// gates per trajectory.
  static constexpr std::size_t kMaxSnapshots = 64;

  TrajectorySample(const CircuitExecutor& exec,
                   const std::vector<double>& params,
                   const Statevector& initial)
      : ops_(exec.ops()),
        locations_(ops_),
        initial_(initial),
        stride_((ops_.size() + kMaxSnapshots - 1) / kMaxSnapshots),
        noiseless_final_(initial) {
    exec.bind_ops(params, op_matrices_);
    if (stride_ == 0) stride_ = 1;
    snapshots_.reserve(ops_.size() / stride_ + 1);
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      apply_bound_op(noiseless_final_, ops_[i], op_matrices_[i]);
      if ((i + 1) % stride_ == 0) snapshots_.push_back(noiseless_final_);
    }
  }

  const Statevector& noiseless_final() const { return noiseless_final_; }

  /// One trajectory's final pure state. `fuser` and `scratch` are reusable
  /// per-thread buffers. Returns nullptr when no error fired (caller should
  /// use the cached noiseless measurement).
  const Statevector* run(double gate_error, sqvae::Rng& rng, LazyFuser& fuser,
                         Statevector& scratch) const {
    const std::size_t count = locations_.size();
    std::size_t loc = next_error_location(rng, gate_error, 0, count);
    if (loc >= count) return nullptr;

    // All locations before `loc` stayed clean, so resume from the nearest
    // noiseless snapshot at or before the first error's gate: snapshot j
    // (if any) holds the state after op (j+1)*stride - 1.
    const std::size_t first_op =
        static_cast<std::size_t>(locations_.op_index[loc]);
    const std::size_t strides_done = (first_op + 1) / stride_;
    scratch = strides_done == 0 ? initial_ : snapshots_[strides_done - 1];
    std::size_t next_op = strides_done * stride_;

    fuser.reset();
    while (loc < count) {
      const std::size_t error_op =
          static_cast<std::size_t>(locations_.op_index[loc]);
      for (std::size_t i = next_op; i <= error_op; ++i) {
        fused_apply(scratch, fuser, ops_[i], op_matrices_[i]);
      }
      next_op = error_op + 1;
      fuser.flush(scratch, locations_.qubit[loc]);
      scratch.apply_single(random_pauli(rng), locations_.qubit[loc]);
      loc = next_error_location(rng, gate_error, loc + 1, count);
    }
    for (std::size_t i = next_op; i < ops_.size(); ++i) {
      fused_apply(scratch, fuser, ops_[i], op_matrices_[i]);
    }
    fuser.flush_all(scratch);
    return &scratch;
  }

 private:
  const std::vector<GateOp>& ops_;
  NoiseLocations locations_;
  Statevector initial_;
  std::size_t stride_;
  std::vector<Mat2> op_matrices_;
  std::vector<Statevector> snapshots_;
  Statevector noiseless_final_;
};

/// Trajectories per reduction chunk: the per-trajectory row buffer is
/// bounded at kChunk * 2^n doubles (1 MB at 9 qubits in probabilities
/// mode), keeping backend memory O(2^n) with a fixed constant while the
/// chunk is still wide enough to feed every OpenMP thread.
constexpr std::size_t kTrajectoryChunk = 256;

/// Runs trajectories [first, first + count) for one sample and fills
/// `rows` (count x row_size). OpenMP-parallel over the chunk; deterministic
/// across thread counts because every trajectory owns a derived RNG stream
/// (keyed by its global index) and its own output row.
void run_trajectory_chunk(const TrajectorySample& sample,
                          const SimulationOptions& options,
                          std::uint64_t call, std::uint64_t sample_index,
                          bool probabilities,
                          const std::vector<double>& noiseless,
                          std::size_t first, std::size_t count,
                          std::vector<double>& rows, std::size_t row_size) {
  rows.resize(count * row_size);
  const std::int64_t n = static_cast<std::int64_t>(count);
  // Workload-shape switch (mirrors CircuitExecutor::run_batch): large
  // statevectors hand the team to the amplitude-parallel kernels instead
  // of the per-trajectory loop.
  const bool amp_par =
      kernels::use_amplitude_parallel(sample.noiseless_final().dim());
#pragma omp parallel if (!amp_par)
  {
    LazyFuser fuser(sample.noiseless_final().num_qubits());
    Statevector scratch(sample.noiseless_final().num_qubits());
#pragma omp for schedule(static)
    for (std::int64_t t = 0; t < n; ++t) {
      sqvae::Rng rng(
          derive_seed(options.seed, call, sample_index,
                      static_cast<std::uint64_t>(first) +
                          static_cast<std::uint64_t>(t)));
      const Statevector* final_state =
          sample.run(options.noise.gate_error, rng, fuser, scratch);
      double* row = rows.data() + static_cast<std::size_t>(t) * row_size;
      if (final_state == nullptr) {
        for (std::size_t i = 0; i < row_size; ++i) row[i] = noiseless[i];
      } else {
        measure_into(*final_state, probabilities, row);
      }
    }
  }
}

/// Mean (and optionally sum of squares, for standard errors) over all
/// trajectories of one sample, accumulated chunk by chunk in fixed
/// trajectory order — bit-identical to a full-buffer serial reduction, at
/// bounded memory.
std::vector<double> trajectory_mean(const TrajectorySample& sample,
                                    const SimulationOptions& options,
                                    std::uint64_t call,
                                    std::uint64_t sample_index,
                                    bool probabilities, std::size_t row_size,
                                    std::vector<double>& chunk_rows,
                                    std::vector<double>* sum_squares) {
  const std::vector<double> noiseless =
      measure_row(sample.noiseless_final(), probabilities);
  assert(noiseless.size() == row_size);
  std::vector<double> mean(row_size, 0.0);
  if (sum_squares != nullptr) sum_squares->assign(row_size, 0.0);
  for (std::size_t first = 0; first < options.shots;
       first += kTrajectoryChunk) {
    const std::size_t count =
        std::min(kTrajectoryChunk, options.shots - first);
    run_trajectory_chunk(sample, options, call, sample_index, probabilities,
                         noiseless, first, count, chunk_rows, row_size);
    for (std::size_t t = 0; t < count; ++t) {
      const double* row = chunk_rows.data() + t * row_size;
      for (std::size_t i = 0; i < row_size; ++i) {
        mean[i] += row[i];
        if (sum_squares != nullptr) (*sum_squares)[i] += row[i] * row[i];
      }
    }
  }
  for (double& v : mean) v /= static_cast<double>(options.shots);
  return mean;
}

// ---- shot sampling --------------------------------------------------------

/// Inclusive prefix sums of the basis-state probabilities; sampling then
/// costs O(log dim) per shot instead of the O(dim) inverse-CDF walk.
std::vector<double> cumulative_distribution(const Statevector& state) {
  std::vector<double> cdf(state.dim());
  double total = 0.0;
  for (std::size_t i = 0; i < state.dim(); ++i) {
    total += std::norm(state[i]);
    cdf[i] = total;
  }
  return cdf;
}

std::size_t sample_from_cdf(const std::vector<double>& cdf, sqvae::Rng& rng) {
  // Scale by the total mass so float round-off in the prefix sums cannot
  // push a draw past the final bucket.
  const double r = rng.uniform() * cdf.back();
  const auto it = std::upper_bound(cdf.begin(), cdf.end(), r);
  return it == cdf.end() ? cdf.size() - 1
                         : static_cast<std::size_t>(it - cdf.begin());
}

}  // namespace

// ---- SimulationBackend ----------------------------------------------------

std::vector<std::vector<double>> SimulationBackend::expectations_z_batch(
    const CircuitExecutor& exec,
    const std::vector<std::vector<double>>& params_batch,
    const std::vector<Statevector>& initials) {
  return expectations_z_batch_at(exec, params_batch, initials, next_call());
}

std::vector<std::vector<double>> SimulationBackend::probabilities_batch(
    const CircuitExecutor& exec,
    const std::vector<std::vector<double>>& params_batch,
    const std::vector<Statevector>& initials) {
  return probabilities_batch_at(exec, params_batch, initials, next_call());
}

std::vector<double> SimulationBackend::expectations_z(
    const CircuitExecutor& exec, const std::vector<double>& params) {
  const std::vector<Statevector> initials(1, Statevector(exec.num_qubits()));
  return expectations_z_batch(exec, {params}, initials)[0];
}

std::vector<double> SimulationBackend::probabilities(
    const CircuitExecutor& exec, const std::vector<double>& params) {
  const std::vector<Statevector> initials(1, Statevector(exec.num_qubits()));
  return probabilities_batch(exec, {params}, initials)[0];
}

std::unique_ptr<SimulationBackend> SimulationBackend::create(
    const SimulationOptions& options) {
  switch (options.backend) {
    case BackendKind::kTrajectory:
      return std::make_unique<TrajectoryBackend>(options);
    case BackendKind::kShotSampling:
      return std::make_unique<ShotSamplingBackend>(options);
    case BackendKind::kStatevector:
      break;
  }
  return std::make_unique<StatevectorBackend>();
}

// ---- StatevectorBackend ---------------------------------------------------

namespace {

std::vector<std::vector<double>> exact_measurements(
    const CircuitExecutor& exec,
    const std::vector<std::vector<double>>& params_batch,
    const std::vector<Statevector>& initials, bool probabilities) {
  assert(params_batch.size() == initials.size());
  std::vector<Statevector> states = initials;
  exec.run_batch(params_batch, states);
  std::vector<std::vector<double>> out(states.size());
  for (std::size_t i = 0; i < states.size(); ++i) {
    out[i] = measure_row(states[i], probabilities);
  }
  return out;
}

}  // namespace

std::vector<std::vector<double>> StatevectorBackend::expectations_z_batch_at(
    const CircuitExecutor& exec,
    const std::vector<std::vector<double>>& params_batch,
    const std::vector<Statevector>& initials, std::uint64_t) const {
  return exact_measurements(exec, params_batch, initials, false);
}

std::vector<std::vector<double>> StatevectorBackend::probabilities_batch_at(
    const CircuitExecutor& exec,
    const std::vector<std::vector<double>>& params_batch,
    const std::vector<Statevector>& initials, std::uint64_t) const {
  return exact_measurements(exec, params_batch, initials, true);
}

// ---- TrajectoryBackend ----------------------------------------------------

TrajectoryBackend::TrajectoryBackend(const SimulationOptions& options)
    : options_(options) {
  assert(options_.shots > 0 && "trajectory backend needs >= 1 trajectory");
}

namespace {

std::vector<std::vector<double>> trajectory_measurements(
    const CircuitExecutor& exec,
    const std::vector<std::vector<double>>& params_batch,
    const std::vector<Statevector>& initials, const SimulationOptions& options,
    std::uint64_t call, bool probabilities) {
  assert(params_batch.size() == initials.size());
  const std::size_t row_size =
      probabilities ? (std::size_t{1} << exec.num_qubits())
                    : static_cast<std::size_t>(exec.num_qubits());
  std::vector<std::vector<double>> out(params_batch.size());
  std::vector<double> chunk_rows;  // trajectory buffer, reused throughout
  for (std::size_t s = 0; s < params_batch.size(); ++s) {
    const TrajectorySample sample(exec, params_batch[s], initials[s]);
    out[s] = trajectory_mean(sample, options, call, s, probabilities,
                             row_size, chunk_rows, nullptr);
  }
  return out;
}

}  // namespace

std::vector<std::vector<double>> TrajectoryBackend::expectations_z_batch_at(
    const CircuitExecutor& exec,
    const std::vector<std::vector<double>>& params_batch,
    const std::vector<Statevector>& initials, std::uint64_t call) const {
  return trajectory_measurements(exec, params_batch, initials, options_, call,
                                 false);
}

std::vector<std::vector<double>> TrajectoryBackend::probabilities_batch_at(
    const CircuitExecutor& exec,
    const std::vector<std::vector<double>>& params_batch,
    const std::vector<Statevector>& initials, std::uint64_t call) const {
  return trajectory_measurements(exec, params_batch, initials, options_, call,
                                 true);
}

TrajectoryEstimate TrajectoryBackend::expectations_z_with_stats(
    const CircuitExecutor& exec, const std::vector<double>& params,
    const Statevector* initial) {
  const Statevector start =
      initial != nullptr ? *initial : Statevector(exec.num_qubits());
  const std::size_t n = static_cast<std::size_t>(exec.num_qubits());
  const double m = static_cast<double>(options_.shots);
  const TrajectorySample sample(exec, params, start);
  std::vector<double> chunk_rows;
  std::vector<double> sum_squares;

  TrajectoryEstimate estimate;
  estimate.mean = trajectory_mean(sample, options_, next_call(), 0, false, n,
                                  chunk_rows, &sum_squares);
  estimate.std_error.assign(n, 0.0);
  if (options_.shots > 1) {
    for (std::size_t q = 0; q < n; ++q) {
      // Sample variance from the accumulated first two moments; values
      // live in [-1, 1], so the cancellation error is ~ m * 1e-16 —
      // negligible against any variance the 3-sigma tests can resolve.
      const double var = std::max(
          0.0, (sum_squares[q] - m * estimate.mean[q] * estimate.mean[q]) /
                   (m - 1.0));
      estimate.std_error[q] = std::sqrt(var / m);
    }
  }
  return estimate;
}

// ---- ShotSamplingBackend --------------------------------------------------

ShotSamplingBackend::ShotSamplingBackend(const SimulationOptions& options)
    : options_(options) {
  assert(options_.shots > 0 && "shot backend needs >= 1 shot");
}

namespace {

std::vector<std::vector<double>> shot_measurements(
    const CircuitExecutor& exec,
    const std::vector<std::vector<double>>& params_batch,
    const std::vector<Statevector>& initials, const SimulationOptions& options,
    std::uint64_t call, bool probabilities) {
  assert(params_batch.size() == initials.size());
  // Exact states through the fused plan, then finite sampling on top.
  std::vector<Statevector> states = initials;
  exec.run_batch(params_batch, states);

  const std::size_t n = static_cast<std::size_t>(exec.num_qubits());
  const std::size_t dim = std::size_t{1} << exec.num_qubits();
  std::vector<std::vector<double>> out(states.size());
  const std::int64_t batch = static_cast<std::int64_t>(states.size());
  // Workload-shape switch: per-sample parallelism for small states; large
  // states run the sample loop serially so the O(dim) CDF build inside can
  // use the amplitude-parallel kernels.
  const bool amp_par = kernels::use_amplitude_parallel(dim);
#pragma omp parallel for schedule(static) if (!amp_par)
  for (std::int64_t i = 0; i < batch; ++i) {
    const std::size_t s = static_cast<std::size_t>(i);
    // One private stream per sample: shots are drawn serially within the
    // sample, so results do not depend on how samples map to threads.
    sqvae::Rng rng(derive_seed(options.seed, call, s, 0));
    const std::vector<double> cdf = cumulative_distribution(states[s]);
    std::vector<double>& row = out[s];
    row.assign(probabilities ? dim : n, 0.0);
    for (std::size_t shot = 0; shot < options.shots; ++shot) {
      const std::size_t outcome = sample_from_cdf(cdf, rng);
      if (probabilities) {
        row[outcome] += 1.0;
      } else {
        for (std::size_t q = 0; q < n; ++q) {
          row[q] += (outcome & (std::size_t{1} << q)) ? -1.0 : 1.0;
        }
      }
    }
    for (double& v : row) v /= static_cast<double>(options.shots);
  }
  return out;
}

}  // namespace

std::vector<std::vector<double>> ShotSamplingBackend::expectations_z_batch_at(
    const CircuitExecutor& exec,
    const std::vector<std::vector<double>>& params_batch,
    const std::vector<Statevector>& initials, std::uint64_t call) const {
  return shot_measurements(exec, params_batch, initials, options_, call,
                           false);
}

std::vector<std::vector<double>> ShotSamplingBackend::probabilities_batch_at(
    const CircuitExecutor& exec,
    const std::vector<std::vector<double>>& params_batch,
    const std::vector<Statevector>& initials, std::uint64_t call) const {
  return shot_measurements(exec, params_batch, initials, options_, call, true);
}

}  // namespace sqvae::qsim
