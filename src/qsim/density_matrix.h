// Dense density-matrix simulator.
//
// Exact mixed-state evolution for small registers (cost 4^n): the oracle
// against which the stochastic-trajectory noise model (noise.h) is
// validated. Supports unitary gates (rho -> U rho U^dag), the depolarizing
// channel, and the same diagonal measurements as the statevector engine.
// Production training never touches this class — it exists for
// correctness arguments and the noise ablation's exact reference column.
#pragma once

#include <vector>

#include "qsim/circuit.h"
#include "qsim/noise.h"
#include "qsim/statevector.h"

namespace sqvae::qsim {

class DensityMatrix {
 public:
  /// rho = |0...0><0...0| on num_qubits qubits. Requires num_qubits <= 12
  /// (4^12 complex entries is already 256 MiB).
  explicit DensityMatrix(int num_qubits);

  /// rho = |psi><psi|.
  static DensityMatrix from_pure(const Statevector& psi);

  int num_qubits() const { return num_qubits_; }
  std::size_t dim() const { return dim_; }

  cplx& at(std::size_t row, std::size_t col) { return data_[row * dim_ + col]; }
  const cplx& at(std::size_t row, std::size_t col) const {
    return data_[row * dim_ + col];
  }

  /// Applies a single-qubit unitary: rho -> U rho U^dag.
  void apply_single(const Mat2& u, int target);

  /// Controlled single-qubit unitary (control=|1> block).
  void apply_controlled_single(const Mat2& u, int control, int target);

  /// One gate op of the circuit IR.
  void apply_op(const GateOp& op, const std::vector<double>& params);

  /// Depolarizing channel on one qubit:
  /// rho -> (1-p) rho + (p/3)(X rho X + Y rho Y + Z rho Z).
  void apply_depolarizing(int target, double p);

  /// Tr(rho); 1 for any physical state.
  double trace() const;

  /// Tr(rho^2); 1 for pure states, 1/2^n for the maximally mixed state.
  double purity() const;

  /// Tr(rho Z_q).
  double expectation_z(int qubit) const;

  /// Diagonal of rho (basis-state probabilities).
  std::vector<double> probabilities() const;

  /// Tr(rho diag(d)).
  double expectation_diag(const std::vector<double>& diag) const;

 private:
  int num_qubits_;
  std::size_t dim_;
  std::vector<cplx> data_;  // row-major dim x dim
};

/// Runs the circuit on a density matrix with the exact channel equivalent
/// of NoiseModel: after every gate, each touched qubit passes through
/// rho -> (1-p) rho + (p/3)(X rho X + Y rho Y + Z rho Z) with
/// p = gate_error — by construction the average map of the trajectory
/// model in noise.h, so trajectory means must converge to this result.
DensityMatrix run_density(const Circuit& circuit,
                          const std::vector<double>& params,
                          const NoiseModel& noise);

}  // namespace sqvae::qsim
