#include "qsim/paramshift.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace sqvae::qsim {

namespace {

/// Runs the circuit with gate occurrence `op_index`'s angle overridden to
/// `theta` and returns <diag>.
double run_with_override(const Circuit& circuit,
                         const std::vector<double>& params,
                         const Statevector& initial,
                         const std::vector<double>& diag, std::size_t op_index,
                         double theta) {
  Statevector state = initial;
  const auto& ops = circuit.ops();
  for (std::size_t k = 0; k < ops.size(); ++k) {
    if (k == op_index) {
      GateOp shifted = ops[k];
      shifted.param = Param::value(theta);
      apply_op(state, shifted, params);
    } else {
      apply_op(state, ops[k], params);
    }
  }
  return state.expectation_diag(diag);
}

}  // namespace

std::vector<double> parameter_shift_gradient(const Circuit& circuit,
                                             const std::vector<double>& params,
                                             const Statevector& initial,
                                             const std::vector<double>& diag) {
  assert(initial.num_qubits() == circuit.num_qubits());
  std::vector<double> grads(
      static_cast<std::size_t>(circuit.num_param_slots()), 0.0);

  constexpr double kHalfPi = std::numbers::pi / 2.0;
  const double c_plus =
      (std::numbers::sqrt2 + 1.0) / (4.0 * std::numbers::sqrt2);
  const double c_minus =
      (std::numbers::sqrt2 - 1.0) / (4.0 * std::numbers::sqrt2);

  const auto& ops = circuit.ops();
  for (std::size_t k = 0; k < ops.size(); ++k) {
    const GateOp& op = ops[k];
    if (!is_parameterized(op.kind) || !op.param.is_slot()) continue;
    const double theta = resolve_param(op, params);
    const auto eval = [&](double t) {
      return run_with_override(circuit, params, initial, diag, k, t);
    };
    double g = 0.0;
    switch (op.kind) {
      case GateKind::kRX:
      case GateKind::kRY:
      case GateKind::kRZ:
        g = 0.5 * (eval(theta + kHalfPi) - eval(theta - kHalfPi));
        break;
      case GateKind::kCRX:
      case GateKind::kCRY:
      case GateKind::kCRZ:
        g = c_plus * (eval(theta + kHalfPi) - eval(theta - kHalfPi)) -
            c_minus * (eval(theta + 3.0 * kHalfPi) -
                       eval(theta - 3.0 * kHalfPi));
        break;
      default:
        break;
    }
    grads[static_cast<std::size_t>(op.param.index)] += g;
  }
  return grads;
}

std::vector<double> finite_difference_gradient(
    const Circuit& circuit, const std::vector<double>& params,
    const Statevector& initial, const std::vector<double>& diag, double eps) {
  std::vector<double> grads(
      static_cast<std::size_t>(circuit.num_param_slots()), 0.0);
  std::vector<double> p = params;
  for (std::size_t s = 0; s < grads.size(); ++s) {
    const double saved = p[s];
    p[s] = saved + eps;
    Statevector plus = initial;
    run(circuit, p, plus);
    p[s] = saved - eps;
    Statevector minus = initial;
    run(circuit, p, minus);
    p[s] = saved;
    grads[s] =
        (plus.expectation_diag(diag) - minus.expectation_diag(diag)) /
        (2.0 * eps);
  }
  return grads;
}

}  // namespace sqvae::qsim
