// Dense statevector for an n-qubit register with in-place gate kernels.
//
// Qubit index convention: qubit q corresponds to bit q of the basis-state
// index, i.e. basis state |b_{n-1} ... b_1 b_0> has index sum b_q 2^q and
// qubit 0 is the least significant bit. This matches the tensor-order used
// throughout the embedding and measurement code.
//
// All amplitude loops delegate to the runtime-dispatched kernel layer
// (qsim/kernels.h): scalar reference kernels or AVX2+FMA, selected once at
// startup, so every caller — interpreter, executor, adjoint sweep,
// stochastic backends — runs the same vectorised code. States at or above
// kernels::parallel_threshold() amplitudes additionally route through the
// OpenMP amplitude-parallel table (kernels::table_for), unless the caller
// is already inside a parallel batch loop.
#pragma once

#include <cstddef>
#include <vector>

#include "qsim/kernels.h"
#include "qsim/types.h"

namespace sqvae::qsim {

class Statevector {
 public:
  /// |0...0> state on `num_qubits` qubits. Requires 1 <= num_qubits <= 24
  /// (2^24 amplitudes is already 256 MiB; the models in this project use at
  /// most 10 qubits per circuit patch).
  explicit Statevector(int num_qubits);

  /// Takes ownership of raw amplitudes; size must be a power of two.
  /// The caller is responsible for normalisation (see is_normalized()).
  explicit Statevector(std::vector<cplx> amplitudes);

  int num_qubits() const { return num_qubits_; }
  std::size_t dim() const { return amps_.size(); }

  cplx& operator[](std::size_t i) { return amps_[i]; }
  const cplx& operator[](std::size_t i) const { return amps_[i]; }

  std::vector<cplx>& amplitudes() { return amps_; }
  const std::vector<cplx>& amplitudes() const { return amps_; }

  /// Resets to |0...0>.
  void reset();

  /// Sum of |a_i|^2.
  double norm_squared() const;

  /// True when norm_squared() is within `tol` of 1.
  bool is_normalized(double tol = 1e-9) const;

  /// Applies a general single-qubit gate to `target`.
  void apply_single(const Mat2& m, int target);

  /// Applies a single-qubit gate to `target` only on the subspace where
  /// `control` is |1>.
  void apply_controlled_single(const Mat2& m, int control, int target);

  /// CNOT with the given control and target (specialised amplitude swap).
  void apply_cnot(int control, int target);

  /// Controlled-Z (specialised phase flip).
  void apply_cz(int control, int target);

  /// SWAP of two qubits.
  void apply_swap(int a, int b);

  /// Applies a fused diagonal run (see kernels::DiagonalRun) in one
  /// elementwise pass.
  void apply_diagonal_run(const kernels::DiagonalRun& run);

  /// <psi| Z_q |psi> in [-1, 1] for normalised states.
  double expectation_z(int qubit) const;

  /// |<i|psi>|^2 for every basis state i.
  std::vector<double> probabilities() const;

  /// <psi| diag(d) |psi> = sum_i d_i |a_i|^2 for a real diagonal observable.
  double expectation_diag(const std::vector<double>& diag) const;

  /// <a|b> inner product of two statevectors of equal dimension.
  static cplx inner(const Statevector& a, const Statevector& b);

 private:
  int num_qubits_ = 0;
  std::vector<cplx> amps_;
};

}  // namespace sqvae::qsim
