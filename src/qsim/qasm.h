// OpenQASM 2.0 export.
//
// Emits circuits in the interchange dialect consumed by Qiskit, Cirq, and
// most hardware toolchains, so circuits trained in this library can be run
// elsewhere (e.g. on real backends). Parameter slots are resolved against
// a bound parameter vector at export time — QASM 2.0 has no symbolic
// parameters. Gate mapping:
//   RX/RY/RZ -> rx/ry/rz, H/X/Y/Z/S/T -> native, CNOT -> cx, CZ -> cz,
//   SWAP -> swap, CRX/CRY/CRZ -> crx/cry/crz (qelib1.inc extensions).
#pragma once

#include <string>
#include <vector>

#include "qsim/circuit.h"

namespace sqvae::qsim {

/// OpenQASM 2.0 program for the circuit with parameters bound from
/// `params` (slot values) — measurement-free (statevector use).
std::string to_qasm(const Circuit& circuit, const std::vector<double>& params);

/// Same, with `measure q -> c` lines appended for every qubit (hardware
/// submission form).
std::string to_qasm_with_measurements(const Circuit& circuit,
                                      const std::vector<double>& params);

}  // namespace sqvae::qsim
