// Shot-based (finite-sampling) measurement.
//
// The paper trains on exact simulator expectations; real NISQ hardware
// estimates <Z> from a finite number of shots, adding sampling noise of
// standard deviation sqrt((1 - <Z>^2) / shots). This module provides the
// shot-sampling primitives used by the hardware-realism ablation
// (bench_shot_noise) and by tests that verify estimator consistency:
// measured statistics must converge to the exact values as shots grow.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "qsim/statevector.h"

namespace sqvae::qsim {

/// Samples one computational-basis outcome (index of the measured basis
/// state) from the state's probability distribution.
std::size_t sample_basis_state(const Statevector& state, sqvae::Rng& rng);

/// Draws `shots` basis-state samples.
std::vector<std::size_t> sample_shots(const Statevector& state,
                                      std::size_t shots, sqvae::Rng& rng);

/// Shot-based estimate of the per-qubit <Z> vector: for each qubit,
/// (+1 counts - (-1) counts) / shots over the same `shots` samples.
std::vector<double> estimate_expectations_z(const Statevector& state,
                                            std::size_t shots,
                                            sqvae::Rng& rng);

/// Shot-based estimate of basis-state probabilities (normalised histogram).
std::vector<double> estimate_probabilities(const Statevector& state,
                                           std::size_t shots,
                                           sqvae::Rng& rng);

}  // namespace sqvae::qsim
