// AVX2+FMA kernel table. This is the only translation unit compiled with
// -mavx2 -mfma (see CMakeLists.txt, SQVAE_SIMD): the binary as a whole
// keeps the baseline ISA and only jumps in here after kernels.cpp has
// verified the CPU reports both features, so shipping one executable to
// mixed fleets stays safe.
//
// Layout notes. std::complex<double> is two adjacent doubles (re, im), so
// one __m256d holds two packed amplitudes. Complex products use the
// fmaddsub idiom: for a = (ar, ai, ...) and a broadcast coefficient
// c = cr + i*ci,
//
//   a * c = fmaddsub(a, [cr cr ..], (swap_re_im(a)) * [ci ci ..])
//         = (ar*cr - ai*ci, ai*cr + ar*ci, ...)
//
// Stride awareness: for target qubit >= 1 the (i, i + stride) amplitude
// pairs form contiguous runs of >= 2 complex values and use straight
// two-pair vectors; target 0 interleaves the pair inside a single vector,
// where a gather-based formulation loses, so it gets an in-register
// shuffle variant (permute2f128 to splat each half, then one fused
// multiply per matrix column). The two-qubit kernels enumerate affected
// indices with the same three-level bit loops as the scalar table
// (kernels.cpp) and pick per-case inner bodies: 256-bit runs when the
// smaller qubit mask is >= 2, the shuffle variant when the target is
// qubit 0, and 128-bit pair ops for the remaining scattered-single cases.
#ifdef SQVAE_SIMD_AVX2

#include <immintrin.h>

#include <cstddef>

#include "qsim/kernels.h"

namespace sqvae::qsim::kernels {
namespace {

inline double* dp(cplx* p) { return reinterpret_cast<double*>(p); }
inline const double* dp(const cplx* p) {
  return reinterpret_cast<const double*>(p);
}

/// (a0*b0, a1*b1) for packed complex vectors a, b.
inline __m256d cmul(__m256d a, __m256d b) {
  const __m256d b_re = _mm256_unpacklo_pd(b, b);
  const __m256d b_im = _mm256_unpackhi_pd(b, b);
  const __m256d a_sw = _mm256_permute_pd(a, 0x5);
  return _mm256_fmaddsub_pd(a, b_re, _mm256_mul_pd(a_sw, b_im));
}

/// Packed complex times a broadcast coefficient split into re/im vectors.
inline __m256d cmul_bc(__m256d a, __m256d cr, __m256d ci) {
  const __m256d a_sw = _mm256_permute_pd(a, 0x5);
  return _mm256_fmaddsub_pd(a, cr, _mm256_mul_pd(a_sw, ci));
}

/// 2x2 matrix broadcast for the two-pairs-per-vector path.
struct Mat2Bc {
  __m256d m00r, m00i, m01r, m01i, m10r, m10i, m11r, m11i;
  explicit Mat2Bc(const Mat2& m)
      : m00r(_mm256_set1_pd(m[0].real())),
        m00i(_mm256_set1_pd(m[0].imag())),
        m01r(_mm256_set1_pd(m[1].real())),
        m01i(_mm256_set1_pd(m[1].imag())),
        m10r(_mm256_set1_pd(m[2].real())),
        m10i(_mm256_set1_pd(m[2].imag())),
        m11r(_mm256_set1_pd(m[3].real())),
        m11i(_mm256_set1_pd(m[3].imag())) {}
};

/// Applies the 2x2 gate to two (a0, a1) amplitude pairs: p0/p1 each point
/// at two contiguous complex values.
inline void transform_pairs2(cplx* p0, cplx* p1, const Mat2Bc& c) {
  const __m256d a0 = _mm256_loadu_pd(dp(p0));
  const __m256d a1 = _mm256_loadu_pd(dp(p1));
  const __m256d r0 = _mm256_add_pd(cmul_bc(a0, c.m00r, c.m00i),
                                   cmul_bc(a1, c.m01r, c.m01i));
  const __m256d r1 = _mm256_add_pd(cmul_bc(a0, c.m10r, c.m10i),
                                   cmul_bc(a1, c.m11r, c.m11i));
  _mm256_storeu_pd(dp(p0), r0);
  _mm256_storeu_pd(dp(p1), r1);
}

/// Shuffle variant for adjacent pairs (target qubit 0): one vector holds
/// (a0, a1); lanes 0-1 become m00*a0 + m01*a1, lanes 2-3 m10*a0 + m11*a1.
struct AdjCoef {
  __m256d c0r, c0i, c1r, c1i;
  explicit AdjCoef(const Mat2& m)
      : c0r(_mm256_setr_pd(m[0].real(), m[0].real(), m[2].real(),
                           m[2].real())),
        c0i(_mm256_setr_pd(m[0].imag(), m[0].imag(), m[2].imag(),
                           m[2].imag())),
        c1r(_mm256_setr_pd(m[1].real(), m[1].real(), m[3].real(),
                           m[3].real())),
        c1i(_mm256_setr_pd(m[1].imag(), m[1].imag(), m[3].imag(),
                           m[3].imag())) {}
};

inline void transform_adjacent(cplx* p, const AdjCoef& c) {
  const __m256d v = _mm256_loadu_pd(dp(p));
  const __m256d a0 = _mm256_permute2f128_pd(v, v, 0x00);
  const __m256d a1 = _mm256_permute2f128_pd(v, v, 0x11);
  const __m256d r =
      _mm256_add_pd(cmul_bc(a0, c.c0r, c.c0i), cmul_bc(a1, c.c1r, c.c1i));
  _mm256_storeu_pd(dp(p), r);
}

/// 128-bit single-pair transform for scattered pairs (control on qubit 0).
struct Mat2Bc128 {
  __m128d m00r, m00i, m01r, m01i, m10r, m10i, m11r, m11i;
  explicit Mat2Bc128(const Mat2& m)
      : m00r(_mm_set1_pd(m[0].real())),
        m00i(_mm_set1_pd(m[0].imag())),
        m01r(_mm_set1_pd(m[1].real())),
        m01i(_mm_set1_pd(m[1].imag())),
        m10r(_mm_set1_pd(m[2].real())),
        m10i(_mm_set1_pd(m[2].imag())),
        m11r(_mm_set1_pd(m[3].real())),
        m11i(_mm_set1_pd(m[3].imag())) {}
};

inline __m128d cmul_bc128(__m128d a, __m128d cr, __m128d ci) {
  const __m128d a_sw = _mm_permute_pd(a, 0x1);
  return _mm_fmaddsub_pd(a, cr, _mm_mul_pd(a_sw, ci));
}

inline void transform_pair128(cplx* p0, cplx* p1, const Mat2Bc128& c) {
  const __m128d a0 = _mm_loadu_pd(dp(p0));
  const __m128d a1 = _mm_loadu_pd(dp(p1));
  const __m128d r0 = _mm_add_pd(cmul_bc128(a0, c.m00r, c.m00i),
                                cmul_bc128(a1, c.m01r, c.m01i));
  const __m128d r1 = _mm_add_pd(cmul_bc128(a0, c.m10r, c.m10i),
                                cmul_bc128(a1, c.m11r, c.m11i));
  _mm_storeu_pd(dp(p0), r0);
  _mm_storeu_pd(dp(p1), r1);
}

inline double hsum(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d s = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
}

// ---- gate kernels ---------------------------------------------------------

void avx2_apply_single(cplx* amps, std::size_t n, const Mat2& m, int target) {
  if (target == 0) {
    const AdjCoef c(m);
    for (std::size_t i = 0; i < n; i += 2) transform_adjacent(amps + i, c);
    return;
  }
  const Mat2Bc c(m);
  const std::size_t stride = std::size_t{1} << target;  // >= 2
  for (std::size_t base = 0; base < n; base += 2 * stride) {
    for (std::size_t i = base; i < base + stride; i += 2) {
      transform_pairs2(amps + i, amps + i + stride, c);
    }
  }
}

void avx2_apply_controlled_single(cplx* amps, std::size_t n, const Mat2& m,
                                  int control, int target) {
  const std::size_t cbit = std::size_t{1} << control;
  const std::size_t tbit = std::size_t{1} << target;
  const std::size_t b1 = cbit < tbit ? cbit : tbit;
  const std::size_t b2 = cbit < tbit ? tbit : cbit;
  if (b1 >= 2) {
    const Mat2Bc c(m);
    for (std::size_t i0 = 0; i0 < n; i0 += 2 * b2) {
      for (std::size_t i1 = i0; i1 < i0 + b2; i1 += 2 * b1) {
        const std::size_t base = i1 | cbit;
        for (std::size_t i = base; i < base + b1; i += 2) {
          transform_pairs2(amps + i, amps + i + tbit, c);
        }
      }
    }
  } else if (target == 0) {
    // Pairs are adjacent (i, i+1) wherever the control bit is set.
    const AdjCoef c(m);
    for (std::size_t i0 = 0; i0 < n; i0 += 2 * cbit) {
      for (std::size_t i1 = i0; i1 < i0 + cbit; i1 += 2) {
        transform_adjacent(amps + (i1 | cbit), c);
      }
    }
  } else {
    // Control on qubit 0: scattered single pairs (i, i + tbit), i odd.
    const Mat2Bc128 c(m);
    for (std::size_t i0 = 0; i0 < n; i0 += 2 * tbit) {
      for (std::size_t i1 = i0; i1 < i0 + tbit; i1 += 2) {
        const std::size_t i = i1 | 1;
        transform_pair128(amps + i, amps + i + tbit, c);
      }
    }
  }
}

void avx2_apply_cnot(cplx* amps, std::size_t n, int control, int target) {
  const std::size_t cbit = std::size_t{1} << control;
  const std::size_t tbit = std::size_t{1} << target;
  const std::size_t b1 = cbit < tbit ? cbit : tbit;
  const std::size_t b2 = cbit < tbit ? tbit : cbit;
  if (b1 >= 2) {
    for (std::size_t i0 = 0; i0 < n; i0 += 2 * b2) {
      for (std::size_t i1 = i0; i1 < i0 + b2; i1 += 2 * b1) {
        const std::size_t base = i1 | cbit;
        for (std::size_t i = base; i < base + b1; i += 2) {
          const __m256d va = _mm256_loadu_pd(dp(amps + i));
          const __m256d vb = _mm256_loadu_pd(dp(amps + i + tbit));
          _mm256_storeu_pd(dp(amps + i), vb);
          _mm256_storeu_pd(dp(amps + i + tbit), va);
        }
      }
    }
  } else if (target == 0) {
    // Swap the two adjacent complex values inside one vector.
    for (std::size_t i0 = 0; i0 < n; i0 += 2 * cbit) {
      for (std::size_t i1 = i0; i1 < i0 + cbit; i1 += 2) {
        cplx* p = amps + (i1 | cbit);
        const __m256d v = _mm256_loadu_pd(dp(p));
        _mm256_storeu_pd(dp(p), _mm256_permute2f128_pd(v, v, 0x01));
      }
    }
  } else {
    for (std::size_t i0 = 0; i0 < n; i0 += 2 * tbit) {
      for (std::size_t i1 = i0; i1 < i0 + tbit; i1 += 2) {
        const std::size_t i = i1 | 1;
        const __m128d va = _mm_loadu_pd(dp(amps + i));
        const __m128d vb = _mm_loadu_pd(dp(amps + i + tbit));
        _mm_storeu_pd(dp(amps + i), vb);
        _mm_storeu_pd(dp(amps + i + tbit), va);
      }
    }
  }
}

void avx2_apply_cz(cplx* amps, std::size_t n, int control, int target) {
  const std::size_t cbit = std::size_t{1} << control;
  const std::size_t tbit = std::size_t{1} << target;
  const std::size_t b1 = cbit < tbit ? cbit : tbit;
  const std::size_t b2 = cbit < tbit ? tbit : cbit;
  if (b1 >= 2) {
    const __m256d neg = _mm256_set1_pd(-0.0);
    for (std::size_t i0 = 0; i0 < n; i0 += 2 * b2) {
      for (std::size_t i1 = i0; i1 < i0 + b2; i1 += 2 * b1) {
        const std::size_t base = i1 | cbit | tbit;
        for (std::size_t i = base; i < base + b1; i += 2) {
          _mm256_storeu_pd(
              dp(amps + i),
              _mm256_xor_pd(_mm256_loadu_pd(dp(amps + i)), neg));
        }
      }
    }
  } else {
    const __m128d neg = _mm_set1_pd(-0.0);
    for (std::size_t i0 = 0; i0 < n; i0 += 2 * b2) {
      for (std::size_t i1 = i0; i1 < i0 + b2; i1 += 2) {
        const std::size_t i = i1 | cbit | tbit;
        _mm_storeu_pd(dp(amps + i),
                      _mm_xor_pd(_mm_loadu_pd(dp(amps + i)), neg));
      }
    }
  }
}

void avx2_apply_swap(cplx* amps, std::size_t n, int a, int b) {
  const std::size_t abit = std::size_t{1} << a;
  const std::size_t bbit = std::size_t{1} << b;
  const std::size_t b1 = abit < bbit ? abit : bbit;
  const std::size_t b2 = abit < bbit ? bbit : abit;
  const std::size_t flip = abit | bbit;
  if (b1 >= 2) {
    for (std::size_t i0 = 0; i0 < n; i0 += 2 * b2) {
      for (std::size_t i1 = i0; i1 < i0 + b2; i1 += 2 * b1) {
        const std::size_t base = i1 | abit;
        for (std::size_t i = base; i < base + b1; i += 2) {
          const std::size_t j = i ^ flip;
          const __m256d va = _mm256_loadu_pd(dp(amps + i));
          const __m256d vb = _mm256_loadu_pd(dp(amps + j));
          _mm256_storeu_pd(dp(amps + i), vb);
          _mm256_storeu_pd(dp(amps + j), va);
        }
      }
    }
  } else {
    for (std::size_t i0 = 0; i0 < n; i0 += 2 * b2) {
      for (std::size_t i1 = i0; i1 < i0 + b2; i1 += 2) {
        const std::size_t i = i1 | abit;
        const std::size_t j = i ^ flip;
        const __m128d va = _mm_loadu_pd(dp(amps + i));
        const __m128d vb = _mm_loadu_pd(dp(amps + j));
        _mm_storeu_pd(dp(amps + i), vb);
        _mm_storeu_pd(dp(amps + j), va);
      }
    }
  }
}

void avx2_apply_diagonal_table(cplx* amps, std::size_t n, const cplx* table) {
  for (std::size_t i = 0; i < n; i += 2) {
    _mm256_storeu_pd(dp(amps + i), cmul(_mm256_loadu_pd(dp(amps + i)),
                                        _mm256_loadu_pd(dp(table + i))));
  }
}

// ---- pair-run primitives --------------------------------------------------
//
// Contiguous (lo, hi) runs for the high-target pair-exchange path. The
// 256-bit body is the same fmaddsub arithmetic as transform_pairs2, and the
// odd-length tail drops to the 128-bit body, which performs identical
// per-lane operations — so run splitting at any boundary is bit-neutral.

void avx2_apply_single_pairs(cplx* lo, cplx* hi, std::size_t count,
                             const Mat2& m) {
  const Mat2Bc c(m);
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) transform_pairs2(lo + i, hi + i, c);
  if (i < count) {
    const Mat2Bc128 c128(m);
    transform_pair128(lo + i, hi + i, c128);
  }
}

void avx2_swap_runs(cplx* lo, cplx* hi, std::size_t count) {
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const __m256d va = _mm256_loadu_pd(dp(lo + i));
    const __m256d vb = _mm256_loadu_pd(dp(hi + i));
    _mm256_storeu_pd(dp(lo + i), vb);
    _mm256_storeu_pd(dp(hi + i), va);
  }
  if (i < count) {
    const __m128d va = _mm_loadu_pd(dp(lo + i));
    const __m128d vb = _mm_loadu_pd(dp(hi + i));
    _mm_storeu_pd(dp(lo + i), vb);
    _mm_storeu_pd(dp(hi + i), va);
  }
}

void avx2_negate_run(cplx* amps, std::size_t count) {
  const __m256d neg = _mm256_set1_pd(-0.0);
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    _mm256_storeu_pd(dp(amps + i),
                     _mm256_xor_pd(_mm256_loadu_pd(dp(amps + i)), neg));
  }
  if (i < count) {
    const __m128d neg128 = _mm_set1_pd(-0.0);
    _mm_storeu_pd(dp(amps + i),
                  _mm_xor_pd(_mm_loadu_pd(dp(amps + i)), neg128));
  }
}

// ---- reductions -----------------------------------------------------------

cplx avx2_inner(const cplx* a, const cplx* b, std::size_t n) {
  // conj(a)*b: re = ar*br + ai*bi, im = ar*bi - ai*br. acc_p accumulates
  // the products lane-wise (re parts from every lane), acc_x the swapped
  // products (im = odd lane - even lane per complex).
  __m256d acc_p = _mm256_setzero_pd();
  __m256d acc_x = _mm256_setzero_pd();
  for (std::size_t i = 0; i < n; i += 2) {
    const __m256d va = _mm256_loadu_pd(dp(a + i));
    const __m256d vb = _mm256_loadu_pd(dp(b + i));
    acc_p = _mm256_fmadd_pd(va, vb, acc_p);
    acc_x = _mm256_fmadd_pd(_mm256_permute_pd(va, 0x5), vb, acc_x);
  }
  double p[4];
  double x[4];
  _mm256_storeu_pd(p, acc_p);
  _mm256_storeu_pd(x, acc_x);
  return cplx{p[0] + p[1] + p[2] + p[3], (x[1] - x[0]) + (x[3] - x[2])};
}

double avx2_norm_squared(const cplx* amps, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  for (std::size_t i = 0; i < n; i += 2) {
    const __m256d v = _mm256_loadu_pd(dp(amps + i));
    acc = _mm256_fmadd_pd(v, v, acc);
  }
  return hsum(acc);
}

double avx2_expectation_z(const cplx* amps, std::size_t n, int qubit) {
  if (qubit == 0) {
    // Lanes 0-1 carry an even basis state (+), lanes 2-3 an odd one (-).
    const __m256d signs = _mm256_setr_pd(0.0, 0.0, -0.0, -0.0);
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t i = 0; i < n; i += 2) {
      const __m256d v = _mm256_loadu_pd(dp(amps + i));
      acc = _mm256_add_pd(acc, _mm256_xor_pd(_mm256_mul_pd(v, v), signs));
    }
    return hsum(acc);
  }
  const std::size_t bit = std::size_t{1} << qubit;  // >= 2
  __m256d pos = _mm256_setzero_pd();
  __m256d neg = _mm256_setzero_pd();
  for (std::size_t base = 0; base < n; base += 2 * bit) {
    for (std::size_t i = base; i < base + bit; i += 2) {
      const __m256d v0 = _mm256_loadu_pd(dp(amps + i));
      const __m256d v1 = _mm256_loadu_pd(dp(amps + i + bit));
      pos = _mm256_fmadd_pd(v0, v0, pos);
      neg = _mm256_fmadd_pd(v1, v1, neg);
    }
  }
  return hsum(pos) - hsum(neg);
}

double avx2_apply_diag_observable(const double* diag, const cplx* psi,
                                  cplx* lambda, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d = _mm256_loadu_pd(diag + i);
    const __m256d d01 = _mm256_permute4x64_pd(d, 0x50);  // (d0 d0 d1 d1)
    const __m256d d23 = _mm256_permute4x64_pd(d, 0xFA);  // (d2 d2 d3 d3)
    const __m256d p0 = _mm256_loadu_pd(dp(psi + i));
    const __m256d p1 = _mm256_loadu_pd(dp(psi + i + 2));
    _mm256_storeu_pd(dp(lambda + i), _mm256_mul_pd(p0, d01));
    _mm256_storeu_pd(dp(lambda + i + 2), _mm256_mul_pd(p1, d23));
    acc = _mm256_fmadd_pd(_mm256_mul_pd(p0, p0), d01, acc);
    acc = _mm256_fmadd_pd(_mm256_mul_pd(p1, p1), d23, acc);
  }
  double value = hsum(acc);
  for (; i < n; ++i) {
    value += diag[i] * std::norm(psi[i]);
    lambda[i] = diag[i] * psi[i];
  }
  return value;
}

void avx2_probabilities(const cplx* amps, std::size_t n, double* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v0 = _mm256_loadu_pd(dp(amps + i));
    const __m256d v1 = _mm256_loadu_pd(dp(amps + i + 2));
    // hadd -> (p0 q0 p1 q1); permute to source order (p0 p1 q0 q1).
    const __m256d s =
        _mm256_hadd_pd(_mm256_mul_pd(v0, v0), _mm256_mul_pd(v1, v1));
    _mm256_storeu_pd(out + i, _mm256_permute4x64_pd(s, 0xD8));
  }
  for (; i < n; ++i) out[i] = std::norm(amps[i]);
}

}  // namespace

namespace detail {

const KernelTable& avx2_table() {
  static const KernelTable t = {
      avx2_apply_single,
      avx2_apply_controlled_single,
      avx2_apply_cnot,
      avx2_apply_cz,
      avx2_apply_swap,
      avx2_apply_diagonal_table,
      avx2_inner,
      avx2_norm_squared,
      avx2_expectation_z,
      avx2_apply_diag_observable,
      avx2_probabilities,
      avx2_apply_single_pairs,
      avx2_swap_runs,
      avx2_negate_run,
  };
  return t;
}

}  // namespace detail
}  // namespace sqvae::qsim::kernels

#endif  // SQVAE_SIMD_AVX2
