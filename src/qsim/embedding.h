// Classical-to-quantum data embeddings (Section II-C of the paper).
//
// Amplitude embedding writes a d-dimensional real feature vector into the
// 2^n amplitudes of an n-qubit state (qubit-efficient: n = ceil(log2 d)),
// |x> = (1/||x||_2) sum_j x_j |j>, padding unused basis states with zero.
// Because the state must be unit-norm, the embedding divides by the L2 norm
// and the corresponding Jacobian must be applied when backpropagating into
// upstream classical features — amplitude_embedding_backward does this.
//
// Angle embedding rotates qubit q by RY(x_q) (one qubit per feature, not
// qubit-efficient but differentiable through the standard parameter
// machinery); it is built directly into circuits via
// Circuit::angle_embedding, so this header only provides the amplitude side
// plus measurement helpers.
#pragma once

#include <vector>

#include "qsim/statevector.h"

namespace sqvae::qsim {

/// Prepares |x> on `num_qubits` qubits from up to 2^num_qubits features.
/// Features beyond x.size() are zero. A (near-)zero input maps to |0...0>.
Statevector amplitude_embedding(const std::vector<double>& x, int num_qubits);

/// Chain rule through the L2 normalisation of amplitude_embedding.
/// `x` is the raw feature vector, `state_grad` is dE/d(real amplitudes)
/// (length 2^n, e.g. real_initial_gradient of an adjoint sweep). Returns
/// dE/dx (length x.size()).
std::vector<double> amplitude_embedding_backward(
    const std::vector<double>& x, const std::vector<double>& state_grad);

/// <Z_q> for every qubit q — the "expectation output" layer.
std::vector<double> expectations_z(const Statevector& state);

}  // namespace sqvae::qsim
