#include "qsim/adjoint.h"

#include <cassert>

#include "qsim/kernels.h"
#include "qsim/observable.h"

namespace sqvae::qsim {

namespace {

/// Applies dU/dtheta for a parameterized gate to `state` in place.
/// For controlled rotations dU/dtheta = |1><1|_c (x) dR/dtheta, i.e. the
/// control=|0> subspace is annihilated (derivative of identity is zero) and
/// dR/dtheta acts on the control=|1> subspace.
void apply_op_derivative(Statevector& state, const GateOp& op, double theta) {
  const Mat2 d = gate_matrix_derivative(op.kind, theta);
  switch (op.kind) {
    case GateKind::kCRX:
    case GateKind::kCRY:
    case GateKind::kCRZ: {
      const std::size_t cbit = std::size_t{1} << op.control;
      for (std::size_t i = 0; i < state.dim(); ++i) {
        if ((i & cbit) == 0) state[i] = cplx{0.0, 0.0};
      }
      state.apply_controlled_single(d, op.control, op.target);
      return;
    }
    default:
      state.apply_single(d, op.target);
      return;
  }
}

}  // namespace

AdjointResult adjoint_gradient(const Circuit& circuit,
                               const std::vector<double>& params,
                               const Statevector& initial,
                               const std::vector<double>& diag) {
  assert(initial.num_qubits() == circuit.num_qubits());
  assert(diag.size() == initial.dim());

  AdjointResult result;
  result.param_grads.assign(
      static_cast<std::size_t>(circuit.num_param_slots()), 0.0);

  // Forward pass.
  Statevector psi = initial;
  run(circuit, params, psi);

  // Value and lambda = O psi (diagonal observable => elementwise product).
  Statevector lambda = psi;
  result.value = apply_diag_observable(diag, psi, lambda);

  // Reverse sweep.
  adjoint_reverse_sweep(circuit.ops(), params, psi, lambda,
                        result.param_grads);
  result.initial_lambda = lambda.amplitudes();
  return result;
}

double apply_diag_observable(const std::vector<double>& diag,
                             const Statevector& psi, Statevector& lambda) {
  assert(diag.size() == psi.dim());
  assert(lambda.dim() == psi.dim());
  // One fused kernel pass: value = <psi|diag|psi> and lambda = diag * psi.
  return kernels::active().apply_diag_observable(
      diag.data(), psi.amplitudes().data(), lambda.amplitudes().data(),
      psi.dim());
}

void adjoint_reverse_sweep(const std::vector<GateOp>& ops,
                           const std::vector<double>& params, Statevector& psi,
                           Statevector& lambda,
                           std::vector<double>& param_grads) {
  Statevector mu(psi.num_qubits());
  for (std::size_t k = ops.size(); k > 0; --k) {
    const GateOp& op = ops[k - 1];
    apply_op_dagger(psi, op, params);  // psi is now the state before gate k
    if (is_parameterized(op.kind) && op.param.is_slot()) {
      mu = psi;
      apply_op_derivative(mu, op, resolve_param(op, params));
      const cplx overlap = Statevector::inner(lambda, mu);
      param_grads[static_cast<std::size_t>(op.param.index)] +=
          2.0 * overlap.real();
    }
    apply_op_dagger(lambda, op, params);
  }
}

AdjointResult adjoint_gradient_z_vjp(const Circuit& circuit,
                                     const std::vector<double>& params,
                                     const Statevector& initial,
                                     const std::vector<double>& cotangent) {
  return adjoint_gradient(
      circuit, params, initial,
      weighted_z_diagonal(circuit.num_qubits(), cotangent));
}

std::vector<double> real_initial_gradient(const AdjointResult& result) {
  std::vector<double> g(result.initial_lambda.size());
  for (std::size_t i = 0; i < g.size(); ++i) {
    g[i] = 2.0 * result.initial_lambda[i].real();
  }
  return g;
}

}  // namespace sqvae::qsim
