// Unified simulation-backend layer: one API for every execution regime.
//
// The paper's experiments run hybrid quantum layers under three regimes —
// ideal statevector simulation, gate-noise simulation, and finite-shot
// measurement — and before this layer each regime had its own code path
// (executor batch loop, per-sample `run_noisy` interpreter, ad-hoc sampling
// helpers). A SimulationBackend turns the regime into *data*: every backend
// consumes the same compiled `CircuitExecutor` plan and produces the same
// batched measurement estimates, so models, the trainer, and the benches
// switch regimes by changing one `SimulationOptions` value.
//
// Backends:
//   * kStatevector — exact expectations/probabilities from the gate-fused
//     plan; identical results (and cost) to the PR-1 executor hot path.
//   * kTrajectory — quantum-trajectory Monte Carlo of the stochastic Pauli
//     channel (NoiseModel): the depolarizing channel is unravelled into
//     pure-state trajectories, so a noisy estimate costs O(shots * 2^n)
//     instead of the density matrix's O(4^n) per gate. Three structural
//     optimisations keep it far ahead of the density-matrix reference even
//     single-threaded (see BENCH_qsim_micro.json, "trajectory_ab"):
//       1. per-op gate matrices are bound once per parameter set through the
//          executor and shared by all trajectories;
//       2. a noiseless pass caches a bounded set of intermediate states
//          (at most 64 snapshots, so memory stays O(2^n) with a fixed
//          constant), letting a trajectory whose first sampled error sits
//          at gate i replay only the gates from the nearest snapshot at or
//          before i — and the (common, for realistic error rates)
//          all-clear trajectory reuses the cached noiseless measurement;
//       3. error patterns are drawn by geometric gap-sampling (O(#errors)
//          RNG draws, not O(#locations)), and suffix gates are re-fused
//          on the fly around the sampled Pauli insertions.
//   * kShotSampling — runs the fused plan exactly, then estimates the
//     measurement from `shots` basis-state samples drawn by binary search
//     on a per-sample cumulative distribution (the hardware-realism
//     regime: sampling noise ~ sqrt((1 - <Z>^2) / shots)).
//
// Determinism: every stochastic draw comes from a private Rng seeded by
// mixing (options.seed, call counter, sample index, trajectory index), and
// Monte-Carlo means are reduced in fixed trajectory order from bounded
// per-trajectory chunk buffers. Results are therefore bit-reproducible
// run-to-run
// AND across OpenMP thread counts: threads never share a stream, and no
// floating-point reduction happens in thread order. (If a future backend
// ever accumulates inside the parallel region instead, exact bitwise
// equality across thread counts is lost to reduction-order round-off —
// keep the buffer-then-serial-sum shape.) The call counter advances the
// stream between calls so repeated batches see fresh randomness, while two
// backends created with equal options replay identical call sequences.
//
// Gradients are *not* routed through the stochastic backends: QuantumLayer
// always differentiates the exact statevector path (adjoint sweeps through
// the fused plan). Training under noise/shots therefore pairs stochastic
// forward estimates with exact-path gradients — the standard simulator
// simplification; unbiased stochastic gradient estimators (parameter shift
// on shot estimates) are available by composing this API, see
// bench_gradient_variance.cpp.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "qsim/executor.h"
#include "qsim/noise.h"
#include "qsim/statevector.h"

namespace sqvae::qsim {

enum class BackendKind {
  kStatevector,   // exact, deterministic
  kTrajectory,    // Monte-Carlo Kraus unravelling of NoiseModel
  kShotSampling,  // exact state, finite measurement shots
};

/// One knob for every simulation regime. Threaded through QuantumLayer,
/// the baseline/scalable models, and the Trainer.
struct SimulationOptions {
  BackendKind backend = BackendKind::kStatevector;
  /// kShotSampling: measurement shots per estimate. kTrajectory: number of
  /// Monte-Carlo trajectories per estimate. Ignored by kStatevector.
  std::size_t shots = 1024;
  /// Per-gate Pauli error rate; used by kTrajectory only.
  NoiseModel noise{};
  /// Base seed of the backend's private random streams.
  std::uint64_t seed = 0x5eedbacc0ffee123ull;
};

/// Same options with a seed derived from (options.seed, layer_index).
/// Models with several quantum layers give each layer the options returned
/// here so one model-level SimulationOptions drives them all without every
/// layer replaying an identical noise stream.
SimulationOptions derive_layer_options(const SimulationOptions& options,
                                       std::uint64_t layer_index);

class SimulationBackend {
 public:
  virtual ~SimulationBackend() = default;

  virtual BackendKind kind() const = 0;
  /// Short human-readable name ("statevector", "trajectory", "shots").
  virtual const char* name() const = 0;

  /// Per-sample per-qubit <Z> estimates with the stochastic stream's call
  /// index supplied explicitly. params_batch[i] runs from initials[i]
  /// (pass |0...0> states for circuits without embedding). Batched and
  /// OpenMP-parallel like CircuitExecutor::run_batch.
  ///
  /// This is the *pure* half of the API: const, no backend state touched,
  /// so any number of threads may execute through one shared backend
  /// concurrently (the serving layer does), and replaying a call index
  /// replays its exact randomness.
  virtual std::vector<std::vector<double>> expectations_z_batch_at(
      const CircuitExecutor& exec,
      const std::vector<std::vector<double>>& params_batch,
      const std::vector<Statevector>& initials, std::uint64_t call) const = 0;

  /// Per-sample basis-state probability estimates (length 2^n each); pure,
  /// like expectations_z_batch_at.
  virtual std::vector<std::vector<double>> probabilities_batch_at(
      const CircuitExecutor& exec,
      const std::vector<std::vector<double>>& params_batch,
      const std::vector<Statevector>& initials, std::uint64_t call) const = 0;

  // ---- stateful conveniences (advance the call counter) -----------------
  // Each call claims the next index of an atomic counter, so repeated
  // batches see fresh randomness and concurrent callers never corrupt the
  // counter. Concurrent *ordering* of the claims is scheduling-dependent,
  // though — code that needs reproducible concurrency passes explicit call
  // indices to the _at variants instead.
  std::vector<std::vector<double>> expectations_z_batch(
      const CircuitExecutor& exec,
      const std::vector<std::vector<double>>& params_batch,
      const std::vector<Statevector>& initials);
  std::vector<std::vector<double>> probabilities_batch(
      const CircuitExecutor& exec,
      const std::vector<std::vector<double>>& params_batch,
      const std::vector<Statevector>& initials);

  // ---- single-sample conveniences (forward to the batch calls) ----------
  std::vector<double> expectations_z(const CircuitExecutor& exec,
                                     const std::vector<double>& params);
  std::vector<double> probabilities(const CircuitExecutor& exec,
                                    const std::vector<double>& params);

  /// Builds the backend selected by `options`.
  static std::unique_ptr<SimulationBackend> create(
      const SimulationOptions& options);

 protected:
  /// Claims the next call index of the stateful API.
  std::uint64_t next_call() {
    return calls_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> calls_{0};
};

/// Monte-Carlo estimate with its standard error, for consumers that need
/// error bars (the 3-sigma equivalence tests, bench reports).
struct TrajectoryEstimate {
  std::vector<double> mean;       // per-qubit <Z> trajectory mean
  std::vector<double> std_error;  // sqrt(sample variance / trajectories)
};

class TrajectoryBackend final : public SimulationBackend {
 public:
  explicit TrajectoryBackend(const SimulationOptions& options);

  BackendKind kind() const override { return BackendKind::kTrajectory; }
  const char* name() const override { return "trajectory"; }

  std::vector<std::vector<double>> expectations_z_batch_at(
      const CircuitExecutor& exec,
      const std::vector<std::vector<double>>& params_batch,
      const std::vector<Statevector>& initials,
      std::uint64_t call) const override;
  std::vector<std::vector<double>> probabilities_batch_at(
      const CircuitExecutor& exec,
      const std::vector<std::vector<double>>& params_batch,
      const std::vector<Statevector>& initials,
      std::uint64_t call) const override;

  /// Like expectations_z for one sample, but also returns per-qubit
  /// standard errors computed from the per-trajectory spread.
  TrajectoryEstimate expectations_z_with_stats(
      const CircuitExecutor& exec, const std::vector<double>& params,
      const Statevector* initial = nullptr);

 private:
  SimulationOptions options_;
};

class ShotSamplingBackend final : public SimulationBackend {
 public:
  explicit ShotSamplingBackend(const SimulationOptions& options);

  BackendKind kind() const override { return BackendKind::kShotSampling; }
  const char* name() const override { return "shots"; }

  std::vector<std::vector<double>> expectations_z_batch_at(
      const CircuitExecutor& exec,
      const std::vector<std::vector<double>>& params_batch,
      const std::vector<Statevector>& initials,
      std::uint64_t call) const override;
  std::vector<std::vector<double>> probabilities_batch_at(
      const CircuitExecutor& exec,
      const std::vector<std::vector<double>>& params_batch,
      const std::vector<Statevector>& initials,
      std::uint64_t call) const override;

 private:
  SimulationOptions options_;
};

class StatevectorBackend final : public SimulationBackend {
 public:
  StatevectorBackend() = default;

  BackendKind kind() const override { return BackendKind::kStatevector; }
  const char* name() const override { return "statevector"; }

  // Exact, so the call index is ignored.
  std::vector<std::vector<double>> expectations_z_batch_at(
      const CircuitExecutor& exec,
      const std::vector<std::vector<double>>& params_batch,
      const std::vector<Statevector>& initials,
      std::uint64_t call) const override;
  std::vector<std::vector<double>> probabilities_batch_at(
      const CircuitExecutor& exec,
      const std::vector<std::vector<double>>& params_batch,
      const std::vector<Statevector>& initials,
      std::uint64_t call) const override;
};

namespace backend_detail {
/// Seed derivation shared by the stochastic backends: a SplitMix64-style
/// avalanche over (seed, call, sample, draw). Exposed so tests can verify
/// the thread-count-independent stream design against a serial reference.
std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t call,
                          std::uint64_t sample, std::uint64_t draw);
}  // namespace backend_detail

}  // namespace sqvae::qsim
