#include "qsim/qasm.h"

#include <iomanip>
#include <limits>
#include <sstream>

namespace sqvae::qsim {

namespace {

void emit_op(std::ostringstream& os, const GateOp& op,
             const std::vector<double>& params) {
  const auto q = [](int wire) {
    return "q[" + std::to_string(wire) + "]";
  };
  const double theta = resolve_param(op, params);
  switch (op.kind) {
    case GateKind::kRX:
      os << "rx(" << theta << ") " << q(op.target) << ";\n";
      return;
    case GateKind::kRY:
      os << "ry(" << theta << ") " << q(op.target) << ";\n";
      return;
    case GateKind::kRZ:
      os << "rz(" << theta << ") " << q(op.target) << ";\n";
      return;
    case GateKind::kH:
      os << "h " << q(op.target) << ";\n";
      return;
    case GateKind::kX:
      os << "x " << q(op.target) << ";\n";
      return;
    case GateKind::kY:
      os << "y " << q(op.target) << ";\n";
      return;
    case GateKind::kZ:
      os << "z " << q(op.target) << ";\n";
      return;
    case GateKind::kS:
      os << "s " << q(op.target) << ";\n";
      return;
    case GateKind::kT:
      os << "t " << q(op.target) << ";\n";
      return;
    case GateKind::kCNOT:
      os << "cx " << q(op.control) << "," << q(op.target) << ";\n";
      return;
    case GateKind::kCZ:
      os << "cz " << q(op.control) << "," << q(op.target) << ";\n";
      return;
    case GateKind::kSWAP:
      os << "swap " << q(op.control) << "," << q(op.target) << ";\n";
      return;
    case GateKind::kCRX:
      os << "crx(" << theta << ") " << q(op.control) << "," << q(op.target)
         << ";\n";
      return;
    case GateKind::kCRY:
      os << "cry(" << theta << ") " << q(op.control) << "," << q(op.target)
         << ";\n";
      return;
    case GateKind::kCRZ:
      os << "crz(" << theta << ") " << q(op.control) << "," << q(op.target)
         << ";\n";
      return;
  }
}

std::string qasm_body(const Circuit& circuit,
                      const std::vector<double>& params, bool measurements) {
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "OPENQASM 2.0;\n";
  os << "include \"qelib1.inc\";\n";
  os << "qreg q[" << circuit.num_qubits() << "];\n";
  if (measurements) {
    os << "creg c[" << circuit.num_qubits() << "];\n";
  }
  for (const GateOp& op : circuit.ops()) {
    emit_op(os, op, params);
  }
  if (measurements) {
    for (int wire = 0; wire < circuit.num_qubits(); ++wire) {
      os << "measure q[" << wire << "] -> c[" << wire << "];\n";
    }
  }
  return os.str();
}

}  // namespace

std::string to_qasm(const Circuit& circuit,
                    const std::vector<double>& params) {
  return qasm_body(circuit, params, /*measurements=*/false);
}

std::string to_qasm_with_measurements(const Circuit& circuit,
                                      const std::vector<double>& params) {
  return qasm_body(circuit, params, /*measurements=*/true);
}

}  // namespace sqvae::qsim
