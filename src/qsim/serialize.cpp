#include "qsim/serialize.h"

#include <map>
#include <sstream>

namespace sqvae::qsim {

std::string circuit_to_text(const Circuit& circuit) {
  std::ostringstream os;
  os << "qubits " << circuit.num_qubits() << '\n';
  os << circuit.to_string();
  return os.str();
}

namespace {

const std::map<std::string, GateKind>& gate_names() {
  static const std::map<std::string, GateKind> kNames = {
      {"RX", GateKind::kRX},     {"RY", GateKind::kRY},
      {"RZ", GateKind::kRZ},     {"H", GateKind::kH},
      {"X", GateKind::kX},       {"Y", GateKind::kY},
      {"Z", GateKind::kZ},       {"S", GateKind::kS},
      {"T", GateKind::kT},       {"CNOT", GateKind::kCNOT},
      {"CZ", GateKind::kCZ},     {"CRX", GateKind::kCRX},
      {"CRY", GateKind::kCRY},   {"CRZ", GateKind::kCRZ},
      {"SWAP", GateKind::kSWAP},
  };
  return kNames;
}

/// Parses "key=value" into (key, value); false on malformed tokens.
bool split_kv(const std::string& token, std::string* key,
              std::string* value) {
  const auto eq = token.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size()) {
    return false;
  }
  *key = token.substr(0, eq);
  *value = token.substr(eq + 1);
  return true;
}

}  // namespace

std::optional<Circuit> circuit_from_text(const std::string& text) {
  std::istringstream in(text);
  std::string line;

  // Header.
  if (!std::getline(in, line)) return std::nullopt;
  int num_qubits = 0;
  {
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word) || word != "qubits" || !(ls >> num_qubits)) {
      return std::nullopt;
    }
    if (num_qubits < 1 || num_qubits > 24) return std::nullopt;
  }
  Circuit circuit(num_qubits);

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string name;
    ls >> name;
    const auto it = gate_names().find(name);
    if (it == gate_names().end()) return std::nullopt;
    const GateKind kind = it->second;

    int target = -1, control = -1;
    Param param = Param::value(0.0);
    bool saw_theta = false;
    std::string token;
    while (ls >> token) {
      std::string key, value;
      if (!split_kv(token, &key, &value)) return std::nullopt;
      try {
        if (key == "t") {
          target = std::stoi(value);
        } else if (key == "c") {
          control = std::stoi(value);
        } else if (key == "theta") {
          saw_theta = true;
          if (value.size() > 3 && value.rfind("p[", 0) == 0 &&
              value.back() == ']') {
            param = Param::slot(
                std::stoi(value.substr(2, value.size() - 3)));
            if (param.index < 0) return std::nullopt;
          } else {
            param = Param::value(std::stod(value));
          }
        } else {
          return std::nullopt;
        }
      } catch (const std::exception&) {
        return std::nullopt;
      }
    }
    if (target < 0 || target >= num_qubits) return std::nullopt;
    if (control >= num_qubits || control == target) return std::nullopt;
    if (is_parameterized(kind) != saw_theta) return std::nullopt;
    if (is_two_qubit(kind) != (control >= 0)) return std::nullopt;

    switch (kind) {
      case GateKind::kRX: circuit.rx(target, param); break;
      case GateKind::kRY: circuit.ry(target, param); break;
      case GateKind::kRZ: circuit.rz(target, param); break;
      case GateKind::kH: circuit.h(target); break;
      case GateKind::kX: circuit.x(target); break;
      case GateKind::kY: circuit.y(target); break;
      case GateKind::kZ: circuit.z(target); break;
      case GateKind::kS: circuit.s(target); break;
      case GateKind::kT: circuit.t(target); break;
      case GateKind::kCNOT: circuit.cnot(control, target); break;
      case GateKind::kCZ: circuit.cz(control, target); break;
      case GateKind::kCRX: circuit.crx(control, target, param); break;
      case GateKind::kCRY: circuit.cry(control, target, param); break;
      case GateKind::kCRZ: circuit.crz(control, target, param); break;
      case GateKind::kSWAP: circuit.swap(control, target); break;
    }
  }
  return circuit;
}

}  // namespace sqvae::qsim
