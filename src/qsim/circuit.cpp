#include "qsim/circuit.h"

#include <cassert>
#include <sstream>

namespace sqvae::qsim {

Circuit::Circuit(int num_qubits) : num_qubits_(num_qubits) {
  assert(num_qubits >= 1 && num_qubits <= 24);
}

Circuit& Circuit::push(GateKind kind, int target, int control, Param p) {
  assert(target >= 0 && target < num_qubits_);
  assert(control == -1 || (control >= 0 && control < num_qubits_));
  assert(control != target);
  if (p.is_slot()) {
    assert(is_parameterized(kind));
    num_param_slots_ = std::max(num_param_slots_, p.index + 1);
  }
  ops_.push_back(GateOp{kind, target, control, p});
  return *this;
}

Circuit& Circuit::rx(int target, Param p) {
  return push(GateKind::kRX, target, -1, p);
}
Circuit& Circuit::ry(int target, Param p) {
  return push(GateKind::kRY, target, -1, p);
}
Circuit& Circuit::rz(int target, Param p) {
  return push(GateKind::kRZ, target, -1, p);
}

Circuit& Circuit::rot(int target, Param phi, Param theta, Param omega) {
  // R(phi, theta, omega) = RZ(omega) RY(theta) RZ(phi): RZ(phi) acts first.
  rz(target, phi);
  ry(target, theta);
  rz(target, omega);
  return *this;
}

Circuit& Circuit::h(int target) {
  return push(GateKind::kH, target, -1, Param::value(0));
}
Circuit& Circuit::x(int target) {
  return push(GateKind::kX, target, -1, Param::value(0));
}
Circuit& Circuit::y(int target) {
  return push(GateKind::kY, target, -1, Param::value(0));
}
Circuit& Circuit::z(int target) {
  return push(GateKind::kZ, target, -1, Param::value(0));
}
Circuit& Circuit::s(int target) {
  return push(GateKind::kS, target, -1, Param::value(0));
}
Circuit& Circuit::t(int target) {
  return push(GateKind::kT, target, -1, Param::value(0));
}

Circuit& Circuit::cnot(int control, int target) {
  return push(GateKind::kCNOT, target, control, Param::value(0));
}
Circuit& Circuit::cz(int control, int target) {
  return push(GateKind::kCZ, target, control, Param::value(0));
}
Circuit& Circuit::crx(int control, int target, Param p) {
  return push(GateKind::kCRX, target, control, p);
}
Circuit& Circuit::cry(int control, int target, Param p) {
  return push(GateKind::kCRY, target, control, p);
}
Circuit& Circuit::crz(int control, int target, Param p) {
  return push(GateKind::kCRZ, target, control, p);
}
Circuit& Circuit::swap(int a, int b) {
  return push(GateKind::kSWAP, b, a, Param::value(0));
}

int Circuit::strongly_entangling_layers(int layers, int first_slot) {
  assert(layers >= 0);
  int slot = first_slot;
  for (int l = 0; l < layers; ++l) {
    for (int q = 0; q < num_qubits_; ++q) {
      rot(q, Param::slot(slot), Param::slot(slot + 1), Param::slot(slot + 2));
      slot += 3;
    }
    if (num_qubits_ >= 2) {
      for (int q = 0; q < num_qubits_; ++q) {
        cnot(q, (q + 1) % num_qubits_);
      }
    }
  }
  return slot;
}

int Circuit::angle_embedding(int first_slot) {
  for (int q = 0; q < num_qubits_; ++q) {
    ry(q, Param::slot(first_slot + q));
  }
  return first_slot + num_qubits_;
}

int Circuit::entangling_layer_param_count(int num_qubits, int layers) {
  return 3 * num_qubits * layers;
}

std::string Circuit::to_string() const {
  std::ostringstream os;
  for (const auto& op : ops_) {
    os << gate_name(op.kind);
    if (op.control >= 0) os << " c=" << op.control;
    os << " t=" << op.target;
    if (is_parameterized(op.kind)) {
      if (op.param.is_slot()) {
        os << " theta=p[" << op.param.index << "]";
      } else {
        os << " theta=" << op.param.constant;
      }
    }
    os << '\n';
  }
  return os.str();
}

double resolve_param(const GateOp& op, const std::vector<double>& params) {
  if (op.param.is_slot()) {
    assert(static_cast<std::size_t>(op.param.index) < params.size());
    return params[static_cast<std::size_t>(op.param.index)];
  }
  return op.param.constant;
}

void apply_op(Statevector& state, const GateOp& op,
              const std::vector<double>& params) {
  switch (op.kind) {
    case GateKind::kCNOT:
      state.apply_cnot(op.control, op.target);
      return;
    case GateKind::kCZ:
      state.apply_cz(op.control, op.target);
      return;
    case GateKind::kSWAP:
      state.apply_swap(op.control, op.target);
      return;
    case GateKind::kCRX:
    case GateKind::kCRY:
    case GateKind::kCRZ:
      state.apply_controlled_single(
          gate_matrix(op.kind, resolve_param(op, params)), op.control,
          op.target);
      return;
    default:
      state.apply_single(gate_matrix(op.kind, resolve_param(op, params)),
                         op.target);
      return;
  }
}

void apply_op_dagger(Statevector& state, const GateOp& op,
                     const std::vector<double>& params) {
  switch (op.kind) {
    case GateKind::kCNOT:
      state.apply_cnot(op.control, op.target);  // self-inverse
      return;
    case GateKind::kCZ:
      state.apply_cz(op.control, op.target);  // self-inverse
      return;
    case GateKind::kSWAP:
      state.apply_swap(op.control, op.target);  // self-inverse
      return;
    case GateKind::kCRX:
    case GateKind::kCRY:
    case GateKind::kCRZ:
      state.apply_controlled_single(
          dagger(gate_matrix(op.kind, resolve_param(op, params))), op.control,
          op.target);
      return;
    default:
      state.apply_single(
          dagger(gate_matrix(op.kind, resolve_param(op, params))), op.target);
      return;
  }
}

void run(const Circuit& circuit, const std::vector<double>& params,
         Statevector& state) {
  assert(state.num_qubits() == circuit.num_qubits());
  assert(static_cast<int>(params.size()) >= circuit.num_param_slots());
  for (const auto& op : circuit.ops()) {
    apply_op(state, op, params);
  }
}

Statevector run_from_zero(const Circuit& circuit,
                          const std::vector<double>& params) {
  Statevector state(circuit.num_qubits());
  run(circuit, params, state);
  return state;
}

}  // namespace sqvae::qsim
