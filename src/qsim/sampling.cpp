#include "qsim/sampling.h"

#include <cassert>

namespace sqvae::qsim {

std::size_t sample_basis_state(const Statevector& state, sqvae::Rng& rng) {
  // Inverse-CDF sampling over |a_i|^2. The state is assumed normalised;
  // round-off is absorbed by returning the last state when r overshoots.
  double r = rng.uniform();
  for (std::size_t i = 0; i + 1 < state.dim(); ++i) {
    const double p = std::norm(state[i]);
    if (r < p) return i;
    r -= p;
  }
  return state.dim() - 1;
}

std::vector<std::size_t> sample_shots(const Statevector& state,
                                      std::size_t shots, sqvae::Rng& rng) {
  std::vector<std::size_t> out(shots);
  for (std::size_t s = 0; s < shots; ++s) {
    out[s] = sample_basis_state(state, rng);
  }
  return out;
}

std::vector<double> estimate_expectations_z(const Statevector& state,
                                            std::size_t shots,
                                            sqvae::Rng& rng) {
  assert(shots > 0);
  const int n = state.num_qubits();
  std::vector<double> sums(static_cast<std::size_t>(n), 0.0);
  for (std::size_t s = 0; s < shots; ++s) {
    const std::size_t outcome = sample_basis_state(state, rng);
    for (int q = 0; q < n; ++q) {
      sums[static_cast<std::size_t>(q)] +=
          (outcome & (std::size_t{1} << q)) ? -1.0 : 1.0;
    }
  }
  for (double& v : sums) v /= static_cast<double>(shots);
  return sums;
}

std::vector<double> estimate_probabilities(const Statevector& state,
                                           std::size_t shots,
                                           sqvae::Rng& rng) {
  assert(shots > 0);
  std::vector<double> histogram(state.dim(), 0.0);
  for (std::size_t s = 0; s < shots; ++s) {
    histogram[sample_basis_state(state, rng)] += 1.0;
  }
  for (double& v : histogram) v /= static_cast<double>(shots);
  return histogram;
}

}  // namespace sqvae::qsim
