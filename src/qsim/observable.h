// Diagonal observables.
//
// Every measurement the paper's models use — per-qubit Pauli-Z expectations
// for latent/output vectors, and computational-basis probabilities for the
// fully-quantum decoder — is diagonal in the computational basis. A single
// real diagonal d of length 2^n therefore represents any observable we need:
// <psi|diag(d)|psi> = sum_i d_i |psi_i|^2. This also makes backpropagation
// uniform: the vector-Jacobian product of a measurement layer is itself an
// expectation of one *weighted* diagonal observable, so one adjoint sweep
// differentiates the whole output vector (see adjoint.h).
#pragma once

#include <vector>

namespace sqvae::qsim {

/// Diagonal of Z acting on `qubit` in an n-qubit register:
/// d_i = +1 when bit `qubit` of i is 0, else -1.
std::vector<double> z_diagonal(int num_qubits, int qubit);

/// Diagonal of sum_q w_q Z_q. `weights.size()` must equal num_qubits.
/// This is the observable whose expectation equals the inner product of the
/// per-qubit <Z> vector with `weights` — i.e. the VJP observable for an
/// expectation-vector measurement with cotangent `weights`.
std::vector<double> weighted_z_diagonal(int num_qubits,
                                        const std::vector<double>& weights);

/// For a probabilities measurement p_i = |<i|psi>|^2 with cotangent w,
/// the VJP observable is simply diag(w): sum_i w_i p_i = <psi|diag(w)|psi>.
/// (Provided for symmetry/readability; it returns its argument.)
std::vector<double> probability_vjp_diagonal(std::vector<double> cotangent);

}  // namespace sqvae::qsim
