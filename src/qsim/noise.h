// Stochastic Pauli noise (quantum-trajectory method).
//
// The paper's evaluation is noiseless simulation; this extension models
// NISQ-device imperfections for the robustness ablation (bench_shot_noise):
// after every gate, each touched qubit suffers a Pauli error (X, Y, or Z
// uniformly) with probability p — the depolarizing channel unravelled into
// pure-state trajectories. Averaging M trajectories converges to the
// density-matrix result with O(1/sqrt(M)) error while keeping statevector
// cost, the standard trade-off for simulating noise at this scale.
//
// The functions below are the simple per-gate reference interpreter. The
// production path is TrajectoryBackend (qsim/backend.h), which computes the
// same estimator through the executor's pre-bound plan with snapshot reuse
// and geometric error-pattern sampling — orders of magnitude faster at the
// same statistics; qsim_backend_test.cpp pins the two together.
#pragma once

#include "common/rng.h"
#include "qsim/circuit.h"

namespace sqvae::qsim {

struct NoiseModel {
  /// Per-qubit Pauli error probability applied after every gate on each
  /// qubit the gate touches. 0 disables noise.
  double gate_error = 0.0;
};

/// Uniformly random Pauli matrix (X, Y, or Z with probability 1/3 each) —
/// the single draw that unravels the depolarizing channel. Shared by the
/// reference interpreter below and the trajectory backend (qsim/backend.h)
/// so both always sample the *same* channel definition.
const Mat2& random_pauli(sqvae::Rng& rng);

/// Runs the circuit with stochastic Pauli errors (one trajectory).
void run_noisy(const Circuit& circuit, const std::vector<double>& params,
               Statevector& state, const NoiseModel& noise, sqvae::Rng& rng);

/// Averages <Z_q> over `trajectories` noisy runs from |0...0>.
std::vector<double> noisy_expectations_z(const Circuit& circuit,
                                         const std::vector<double>& params,
                                         const NoiseModel& noise,
                                         std::size_t trajectories,
                                         sqvae::Rng& rng);

}  // namespace sqvae::qsim
