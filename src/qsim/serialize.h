// Circuit text serialization.
//
// A minimal line-oriented format (the same one Circuit::to_string emits)
// for persisting and exchanging circuits:
//
//   qubits 4
//   RY t=0 theta=p[0]
//   RZ t=1 theta=0.5
//   CNOT c=0 t=1
//   CRZ c=2 t=3 theta=p[7]
//
// Round-trips exactly: parse(serialize(c)) reproduces the op list,
// parameter bindings, and slot count. Used by the checkpointing example
// and as a debugging interchange format.
#pragma once

#include <optional>
#include <string>

#include "qsim/circuit.h"

namespace sqvae::qsim {

/// Header line + one line per gate (Circuit::to_string body).
std::string circuit_to_text(const Circuit& circuit);

/// Parses the format above. std::nullopt on any malformed line, unknown
/// gate, out-of-range wire, or missing header.
std::optional<Circuit> circuit_from_text(const std::string& text);

}  // namespace sqvae::qsim
