#include "qsim/gates.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace sqvae::qsim {

bool is_parameterized(GateKind k) {
  switch (k) {
    case GateKind::kRX:
    case GateKind::kRY:
    case GateKind::kRZ:
    case GateKind::kCRX:
    case GateKind::kCRY:
    case GateKind::kCRZ:
      return true;
    default:
      return false;
  }
}

bool is_two_qubit(GateKind k) {
  switch (k) {
    case GateKind::kCNOT:
    case GateKind::kCZ:
    case GateKind::kCRX:
    case GateKind::kCRY:
    case GateKind::kCRZ:
    case GateKind::kSWAP:
      return true;
    default:
      return false;
  }
}

bool is_diagonal(GateKind k) {
  switch (k) {
    case GateKind::kRZ:
    case GateKind::kZ:
    case GateKind::kS:
    case GateKind::kT:
    case GateKind::kCZ:
    case GateKind::kCRZ:
      return true;
    default:
      return false;
  }
}

std::string gate_name(GateKind k) {
  switch (k) {
    case GateKind::kRX: return "RX";
    case GateKind::kRY: return "RY";
    case GateKind::kRZ: return "RZ";
    case GateKind::kH: return "H";
    case GateKind::kX: return "X";
    case GateKind::kY: return "Y";
    case GateKind::kZ: return "Z";
    case GateKind::kS: return "S";
    case GateKind::kT: return "T";
    case GateKind::kCNOT: return "CNOT";
    case GateKind::kCZ: return "CZ";
    case GateKind::kCRX: return "CRX";
    case GateKind::kCRY: return "CRY";
    case GateKind::kCRZ: return "CRZ";
    case GateKind::kSWAP: return "SWAP";
  }
  return "?";
}

Mat2 gate_matrix(GateKind k, double theta) {
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  constexpr cplx i{0.0, 1.0};
  switch (k) {
    case GateKind::kRX:
    case GateKind::kCRX:
      return {cplx{c, 0}, -i * s, -i * s, cplx{c, 0}};
    case GateKind::kRY:
    case GateKind::kCRY:
      return {cplx{c, 0}, cplx{-s, 0}, cplx{s, 0}, cplx{c, 0}};
    case GateKind::kRZ:
    case GateKind::kCRZ:
      return {std::exp(-i * (theta / 2.0)), cplx{0, 0}, cplx{0, 0},
              std::exp(i * (theta / 2.0))};
    case GateKind::kH: {
      const double r = 1.0 / std::numbers::sqrt2;
      return {cplx{r, 0}, cplx{r, 0}, cplx{r, 0}, cplx{-r, 0}};
    }
    case GateKind::kX:
      return {cplx{0, 0}, cplx{1, 0}, cplx{1, 0}, cplx{0, 0}};
    case GateKind::kY:
      return {cplx{0, 0}, -i, i, cplx{0, 0}};
    case GateKind::kZ:
      return {cplx{1, 0}, cplx{0, 0}, cplx{0, 0}, cplx{-1, 0}};
    case GateKind::kS:
      return {cplx{1, 0}, cplx{0, 0}, cplx{0, 0}, i};
    case GateKind::kT:
      return {cplx{1, 0}, cplx{0, 0}, cplx{0, 0},
              std::exp(i * (std::numbers::pi / 4.0))};
    case GateKind::kCNOT:
      // Matrix applied on the control=|1> block.
      return gate_matrix(GateKind::kX, 0.0);
    case GateKind::kCZ:
      return gate_matrix(GateKind::kZ, 0.0);
    case GateKind::kSWAP:
      // SWAP has no meaningful 2x2 block; the statevector kernel handles it
      // directly. Return identity to keep callers total.
      return {cplx{1, 0}, cplx{0, 0}, cplx{0, 0}, cplx{1, 0}};
  }
  return {cplx{1, 0}, cplx{0, 0}, cplx{0, 0}, cplx{1, 0}};
}

Mat2 gate_matrix_derivative(GateKind k, double theta) {
  assert(is_parameterized(k));
  const double c = 0.5 * std::cos(theta / 2.0);
  const double s = 0.5 * std::sin(theta / 2.0);
  constexpr cplx i{0.0, 1.0};
  switch (k) {
    case GateKind::kRX:
    case GateKind::kCRX:
      // d/dtheta [cos(t/2) I - i sin(t/2) X]
      return {cplx{-s, 0}, -i * c, -i * c, cplx{-s, 0}};
    case GateKind::kRY:
    case GateKind::kCRY:
      return {cplx{-s, 0}, cplx{-c, 0}, cplx{c, 0}, cplx{-s, 0}};
    case GateKind::kRZ:
    case GateKind::kCRZ:
      return {-i * 0.5 * std::exp(-i * (theta / 2.0)), cplx{0, 0}, cplx{0, 0},
              i * 0.5 * std::exp(i * (theta / 2.0))};
    default:
      break;
  }
  return {cplx{0, 0}, cplx{0, 0}, cplx{0, 0}, cplx{0, 0}};
}

}  // namespace sqvae::qsim
