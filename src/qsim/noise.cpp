#include "qsim/noise.h"

#include <cassert>

#include "qsim/embedding.h"

namespace sqvae::qsim {

const Mat2& random_pauli(sqvae::Rng& rng) {
  static const Mat2 kPauli[3] = {gate_matrix(GateKind::kX, 0.0),
                                 gate_matrix(GateKind::kY, 0.0),
                                 gate_matrix(GateKind::kZ, 0.0)};
  return kPauli[rng.uniform_int(0, 2)];
}

namespace {

void maybe_pauli_error(Statevector& state, int qubit, double p,
                       sqvae::Rng& rng) {
  if (p <= 0.0 || !rng.bernoulli(p)) return;
  state.apply_single(random_pauli(rng), qubit);
}

}  // namespace

void run_noisy(const Circuit& circuit, const std::vector<double>& params,
               Statevector& state, const NoiseModel& noise, sqvae::Rng& rng) {
  assert(state.num_qubits() == circuit.num_qubits());
  for (const GateOp& op : circuit.ops()) {
    apply_op(state, op, params);
    maybe_pauli_error(state, op.target, noise.gate_error, rng);
    if (op.control >= 0) {
      maybe_pauli_error(state, op.control, noise.gate_error, rng);
    }
  }
}

std::vector<double> noisy_expectations_z(const Circuit& circuit,
                                         const std::vector<double>& params,
                                         const NoiseModel& noise,
                                         std::size_t trajectories,
                                         sqvae::Rng& rng) {
  assert(trajectories > 0);
  std::vector<double> sums(static_cast<std::size_t>(circuit.num_qubits()),
                           0.0);
  for (std::size_t t = 0; t < trajectories; ++t) {
    Statevector state(circuit.num_qubits());
    run_noisy(circuit, params, state, noise, rng);
    const std::vector<double> e = expectations_z(state);
    for (std::size_t q = 0; q < sums.size(); ++q) sums[q] += e[q];
  }
  for (double& v : sums) v /= static_cast<double>(trajectories);
  return sums;
}

}  // namespace sqvae::qsim
