#include "qsim/statevector.h"

#include <cassert>
#include <cmath>

namespace sqvae::qsim {

namespace {
[[maybe_unused]] bool is_power_of_two(std::size_t n) {
  return n != 0 && (n & (n - 1)) == 0;
}

int log2_size(std::size_t n) {
  int k = 0;
  while ((std::size_t{1} << k) < n) ++k;
  return k;
}
}  // namespace

Statevector::Statevector(int num_qubits) : num_qubits_(num_qubits) {
  assert(num_qubits >= 1 && num_qubits <= 24);
  amps_.assign(std::size_t{1} << num_qubits, cplx{0.0, 0.0});
  amps_[0] = cplx{1.0, 0.0};
}

Statevector::Statevector(std::vector<cplx> amplitudes)
    : amps_(std::move(amplitudes)) {
  assert(is_power_of_two(amps_.size()));
  num_qubits_ = log2_size(amps_.size());
}

void Statevector::reset() {
  for (auto& a : amps_) a = cplx{0.0, 0.0};
  amps_[0] = cplx{1.0, 0.0};
}

double Statevector::norm_squared() const {
  double s = 0.0;
  for (const auto& a : amps_) s += std::norm(a);
  return s;
}

bool Statevector::is_normalized(double tol) const {
  return std::abs(norm_squared() - 1.0) <= tol;
}

void Statevector::apply_single(const Mat2& m, int target) {
  assert(target >= 0 && target < num_qubits_);
  const std::size_t stride = std::size_t{1} << target;
  const std::size_t n = amps_.size();
  // Iterate over all index pairs (i, i+stride) where bit `target` of i is 0.
  for (std::size_t base = 0; base < n; base += 2 * stride) {
    for (std::size_t i = base; i < base + stride; ++i) {
      const cplx a0 = amps_[i];
      const cplx a1 = amps_[i + stride];
      amps_[i] = m[0] * a0 + m[1] * a1;
      amps_[i + stride] = m[2] * a0 + m[3] * a1;
    }
  }
}

void Statevector::apply_controlled_single(const Mat2& m, int control,
                                          int target) {
  assert(control >= 0 && control < num_qubits_);
  assert(target >= 0 && target < num_qubits_);
  assert(control != target);
  const std::size_t tbit = std::size_t{1} << target;
  const std::size_t cbit = std::size_t{1} << control;
  const std::size_t n = amps_.size();
  for (std::size_t i = 0; i < n; ++i) {
    // Visit each affected pair once: control bit set, target bit clear.
    if ((i & cbit) == 0 || (i & tbit) != 0) continue;
    const cplx a0 = amps_[i];
    const cplx a1 = amps_[i | tbit];
    amps_[i] = m[0] * a0 + m[1] * a1;
    amps_[i | tbit] = m[2] * a0 + m[3] * a1;
  }
}

void Statevector::apply_cnot(int control, int target) {
  assert(control != target);
  const std::size_t tbit = std::size_t{1} << target;
  const std::size_t cbit = std::size_t{1} << control;
  const std::size_t n = amps_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if ((i & cbit) != 0 && (i & tbit) == 0) {
      std::swap(amps_[i], amps_[i | tbit]);
    }
  }
}

void Statevector::apply_cz(int control, int target) {
  assert(control != target);
  const std::size_t tbit = std::size_t{1} << target;
  const std::size_t cbit = std::size_t{1} << control;
  const std::size_t n = amps_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if ((i & cbit) != 0 && (i & tbit) != 0) amps_[i] = -amps_[i];
  }
}

void Statevector::apply_swap(int a, int b) {
  assert(a != b);
  const std::size_t abit = std::size_t{1} << a;
  const std::size_t bbit = std::size_t{1} << b;
  const std::size_t n = amps_.size();
  for (std::size_t i = 0; i < n; ++i) {
    // Swap |..1..0..> with |..0..1..>; visit each pair once.
    if ((i & abit) != 0 && (i & bbit) == 0) {
      std::swap(amps_[i], amps_[(i & ~abit) | bbit]);
    }
  }
}

double Statevector::expectation_z(int qubit) const {
  assert(qubit >= 0 && qubit < num_qubits_);
  const std::size_t bit = std::size_t{1} << qubit;
  double s = 0.0;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    const double p = std::norm(amps_[i]);
    s += (i & bit) ? -p : p;
  }
  return s;
}

std::vector<double> Statevector::probabilities() const {
  std::vector<double> p(amps_.size());
  for (std::size_t i = 0; i < amps_.size(); ++i) p[i] = std::norm(amps_[i]);
  return p;
}

double Statevector::expectation_diag(const std::vector<double>& diag) const {
  assert(diag.size() == amps_.size());
  double s = 0.0;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    s += diag[i] * std::norm(amps_[i]);
  }
  return s;
}

cplx Statevector::inner(const Statevector& a, const Statevector& b) {
  assert(a.dim() == b.dim());
  cplx s{0.0, 0.0};
  for (std::size_t i = 0; i < a.dim(); ++i) {
    s += std::conj(a[i]) * b[i];
  }
  return s;
}

}  // namespace sqvae::qsim
