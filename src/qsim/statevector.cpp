#include "qsim/statevector.h"

#include <cassert>
#include <cmath>

#include "qsim/kernels.h"

namespace sqvae::qsim {

namespace {
[[maybe_unused]] bool is_power_of_two(std::size_t n) {
  return n != 0 && (n & (n - 1)) == 0;
}

int log2_size(std::size_t n) {
  int k = 0;
  while ((std::size_t{1} << k) < n) ++k;
  return k;
}
}  // namespace

Statevector::Statevector(int num_qubits) : num_qubits_(num_qubits) {
  assert(num_qubits >= 1 && num_qubits <= 24);
  amps_.assign(std::size_t{1} << num_qubits, cplx{0.0, 0.0});
  amps_[0] = cplx{1.0, 0.0};
}

Statevector::Statevector(std::vector<cplx> amplitudes)
    : amps_(std::move(amplitudes)) {
  assert(is_power_of_two(amps_.size()));
  num_qubits_ = log2_size(amps_.size());
}

void Statevector::reset() {
  for (auto& a : amps_) a = cplx{0.0, 0.0};
  amps_[0] = cplx{1.0, 0.0};
}

double Statevector::norm_squared() const {
  const std::size_t n = amps_.size();
  return kernels::table_for(n).norm_squared(amps_.data(), n);
}

bool Statevector::is_normalized(double tol) const {
  return std::abs(norm_squared() - 1.0) <= tol;
}

void Statevector::apply_single(const Mat2& m, int target) {
  assert(target >= 0 && target < num_qubits_);
  const std::size_t n = amps_.size();
  kernels::table_for(n).apply_single(amps_.data(), n, m, target);
}

void Statevector::apply_controlled_single(const Mat2& m, int control,
                                          int target) {
  assert(control >= 0 && control < num_qubits_);
  assert(target >= 0 && target < num_qubits_);
  assert(control != target);
  const std::size_t n = amps_.size();
  kernels::table_for(n).apply_controlled_single(amps_.data(), n, m, control,
                                                target);
}

void Statevector::apply_cnot(int control, int target) {
  assert(control >= 0 && control < num_qubits_);
  assert(target >= 0 && target < num_qubits_);
  assert(control != target);
  const std::size_t n = amps_.size();
  kernels::table_for(n).apply_cnot(amps_.data(), n, control, target);
}

void Statevector::apply_cz(int control, int target) {
  assert(control >= 0 && control < num_qubits_);
  assert(target >= 0 && target < num_qubits_);
  assert(control != target);
  const std::size_t n = amps_.size();
  kernels::table_for(n).apply_cz(amps_.data(), n, control, target);
}

void Statevector::apply_swap(int a, int b) {
  assert(a >= 0 && a < num_qubits_);
  assert(b >= 0 && b < num_qubits_);
  assert(a != b);
  const std::size_t n = amps_.size();
  kernels::table_for(n).apply_swap(amps_.data(), n, a, b);
}

void Statevector::apply_diagonal_run(const kernels::DiagonalRun& run) {
  kernels::apply_diagonal_run(amps_.data(), amps_.size(), num_qubits_, run);
}

double Statevector::expectation_z(int qubit) const {
  assert(qubit >= 0 && qubit < num_qubits_);
  const std::size_t n = amps_.size();
  return kernels::table_for(n).expectation_z(amps_.data(), n, qubit);
}

std::vector<double> Statevector::probabilities() const {
  std::vector<double> p(amps_.size());
  kernels::table_for(amps_.size()).probabilities(amps_.data(), amps_.size(),
                                                 p.data());
  return p;
}

double Statevector::expectation_diag(const std::vector<double>& diag) const {
  assert(diag.size() == amps_.size());
  double s = 0.0;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    s += diag[i] * std::norm(amps_[i]);
  }
  return s;
}

cplx Statevector::inner(const Statevector& a, const Statevector& b) {
  assert(a.dim() == b.dim());
  return kernels::table_for(a.dim()).inner(a.amps_.data(), b.amps_.data(),
                                           a.dim());
}

}  // namespace sqvae::qsim
