// CircuitExecutor: compile-once, run-many circuit execution.
//
// `Circuit` is a flat gate list that the naive `run()` path walks gate by
// gate, resolving every `Param` and rebuilding every 2x2 matrix per gate per
// sample. That is the hot path of the paper's hybrid training loop (every
// mini-batch runs the same circuit once per sample, and the adjoint sweep
// runs it again). CircuitExecutor removes the per-sample interpretation
// overhead by compiling the circuit once into a *plan*:
//
//   * runs of adjacent single-qubit gates on the same target are fused into
//     one Mat2 (single-qubit gates on distinct targets commute, so a gate
//     may be delayed until a two-qubit gate touches its wire — this turns
//     the RZ·RY·RZ triple of every `Rot`, plus any neighbouring embedding
//     RY, into a single kernel invocation);
//   * CNOT / CZ / SWAP keep their specialised amplitude-swap / phase-flip
//     kernels, never the generic controlled-matrix path;
//   * maximal runs of >= 2 adjacent *diagonal* steps (fused RZ/Z/S/T
//     matrices, CZ, CRZ) collapse into one kDiagonal step — a single
//     elementwise phase pass over the state (kernels::DiagonalRun), however
//     many gates the run contains;
//   * plan steps whose angles are compile-time constants pre-bind their
//     matrix (or their diagonal phase table) once; only slot-dependent
//     steps are re-bound per sample, an O(plan size) pass that is
//     negligible next to the O(2^n) amplitude kernels.
//
// All amplitude kernels go through the runtime-dispatched kernel layer
// (qsim/kernels.h) — the executor, the naive interpreter, the adjoint
// reverse sweep, and the stochastic backends share one vectorised code
// path.
//
// `run_batch()` / `adjoint_batch()` execute a whole mini-batch with an
// OpenMP-parallel loop over samples (each sample owns its statevector, so
// the loop is embarrassingly parallel). The adjoint sweep uses the fused
// plan for its forward pass and the exact per-gate reverse sweep of
// adjoint.h for gradients, so gradients stay slot-exact.
//
// ---- cache-blocked schedule (20+ qubit states) ----------------------------
//
// Past ~2^15 amplitudes a statevector no longer fits in L2, and the plain
// plan — one full O(2^n) sweep per step — pays a full memory round trip
// per gate. When num_qubits > block_qubits (default 15, i.e. 2^15
// amplitudes = 512 KiB blocks; override with SQVAE_BLOCK_QUBITS or
// ExecutorOptions), the executor compiles a *blocked* schedule on top of
// the fused plan:
//
//   * a step is block-local when every qubit it touches lies below
//     block_qubits (its amplitude pairs never cross a block boundary);
//     kDiagonal steps are block-local regardless of qubit — they are
//     elementwise, and each block reads its own slice of the phase table;
//   * a deterministic compile-time reordering greedily pulls block-local
//     steps into groups, moving a step forward only past steps it
//     commutes with (disjoint qubit sets, or both diagonal). The grouped
//     order is part of the plan: serial and parallel execution run the
//     identical sequence, so threading never changes result bits;
//   * each group executes as one sweep over the blocks — every resident
//     block has all the group's gates applied to it before eviction —
//     OpenMP-parallel across blocks when the state crosses the
//     kernels::use_amplitude_parallel() threshold;
//   * non-local (high-target) steps execute between groups over the full
//     array via the amplitude-parallel kernel table, whose explicit
//     pair-exchange path (KernelTable::apply_single_pairs / swap_runs /
//     negate_run) splits the long contiguous partner runs across threads.
//
// Batch entry points pick ONE level of parallelism by workload shape: when
// a single state crosses the amplitude-parallel threshold, the per-sample
// OpenMP loop collapses to serial (`if` clause) and the team works inside
// each state instead; small states keep the batch-parallel loop and the
// serial per-state fast path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "qsim/adjoint.h"
#include "qsim/circuit.h"
#include "qsim/kernels.h"
#include "qsim/statevector.h"

namespace sqvae::qsim {

/// Compile-time knobs for CircuitExecutor.
struct ExecutorOptions {
  /// log2 of the cache-block size in amplitudes for the blocked schedule.
  /// -1 resolves to the SQVAE_BLOCK_QUBITS environment variable, or 15
  /// (512 KiB blocks). Blocking engages only when the circuit has more
  /// qubits than this.
  int block_qubits = -1;
};

class CircuitExecutor {
 public:
  /// Compiles the fusion plan. The executor is self-contained: it keeps its
  /// own copy of the op list, so the Circuit may be discarded afterwards.
  explicit CircuitExecutor(const Circuit& circuit);

  /// As above, with explicit options (tests and benches pin block_qubits).
  CircuitExecutor(const Circuit& circuit, const ExecutorOptions& options);

  int num_qubits() const { return num_qubits_; }
  int num_param_slots() const { return num_param_slots_; }
  /// Fused plan length — the number of kernel invocations per execution.
  std::size_t num_plan_ops() const { return plan_.size(); }
  /// Original gate count, for fusion-ratio reporting.
  std::size_t num_circuit_ops() const { return ops_.size(); }
  /// Number of fused diagonal-run steps in the plan (each collapses >= 2
  /// diagonal plan steps into one elementwise pass).
  std::size_t num_diag_steps() const { return num_diag_steps_; }
  /// The executor's copy of the original gate list. Engines that interleave
  /// per-gate work with circuit execution (the trajectory backend inserts
  /// stochastic Pauli errors between gates) walk this alongside bind_ops().
  const std::vector<GateOp>& ops() const { return ops_; }

  /// Cache-block size exponent in force for this executor (resolved from
  /// ExecutorOptions / SQVAE_BLOCK_QUBITS at construction).
  int block_qubits() const { return block_qubits_; }
  /// True when the plan runs through the cache-blocked schedule
  /// (num_qubits() > block_qubits()).
  bool blocked() const { return blocked_; }
  /// Number of groups in the blocked schedule: each block-local group is
  /// one sweep over the blocks; each exchange group is one full-array
  /// high-target step. Zero when !blocked().
  std::size_t num_block_groups() const { return groups_.size(); }
  /// Number of non-local steps executed via the pair-exchange path.
  std::size_t num_exchange_steps() const { return num_exchange_steps_; }

  /// Runs the fused plan on `state` in place. Equivalent (up to float
  /// round-off) to qsim::run(circuit, params, state).
  void run(const std::vector<double>& params, Statevector& state) const;

  /// Convenience: runs from |0...0>.
  Statevector run_from_zero(const std::vector<double>& params) const;

  /// Advances states[i] through the plan with params_batch[i], in parallel
  /// over the batch. Sizes must match.
  void run_batch(const std::vector<std::vector<double>>& params_batch,
                 std::vector<Statevector>& states) const;

  /// Binds the 2x2 matrix of every *original* gate op under `params` into
  /// `matrices` (indexed like ops(); CNOT/CZ/SWAP entries are untouched —
  /// they use specialised kernels). This is the per-parameter-set half of
  /// the plan that stochastic engines share: bound once, the matrices are
  /// reused by every Monte-Carlo trajectory of that sample.
  void bind_ops(const std::vector<double>& params,
                std::vector<Mat2>& matrices) const;

  /// One adjoint sweep per sample (see adjoint.h): returns the expectation
  /// value, per-slot gradients, and initial-state cotangent for each sample.
  /// Forward passes use the fused plan; reverse sweeps are per-gate exact.
  std::vector<AdjointResult> adjoint_batch(
      const std::vector<std::vector<double>>& params_batch,
      const std::vector<Statevector>& initials,
      const std::vector<std::vector<double>>& diags) const;

 private:
  enum class StepKind {
    kSingle,      // fused single-qubit matrix on `target`
    kControlled,  // controlled rotation matrix on (control, target)
    kCNOT,
    kCZ,
    kSWAP,
    kDiagonal,  // fused run of diagonal steps -> one elementwise pass
  };

  /// One gate factor of a fused single-qubit run, kept for slot re-binding.
  struct Factor {
    GateKind gate;
    Param param;
  };

  struct Step {
    StepKind kind;
    int target = 0;
    int control = -1;
    // kSingle: product of factors_[factor_begin, factor_end), later factors
    // multiplied on the left (they act after earlier ones).
    // kControlled: factor_begin indexes the single controlled factor.
    int factor_begin = 0;
    int factor_end = 0;
    // kDiagonal: component steps diag_components_[diag_begin, diag_end)
    // collapsed into this run; diag_index addresses the bound phase table
    // (const_diag_tables_ when constant, BoundPlan::diag_tables otherwise).
    int diag_begin = 0;
    int diag_end = 0;
    int diag_index = -1;
    // True when no factor references a parameter slot; `matrix` (or the
    // diagonal table) is then pre-bound at compile time and bind() skips
    // this step.
    bool constant = true;
    Mat2 matrix{};
  };

  /// Per-sample bound state of the plan: slot-dependent step matrices plus
  /// the expanded phase tables of slot-dependent diagonal runs. Reused
  /// across samples (one instance per OpenMP thread in the batch loops).
  struct BoundPlan {
    std::vector<Mat2> matrices;
    std::vector<std::vector<cplx>> diag_tables;
    kernels::DiagonalRun scratch_run;
  };

  /// One group of the blocked schedule: either a run of block-local steps
  /// applied block by block, or a single non-local (exchange) step.
  struct BlockGroup {
    bool local = true;
    std::vector<std::size_t> steps;  // indices into plan_
  };

  /// Computes the matrix of step `s` under `params`.
  Mat2 bind_step(const Step& s, const std::vector<double>& params) const;

  /// Collapses the component steps of diagonal-run `s` into `run`.
  void bind_diagonal(const Step& s, const std::vector<double>& params,
                     kernels::DiagonalRun& run) const;

  /// Re-binds all slot-dependent step matrices and diagonal tables
  /// (constant steps keep their pre-bound values).
  void bind(const std::vector<double>& params, BoundPlan& bound) const;

  /// Applies the plan with the given bound state.
  void execute(const BoundPlan& bound, Statevector& state) const;

  /// Applies plan step `idx` through kernel table `kt` to the sub-array
  /// (amps, len) starting at absolute amplitude offset `off` (diagonal
  /// steps slice their phase table at `off`). For non-blocked execution
  /// off = 0 and len = dim.
  void apply_step(const kernels::KernelTable& kt, std::size_t idx,
                  const BoundPlan& bound, cplx* amps, std::size_t len,
                  std::size_t off) const;

  /// Blocked execute(): group sweeps over cache blocks, exchange steps
  /// over the full array.
  void execute_blocked(const BoundPlan& bound, cplx* amps,
                       std::size_t dim) const;

  /// True when the step's matrix is diagonal for every parameter value
  /// (all factors are structurally diagonal gates).
  bool is_diagonal_step(const Step& s) const;

  /// Coalesces maximal runs of >= 2 adjacent diagonal steps of `raw` into
  /// kDiagonal steps; pre-binds the tables of fully-constant runs.
  void coalesce_diagonal_runs(std::vector<Step> raw);

  /// Bitmask (bit q = qubit q) of the qubits step `s` touches.
  std::uint32_t step_qubit_mask(const Step& s) const;

  /// Builds groups_ (the deterministic commute-and-group reordering) when
  /// num_qubits_ > block_qubits_.
  void build_blocked_schedule();

  int num_qubits_;
  int num_param_slots_;
  std::vector<GateOp> ops_;  // original gate list (exact adjoint reverse)
  std::vector<Step> plan_;
  std::vector<Factor> factors_;
  std::vector<Step> diag_components_;  // flattened kDiagonal constituents
  std::vector<std::vector<cplx>> const_diag_tables_;
  std::size_t num_dynamic_diag_ = 0;
  std::size_t num_diag_steps_ = 0;
  int block_qubits_ = 15;
  bool blocked_ = false;
  std::vector<BlockGroup> groups_;
  std::size_t num_exchange_steps_ = 0;
};

}  // namespace sqvae::qsim
