// Adjoint-mode differentiation of statevector circuits.
//
// Implements the reverse-sweep method of Jones & Gacon (arXiv:2009.02823),
// the same algorithm behind PennyLane's `diff_method="adjoint"` that the
// paper's training relies on (via simulator backprop). For an expectation
// E(theta) = <phi0| U(theta)^dag O U(theta) |phi0> with diagonal O:
//
//   psi    = U |phi0>                 (one forward pass)
//   lambda = O psi
//   for k = N..1:
//     psi    <- U_k^dag psi           (state before gate k)
//     dE/dtheta_k = 2 Re <lambda| dU_k/dtheta_k |psi>
//     lambda <- U_k^dag lambda
//
// Total cost is O(num_gates * 2^n) — independent of the parameter count —
// versus O(num_params * num_gates * 2^n) for parameter shift. After the
// sweep, lambda = U^dag O psi, which is exactly the gradient of E with
// respect to the *initial state*: dE/dRe(phi0_j) = 2 Re(lambda_j) and
// dE/dIm(phi0_j) = 2 Im(lambda_j). Hybrid models use this to backpropagate
// through amplitude embedding into upstream classical layers.
#pragma once

#include <vector>

#include "qsim/circuit.h"
#include "qsim/statevector.h"

namespace sqvae::qsim {

struct AdjointResult {
  /// E = <psi| diag |psi> at the supplied parameters.
  double value = 0.0;
  /// dE/d(params[s]) for every slot s; gates sharing a slot accumulate.
  std::vector<double> param_grads;
  /// lambda = U^dag O psi. Gradient w.r.t. the initial amplitudes:
  /// dE/dRe(phi0_j) = 2*Re(initial_lambda[j]), dE/dIm = 2*Im(...).
  std::vector<cplx> initial_lambda;
};

/// Differentiates <psi_final| diag |psi_final> where psi_final is the result
/// of running `circuit` with `params` on `initial`. `initial` must be
/// normalised for the value to be an expectation, but the gradient formulas
/// hold for any initial vector (useful when the upstream embedding handles
/// normalisation).
AdjointResult adjoint_gradient(const Circuit& circuit,
                               const std::vector<double>& params,
                               const Statevector& initial,
                               const std::vector<double>& diag);

/// Convenience: gradient of dot(cotangent, expectations_z) — the
/// vector-Jacobian product of a per-qubit <Z> measurement layer.
AdjointResult adjoint_gradient_z_vjp(const Circuit& circuit,
                                     const std::vector<double>& params,
                                     const Statevector& initial,
                                     const std::vector<double>& cotangent);

/// Real-input gradient helper: 2*Re(initial_lambda), the gradient of E with
/// respect to real initial amplitudes.
std::vector<double> real_initial_gradient(const AdjointResult& result);

/// Forward half shared by the sweep implementations: writes
/// lambda = diag(O) psi elementwise and returns <psi| diag |psi>. `lambda`
/// must already have psi's dimension (it is typically a copy of psi).
double apply_diag_observable(const std::vector<double>& diag,
                             const Statevector& psi, Statevector& lambda);

/// Reverse half of the adjoint sweep, exposed so execution engines (see
/// executor.h) can pair it with their own — e.g. gate-fused — forward pass.
/// On entry `psi` must hold the final state U|phi0> and `lambda` the vector
/// O psi. On exit `psi` holds the initial state, `lambda` holds U^dag O psi,
/// and `param_grads` (length >= the highest referenced slot + 1) has
/// accumulated dE/d(slot) for every parameterized slot-bound gate.
void adjoint_reverse_sweep(const std::vector<GateOp>& ops,
                           const std::vector<double>& params, Statevector& psi,
                           Statevector& lambda,
                           std::vector<double>& param_grads);

}  // namespace sqvae::qsim
