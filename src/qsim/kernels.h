// Runtime-dispatched statevector kernels: the data-parallel layer under
// every amplitude-touching loop in the simulator.
//
// Statevector::apply_*, the executor's fused plan, the adjoint reverse
// sweep, and the stochastic backends' trajectory replay all funnel through
// the function table returned by active(), so one vectorised implementation
// accelerates every workload at once. Three tables exist:
//
//   * scalar   — portable C++, the reference semantics (and the seed's
//     exact arithmetic for the gate kernels);
//   * avx2     — hand-vectorised AVX2+FMA, compiled into its own
//     translation unit with -mavx2 -mfma (the rest of the binary keeps the
//     baseline ISA, so the executable stays portable) and only selected
//     when the CPU reports both features at startup;
//   * parallel — OpenMP drivers that partition the amplitude array into
//     fixed-size chunks and run the *active* serial table (scalar or avx2)
//     on each chunk. Not a third ISA: a threading layer over the other
//     two, picked per call by state size via table_for() (below).
//
// ISA selection happens once per process, on first use. Setting
// SQVAE_FORCE_SCALAR=1 in the environment pins the scalar table regardless
// of CPU support — CI uses this to run the whole test suite down both
// dispatch paths on the same host. Building with -DSQVAE_SIMD=OFF removes
// the AVX2 translation unit entirely.
//
// ---- KernelTable contract -------------------------------------------------
//
// Kernels operate on raw interleaved complex<double> arrays (`n` is the
// amplitude count, a power of two). Qubit indices follow the repo-wide
// convention (statevector.h): qubit q is bit q of the basis-state index.
//
// Stride classes. Every gate kernel enumerates its (lo, hi) amplitude
// pairs with the same bit loops as the scalar table (kernels.cpp):
//
//   single-qubit, target t:   stride = 2^t; outer blocks of 2*stride, each
//                             holding one contiguous lo-run of `stride`
//                             amplitudes whose partner sits +stride away.
//   two-qubit, masks b1 < b2: three levels — outer blocks of 2*b2, middle
//                             steps of 2*b1, inner contiguous runs of b1
//                             amplitudes (partner offset depends on which
//                             qubit is the target).
//
// The inner-run contiguity is the vectorisation contract: the AVX2 table
// uses 256-bit two-pair vectors when the run length is >= 2, and the
// *target-0 special case* — where lo and hi interleave inside one vector —
// uses an in-register shuffle variant instead (a gather formulation
// loses). Scattered single pairs (run length 1, target != 0) fall back to
// 128-bit ops. All three bodies perform the same per-lane fmaddsub
// arithmetic, so which body handles a pair never changes the result bits.
//
// Sub-array calls. Each kernel is position-independent over whole outer
// blocks: calling it on (amps + off, len) where off and len are multiples
// of the outer block size computes exactly that slice of the full-array
// call, bit for bit. The parallel table and the executor's cache-blocked
// schedule are built entirely on this property.
//
// Thread-safety. All kernels are stateless and reentrant; concurrent calls
// on disjoint amplitude ranges are race-free. The tables themselves are
// immutable after first use. The parallel table must not be entered from
// inside an OpenMP parallel region (nested parallelism); table_for()
// enforces this via omp_in_parallel().
//
// Adding a kernel. (1) Add the function pointer here; (2) implement the
// scalar reference in kernels.cpp and append it to scalar_table() — this
// defines the semantics and the bit-exact baseline; (3) append an AVX2
// body in kernels_avx2.cpp following the stride classes above (reuse
// transform_pairs2 / transform_adjacent / transform_pair128); (4) add a
// parallel driver in kernels.cpp — chunked sub-array calls for elementwise
// or low-stride work, pair-run splitting for high strides, fixed
// block-ordered combination for reductions; (5) extend the golden
// equivalence suites (qsim_kernels_test, qsim_parallel_kernels_test).
// Aggregate initialisation is positional: every table must list every
// member, in declaration order.
#pragma once

#include <cstddef>
#include <vector>

#include "qsim/types.h"

namespace sqvae::qsim::kernels {

/// A fused *diagonal run*: the product of adjacent diagonal circuit steps
/// (RZ/Z/S/T single-qubit factors, CZ, CRZ), collapsed into one elementwise
/// phase per basis state:
///
///   phase(i) = prod_f (bit_{f.qubit}(i) ? f.d1 : f.d0)
///            * prod_p (bit_{p.control}(i) ? (bit_{p.target}(i) ? p.p11
///                                                              : p.p10)
///                                         : 1)
///
/// Diagonal matrices commute, so any contiguous plan run may be collapsed
/// regardless of internal order. CZ is the pair {c, t, 1, -1}; CRZ(theta)
/// is {c, t, e^{-i theta/2}, e^{+i theta/2}}.
struct DiagonalRun {
  struct Factor {
    int qubit;
    cplx d0;
    cplx d1;
  };
  struct Pair {
    int control;
    int target;
    cplx p10;
    cplx p11;
  };

  std::vector<Factor> factors;  // at most one entry per qubit (merged)
  std::vector<Pair> pairs;

  void clear() {
    factors.clear();
    pairs.clear();
  }

  /// Multiplies diag(d0, d1) on `qubit` into the run, merging with an
  /// existing factor on the same qubit.
  void push_factor(int qubit, cplx d0, cplx d1);

  /// Appends a controlled phase pair (applied where `control` is set).
  void push_pair(int control, int target, cplx p10, cplx p11);
};

/// Expands a run into the dense per-basis-state phase table of size
/// 2^num_qubits (resized by the call). Factor phases are folded in with a
/// doubling pass (O(2^n) total), pair phases with one strided pass each.
void build_diagonal_table(const DiagonalRun& run, int num_qubits,
                          std::vector<cplx>& table);

/// The dispatchable kernel set. All pointers are always non-null. See the
/// file header for the stride-class / sub-array / thread-safety contract.
struct KernelTable {
  /// General 2x2 gate on `target` (stride-aware: target 0 uses an
  /// in-register shuffle variant in the AVX2 table).
  void (*apply_single)(cplx* amps, std::size_t n, const Mat2& m, int target);
  /// 2x2 gate on `target`, applied on the control=|1> subspace.
  void (*apply_controlled_single)(cplx* amps, std::size_t n, const Mat2& m,
                                  int control, int target);
  void (*apply_cnot)(cplx* amps, std::size_t n, int control, int target);
  void (*apply_cz)(cplx* amps, std::size_t n, int control, int target);
  void (*apply_swap)(cplx* amps, std::size_t n, int a, int b);
  /// One elementwise pass: amps[i] *= table[i] (a prebuilt diagonal-run
  /// table from build_diagonal_table()).
  void (*apply_diagonal_table)(cplx* amps, std::size_t n, const cplx* table);
  /// <a|b> = sum conj(a[i]) * b[i].
  cplx (*inner)(const cplx* a, const cplx* b, std::size_t n);
  double (*norm_squared)(const cplx* amps, std::size_t n);
  double (*expectation_z)(const cplx* amps, std::size_t n, int qubit);
  /// value = sum diag[i] |psi[i]|^2 and lambda[i] = diag[i] psi[i], fused
  /// in one pass (the adjoint sweep's observable application).
  double (*apply_diag_observable)(const double* diag, const cplx* psi,
                                  cplx* lambda, std::size_t n);
  /// out[i] = |amps[i]|^2.
  void (*probabilities)(const cplx* amps, std::size_t n, double* out);

  // Contiguous pair-run primitives. These are the explicit pair-exchange
  // bodies for high-target-qubit gates: when a qubit mask is so large that
  // an array has only a handful of outer blocks, callers (the parallel
  // drivers, the blocked executor) split the long contiguous lo-run of
  // each block into sub-runs and drive these directly. lo/hi runs must not
  // overlap.

  /// 2x2 gate on pairs (lo[i], hi[i]) for i in [0, count).
  void (*apply_single_pairs)(cplx* lo, cplx* hi, std::size_t count,
                             const Mat2& m);
  /// Exchanges lo[i] <-> hi[i] for i in [0, count) (CNOT/SWAP bodies).
  void (*swap_runs)(cplx* lo, cplx* hi, std::size_t count);
  /// amps[i] = -amps[i] for i in [0, count) (CZ body).
  void (*negate_run)(cplx* amps, std::size_t count);
};

enum class Isa { kScalar, kAvx2 };

/// "scalar" / "avx2" — stable strings, reported in BENCH_qsim_micro.json.
const char* isa_name(Isa isa);

/// The table picked by runtime ISA dispatch (cached after the first call).
/// Serial: every kernel runs on the calling thread.
const KernelTable& active();

/// Which ISA active() resolved to.
Isa active_isa();

/// Portable reference implementation — the A/B baseline and the golden
/// oracle of the kernel equivalence tests.
const KernelTable& scalar_table();

/// The AVX2 table when it is compiled in *and* the CPU supports AVX2+FMA;
/// nullptr otherwise. Ignores SQVAE_FORCE_SCALAR (tests use this to compare
/// both implementations inside one process).
const KernelTable* avx2_table_if_supported();

/// True when the binary was built with SQVAE_SIMD (the AVX2 TU is linked).
bool compiled_with_simd();

// ---- amplitude-parallel layer ---------------------------------------------
//
// The parallel table splits each call into fixed-size chunks
// (kParallelChunk amplitudes in kernels.cpp) worked by an OpenMP team;
// every chunk is computed by the active serial table, so the gate kernels
// are bit-identical to their serial counterparts under any partition (the
// writes are disjoint and the per-pair arithmetic is partition-invariant).
// Reductions combine per-chunk partials serially in chunk order; the chunk
// geometry depends only on n, never on the thread count, so every result
// is bit-identical at 1..N threads (fixed-order accumulation). Without
// OpenMP the drivers degrade to a serial loop over the same chunks, keeping
// the chunked reduction order — and therefore the bits — identical.

/// The OpenMP-parallel table. Safe to call with any n >= 1; callers that
/// want the size threshold and nested-parallelism guard use table_for().
const KernelTable& parallel_table();

/// Amplitude count at/above which table_for() picks the parallel table.
/// Default 2^15 (a 15-qubit state, 512 KiB); override with the
/// SQVAE_PAR_THRESHOLD environment variable (amplitudes, 0 = always
/// parallel) or set_parallel_threshold().
std::size_t parallel_threshold();

/// Overrides the threshold at runtime (bench A/B toggling and tests).
/// SIZE_MAX pins the serial path.
void set_parallel_threshold(std::size_t threshold);

/// True when a kernel call on `n` amplitudes should amplitude-parallelise:
/// n >= parallel_threshold(), OpenMP is compiled in, and the caller is not
/// already inside an active parallel region (the batch loops own the team
/// then — one level of parallelism, chosen by workload shape).
bool use_amplitude_parallel(std::size_t n);

/// parallel_table() when use_amplitude_parallel(n), else active().
const KernelTable& table_for(std::size_t n);

/// Convenience wrapper: builds the run's table into thread-local scratch
/// and applies it in one pass via the size-appropriate kernel table.
void apply_diagonal_run(cplx* amps, std::size_t n, int num_qubits,
                        const DiagonalRun& run);

}  // namespace sqvae::qsim::kernels
