// Runtime-dispatched statevector kernels: the data-parallel layer under
// every amplitude-touching loop in the simulator.
//
// Statevector::apply_*, the executor's fused plan, the adjoint reverse
// sweep, and the stochastic backends' trajectory replay all funnel through
// the function table returned by active(), so one vectorised implementation
// accelerates every workload at once. Two implementations exist:
//
//   * scalar  — portable C++, the reference semantics (and the seed's exact
//     arithmetic for the gate kernels);
//   * avx2    — hand-vectorised AVX2+FMA, compiled into its own translation
//     unit with -mavx2 -mfma (the rest of the binary keeps the baseline
//     ISA, so the executable stays portable) and only selected when the CPU
//     reports both features at startup.
//
// Selection happens once per process, on first use. Setting
// SQVAE_FORCE_SCALAR=1 in the environment pins the scalar table regardless
// of CPU support — CI uses this to run the whole test suite down both
// dispatch paths on the same host. Building with -DSQVAE_SIMD=OFF removes
// the AVX2 translation unit entirely.
//
// Kernels operate on raw interleaved complex<double> arrays (`n` is the
// amplitude count, a power of two). Qubit indices follow the repo-wide
// convention (statevector.h): qubit q is bit q of the basis-state index.
#pragma once

#include <cstddef>
#include <vector>

#include "qsim/types.h"

namespace sqvae::qsim::kernels {

/// A fused *diagonal run*: the product of adjacent diagonal circuit steps
/// (RZ/Z/S/T single-qubit factors, CZ, CRZ), collapsed into one elementwise
/// phase per basis state:
///
///   phase(i) = prod_f (bit_{f.qubit}(i) ? f.d1 : f.d0)
///            * prod_p (bit_{p.control}(i) ? (bit_{p.target}(i) ? p.p11
///                                                              : p.p10)
///                                         : 1)
///
/// Diagonal matrices commute, so any contiguous plan run may be collapsed
/// regardless of internal order. CZ is the pair {c, t, 1, -1}; CRZ(theta)
/// is {c, t, e^{-i theta/2}, e^{+i theta/2}}.
struct DiagonalRun {
  struct Factor {
    int qubit;
    cplx d0;
    cplx d1;
  };
  struct Pair {
    int control;
    int target;
    cplx p10;
    cplx p11;
  };

  std::vector<Factor> factors;  // at most one entry per qubit (merged)
  std::vector<Pair> pairs;

  void clear() {
    factors.clear();
    pairs.clear();
  }

  /// Multiplies diag(d0, d1) on `qubit` into the run, merging with an
  /// existing factor on the same qubit.
  void push_factor(int qubit, cplx d0, cplx d1);

  /// Appends a controlled phase pair (applied where `control` is set).
  void push_pair(int control, int target, cplx p10, cplx p11);
};

/// Expands a run into the dense per-basis-state phase table of size
/// 2^num_qubits (resized by the call). Factor phases are folded in with a
/// doubling pass (O(2^n) total), pair phases with one strided pass each.
void build_diagonal_table(const DiagonalRun& run, int num_qubits,
                          std::vector<cplx>& table);

/// The dispatchable kernel set. All pointers are always non-null.
struct KernelTable {
  /// General 2x2 gate on `target` (stride-aware: target 0 uses an
  /// in-register shuffle variant in the AVX2 table).
  void (*apply_single)(cplx* amps, std::size_t n, const Mat2& m, int target);
  /// 2x2 gate on `target`, applied on the control=|1> subspace.
  void (*apply_controlled_single)(cplx* amps, std::size_t n, const Mat2& m,
                                  int control, int target);
  void (*apply_cnot)(cplx* amps, std::size_t n, int control, int target);
  void (*apply_cz)(cplx* amps, std::size_t n, int control, int target);
  void (*apply_swap)(cplx* amps, std::size_t n, int a, int b);
  /// One elementwise pass: amps[i] *= table[i] (a prebuilt diagonal-run
  /// table from build_diagonal_table()).
  void (*apply_diagonal_table)(cplx* amps, std::size_t n, const cplx* table);
  /// <a|b> = sum conj(a[i]) * b[i].
  cplx (*inner)(const cplx* a, const cplx* b, std::size_t n);
  double (*norm_squared)(const cplx* amps, std::size_t n);
  double (*expectation_z)(const cplx* amps, std::size_t n, int qubit);
  /// value = sum diag[i] |psi[i]|^2 and lambda[i] = diag[i] psi[i], fused
  /// in one pass (the adjoint sweep's observable application).
  double (*apply_diag_observable)(const double* diag, const cplx* psi,
                                  cplx* lambda, std::size_t n);
  /// out[i] = |amps[i]|^2.
  void (*probabilities)(const cplx* amps, std::size_t n, double* out);
};

enum class Isa { kScalar, kAvx2 };

/// "scalar" / "avx2" — stable strings, reported in BENCH_qsim_micro.json.
const char* isa_name(Isa isa);

/// The table picked by runtime dispatch (cached after the first call).
const KernelTable& active();

/// Which ISA active() resolved to.
Isa active_isa();

/// Portable reference implementation — the A/B baseline and the golden
/// oracle of the kernel equivalence tests.
const KernelTable& scalar_table();

/// The AVX2 table when it is compiled in *and* the CPU supports AVX2+FMA;
/// nullptr otherwise. Ignores SQVAE_FORCE_SCALAR (tests use this to compare
/// both implementations inside one process).
const KernelTable* avx2_table_if_supported();

/// True when the binary was built with SQVAE_SIMD (the AVX2 TU is linked).
bool compiled_with_simd();

/// Convenience wrapper: builds the run's table into thread-local scratch
/// and applies it in one pass via the active kernel table.
void apply_diagonal_run(cplx* amps, std::size_t n, int num_qubits,
                        const DiagonalRun& run);

}  // namespace sqvae::qsim::kernels
