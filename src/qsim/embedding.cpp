#include "qsim/embedding.h"

#include <cassert>
#include <cmath>

namespace sqvae::qsim {

namespace {
constexpr double kNormEps = 1e-12;

double l2(const std::vector<double>& x) {
  double s = 0.0;
  for (double v : x) s += v * v;
  return std::sqrt(s);
}
}  // namespace

Statevector amplitude_embedding(const std::vector<double>& x, int num_qubits) {
  [[maybe_unused]] const std::size_t dim = std::size_t{1} << num_qubits;
  assert(x.size() <= dim);
  Statevector state(num_qubits);
  const double r = l2(x);
  if (r < kNormEps) {
    return state;  // |0...0>
  }
  state[0] = cplx{0.0, 0.0};
  for (std::size_t j = 0; j < x.size(); ++j) {
    state[j] = cplx{x[j] / r, 0.0};
  }
  return state;
}

std::vector<double> amplitude_embedding_backward(
    const std::vector<double>& x, const std::vector<double>& state_grad) {
  assert(state_grad.size() >= x.size());
  std::vector<double> dx(x.size(), 0.0);
  const double r = l2(x);
  if (r < kNormEps) {
    return dx;  // embedding is constant at the zero vector; subgradient 0
  }
  // phi_j = x_j / r; dphi_j/dx_i = (delta_ij - phi_i phi_j) / r.
  double phi_dot_g = 0.0;
  for (std::size_t j = 0; j < x.size(); ++j) {
    phi_dot_g += (x[j] / r) * state_grad[j];
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    dx[i] = (state_grad[i] - (x[i] / r) * phi_dot_g) / r;
  }
  return dx;
}

std::vector<double> expectations_z(const Statevector& state) {
  std::vector<double> out(static_cast<std::size_t>(state.num_qubits()));
  for (int q = 0; q < state.num_qubits(); ++q) {
    out[static_cast<std::size_t>(q)] = state.expectation_z(q);
  }
  return out;
}

}  // namespace sqvae::qsim
