// Shared numeric types for the statevector simulator.
#pragma once

#include <array>
#include <complex>

namespace sqvae::qsim {

using cplx = std::complex<double>;

/// Row-major 2x2 complex matrix: {m00, m01, m10, m11}.
using Mat2 = std::array<cplx, 4>;

/// Conjugate transpose of a 2x2 matrix.
inline Mat2 dagger(const Mat2& m) {
  return {std::conj(m[0]), std::conj(m[2]), std::conj(m[1]), std::conj(m[3])};
}

/// 2x2 matrix product a*b.
inline Mat2 matmul2(const Mat2& a, const Mat2& b) {
  return {a[0] * b[0] + a[1] * b[2], a[0] * b[1] + a[1] * b[3],
          a[2] * b[0] + a[3] * b[2], a[2] * b[1] + a[3] * b[3]};
}

}  // namespace sqvae::qsim
