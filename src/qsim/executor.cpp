#include "qsim/executor.h"

#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <utility>

namespace sqvae::qsim {

namespace {

constexpr Mat2 kIdentity{cplx{1.0, 0.0}, cplx{0.0, 0.0}, cplx{0.0, 0.0},
                         cplx{1.0, 0.0}};

double resolve(const Param& p, const std::vector<double>& params) {
  if (p.index >= 0) {
    assert(static_cast<std::size_t>(p.index) < params.size());
    return params[static_cast<std::size_t>(p.index)];
  }
  return p.constant;
}

/// Resolves ExecutorOptions::block_qubits: explicit option, else the
/// SQVAE_BLOCK_QUBITS environment variable, else 15 (2^15 amplitudes =
/// 512 KiB blocks, sized for a typical L2). Clamped to [8, 24] so a typo
/// can neither block per-cacheline nor disable blocking entirely.
int resolve_block_qubits(int option) {
  int bq = option;
  if (bq < 0) {
    bq = 15;
    if (const char* v = std::getenv("SQVAE_BLOCK_QUBITS")) {
      char* end = nullptr;
      const long parsed = std::strtol(v, &end, 10);
      if (end != v && parsed > 0) bq = static_cast<int>(parsed);
    }
  }
  if (bq < 8) bq = 8;
  if (bq > 24) bq = 24;
  return bq;
}

}  // namespace

CircuitExecutor::CircuitExecutor(const Circuit& circuit)
    : CircuitExecutor(circuit, ExecutorOptions{}) {}

CircuitExecutor::CircuitExecutor(const Circuit& circuit,
                                 const ExecutorOptions& options)
    : num_qubits_(circuit.num_qubits()),
      num_param_slots_(circuit.num_param_slots()),
      ops_(circuit.ops()),
      block_qubits_(resolve_block_qubits(options.block_qubits)) {
  // Per-target runs of not-yet-emitted single-qubit gates. A run is flushed
  // (fused into one plan step) only when a two-qubit gate touches its wire
  // or the circuit ends; single-qubit gates on other wires commute past it.
  std::vector<std::vector<Factor>> pending(
      static_cast<std::size_t>(num_qubits_));
  std::vector<Step> raw;

  auto flush = [&](int q) {
    std::vector<Factor>& run = pending[static_cast<std::size_t>(q)];
    if (run.empty()) return;
    Step s;
    s.kind = StepKind::kSingle;
    s.target = q;
    s.factor_begin = static_cast<int>(factors_.size());
    factors_.insert(factors_.end(), run.begin(), run.end());
    s.factor_end = static_cast<int>(factors_.size());
    for (const Factor& f : run) {
      if (f.param.is_slot()) s.constant = false;
    }
    if (s.constant) s.matrix = bind_step(s, {});
    raw.push_back(s);
    run.clear();
  };

  for (const GateOp& op : ops_) {
    switch (op.kind) {
      case GateKind::kCNOT:
      case GateKind::kCZ:
      case GateKind::kSWAP: {
        flush(op.control);
        flush(op.target);
        Step s;
        s.kind = op.kind == GateKind::kCNOT  ? StepKind::kCNOT
                 : op.kind == GateKind::kCZ ? StepKind::kCZ
                                            : StepKind::kSWAP;
        s.target = op.target;
        s.control = op.control;
        raw.push_back(s);
        break;
      }
      case GateKind::kCRX:
      case GateKind::kCRY:
      case GateKind::kCRZ: {
        flush(op.control);
        flush(op.target);
        Step s;
        s.kind = StepKind::kControlled;
        s.target = op.target;
        s.control = op.control;
        s.factor_begin = static_cast<int>(factors_.size());
        factors_.push_back(Factor{op.kind, op.param});
        s.factor_end = s.factor_begin + 1;
        s.constant = !op.param.is_slot();
        if (s.constant) s.matrix = gate_matrix(op.kind, op.param.constant);
        raw.push_back(s);
        break;
      }
      default:
        pending[static_cast<std::size_t>(op.target)].push_back(
            Factor{op.kind, op.param});
        break;
    }
  }
  for (int q = 0; q < num_qubits_; ++q) flush(q);

  coalesce_diagonal_runs(std::move(raw));
  build_blocked_schedule();
}

std::uint32_t CircuitExecutor::step_qubit_mask(const Step& s) const {
  switch (s.kind) {
    case StepKind::kSingle:
      return std::uint32_t{1} << s.target;
    case StepKind::kDiagonal: {
      std::uint32_t mask = 0;
      for (int k = s.diag_begin; k < s.diag_end; ++k) {
        mask |= step_qubit_mask(diag_components_[static_cast<std::size_t>(k)]);
      }
      return mask;
    }
    default:
      return (std::uint32_t{1} << s.target) | (std::uint32_t{1} << s.control);
  }
}

void CircuitExecutor::build_blocked_schedule() {
  blocked_ = num_qubits_ > block_qubits_;
  if (!blocked_) return;

  // A step is block-local when its amplitude pairs never cross a cache
  // block: every touched qubit lies below block_qubits_. kDiagonal steps
  // are elementwise — each block reads its own slice of the phase table —
  // so they are local whatever qubits their components reference.
  const std::uint32_t high_mask = ~((std::uint32_t{1} << block_qubits_) - 1);
  auto local = [&](const Step& s) {
    return s.kind == StepKind::kDiagonal ||
           (step_qubit_mask(s) & high_mask) == 0;
  };
  // Conservative commutation: disjoint qubit sets always commute; two
  // diagonal steps commute regardless of overlap.
  auto diagish = [&](const Step& s) {
    return s.kind == StepKind::kDiagonal || is_diagonal_step(s);
  };

  // Greedy deterministic reorder: scan the remaining plan in order,
  // pulling every local step that commutes with all not-yet-emitted
  // non-members into the current group; emit the group, then the first
  // blocked step as an exchange group; repeat on the rest. O(plan^2) at
  // compile time, and purely a function of the plan — serial and
  // N-thread execution share the identical step order.
  std::vector<std::size_t> remaining(plan_.size());
  for (std::size_t i = 0; i < plan_.size(); ++i) remaining[i] = i;

  while (!remaining.empty()) {
    BlockGroup group;
    group.local = true;
    std::vector<std::size_t> blockers;
    std::uint32_t blocker_mask = 0;
    bool blockers_all_diag = true;
    for (std::size_t idx : remaining) {
      const Step& s = plan_[idx];
      const bool commutes_past =
          blockers.empty() ||
          (step_qubit_mask(s) & blocker_mask) == 0 ||
          (diagish(s) && blockers_all_diag);
      if (local(s) && commutes_past) {
        group.steps.push_back(idx);
      } else {
        blockers.push_back(idx);
        blocker_mask |= step_qubit_mask(s);
        blockers_all_diag = blockers_all_diag && diagish(s);
      }
    }
    if (!group.steps.empty()) groups_.push_back(std::move(group));
    if (!blockers.empty()) {
      BlockGroup exchange;
      exchange.local = false;
      exchange.steps.push_back(blockers.front());
      groups_.push_back(std::move(exchange));
      ++num_exchange_steps_;
      blockers.erase(blockers.begin());
    }
    remaining = std::move(blockers);
  }
}

bool CircuitExecutor::is_diagonal_step(const Step& s) const {
  switch (s.kind) {
    case StepKind::kCZ:
      return true;
    case StepKind::kSingle:
    case StepKind::kControlled:
      for (int f = s.factor_begin; f < s.factor_end; ++f) {
        if (!is_diagonal(factors_[static_cast<std::size_t>(f)].gate)) {
          return false;
        }
      }
      return true;
    default:
      return false;
  }
}

void CircuitExecutor::coalesce_diagonal_runs(std::vector<Step> raw) {
  std::size_t i = 0;
  while (i < raw.size()) {
    std::size_t j = i;
    while (j < raw.size() && is_diagonal_step(raw[j])) ++j;
    if (j - i < 2) {
      // Not a run (j == i: non-diagonal step; j == i+1: lone diagonal
      // step) — too short to be worth a phase-table pass, keep as-is.
      plan_.push_back(raw[i]);
      ++i;
      continue;
    }
    Step d;
    d.kind = StepKind::kDiagonal;
    d.diag_begin = static_cast<int>(diag_components_.size());
    for (std::size_t k = i; k < j; ++k) {
      if (!raw[k].constant) d.constant = false;
      diag_components_.push_back(raw[k]);
    }
    d.diag_end = static_cast<int>(diag_components_.size());
    if (d.constant) {
      kernels::DiagonalRun run;
      bind_diagonal(d, {}, run);
      std::vector<cplx> table;
      kernels::build_diagonal_table(run, num_qubits_, table);
      d.diag_index = static_cast<int>(const_diag_tables_.size());
      const_diag_tables_.push_back(std::move(table));
    } else {
      d.diag_index = static_cast<int>(num_dynamic_diag_++);
    }
    plan_.push_back(d);
    ++num_diag_steps_;
    i = j;
  }
}

Mat2 CircuitExecutor::bind_step(const Step& s,
                                const std::vector<double>& params) const {
  Mat2 m = kIdentity;
  // Factor i acts after factor i-1, so it multiplies on the left.
  for (int f = s.factor_begin; f < s.factor_end; ++f) {
    const Factor& factor = factors_[static_cast<std::size_t>(f)];
    m = matmul2(gate_matrix(factor.gate, resolve(factor.param, params)), m);
  }
  return m;
}

void CircuitExecutor::bind_diagonal(const Step& s,
                                    const std::vector<double>& params,
                                    kernels::DiagonalRun& run) const {
  run.clear();
  for (int k = s.diag_begin; k < s.diag_end; ++k) {
    const Step& c = diag_components_[static_cast<std::size_t>(k)];
    const Mat2 m = (c.kind == StepKind::kCZ) ? kIdentity
                   : c.constant              ? c.matrix
                                             : bind_step(c, params);
    switch (c.kind) {
      case StepKind::kSingle:
        run.push_factor(c.target, m[0], m[3]);
        break;
      case StepKind::kControlled:
        run.push_pair(c.control, c.target, m[0], m[3]);
        break;
      case StepKind::kCZ:
        run.push_pair(c.control, c.target, cplx{1.0, 0.0}, cplx{-1.0, 0.0});
        break;
      default:
        assert(false && "non-diagonal component in a diagonal run");
        break;
    }
  }
}

void CircuitExecutor::bind(const std::vector<double>& params,
                           BoundPlan& bound) const {
  bound.matrices.resize(plan_.size());
  bound.diag_tables.resize(num_dynamic_diag_);
  for (std::size_t i = 0; i < plan_.size(); ++i) {
    const Step& s = plan_[i];
    switch (s.kind) {
      case StepKind::kSingle:
      case StepKind::kControlled:
        bound.matrices[i] = s.constant ? s.matrix : bind_step(s, params);
        break;
      case StepKind::kDiagonal:
        if (!s.constant) {
          bind_diagonal(s, params, bound.scratch_run);
          kernels::build_diagonal_table(
              bound.scratch_run, num_qubits_,
              bound.diag_tables[static_cast<std::size_t>(s.diag_index)]);
        }
        break;
      default:
        break;
    }
  }
}

void CircuitExecutor::apply_step(const kernels::KernelTable& kt,
                                 std::size_t idx, const BoundPlan& bound,
                                 cplx* amps, std::size_t len,
                                 std::size_t off) const {
  const Step& s = plan_[idx];
  switch (s.kind) {
    case StepKind::kSingle:
      kt.apply_single(amps, len, bound.matrices[idx], s.target);
      break;
    case StepKind::kControlled:
      kt.apply_controlled_single(amps, len, bound.matrices[idx], s.control,
                                 s.target);
      break;
    case StepKind::kCNOT:
      kt.apply_cnot(amps, len, s.control, s.target);
      break;
    case StepKind::kCZ:
      kt.apply_cz(amps, len, s.control, s.target);
      break;
    case StepKind::kSWAP:
      kt.apply_swap(amps, len, s.control, s.target);
      break;
    case StepKind::kDiagonal: {
      const std::size_t di = static_cast<std::size_t>(s.diag_index);
      const std::vector<cplx>& table =
          s.constant ? const_diag_tables_[di] : bound.diag_tables[di];
      kt.apply_diagonal_table(amps, len, table.data() + off);
      break;
    }
  }
}

void CircuitExecutor::execute_blocked(const BoundPlan& bound, cplx* amps,
                                      std::size_t dim) const {
  const std::size_t bsz = std::size_t{1} << block_qubits_;
  const std::int64_t nblocks = static_cast<std::int64_t>(dim >> block_qubits_);
  // One level of parallelism: across cache blocks when this state is big
  // enough to own the team, serial blocks when a batch loop already does
  // (an inactive `if` region keeps omp_in_parallel() false for callees).
  const bool par = kernels::use_amplitude_parallel(dim);
  const kernels::KernelTable& serial = kernels::active();
  for (const BlockGroup& g : groups_) {
    if (g.local) {
#pragma omp parallel for schedule(static) if (par)
      for (std::int64_t b = 0; b < nblocks; ++b) {
        const std::size_t off = static_cast<std::size_t>(b) << block_qubits_;
        // Sweep the resident block once per group: every local step hits
        // this block before it is evicted.
        for (std::size_t idx : g.steps) {
          apply_step(serial, idx, bound, amps + off, bsz, off);
        }
      }
    } else {
      // High-target step: full-array pass through the size-appropriate
      // table (the parallel table's pair-exchange path on large states).
      apply_step(kernels::table_for(dim), g.steps.front(), bound, amps, dim,
                 0);
    }
  }
}

void CircuitExecutor::execute(const BoundPlan& bound,
                              Statevector& state) const {
  assert(state.num_qubits() == num_qubits_);
  cplx* amps = state.amplitudes().data();
  const std::size_t dim = state.dim();
  if (blocked_) {
    execute_blocked(bound, amps, dim);
    return;
  }
  const kernels::KernelTable& kt = kernels::table_for(dim);
  for (std::size_t i = 0; i < plan_.size(); ++i) {
    apply_step(kt, i, bound, amps, dim, 0);
  }
}

void CircuitExecutor::bind_ops(const std::vector<double>& params,
                               std::vector<Mat2>& matrices) const {
  matrices.resize(ops_.size());
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    const GateOp& op = ops_[i];
    switch (op.kind) {
      case GateKind::kCNOT:
      case GateKind::kCZ:
      case GateKind::kSWAP:
        break;  // specialised kernels, no matrix
      default:
        matrices[i] = gate_matrix(op.kind, resolve(op.param, params));
        break;
    }
  }
}

void CircuitExecutor::run(const std::vector<double>& params,
                          Statevector& state) const {
  assert(static_cast<int>(params.size()) >= num_param_slots_);
  BoundPlan bound;
  bind(params, bound);
  execute(bound, state);
}

Statevector CircuitExecutor::run_from_zero(
    const std::vector<double>& params) const {
  Statevector state(num_qubits_);
  run(params, state);
  return state;
}

void CircuitExecutor::run_batch(
    const std::vector<std::vector<double>>& params_batch,
    std::vector<Statevector>& states) const {
  assert(params_batch.size() == states.size());
  const std::int64_t batch = static_cast<std::int64_t>(states.size());
  // Workload-shape switch: when one state crosses the amplitude-parallel
  // threshold, the team is better spent inside each state (blocked sweeps
  // + parallel kernels) than across samples — the `if` clause makes this
  // region inactive so execute() sees omp_in_parallel() == false.
  const bool amp_par =
      kernels::use_amplitude_parallel(std::size_t{1} << num_qubits_);
#pragma omp parallel if (!amp_par)
  {
    // One bind buffer per thread, reused across its samples.
    BoundPlan bound;
#pragma omp for schedule(static)
    for (std::int64_t i = 0; i < batch; ++i) {
      const std::size_t k = static_cast<std::size_t>(i);
      assert(static_cast<int>(params_batch[k].size()) >= num_param_slots_);
      bind(params_batch[k], bound);
      execute(bound, states[k]);
    }
  }
}

std::vector<AdjointResult> CircuitExecutor::adjoint_batch(
    const std::vector<std::vector<double>>& params_batch,
    const std::vector<Statevector>& initials,
    const std::vector<std::vector<double>>& diags) const {
  assert(params_batch.size() == initials.size());
  assert(params_batch.size() == diags.size());
  const std::int64_t batch = static_cast<std::int64_t>(params_batch.size());
  std::vector<AdjointResult> results(static_cast<std::size_t>(batch));
  // Same workload-shape switch as run_batch(): amplitude-parallel inside
  // each sample for large states, batch-parallel otherwise.
  const bool amp_par =
      kernels::use_amplitude_parallel(std::size_t{1} << num_qubits_);
#pragma omp parallel if (!amp_par)
  {
    BoundPlan bound;
#pragma omp for schedule(static)
    for (std::int64_t i = 0; i < batch; ++i) {
      const std::size_t k = static_cast<std::size_t>(i);
      const std::vector<double>& params = params_batch[k];
      const std::vector<double>& diag = diags[k];
      assert(initials[k].num_qubits() == num_qubits_);
      assert(diag.size() == initials[k].dim());

      // Fused forward pass.
      Statevector psi = initials[k];
      bind(params, bound);
      execute(bound, psi);

      // Value and lambda = diag(O) psi.
      AdjointResult& r = results[k];
      Statevector lambda = psi;
      r.value = apply_diag_observable(diag, psi, lambda);

      // Exact per-gate reverse sweep over the original op list.
      r.param_grads.assign(static_cast<std::size_t>(num_param_slots_), 0.0);
      adjoint_reverse_sweep(ops_, params, psi, lambda, r.param_grads);
      r.initial_lambda = lambda.amplitudes();
    }
  }
  return results;
}

}  // namespace sqvae::qsim
