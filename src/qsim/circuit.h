// Circuit intermediate representation.
//
// A Circuit is a flat list of gate operations on a fixed-width register.
// Parameterized gates either carry a constant angle or reference a slot in
// an external parameter vector supplied at execution time. Referencing an
// external vector (rather than storing values inline) lets one circuit be
// re-executed for every sample in a mini-batch and lets the differentiation
// engines return gradients aligned with the caller's parameter layout —
// including "input" parameters such as angle-embedding rotations, which is
// how hybrid models obtain d(loss)/d(latent) through the quantum decoder.
#pragma once

#include <string>
#include <vector>

#include "qsim/gates.h"
#include "qsim/statevector.h"

namespace sqvae::qsim {

/// Parameter binding for a gate angle: either a fixed constant or an index
/// into the external parameter vector.
struct Param {
  double constant = 0.0;
  int index = -1;  // >= 0: slot in the external parameter vector

  static Param value(double v) { return Param{v, -1}; }
  static Param slot(int i) { return Param{0.0, i}; }
  bool is_slot() const { return index >= 0; }
};

/// One gate application.
struct GateOp {
  GateKind kind;
  int target = 0;
  int control = -1;  // second qubit for CNOT/CZ/CR*/SWAP; -1 for 1-qubit gates
  Param param;       // meaningful only when is_parameterized(kind)
};

class Circuit {
 public:
  explicit Circuit(int num_qubits);

  int num_qubits() const { return num_qubits_; }
  const std::vector<GateOp>& ops() const { return ops_; }
  std::size_t num_ops() const { return ops_.size(); }

  /// Highest referenced parameter slot + 1 (0 when fully constant).
  int num_param_slots() const { return num_param_slots_; }

  // ---- single-qubit builders -------------------------------------------
  Circuit& rx(int target, Param p);
  Circuit& ry(int target, Param p);
  Circuit& rz(int target, Param p);
  /// General rotation R(phi, theta, omega) = RZ(omega) RY(theta) RZ(phi),
  /// the PennyLane `Rot` convention used by the paper's entangling layers.
  Circuit& rot(int target, Param phi, Param theta, Param omega);
  Circuit& h(int target);
  Circuit& x(int target);
  Circuit& y(int target);
  Circuit& z(int target);
  Circuit& s(int target);
  Circuit& t(int target);

  // ---- two-qubit builders ----------------------------------------------
  Circuit& cnot(int control, int target);
  Circuit& cz(int control, int target);
  Circuit& crx(int control, int target, Param p);
  Circuit& cry(int control, int target, Param p);
  Circuit& crz(int control, int target, Param p);
  Circuit& swap(int a, int b);

  // ---- composite builders ----------------------------------------------

  /// Appends `layers` strongly entangling layers in the paper's Fig. 2(b)
  /// layout: Rot(phi, theta, omega) on every qubit, then a periodic ring of
  /// CNOT(q, (q+1) mod n). Parameters are taken from consecutive slots
  /// starting at `first_slot` (3 per qubit per layer, ordered phi, theta,
  /// omega; qubit-major within a layer). Returns the next free slot index.
  int strongly_entangling_layers(int layers, int first_slot);

  /// Appends RY angle-embedding rotations, one per qubit, reading qubit q's
  /// angle from slot `first_slot + q`. Returns the next free slot.
  int angle_embedding(int first_slot);

  /// Number of parameters used by `layers` entangling layers on this width.
  static int entangling_layer_param_count(int num_qubits, int layers);

  /// One-line-per-gate textual dump (for debugging and golden tests).
  std::string to_string() const;

 private:
  Circuit& push(GateKind kind, int target, int control, Param p);

  int num_qubits_;
  int num_param_slots_ = 0;
  std::vector<GateOp> ops_;
};

/// Resolves a gate's angle against the external parameter vector.
double resolve_param(const GateOp& op, const std::vector<double>& params);

/// Applies one gate (with resolved parameters) to the state in place.
void apply_op(Statevector& state, const GateOp& op,
              const std::vector<double>& params);

/// Applies the inverse (dagger) of one gate in place.
void apply_op_dagger(Statevector& state, const GateOp& op,
                     const std::vector<double>& params);

/// Runs the whole circuit on `state` in place.
void run(const Circuit& circuit, const std::vector<double>& params,
         Statevector& state);

/// Convenience: runs the circuit from |0...0> and returns the final state.
Statevector run_from_zero(const Circuit& circuit,
                          const std::vector<double>& params);

}  // namespace sqvae::qsim
