// Gate alphabet of the simulator.
//
// The paper's circuits (Fig. 2(b), Fig. 3(d)) use the general rotation
// R(phi, theta, omega) on every qubit of every entangling layer, ring CNOTs
// for entanglement, RY rotations for angle embedding, and mention CRZ in the
// gate table. R(phi, theta, omega) = RZ(omega) RY(theta) RZ(phi) is emitted
// by the circuit builders as three primitive one-parameter gates so that the
// adjoint/parameter-shift differentiation only ever deals with
// one-parameter gate generators.
#pragma once

#include <string>

#include "qsim/types.h"

namespace sqvae::qsim {

enum class GateKind {
  kRX,    // exp(-i theta X / 2)
  kRY,    // exp(-i theta Y / 2)
  kRZ,    // exp(-i theta Z / 2)
  kH,     // Hadamard
  kX,     // Pauli-X
  kY,     // Pauli-Y
  kZ,     // Pauli-Z
  kS,     // phase gate diag(1, i)
  kT,     // diag(1, e^{i pi/4})
  kCNOT,  // controlled-X
  kCZ,    // controlled-Z
  kCRX,   // controlled RX(theta)
  kCRY,   // controlled RY(theta)
  kCRZ,   // controlled RZ(theta)
  kSWAP,  // swap two qubits
};

/// True for gates carrying one trainable rotation angle.
bool is_parameterized(GateKind k);

/// True for two-qubit gates (control/target pair or SWAP).
bool is_two_qubit(GateKind k);

/// True for gates whose full matrix is diagonal in the computational basis
/// (RZ/Z/S/T single-qubit, CZ/CRZ two-qubit). Diagonal gates commute with
/// each other, which is what lets the executor collapse adjacent diagonal
/// plan steps into one fused elementwise pass (kernels::DiagonalRun).
bool is_diagonal(GateKind k);

/// Short mnemonic ("RY", "CNOT", ...), used in circuit dumps and tests.
std::string gate_name(GateKind k);

/// 2x2 matrix of a single-qubit gate. For controlled rotations this is the
/// matrix applied on the control=|1> block. `theta` is ignored for
/// non-parameterized gates.
Mat2 gate_matrix(GateKind k, double theta);

/// Elementwise derivative d(gate_matrix)/d(theta) for parameterized gates.
/// The result is generally not unitary.
Mat2 gate_matrix_derivative(GateKind k, double theta);

}  // namespace sqvae::qsim
