#include "qsim/kernels.h"

#include <cassert>
#include <cstdlib>

namespace sqvae::qsim::kernels {

void DiagonalRun::push_factor(int qubit, cplx d0, cplx d1) {
  for (Factor& f : factors) {
    if (f.qubit == qubit) {
      f.d0 *= d0;
      f.d1 *= d1;
      return;
    }
  }
  factors.push_back(Factor{qubit, d0, d1});
}

void DiagonalRun::push_pair(int control, int target, cplx p10, cplx p11) {
  for (Pair& p : pairs) {
    if (p.control == control && p.target == target) {
      p.p10 *= p10;
      p.p11 *= p11;
      return;
    }
  }
  pairs.push_back(Pair{control, target, p10, p11});
}

void build_diagonal_table(const DiagonalRun& run, int num_qubits,
                          std::vector<cplx>& table) {
  const std::size_t dim = std::size_t{1} << num_qubits;
  table.resize(dim);
  table[0] = cplx{1.0, 0.0};
  // Doubling pass: after processing qubit q the first 2^(q+1) entries hold
  // the factor-only phases of those basis states.
  std::size_t size = 1;
  for (int q = 0; q < num_qubits; ++q) {
    cplx d0{1.0, 0.0};
    cplx d1{1.0, 0.0};
    for (const DiagonalRun::Factor& f : run.factors) {
      if (f.qubit == q) {
        d0 = f.d0;
        d1 = f.d1;
        break;
      }
    }
    for (std::size_t j = 0; j < size; ++j) {
      table[size + j] = table[j] * d1;
      table[j] *= d0;
    }
    size *= 2;
  }
  for (const DiagonalRun::Pair& p : run.pairs) {
    const std::size_t cbit = std::size_t{1} << p.control;
    const std::size_t tbit = std::size_t{1} << p.target;
    for (std::size_t i = 0; i < dim; ++i) {
      if ((i & cbit) != 0) table[i] *= (i & tbit) ? p.p11 : p.p10;
    }
  }
}

namespace {

// ---- scalar kernels -------------------------------------------------------
//
// The gate kernels keep the seed's exact arithmetic (same std::complex
// expressions) so routing Statevector through this table changes no bits on
// the scalar path. The two-qubit kernels use a three-level bit enumeration
// instead of the seed's full-index scan with a branch: with b1 = the
// smaller and b2 = the larger of the two qubit masks,
//
//   for (i0 += 2*b2) for (i1 += 2*b1) for (i2 in [0, b1))
//
// visits exactly the indices with the chosen (control, target) bit pattern,
// touching each affected pair once with no per-index branching. The inner
// run of length b1 is contiguous — that contiguity is what the AVX2 table
// vectorises.

void scalar_apply_single(cplx* amps, std::size_t n, const Mat2& m,
                         int target) {
  const std::size_t stride = std::size_t{1} << target;
  for (std::size_t base = 0; base < n; base += 2 * stride) {
    for (std::size_t i = base; i < base + stride; ++i) {
      const cplx a0 = amps[i];
      const cplx a1 = amps[i + stride];
      amps[i] = m[0] * a0 + m[1] * a1;
      amps[i + stride] = m[2] * a0 + m[3] * a1;
    }
  }
}

void scalar_apply_controlled_single(cplx* amps, std::size_t n, const Mat2& m,
                                    int control, int target) {
  const std::size_t cbit = std::size_t{1} << control;
  const std::size_t tbit = std::size_t{1} << target;
  const std::size_t b1 = cbit < tbit ? cbit : tbit;
  const std::size_t b2 = cbit < tbit ? tbit : cbit;
  for (std::size_t i0 = 0; i0 < n; i0 += 2 * b2) {
    for (std::size_t i1 = i0; i1 < i0 + b2; i1 += 2 * b1) {
      const std::size_t base = i1 | cbit;
      for (std::size_t i = base; i < base + b1; ++i) {
        const cplx a0 = amps[i];
        const cplx a1 = amps[i | tbit];
        amps[i] = m[0] * a0 + m[1] * a1;
        amps[i | tbit] = m[2] * a0 + m[3] * a1;
      }
    }
  }
}

void scalar_apply_cnot(cplx* amps, std::size_t n, int control, int target) {
  const std::size_t cbit = std::size_t{1} << control;
  const std::size_t tbit = std::size_t{1} << target;
  const std::size_t b1 = cbit < tbit ? cbit : tbit;
  const std::size_t b2 = cbit < tbit ? tbit : cbit;
  for (std::size_t i0 = 0; i0 < n; i0 += 2 * b2) {
    for (std::size_t i1 = i0; i1 < i0 + b2; i1 += 2 * b1) {
      const std::size_t base = i1 | cbit;
      for (std::size_t i = base; i < base + b1; ++i) {
        const cplx t = amps[i];
        amps[i] = amps[i | tbit];
        amps[i | tbit] = t;
      }
    }
  }
}

void scalar_apply_cz(cplx* amps, std::size_t n, int control, int target) {
  const std::size_t cbit = std::size_t{1} << control;
  const std::size_t tbit = std::size_t{1} << target;
  const std::size_t b1 = cbit < tbit ? cbit : tbit;
  const std::size_t b2 = cbit < tbit ? tbit : cbit;
  for (std::size_t i0 = 0; i0 < n; i0 += 2 * b2) {
    for (std::size_t i1 = i0; i1 < i0 + b2; i1 += 2 * b1) {
      const std::size_t base = i1 | cbit | tbit;
      for (std::size_t i = base; i < base + b1; ++i) amps[i] = -amps[i];
    }
  }
}

void scalar_apply_swap(cplx* amps, std::size_t n, int a, int b) {
  const std::size_t abit = std::size_t{1} << a;
  const std::size_t bbit = std::size_t{1} << b;
  const std::size_t b1 = abit < bbit ? abit : bbit;
  const std::size_t b2 = abit < bbit ? bbit : abit;
  const std::size_t flip = abit | bbit;
  // Enumerate indices with the a-bit set and the b-bit clear; the partner
  // (a clear, b set) is index ^ flip, so each unordered pair swaps once.
  for (std::size_t i0 = 0; i0 < n; i0 += 2 * b2) {
    for (std::size_t i1 = i0; i1 < i0 + b2; i1 += 2 * b1) {
      const std::size_t base = i1 | abit;
      for (std::size_t i = base; i < base + b1; ++i) {
        const cplx t = amps[i];
        amps[i] = amps[i ^ flip];
        amps[i ^ flip] = t;
      }
    }
  }
}

void scalar_apply_diagonal_table(cplx* amps, std::size_t n,
                                 const cplx* table) {
  for (std::size_t i = 0; i < n; ++i) amps[i] *= table[i];
}

cplx scalar_inner(const cplx* a, const cplx* b, std::size_t n) {
  cplx s{0.0, 0.0};
  for (std::size_t i = 0; i < n; ++i) s += std::conj(a[i]) * b[i];
  return s;
}

double scalar_norm_squared(const cplx* amps, std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += std::norm(amps[i]);
  return s;
}

double scalar_expectation_z(const cplx* amps, std::size_t n, int qubit) {
  const std::size_t bit = std::size_t{1} << qubit;
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double p = std::norm(amps[i]);
    s += (i & bit) ? -p : p;
  }
  return s;
}

double scalar_apply_diag_observable(const double* diag, const cplx* psi,
                                    cplx* lambda, std::size_t n) {
  double value = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    value += diag[i] * std::norm(psi[i]);
    lambda[i] = diag[i] * psi[i];
  }
  return value;
}

void scalar_probabilities(const cplx* amps, std::size_t n, double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = std::norm(amps[i]);
}

// ---- dispatch -------------------------------------------------------------

bool force_scalar_from_env() {
  const char* v = std::getenv("SQVAE_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

struct Dispatch {
  const KernelTable* table;
  Isa isa;
};

const Dispatch& dispatch() {
  static const Dispatch d = [] {
    if (!force_scalar_from_env()) {
      if (const KernelTable* avx2 = avx2_table_if_supported()) {
        return Dispatch{avx2, Isa::kAvx2};
      }
    }
    return Dispatch{&scalar_table(), Isa::kScalar};
  }();
  return d;
}

}  // namespace

#ifdef SQVAE_SIMD_AVX2
// Defined in kernels_avx2.cpp (the only TU compiled with -mavx2 -mfma).
namespace detail {
const KernelTable& avx2_table();
}

bool compiled_with_simd() { return true; }

const KernelTable* avx2_table_if_supported() {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return &detail::avx2_table();
  }
#endif
  return nullptr;
}
#else
bool compiled_with_simd() { return false; }

const KernelTable* avx2_table_if_supported() { return nullptr; }
#endif

const KernelTable& scalar_table() {
  static const KernelTable t = {
      scalar_apply_single,
      scalar_apply_controlled_single,
      scalar_apply_cnot,
      scalar_apply_cz,
      scalar_apply_swap,
      scalar_apply_diagonal_table,
      scalar_inner,
      scalar_norm_squared,
      scalar_expectation_z,
      scalar_apply_diag_observable,
      scalar_probabilities,
  };
  return t;
}

const KernelTable& active() { return *dispatch().table; }

Isa active_isa() { return dispatch().isa; }

const char* isa_name(Isa isa) {
  return isa == Isa::kAvx2 ? "avx2" : "scalar";
}

void apply_diagonal_run(cplx* amps, std::size_t n, int num_qubits,
                        const DiagonalRun& run) {
  assert(n == (std::size_t{1} << num_qubits));
  thread_local std::vector<cplx> table;
  build_diagonal_table(run, num_qubits, table);
  active().apply_diagonal_table(amps, n, table.data());
}

}  // namespace sqvae::qsim::kernels
