#include "qsim/kernels.h"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstdlib>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace sqvae::qsim::kernels {

void DiagonalRun::push_factor(int qubit, cplx d0, cplx d1) {
  for (Factor& f : factors) {
    if (f.qubit == qubit) {
      f.d0 *= d0;
      f.d1 *= d1;
      return;
    }
  }
  factors.push_back(Factor{qubit, d0, d1});
}

void DiagonalRun::push_pair(int control, int target, cplx p10, cplx p11) {
  for (Pair& p : pairs) {
    if (p.control == control && p.target == target) {
      p.p10 *= p10;
      p.p11 *= p11;
      return;
    }
  }
  pairs.push_back(Pair{control, target, p10, p11});
}

void build_diagonal_table(const DiagonalRun& run, int num_qubits,
                          std::vector<cplx>& table) {
  const std::size_t dim = std::size_t{1} << num_qubits;
  table.resize(dim);
  table[0] = cplx{1.0, 0.0};
  // Doubling pass: after processing qubit q the first 2^(q+1) entries hold
  // the factor-only phases of those basis states.
  std::size_t size = 1;
  for (int q = 0; q < num_qubits; ++q) {
    cplx d0{1.0, 0.0};
    cplx d1{1.0, 0.0};
    for (const DiagonalRun::Factor& f : run.factors) {
      if (f.qubit == q) {
        d0 = f.d0;
        d1 = f.d1;
        break;
      }
    }
    for (std::size_t j = 0; j < size; ++j) {
      table[size + j] = table[j] * d1;
      table[j] *= d0;
    }
    size *= 2;
  }
  for (const DiagonalRun::Pair& p : run.pairs) {
    const std::size_t cbit = std::size_t{1} << p.control;
    const std::size_t tbit = std::size_t{1} << p.target;
    for (std::size_t i = 0; i < dim; ++i) {
      if ((i & cbit) != 0) table[i] *= (i & tbit) ? p.p11 : p.p10;
    }
  }
}

namespace {

// ---- scalar kernels -------------------------------------------------------
//
// The gate kernels keep the seed's exact arithmetic (same std::complex
// expressions) so routing Statevector through this table changes no bits on
// the scalar path. The two-qubit kernels use a three-level bit enumeration
// instead of the seed's full-index scan with a branch: with b1 = the
// smaller and b2 = the larger of the two qubit masks,
//
//   for (i0 += 2*b2) for (i1 += 2*b1) for (i2 in [0, b1))
//
// visits exactly the indices with the chosen (control, target) bit pattern,
// touching each affected pair once with no per-index branching. The inner
// run of length b1 is contiguous — that contiguity is what the AVX2 table
// vectorises.

void scalar_apply_single(cplx* amps, std::size_t n, const Mat2& m,
                         int target) {
  const std::size_t stride = std::size_t{1} << target;
  for (std::size_t base = 0; base < n; base += 2 * stride) {
    for (std::size_t i = base; i < base + stride; ++i) {
      const cplx a0 = amps[i];
      const cplx a1 = amps[i + stride];
      amps[i] = m[0] * a0 + m[1] * a1;
      amps[i + stride] = m[2] * a0 + m[3] * a1;
    }
  }
}

void scalar_apply_controlled_single(cplx* amps, std::size_t n, const Mat2& m,
                                    int control, int target) {
  const std::size_t cbit = std::size_t{1} << control;
  const std::size_t tbit = std::size_t{1} << target;
  const std::size_t b1 = cbit < tbit ? cbit : tbit;
  const std::size_t b2 = cbit < tbit ? tbit : cbit;
  for (std::size_t i0 = 0; i0 < n; i0 += 2 * b2) {
    for (std::size_t i1 = i0; i1 < i0 + b2; i1 += 2 * b1) {
      const std::size_t base = i1 | cbit;
      for (std::size_t i = base; i < base + b1; ++i) {
        const cplx a0 = amps[i];
        const cplx a1 = amps[i | tbit];
        amps[i] = m[0] * a0 + m[1] * a1;
        amps[i | tbit] = m[2] * a0 + m[3] * a1;
      }
    }
  }
}

void scalar_apply_cnot(cplx* amps, std::size_t n, int control, int target) {
  const std::size_t cbit = std::size_t{1} << control;
  const std::size_t tbit = std::size_t{1} << target;
  const std::size_t b1 = cbit < tbit ? cbit : tbit;
  const std::size_t b2 = cbit < tbit ? tbit : cbit;
  for (std::size_t i0 = 0; i0 < n; i0 += 2 * b2) {
    for (std::size_t i1 = i0; i1 < i0 + b2; i1 += 2 * b1) {
      const std::size_t base = i1 | cbit;
      for (std::size_t i = base; i < base + b1; ++i) {
        const cplx t = amps[i];
        amps[i] = amps[i | tbit];
        amps[i | tbit] = t;
      }
    }
  }
}

void scalar_apply_cz(cplx* amps, std::size_t n, int control, int target) {
  const std::size_t cbit = std::size_t{1} << control;
  const std::size_t tbit = std::size_t{1} << target;
  const std::size_t b1 = cbit < tbit ? cbit : tbit;
  const std::size_t b2 = cbit < tbit ? tbit : cbit;
  for (std::size_t i0 = 0; i0 < n; i0 += 2 * b2) {
    for (std::size_t i1 = i0; i1 < i0 + b2; i1 += 2 * b1) {
      const std::size_t base = i1 | cbit | tbit;
      for (std::size_t i = base; i < base + b1; ++i) amps[i] = -amps[i];
    }
  }
}

void scalar_apply_swap(cplx* amps, std::size_t n, int a, int b) {
  const std::size_t abit = std::size_t{1} << a;
  const std::size_t bbit = std::size_t{1} << b;
  const std::size_t b1 = abit < bbit ? abit : bbit;
  const std::size_t b2 = abit < bbit ? bbit : abit;
  const std::size_t flip = abit | bbit;
  // Enumerate indices with the a-bit set and the b-bit clear; the partner
  // (a clear, b set) is index ^ flip, so each unordered pair swaps once.
  for (std::size_t i0 = 0; i0 < n; i0 += 2 * b2) {
    for (std::size_t i1 = i0; i1 < i0 + b2; i1 += 2 * b1) {
      const std::size_t base = i1 | abit;
      for (std::size_t i = base; i < base + b1; ++i) {
        const cplx t = amps[i];
        amps[i] = amps[i ^ flip];
        amps[i ^ flip] = t;
      }
    }
  }
}

void scalar_apply_diagonal_table(cplx* amps, std::size_t n,
                                 const cplx* table) {
  for (std::size_t i = 0; i < n; ++i) amps[i] *= table[i];
}

cplx scalar_inner(const cplx* a, const cplx* b, std::size_t n) {
  cplx s{0.0, 0.0};
  for (std::size_t i = 0; i < n; ++i) s += std::conj(a[i]) * b[i];
  return s;
}

double scalar_norm_squared(const cplx* amps, std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += std::norm(amps[i]);
  return s;
}

double scalar_expectation_z(const cplx* amps, std::size_t n, int qubit) {
  const std::size_t bit = std::size_t{1} << qubit;
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double p = std::norm(amps[i]);
    s += (i & bit) ? -p : p;
  }
  return s;
}

double scalar_apply_diag_observable(const double* diag, const cplx* psi,
                                    cplx* lambda, std::size_t n) {
  double value = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    value += diag[i] * std::norm(psi[i]);
    lambda[i] = diag[i] * psi[i];
  }
  return value;
}

void scalar_probabilities(const cplx* amps, std::size_t n, double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = std::norm(amps[i]);
}

// Pair-run primitives: the same per-pair arithmetic as the strided kernels
// above, on caller-supplied contiguous runs (high-target pair exchange).

void scalar_apply_single_pairs(cplx* lo, cplx* hi, std::size_t count,
                               const Mat2& m) {
  for (std::size_t i = 0; i < count; ++i) {
    const cplx a0 = lo[i];
    const cplx a1 = hi[i];
    lo[i] = m[0] * a0 + m[1] * a1;
    hi[i] = m[2] * a0 + m[3] * a1;
  }
}

void scalar_swap_runs(cplx* lo, cplx* hi, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    const cplx t = lo[i];
    lo[i] = hi[i];
    hi[i] = t;
  }
}

void scalar_negate_run(cplx* amps, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) amps[i] = -amps[i];
}

// ---- dispatch -------------------------------------------------------------

bool force_scalar_from_env() {
  const char* v = std::getenv("SQVAE_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

struct Dispatch {
  const KernelTable* table;
  Isa isa;
};

const Dispatch& dispatch() {
  static const Dispatch d = [] {
    if (!force_scalar_from_env()) {
      if (const KernelTable* avx2 = avx2_table_if_supported()) {
        return Dispatch{avx2, Isa::kAvx2};
      }
    }
    return Dispatch{&scalar_table(), Isa::kScalar};
  }();
  return d;
}

// ---- amplitude-parallel drivers -------------------------------------------
//
// Each driver partitions the flattened work space into fixed-size chunks
// and runs the active serial table (scalar or avx2) on each chunk. The
// chunk geometry depends only on n — never on the thread count — so:
//
//   * gate kernels are bit-identical to a serial call under any schedule
//     (disjoint writes, partition-invariant per-pair arithmetic);
//   * reductions combine their per-chunk partials serially in chunk order
//     after the parallel region, making every result bit-identical at
//     1..N threads (the repo determinism contract). They are NOT bitwise
//     equal to the serial table's single left-to-right chain — callers
//     that need the serial bits keep the serial table (table_for() keeps
//     small states there).
//
// Two regimes per gate kernel, keyed on the outer block size 2*b2 (see the
// stride classes in kernels.h):
//
//   low qubits  (2*b2 <= chunk): every chunk is a whole number of outer
//     blocks, so the serial kernel applied to (amps + off, len) computes
//     exactly that slice — one virtual call per chunk, full SIMD inside.
//   high qubits (2*b2 >  chunk): too few outer blocks to chunk. The
//     contiguous lo-runs are split across chunks of the flattened pair
//     space and driven through the explicit pair-exchange primitives
//     (apply_single_pairs / swap_runs / negate_run).

// 4096 amplitudes (64 KiB of cplx) per chunk: small enough that every
// thread gets work at the 2^15-amplitude threshold, large enough that the
// OpenMP dispatch cost vanishes against the chunk's arithmetic.
constexpr std::size_t kParallelChunk = std::size_t{1} << 12;

std::size_t threshold_from_env() {
  const char* v = std::getenv("SQVAE_PAR_THRESHOLD");
  if (v == nullptr || v[0] == '\0') return std::size_t{1} << 15;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v) return std::size_t{1} << 15;
  return static_cast<std::size_t>(parsed);
}

std::atomic<std::size_t>& threshold_storage() {
  static std::atomic<std::size_t> t{threshold_from_env()};
  return t;
}

inline std::int64_t chunk_count(std::size_t n) {
  return static_cast<std::int64_t>((n + kParallelChunk - 1) / kParallelChunk);
}

/// Runs fn(off, len) over fixed-size chunks of [0, n), in parallel.
template <typename Fn>
void for_chunks(std::size_t n, Fn fn) {
  const std::int64_t chunks = chunk_count(n);
#pragma omp parallel for schedule(static)
  for (std::int64_t c = 0; c < chunks; ++c) {
    const std::size_t off = static_cast<std::size_t>(c) * kParallelChunk;
    const std::size_t len = n - off < kParallelChunk ? n - off : kParallelChunk;
    fn(off, len);
  }
}

/// High-qubit pair walker. The lo indices of a gate with qubit masks
/// b1 <= b2 form runs of length b1 spaced by the two-level bit pattern;
/// flattened run-local index p in [0, n_units) maps to the array index by
/// re-inserting a zero at each qubit's bit position and OR-ing the fixed
/// set bits. fn(i, len) receives maximal sub-runs clipped to chunk
/// boundaries; chunks partition [0, n_units) in fixed kParallelChunk / 2
/// steps (each unit touches two amplitudes).
template <typename Fn>
void for_pair_runs(std::size_t n_units, std::size_t b1, std::size_t b2,
                   std::size_t set_mask, Fn fn) {
  const std::size_t step = kParallelChunk / 2;
  const std::int64_t chunks =
      static_cast<std::int64_t>((n_units + step - 1) / step);
#pragma omp parallel for schedule(static)
  for (std::int64_t c = 0; c < chunks; ++c) {
    std::size_t p = static_cast<std::size_t>(c) * step;
    const std::size_t pe = n_units - p < step ? n_units : p + step;
    while (p < pe) {
      const std::size_t o = p & (b1 - 1);
      const std::size_t len = b1 - o < pe - p ? b1 - o : pe - p;
      // Insert a zero bit at the b1 position, then at the b2 position.
      std::size_t i = ((p & ~(b1 - 1)) << 1) | o;
      i = ((i & ~(b2 - 1)) << 1) | (i & (b2 - 1));
      fn(i | set_mask, len);
      p += len;
    }
  }
}

/// Single-qubit variant: lo runs of length `stride`, no second level.
template <typename Fn>
void for_single_runs(std::size_t n_pairs, std::size_t stride, Fn fn) {
  const std::size_t step = kParallelChunk / 2;
  const std::int64_t chunks =
      static_cast<std::int64_t>((n_pairs + step - 1) / step);
#pragma omp parallel for schedule(static)
  for (std::int64_t c = 0; c < chunks; ++c) {
    std::size_t p = static_cast<std::size_t>(c) * step;
    const std::size_t pe = n_pairs - p < step ? n_pairs : p + step;
    while (p < pe) {
      const std::size_t o = p & (stride - 1);
      const std::size_t len = stride - o < pe - p ? stride - o : pe - p;
      fn(((p & ~(stride - 1)) << 1) | o, len);
      p += len;
    }
  }
}

inline void sort_masks(std::size_t x, std::size_t y, std::size_t& b1,
                       std::size_t& b2) {
  b1 = x < y ? x : y;
  b2 = x < y ? y : x;
}

void par_apply_single(cplx* amps, std::size_t n, const Mat2& m, int target) {
  const KernelTable& kt = active();
  const std::size_t stride = std::size_t{1} << target;
  if (2 * stride <= kParallelChunk) {
    for_chunks(n, [&](std::size_t off, std::size_t len) {
      kt.apply_single(amps + off, len, m, target);
    });
  } else {
    for_single_runs(n / 2, stride, [&](std::size_t i, std::size_t len) {
      kt.apply_single_pairs(amps + i, amps + i + stride, len, m);
    });
  }
}

void par_apply_controlled_single(cplx* amps, std::size_t n, const Mat2& m,
                                 int control, int target) {
  const KernelTable& kt = active();
  const std::size_t cbit = std::size_t{1} << control;
  const std::size_t tbit = std::size_t{1} << target;
  std::size_t b1, b2;
  sort_masks(cbit, tbit, b1, b2);
  if (2 * b2 <= kParallelChunk) {
    for_chunks(n, [&](std::size_t off, std::size_t len) {
      kt.apply_controlled_single(amps + off, len, m, control, target);
    });
  } else {
    for_pair_runs(n / 4, b1, b2, cbit, [&](std::size_t i, std::size_t len) {
      kt.apply_single_pairs(amps + i, amps + (i | tbit), len, m);
    });
  }
}

void par_apply_cnot(cplx* amps, std::size_t n, int control, int target) {
  const KernelTable& kt = active();
  const std::size_t cbit = std::size_t{1} << control;
  const std::size_t tbit = std::size_t{1} << target;
  std::size_t b1, b2;
  sort_masks(cbit, tbit, b1, b2);
  if (2 * b2 <= kParallelChunk) {
    for_chunks(n, [&](std::size_t off, std::size_t len) {
      kt.apply_cnot(amps + off, len, control, target);
    });
  } else {
    for_pair_runs(n / 4, b1, b2, cbit, [&](std::size_t i, std::size_t len) {
      kt.swap_runs(amps + i, amps + (i | tbit), len);
    });
  }
}

void par_apply_cz(cplx* amps, std::size_t n, int control, int target) {
  const KernelTable& kt = active();
  const std::size_t cbit = std::size_t{1} << control;
  const std::size_t tbit = std::size_t{1} << target;
  std::size_t b1, b2;
  sort_masks(cbit, tbit, b1, b2);
  if (2 * b2 <= kParallelChunk) {
    for_chunks(n, [&](std::size_t off, std::size_t len) {
      kt.apply_cz(amps + off, len, control, target);
    });
  } else {
    for_pair_runs(n / 4, b1, b2, cbit | tbit,
                  [&](std::size_t i, std::size_t len) {
                    kt.negate_run(amps + i, len);
                  });
  }
}

void par_apply_swap(cplx* amps, std::size_t n, int a, int b) {
  const KernelTable& kt = active();
  const std::size_t abit = std::size_t{1} << a;
  const std::size_t bbit = std::size_t{1} << b;
  std::size_t b1, b2;
  sort_masks(abit, bbit, b1, b2);
  const std::size_t flip = abit | bbit;
  if (2 * b2 <= kParallelChunk) {
    for_chunks(n, [&](std::size_t off, std::size_t len) {
      kt.apply_swap(amps + off, len, a, b);
    });
  } else {
    // Enumerate lo indices with the a-bit set, b-bit clear; the partner
    // run starts at i ^ flip and is contiguous alongside (len <= b1).
    for_pair_runs(n / 4, b1, b2, abit, [&](std::size_t i, std::size_t len) {
      kt.swap_runs(amps + i, amps + (i ^ flip), len);
    });
  }
}

void par_apply_diagonal_table(cplx* amps, std::size_t n, const cplx* table) {
  const KernelTable& kt = active();
  for_chunks(n, [&](std::size_t off, std::size_t len) {
    kt.apply_diagonal_table(amps + off, len, table + off);
  });
}

void par_probabilities(const cplx* amps, std::size_t n, double* out) {
  const KernelTable& kt = active();
  for_chunks(n, [&](std::size_t off, std::size_t len) {
    kt.probabilities(amps + off, len, out + off);
  });
}

cplx par_inner(const cplx* a, const cplx* b, std::size_t n) {
  const KernelTable& kt = active();
  std::vector<cplx> partial(static_cast<std::size_t>(chunk_count(n)));
  for_chunks(n, [&](std::size_t off, std::size_t len) {
    partial[off / kParallelChunk] = kt.inner(a + off, b + off, len);
  });
  cplx s{0.0, 0.0};
  for (const cplx& p : partial) s += p;
  return s;
}

double par_norm_squared(const cplx* amps, std::size_t n) {
  const KernelTable& kt = active();
  std::vector<double> partial(static_cast<std::size_t>(chunk_count(n)));
  for_chunks(n, [&](std::size_t off, std::size_t len) {
    partial[off / kParallelChunk] = kt.norm_squared(amps + off, len);
  });
  double s = 0.0;
  for (double p : partial) s += p;
  return s;
}

double par_expectation_z(const cplx* amps, std::size_t n, int qubit) {
  const KernelTable& kt = active();
  const std::size_t bit = std::size_t{1} << qubit;
  std::vector<double> partial(static_cast<std::size_t>(chunk_count(n)));
  for_chunks(n, [&](std::size_t off, std::size_t len) {
    double p;
    if (2 * bit <= kParallelChunk) {
      // The chunk holds whole 2*bit periods; the serial kernel sees the
      // same bit pattern it would at offset 0.
      p = kt.expectation_z(amps + off, len, qubit);
    } else {
      // The qubit bit is constant across the chunk: uniformly + or -.
      // IEEE negation is exact, so this matches per-element signed
      // accumulation bit for bit.
      p = kt.norm_squared(amps + off, len);
      if ((off & bit) != 0) p = -p;
    }
    partial[off / kParallelChunk] = p;
  });
  double s = 0.0;
  for (double p : partial) s += p;
  return s;
}

double par_apply_diag_observable(const double* diag, const cplx* psi,
                                 cplx* lambda, std::size_t n) {
  const KernelTable& kt = active();
  std::vector<double> partial(static_cast<std::size_t>(chunk_count(n)));
  for_chunks(n, [&](std::size_t off, std::size_t len) {
    partial[off / kParallelChunk] =
        kt.apply_diag_observable(diag + off, psi + off, lambda + off, len);
  });
  double s = 0.0;
  for (double p : partial) s += p;
  return s;
}

void par_apply_single_pairs(cplx* lo, cplx* hi, std::size_t count,
                            const Mat2& m) {
  const KernelTable& kt = active();
  for_chunks(count, [&](std::size_t off, std::size_t len) {
    kt.apply_single_pairs(lo + off, hi + off, len, m);
  });
}

void par_swap_runs(cplx* lo, cplx* hi, std::size_t count) {
  const KernelTable& kt = active();
  for_chunks(count, [&](std::size_t off, std::size_t len) {
    kt.swap_runs(lo + off, hi + off, len);
  });
}

void par_negate_run(cplx* amps, std::size_t count) {
  const KernelTable& kt = active();
  for_chunks(count, [&](std::size_t off, std::size_t len) {
    kt.negate_run(amps + off, len);
  });
}

}  // namespace

#ifdef SQVAE_SIMD_AVX2
// Defined in kernels_avx2.cpp (the only TU compiled with -mavx2 -mfma).
namespace detail {
const KernelTable& avx2_table();
}

bool compiled_with_simd() { return true; }

const KernelTable* avx2_table_if_supported() {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return &detail::avx2_table();
  }
#endif
  return nullptr;
}
#else
bool compiled_with_simd() { return false; }

const KernelTable* avx2_table_if_supported() { return nullptr; }
#endif

const KernelTable& scalar_table() {
  static const KernelTable t = {
      scalar_apply_single,
      scalar_apply_controlled_single,
      scalar_apply_cnot,
      scalar_apply_cz,
      scalar_apply_swap,
      scalar_apply_diagonal_table,
      scalar_inner,
      scalar_norm_squared,
      scalar_expectation_z,
      scalar_apply_diag_observable,
      scalar_probabilities,
      scalar_apply_single_pairs,
      scalar_swap_runs,
      scalar_negate_run,
  };
  return t;
}

const KernelTable& parallel_table() {
  static const KernelTable t = {
      par_apply_single,
      par_apply_controlled_single,
      par_apply_cnot,
      par_apply_cz,
      par_apply_swap,
      par_apply_diagonal_table,
      par_inner,
      par_norm_squared,
      par_expectation_z,
      par_apply_diag_observable,
      par_probabilities,
      par_apply_single_pairs,
      par_swap_runs,
      par_negate_run,
  };
  return t;
}

std::size_t parallel_threshold() {
  return threshold_storage().load(std::memory_order_relaxed);
}

void set_parallel_threshold(std::size_t threshold) {
  threshold_storage().store(threshold, std::memory_order_relaxed);
}

bool use_amplitude_parallel(std::size_t n) {
#ifdef _OPENMP
  return n >= parallel_threshold() && !omp_in_parallel();
#else
  (void)n;
  return false;
#endif
}

const KernelTable& table_for(std::size_t n) {
  return use_amplitude_parallel(n) ? parallel_table() : active();
}

const KernelTable& active() { return *dispatch().table; }

Isa active_isa() { return dispatch().isa; }

const char* isa_name(Isa isa) {
  return isa == Isa::kAvx2 ? "avx2" : "scalar";
}

void apply_diagonal_run(cplx* amps, std::size_t n, int num_qubits,
                        const DiagonalRun& run) {
  assert(n == (std::size_t{1} << num_qubits));
  thread_local std::vector<cplx> table;
  build_diagonal_table(run, num_qubits, table);
  table_for(n).apply_diagonal_table(amps, n, table.data());
}

}  // namespace sqvae::qsim::kernels
