// sqvae_serve: batched inference serving over a line protocol.
//
// Loads a checkpoint (any file sqvae_train writes; training state is
// ignored — models/checkpoint.h load_params_only) into an immutable
// LoadedModel, publishes it as "default" in a ModelRegistry, and answers
// encode / decode / reconstruct / latent_sample requests through the
// micro-batching InferenceService. One JSON-ish request per line in, one
// response per line out (see src/serve/protocol.h for the exact format).
// {"op": "stats"} returns the live ServerStats counters as one JSON line;
// {"op": "stats", "format": "prometheus"} returns the Prometheus text
// exposition (multi-line, terminated by a "# EOF" line), which is also
// what --stats_port serves over plain HTTP for scrapers.
//
// Transports:
//   * stdin/stdout (default) — requests are submitted as they are read and
//     responses printed in request order, so a fast piped client exercises
//     real micro-batch coalescing;
//   * TCP (--port=N) — a single-threaded epoll event loop
//     (src/serve/event_loop.h) owns every connection: non-blocking reads
//     with incremental frame parsing, per-connection ordered responses,
//     bounded output queues, --max_conns admission control, --idle_ms
//     timeouts. Compute runs on the InferenceService worker pool, so
//     concurrent connections still coalesce into shared micro-batches.
//     SIGTERM/SIGINT trigger a graceful drain: stop accepting, finish and
//     flush in-flight responses, then exit 0. SIGHUP triggers a
//     zero-downtime checkpoint rollout: the checkpoint file is re-loaded
//     and republished through the ModelRegistry while in-flight traffic
//     stays pinned to the generation it started with.
//   * multi-process TCP (--workers=N, N > 1) — a thread-free supervisor
//     (src/serve/supervisor.h) forks N shard processes *before* any
//     worker thread exists; every shard binds the same --port with
//     SO_REUSEPORT (the kernel load-balances accepts), runs its own full
//     serving stack, and answers any request bit-identically to any
//     other shard (the determinism contract makes responses a pure
//     function of the request + checkpoint). The supervisor restarts
//     crashed shards, fans SIGTERM out for a coordinated graceful drain,
//     and fans SIGHUP out for a fleet-wide rollout.
//
// --cache_mb enables the content-addressed response cache
// (src/serve/response_cache.h): repeated (model generation, endpoint,
// payload, seed) requests are answered from memory, bit-identical to a
// fresh execution by the determinism contract.
//
// --reference bypasses the service stack entirely and answers each request
// in-process through serve::execute_single — the determinism contract's
// reference implementation. Piping the same requests through a normal
// (multi-worker, micro-batched, cached, even multi-process) server and
// through --reference must produce byte-identical output; ci/serve_smoke.sh
// and ci/serve_soak.sh diff exactly that against freshly trained
// checkpoints.
//
// Examples:
//   sqvae_serve --checkpoint=run.ckpt --input_dim=64 < requests.jsonl
//   sqvae_serve --checkpoint=run.ckpt --input_dim=64 --port=7071
//       --cache_mb=64 --max_conns=5000 --shed_queue
//   sqvae_serve --checkpoint=run.ckpt --input_dim=64 --port=7071
//       --workers=4 --stats_port=9100   # shards scrape at 9100..9103
//   echo '{"op": "stats"}' | sqvae_serve --checkpoint=run.ckpt
#include <chrono>
#include <cstdio>
#include <deque>
#include <future>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/flags.h"
#include "common/mutex.h"
#include "serve/event_loop.h"
#include "serve/protocol.h"
#include "serve/registry.h"
#include "serve/service.h"
#include "serve/stats.h"
#include "serve/stats_http.h"
#include "serve/supervisor.h"

#ifdef __unix__
#include <csignal>
#define SQVAE_SERVE_HAS_SIGNALS 1
#endif

namespace {

using namespace sqvae;

serve::ModelSpec spec_from_flags(const Flags& flags) {
  serve::ModelSpec spec;
  spec.kind = flags.get_string("model");
  spec.input_dim = static_cast<std::size_t>(flags.get_int("input_dim"));
  spec.entangling_layers = static_cast<int>(flags.get_int("layers"));
  spec.patches = static_cast<int>(flags.get_int("patches"));
  spec.latent = static_cast<std::size_t>(flags.get_int("latent"));
  const std::string backend = flags.get_string("backend");
  if (backend == "statevector") {
    spec.sim.backend = qsim::BackendKind::kStatevector;
  } else if (backend == "trajectory") {
    spec.sim.backend = qsim::BackendKind::kTrajectory;
  } else if (backend == "shots") {
    spec.sim.backend = qsim::BackendKind::kShotSampling;
  } else {
    std::fprintf(stderr,
                 "unknown --backend=%s (statevector, trajectory, shots)\n",
                 backend.c_str());
    std::exit(2);
  }
  spec.sim.shots = static_cast<std::size_t>(flags.get_int("shots"));
  spec.sim.noise.gate_error = flags.get_double("gate_error");
  spec.sim.seed = static_cast<std::uint64_t>(flags.get_int("sim_seed"));
  return spec;
}

/// One response slot: either a pre-rendered line (parse failures and
/// stats resolve immediately) or a pending future, kept in request order.
struct Slot {
  bool immediate = false;
  std::string line;
  serve::WireRequest request;
  std::future<serve::InferenceResult> future;
  std::chrono::steady_clock::time_point submitted{};
};

/// Serves one request stream in order (stdin/stdout mode). A
/// reader/writer pair: the reader keeps submitting requests while earlier
/// ones execute (so a fast pipelined client gets real micro-batch
/// coalescing), and a dedicated writer thread emits responses in request
/// order *as they resolve* — a closed-loop client that waits for each
/// response before sending the next therefore always gets it, even while
/// the reader is blocked on the next input line.
void serve_stream(serve::InferenceService& service, serve::ServerStats& stats,
                  std::istream& in, std::ostream& out) {
  sq::Mutex mu;
  sq::CondVar cv;
  std::deque<Slot> slots;
  bool done = false;

  std::thread writer([&] {
    while (true) {
      Slot slot;
      {
        sq::MutexLock lock(mu);
        while (!done && slots.empty()) cv.wait(mu);
        if (slots.empty()) return;
        slot = std::move(slots.front());
        slots.pop_front();
      }
      if (slot.immediate) {
        out << slot.line << '\n';
        stats.responses_total.fetch_add(1, std::memory_order_relaxed);
      } else {
        // Blocking on the oldest future is correct: responses must be
        // emitted in request order anyway.
        const serve::InferenceResult result = slot.future.get();
        const int e = static_cast<int>(slot.request.endpoint);
        if (!result.ok) {
          stats.endpoint[e].errors.fetch_add(1, std::memory_order_relaxed);
        }
        const auto us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - slot.submitted)
                .count();
        stats.latency.record_us(static_cast<std::uint64_t>(us));
        stats.endpoint[e].latency.record_us(static_cast<std::uint64_t>(us));
        out << serve::format_response(slot.request, result) << '\n';
        stats.responses_total.fetch_add(1, std::memory_order_relaxed);
      }
      out.flush();
    }
  });

  std::string line;
  while (std::getline(in, line)) {
    serve::WireRequest request;
    std::string error;
    Slot slot;
    if (!serve::parse_request_line(line, &request, &error)) {
      if (error.empty()) continue;  // blank line
      stats.requests_total.fetch_add(1, std::memory_order_relaxed);
      stats.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      slot.immediate = true;
      slot.line = serve::format_parse_error(error);
    } else if (request.is_stats) {
      stats.requests_total.fetch_add(1, std::memory_order_relaxed);
      slot.immediate = true;
      slot.line =
          request.stats_prometheus
              ? serve::render_stats_prometheus(
                    stats, service.queue().depth(),
                    service.registry().generation(request.model), /*shard=*/0)
              : serve::render_stats_response(
                    stats, service.queue().depth(),
                    service.registry().generation(request.model),
                    request.has_id, request.id);
    } else {
      stats.requests_total.fetch_add(1, std::memory_order_relaxed);
      stats.endpoint[static_cast<int>(request.endpoint)].requests.fetch_add(
          1, std::memory_order_relaxed);
      slot.submitted = std::chrono::steady_clock::now();
      slot.future = service.submit(request.model, request.endpoint,
                                   std::move(request.x), request.seed);
      // x was just moved out, so the slot keeps only the small fields the
      // response needs (op/id) — not a second copy of the payload.
      slot.request = std::move(request);
    }
    {
      sq::MutexLock lock(mu);
      slots.push_back(std::move(slot));
    }
    cv.notify_one();
  }
  {
    sq::MutexLock lock(mu);
    done = true;
  }
  cv.notify_one();
  writer.join();
}

/// --reference: answers each request in-process, no queue, no workers.
int run_reference(const std::shared_ptr<const serve::LoadedModel>& loaded,
                  std::istream& in, std::ostream& out) {
  std::unique_ptr<models::Autoencoder> replica = loaded->make_replica();
  if (replica == nullptr) {
    std::fprintf(stderr, "internal error: replica build failed\n");
    return 1;
  }
  std::string line;
  while (std::getline(in, line)) {
    serve::WireRequest request;
    std::string error;
    if (!serve::parse_request_line(line, &request, &error)) {
      if (error.empty()) continue;
      out << serve::format_parse_error(error) << '\n';
      continue;
    }
    if (request.is_stats) continue;  // transport-layer op; nothing to replay
    const serve::InferenceResult result = serve::execute_single(
        *loaded, *replica, request.endpoint, request.x, request.seed);
    out << serve::format_response(request, result) << '\n';
  }
  out.flush();
  return 0;
}

#ifdef SQVAE_SERVE_HAS_SIGNALS
// Signal handlers may only touch these pointers and call the
// async-signal-safe request_* methods (eventfd / self-pipe writes).
serve::EventLoopServer* g_server = nullptr;
serve::ShardSupervisor* g_supervisor = nullptr;

void handle_stop_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
  if (g_supervisor != nullptr) g_supervisor->request_drain();
}

void handle_reload_signal(int) {
  if (g_server != nullptr) g_server->request_reload();
  if (g_supervisor != nullptr) g_supervisor->request_rollout();
}
#endif

int run_event_loop(serve::InferenceService& service,
                   serve::ServerStats& stats,
                   const serve::EventLoopConfig& config, int shard,
                   int workers) {
  serve::EventLoopServer server(service, config, stats);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "sqvae_serve: %s\n", error.c_str());
    return 1;
  }
#ifdef SQVAE_SERVE_HAS_SIGNALS
  // A client that disconnects before reading its response must not kill
  // the server: writes to its dead socket return EPIPE (tearing that
  // connection down) instead of raising fatal SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);
  g_server = &server;
  std::signal(SIGTERM, handle_stop_signal);
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGHUP, handle_reload_signal);
#endif
  std::fprintf(stderr, "sqvae_serve: shard %d/%d listening on 127.0.0.1:%d\n",
               shard, workers, server.port());
  const int status = server.run();
#ifdef SQVAE_SERVE_HAS_SIGNALS
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGHUP, SIG_DFL);
  g_server = nullptr;
#endif
  // Workers must be joined before `server` is destroyed: their completion
  // callbacks post into it.
  service.shutdown();
  return status;
}

/// One serving process end to end: load the checkpoint, build the
/// registry/service stack, serve (stdin or TCP), shut down. In
/// multi-process mode this runs inside each forked shard — nothing above
/// it may create threads before the fork.
int serve_process(const Flags& flags, const serve::ModelSpec& spec, int shard,
                  int workers) {
  const std::string checkpoint = flags.get_string("checkpoint");
  std::string error;
  const std::shared_ptr<const serve::LoadedModel> loaded =
      serve::LoadedModel::from_checkpoint_file(spec, checkpoint, &error);
  if (loaded == nullptr) {
    std::fprintf(stderr, "sqvae_serve: %s\n", error.c_str());
    return 1;
  }

  serve::ModelRegistry registry;
  registry.publish("default", loaded);
  serve::ServerStats stats;
  serve::ServeConfig config;
  config.max_batch = static_cast<std::size_t>(flags.get_int("max_batch"));
  config.max_batch_wait_us =
      static_cast<std::uint64_t>(flags.get_int("max_wait_us"));
  config.threads = static_cast<int>(flags.get_int("threads"));
  config.max_queue = static_cast<std::size_t>(flags.get_int("max_queue"));
  const int port = static_cast<int>(flags.get_int("port"));
  config.shed_on_full = flags.get_bool("shed_queue") || port != 0;
  config.cache_bytes =
      static_cast<std::size_t>(flags.get_int("cache_mb")) << 20;
  serve::InferenceService service(registry, config, &stats);

  // Per-shard Prometheus scrape endpoint on stats_port + shard: per-shard
  // metrics need per-shard addresses (a shared SO_REUSEPORT scrape port
  // would hand each scrape to a random shard).
  std::unique_ptr<serve::StatsHttpServer> stats_http;
  const int stats_port = static_cast<int>(flags.get_int("stats_port"));
  if (stats_port != 0) {
    stats_http = std::make_unique<serve::StatsHttpServer>(
        stats_port + shard, [&stats, &service, shard] {
          return serve::render_stats_prometheus(
              stats, service.queue().depth(),
              service.registry().generation("default"), shard);
        });
    std::string http_error;
    if (!stats_http->start(&http_error)) {
      std::fprintf(stderr, "sqvae_serve: %s\n", http_error.c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "sqvae_serve: shard %d stats on http://127.0.0.1:%d/\n",
                 shard, stats_http->port());
  }

  int status = 0;
  if (port != 0) {
    serve::EventLoopConfig loop_config;
    loop_config.port = port;
    loop_config.reuse_port = workers > 1;
    loop_config.shard = shard;
    loop_config.max_conns =
        static_cast<std::size_t>(flags.get_int("max_conns"));
    loop_config.idle_timeout_ms =
        static_cast<std::uint64_t>(flags.get_int("idle_ms"));
    // SIGHUP rollout: re-load the checkpoint file and republish it. Runs
    // on the loop thread; in-flight batches stay pinned to the old
    // generation (registry.h), new batches (and new cache keys) see the
    // new one — zero downtime, no mixed responses.
    loop_config.on_reload = [&registry, &spec, checkpoint, shard] {
      std::string reload_error;
      const std::shared_ptr<const serve::LoadedModel> fresh =
          serve::LoadedModel::from_checkpoint_file(spec, checkpoint,
                                                   &reload_error);
      if (fresh == nullptr) {
        // Keep serving the old generation: a bad checkpoint on disk must
        // not take down a healthy fleet.
        std::fprintf(stderr, "sqvae_serve: shard %d reload failed: %s\n",
                     shard, reload_error.c_str());
        return;
      }
      const std::uint64_t generation = registry.publish("default", fresh);
      std::fprintf(stderr,
                   "sqvae_serve: shard %d reloaded checkpoint "
                   "(generation %llu)\n",
                   shard, static_cast<unsigned long long>(generation));
    };
    status = run_event_loop(service, stats, loop_config, shard, workers);
  } else {
    serve_stream(service, stats, std::cin, std::cout);
  }

  service.shutdown();
  if (stats_http != nullptr) stats_http->stop();
  std::fprintf(stderr,
               "sqvae_serve: shard %d: %llu request(s) in %llu batch(es), "
               "%d worker(s), max_batch %zu, %llu cache hit(s), "
               "%llu shed\n",
               shard,
               static_cast<unsigned long long>(
                   service.queue().total_requests()),
               static_cast<unsigned long long>(service.queue().total_batches()),
               service.num_workers(), config.max_batch,
               static_cast<unsigned long long>(
                   stats.cache_hits.load(std::memory_order_relaxed)),
               static_cast<unsigned long long>(
                   stats.requests_shed.load(std::memory_order_relaxed) +
                   stats.connections_shed.load(std::memory_order_relaxed)));
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  // Model spec (must match the checkpoint's architecture).
  flags.add_string("checkpoint", "", "checkpoint path (v1 or v2; required)");
  flags.add_string("model", "sq-ae",
                   "classical-ae, classical-vae, fbq-ae, fbq-vae, hbq-ae, "
                   "hbq-vae, sq-ae, sq-vae");
  flags.add_int("input_dim", 64, "model input dimension");
  flags.add_int("layers", 3, "entangling layers per circuit");
  flags.add_int("patches", 2, "patch count (sq-ae / sq-vae)");
  flags.add_int("latent", 6, "latent dimension (classical models)");
  // Simulation regime.
  flags.add_string("backend", "statevector",
                   "measurement regime: statevector, trajectory, shots");
  flags.add_int("shots", 1024, "shots / trajectories per estimate");
  flags.add_double("gate_error", 0.0,
                   "per-gate Pauli error rate (trajectory backend)");
  flags.add_int("sim_seed", 0x5eed, "backend stream base seed");
  // Serving knobs.
  flags.add_int("max_batch", 16, "micro-batch size cap (1 = no batching)");
  flags.add_int("max_wait_us", 0,
                "micro-batch straggler wait in microseconds (0 = "
                "opportunistic coalescing only)");
  flags.add_int("threads", 0, "worker threads (0 = hardware concurrency)");
  flags.add_int("max_queue", 1024,
                "queued-request bound; submission blocks when full "
                "(backpressure; 0 = unbounded)");
  flags.add_bool("shed_queue", false,
                 "shed (fail fast with an overloaded error) instead of "
                 "blocking when the queue is full; always on in TCP mode, "
                 "where the event loop must never block");
  flags.add_int("cache_mb", 0,
                "content-addressed response cache budget in MiB (0 = off)");
  flags.add_int("port", 0, "TCP port on 127.0.0.1 (0 = stdin/stdout mode)");
  flags.add_int("workers", 1,
                "shard processes sharing --port via SO_REUSEPORT (TCP mode "
                "only; a supervisor restarts crashed shards and coordinates "
                "SIGTERM drain / SIGHUP rollout)");
  flags.add_int("stats_port", 0,
                "plain-HTTP Prometheus scrape port; shard i serves on "
                "stats_port + i (0 = off)");
  flags.add_int("max_conns", 10000,
                "TCP connection admission limit; connections beyond it get "
                "one overloaded error line and are closed");
  flags.add_int("idle_ms", 0,
                "close TCP connections idle this long (0 = never)");
  flags.add_bool("reference", false,
                 "answer requests in-process without the service stack (the "
                 "determinism reference; for diffing)");

  try {
    if (!flags.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  const std::string checkpoint = flags.get_string("checkpoint");
  if (checkpoint.empty()) {
    std::fprintf(stderr, "--checkpoint is required\n");
    return 2;
  }
  const serve::ModelSpec spec = spec_from_flags(flags);

  if (flags.get_bool("reference")) {
    std::string error;
    const std::shared_ptr<const serve::LoadedModel> loaded =
        serve::LoadedModel::from_checkpoint_file(spec, checkpoint, &error);
    if (loaded == nullptr) {
      std::fprintf(stderr, "sqvae_serve: %s\n", error.c_str());
      return 1;
    }
    return run_reference(loaded, std::cin, std::cout);
  }

  const int port = static_cast<int>(flags.get_int("port"));
  if (port < 0 || port > 65535) {
    std::fprintf(stderr, "--port=%d is out of range (1-65535, 0 = stdin)\n",
                 port);
    return 2;
  }
  const int workers = static_cast<int>(flags.get_int("workers"));
  if (workers < 1) {
    std::fprintf(stderr, "--workers=%d must be >= 1\n", workers);
    return 2;
  }
  if (workers > 1 && port == 0) {
    std::fprintf(stderr,
                 "--workers=%d requires --port (SO_REUSEPORT sharding is "
                 "TCP-only)\n",
                 workers);
    return 2;
  }
  const int stats_port = static_cast<int>(flags.get_int("stats_port"));
  if (stats_port < 0 || stats_port + workers - 1 > 65535) {
    std::fprintf(stderr,
                 "--stats_port=%d is out of range (shard %d would scrape at "
                 "%d)\n",
                 stats_port, workers - 1, stats_port + workers - 1);
    return 2;
  }

  if (workers > 1) {
#ifdef SQVAE_SERVE_HAS_SIGNALS
    // Fork BEFORE any thread exists: each shard builds its worker pool
    // (and everything else) inside the child. The supervisor itself
    // stays thread-free.
    serve::SupervisorConfig sup_config;
    sup_config.workers = workers;
    serve::ShardSupervisor supervisor(sup_config);
    g_supervisor = &supervisor;
    std::signal(SIGTERM, handle_stop_signal);
    std::signal(SIGINT, handle_stop_signal);
    std::signal(SIGHUP, handle_reload_signal);
    std::string error;
    const int status = supervisor.run(
        [&flags, &spec, workers](int shard) {
          return serve_process(flags, spec, shard, workers);
        },
        &error);
    std::signal(SIGTERM, SIG_DFL);
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGHUP, SIG_DFL);
    g_supervisor = nullptr;
    if (!error.empty()) {
      std::fprintf(stderr, "sqvae_serve: %s\n", error.c_str());
    }
    std::fprintf(stderr,
                 "sqvae_serve: supervisor exiting %d (%llu shard "
                 "restart(s))\n",
                 status,
                 static_cast<unsigned long long>(supervisor.restarts()));
    return status;
#else
    std::fprintf(stderr, "--workers > 1 requires fork (unix)\n");
    return 2;
#endif
  }

  return serve_process(flags, spec, /*shard=*/0, /*workers=*/1);
}
