// sqvae_serve: batched inference serving over a line protocol.
//
// Loads a checkpoint (any file sqvae_train writes; training state is
// ignored — models/checkpoint.h load_params_only) into an immutable
// LoadedModel, publishes it as "default" in a ModelRegistry, and answers
// encode / decode / reconstruct / latent_sample requests through the
// micro-batching InferenceService. One JSON-ish request per line in, one
// response per line out (see src/serve/protocol.h for the exact format).
//
// Transports:
//   * stdin/stdout (default) — requests are submitted as they are read and
//     responses printed in request order, so a fast piped client exercises
//     real micro-batch coalescing;
//   * TCP (--port=N) — one thread per connection, each handling its
//     connection's requests in order; concurrent connections coalesce into
//     shared micro-batches. Runs until killed.
//
// --reference bypasses the service stack entirely and answers each request
// in-process through serve::execute_single — the determinism contract's
// reference implementation. Piping the same requests through a normal
// (multi-worker, micro-batched) server and through --reference must
// produce byte-identical output; ci/serve_smoke.sh diffs exactly that
// against a freshly trained checkpoint.
//
// Examples:
//   sqvae_serve --checkpoint=run.ckpt --input_dim=64 < requests.jsonl
//   sqvae_serve --checkpoint=run.ckpt --input_dim=64 --port=7071
//   echo '{"op": "encode", "x": [...]}' | sqvae_serve --checkpoint=run.ckpt
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <future>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/flags.h"
#include "serve/protocol.h"
#include "serve/registry.h"
#include "serve/service.h"

#ifdef __unix__
#include <arpa/inet.h>
#include <csignal>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#define SQVAE_SERVE_HAS_TCP 1
#endif

namespace {

using namespace sqvae;

serve::ModelSpec spec_from_flags(const Flags& flags) {
  serve::ModelSpec spec;
  spec.kind = flags.get_string("model");
  spec.input_dim = static_cast<std::size_t>(flags.get_int("input_dim"));
  spec.entangling_layers = static_cast<int>(flags.get_int("layers"));
  spec.patches = static_cast<int>(flags.get_int("patches"));
  spec.latent = static_cast<std::size_t>(flags.get_int("latent"));
  const std::string backend = flags.get_string("backend");
  if (backend == "statevector") {
    spec.sim.backend = qsim::BackendKind::kStatevector;
  } else if (backend == "trajectory") {
    spec.sim.backend = qsim::BackendKind::kTrajectory;
  } else if (backend == "shots") {
    spec.sim.backend = qsim::BackendKind::kShotSampling;
  } else {
    std::fprintf(stderr,
                 "unknown --backend=%s (statevector, trajectory, shots)\n",
                 backend.c_str());
    std::exit(2);
  }
  spec.sim.shots = static_cast<std::size_t>(flags.get_int("shots"));
  spec.sim.noise.gate_error = flags.get_double("gate_error");
  spec.sim.seed = static_cast<std::uint64_t>(flags.get_int("sim_seed"));
  return spec;
}

/// One response slot: either a pre-rendered line (parse failures resolve
/// immediately) or a pending future, kept in request order.
struct Slot {
  bool immediate = false;
  std::string line;
  serve::WireRequest request;
  std::future<serve::InferenceResult> future;
};

/// Serves one request stream in order; shared by stdin mode and each TCP
/// connection. A reader/writer pair: the reader keeps submitting requests
/// while earlier ones execute (so a fast pipelined client gets real
/// micro-batch coalescing), and a dedicated writer thread emits responses
/// in request order *as they resolve* — a closed-loop client that waits
/// for each response before sending the next therefore always gets it,
/// even while the reader is blocked on the next input line.
void serve_stream(serve::InferenceService& service, std::istream& in,
                  std::ostream& out) {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Slot> slots;
  bool done = false;

  std::thread writer([&] {
    while (true) {
      Slot slot;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return done || !slots.empty(); });
        if (slots.empty()) return;
        slot = std::move(slots.front());
        slots.pop_front();
      }
      if (slot.immediate) {
        out << slot.line << '\n';
      } else {
        // Blocking on the oldest future is correct: responses must be
        // emitted in request order anyway.
        out << serve::format_response(slot.request, slot.future.get())
            << '\n';
      }
      out.flush();
    }
  });

  std::string line;
  while (std::getline(in, line)) {
    serve::WireRequest request;
    std::string error;
    Slot slot;
    if (!serve::parse_request_line(line, &request, &error)) {
      if (error.empty()) continue;  // blank line
      slot.immediate = true;
      slot.line = serve::format_parse_error(error);
    } else {
      slot.future = service.submit(request.model, request.endpoint,
                                   std::move(request.x), request.seed);
      // x was just moved out, so the slot keeps only the small fields the
      // response needs (op/id) — not a second copy of the payload.
      slot.request = std::move(request);
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      slots.push_back(std::move(slot));
    }
    cv.notify_one();
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    done = true;
  }
  cv.notify_one();
  writer.join();
}

/// --reference: answers each request in-process, no queue, no workers.
int run_reference(const std::shared_ptr<const serve::LoadedModel>& loaded,
                  std::istream& in, std::ostream& out) {
  std::unique_ptr<models::Autoencoder> replica = loaded->make_replica();
  if (replica == nullptr) {
    std::fprintf(stderr, "internal error: replica build failed\n");
    return 1;
  }
  std::string line;
  while (std::getline(in, line)) {
    serve::WireRequest request;
    std::string error;
    if (!serve::parse_request_line(line, &request, &error)) {
      if (error.empty()) continue;
      out << serve::format_parse_error(error) << '\n';
      continue;
    }
    const serve::InferenceResult result = serve::execute_single(
        *loaded, *replica, request.endpoint, request.x, request.seed);
    out << serve::format_response(request, result) << '\n';
  }
  out.flush();
  return 0;
}

#ifdef SQVAE_SERVE_HAS_TCP
/// Minimal istream/ostream pair over a connected socket.
class SocketStreambuf : public std::streambuf {
 public:
  explicit SocketStreambuf(int fd) : fd_(fd) {
    setg(in_, in_, in_);
    setp(out_, out_ + sizeof(out_));
  }
  ~SocketStreambuf() override { sync(); }

 protected:
  int underflow() override {
    const ssize_t n = ::read(fd_, in_, sizeof(in_));
    if (n <= 0) return traits_type::eof();
    setg(in_, in_, in_ + n);
    return traits_type::to_int_type(*gptr());
  }
  int overflow(int c) override {
    if (sync() != 0) return traits_type::eof();
    if (c != traits_type::eof()) {
      *pptr() = traits_type::to_char_type(c);
      pbump(1);
    }
    return c;
  }
  int sync() override {
    const char* p = pbase();
    while (p < pptr()) {
      const ssize_t n = ::write(fd_, p, static_cast<std::size_t>(pptr() - p));
      if (n <= 0) return -1;
      p += n;
    }
    setp(out_, out_ + sizeof(out_));
    return 0;
  }

 private:
  int fd_;
  char in_[4096];
  char out_[4096];
};

int run_tcp(serve::InferenceService& service, int port) {
  // A client that disconnects before reading its response must not kill
  // the server: writes to its dead socket return EPIPE (ending that
  // handler's stream) instead of raising fatal SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("socket");
    return 1;
  }
  const int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listener, 64) < 0) {
    std::perror("bind/listen");
    ::close(listener);
    return 1;
  }
  std::fprintf(stderr, "sqvae_serve: listening on 127.0.0.1:%d\n", port);
  while (true) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) {
      // Transient failures (EINTR, EMFILE under load, a connection that
      // aborted between queueing and accept) must not stop a server that
      // is documented to run until killed — and must never tear down
      // `service` while detached handler threads still use it. Back off
      // briefly and keep accepting.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    // Detached: handler threads end with their connection, so a
    // long-running server never accumulates joinable thread handles. The
    // server runs until the process is killed, which also reaps any
    // still-open connections; `service` outlives the accept loop in
    // main(), so the reference stays valid for every handler.
    std::thread([&service, fd] {
      SocketStreambuf buf(fd);
      std::istream in(&buf);
      std::ostream out(&buf);
      serve_stream(service, in, out);
      ::close(fd);
    }).detach();
  }
}
#endif  // SQVAE_SERVE_HAS_TCP

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  // Model spec (must match the checkpoint's architecture).
  flags.add_string("checkpoint", "", "checkpoint path (v1 or v2; required)");
  flags.add_string("model", "sq-ae",
                   "classical-ae, classical-vae, fbq-ae, fbq-vae, hbq-ae, "
                   "hbq-vae, sq-ae, sq-vae");
  flags.add_int("input_dim", 64, "model input dimension");
  flags.add_int("layers", 3, "entangling layers per circuit");
  flags.add_int("patches", 2, "patch count (sq-ae / sq-vae)");
  flags.add_int("latent", 6, "latent dimension (classical models)");
  // Simulation regime.
  flags.add_string("backend", "statevector",
                   "measurement regime: statevector, trajectory, shots");
  flags.add_int("shots", 1024, "shots / trajectories per estimate");
  flags.add_double("gate_error", 0.0,
                   "per-gate Pauli error rate (trajectory backend)");
  flags.add_int("sim_seed", 0x5eed, "backend stream base seed");
  // Serving knobs.
  flags.add_int("max_batch", 16, "micro-batch size cap (1 = no batching)");
  flags.add_int("max_wait_us", 0,
                "micro-batch straggler wait in microseconds (0 = "
                "opportunistic coalescing only)");
  flags.add_int("threads", 0, "worker threads (0 = hardware concurrency)");
  flags.add_int("max_queue", 1024,
                "queued-request bound; submission blocks when full "
                "(backpressure; 0 = unbounded)");
  flags.add_int("port", 0, "TCP port on 127.0.0.1 (0 = stdin/stdout mode)");
  flags.add_bool("reference", false,
                 "answer requests in-process without the service stack (the "
                 "determinism reference; for diffing)");

  try {
    if (!flags.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  const std::string checkpoint = flags.get_string("checkpoint");
  if (checkpoint.empty()) {
    std::fprintf(stderr, "--checkpoint is required\n");
    return 2;
  }
  const serve::ModelSpec spec = spec_from_flags(flags);
  std::string error;
  const std::shared_ptr<const serve::LoadedModel> loaded =
      serve::LoadedModel::from_checkpoint_file(spec, checkpoint, &error);
  if (loaded == nullptr) {
    std::fprintf(stderr, "sqvae_serve: %s\n", error.c_str());
    return 1;
  }

  if (flags.get_bool("reference")) {
    return run_reference(loaded, std::cin, std::cout);
  }

  serve::ModelRegistry registry;
  registry.publish("default", loaded);
  serve::ServeConfig config;
  config.max_batch = static_cast<std::size_t>(flags.get_int("max_batch"));
  config.max_batch_wait_us =
      static_cast<std::uint64_t>(flags.get_int("max_wait_us"));
  config.threads = static_cast<int>(flags.get_int("threads"));
  config.max_queue = static_cast<std::size_t>(flags.get_int("max_queue"));
  serve::InferenceService service(registry, config);

  int status = 0;
  const int port = static_cast<int>(flags.get_int("port"));
  if (port < 0 || port > 65535) {
    std::fprintf(stderr, "--port=%d is out of range (1-65535, 0 = stdin)\n",
                 port);
    return 2;
  }
  if (port != 0) {
#ifdef SQVAE_SERVE_HAS_TCP
    status = run_tcp(service, port);
#else
    std::fprintf(stderr, "TCP mode is not available on this platform\n");
    status = 2;
#endif
  } else {
    serve_stream(service, std::cin, std::cout);
  }

  service.shutdown();
  std::fprintf(stderr,
               "sqvae_serve: %llu request(s) in %llu batch(es), "
               "%d worker(s), max_batch %zu\n",
               static_cast<unsigned long long>(service.queue().total_requests()),
               static_cast<unsigned long long>(service.queue().total_batches()),
               service.num_workers(), config.max_batch);
  return status;
}
