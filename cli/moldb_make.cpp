// moldb_make: stream molecules into a content-addressed shard.
//
// Two sources, both streamed one molecule at a time so peak RSS is bounded
// by the shard index (~44 bytes per unique molecule), never by the corpus:
//
//   * SMILES files (--input=a.smi,b.smi, '-' = stdin): each line is
//     parsed, canonicalized, hashed, and inserted; unparseable lines and
//     molecules over --max_atoms are counted and skipped, not fatal — a
//     corpus build keeps going past dirty input.
//   * the synthetic generators (--gen=qm9|pdbbind --count=N --seed=S):
//     the same molecule stream the in-memory training scenarios use,
//     produced incrementally.
//
// Every record is stored as canonical SMILES keyed by its 128-bit content
// hash (chem/mol_hash.h), so duplicates — including the same molecule
// written with permuted atoms — are detected exactly at insert time.
//
// Examples:
//   moldb_make --out=corpus.moldb --input=chembl.smi --max_atoms=32
//   moldb_make --out=qm9.moldb --gen=qm9 --count=1000000 --seed=1
//   cat *.smi | moldb_make --out=all.moldb --input=-
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "chem/mol_hash.h"
#include "chem/smiles.h"
#include "common/flags.h"
#include "common/rng.h"
#include "data/molecule_gen.h"
#include "data/shard_store.h"

namespace {

using namespace sqvae;

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

struct IngestStats {
  std::size_t read = 0;       // lines / generated molecules seen
  std::size_t invalid = 0;    // unparseable or unserializable
  std::size_t oversize = 0;   // over --max_atoms
  std::size_t duplicates = 0;
  std::size_t written = 0;
  bool ok = true;
};

/// Canonicalizes and inserts one molecule; false only on writer I/O error.
bool ingest(const chem::Molecule& mol, long long max_atoms,
            data::ShardWriter& writer, IngestStats& stats) {
  if (max_atoms > 0 && mol.num_atoms() > max_atoms) {
    ++stats.oversize;
    return true;
  }
  const auto canonical = chem::to_smiles(mol);
  if (!canonical || canonical->empty()) {
    ++stats.invalid;
    return true;
  }
  const chem::MolHash key = chem::hash_bytes(*canonical);
  switch (writer.insert(key, *canonical)) {
    case data::ShardWriter::Insert::kAdded:
      ++stats.written;
      return true;
    case data::ShardWriter::Insert::kDuplicate:
      ++stats.duplicates;
      return true;
    case data::ShardWriter::Insert::kError:
      return false;
  }
  return false;
}

bool ingest_stream(std::istream& in, long long max_atoms,
                   data::ShardWriter& writer, IngestStats& stats) {
  std::string line;
  while (std::getline(in, line)) {
    // Keep only the first whitespace-separated token: .smi files commonly
    // carry a name/comment column after the SMILES.
    std::size_t end = 0;
    while (end < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[end]))) {
      ++end;
    }
    const std::string token = line.substr(0, end);
    if (token.empty() || token[0] == '#') continue;
    ++stats.read;
    const auto mol = chem::from_smiles(token);
    if (!mol) {
      ++stats.invalid;
      continue;
    }
    if (!ingest(*mol, max_atoms, writer, stats)) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.add_string("out", "", "output shard path (required)");
  flags.add_string("input", "",
                   "comma-separated SMILES files ('-' = stdin)");
  flags.add_string("gen", "",
                   "synthetic source instead of --input: qm9, pdbbind");
  flags.add_int("count", 100000, "molecules to generate with --gen");
  flags.add_int("seed", 1, "generator seed (--gen)");
  flags.add_int("gen_max_atoms", 0,
                "generator size cap (--gen; 0 = scenario default: qm9 8, "
                "pdbbind 32)");
  flags.add_int("max_atoms", 0,
                "skip molecules with more heavy atoms than this (0 = off)");
  try {
    if (!flags.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  const std::string out = flags.get_string("out");
  const std::string gen = flags.get_string("gen");
  const auto inputs = split_list(flags.get_string("input"));
  if (out.empty() || (gen.empty() == inputs.empty())) {
    std::fprintf(stderr,
                 "moldb_make: need --out and exactly one of --input / "
                 "--gen\n");
    return 2;
  }
  const long long max_atoms = flags.get_int("max_atoms");

  data::ShardWriter writer(out);
  IngestStats stats;
  if (!gen.empty()) {
    const long long gen_cap = flags.get_int("gen_max_atoms");
    data::MoleculeGenConfig config;
    if (gen == "qm9") {
      config = data::qm9_config(gen_cap > 0 ? static_cast<int>(gen_cap) : 8);
    } else if (gen == "pdbbind") {
      config =
          data::pdbbind_config(gen_cap > 0 ? static_cast<int>(gen_cap) : 32);
    } else {
      std::fprintf(stderr, "moldb_make: unknown --gen=%s (qm9, pdbbind)\n",
                   gen.c_str());
      return 2;
    }
    Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
    const long long count = flags.get_int("count");
    for (long long i = 0; i < count; ++i) {
      ++stats.read;
      const chem::Molecule mol = data::generate_molecule(config, rng);
      if (!ingest(mol, max_atoms, writer, stats)) {
        stats.ok = false;
        break;
      }
    }
  } else {
    for (const std::string& path : inputs) {
      if (path == "-") {
        if (!ingest_stream(std::cin, max_atoms, writer, stats)) {
          stats.ok = false;
          break;
        }
        continue;
      }
      std::ifstream f(path);
      if (!f) {
        std::fprintf(stderr, "moldb_make: cannot open %s\n", path.c_str());
        return 1;
      }
      if (!ingest_stream(f, max_atoms, writer, stats)) {
        stats.ok = false;
        break;
      }
    }
  }

  std::string error;
  if (!stats.ok || !writer.finish(&error)) {
    std::fprintf(stderr, "moldb_make: shard write failed%s%s\n",
                 error.empty() ? "" : ": ", error.c_str());
    return 1;
  }
  std::printf(
      "moldb_make: %s\n"
      "  read:       %zu\n"
      "  invalid:    %zu\n"
      "  oversize:   %zu\n"
      "  duplicates: %zu\n"
      "  written:    %zu\n",
      out.c_str(), stats.read, stats.invalid, stats.oversize,
      stats.duplicates, stats.written);
  return 0;
}
