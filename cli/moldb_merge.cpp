// moldb_merge: k-way merge of molecule shards with exact cross-shard
// deduplication.
//
// Every input shard's index is sorted by content key, so the merge streams
// the union in global key order: memory stays bounded by the output index
// regardless of corpus size, and the output is itself a well-formed shard
// (same format, same ordering guarantee). Records sharing a key across
// shards are written once; a key carried by *different* canonical SMILES
// (a hash collision or a corrupt-but-checksummed input) aborts the merge
// rather than silently picking one.
//
// Example:
//   moldb_merge --out=corpus.moldb --inputs=a.moldb,b.moldb,c.moldb
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "data/shard_store.h"

namespace {

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  sqvae::Flags flags;
  flags.add_string("out", "", "output shard path (required)");
  flags.add_string("inputs", "", "comma-separated input shards (required)");
  try {
    if (!flags.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  const std::string out = flags.get_string("out");
  const auto inputs = split_list(flags.get_string("inputs"));
  if (out.empty() || inputs.empty()) {
    std::fprintf(stderr, "moldb_merge: need --out and --inputs\n");
    return 2;
  }

  sqvae::data::MergeStats stats;
  std::string error;
  if (!sqvae::data::merge_shards(inputs, out, &stats, &error)) {
    std::fprintf(stderr, "moldb_merge: %s\n", error.c_str());
    return 1;
  }
  std::printf(
      "moldb_merge: %s\n"
      "  inputs:           %zu shards, %zu records\n"
      "  cross duplicates: %zu\n"
      "  written:          %zu\n",
      out.c_str(), stats.inputs, stats.input_records, stats.cross_duplicates,
      stats.written);
  return 0;
}
