// sqvae_train: one training CLI for every scenario in the repository.
//
// Replaces the per-figure ad-hoc training loops: any model of the zoo
// (classical AE/VAE, fully/hybrid baseline quantum, scalable patched
// quantum) trains on any dataset scenario (procedural Digits, grayscale
// CIFAR stand-in, QM9-like or PDBbind-like molecule matrices) under any
// simulation regime (exact statevector, noise trajectories, finite
// shots), with periodic v2 checkpointing, exact --resume, early stopping,
// and best-model tracking. See README.md "Training".
//
// Examples:
//   sqvae_train --scenario=digits --model=sq-ae --epochs=10
//   sqvae_train --scenario=cifar --model=classical-vae --latent=10
//   sqvae_train --scenario=qm9 --model=fbq-ae --l1_normalize
//   sqvae_train --scenario=digits --model=hbq-vae --backend=shots --shots=512
//   sqvae_train ... --checkpoint=run.ckpt --checkpoint_every=2
//   sqvae_train ... --checkpoint=run.ckpt --resume   # continue after a kill
//
// Corpus-scale streaming: --shards=a.moldb,b.moldb trains directly from
// content-addressed molecule shards (moldb_make / moldb_merge) without
// materializing the corpus — rows are decoded record by record from the
// memory-mapped store. The last --test_fraction of rows (capped at
// --max_test) is held out and materialized for per-epoch evaluation.
//   sqvae_train --shards=corpus.moldb --matrix_dim=8 --model=sq-ae
#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"
#include "common/table.h"
#include "data/cifar_gray.h"
#include "data/dataset.h"
#include "data/digits.h"
#include "data/molecule_dataset.h"
#include "data/shard_dataset.h"
#include "models/baseline_quantum.h"
#include "models/classical.h"
#include "models/scalable_quantum.h"
#include "models/trainer.h"
#include "qsim/backend.h"

namespace {

using namespace sqvae;

struct Scenario {
  data::Dataset dataset;
  std::size_t input_dim = 0;
};

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// L1-normalises each streamed row on the fly (the fully quantum
/// baselines' input convention), mirroring data::l1_normalize_rows.
class L1NormalizedSource final : public data::RowSource {
 public:
  explicit L1NormalizedSource(const data::RowSource& base) : base_(&base) {}
  std::size_t rows() const override { return base_->rows(); }
  std::size_t cols() const override { return base_->cols(); }
  void copy_row(std::size_t row, double* out) const override {
    base_->copy_row(row, out);
    double norm = 0.0;
    for (std::size_t c = 0; c < base_->cols(); ++c) norm += std::abs(out[c]);
    if (norm > 1e-12) {
      for (std::size_t c = 0; c < base_->cols(); ++c) out[c] /= norm;
    }
  }

 private:
  const data::RowSource* base_;
};

Scenario load_scenario(const Flags& flags, Rng& rng) {
  const std::string name = flags.get_string("scenario");
  const std::size_t count =
      static_cast<std::size_t>(flags.get_int("samples"));
  Scenario s;
  if (name == "digits") {
    const auto digits = data::make_digits(count, rng);
    s.dataset = data::scale(digits.features, 1.0 / 16.0);
  } else if (name == "cifar") {
    const auto cifar = data::make_cifar_gray(count, rng);
    s.dataset = cifar.features;
  } else if (name == "qm9") {
    const auto mols = data::make_qm9_like(count, 8, rng);
    s.dataset = mols.features();
  } else if (name == "pdbbind") {
    const auto mols = data::make_pdbbind_like(count, 32, rng);
    s.dataset = mols.features();
  } else {
    std::fprintf(stderr,
                 "unknown --scenario=%s (digits, cifar, qm9, pdbbind)\n",
                 name.c_str());
    std::exit(2);
  }
  if (flags.get_bool("l1_normalize")) {
    s.dataset = data::l1_normalize_rows(s.dataset);
  }
  s.input_dim = s.dataset.num_features();
  return s;
}

std::unique_ptr<models::Autoencoder> make_model(const Flags& flags,
                                                std::size_t input_dim,
                                                Rng& rng) {
  const std::string name = flags.get_string("model");
  const int layers = static_cast<int>(flags.get_int("layers"));
  const std::size_t latent =
      static_cast<std::size_t>(flags.get_int("latent"));
  if (name == "classical-ae" || name == "classical-vae") {
    models::ClassicalConfig c = input_dim >= 1024
                                    ? models::classical_config_1024(latent)
                                    : models::classical_config_64(latent);
    c.input_dim = input_dim;
    if (name == "classical-ae") {
      return std::make_unique<models::ClassicalAe>(c, rng);
    }
    return std::make_unique<models::ClassicalVae>(c, rng);
  }
  if (name == "fbq-ae") return models::make_fbq_ae(input_dim, layers, rng);
  if (name == "fbq-vae") return models::make_fbq_vae(input_dim, layers, rng);
  if (name == "hbq-ae") return models::make_hbq_ae(input_dim, layers, rng);
  if (name == "hbq-vae") return models::make_hbq_vae(input_dim, layers, rng);
  if (name == "sq-ae" || name == "sq-vae") {
    models::ScalableQuantumConfig c;
    c.input_dim = input_dim;
    c.patches = static_cast<int>(flags.get_int("patches"));
    c.entangling_layers = layers;
    if (name == "sq-ae") return models::make_sq_ae(c, rng);
    return models::make_sq_vae(c, rng);
  }
  std::fprintf(stderr,
               "unknown --model=%s (classical-ae, classical-vae, fbq-ae, "
               "fbq-vae, hbq-ae, hbq-vae, sq-ae, sq-vae)\n",
               name.c_str());
  std::exit(2);
}

qsim::SimulationOptions sim_from_flags(const Flags& flags) {
  qsim::SimulationOptions sim;
  const std::string backend = flags.get_string("backend");
  if (backend == "statevector") {
    sim.backend = qsim::BackendKind::kStatevector;
  } else if (backend == "trajectory") {
    sim.backend = qsim::BackendKind::kTrajectory;
  } else if (backend == "shots") {
    sim.backend = qsim::BackendKind::kShotSampling;
  } else {
    std::fprintf(stderr,
                 "unknown --backend=%s (statevector, trajectory, shots)\n",
                 backend.c_str());
    std::exit(2);
  }
  sim.shots = static_cast<std::size_t>(flags.get_int("shots"));
  sim.noise.gate_error = flags.get_double("gate_error");
  sim.seed = static_cast<std::uint64_t>(flags.get_int("sim_seed"));
  return sim;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  // Scenario / model.
  flags.add_string("scenario", "digits",
                   "dataset: digits, cifar, qm9, pdbbind");
  flags.add_string("model", "sq-ae",
                   "classical-ae, classical-vae, fbq-ae, fbq-vae, hbq-ae, "
                   "hbq-vae, sq-ae, sq-vae");
  flags.add_int("samples", 300, "dataset size");
  flags.add_double("test_fraction", 0.15, "held-out test fraction");
  // Streaming corpus input (overrides --scenario / --samples).
  flags.add_string("shards", "",
                   "comma-separated molecule shards (moldb_make) to stream "
                   "from instead of --scenario");
  flags.add_int("matrix_dim", 8,
                "molecule-matrix dimension for --shards (input dim = "
                "matrix_dim^2)");
  flags.add_int("max_test", 4096,
                "cap on materialized held-out rows with --shards");
  flags.add_bool("l1_normalize", false,
                 "L1-normalise rows (fully quantum baselines)");
  flags.add_int("layers", 3, "entangling layers per circuit");
  flags.add_int("patches", 2, "patch count (sq-ae / sq-vae)");
  flags.add_int("latent", 6, "latent dimension (classical models)");
  // Simulation regime.
  flags.add_string("backend", "statevector",
                   "measurement regime: statevector, trajectory, shots");
  flags.add_int("shots", 1024, "shots / trajectories per estimate");
  flags.add_double("gate_error", 0.0,
                   "per-gate Pauli error rate (trajectory backend)");
  flags.add_int("sim_seed", 0x5eed, "backend stream seed");
  // Optimisation.
  flags.add_int("epochs", 20, "training epochs");
  flags.add_int("batch", 32, "mini-batch size");
  flags.add_double("qlr", 1e-3, "quantum learning rate");
  flags.add_double("clr", 1e-3, "classical learning rate");
  flags.add_double("kl_weight", 0.01, "KL weight (generative models)");
  flags.add_double("grad_clip", 0.0, "global-norm gradient clip (0 = off)");
  flags.add_double("lr_decay", 1.0, "per-epoch multiplicative LR decay");
  // Engine.
  flags.add_bool("serial", false,
                 "use the legacy serial per-batch engine instead of the "
                 "data-parallel sharded engine");
  flags.add_int("threads", 0,
                "data-parallel threads (0 = all; results are identical for "
                "every value)");
  flags.add_int("noise_seed", 0, "per-sample noise-stream seed (0 = default)");
  // Checkpoint / resume / early stop.
  flags.add_string("checkpoint", "",
                   "v2 checkpoint path (periodic save; best model at "
                   "<path>.best)");
  flags.add_int("checkpoint_every", 1, "epochs between checkpoint saves");
  flags.add_bool("resume", false,
                 "continue from --checkpoint (bit-equivalent to an "
                 "uninterrupted run)");
  flags.add_int("early_stop_patience", 0,
                "epochs without improvement before stopping (0 = off)");
  flags.add_double("early_stop_min_delta", 0.0,
                   "minimum improvement counted by early stopping");
  flags.add_bool("restore_best", false,
                 "restore the best-metric parameters after training");
  // Misc.
  flags.add_int("seed", 7, "master random seed");
  flags.add_string("history_csv", "", "optional per-epoch history CSV path");

  try {
    if (!flags.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));

  // Data: an in-memory scenario, or rows streamed from molecule shards.
  // Both feed the trainer through the same RowSource seam, so the math is
  // identical — only where the bytes live differs.
  std::unique_ptr<data::ShardDataset> shard_dataset;
  std::vector<std::unique_ptr<data::RowSource>> source_chain;
  Matrix train_matrix;  // scenario-path storage
  Matrix test_matrix;
  std::size_t input_dim = 0;
  std::string data_name;
  const std::string shards_csv = flags.get_string("shards");
  if (!shards_csv.empty()) {
    const auto paths = split_list(shards_csv);
    try {
      shard_dataset = std::make_unique<data::ShardDataset>(
          paths, static_cast<std::size_t>(flags.get_int("matrix_dim")));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
    const std::size_t n = shard_dataset->rows();
    std::size_t n_test = static_cast<std::size_t>(
        static_cast<double>(n) * flags.get_double("test_fraction"));
    const std::size_t max_test =
        static_cast<std::size_t>(flags.get_int("max_test"));
    if (n_test > max_test) n_test = max_test;
    const std::size_t n_train = n - n_test;
    source_chain.push_back(
        std::make_unique<data::RowSlice>(*shard_dataset, 0, n_train));
    test_matrix = data::materialize_rows(*shard_dataset, n_train, n_test);
    if (flags.get_bool("l1_normalize")) {
      source_chain.push_back(
          std::make_unique<L1NormalizedSource>(*source_chain.back()));
      test_matrix =
          data::l1_normalize_rows(data::Dataset{std::move(test_matrix)})
              .samples;
    }
    input_dim = shard_dataset->cols();
    data_name = "shards(" + std::to_string(paths.size()) + " files, " +
                std::to_string(n) + " records)";
  } else {
    Scenario scenario = load_scenario(flags, rng);
    auto split = data::train_test_split(
        scenario.dataset, flags.get_double("test_fraction"), rng);
    train_matrix = std::move(split.train.samples);
    test_matrix = std::move(split.test.samples);
    input_dim = scenario.input_dim;
    source_chain.push_back(
        std::make_unique<data::MatrixRowSource>(train_matrix));
    data_name = flags.get_string("scenario");
  }
  const data::RowSource& train_source = *source_chain.back();

  auto model = make_model(flags, input_dim, rng);

  models::TrainConfig config;
  config.epochs = static_cast<std::size_t>(flags.get_int("epochs"));
  config.batch_size = static_cast<std::size_t>(flags.get_int("batch"));
  config.quantum_lr = flags.get_double("qlr");
  config.classical_lr = flags.get_double("clr");
  config.kl_weight = flags.get_double("kl_weight");
  config.grad_clip = flags.get_double("grad_clip");
  config.lr_decay = flags.get_double("lr_decay");
  config.sim = sim_from_flags(flags);
  config.data_parallel = !flags.get_bool("serial");
  config.num_threads = static_cast<int>(flags.get_int("threads"));
  if (flags.get_int("noise_seed") != 0) {
    config.noise_seed = static_cast<std::uint64_t>(flags.get_int("noise_seed"));
  }
  config.checkpoint_path = flags.get_string("checkpoint");
  config.checkpoint_every =
      static_cast<std::size_t>(flags.get_int("checkpoint_every"));
  config.resume = flags.get_bool("resume");
  config.early_stop_patience =
      static_cast<std::size_t>(flags.get_int("early_stop_patience"));
  config.early_stop_min_delta = flags.get_double("early_stop_min_delta");
  config.restore_best = flags.get_bool("restore_best");

  // Apply the simulation regime now (fit() would too) so the thread count
  // reported below reflects the stochastic-backend serialisation rule.
  model->set_simulation_options(*config.sim);

  models::Trainer trainer(*model, config);
  std::printf(
      "sqvae_train: %s on %s (%zu train / %zu test, input dim %zu), "
      "%s engine, %d thread(s), backend %s\n",
      flags.get_string("model").c_str(), data_name.c_str(),
      train_source.rows(), test_matrix.rows(), input_dim,
      config.data_parallel ? "data-parallel" : "serial",
      models::Trainer::resolve_threads(*model, config),
      flags.get_string("backend").c_str());

  Table table({"epoch", "train_loss", "train_mse", "train_kl", "test_mse",
               "seconds"});
  const auto history = trainer.fit(
      train_source, test_matrix.rows() > 0 ? &test_matrix : nullptr, rng,
      [&table](const models::EpochStats& e) {
        std::printf(
            "epoch %3zu  loss %.6f  mse %.6f  kl %.6f  test %.6f  (%.2fs)\n",
            e.epoch, e.train_loss, e.train_mse, e.train_kl, e.test_mse,
            e.seconds);
        std::fflush(stdout);
        table.add_row({std::to_string(e.epoch), Table::fmt(e.train_loss, 6),
                       Table::fmt(e.train_mse, 6), Table::fmt(e.train_kl, 6),
                       Table::fmt(e.test_mse, 6), Table::fmt(e.seconds, 2)});
      });

  if (history.empty()) {
    std::printf("nothing to do (checkpoint already at --epochs?)\n");
    return 0;
  }
  std::printf("final: train_loss %.6f  test_mse %.6f\n",
              history.back().train_loss, history.back().test_mse);
  if (trainer.has_best()) {
    std::printf("best:  epoch %zu  metric %.6f%s\n", trainer.best_epoch(),
                trainer.best_metric(),
                trainer.best_restored() ? " (restored)" : "");
  }
  const std::string csv = flags.get_string("history_csv");
  if (!csv.empty() && table.write_csv(csv)) {
    std::printf("(history csv written to %s)\n", csv.c_str());
  }
  return 0;
}
