// moldb_scan: inspect, filter, dump, and verify molecule shards.
//
// Default mode prints shard statistics (record counts, payload bytes, atom
// histogram, element totals) in a stable machine-greppable "key: value"
// layout — ci/moldb_smoke.sh asserts exact deduplicated counts from it.
//
//   --dump      print "hex_key<TAB>canonical_smiles" per record (in key
//               order), honouring --min_atoms/--max_atoms/--limit
//   --verify    re-parse + re-canonicalize + re-hash every record and fail
//               on any mismatch: proves the store's canonicalization and
//               keys are self-consistent end to end
//
// Atom counts here are lexical (every C/N/O/F/S/c/n/o/s character is
// exactly one atom token in this repository's SMILES grammar), so stats
// over millions of records cost no molecule parsing.
//
// Examples:
//   moldb_scan --input=corpus.moldb
//   moldb_scan --input=corpus.moldb --dump --max_atoms=8 --limit=100
//   moldb_scan --input=corpus.moldb --verify
#include <cstdio>
#include <string>
#include <string_view>

#include "chem/mol_hash.h"
#include "chem/smiles.h"
#include "common/flags.h"
#include "data/shard_store.h"

namespace {

using namespace sqvae;

std::size_t atom_count(std::string_view smiles) {
  std::size_t n = 0;
  for (char c : smiles) {
    switch (c) {
      case 'C':
      case 'N':
      case 'O':
      case 'F':
      case 'S':
      case 'c':
      case 'n':
      case 'o':
      case 's':
        ++n;
        break;
      default:
        break;
    }
  }
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.add_string("input", "", "shard to scan (required)");
  flags.add_bool("dump", false, "print key<TAB>smiles records");
  flags.add_bool("verify", false,
                 "re-canonicalize + re-hash every record; fail on mismatch");
  flags.add_int("limit", 0, "stop --dump after this many records (0 = all)");
  flags.add_int("min_atoms", 0, "filter: at least this many heavy atoms");
  flags.add_int("max_atoms", 0,
                "filter: at most this many heavy atoms (0 = off)");
  try {
    if (!flags.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  const std::string input = flags.get_string("input");
  if (input.empty()) {
    std::fprintf(stderr, "moldb_scan: need --input\n");
    return 2;
  }

  std::string error;
  const auto reader = data::ShardReader::open(input, &error);
  if (!reader) {
    std::fprintf(stderr, "moldb_scan: %s\n", error.c_str());
    return 1;
  }

  const long long min_atoms = flags.get_int("min_atoms");
  const long long max_atoms = flags.get_int("max_atoms");
  const long long limit = flags.get_int("limit");
  const bool dump = flags.get_bool("dump");
  const bool verify = flags.get_bool("verify");

  std::size_t matched = 0;
  std::size_t dumped = 0;
  std::size_t atoms_min = 0, atoms_max = 0, atoms_sum = 0;
  std::size_t element_counts[5] = {0, 0, 0, 0, 0};  // C N O F S
  std::size_t verify_failures = 0;

  for (std::size_t i = 0; i < reader->size(); ++i) {
    const std::string_view smiles = reader->smiles(i);
    const std::size_t atoms = atom_count(smiles);
    if (static_cast<long long>(atoms) < min_atoms) continue;
    if (max_atoms > 0 && static_cast<long long>(atoms) > max_atoms) continue;
    ++matched;
    if (matched == 1 || atoms < atoms_min) atoms_min = atoms;
    if (atoms > atoms_max) atoms_max = atoms;
    atoms_sum += atoms;
    for (char c : smiles) {
      switch (c) {
        case 'C': case 'c': ++element_counts[0]; break;
        case 'N': case 'n': ++element_counts[1]; break;
        case 'O': case 'o': ++element_counts[2]; break;
        case 'F': ++element_counts[3]; break;
        case 'S': case 's': ++element_counts[4]; break;
        default: break;
      }
    }
    if (verify) {
      const auto mol = chem::from_smiles(std::string(smiles));
      const auto canonical = mol ? chem::to_smiles(*mol) : std::nullopt;
      if (!canonical || *canonical != smiles ||
          !(chem::hash_bytes(*canonical) == reader->key(i))) {
        std::fprintf(stderr,
                     "moldb_scan: record %zu fails verification: '%.*s'\n",
                     i, static_cast<int>(smiles.size()), smiles.data());
        ++verify_failures;
      }
    }
    if (dump && (limit <= 0 || dumped < static_cast<std::size_t>(limit))) {
      std::printf("%s\t%.*s\n", chem::hash_hex(reader->key(i)).c_str(),
                  static_cast<int>(smiles.size()), smiles.data());
      ++dumped;
    }
  }

  if (!dump) {
    std::printf("shard: %s\n", input.c_str());
    std::printf("records: %zu\n", reader->size());
    std::printf("matched: %zu\n", matched);
    std::printf("data_bytes: %llu\n",
                static_cast<unsigned long long>(reader->data_bytes()));
    if (matched > 0) {
      std::printf("atoms_min: %zu\natoms_max: %zu\natoms_mean: %.2f\n",
                  atoms_min, atoms_max,
                  static_cast<double>(atoms_sum) /
                      static_cast<double>(matched));
    }
    std::printf("atoms_C: %zu\natoms_N: %zu\natoms_O: %zu\natoms_F: %zu\n"
                "atoms_S: %zu\n",
                element_counts[0], element_counts[1], element_counts[2],
                element_counts[3], element_counts[4]);
  }
  if (verify) {
    std::printf("verify_failures: %zu\n", verify_failures);
    if (verify_failures > 0) return 1;
  }
  return 0;
}
