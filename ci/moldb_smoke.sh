#!/usr/bin/env bash
# Molecule shard-store smoke test (CI step; also runs locally): exercises
# the full data pipeline end to end with exact-count assertions.
#
#   1. moldb_make --gen builds two shards from the same generator seed;
#      the smaller one is a stream prefix of the larger, so every one of
#      its records is a known cross-shard duplicate.
#   2. moldb_merge must therefore emit exactly the larger shard's records
#      and report the smaller shard's full count as duplicates.
#   3. moldb_scan --verify re-parses, re-canonicalizes, and re-hashes every
#      merged record: proves stored SMILES are canonical fixed points and
#      keys match content.
#   4. Three spellings of ethanol (CCO / OCC / C(C)O) must collapse to one
#      record: canonicalization-based dedup, the store's core contract.
#   5. sqvae_train --shards streams the merged shard for one epoch: the
#      training integration stays wired.
#
# Usage: ci/moldb_smoke.sh [BUILD_DIR]
set -eu

BUILD="${1:-build}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# Greps "<key>: <value>" from a tool's stdout (moldb_make / moldb_scan
# stats are machine-readable key: value lines).
stat_of() { grep "^ *$2: " "$1" | awk '{print $2}'; }

echo "== moldb smoke: building shards from one generator stream =="
"$BUILD/moldb_make" --out="$WORK/big.moldb" --gen=qm9 --count=6000 --seed=1 \
  | tee "$WORK/big.log"
"$BUILD/moldb_make" --out="$WORK/small.moldb" --gen=qm9 --count=1500 --seed=1 \
  | tee "$WORK/small.log"
BIG=$(stat_of "$WORK/big.log" written)
SMALL=$(stat_of "$WORK/small.log" written)
test "$BIG" -gt "$SMALL"

echo "== moldb smoke: merge must dedup the prefix shard exactly =="
"$BUILD/moldb_merge" --out="$WORK/merged.moldb" \
  --inputs="$WORK/big.moldb,$WORK/small.moldb" | tee "$WORK/merge.log"
grep -q "cross duplicates: *$SMALL\$" "$WORK/merge.log"
grep -q "written: *$BIG\$" "$WORK/merge.log"

"$BUILD/moldb_scan" --input="$WORK/merged.moldb" | tee "$WORK/scan.log"
test "$(stat_of "$WORK/scan.log" records)" = "$BIG"

echo "== moldb smoke: every merged record re-canonicalizes to itself =="
"$BUILD/moldb_scan" --input="$WORK/merged.moldb" --verify > "$WORK/verify.log"
test "$(stat_of "$WORK/verify.log" verify_failures)" = "0"

echo "== moldb smoke: three spellings of ethanol are one record =="
printf 'CCO\nOCC\nC(C)O\n' > "$WORK/ethanol.smi"
"$BUILD/moldb_make" --out="$WORK/ethanol.moldb" --input="$WORK/ethanol.smi" \
  | tee "$WORK/ethanol.log"
test "$(stat_of "$WORK/ethanol.log" written)" = "1"
test "$(stat_of "$WORK/ethanol.log" duplicates)" = "2"

echo "== moldb smoke: one streamed training epoch from the merged shard =="
"$BUILD/sqvae_train" --shards="$WORK/merged.moldb" --matrix_dim=8 \
  --model=classical-ae --epochs=1 --seed=7

echo "moldb smoke passed: make/merge/scan counts exact, canonicalization dedup works, --shards training runs"
