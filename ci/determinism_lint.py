#!/usr/bin/env python3
"""Repo-specific determinism lint for the sqvae serve/train contract.

Bit-reproducibility is the repo's core guarantee: a response is a pure
function of (model parameters, endpoint, payload, request seed), and a
training run is a pure function of its seeds. This checker bans the
constructs that silently break that contract and that neither the
compiler nor TSan can catch:

  banned-random    rand()/srand(), wall-clock time() as a value source,
                   and default-constructed std::random_device -- all
                   nondeterministic seeds. Use sqvae::Rng with an
                   explicit seed (src/common/rng.h).
  unordered-iter   range-for iteration over a declared std::unordered_map
                   / std::unordered_set. Iteration order is
                   implementation-defined, so any result built from it is
                   not reproducible across libstdc++ versions (or even
                   across runs, with per-process hash seeding elsewhere).
                   Sort the output, iterate a sorted copy, or annotate why
                   order cannot matter.
  naked-mutex      std::mutex / std::condition_variable / std::lock_guard
                   / std::unique_lock / std::scoped_lock outside
                   src/common/mutex.h. All locking in src/ goes through
                   the annotated sq::Mutex wrappers so the clang
                   -Wthread-safety CI lane sees every acquisition.

Escape hatch: a `// lint-allow(<rule>): reason` comment on the flagged
line or the line directly above suppresses that rule for that line. The
reason is not parsed but is required by convention -- an allow without a
why does not survive review.

Usage:
  python3 ci/determinism_lint.py [--root DIR] [paths...]   # default: src/
  python3 ci/determinism_lint.py --self-test

Exit status: 0 clean, 1 findings, 2 usage/self-test failure.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

# src/common/mutex.h is the single sanctioned point of contact with the
# std primitives (the thing naked-mutex exists to protect).
NAKED_MUTEX_EXEMPT = ("src/common/mutex.h",)

ALLOW_RE = re.compile(r"//\s*lint-allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

BANNED_RANDOM_PATTERNS = [
    # rand()/srand() from <cstdlib>: global hidden state, no seed contract.
    (re.compile(r"(?<![\w:.])s?rand\s*\(\s*\)"), "rand()/srand()"),
    # time(nullptr)-style wall-clock reads used as values/seeds.
    (re.compile(r"(?<![\w:.])(?:std::)?time\s*\(\s*(?:nullptr|NULL|0)\s*\)"),
     "time(nullptr)"),
    # Default-constructed random_device: nondeterministic entropy source.
    (re.compile(r"std::random_device\s+\w+\s*[;{(=]"),
     "std::random_device"),
    (re.compile(r"std::random_device\s*[{(]\s*[)}]"),
     "std::random_device"),
]

NAKED_MUTEX_RE = re.compile(
    r"std::(?:mutex|timed_mutex|recursive_mutex|shared_mutex|"
    r"condition_variable(?:_any)?|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock)\b")

UNORDERED_DECL_RE = re.compile(r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<")

# Range-for headers; the capture is the range expression. Single-line
# statements only -- multi-line for headers are rare in this codebase and
# clang-format keeps them that way.
RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;()]*\([^()]*\))?([^;()]*)\)")

IDENT_RE = re.compile(r"[A-Za-z_]\w*")


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving line
    structure so line numbers survive. Good enough for a lint: raw
    strings and trigraphs are not handled (none exist in this repo)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            if j < 0:
                break
            i = j  # keep the newline
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("".join("\n" if ch == "\n" else " "
                               for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out.append("  ")
                    i += 2
                else:
                    out.append("\n" if text[i] == "\n" else " ")
                    i += 1
            out.append(" ")
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def balanced_template_end(text: str, start: int) -> int:
    """Index just past the '>' matching the '<' at text[start]."""
    depth = 0
    for i in range(start, len(text)):
        if text[i] == "<":
            depth += 1
        elif text[i] == ">":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def harvest_unordered_names(stripped: str) -> set[str]:
    """Names of variables/fields declared with an unordered container
    type, across the whole file set (headers declare, sources iterate)."""
    names = set()
    for match in UNORDERED_DECL_RE.finditer(stripped):
        open_angle = stripped.index("<", match.start())
        end = balanced_template_end(stripped, open_angle)
        if end < 0:
            continue
        # After the template args: cv/ref noise, then the declared name.
        tail = stripped[end:end + 160]
        m = re.match(r"[\s&*]*(?:const\s+)?[\s&*]*([A-Za-z_]\w*)\s*"
                     r"(?:[;={(,)]|$)", tail)
        if m:
            names.add(m.group(1))
    return names


def allowed_rules(raw_lines: list[str], lineno: int) -> set[str]:
    """Rules suppressed at 1-based lineno (same line or the line above)."""
    rules: set[str] = set()
    for idx in (lineno - 1, lineno - 2):
        if 0 <= idx < len(raw_lines):
            m = ALLOW_RE.search(raw_lines[idx])
            if m:
                rules.update(r.strip() for r in m.group(1).split(","))
    return rules


def check_file(rel_path: str, text: str, unordered_names: set[str]):
    """Yields (rule, lineno, message) findings for one file."""
    raw_lines = text.splitlines()
    stripped_lines = strip_comments_and_strings(text).splitlines()
    mutex_exempt = rel_path.replace("\\", "/") in NAKED_MUTEX_EXEMPT

    for lineno, line in enumerate(stripped_lines, start=1):
        def allowed(rule: str) -> bool:
            return rule in allowed_rules(raw_lines, lineno)

        for pattern, what in BANNED_RANDOM_PATTERNS:
            if pattern.search(line) and not allowed("banned-random"):
                yield ("banned-random", lineno,
                       f"{what} is nondeterministic; seed a sqvae::Rng "
                       "explicitly (src/common/rng.h)")
                break

        if not mutex_exempt and NAKED_MUTEX_RE.search(line):
            if not allowed("naked-mutex"):
                yield ("naked-mutex", lineno,
                       "use sq::Mutex/sq::MutexLock/sq::CondVar "
                       "(src/common/mutex.h) so -Wthread-safety sees "
                       "this lock")

        for m in RANGE_FOR_RE.finditer(line):
            range_expr = m.group(2) or ""
            if ":" not in range_expr:
                continue
            target = range_expr.rsplit(":", 1)[1]
            idents = IDENT_RE.findall(target)
            if idents and idents[-1] in unordered_names:
                if not allowed("unordered-iter"):
                    yield ("unordered-iter", lineno,
                           f"iteration order over '{idents[-1]}' is "
                           "implementation-defined; sort the result or "
                           "annotate why order cannot matter")


def gather_files(root: pathlib.Path, paths: list[str]) -> list[pathlib.Path]:
    files: list[pathlib.Path] = []
    for p in paths:
        path = root / p
        if path.is_file():
            files.append(path)
        else:
            files.extend(sorted(path.rglob("*.h")))
            files.extend(sorted(path.rglob("*.cpp")))
    return sorted(set(files))


def run_lint(root: pathlib.Path, paths: list[str]) -> int:
    files = gather_files(root, paths)
    if not files:
        print(f"determinism_lint: no files under {paths}", file=sys.stderr)
        return 2

    texts = {f: f.read_text(encoding="utf-8", errors="replace")
             for f in files}
    harvested = {f: harvest_unordered_names(strip_comments_and_strings(t))
                 for f, t in texts.items()}

    findings = 0
    for f in files:
        rel = f.relative_to(root).as_posix()
        # Per-translation-unit name scope: the file itself plus its
        # same-stem header (members declared in foo.h, iterated in
        # foo.cpp). A global scope would collide same-named variables of
        # different types across unrelated files.
        unordered_names = set(harvested[f])
        header = f.with_suffix(".h")
        if header != f:
            if header in harvested:
                unordered_names |= harvested[header]
            elif header.is_file():
                unordered_names |= harvest_unordered_names(
                    strip_comments_and_strings(
                        header.read_text(encoding="utf-8",
                                         errors="replace")))
        for rule, lineno, message in check_file(rel, texts[f],
                                                unordered_names):
            print(f"{rel}:{lineno}: [{rule}] {message}")
            findings += 1
    if findings:
        print(f"determinism_lint: {findings} finding(s). Fix them or add "
              "'// lint-allow(<rule>): reason' where the construct is "
              "provably sound.", file=sys.stderr)
        return 1
    print(f"determinism_lint: {len(files)} file(s) clean")
    return 0


# ---- self-test -----------------------------------------------------------

SELF_TEST_CASES = [
    # (name, source, declared unordered names, expected rules)
    ("rand", "int x = rand();", set(), {"banned-random"}),
    ("srand", "srand();", set(), {"banned-random"}),
    ("time_null", "auto t = time(nullptr);", set(), {"banned-random"}),
    ("std_time_zero", "auto t = std::time(0);", set(), {"banned-random"}),
    ("random_device", "std::random_device rd;", set(), {"banned-random"}),
    ("random_device_tmp", "auto s = std::random_device{}();", set(),
     {"banned-random"}),
    ("rng_ok", "sqvae::Rng rng(42); rng.uniform();", set(), set()),
    ("strand_ok", "int strand(int);", set(), set()),
    ("time_in_comment", "// call time(nullptr) never", set(), set()),
    ("time_in_string", 'const char* s = "time(nullptr)";', set(), set()),
    ("mutex", "std::mutex mu;", set(), {"naked-mutex"}),
    ("cv", "std::condition_variable cv;", set(), {"naked-mutex"}),
    ("lock_guard", "std::lock_guard<std::mutex> l(m);", set(),
     {"naked-mutex"}),
    ("sq_mutex_ok", "sq::Mutex mu; sq::MutexLock lock(mu);", set(), set()),
    ("mutex_allowed",
     "std::mutex mu;  // lint-allow(naked-mutex): wrapper internals",
     set(), set()),
    ("mutex_allowed_above",
     "// lint-allow(naked-mutex): wrapper internals\nstd::mutex mu;",
     set(), set()),
    ("unordered_iter",
     "std::unordered_map<int, int> table;\n"
     "void f() { for (const auto& [k, v] : table) use(k); }",
     None, {"unordered-iter"}),
    ("unordered_iter_member",
     "for (auto& e : entries_) use(e);", {"entries_"},
     {"unordered-iter"}),
    ("unordered_iter_allowed",
     "// lint-allow(unordered-iter): sorted below\n"
     "for (auto& e : entries_) use(e);", {"entries_"}, set()),
    ("ordered_map_ok",
     "std::map<int, int> table;\n"
     "void f() { for (const auto& [k, v] : table) use(k); }",
     None, set()),
    ("vector_ok", "for (auto& v : values) use(v);", {"entries_"}, set()),
    ("init_for_ok", "for (int i = 0; i < n; ++i) use(i);", {"entries_"},
     set()),
]


def self_test() -> int:
    failures = 0
    for name, source, names, expected in SELF_TEST_CASES:
        if names is None:
            names = harvest_unordered_names(
                strip_comments_and_strings(source))
        got = {rule for rule, _, _ in
               check_file("src/test.cpp", source, names)}
        if got != expected:
            print(f"self-test FAIL {name}: expected {sorted(expected)}, "
                  f"got {sorted(got)}", file=sys.stderr)
            failures += 1
    # The exemption path must hold for the wrapper header itself.
    got = {rule for rule, _, _ in
           check_file("src/common/mutex.h", "std::mutex mu_;", set())}
    if got:
        print(f"self-test FAIL mutex_h_exempt: got {sorted(got)}",
              file=sys.stderr)
        failures += 1
    if failures:
        print(f"determinism_lint self-test: {failures} failure(s)",
              file=sys.stderr)
        return 2
    print(f"determinism_lint self-test: {len(SELF_TEST_CASES) + 1} cases ok")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="repo root (default: cwd)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the embedded rule tests and exit")
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories relative to --root "
                        "(default: src)")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    return run_lint(pathlib.Path(args.root).resolve(),
                    args.paths or ["src"])


if __name__ == "__main__":
    sys.exit(main())
