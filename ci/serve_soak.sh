#!/usr/bin/env bash
# Serve soak test (CI gate; also runs locally): boots the epoll event-loop
# server with the response cache on, drives 1k+ concurrent connections of
# Poisson traffic through it with bench_serve_soak (which asserts per-
# connection ordering, zero non-ok responses, zero protocol errors, zero
# shed — and RSTs a handful of connections mid-stream to exercise the
# dead-peer teardown), replays the exact request stream through
# `sqvae_serve --reference`, and diffs the two response streams
# byte-for-byte. Identical bytes = the determinism contract held under
# 1k-way concurrency, micro-batching, caching, and in-flight dedup.
# Finally, SIGTERM must produce a graceful drain and exit 0.
#
# Usage: ci/serve_soak.sh [BUILD_DIR]
# Env:   SOAK_CONNS (default 1024), SOAK_SECONDS (20), SOAK_RATE (400/s).
#        The TSan lane lowers SECONDS/RATE: instrumented compute is ~10x
#        slower and the assertions (no shed, no drops) must stay true.
set -eu

BUILD="${1:-build}"
CONNS="${SOAK_CONNS:-1024}"
SECONDS_ARG="${SOAK_SECONDS:-20}"
RATE="${SOAK_RATE:-400}"
WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

# 1k+ sockets on each side of the loopback.
ulimit -n 16384 2>/dev/null || echo "soak: warning: could not raise ulimit -n"

echo "== serve soak: training 1 epoch (classical-vae, cheap) =="
"$BUILD/sqvae_train" --scenario=digits --model=classical-vae --epochs=1 \
  --samples=64 --latent=6 --checkpoint="$WORK/soak.ckpt" --seed=17

SERVE_FLAGS="--checkpoint=$WORK/soak.ckpt --model=classical-vae \
  --input_dim=64 --latent=6"
PORT=$(( 20000 + RANDOM % 20000 ))

echo "== serve soak: starting event-loop server on :$PORT (cache on) =="
"$BUILD/sqvae_serve" $SERVE_FLAGS --port="$PORT" --cache_mb=32 \
  --max_conns=4096 --threads=2 2> "$WORK/server.err" &
SERVER_PID=$!
for _ in $(seq 1 50); do
  grep -q "listening" "$WORK/server.err" 2>/dev/null && break
  kill -0 "$SERVER_PID" 2>/dev/null || { cat "$WORK/server.err"; exit 1; }
  sleep 0.1
done

echo "== serve soak: $CONNS conns, ${SECONDS_ARG}s, ${RATE} req/s =="
"$BUILD/bench_serve_soak" --port="$PORT" --conns="$CONNS" \
  --seconds="$SECONDS_ARG" --rate="$RATE" --input_dim=64 \
  --requests_out="$WORK/requests.jsonl" \
  --responses_out="$WORK/served.out"

echo "== serve soak: --reference replay + byte diff =="
"$BUILD/sqvae_serve" $SERVE_FLAGS --reference \
  < "$WORK/requests.jsonl" > "$WORK/reference.out"
diff -q "$WORK/served.out" "$WORK/reference.out" || {
  echo "soak: FAIL: served responses differ from the --reference replay"
  diff "$WORK/served.out" "$WORK/reference.out" | head -10
  exit 1
}

echo "== serve soak: SIGTERM graceful drain =="
kill -TERM "$SERVER_PID"
STATUS=0
DRAINED=0
for _ in $(seq 1 100); do
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then DRAINED=1; break; fi
  sleep 0.1
done
if [ "$DRAINED" -ne 1 ]; then
  echo "soak: FAIL: server did not exit within 10s of SIGTERM"
  exit 1
fi
wait "$SERVER_PID" 2>/dev/null || STATUS=$?
SERVER_PID=""
if [ "$STATUS" -ne 0 ]; then
  echo "soak: FAIL: server exited $STATUS after SIGTERM (want 0)"
  cat "$WORK/server.err"
  exit 1
fi
cat "$WORK/server.err" | tail -2

echo "serve soak passed: $(wc -l < "$WORK/served.out") responses" \
     "byte-identical to the reference replay, graceful drain clean"
