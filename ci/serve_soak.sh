#!/usr/bin/env bash
# Serve soak test (CI gate; also runs locally): boots the epoll event-loop
# server with the response cache on, drives 1k+ concurrent connections of
# Poisson traffic through it with bench_serve_soak (which asserts per-
# connection ordering, zero non-ok responses, zero protocol errors, zero
# shed — and RSTs a handful of connections mid-stream to exercise the
# dead-peer teardown), fires a mid-soak SIGHUP checkpoint rollout (same
# checkpoint file, so determinism must hold across the generation bump),
# replays the exact request stream through `sqvae_serve --reference`, and
# diffs the two response streams byte-for-byte. Identical bytes = the
# determinism contract held under 1k-way concurrency, micro-batching,
# caching, in-flight dedup — and, with SOAK_WORKERS > 1, across N
# SO_REUSEPORT shard processes and a zero-downtime rollout.
#
# Every shard's Prometheus endpoint is then scraped over plain HTTP and
# run through ci/check_prometheus.py: the exposition must parse, the
# model generation must be 2 on every shard (proof the rollout fan-out
# reached all of them), and no shard may have shed or miscounted.
# Finally, SIGTERM must produce a coordinated graceful drain and exit 0.
#
# Usage: ci/serve_soak.sh [BUILD_DIR]
# Env:   SOAK_CONNS (default 1024), SOAK_SECONDS (20), SOAK_RATE (400/s),
#        SOAK_WORKERS (1; >1 exercises multi-process sharding).
#        The TSan lane lowers SECONDS/RATE and keeps WORKERS=1:
#        instrumented compute is ~10x slower and TSan does not follow
#        forks; the assertions (no shed, no drops) must stay true.
set -eu

BUILD="${1:-build}"
CONNS="${SOAK_CONNS:-1024}"
SECONDS_ARG="${SOAK_SECONDS:-20}"
RATE="${SOAK_RATE:-400}"
WORKERS="${SOAK_WORKERS:-1}"
WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
  # Multi-process mode: shards are the supervisor's children, not ours,
  # and survive a kill -9 of the supervisor. Their argv carries the
  # workdir's unique checkpoint path — match on it.
  pkill -9 -f "$WORK/soak.ckpt" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

# 1k+ sockets on each side of the loopback.
ulimit -n 16384 2>/dev/null || echo "soak: warning: could not raise ulimit -n"

echo "== serve soak: training 1 epoch (classical-vae, cheap) =="
"$BUILD/sqvae_train" --scenario=digits --model=classical-vae --epochs=1 \
  --samples=64 --latent=6 --checkpoint="$WORK/soak.ckpt" --seed=17

SERVE_FLAGS="--checkpoint=$WORK/soak.ckpt --model=classical-vae \
  --input_dim=64 --latent=6"
PORT=$(( 20000 + RANDOM % 20000 ))
STATS_PORT=$(( 41000 + RANDOM % 20000 ))

echo "== serve soak: starting $WORKERS worker(s) on :$PORT (cache on," \
     "stats on :$STATS_PORT+shard) =="
"$BUILD/sqvae_serve" $SERVE_FLAGS --port="$PORT" --cache_mb=32 \
  --max_conns=4096 --threads=2 --workers="$WORKERS" \
  --stats_port="$STATS_PORT" 2> "$WORK/server.err" &
SERVER_PID=$!
for _ in $(seq 1 100); do
  LISTENING=$(grep -c "listening" "$WORK/server.err" 2>/dev/null || true)
  [ "$LISTENING" -ge "$WORKERS" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { cat "$WORK/server.err"; exit 1; }
  sleep 0.1
done
if [ "$LISTENING" -lt "$WORKERS" ]; then
  echo "soak: FAIL: only $LISTENING of $WORKERS shards came up"
  cat "$WORK/server.err"
  exit 1
fi

echo "== serve soak: $CONNS conns, ${SECONDS_ARG}s, ${RATE} req/s," \
     "SIGHUP rollout at t=${SECONDS_ARG}/2 =="
"$BUILD/bench_serve_soak" --port="$PORT" --conns="$CONNS" \
  --seconds="$SECONDS_ARG" --rate="$RATE" --input_dim=64 \
  --requests_out="$WORK/requests.jsonl" \
  --responses_out="$WORK/served.out" &
BENCH_PID=$!
# Mid-soak zero-downtime rollout: re-publish the same checkpoint under a
# new generation while traffic is in flight. Responses must not change
# (the model content is identical) and none may be lost.
sleep $(( SECONDS_ARG / 2 ))
kill -HUP "$SERVER_PID"
wait "$BENCH_PID" || {
  echo "soak: FAIL: bench_serve_soak failed (see assertions above)"
  exit 1
}
RELOADS=$(grep -c "reloaded checkpoint" "$WORK/server.err" || true)
if [ "$RELOADS" -lt "$WORKERS" ]; then
  echo "soak: FAIL: rollout reached $RELOADS of $WORKERS shards"
  cat "$WORK/server.err"
  exit 1
fi

echo "== serve soak: per-shard Prometheus scrape + format check =="
for i in $(seq 0 $(( WORKERS - 1 ))); do
  SHARD_PORT=$(( STATS_PORT + i ))
  # Plain-HTTP GET over bash's /dev/tcp; strip the response head.
  exec 3<>"/dev/tcp/127.0.0.1/$SHARD_PORT"
  printf 'GET /metrics HTTP/1.0\r\n\r\n' >&3
  sed -e '1,/^\r*$/d' <&3 > "$WORK/shard$i.prom"
  exec 3<&- 3>&-
  grep -q "shard=\"$i\"" "$WORK/shard$i.prom" || {
    echo "soak: FAIL: scrape of :$SHARD_PORT lacks the shard=\"$i\" label"
    exit 1
  }
done
# Format compliance on every shard, plus: generation 2 everywhere (the
# rollout reached every shard) and zero shed/protocol errors anywhere.
python3 "$(dirname "$0")/check_prometheus.py" \
  --require sqvae_model_generation=2 \
  --require sqvae_requests_shed_total=0 \
  --require sqvae_protocol_errors_total=0 \
  "$WORK"/shard*.prom

echo "== serve soak: --reference replay + byte diff =="
"$BUILD/sqvae_serve" $SERVE_FLAGS --reference \
  < "$WORK/requests.jsonl" > "$WORK/reference.out"
diff -q "$WORK/served.out" "$WORK/reference.out" || {
  echo "soak: FAIL: served responses differ from the --reference replay"
  diff "$WORK/served.out" "$WORK/reference.out" | head -10
  exit 1
}

echo "== serve soak: SIGTERM graceful drain =="
kill -TERM "$SERVER_PID"
STATUS=0
DRAINED=0
for _ in $(seq 1 100); do
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then DRAINED=1; break; fi
  sleep 0.1
done
if [ "$DRAINED" -ne 1 ]; then
  echo "soak: FAIL: server did not exit within 10s of SIGTERM"
  exit 1
fi
wait "$SERVER_PID" 2>/dev/null || STATUS=$?
SERVER_PID=""
if [ "$STATUS" -ne 0 ]; then
  echo "soak: FAIL: server exited $STATUS after SIGTERM (want 0)"
  cat "$WORK/server.err"
  exit 1
fi
cat "$WORK/server.err" | tail -2

echo "serve soak passed: $(wc -l < "$WORK/served.out") responses from" \
     "$WORKERS worker(s) byte-identical to the reference replay across a" \
     "mid-soak rollout, graceful drain clean"
