#!/usr/bin/env bash
# Serve smoke test (CI step; also runs locally): trains one epoch on the
# digits scenario, checkpoints, pipes requests through the real
# micro-batched sqvae_serve server, and diffs the output byte-for-byte
# against --reference mode — which answers the same requests through
# in-process Autoencoder calls (serve::execute_single) with no queue, no
# workers, no batching. Identical bytes = the serving stack reproduced the
# model's own output exactly, which is the subsystem's determinism
# contract end to end (train -> checkpoint -> load_params_only -> serve).
#
# Usage: ci/serve_smoke.sh [BUILD_DIR]
set -eu

BUILD="${1:-build}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "== serve smoke: training 1 epoch on digits =="
"$BUILD/sqvae_train" --scenario=digits --model=sq-ae --epochs=1 \
  --samples=96 --layers=2 --patches=2 --checkpoint="$WORK/smoke.ckpt" \
  --seed=11

echo "== serve smoke: building requests =="
python3 - "$WORK/requests.jsonl" <<'EOF'
import math
import sys

x = [round(0.5 + 0.45 * math.sin(0.31 * i), 6) for i in range(64)]
z = [round(0.2 * math.cos(0.7 * i), 6) for i in range(10)]  # LSD(64, 2) = 10
lines = [
    '{"op": "encode", "id": 1, "seed": 101, "x": %s}' % x,
    '{"op": "reconstruct", "id": 2, "seed": 102, "x": %s}' % x,
    '{"op": "decode", "id": 3, "seed": 103, "x": %s}' % z,
]
with open(sys.argv[1], "w") as f:
    f.write("\n".join(lines) + "\n")
EOF

SERVE_FLAGS="--checkpoint=$WORK/smoke.ckpt --model=sq-ae --input_dim=64 \
  --layers=2 --patches=2"

echo "== serve smoke: micro-batched server =="
"$BUILD/sqvae_serve" $SERVE_FLAGS --max_batch=8 --threads=2 \
  < "$WORK/requests.jsonl" > "$WORK/served.out"
cat "$WORK/served.out"

echo "== serve smoke: in-process reference =="
"$BUILD/sqvae_serve" $SERVE_FLAGS --reference \
  < "$WORK/requests.jsonl" > "$WORK/reference.out"

diff -u "$WORK/served.out" "$WORK/reference.out"
echo "serve smoke passed: served output is byte-identical to the in-process reference"
