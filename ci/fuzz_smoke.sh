#!/usr/bin/env bash
# CI fuzz smoke: builds the libFuzzer harnesses (clang, ASan+UBSan) and
# runs each for a bounded wall-clock budget from its checked-in seed
# corpus. This is a crash gate, not a coverage campaign — 30 seconds per
# target catches regressions in the parser / shard validator trust
# boundaries on every push; longer campaigns run out-of-band.
#
# Usage: ci/fuzz_smoke.sh [BUILD_DIR] [SECONDS_PER_TARGET]
set -euo pipefail

BUILD_DIR="${1:-build-fuzz}"
BUDGET="${2:-30}"
cd "$(dirname "$0")/.."

CC="${CC:-clang}"
CXX="${CXX:-clang++}"
if ! command -v "${CXX}" >/dev/null; then
  echo "error: ${CXX} not found (libFuzzer needs clang)" >&2
  exit 2
fi

cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_C_COMPILER="${CC}" -DCMAKE_CXX_COMPILER="${CXX}" \
  -DSQVAE_BUILD_FUZZERS=ON -DSQVAE_SANITIZE=address \
  -DSQVAE_BUILD_TESTS=OFF -DSQVAE_BUILD_BENCH=OFF \
  -DSQVAE_BUILD_EXAMPLES=OFF
cmake --build "${BUILD_DIR}" -j "$(nproc)" \
  --target fuzz_protocol fuzz_shard_header

FAILED=0
for target in fuzz_protocol fuzz_shard_header; do
  corpus="tests/fuzz/corpus/${target#fuzz_}"
  echo "=== ${target}: ${BUDGET}s from ${corpus} ==="
  # The corpus directory is read-only input here (no -merge): CI must not
  # dirty the checked-in seeds. New inputs go to a scratch dir.
  scratch="$(mktemp -d)"
  if ! "./${BUILD_DIR}/${target}" -max_total_time="${BUDGET}" \
       -print_final_stats=1 "${scratch}" "${corpus}"; then
    echo "FUZZ FAILURE: ${target} (artifacts in ${scratch})" >&2
    FAILED=1
  fi
  rm -rf "${scratch}"
done
exit "${FAILED}"
