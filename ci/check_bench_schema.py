#!/usr/bin/env python3
"""Validates BENCH_*.json reports against ci/bench_schema.json.

Usage: check_bench_schema.py REPORT.json [REPORT.json ...]

Each report is matched to its schema entry by basename. Runs before the
regression gate (ci/bench_gate.py) so a malformed or truncated report fails
with a precise path like

    BENCH_qsim_micro.json: kernel_ab.rows[3].speedup: expected num, got str

instead of a stack trace inside the gate. Dependency-free by design: the
schema language is four leaf types plus list/obj nesting, interpreted here.
"""

import json
import os
import sys

SCHEMA_PATH = os.path.join(os.path.dirname(__file__), "bench_schema.json")

LEAF_CHECKS = {
    "str": lambda v: isinstance(v, str),
    "int": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "num": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "bool": lambda v: isinstance(v, bool),
}


def type_name(value):
    return type(value).__name__


def check_node(value, spec, path, errors):
    if isinstance(spec, str):
        if not LEAF_CHECKS[spec](value):
            errors.append(f"{path}: expected {spec}, got "
                          f"{type_name(value)} ({value!r})")
        return
    kind = spec["type"]
    if kind == "list":
        if not isinstance(value, list):
            errors.append(f"{path}: expected array, got {type_name(value)}")
            return
        if not value:
            errors.append(f"{path}: array must not be empty")
            return
        for i, row in enumerate(value):
            row_path = f"{path}[{i}]"
            if not isinstance(row, dict):
                errors.append(f"{row_path}: expected object, got "
                              f"{type_name(row)}")
                continue
            check_required(row, spec["row"], row_path, errors)
    elif kind == "obj":
        if not isinstance(value, dict):
            errors.append(f"{path}: expected object, got {type_name(value)}")
            return
        check_required(value, spec["required"], path, errors)
    else:
        raise ValueError(f"unknown schema node type {kind!r} at {path}")


def check_required(obj, required, path, errors):
    for key, spec in required.items():
        key_path = f"{path}.{key}" if path else key
        if key not in obj:
            errors.append(f"{key_path}: missing required key")
            continue
        check_node(obj[key], spec, key_path, errors)


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(SCHEMA_PATH) as f:
        schema = json.load(f)

    failures = 0
    for report_path in argv[1:]:
        name = os.path.basename(report_path)
        if name not in schema:
            print(f"{name}: no schema entry in {SCHEMA_PATH}")
            failures += 1
            continue
        try:
            with open(report_path) as f:
                report = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"{name}: unreadable or invalid JSON: {e}")
            failures += 1
            continue
        errors = []
        check_required(report, schema[name]["required"], "", errors)
        for err in errors:
            print(f"{name}: {err}")
        if errors:
            failures += 1
        else:
            print(f"{name}: schema OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
