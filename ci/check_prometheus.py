#!/usr/bin/env python3
"""Validates a Prometheus text-exposition (0.0.4) body from a live scrape.

Usage: check_prometheus.py FILE [FILE...]
       check_prometheus.py --require METRIC=VALUE FILE

Checks the rules a scraper depends on: line grammar, metric/label name
charsets, HELP/TYPE present before a family's first sample, histogram le
buckets strictly increasing with non-decreasing cumulative counts ending
at le="+Inf" == _count. `--require` additionally asserts that a metric
(first sample of that family in the file) has an exact value — the soak
gate uses it to prove a rollout reached every shard
(sqvae_model_generation=2). Exits non-zero with a message on the first
violation. Stdlib only; no installs.
"""

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (\S+)$")
LABEL_PAIR_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\["\\n])*)"(?:,|$)')


def family_of(name):
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def parse_value(text):
    if text in ("+Inf", "Inf"):
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)


def validate(body, path):
    helped, types = set(), {}
    # (family, labels-minus-le) -> [last_le, last_count, saw_inf,
    #                               inf_value, count_value]
    histograms = {}
    values = {}
    for lineno, line in enumerate(body.splitlines(), 1):
        where = "%s:%d" % (path, lineno)
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                name = parts[2]
                if not NAME_RE.match(name):
                    return "%s: bad name on %s line" % (where, parts[1])
                if parts[1] == "HELP":
                    if name in helped:
                        return "%s: duplicate HELP for %s" % (where, name)
                    helped.add(name)
                else:
                    kind = parts[3] if len(parts) > 3 else ""
                    if kind not in ("counter", "gauge", "histogram",
                                    "summary", "untyped"):
                        return "%s: unknown TYPE %r" % (where, kind)
                    if name in types:
                        return "%s: duplicate TYPE for %s" % (where, name)
                    types[name] = kind
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            return "%s: unparsable sample: %r" % (where, line)
        name, _, labels_text, value_text = m.groups()
        labels = {}
        if labels_text:
            consumed = sum(
                len(p.group(0)) for p in LABEL_PAIR_RE.finditer(labels_text))
            if consumed != len(labels_text):
                return "%s: malformed label set: %r" % (where, labels_text)
            labels = {p.group(1): p.group(2)
                      for p in LABEL_PAIR_RE.finditer(labels_text)}
        try:
            value = parse_value(value_text)
        except ValueError:
            return "%s: unparsable value: %r" % (where, value_text)
        family = family_of(name)
        if family not in types:
            return "%s: sample before TYPE: %s" % (where, name)
        if family not in helped:
            return "%s: sampled family without HELP: %s" % (where, family)
        values.setdefault(name, value)
        if types[family] == "histogram":
            group = (family,
                     tuple(sorted((k, v) for k, v in labels.items()
                                  if k != "le")))
            state = histograms.setdefault(
                group, [None, None, False, None, None])
            if name == family + "_bucket":
                le = labels.get("le")
                if le is None:
                    return "%s: bucket without le" % where
                if state[2]:
                    return "%s: bucket after +Inf in %s" % (where, family)
                if le == "+Inf":
                    state[2], state[3] = True, value
                else:
                    bound = parse_value(le)
                    if state[0] is not None and bound <= state[0]:
                        return "%s: le bounds not increasing" % where
                    if state[1] is not None and value < state[1]:
                        return "%s: bucket counts not monotonic" % where
                    state[0], state[1] = bound, value
            elif name == family + "_count":
                state[4] = value
    for (family, _), state in histograms.items():
        if not state[2]:
            return "%s: histogram %s lacks a +Inf bucket" % (path, family)
        if state[4] is None:
            return "%s: histogram %s lacks _count" % (path, family)
        if state[1] is not None and state[3] < state[1]:
            return "%s: histogram %s +Inf below last bucket" % (path, family)
        if state[3] != state[4]:
            return "%s: histogram %s _count != +Inf bucket" % (path, family)
    return values


def main(argv):
    requires = []
    paths = []
    i = 1
    while i < len(argv):
        if argv[i] == "--require":
            metric, _, want = argv[i + 1].partition("=")
            requires.append((metric, float(want)))
            i += 2
        else:
            paths.append(argv[i])
            i += 1
    if not paths:
        sys.exit(__doc__)
    for path in paths:
        with open(path, "r", encoding="utf-8") as f:
            body = f.read()
        result = validate(body, path)
        if isinstance(result, str):
            sys.exit("check_prometheus: FAIL: " + result)
        for metric, want in requires:
            got = result.get(metric)
            if got is None:
                sys.exit("check_prometheus: FAIL: %s: %s not found"
                         % (path, metric))
            if got != want:
                sys.exit("check_prometheus: FAIL: %s: %s = %g (want %g)"
                         % (path, metric, got, want))
        print("check_prometheus: %s: ok (%d series)" % (path, len(result)))


if __name__ == "__main__":
    main(sys.argv)
