#!/usr/bin/env python3
"""Bench regression gate (run AFTER ci/check_bench_schema.py).

Usage: bench_gate.py BENCH_qsim_micro.json BENCH_train_micro.json \\
                     BENCH_serve_micro.json

Thresholds sit well under the checked-in numbers so only a real regression
— not runner noise — trips them. Where a measurement is hardware-bound the
bar tiers by the runner's core count (recorded as hardware_threads in the
report), mirroring the exemption the training gate has always had for
small containers:

  * executor A/B (fused batch vs naive loop): both sides now run the same
    dispatched SIMD kernels, so on a single core only the fusion win
    remains (~1.5-2x measured); with >= 4 cores the OpenMP batch path
    clears 2.0x with margin. Bars: >= 2.0x at >= 4 threads, else >= 1.3x.
  * trajectory A/B at >= 8 qubits: >= 5.0x over the exact density matrix
    (checked-in: several hundred x — the trajectory side is vectorised,
    the density channel is not).
  * kernel A/B: when the dispatcher picked avx2, the compute-bound classes
    (single, single_t0, controlled, diag) must be >= 1.5x over scalar at
    >= 8 qubits (checked-in: 2.5-10x). The move/phase-flip classes
    (cnot/cz/swap) are memory-bound and only recorded. Scalar-only
    runners (no AVX2, SQVAE_FORCE_SCALAR, -DSQVAE_SIMD=OFF) record the
    A/B at ~1.0x and are exempt.
  * dispatcher sanity: a SIMD-enabled binary on a host whose
    /proc/cpuinfo advertises avx2+fma must NOT report scalar — that would
    mean the runtime dispatch silently fell back and CI stopped testing
    the vectorised path.
  * scaling (amplitude-parallel vs serial on one large state):
    bit_identical must hold in EVERY row on ANY hardware — the parallel
    kernels and the blocked executor promise bitwise determinism, so a
    single differing bit is a correctness bug, not a perf miss. The
    speedup bar (>= 2.0x at >= 16 qubits) applies only on >= 4-core
    runners with an OpenMP build; 1-core containers record ~1.0x and are
    exempt, as is a build without OpenMP (the parallel table degrades to
    the serial chunk loop there).
  * training engine: bit-identical across thread counts everywhere;
    sq-ae sharded speedup >= 2.0x at >= 8 cores, >= 1.5x at 4-7, exempt
    below.
  * serving dispatch A/B (rows with >= 4 clients): micro-batched
    throughput >= 2.0x over single-worker per-request dispatch on >= 4-core
    runners — there batching buys both coalescing amortisation and
    parallel workers / parallel statevectors inside run_batch. Below 4
    cores only the coalescing amortisation remains (~1.2-1.4x checked in
    from a 1-core container), so the bar tiers down to >= 1.05x — batching
    must at minimum not regress throughput there. The
    1-client row is recorded but never gated: a synchronous single client
    cannot coalesce, so ~1.0x is its expected value.
  * event-loop front-end A/B (epoll vs thread-per-connection over real
    loopback TCP): >= 1.1x at >= 256 connections on >= 4-core runners;
    recorded-only below (see gate_serve).
  * response cache A/B: cached >= 2.0x over uncached on any hardware, and
    the hit rate of the repeated-key workload must stay >= 0.5 — a
    collapsed hit rate means response keying broke even if throughput
    survived.
"""

import json
import sys

KERNEL_GATED_CLASSES = {"single", "single_t0", "controlled", "diag"}
KERNEL_MIN_SPEEDUP = 1.5
KERNEL_MIN_QUBITS = 8


def host_has_avx2_fma():
    try:
        with open("/proc/cpuinfo") as f:
            info = f.read()
    except OSError:
        return False  # non-Linux host: skip the dispatcher sanity check
    flag_lines = [l for l in info.splitlines() if l.startswith("flags")]
    if not flag_lines:
        return False
    flags = flag_lines[0].split()
    return "avx2" in flags and "fma" in flags


def gate_qsim(report, failures):
    threads = report["hardware_threads"]
    executor_bar = 2.0 if threads >= 4 else 1.3
    for row in report["rows"]:
        if row["speedup"] < executor_bar:
            failures.append(
                f"executor A/B at {row['qubits']} qubits: "
                f"{row['speedup']:.2f}x < {executor_bar}x "
                f"({threads} hardware threads)")
    for row in report["trajectory_ab"]["rows"]:
        if row["qubits"] >= 8 and row["speedup"] < 5.0:
            failures.append(f"trajectory A/B at {row['qubits']} qubits: "
                            f"{row['speedup']:.2f}x < 5.0x")

    kernel = report["kernel_ab"]
    if kernel["simd_compiled"] and kernel["isa"] != "avx2" \
            and host_has_avx2_fma():
        failures.append(
            "kernel dispatcher reports scalar on an AVX2+FMA host with "
            "SIMD compiled in — the vectorised path is not being tested")
    if kernel["isa"] == "avx2":
        for row in kernel["rows"]:
            if row["gate"] in KERNEL_GATED_CLASSES \
                    and row["qubits"] >= KERNEL_MIN_QUBITS \
                    and row["speedup"] < KERNEL_MIN_SPEEDUP:
                failures.append(
                    f"kernel A/B ({row['gate']}) at {row['qubits']} qubits: "
                    f"{row['speedup']:.2f}x < {KERNEL_MIN_SPEEDUP}x")
    else:
        print(f"kernel gate skipped (dispatched isa: {kernel['isa']})")

    scaling = report["scaling"]
    for row in scaling["rows"]:
        if not row["bit_identical"]:
            failures.append(
                f"scaling at {row['qubits']} qubits: amplitude-parallel "
                f"result is not bit-identical to serial")
    if scaling["openmp"] and threads >= 4:
        for row in scaling["rows"]:
            if row["qubits"] >= 16 and row["speedup"] < 2.0:
                failures.append(
                    f"scaling A/B at {row['qubits']} qubits: "
                    f"{row['speedup']:.2f}x < 2.0x "
                    f"({threads} hardware threads)")
    else:
        print(f"scaling speedup gate skipped (openmp={scaling['openmp']}, "
              f"{threads} hardware threads); bit-identity still enforced")


def gate_train(report, failures):
    for row in report["rows"]:
        if not row["bit_identical_1t_vs_nt"]:
            failures.append(f"sharded training not bit-identical across "
                            f"thread counts ({row['model']})")
    cores = report["hardware_threads"]
    bar = 2.0 if cores >= 8 else 1.5 if cores >= 4 else None
    if bar is not None:
        for row in report["rows"]:
            if row["model"] == "sq-ae" and row["speedup"] < bar:
                failures.append(f"train A/B (sq-ae): "
                                f"{row['speedup']:.2f}x < {bar}x at "
                                f"{row['threads']} threads ({cores} cores)")


def gate_serve(report, failures):
    cores = report["hardware_threads"]
    bar = 2.0 if cores >= 4 else 1.05
    for row in report["rows"]:
        if row["clients"] >= 4 and row["speedup"] < bar:
            failures.append(
                f"serve dispatch A/B at {row['clients']} clients: "
                f"{row['speedup']:.2f}x < {bar}x ({cores} hardware threads, "
                f"max_batch {row['max_batch']})")

    # Event-loop front end vs thread-per-connection: the epoll win is
    # connection-scaling (no thread pair per socket), so the bar applies
    # at >= 256 connections and only on >= 4-core runners — on one core
    # both transports serialize onto the same compute and the contrast is
    # scheduler noise (though a 1-core container still measured 1.5-2.9x,
    # growing with connection count). Linux-only section: absent = skipped
    # host, nothing to gate.
    if cores >= 4:
        for row in report.get("event_loop_ab", {}).get("rows", []):
            if row["conns"] >= 256 and row["speedup"] < 1.1:
                failures.append(
                    f"event-loop A/B at {row['conns']} conns: "
                    f"{row['speedup']:.2f}x < 1.1x over thread-per-conn "
                    f"({cores} hardware threads)")

    # Response cache: a hit skips the entire circuit execution, so the
    # >= 2.0x bar is hardware-independent (checked in from a 1-core
    # container: ~9x at 0.99 hit rate). A collapsed hit rate fails even
    # if throughput squeaks by — it means the keying broke.
    for row in report["cache_ab"]["rows"]:
        if row["speedup"] < 2.0:
            failures.append(
                f"cache A/B: {row['speedup']:.2f}x < 2.0x "
                f"(hit rate {row['hit_rate']:.3f}, {row['unique_keys']} "
                f"unique keys over {row['requests']} requests)")
        if row["hit_rate"] < 0.5:
            failures.append(
                f"cache A/B: hit rate {row['hit_rate']:.3f} < 0.5 — "
                f"response keying or lookup is broken")


def main(argv):
    if len(argv) != 4:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[1]) as f:
        qsim = json.load(f)
    with open(argv[2]) as f:
        train = json.load(f)
    with open(argv[3]) as f:
        serve = json.load(f)

    failures = []
    gate_qsim(qsim, failures)
    gate_train(train, failures)
    gate_serve(serve, failures)

    for failure in failures:
        print("REGRESSION:", failure)
    if failures:
        return 1
    print("bench gate passed:",
          "executor", [round(r["speedup"], 2) for r in qsim["rows"]],
          "trajectory",
          [round(r["speedup"], 2) for r in qsim["trajectory_ab"]["rows"]],
          "kernel(" + qsim["kernel_ab"]["isa"] + ")",
          [round(r["speedup"], 2) for r in qsim["kernel_ab"]["rows"]
           if r["gate"] in KERNEL_GATED_CLASSES
           and r["qubits"] >= KERNEL_MIN_QUBITS],
          "scaling",
          [round(r["speedup"], 2) for r in qsim["scaling"]["rows"]],
          "train", [round(r["speedup"], 2) for r in train["rows"]],
          "serve", [round(r["speedup"], 2) for r in serve["rows"]
                    if r["clients"] >= 4],
          "event_loop",
          [round(r["speedup"], 2)
           for r in serve.get("event_loop_ab", {}).get("rows", [])],
          "cache",
          [round(r["speedup"], 2) for r in serve["cache_ab"]["rows"]])
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
