#!/usr/bin/env bash
# Runs clang-tidy (profile: .clang-tidy at the repo root) over every
# first-party translation unit in a compile_commands.json build tree.
#
# Usage: ci/run_clang_tidy.sh [BUILD_DIR] [JOBS]
#   BUILD_DIR  cmake build directory configured with
#              -DCMAKE_EXPORT_COMPILE_COMMANDS=ON (default: build)
#   JOBS       parallel clang-tidy processes (default: nproc)
#
# Scope: src/, cli/, bench/ sources from the compilation database (tests
# and third-party code excluded; headers are covered transitively via
# HeaderFilterRegex). Exit 1 if any file produces a diagnostic --
# WarningsAsErrors in .clang-tidy decides which findings are fatal.
set -euo pipefail

BUILD_DIR="${1:-build}"
JOBS="${2:-$(nproc)}"
cd "$(dirname "$0")/.."

if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  echo "error: ${BUILD_DIR}/compile_commands.json not found." >&2
  echo "Configure with: cmake -B ${BUILD_DIR} -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 2
fi

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "${TIDY}" >/dev/null; then
  echo "error: ${TIDY} not found (set CLANG_TIDY=/path/to/clang-tidy)" >&2
  exit 2
fi
"${TIDY}" --version

# First-party sources present in the compilation database.
mapfile -t FILES < <(
  python3 - "${BUILD_DIR}/compile_commands.json" <<'EOF'
import json, pathlib, sys
root = pathlib.Path.cwd()
seen = set()
for entry in json.load(open(sys.argv[1])):
    path = pathlib.Path(entry["file"])
    if not path.is_absolute():
        path = pathlib.Path(entry["directory"]) / path
    path = path.resolve()
    try:
        rel = path.relative_to(root)
    except ValueError:
        continue
    if rel.parts and rel.parts[0] in ("src", "cli", "bench"):
        seen.add(str(rel))
print("\n".join(sorted(seen)))
EOF
)

if [[ "${#FILES[@]}" -eq 0 ]]; then
  echo "error: no first-party sources in the compilation database" >&2
  exit 2
fi
echo "clang-tidy over ${#FILES[@]} translation units (${JOBS} jobs)"

# xargs fan-out; --quiet keeps the output to actual diagnostics. A
# non-zero exit from any unit fails the whole run.
printf '%s\n' "${FILES[@]}" |
  xargs -P "${JOBS}" -n 4 "${TIDY}" -p "${BUILD_DIR}" --quiet

echo "clang-tidy: clean"
