// High-dimensional image reconstruction with patched quantum circuits —
// the Fig. 8(b-c) scenario at example scale: a 4-patch SQ-AE against a
// classical AE on 32x32 grayscale images, with ASCII before/after views.
//
//   $ ./image_reconstruction
#include <cstdio>

#include "common/rng.h"
#include "data/cifar_gray.h"
#include "data/digits.h"
#include "models/classical.h"
#include "models/scalable_quantum.h"
#include "models/trainer.h"

using namespace sqvae;

int main() {
  Rng rng(7);
  const data::CifarGrayDataset images = data::make_cifar_gray(160, rng);
  Rng split_rng = rng.split();
  const data::TrainTestSplit split =
      data::train_test_split(images.features, 0.15, split_rng);

  // SQ-AE: 4 patches x 8 qubits => LSD 32.
  models::ScalableQuantumConfig config;
  config.input_dim = 1024;
  config.patches = 4;
  config.entangling_layers = 5;
  auto sq_ae = models::make_sq_ae(config, rng);

  Rng c_rng = rng.split();
  models::ClassicalAe cae(models::classical_config_1024(32), c_rng);

  std::printf("SQ-AE: LSD %zu, %zu quantum + %zu classical parameters\n",
              sq_ae->latent_dim(), sq_ae->num_quantum_parameters(),
              sq_ae->num_classical_parameters());
  std::printf("classical AE: %zu parameters\n\n",
              cae.num_classical_parameters());

  models::TrainConfig qtrain;
  qtrain.epochs = 6;
  qtrain.batch_size = 32;
  qtrain.quantum_lr = 0.03;
  qtrain.classical_lr = 0.01;
  std::printf("training SQ-AE...\n");
  models::Trainer(*sq_ae, qtrain)
      .fit(split.train.samples, nullptr, rng, [](const models::EpochStats& e) {
        std::printf("  epoch %zu: MSE %.4f (%.1fs)\n", e.epoch + 1,
                    e.train_mse, e.seconds);
      });

  models::TrainConfig ctrain = qtrain;
  ctrain.classical_lr = 0.001;
  std::printf("training classical AE...\n");
  models::Trainer(cae, ctrain)
      .fit(split.train.samples, nullptr, c_rng,
           [](const models::EpochStats& e) {
             std::printf("  epoch %zu: MSE %.4f\n", e.epoch + 1, e.train_mse);
           });

  Matrix test(2, 1024);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t c = 0; c < 1024; ++c) {
      test(i, c) = split.test.samples(i, c);
    }
  }
  const Matrix sq_recon = sq_ae->reconstruct(test, rng);
  const Matrix cae_recon = cae.reconstruct(test, c_rng);

  for (std::size_t i = 0; i < 2; ++i) {
    std::printf("\n== test image %zu: input | classical AE | SQ-AE ==\n", i);
    const std::string in_art = data::ascii_image(test.row(i), 32, 1.0);
    const std::string c_art = data::ascii_image(cae_recon.row(i), 32, 1.0);
    const std::string q_art = data::ascii_image(sq_recon.row(i), 32, 1.0);
    for (int line = 0; line < 32; ++line) {
      std::printf("%.*s  %.*s  %.*s\n", 32, in_art.c_str() + line * 33, 32,
                  c_art.c_str() + line * 33, 32, q_art.c_str() + line * 33);
    }
    std::printf("MSE: classical %.4f, SQ-AE %.4f\n",
                sqvae::mse(test.row(i), cae_recon.row(i)),
                sqvae::mse(test.row(i), sq_recon.row(i)));
  }
  return 0;
}
