// Lead optimization: take a known ligand ("the lead"), encode it, and
// search the SQ-VAE latent space around it for molecules with higher QED —
// the optimisation loop that makes autoencoder-based drug discovery more
// than random sampling. Also demonstrates checkpoint save/load.
//
//   $ ./lead_optimization
#include <cstdio>

#include "autodiff/tape.h"
#include "chem/qed.h"
#include "chem/scaffold.h"
#include "chem/smiles.h"
#include "common/rng.h"
#include "data/molecule_dataset.h"
#include "models/checkpoint.h"
#include "models/generation.h"
#include "models/latent_optimize.h"
#include "models/scalable_quantum.h"
#include "models/trainer.h"

using namespace sqvae;
using namespace sqvae::models;

int main() {
  Rng rng(77);
  constexpr std::size_t kDim = 16;

  // Ligand dataset + SQ-VAE, as in examples/drug_discovery.
  data::MoleculeGenConfig gen = data::pdbbind_config(static_cast<int>(kDim));
  gen.min_atoms = 8;
  data::MoleculeDataset ligands;
  ligands.matrix_dim = kDim;
  ligands.molecules = data::generate_molecules(gen, 200, rng);
  const data::Dataset features = ligands.features();

  ScalableQuantumConfig config;
  config.input_dim = kDim * kDim;
  config.patches = 2;
  config.entangling_layers = 4;
  auto model = make_sq_vae(config, rng);

  TrainConfig train;
  train.epochs = 12;
  train.batch_size = 32;
  train.quantum_lr = 0.03;
  train.classical_lr = 0.02;
  std::printf("training SQ-VAE (LSD %zu)...\n", model->latent_dim());
  Trainer(*model, train)
      .fit(features.samples, nullptr, rng, [](const EpochStats& e) {
        if ((e.epoch + 1) % 4 == 0) {
          std::printf("  epoch %2zu: MSE %.4f\n", e.epoch + 1, e.train_mse);
        }
      });

  // Persist the trained model (and prove the restore path works).
  const std::string ckpt = "/tmp/sqvae_lead_opt.ckpt";
  if (save_checkpoint(*model, ckpt)) {
    std::printf("checkpoint written to %s\n", ckpt.c_str());
  }
  auto restored = make_sq_vae(config, rng);
  if (load_checkpoint(ckpt, *restored)) {
    std::printf("checkpoint restored into a fresh model\n");
  }

  // Pick the dataset ligand with the highest QED as the lead.
  std::size_t lead_index = 0;
  double lead_qed = -1.0;
  for (std::size_t i = 0; i < ligands.molecules.size(); ++i) {
    const double q = chem::qed(ligands.molecules[i]);
    if (q > lead_qed) {
      lead_qed = q;
      lead_index = i;
    }
  }
  const auto lead_smiles = chem::to_smiles(ligands.molecules[lead_index]);
  std::printf("\nlead: %s (QED %.3f)\n",
              lead_smiles ? lead_smiles->c_str() : "?", lead_qed);

  // Encode the lead and run the evolution-strategy search around it.
  Matrix lead_features(1, kDim * kDim);
  for (std::size_t c = 0; c < lead_features.cols(); ++c) {
    lead_features(0, c) = features.samples(lead_index, c);
  }
  ad::Tape tape;
  const Matrix z0 = tape.value(
      restored->encode_mean(tape, tape.constant(lead_features)));

  LatentOptimizeConfig opt;
  opt.population = 48;
  opt.elites = 12;
  opt.generations = 15;
  opt.initial_sigma = 0.4;
  opt.initial_mu = z0.row(0);
  const LatentOptimizeResult result =
      optimize_latent(*restored, qed_objective(kDim), opt, rng);

  std::printf("\noptimization trace (best QED per generation):\n  ");
  for (double v : result.history) std::printf("%.3f ", v);
  std::printf("\n");

  const chem::Molecule best = decode_sample(result.best_features, kDim);
  const auto best_smiles = chem::to_smiles(best);
  std::printf("\nbest molecule: %s\n", best_smiles ? best_smiles->c_str() : "?");
  std::printf("  QED %.3f (lead was %.3f)\n", result.best_score, lead_qed);
  std::printf("  formula %s, %d heavy atoms\n",
              chem::molecular_formula(best).c_str(), best.num_atoms());
  if (auto scaffold = chem::scaffold_smiles(best)) {
    std::printf("  Murcko scaffold: %s\n", scaffold->c_str());
  }
  const chem::LipinskiReport lip = chem::lipinski(best);
  std::printf("  Lipinski: MW %.1f, logP %.2f, HBD %d, HBA %d -> %s\n",
              lip.molecular_weight, lip.logp, lip.hbd, lip.hba,
              lip.passes ? "pass" : "fail");
  std::remove(ckpt.c_str());
  return 0;
}
