// Latent-space exploration with a trained SQ-VAE: encode two molecules,
// interpolate between their latent codes, and decode each step back to a
// molecule — the instance-level matching capability (encoder + generator)
// that the paper argues VAEs contribute to ligand/receptor workflows.
//
//   $ ./latent_space_explorer
#include <cstdio>

#include "autodiff/tape.h"
#include "chem/smiles.h"
#include "common/rng.h"
#include "data/molecule_dataset.h"
#include "models/generation.h"
#include "models/scalable_quantum.h"
#include "models/trainer.h"

using namespace sqvae;

int main() {
  Rng rng(11);
  constexpr std::size_t kDim = 16;

  data::MoleculeGenConfig gen = data::pdbbind_config(static_cast<int>(kDim));
  gen.min_atoms = 8;
  data::MoleculeDataset ligands;
  ligands.matrix_dim = kDim;
  ligands.molecules = data::generate_molecules(gen, 160, rng);
  const data::Dataset features = ligands.features();

  models::ScalableQuantumConfig config;
  config.input_dim = kDim * kDim;
  config.patches = 2;
  config.entangling_layers = 4;
  auto model = models::make_sq_vae(config, rng);

  models::TrainConfig train;
  train.epochs = 8;
  train.batch_size = 32;
  train.quantum_lr = 0.03;
  train.classical_lr = 0.01;
  std::printf("training SQ-VAE (LSD %zu)...\n", model->latent_dim());
  models::Trainer(*model, train)
      .fit(features.samples, nullptr, rng, [](const models::EpochStats& e) {
        std::printf("  epoch %zu: MSE %.4f\n", e.epoch + 1, e.train_mse);
      });

  // Encode two dataset molecules to latent codes (the encoder mean path:
  // encode() runs patches + FC; for a trained VAE the mu head would apply,
  // but interpolation between encoder outputs illustrates the same space).
  Matrix pair(2, kDim * kDim);
  for (std::size_t c = 0; c < kDim * kDim; ++c) {
    pair(0, c) = features.samples(0, c);
    pair(1, c) = features.samples(1, c);
  }
  ad::Tape tape;
  ad::Var z = model->encode(tape, tape.constant(pair));
  const Matrix z_value = tape.value(z);

  const auto s0 = chem::to_smiles(ligands.molecules[0]);
  const auto s1 = chem::to_smiles(ligands.molecules[1]);
  std::printf("\nendpoint A: %s\nendpoint B: %s\n",
              s0 ? s0->c_str() : "?", s1 ? s1->c_str() : "?");

  std::printf("\nlatent interpolation (decode + sanitize at each step):\n");
  const int steps = 7;
  for (int k = 0; k < steps; ++k) {
    const double t = static_cast<double>(k) / (steps - 1);
    Matrix zt(1, model->latent_dim());
    for (std::size_t c = 0; c < model->latent_dim(); ++c) {
      zt(0, c) = (1.0 - t) * z_value(0, c) + t * z_value(1, c);
    }
    ad::Tape decode_tape;
    ad::Var out = model->decode(decode_tape, decode_tape.constant(zt));
    const Matrix decoded = decode_tape.value(out);
    const chem::Molecule m = models::decode_sample(decoded.row(0), kDim);
    const auto smiles = chem::to_smiles(m);
    std::printf("  t=%.2f  atoms %2d  %s\n", t, m.num_atoms(),
                smiles ? smiles->c_str() : "(empty)");
  }
  return 0;
}
