// Quickstart: the smallest end-to-end use of the library.
//
// Builds a scalable quantum autoencoder (SQ-AE) with two circuit patches,
// trains it for a few epochs on procedurally generated 8x8 digit images,
// and prints a reconstruction next to its input. Runs in a few seconds.
//
//   $ ./quickstart
#include <cstdio>

#include "common/rng.h"
#include "data/dataset.h"
#include "data/digits.h"
#include "models/scalable_quantum.h"
#include "models/trainer.h"

using namespace sqvae;

int main() {
  // 1. Deterministic randomness: every component takes an explicit seed.
  Rng rng(42);

  // 2. Data: 200 jittered 8x8 digit images, pixel values scaled to [0, 1].
  const data::DigitsDataset digits = data::make_digits(200, rng);
  const data::Dataset dataset = data::scale(digits.features, 1.0 / 16.0);

  // 3. Model: SQ-AE over 64 features with 2 patches. Each patch amplitude-
  //    embeds 32 features into 5 qubits, so the latent space has
  //    2 * 5 = 10 dimensions.
  models::ScalableQuantumConfig config;
  config.input_dim = 64;
  config.patches = 2;
  config.entangling_layers = 3;
  auto model = models::make_sq_ae(config, rng);
  std::printf("SQ-AE: %zu quantum + %zu classical parameters, LSD %zu\n",
              model->num_quantum_parameters(),
              model->num_classical_parameters(), model->latent_dim());

  // 4. Training: Adam with heterogeneous learning rates (quantum rotation
  //    angles move faster than classical weights, per the paper's Fig. 7).
  models::TrainConfig train;
  train.epochs = 8;
  train.batch_size = 32;
  train.quantum_lr = 0.03;
  train.classical_lr = 0.01;
  models::Trainer trainer(*model, train);
  trainer.fit(dataset.samples, nullptr, rng,
              [](const models::EpochStats& e) {
                std::printf("epoch %2zu  train MSE %.4f  (%.2fs)\n",
                            e.epoch + 1, e.train_mse, e.seconds);
              });

  // 5. Inference: reconstruct one digit and show it.
  Matrix one(1, 64);
  for (std::size_t c = 0; c < 64; ++c) one(0, c) = dataset.samples(3, c);
  const Matrix recon = model->reconstruct(one, rng);

  std::printf("\ninput:\n%s", data::ascii_image(one.row(0), 8, 1.0).c_str());
  std::printf("reconstruction:\n%s",
              data::ascii_image(recon.row(0), 8, 1.0).c_str());
  std::printf("reconstruction MSE: %.4f\n", one.mse(recon));
  return 0;
}
