// Tour of the cheminformatics substrate: SMILES I/O, molecule matrices,
// sanitization, and the drug-property models (the library's RDKit
// substitute).
//
//   $ ./molecule_tools                  # demo molecules
//   $ ./molecule_tools "CC(=O)Oc1ccccc1"  # your own SMILES (subset grammar)
#include <cstdio>

#include "chem/descriptors.h"
#include "chem/logp.h"
#include "chem/molecule_matrix.h"
#include "chem/qed.h"
#include "chem/sa_score.h"
#include "chem/sanitize.h"
#include "chem/smiles.h"
#include "common/rng.h"

using namespace sqvae;
using namespace sqvae::chem;

namespace {

void report(const std::string& smiles) {
  const auto parsed = from_smiles(smiles);
  if (!parsed) {
    std::printf("%-24s  (not parseable in the C/N/O/F/S subset grammar)\n",
                smiles.c_str());
    return;
  }
  const Molecule& mol = *parsed;
  const Descriptors d = compute_descriptors(mol);
  const auto canonical = to_smiles(mol);
  std::printf("%-24s -> canonical %-20s\n", smiles.c_str(),
              canonical ? canonical->c_str() : "(n/a)");
  std::printf(
      "  MW %.1f | atoms %d | HBA %d | HBD %d | TPSA %.1f | rotB %d | "
      "aromatic rings %d | alerts %d\n",
      d.molecular_weight, d.heavy_atoms, d.hba, d.hbd, d.tpsa,
      d.rotatable_bonds, d.aromatic_rings, d.alerts);
  std::printf("  logP %+.2f (normalized %.3f) | QED %.3f | SA %.2f "
              "(normalized %.3f)\n",
              crippen_logp(mol), normalized_logp(mol), qed(mol),
              sa_score(mol), normalized_sa_score(mol));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) report(argv[i]);
    return 0;
  }

  std::printf("== property models on familiar molecules ==\n");
  for (const char* s :
       {"CCO", "c1ccccc1", "Cc1ccccc1", "NCC(=O)O", "CC(=O)Oc1ccccc1",
        "c1ccc2ccccc2c1", "CSC", "FC(F)F", "O=C(O)c1ccccc1"}) {
    report(s);
  }

  std::printf("\n== molecule-matrix codec (paper Fig. 3) ==\n");
  const Molecule aspirin_like = *from_smiles("CC(=O)Oc1ccccc1");
  const Matrix encoded = encode_molecule(aspirin_like, 12);
  std::printf("encoded 12x12 matrix (diagonal = atom codes, off-diagonal = "
              "bond codes):\n");
  for (std::size_t r = 0; r < 12; ++r) {
    for (std::size_t c = 0; c < 12; ++c) {
      std::printf("%d ", static_cast<int>(encoded(r, c)));
    }
    std::printf("\n");
  }

  std::printf("\n== decode + sanitize on a corrupted matrix ==\n");
  Rng rng(3);
  Matrix corrupted = encoded;
  for (std::size_t i = 0; i < corrupted.size(); ++i) {
    corrupted[i] += rng.normal(0.0, 0.6);  // autoencoder-style output noise
  }
  const Molecule raw = decode_molecule(corrupted);
  SanitizeStats stats;
  const Molecule repaired = sanitize(raw, &stats);
  std::printf("decoded %d atoms / %d bonds; sanitize demoted %d bonds, "
              "removed %d, dropped %d atoms\n",
              raw.num_atoms(), raw.num_bonds(),
              stats.valence_demotions + stats.aromatic_demotions,
              stats.bonds_removed, stats.atoms_dropped);
  const auto repaired_smiles = to_smiles(repaired);
  std::printf("repaired molecule: %s (valid: %s)\n",
              repaired_smiles ? repaired_smiles->c_str() : "(empty)",
              is_valid(repaired) ? "yes" : "no");
  return 0;
}
