// Drug discovery with a scalable quantum generative autoencoder — the
// paper's headline workflow, end to end:
//
//   1. assemble a ligand dataset (PDBbind-like molecule matrices),
//   2. train an SQ-VAE on the flattened matrices,
//   3. sample latent vectors from the Gaussian prior,
//   4. decode samples to molecule matrices, sanitize to valid molecules,
//   5. score QED / logP / SA and print the best candidates as SMILES.
//
// Scaled down (16x16 matrices, small dataset) so it finishes in well under
// a minute; the full 32x32 protocol lives in bench_table2_drug_properties.
//
//   $ ./drug_discovery
#include <algorithm>
#include <cstdio>

#include "chem/logp.h"
#include "chem/qed.h"
#include "chem/sa_score.h"
#include "chem/smiles.h"
#include "common/rng.h"
#include "data/molecule_dataset.h"
#include "models/generation.h"
#include "models/scalable_quantum.h"
#include "models/trainer.h"

using namespace sqvae;

int main() {
  Rng rng(2024);

  // Ligand-like molecules with up to 16 heavy atoms on a 16x16 matrix.
  constexpr std::size_t kDim = 16;
  data::MoleculeGenConfig gen = data::pdbbind_config(static_cast<int>(kDim));
  gen.min_atoms = 8;
  data::MoleculeDataset ligands;
  ligands.matrix_dim = kDim;
  ligands.molecules = data::generate_molecules(gen, 200, rng);
  const data::Dataset features = ligands.features();
  std::printf("dataset: %zu ligands, %zu features each\n", features.size(),
              features.num_features());

  const models::GenerationMetrics ref =
      models::evaluate_molecules(ligands.molecules);
  std::printf("dataset properties: QED %.3f  logP %.3f  SA %.3f\n\n",
              ref.mean_qed, ref.mean_logp, ref.mean_sa);

  // SQ-VAE with 2 patches: each embeds 128 features into 7 qubits; LSD 14.
  models::ScalableQuantumConfig config;
  config.input_dim = kDim * kDim;
  config.patches = 2;
  config.entangling_layers = 5;
  auto model = models::make_sq_vae(config, rng);
  std::printf("SQ-VAE: LSD %zu, %zu quantum + %zu classical parameters\n",
              model->latent_dim(), model->num_quantum_parameters(),
              model->num_classical_parameters());

  models::TrainConfig train;
  train.epochs = 10;
  train.batch_size = 32;
  train.quantum_lr = 0.03;
  train.classical_lr = 0.01;
  models::Trainer(*model, train)
      .fit(features.samples, nullptr, rng, [](const models::EpochStats& e) {
        std::printf("epoch %2zu  recon MSE %.4f  KL %.4f\n", e.epoch + 1,
                    e.train_mse, e.train_kl);
      });

  // Sample and score candidate molecules.
  constexpr std::size_t kSamples = 100;
  const Matrix samples = model->sample(kSamples, rng);

  struct Candidate {
    chem::Molecule mol;
    double qed = 0.0;
  };
  std::vector<Candidate> candidates;
  for (std::size_t r = 0; r < samples.rows(); ++r) {
    chem::Molecule m = models::decode_sample(samples.row(r), kDim);
    if (m.empty()) continue;
    const double q = chem::qed(m);
    candidates.push_back({std::move(m), q});
  }
  const models::GenerationMetrics metrics =
      models::evaluate_feature_samples(samples, kDim);
  std::printf("\nsampled %zu molecules: %zu valid, %zu unique\n",
              metrics.requested, metrics.valid, metrics.unique);
  std::printf("sample properties:  QED %.3f  logP %.3f  SA %.3f\n\n",
              metrics.mean_qed, metrics.mean_logp, metrics.mean_sa);

  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.qed > b.qed;
            });
  std::printf("top candidates by QED:\n");
  for (std::size_t i = 0; i < candidates.size() && i < 5; ++i) {
    const auto smiles = chem::to_smiles(candidates[i].mol);
    std::printf("  %zu. QED %.3f  logP %.3f  SA %.3f  %s\n", i + 1,
                candidates[i].qed, chem::normalized_logp(candidates[i].mol),
                chem::normalized_sa_score(candidates[i].mol),
                smiles ? smiles->c_str() : "(unwritable)");
  }
  return 0;
}
