// bench_serve_soak: open-loop soak client for the sqvae_serve event loop.
//
// Drives ≥1k concurrent TCP connections against a running server with
// Poisson request arrivals for a wall-clock duration, then verifies the
// full serving contract from the outside:
//
//   * every request got exactly one response, in per-connection request
//     order, all ok — zero shed, zero protocol errors (asserted against
//     the server's own /stats at the end);
//   * the request stream and the (id-sorted) response stream are written
//     to files, so the harness (ci/serve_soak.sh) can replay the requests
//     through `sqvae_serve --reference` and diff byte-for-byte — the
//     determinism contract held under 1k-way concurrency, caching, and
//     micro-batching;
//   * --abrupt N connections are killed with RST mid-stream (SO_LINGER 0)
//     to exercise the dead-peer teardown path; their traffic is excluded
//     from the replay diff.
//
// The client is a single-threaded epoll loop itself (nonblocking sockets,
// per-connection buffers), so a 1-core CI box can drive 1k sockets
// without a thread per connection on *either* side. Requests draw from a
// small payload × seed pool, so repeated keys exercise the response cache
// and in-flight dedup under load.
//
// Exit status: 0 = contract held; 1 = violations (printed); 2 = setup.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "common/flags.h"

#ifdef __linux__

#include <arpa/inet.h>
#include <csignal>
#include <cerrno>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <deque>

namespace {

using Clock = std::chrono::steady_clock;

struct Conn {
  int fd = -1;
  bool abrupt = false;      // killed with RST mid-soak
  bool dead = false;
  std::string inbuf;
  std::string outbuf;       // unsent request bytes
  std::size_t out_off = 0;
  std::deque<std::uint64_t> expected;  // ids awaiting responses, in order
};

struct Arrival {
  std::uint64_t at_us = 0;  // offset from soak start
  std::size_t conn = 0;
  std::uint64_t id = 0;
  std::string line;
};

struct Soak {
  std::vector<Conn> conns;
  int epoll_fd = -1;
  std::uint64_t responses_ok = 0;
  std::uint64_t failures = 0;

  /// id -> response line (normal connections only), for the sorted dump.
  std::map<std::uint64_t, std::string> responses;

  void fail(const std::string& why) {
    ++failures;
    if (failures <= 20) std::fprintf(stderr, "soak: FAIL: %s\n", why.c_str());
  }

  void arm_out(std::size_t index, bool on) {
    epoll_event ev{};
    ev.events = EPOLLIN | (on ? EPOLLOUT : 0u);
    ev.data.u64 = index;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, conns[index].fd, &ev);
  }

  void flush(std::size_t index) {
    Conn& conn = conns[index];
    while (conn.out_off < conn.outbuf.size()) {
      const ssize_t n =
          ::send(conn.fd, conn.outbuf.data() + conn.out_off,
                 conn.outbuf.size() - conn.out_off, MSG_NOSIGNAL);
      if (n > 0) {
        conn.out_off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        arm_out(index, true);
        return;
      }
      if (n < 0 && errno == EINTR) continue;
      if (!conn.abrupt) fail("send failed on a live connection");
      kill_conn(index, /*rst=*/false);
      return;
    }
    conn.outbuf.clear();
    conn.out_off = 0;
    arm_out(index, false);
  }

  void kill_conn(std::size_t index, bool rst) {
    Conn& conn = conns[index];
    if (conn.dead) return;
    if (rst) {
      struct linger lg {1, 0};
      ::setsockopt(conn.fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    }
    ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, conn.fd, nullptr);
    ::close(conn.fd);
    conn.fd = -1;
    conn.dead = true;
    conn.expected.clear();
  }

  void handle_readable(std::size_t index) {
    Conn& conn = conns[index];
    char buf[16384];
    while (!conn.dead) {
      const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
      if (n > 0) {
        conn.inbuf.append(buf, static_cast<std::size_t>(n));
        std::size_t nl;
        while ((nl = conn.inbuf.find('\n')) != std::string::npos) {
          handle_line(index, conn.inbuf.substr(0, nl));
          conn.inbuf.erase(0, nl + 1);
        }
        continue;
      }
      if (n == 0) {
        if (!conn.abrupt && !conn.expected.empty()) {
          fail("server closed a connection with responses outstanding");
        }
        kill_conn(index, /*rst=*/false);
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      if (!conn.abrupt) fail("recv failed on a live connection");
      kill_conn(index, /*rst=*/false);
      return;
    }
  }

  void handle_line(std::size_t index, const std::string& line) {
    Conn& conn = conns[index];
    if (conn.abrupt) return;  // excluded from the contract check
    if (conn.expected.empty()) {
      fail("unexpected extra response: " + line.substr(0, 120));
      return;
    }
    const std::uint64_t want = conn.expected.front();
    conn.expected.pop_front();
    const std::string tag = "\"id\": " + std::to_string(want) + ",";
    if (line.find(tag) == std::string::npos) {
      fail("out-of-order response (wanted id " + std::to_string(want) +
           "): " + line.substr(0, 120));
      return;
    }
    if (line.find("\"ok\": true") == std::string::npos) {
      fail("non-ok response: " + line.substr(0, 160));
      return;
    }
    ++responses_ok;
    responses.emplace(want, line);
  }

  std::uint64_t outstanding() const {
    std::uint64_t n = 0;
    for (const Conn& conn : conns) {
      if (!conn.abrupt) n += conn.expected.size();
    }
    return n;
  }
};

int connect_loopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

/// One blocking request/response exchange on a fresh connection (used for
/// the final /stats scrape).
std::string query_stats(int port) {
  const int fd = connect_loopback(port);
  if (fd < 0) return "";
  const char* req = "{\"op\": \"stats\"}\n";
  (void)!::send(fd, req, std::strlen(req), MSG_NOSIGNAL);
  std::string line;
  char c;
  while (::recv(fd, &c, 1, 0) == 1 && c != '\n') line.push_back(c);
  ::close(fd);
  return line;
}

std::uint64_t stats_field(const std::string& stats, const std::string& key) {
  const std::size_t pos = stats.find("\"" + key + "\": ");
  if (pos == std::string::npos) return ~0ull;
  return std::strtoull(stats.c_str() + pos + key.size() + 4, nullptr, 10);
}

/// One in-band Prometheus scrape on a fresh connection: reads the
/// multi-line body until its "# EOF" terminator line. Exercises the
/// {"op": "stats", "format": "prometheus"} wire path under post-soak
/// server state; returns the body ("" on any transport failure).
std::string query_stats_prometheus(int port) {
  const int fd = connect_loopback(port);
  if (fd < 0) return "";
  const char* req = "{\"op\": \"stats\", \"format\": \"prometheus\"}\n";
  (void)!::send(fd, req, std::strlen(req), MSG_NOSIGNAL);
  std::string body;
  std::string line;
  char c;
  while (::recv(fd, &c, 1, 0) == 1) {
    if (c != '\n') {
      line.push_back(c);
      continue;
    }
    body += line + "\n";
    if (line == "# EOF") break;
    line.clear();
  }
  ::close(fd);
  if (line != "# EOF") return "";  // truncated: the terminator never came
  return body;
}

}  // namespace

int main(int argc, char** argv) {
  sqvae::Flags flags;
  flags.add_int("port", 0, "sqvae_serve TCP port (required)");
  flags.add_int("conns", 1024, "concurrent connections");
  flags.add_int("abrupt", 8,
                "additional connections killed with RST mid-soak "
                "(dead-peer teardown coverage; excluded from the diff)");
  flags.add_int("seconds", 20, "soak duration");
  flags.add_int("rate", 400, "mean Poisson arrival rate, requests/second");
  flags.add_int("input_dim", 64, "model input dimension for payloads");
  flags.add_int("seed", 1234, "workload generator seed");
  flags.add_string("requests_out", "",
                   "write the (id-sorted) request stream here, for "
                   "--reference replay");
  flags.add_string("responses_out", "",
                   "write the id-sorted response stream here");
  try {
    if (!flags.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  const int port = static_cast<int>(flags.get_int("port"));
  const std::size_t n_conns = static_cast<std::size_t>(flags.get_int("conns"));
  const std::size_t n_abrupt =
      static_cast<std::size_t>(flags.get_int("abrupt"));
  const std::uint64_t seconds =
      static_cast<std::uint64_t>(flags.get_int("seconds"));
  const std::uint64_t rate = static_cast<std::uint64_t>(flags.get_int("rate"));
  const std::size_t input_dim =
      static_cast<std::size_t>(flags.get_int("input_dim"));
  if (port <= 0) {
    std::fprintf(stderr, "--port is required\n");
    return 2;
  }
  std::signal(SIGPIPE, SIG_IGN);

  // ---- deterministic workload -------------------------------------------
  // A small payload × seed pool makes repeated cache keys common, and the
  // op mix covers the coalescing (encode/reconstruct) and per-request
  // stochastic (latent_sample) paths.
  std::mt19937_64 rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  std::vector<std::string> payloads;
  for (int p = 0; p < 32; ++p) {
    std::string x = "[";
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    for (std::size_t i = 0; i < input_dim; ++i) {
      if (i > 0) x += ", ";
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6f", dist(rng));
      x += buf;
    }
    x += "]";
    payloads.push_back(std::move(x));
  }

  const std::size_t total_conns = n_conns + n_abrupt;
  std::exponential_distribution<double> inter_arrival(
      static_cast<double>(rate));
  std::uniform_int_distribution<std::size_t> pick_conn(0, total_conns - 1);
  std::uniform_int_distribution<int> pick_payload(0, 31);
  std::uniform_int_distribution<int> pick_seed(0, 7);
  std::uniform_int_distribution<int> pick_op(0, 9);

  std::vector<Arrival> arrivals;
  double t = 0.0;
  std::uint64_t next_id = 1;
  while (true) {
    t += inter_arrival(rng);
    if (t >= static_cast<double>(seconds)) break;
    Arrival a;
    a.at_us = static_cast<std::uint64_t>(t * 1e6);
    a.conn = pick_conn(rng);
    a.id = next_id++;
    const int op = pick_op(rng);
    const std::string seed_str = std::to_string(100 + pick_seed(rng));
    const std::string id_str = std::to_string(a.id);
    if (op < 5) {
      a.line = "{\"op\": \"encode\", \"id\": " + id_str + ", \"seed\": " +
               seed_str + ", \"x\": " + payloads[pick_payload(rng)] + "}\n";
    } else if (op < 9) {
      a.line = "{\"op\": \"reconstruct\", \"id\": " + id_str +
               ", \"seed\": " + seed_str + ", \"x\": " +
               payloads[pick_payload(rng)] + "}\n";
    } else {
      a.line = "{\"op\": \"latent_sample\", \"id\": " + id_str +
               ", \"seed\": " + seed_str + "}\n";
    }
    arrivals.push_back(std::move(a));
  }
  std::fprintf(stderr, "soak: %zu conns (+%zu abrupt), %llu req over %llus\n",
               n_conns, n_abrupt,
               static_cast<unsigned long long>(arrivals.size()),
               static_cast<unsigned long long>(seconds));

  // ---- connect ----------------------------------------------------------
  Soak soak;
  soak.epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (soak.epoll_fd < 0) {
    std::perror("epoll_create1");
    return 2;
  }
  soak.conns.resize(total_conns);
  for (std::size_t i = 0; i < total_conns; ++i) {
    Conn& conn = soak.conns[i];
    conn.fd = connect_loopback(port);
    if (conn.fd < 0) {
      std::fprintf(stderr, "soak: connect %zu/%zu failed: %s\n", i,
                   total_conns, std::strerror(errno));
      return 2;
    }
    conn.abrupt = i >= n_conns;
    const int fl = ::fcntl(conn.fd, F_GETFL, 0);
    ::fcntl(conn.fd, F_SETFL, fl | O_NONBLOCK);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = i;
    ::epoll_ctl(soak.epoll_fd, EPOLL_CTL_ADD, conn.fd, &ev);
  }

  // Abrupt connections die at random times in the middle third.
  std::vector<std::uint64_t> kill_at_us(total_conns, ~0ull);
  std::uniform_real_distribution<double> kill_frac(0.33, 0.66);
  for (std::size_t i = n_conns; i < total_conns; ++i) {
    kill_at_us[i] = static_cast<std::uint64_t>(
        kill_frac(rng) * static_cast<double>(seconds) * 1e6);
  }

  // ---- drive ------------------------------------------------------------
  const Clock::time_point start = Clock::now();
  const auto elapsed_us = [&] {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              start)
            .count());
  };
  const std::uint64_t hard_deadline_us = seconds * 1000000ull + 30000000ull;

  std::size_t next_arrival = 0;
  epoll_event events[512];
  while (next_arrival < arrivals.size() || soak.outstanding() > 0) {
    const std::uint64_t now_us = elapsed_us();
    if (now_us > hard_deadline_us) {
      soak.fail(std::to_string(soak.outstanding()) +
                " responses still outstanding at the hard deadline");
      break;
    }

    // Launch every due arrival.
    while (next_arrival < arrivals.size() &&
           arrivals[next_arrival].at_us <= now_us) {
      Arrival& a = arrivals[next_arrival++];
      Conn& conn = soak.conns[a.conn];
      if (conn.dead) continue;  // an abrupt conn already killed
      conn.outbuf += a.line;
      if (!conn.abrupt) conn.expected.push_back(a.id);
      soak.flush(a.conn);
    }
    // Fire due RST kills.
    for (std::size_t i = n_conns; i < total_conns; ++i) {
      if (!soak.conns[i].dead && kill_at_us[i] <= now_us) {
        soak.kill_conn(i, /*rst=*/true);
      }
    }

    int timeout_ms = 50;
    if (next_arrival < arrivals.size()) {
      const std::uint64_t at = arrivals[next_arrival].at_us;
      timeout_ms = at > now_us
                       ? static_cast<int>(std::min<std::uint64_t>(
                             (at - now_us) / 1000 + 1, 50))
                       : 0;
    }
    const int n = ::epoll_wait(soak.epoll_fd, events, 512, timeout_ms);
    for (int e = 0; e < n; ++e) {
      const std::size_t index = static_cast<std::size_t>(events[e].data.u64);
      if (soak.conns[index].dead) continue;
      if ((events[e].events & EPOLLOUT) != 0) soak.flush(index);
      if ((events[e].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
        soak.handle_readable(index);
      }
    }
  }

  // ---- verify -----------------------------------------------------------
  const std::string stats = query_stats(port);
  std::fprintf(stderr, "soak: server stats: %s\n", stats.c_str());
  if (stats.empty()) {
    soak.fail("could not scrape /stats after the soak");
  } else {
    if (stats_field(stats, "protocol_errors") != 0) {
      soak.fail("server counted protocol errors");
    }
    if (stats_field(stats, "requests_shed") != 0 ||
        stats_field(stats, "connections_shed") != 0) {
      soak.fail("server shed load (rate too high for this box/lane)");
    }
  }

  // The Prometheus variant must frame correctly over the same socket
  // path (multi-line body, "# EOF" terminator) and agree with the JSON
  // scrape's invariants. Note: under --workers each scrape lands on one
  // kernel-chosen shard, so the two scrapes may describe different
  // shards — assert per-shard invariants, never cross-scrape equality.
  const std::string prom = query_stats_prometheus(port);
  if (prom.empty()) {
    soak.fail("could not scrape the in-band Prometheus stats variant");
  } else {
    if (prom.find("# TYPE sqvae_request_latency_seconds histogram") ==
        std::string::npos) {
      soak.fail("Prometheus scrape lacks the latency histogram family");
    }
    if (prom.find("sqvae_protocol_errors_total{shard=\"") ==
        std::string::npos) {
      soak.fail("Prometheus scrape lacks shard-labelled counters");
    }
  }

  for (std::size_t i = 0; i < total_conns; ++i) {
    if (!soak.conns[i].dead) soak.kill_conn(i, /*rst=*/false);
  }
  ::close(soak.epoll_fd);

  // ---- dump for the replay diff ----------------------------------------
  const std::string requests_out = flags.get_string("requests_out");
  if (!requests_out.empty()) {
    std::ofstream out(requests_out);
    std::vector<const Arrival*> sorted;
    sorted.reserve(arrivals.size());
    for (const Arrival& a : arrivals) {
      if (!soak.conns[a.conn].abrupt) sorted.push_back(&a);
    }
    std::sort(sorted.begin(), sorted.end(),
              [](const Arrival* x, const Arrival* y) { return x->id < y->id; });
    for (const Arrival* a : sorted) out << a->line;
  }
  const std::string responses_out = flags.get_string("responses_out");
  if (!responses_out.empty()) {
    std::ofstream out(responses_out);
    for (const auto& [id, line] : soak.responses) out << line << '\n';
  }

  std::fprintf(stderr, "soak: %llu ok responses, %llu failure(s)\n",
               static_cast<unsigned long long>(soak.responses_ok),
               static_cast<unsigned long long>(soak.failures));
  if (soak.failures != 0) return 1;
  std::fprintf(stderr, "soak: PASS\n");
  return 0;
}

#else  // !__linux__

int main() {
  std::fprintf(stderr, "bench_serve_soak requires Linux epoll\n");
  return 2;
}

#endif  // __linux__
