// Fig. 7: heterogeneous learning-rate grid. The SQ-AE's quantum rotation
// angles live in [-pi, pi] while classical weights span a much wider range,
// so the paper sweeps quantum x classical learning rates over
// {0.001, 0.003, 0.01, 0.03, 0.1}^2 and reports the final training loss of
// each of the 25 combinations; quantum 0.03 / classical 0.01 wins.
#include "bench_common.h"
#include "data/molecule_dataset.h"
#include "models/scalable_quantum.h"
#include "models/trainer.h"

using namespace sqvae;
using namespace sqvae::models;

int main(int argc, char** argv) {
  Flags flags;
  bench::add_common_flags(flags);
  flags.add_int("patches", 8, "circuit patches for the SQ-AE");
  if (!bench::parse_or_die(flags, argc, argv)) return 0;
  const bench::BenchScale scale = bench::scale_from_flags(flags);
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));

  Rng data_rng = rng.split();
  const auto ligands =
      data::make_pdbbind_like(scale.pdbbind_count, 32, data_rng);
  Rng split_rng = rng.split();
  const data::TrainTestSplit split =
      data::train_test_split(ligands.features(), 0.15, split_rng);

  const std::vector<double> rates = {0.001, 0.003, 0.01, 0.03, 0.1};

  std::vector<std::string> header = {"classical\\quantum"};
  for (double q : rates) header.push_back(Table::fmt(q, 3));
  Table table(header);

  double best_loss = 1e30;
  double best_q = 0.0, best_c = 0.0;
  for (double clr : rates) {
    std::vector<std::string> row = {Table::fmt(clr, 3)};
    for (double qlr : rates) {
      Rng r = rng.split();
      ScalableQuantumConfig c;
      c.input_dim = 1024;
      c.patches = static_cast<int>(flags.get_int("patches"));
      c.entangling_layers = 5;
      auto model = make_sq_ae(c, r);

      TrainConfig config;
      config.epochs = scale.sweep_epochs;
      config.batch_size = scale.batch_size;
      config.quantum_lr = qlr;
      config.classical_lr = clr;
      const auto history =
          Trainer(*model, config).fit(split.train.samples, nullptr, r);
      const double loss = history.back().train_mse;
      row.push_back(Table::fmt(loss));
      if (loss < best_loss) {
        best_loss = loss;
        best_q = qlr;
        best_c = clr;
      }
    }
    table.add_row(row);
  }
  bench::emit("Fig. 7: SQ-AE final train loss over LR combinations", table,
              flags);
  std::printf("best: quantum lr %.3f, classical lr %.3f, loss %.4f "
              "(paper: quantum 0.03, classical 0.01)\n",
              best_q, best_c, best_loss);
  return 0;
}
