// Fig. 8(a): train loss vs latent space dimension on PDBbind ligands.
// SQ-AE and SQ-VAE sweep the patched LSDs {18, 32, 56, 96} (patches
// {2, 4, 8, 16}); the classical VAE sweeps matching LSDs. The paper's
// shape: classical VAE losses rise slightly with LSD while SQ variants
// stay comparable, with SQ-AE below SQ-VAE.
#include "bench_common.h"
#include "data/molecule_dataset.h"
#include "models/classical.h"
#include "models/scalable_quantum.h"
#include "models/trainer.h"

using namespace sqvae;
using namespace sqvae::models;

int main(int argc, char** argv) {
  Flags flags;
  bench::add_common_flags(flags);
  if (!bench::parse_or_die(flags, argc, argv)) return 0;
  const bench::BenchScale scale = bench::scale_from_flags(flags);
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));

  Rng data_rng = rng.split();
  const auto ligands =
      data::make_pdbbind_like(scale.pdbbind_count, 32, data_rng);
  Rng split_rng = rng.split();
  const data::TrainTestSplit split =
      data::train_test_split(ligands.features(), 0.15, split_rng);

  TrainConfig config;
  config.epochs = scale.epochs;
  config.batch_size = scale.batch_size;
  config.quantum_lr = 0.03;   // Fig. 7's selected combination
  config.classical_lr = 0.01;

  Table table({"LSD", "patches", "VAE", "SQ-VAE", "SQ-AE"});
  for (const std::size_t lsd : {18u, 32u, 56u, 96u}) {
    const int patches = patches_for_lsd_1024(lsd);

    Rng r_vae = rng.split();
    ClassicalVae vae(classical_config_1024(lsd), r_vae);
    TrainConfig classical_cfg = config;
    classical_cfg.classical_lr = 0.001;
    const double vae_loss = Trainer(vae, classical_cfg)
                                .fit(split.train.samples, nullptr, r_vae)
                                .back()
                                .train_mse;

    ScalableQuantumConfig c;
    c.input_dim = 1024;
    c.patches = patches;
    c.entangling_layers = 5;

    Rng r_sqvae = rng.split();
    auto sq_vae = make_sq_vae(c, r_sqvae);
    const double sq_vae_loss = Trainer(*sq_vae, config)
                                   .fit(split.train.samples, nullptr, r_sqvae)
                                   .back()
                                   .train_mse;

    Rng r_sqae = rng.split();
    auto sq_ae = make_sq_ae(c, r_sqae);
    const double sq_ae_loss = Trainer(*sq_ae, config)
                                  .fit(split.train.samples, nullptr, r_sqae)
                                  .back()
                                  .train_mse;

    table.add_row({std::to_string(lsd), std::to_string(patches),
                   Table::fmt(vae_loss), Table::fmt(sq_vae_loss),
                   Table::fmt(sq_ae_loss)});
  }
  bench::emit("Fig. 8(a): train MSE vs LSD on PDBbind ligands", table, flags);
  return 0;
}
