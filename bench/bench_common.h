// Shared infrastructure for the experiment benches.
//
// Every bench binary reproduces one table or figure of the paper. Binaries
// run with no arguments at "small" scale (reduced dataset sizes and epochs
// so the whole suite finishes in minutes on a laptop); pass --scale=paper
// for the paper's full protocol (2492 ligands, 20 epochs, 1000 samples).
// The learning-dynamics *shape* — who wins, where the crossovers fall — is
// the reproduction target at either scale; see EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <string>

#include "common/flags.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table.h"

namespace sqvae::bench {

struct BenchScale {
  bool paper = false;
  std::size_t qm9_count = 240;
  std::size_t pdbbind_count = 300;
  std::size_t digits_count = 300;
  std::size_t cifar_count = 200;
  std::size_t epochs = 10;
  std::size_t sweep_epochs = 5;    // per-configuration sweeps (Figs. 6, 7)
  std::size_t table2_samples = 200;
  std::size_t batch_size = 32;
};

inline BenchScale paper_scale() {
  BenchScale s;
  s.paper = true;
  s.qm9_count = 1000;
  s.pdbbind_count = 2492;  // PDBbind v2019 refined, filtered (paper §IV-A)
  s.digits_count = 1797;   // sklearn Digits size
  s.cifar_count = 1000;
  s.epochs = 20;
  s.sweep_epochs = 10;
  s.table2_samples = 1000;
  return s;
}

/// Registers the common flags (--scale, --seed, --csv) on top of any
/// bench-specific ones.
inline void add_common_flags(Flags& flags) {
  flags.add_string("scale", "small",
                   "experiment scale: small (fast) or paper (full protocol)");
  flags.add_int("seed", 7, "master random seed");
  flags.add_string("csv", "", "optional path to write the result table CSV");
}

/// Parses flags; returns false when --help was requested. Exits with a
/// message on malformed input.
inline bool parse_or_die(Flags& flags, int argc, char** argv) {
  try {
    return flags.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    std::exit(2);
  }
}

inline BenchScale scale_from_flags(const Flags& flags) {
  const std::string s = flags.get_string("scale");
  if (s == "paper") return paper_scale();
  if (s != "small") {
    std::fprintf(stderr, "unknown --scale=%s (use small or paper)\n",
                 s.c_str());
    std::exit(2);
  }
  return BenchScale{};
}

/// Prints a section header, the table, and optionally writes the CSV.
inline void emit(const std::string& title, const Table& table,
                 const Flags& flags) {
  std::printf("== %s ==\n%s\n", title.c_str(), table.to_text().c_str());
  const std::string csv = flags.get_string("csv");
  if (!csv.empty()) {
    if (table.write_csv(csv)) {
      std::printf("(csv written to %s)\n", csv.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", csv.c_str());
    }
  }
}

}  // namespace sqvae::bench
