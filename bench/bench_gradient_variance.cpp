// Trainability ablation: gradient variance of random patched circuits.
//
// The paper motivates its depth study (Fig. 6) with You & Wu's result on
// spurious local minima and selects moderate depth; the complementary
// barren-plateau phenomenon (McClean et al. 2018) says the variance of
// dE/dtheta over random initialisations decays exponentially with circuit
// width for deep random circuits. This bench measures Var[dE/dtheta_0]
// (E = <Z_0>) over random parameter draws as a function of qubits and
// layers — quantifying why the patched architecture's *small* per-patch
// circuits (6-9 qubits) remain trainable where a holistic wide circuit
// would flatten.
#include <cmath>

#include "bench_common.h"
#include "qsim/adjoint.h"
#include "qsim/observable.h"

using namespace sqvae;
using namespace sqvae::qsim;

int main(int argc, char** argv) {
  Flags flags;
  bench::add_common_flags(flags);
  flags.add_int("draws", 200, "random initialisations per configuration");
  if (!bench::parse_or_die(flags, argc, argv)) return 0;
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  const int draws = static_cast<int>(flags.get_int("draws"));

  Table table({"qubits", "layers", "Var[dE/dtheta_mid]", "mean |grad|"});
  for (int qubits : {2, 4, 6, 8, 10}) {
    for (int layers : {1, 5, 20}) {
      Circuit c(qubits);
      c.strongly_entangling_layers(layers, 0);
      const auto diag = z_diagonal(qubits, 0);
      const Statevector initial(qubits);
      // Track a mid-circuit RY angle: slots cycle (phi, theta, omega) per
      // Rot, and RZ angles acting on computational-basis inputs have
      // identically zero gradient at slot 0, so pick the theta slot of a
      // Rot near the circuit's middle.
      const int tracked =
          (c.num_param_slots() / 2) - ((c.num_param_slots() / 2) % 3) + 1;

      double sum = 0.0, sum_sq = 0.0, mean_abs = 0.0;
      std::vector<double> params(
          static_cast<std::size_t>(c.num_param_slots()));
      for (int d = 0; d < draws; ++d) {
        for (double& p : params) {
          p = rng.uniform(-3.14159265, 3.14159265);
        }
        const AdjointResult res = adjoint_gradient(c, params, initial, diag);
        const double g0 =
            res.param_grads[static_cast<std::size_t>(tracked)];
        sum += g0;
        sum_sq += g0 * g0;
        double abs_total = 0.0;
        for (double g : res.param_grads) abs_total += std::abs(g);
        mean_abs += abs_total / static_cast<double>(res.param_grads.size());
      }
      const double mean = sum / draws;
      const double variance = sum_sq / draws - mean * mean;
      table.add_row({std::to_string(qubits), std::to_string(layers),
                     Table::fmt(variance, 6), Table::fmt(mean_abs / draws, 6)});
    }
  }
  bench::emit(
      "Gradient variance vs circuit width/depth (barren-plateau ablation)",
      table, flags);
  std::printf(
      "expected shape: variance decays roughly exponentially with qubit\n"
      "count at depth >= 5 (2-design regime), motivating small per-patch\n"
      "circuits in the scalable architecture.\n");
  return 0;
}
