// Trainability ablation: gradient variance of random patched circuits.
//
// The paper motivates its depth study (Fig. 6) with You & Wu's result on
// spurious local minima and selects moderate depth; the complementary
// barren-plateau phenomenon (McClean et al. 2018) says the variance of
// dE/dtheta over random initialisations decays exponentially with circuit
// width for deep random circuits. This bench measures Var[dE/dtheta_mid]
// (E = <Z_0>) over random parameter draws as a function of qubits and
// layers — quantifying why the patched architecture's *small* per-patch
// circuits (6-9 qubits) remain trainable where a holistic wide circuit
// would flatten.
//
// Runs on the unified backend layer: the exact column batches all draws
// through CircuitExecutor::adjoint_batch (gate-fused forward passes,
// OpenMP over draws), and a finite-shot column estimates the same gradient
// with the parameter-shift rule on ShotSamplingBackend expectations —
// showing how much measurement noise inflates the gradient variance on
// hardware-realistic estimates (Var_shot ~ Var_exact + 1/(2*shots)).
#include <cmath>

#include "bench_common.h"
#include "qsim/backend.h"
#include "qsim/executor.h"
#include "qsim/observable.h"

using namespace sqvae;
using namespace sqvae::qsim;

namespace {

double variance(const std::vector<double>& samples) {
  double sum = 0.0, sum_sq = 0.0;
  for (double v : samples) {
    sum += v;
    sum_sq += v * v;
  }
  const double n = static_cast<double>(samples.size());
  const double mean = sum / n;
  return sum_sq / n - mean * mean;
}

double mean(const std::vector<double>& samples) {
  double sum = 0.0;
  for (double v : samples) sum += v;
  return sum / static_cast<double>(samples.size());
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  bench::add_common_flags(flags);
  flags.add_int("draws", 200, "random initialisations per configuration");
  flags.add_int("shots", 1024, "shots per parameter-shift estimate");
  if (!bench::parse_or_die(flags, argc, argv)) return 0;
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  const int draws = static_cast<int>(flags.get_int("draws"));
  const std::size_t shots =
      static_cast<std::size_t>(flags.get_int("shots"));

  SimulationOptions shot_options;
  shot_options.backend = BackendKind::kShotSampling;
  shot_options.shots = shots;
  shot_options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  Table table({"qubits", "layers", "Var[dE/dtheta_mid]", "mean |grad|",
               "Var (shots)"});
  for (int qubits : {2, 4, 6, 8, 10}) {
    for (int layers : {1, 5, 20}) {
      Circuit c(qubits);
      c.strongly_entangling_layers(layers, 0);
      const CircuitExecutor exec(c);
      const auto diag = z_diagonal(qubits, 0);
      // Track a mid-circuit RY angle: slots cycle (phi, theta, omega) per
      // Rot, and RZ angles acting on computational-basis inputs have
      // identically zero gradient at slot 0, so pick the theta slot of a
      // Rot near the circuit's middle.
      const std::size_t tracked = static_cast<std::size_t>(
          (c.num_param_slots() / 2) - ((c.num_param_slots() / 2) % 3) + 1);

      // All draws in one batched adjoint call: fused forward passes,
      // parallel over draws.
      std::vector<std::vector<double>> params_batch(
          static_cast<std::size_t>(draws));
      for (auto& params : params_batch) {
        params.resize(static_cast<std::size_t>(c.num_param_slots()));
        for (double& p : params) {
          p = rng.uniform(-3.14159265, 3.14159265);
        }
      }
      const std::vector<Statevector> initials(
          static_cast<std::size_t>(draws), Statevector(qubits));
      const std::vector<std::vector<double>> diags(
          static_cast<std::size_t>(draws), diag);
      const auto results = exec.adjoint_batch(params_batch, initials, diags);

      std::vector<double> exact_grads;
      std::vector<double> grad_mags;
      exact_grads.reserve(results.size());
      for (const AdjointResult& res : results) {
        exact_grads.push_back(res.param_grads[tracked]);
        double abs_total = 0.0;
        for (double g : res.param_grads) abs_total += std::abs(g);
        grad_mags.push_back(abs_total /
                            static_cast<double>(res.param_grads.size()));
      }

      // Finite-shot gradient of the same slot: parameter-shift rule on
      // shot-sampled expectations, dE/dtheta = (E(+pi/2) - E(-pi/2)) / 2.
      // Both shifts of every draw go through one batched call, so the
      // backend parallelises them like the exact column's adjoint batch.
      std::vector<std::vector<double>> shifted;
      shifted.reserve(2 * params_batch.size());
      for (const auto& params : params_batch) {
        for (const double shift :
             {1.5707963267948966, -1.5707963267948966}) {
          shifted.push_back(params);
          shifted.back()[tracked] += shift;
        }
      }
      ShotSamplingBackend backend(shot_options);
      const std::vector<Statevector> shift_initials(shifted.size(),
                                                    Statevector(qubits));
      const auto shifted_z =
          backend.expectations_z_batch(exec, shifted, shift_initials);
      std::vector<double> shot_grads;
      shot_grads.reserve(params_batch.size());
      for (std::size_t d = 0; d < params_batch.size(); ++d) {
        shot_grads.push_back(0.5 *
                             (shifted_z[2 * d][0] - shifted_z[2 * d + 1][0]));
      }

      table.add_row({std::to_string(qubits), std::to_string(layers),
                     Table::fmt(variance(exact_grads), 6),
                     Table::fmt(mean(grad_mags), 6),
                     Table::fmt(variance(shot_grads), 6)});
    }
  }
  bench::emit(
      "Gradient variance vs circuit width/depth (barren-plateau ablation)",
      table, flags);
  std::printf(
      "expected shape: exact variance decays roughly exponentially with\n"
      "qubit count at depth >= 5 (2-design regime), motivating small\n"
      "per-patch circuits; the shot column floors near 1/(2*shots) =\n"
      "%.2e, which is why barren plateaus are fatal on hardware — the\n"
      "signal sinks below the sampling noise.\n",
      1.0 / (2.0 * static_cast<double>(shots)));
  return 0;
}
