// Fig. 5: why baseline quantum autoencoders fail on high-dimensional
// PDBbind ligands.
//
//  (a) reconstruction-MSE trajectories of F-BQ-AE (10-D latent), H-BQ-AE
//      (10-D), and the classical AE (10-D) on 32x32 ligand matrices: the
//      fully quantum model barely moves (probability outputs cannot match
//      original-scale features), the hybrid trails the classical AE;
//  (b) classical AE/VAE test loss at the final epoch for latent space
//      dimensions {10, 16, 32, 64, 128}: AE improves with LSD, VAE stays
//      almost flat.
#include "bench_common.h"
#include "data/molecule_dataset.h"
#include "models/baseline_quantum.h"
#include "models/classical.h"
#include "models/trainer.h"

using namespace sqvae;
using namespace sqvae::models;

int main(int argc, char** argv) {
  Flags flags;
  bench::add_common_flags(flags);
  if (!bench::parse_or_die(flags, argc, argv)) return 0;
  const bench::BenchScale scale = bench::scale_from_flags(flags);
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));

  Rng data_rng = rng.split();
  const auto ligands = data::make_pdbbind_like(scale.pdbbind_count, 32,
                                               data_rng);
  const data::Dataset all = ligands.features();
  Rng split_rng = rng.split();
  const data::TrainTestSplit split =
      data::train_test_split(all, 0.15, split_rng);

  // ---- Panel (a) ---------------------------------------------------------
  struct Series {
    std::string name;
    std::vector<double> curve;
  };
  std::vector<Series> panel_a;

  auto run = [&](Autoencoder& model, const char* name, double qlr,
                 double clr, Rng& r) {
    TrainConfig config;
    config.epochs = scale.epochs;
    config.batch_size = scale.batch_size;
    config.quantum_lr = qlr;
    config.classical_lr = clr;
    Trainer trainer(model, config);
    std::vector<double> curve;
    for (const EpochStats& e : trainer.fit(split.train.samples, nullptr, r)) {
      curve.push_back(e.train_mse);
    }
    panel_a.push_back({name, curve});
  };

  {
    Rng r = rng.split();
    auto fbq = make_fbq_ae(1024, 3, r);
    run(*fbq, "F-BQ-AE 10D", 0.03, 0.01, r);
  }
  {
    Rng r = rng.split();
    auto hbq = make_hbq_ae(1024, 3, r);
    run(*hbq, "H-BQ-AE 10D", 0.03, 0.01, r);
  }
  {
    Rng r = rng.split();
    ClassicalAe ae(classical_config_1024(10), r);
    run(ae, "AE 10D", 0.01, 0.001, r);
  }

  {
    std::vector<std::string> header = {"epoch"};
    for (const Series& s : panel_a) header.push_back(s.name);
    Table table(header);
    for (std::size_t e = 0; e < scale.epochs; ++e) {
      std::vector<std::string> row = {std::to_string(e + 1)};
      for (const Series& s : panel_a) row.push_back(Table::fmt(s.curve[e]));
      table.add_row(row);
    }
    bench::emit("Fig. 5(a): reconstruction MSE on PDBbind ligands (LSD 10)",
                table, flags);
  }

  // ---- Panel (b) ---------------------------------------------------------
  Table table_b({"LSD", "AE-test-MSE", "VAE-test-MSE"});
  for (std::size_t lsd : {10u, 16u, 32u, 64u, 128u}) {
    Rng r_ae = rng.split();
    ClassicalAe ae(classical_config_1024(lsd), r_ae);
    TrainConfig config;
    config.epochs = scale.epochs;
    config.batch_size = scale.batch_size;
    config.classical_lr = 0.001;
    const auto ae_hist =
        Trainer(ae, config).fit(split.train.samples, &split.test.samples, r_ae);

    Rng r_vae = rng.split();
    ClassicalVae vae(classical_config_1024(lsd), r_vae);
    const auto vae_hist = Trainer(vae, config).fit(split.train.samples,
                                                   &split.test.samples, r_vae);
    table_b.add_row({std::to_string(lsd),
                     Table::fmt(ae_hist.back().test_mse),
                     Table::fmt(vae_hist.back().test_mse)});
  }
  bench::emit("Fig. 5(b): classical AE/VAE test loss vs latent dimension",
              table_b, flags);
  return 0;
}
