// Fig. 4(c)/(d): qualitative reconstructions from the baseline quantum VAE.
//
//  (c) three Digits inputs, their F-BQ-VAE reconstructions (trained on
//      L1-normalised digits), and three fresh samples from the generator;
//  (d) one QM9 molecule matrix with reconstructions from original-scale
//      (H-BQ-VAE) and normalised (F-BQ-VAE) training — showing that the
//      normalised molecule reconstruction loses the molecular structure,
//      the paper's argument for the scalable architecture.
#include <cstdio>

#include "bench_common.h"
#include "chem/molecule_matrix.h"
#include "chem/sanitize.h"
#include "chem/smiles.h"
#include "data/digits.h"
#include "data/molecule_dataset.h"
#include "models/baseline_quantum.h"
#include "models/trainer.h"

using namespace sqvae;
using namespace sqvae::models;

namespace {

void train(Autoencoder& model, const Matrix& data,
           const bench::BenchScale& scale, double qlr, double clr, Rng& rng) {
  TrainConfig config;
  config.epochs = scale.epochs;
  config.batch_size = scale.batch_size;
  config.quantum_lr = qlr;
  config.classical_lr = clr;
  Trainer(model, config).fit(data, nullptr, rng);
}

void print_molecule_matrix(const char* title, const Matrix& m) {
  std::printf("%s\n", title);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      std::printf("%d ", static_cast<int>(std::lround(m(r, c))));
    }
    std::printf("\n");
  }
}

Matrix to_matrix(const std::vector<double>& features, std::size_t dim) {
  Matrix m(dim, dim);
  for (std::size_t i = 0; i < features.size(); ++i) m[i] = features[i];
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  bench::add_common_flags(flags);
  if (!bench::parse_or_die(flags, argc, argv)) return 0;
  const bench::BenchScale scale = bench::scale_from_flags(flags);
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));

  Rng data_rng = rng.split();
  const auto digits = data::make_digits(scale.digits_count, data_rng);
  const data::Dataset digits_norm = data::l1_normalize_rows(digits.features);

  std::printf("== Fig. 4(c): F-BQ-VAE digit reconstructions ==\n");
  Rng model_rng = rng.split();
  auto fbq = make_fbq_vae(64, 3, model_rng);
  train(*fbq, digits_norm.samples, scale, 0.05, 0.01, model_rng);

  // Three test digits (first occurrences of classes 0, 1, 2).
  Matrix inputs(3, 64);
  for (std::size_t d = 0; d < 3; ++d) {
    for (std::size_t c = 0; c < 64; ++c) {
      inputs(d, c) = digits_norm.samples(d * 10 + d, c);
    }
  }
  const Matrix recon = fbq->reconstruct(inputs, model_rng);
  const Matrix samples = fbq->sample(3, model_rng);
  for (std::size_t d = 0; d < 3; ++d) {
    // Normalised pixels are ~1/64 scale; render relative to the row max.
    auto row_max = [](const Matrix& m, std::size_t r) {
      double v = 1e-12;
      for (std::size_t c = 0; c < m.cols(); ++c) v = std::max(v, m(r, c));
      return v;
    };
    std::printf(
        "-- input %zu --          -- reconstruction --    -- sample --\n",
                d);
    const std::string in_art =
        data::ascii_image(inputs.row(d), 8, row_max(inputs, d));
    const std::string re_art =
        data::ascii_image(recon.row(d), 8, row_max(recon, d));
    const std::string sa_art =
        data::ascii_image(samples.row(d), 8, row_max(samples, d));
    // Interleave the three 8-wide blocks line by line.
    for (int line = 0; line < 8; ++line) {
      std::printf("%.*s                %.*s                %.*s\n", 8,
                  in_art.c_str() + line * 9, 8, re_art.c_str() + line * 9, 8,
                  sa_art.c_str() + line * 9);
    }
  }

  std::printf("\n== Fig. 4(d): QM9 molecule reconstruction ==\n");
  const auto qm9 = data::make_qm9_like(scale.qm9_count, 8, data_rng);
  const data::Dataset qm9_raw = qm9.features();
  const data::Dataset qm9_norm = data::l1_normalize_rows(qm9_raw);

  Rng h_rng = rng.split();
  auto hbq = make_hbq_vae(64, 3, h_rng);
  train(*hbq, qm9_raw.samples, scale, 0.01, 0.01, h_rng);
  Rng f_rng = rng.split();
  auto fbq_mol = make_fbq_vae(64, 3, f_rng);
  train(*fbq_mol, qm9_norm.samples, scale, 0.05, 0.01, f_rng);

  Matrix one(1, 64);
  for (std::size_t c = 0; c < 64; ++c) one(0, c) = qm9_raw.samples(0, c);
  Matrix one_norm(1, 64);
  for (std::size_t c = 0; c < 64; ++c) one_norm(0, c) = qm9_norm.samples(0, c);

  print_molecule_matrix("input molecule matrix:", to_matrix(one.row(0), 8));
  const auto smiles_in = chem::to_smiles(qm9.molecules[0]);
  std::printf("input SMILES: %s\n\n",
              smiles_in ? smiles_in->c_str() : "(n/a)");

  const Matrix recon_orig = hbq->reconstruct(one, h_rng);
  print_molecule_matrix("reconstruction (original-scale training, H-BQ-VAE):",
                        to_matrix(recon_orig.row(0), 8));
  const chem::Molecule decoded_orig = chem::sanitize(
      chem::features_to_molecule(recon_orig.row(0), 8));
  const auto smiles_orig = chem::to_smiles(decoded_orig);
  std::printf("decoded SMILES: %s\n\n",
              smiles_orig ? smiles_orig->c_str() : "(empty)");

  // The normalised reconstruction must be rescaled back by the input's L1
  // norm before decoding — and still "hardly shares characteristics with
  // the input molecule" (paper).
  Matrix recon_norm = fbq_mol->reconstruct(one_norm, f_rng);
  double l1 = 0.0;
  for (std::size_t c = 0; c < 64; ++c) l1 += std::abs(one(0, c));
  recon_norm *= l1;
  print_molecule_matrix(
      "reconstruction (normalized training, F-BQ-VAE, rescaled):",
      to_matrix(recon_norm.row(0), 8));
  const chem::Molecule decoded_norm =
      chem::sanitize(chem::features_to_molecule(recon_norm.row(0), 8));
  const auto smiles_norm = chem::to_smiles(decoded_norm);
  std::printf("decoded SMILES: %s\n",
              smiles_norm ? smiles_norm->c_str() : "(empty)");
  std::printf(
      "\nMSE(original recon) = %.4f, MSE(normalized recon, rescaled) = %.4f\n",
      one.mse(recon_orig), one.mse(recon_norm));
  return 0;
}
