// Fig. 8(b)/(c): grayscale CIFAR-10 reconstruction.
//
//  (b) train-MSE trajectories of SQ-VAE, CVAE, SQ-AE, CAE (LSD 18, i.e.
//      2 patches) on 32x32 grayscale images;
//  (c) three test images with their classical-AE and SQ-AE
//      reconstructions, rendered as ASCII (after 20 epochs both show the
//      sketch of the input — the paper's qualitative finding).
#include "bench_common.h"
#include "data/cifar_gray.h"
#include "data/digits.h"
#include "models/classical.h"
#include "models/scalable_quantum.h"
#include "models/trainer.h"

using namespace sqvae;
using namespace sqvae::models;

int main(int argc, char** argv) {
  Flags flags;
  bench::add_common_flags(flags);
  if (!bench::parse_or_die(flags, argc, argv)) return 0;
  const bench::BenchScale scale = bench::scale_from_flags(flags);
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));

  Rng data_rng = rng.split();
  const auto cifar = data::make_cifar_gray(scale.cifar_count, data_rng);
  Rng split_rng = rng.split();
  const data::TrainTestSplit split =
      data::train_test_split(cifar.features, 0.15, split_rng);

  struct Entry {
    std::string name;
    std::vector<double> curve;
  };
  std::vector<Entry> series;

  TrainConfig qconfig;
  qconfig.epochs = scale.epochs;
  qconfig.batch_size = scale.batch_size;
  qconfig.quantum_lr = 0.03;
  qconfig.classical_lr = 0.01;
  TrainConfig cconfig = qconfig;
  cconfig.classical_lr = 0.001;

  ScalableQuantumConfig sqc;
  sqc.input_dim = 1024;
  sqc.patches = 2;  // LSD 18, the panel's configuration
  sqc.entangling_layers = 5;

  Rng r1 = rng.split();
  auto sq_vae = make_sq_vae(sqc, r1);
  Rng r2 = rng.split();
  ClassicalVae cvae(classical_config_1024(18), r2);
  Rng r3 = rng.split();
  auto sq_ae = make_sq_ae(sqc, r3);
  Rng r4 = rng.split();
  ClassicalAe cae(classical_config_1024(18), r4);

  auto fit = [&](Autoencoder& m, const TrainConfig& cfg, const char* name,
                 Rng& r) {
    std::vector<double> curve;
    for (const EpochStats& e :
         Trainer(m, cfg).fit(split.train.samples, nullptr, r)) {
      curve.push_back(e.train_mse);
    }
    series.push_back({name, curve});
  };
  fit(*sq_vae, qconfig, "SQ-VAE", r1);
  fit(cvae, cconfig, "CVAE", r2);
  fit(*sq_ae, qconfig, "SQ-AE", r3);
  fit(cae, cconfig, "CAE", r4);

  std::vector<std::string> header = {"epoch"};
  for (const Entry& s : series) header.push_back(s.name);
  Table table(header);
  for (std::size_t e = 0; e < scale.epochs; ++e) {
    std::vector<std::string> row = {std::to_string(e + 1)};
    for (const Entry& s : series) row.push_back(Table::fmt(s.curve[e]));
    table.add_row(row);
  }
  bench::emit("Fig. 8(b): train MSE on grayscale CIFAR-like images (LSD 18)",
              table, flags);

  // ---- Panel (c): reconstructions ---------------------------------------
  std::printf("== Fig. 8(c): reconstructions (input / AE / SQ-AE) ==\n");
  Matrix inputs(3, 1024);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t c = 0; c < 1024; ++c) {
      inputs(i, c) = split.test.samples(i, c);
    }
  }
  const Matrix cae_recon = cae.reconstruct(inputs, r4);
  const Matrix sq_recon = sq_ae->reconstruct(inputs, r3);
  for (std::size_t i = 0; i < 3; ++i) {
    const std::string in_art = data::ascii_image(inputs.row(i), 32, 1.0);
    const std::string cae_art = data::ascii_image(cae_recon.row(i), 32, 1.0);
    const std::string sq_art = data::ascii_image(sq_recon.row(i), 32, 1.0);
    std::printf("-- test image %zu --\n", i);
    for (int line = 0; line < 32; ++line) {
      std::printf("%.*s  %.*s  %.*s\n", 32, in_art.c_str() + line * 33, 32,
                  cae_art.c_str() + line * 33, 32, sq_art.c_str() + line * 33);
    }
    std::printf("MSE: AE %.4f, SQ-AE %.4f\n",
                sqvae::mse(inputs.row(i), cae_recon.row(i)),
                sqvae::mse(inputs.row(i), sq_recon.row(i)));
  }
  return 0;
}
