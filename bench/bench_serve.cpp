// Serving micro-benchmark: per-request dispatch vs micro-batched dispatch
// through the InferenceService, written as JSON (default
// BENCH_serve_micro.json, --json=PATH) for the CI bench-regression gate.
//
// A/B per client count (1, 4, --clients): the same request stream served
// "serial" — one worker, max_batch = 1, i.e. the pre-serving status quo of
// answering one request at a time — vs "micro-batched" — a worker per
// hardware thread with max_batch = --max_batch, so concurrent requests
// coalesce into shared tapes and shared CircuitExecutor::run_batch calls.
// Clients are synchronous (submit, block on the future, repeat): a single
// client can never coalesce (its row measures pure queue overhead,
// expected ~1.0x), N clients form batches up to N. Reported: p50/p99
// request latency and aggregate throughput.
//
// The speedup is partly hardware-bound (more cores = more workers and more
// parallel statevectors inside one batched run_batch call), so the JSON
// carries hardware_threads and ci/bench_gate.py tiers the bar like the
// train gate: the >= 2.0x requirement applies to >= 4-core runners; a
// single-core container only sees the coalescing amortisation (shared
// tape, shared dispatch; ~1.25x measured), which still clears a lower bar.
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/stopwatch.h"
#include "serve/registry.h"
#include "serve/service.h"

namespace {

using namespace sqvae;

struct Percentiles {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

Percentiles percentiles(std::vector<double>& latencies_ms) {
  Percentiles p;
  if (latencies_ms.empty()) return p;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  const auto at = [&](double q) {
    const std::size_t idx = std::min(
        latencies_ms.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(latencies_ms.size())));
    return latencies_ms[idx];
  };
  p.p50_ms = at(0.50);
  p.p99_ms = at(0.99);
  return p;
}

struct RunStats {
  double rps = 0.0;
  Percentiles latency;
};

/// `clients` synchronous threads, `per_client` reconstruct requests each.
RunStats run_load(serve::ModelRegistry& registry, const serve::ServeConfig& cfg,
                  const std::vector<std::vector<double>>& payloads,
                  int clients, int per_client) {
  serve::InferenceService service(registry, cfg);

  // Warm-up: replica construction must happen outside the timed window on
  // every worker that the timed load will engage. Sequential requests all
  // land on one worker (and with coalescing, one worker can swallow a
  // whole concurrent wave as a single batch), so warm with the same
  // closed-loop shape as the measurement: cfg.threads blocking clients,
  // several requests each, keeping multiple batches in flight.
  {
    std::vector<std::thread> warmers;
    for (int w = 0; w < std::max(cfg.threads, 2); ++w) {
      warmers.emplace_back([&] {
        for (int i = 0; i < 8; ++i) service.reconstruct(payloads[0], 0);
      });
    }
    for (std::thread& t : warmers) t.join();
  }

  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  Stopwatch wall;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<double>& mine = latencies[static_cast<std::size_t>(c)];
      mine.reserve(static_cast<std::size_t>(per_client));
      for (int i = 0; i < per_client; ++i) {
        const std::vector<double>& x =
            payloads[static_cast<std::size_t>(c + i) % payloads.size()];
        Stopwatch request;
        const serve::InferenceResult result = service.reconstruct(
            x, static_cast<std::uint64_t>(c) * 1000 +
                   static_cast<std::uint64_t>(i));
        mine.push_back(request.seconds() * 1e3);
        if (!result.ok) {
          std::fprintf(stderr, "request failed: %s\n", result.error.c_str());
          std::exit(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double seconds = wall.seconds();
  service.shutdown();

  std::vector<double> all;
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  RunStats stats;
  stats.rps = static_cast<double>(clients) *
              static_cast<double>(per_client) / seconds;
  stats.latency = percentiles(all);
  return stats;
}

/// Best-of-N wrapper: container/runner jitter hits a short throughput run
/// hard, so each configuration is measured `reps` times and the run with
/// the highest throughput is reported (the standard bench convention for
/// contended machines — the best run is the least-perturbed one).
RunStats best_of(serve::ModelRegistry& registry, const serve::ServeConfig& cfg,
                 const std::vector<std::vector<double>>& payloads, int clients,
                 int per_client, int reps) {
  RunStats best;
  for (int r = 0; r < reps; ++r) {
    RunStats stats = run_load(registry, cfg, payloads, clients, per_client);
    if (stats.rps > best.rps) best = stats;
  }
  return best;
}

struct AbRow {
  int clients = 0;
  int requests = 0;
  std::size_t max_batch = 0;
  RunStats serial;
  RunStats batched;

  double speedup() const {
    return serial.rps > 0.0 ? batched.rps / serial.rps : 0.0;
  }
};

void write_json(const std::string& path, const std::vector<AbRow>& rows,
                int workers) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"benchmark\": \"serve_micro/dispatch_ab\",\n"
      "  \"unit\": \"ms\",\n"
      "  \"description\": \"InferenceService throughput/latency: "
      "single-worker per-request dispatch vs multi-worker micro-batched "
      "dispatch, sq-ae digits model, synchronous clients\",\n"
      "  \"hardware_threads\": %u,\n"
      "  \"workers\": %d,\n"
      "  \"rows\": [\n",
      std::thread::hardware_concurrency(), workers);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const AbRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"clients\": %d, \"requests\": %d, \"max_batch\": %zu, "
        "\"serial_rps\": %.2f, \"batched_rps\": %.2f, "
        "\"serial_p50_ms\": %.4f, \"serial_p99_ms\": %.4f, "
        "\"batched_p50_ms\": %.4f, \"batched_p99_ms\": %.4f, "
        "\"speedup\": %.3f}%s\n",
        r.clients, r.requests, r.max_batch, r.serial.rps, r.batched.rps,
        r.serial.latency.p50_ms, r.serial.latency.p99_ms,
        r.batched.latency.p50_ms, r.batched.latency.p99_ms, r.speedup(),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("(json written to %s)\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  bench::add_common_flags(flags);
  flags.add_string("json", "BENCH_serve_micro.json", "JSON report path");
  flags.add_int("clients", 8, "largest client-thread count in the sweep");
  flags.add_int("max_batch", 16, "micro-batch cap of the batched side");
  flags.add_int("requests", 0,
                "requests per client (0 = auto: 200 small / 600 paper)");
  flags.add_int("reps", 3, "repetitions per configuration (best-of)");
  if (!bench::parse_or_die(flags, argc, argv)) return 0;
  const bench::BenchScale scale = bench::scale_from_flags(flags);

  // A trained-shape sq-ae on the digits geometry; serving throughput does
  // not depend on the parameter values, so fresh weights snapshot directly.
  serve::ModelSpec spec;
  spec.kind = "sq-ae";
  spec.input_dim = 64;
  spec.patches = 2;
  spec.entangling_layers = 2;
  std::string error;
  std::unique_ptr<models::Autoencoder> model =
      serve::build_model(spec, &error);
  if (model == nullptr) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  serve::ModelRegistry registry;
  registry.publish("default", serve::LoadedModel::from_model(spec, *model));

  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  std::vector<std::vector<double>> payloads(16);
  for (auto& row : payloads) {
    row.resize(spec.input_dim);
    for (double& v : row) v = rng.uniform();
  }

  int per_client = static_cast<int>(flags.get_int("requests"));
  if (per_client <= 0) per_client = scale.paper ? 600 : 200;
  const int max_clients = std::max(4, static_cast<int>(flags.get_int("clients")));
  const std::size_t max_batch =
      static_cast<std::size_t>(flags.get_int("max_batch"));
  int workers = static_cast<int>(std::thread::hardware_concurrency());
  if (workers <= 0) workers = 1;

  serve::ServeConfig serial_cfg;
  serial_cfg.max_batch = 1;
  serial_cfg.max_batch_wait_us = 0;
  serial_cfg.threads = 1;  // the one-request-at-a-time status quo
  serve::ServeConfig batched_cfg;
  batched_cfg.max_batch = max_batch;
  batched_cfg.max_batch_wait_us = 0;  // closed-loop clients: see batch_queue.h
  batched_cfg.threads = workers;

  std::vector<int> client_counts = {1, 4};
  if (max_clients != 4 && max_clients != 1) client_counts.push_back(max_clients);

  std::vector<AbRow> rows;
  for (int clients : client_counts) {
    AbRow row;
    row.clients = clients;
    row.requests = per_client;
    row.max_batch = max_batch;
    row.serial = best_of(registry, serial_cfg, payloads, clients, per_client,
                         static_cast<int>(flags.get_int("reps")));
    row.batched = best_of(registry, batched_cfg, payloads, clients, per_client,
                          static_cast<int>(flags.get_int("reps")));
    rows.push_back(row);
  }

  Table table({"clients", "serial_rps", "batched_rps", "serial_p50_ms",
               "batched_p50_ms", "serial_p99_ms", "batched_p99_ms",
               "speedup"});
  for (const AbRow& r : rows) {
    table.add_row({std::to_string(r.clients), Table::fmt(r.serial.rps, 1),
                   Table::fmt(r.batched.rps, 1),
                   Table::fmt(r.serial.latency.p50_ms, 3),
                   Table::fmt(r.batched.latency.p50_ms, 3),
                   Table::fmt(r.serial.latency.p99_ms, 3),
                   Table::fmt(r.batched.latency.p99_ms, 3),
                   Table::fmt(r.speedup(), 3)});
  }
  bench::emit("Serving dispatch A/B (sq-ae, digits geometry)", table, flags);

  write_json(flags.get_string("json"), rows, workers);
  return 0;
}
