// Serving micro-benchmark: per-request dispatch vs micro-batched dispatch
// through the InferenceService, written as JSON (default
// BENCH_serve_micro.json, --json=PATH) for the CI bench-regression gate.
//
// A/B per client count (1, 4, --clients): the same request stream served
// "serial" — one worker, max_batch = 1, i.e. the pre-serving status quo of
// answering one request at a time — vs "micro-batched" — a worker per
// hardware thread with max_batch = --max_batch, so concurrent requests
// coalesce into shared tapes and shared CircuitExecutor::run_batch calls.
// Clients are synchronous (submit, block on the future, repeat): a single
// client can never coalesce (its row measures pure queue overhead,
// expected ~1.0x), N clients form batches up to N. Reported: p50/p99
// request latency and aggregate throughput.
//
// The speedup is partly hardware-bound (more cores = more workers and more
// parallel statevectors inside one batched run_batch call), so the JSON
// carries hardware_threads and ci/bench_gate.py tiers the bar like the
// train gate: the >= 2.0x requirement applies to >= 4-core runners; a
// single-core container only sees the coalescing amortisation (shared
// tape, shared dispatch; ~1.25x measured), which still clears a lower bar.
//
// Two further A/B sections (this PR's front-end rework):
//   * event_loop_ab — the epoll EventLoopServer vs a thread-per-connection
//     baseline (reimplemented here; the CLI no longer has one) over real
//     loopback TCP at 64 / 256 / 1024 closed-loop connections. Gated only
//     on >= 4-core runners (on one core both transports serialize onto the
//     same compute and the row mostly measures scheduler overhead);
//     Linux-only (epoll), omitted from the JSON elsewhere.
//   * cache_ab — the same request stream through the InferenceService with
//     the content-addressed response cache off vs on, high key-repeat
//     workload. A hit skips the entire circuit execution, so the >= 2.0x
//     bar holds on any core count.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/mutex.h"
#include "common/stopwatch.h"
#include "serve/event_loop.h"
#include "serve/protocol.h"
#include "serve/registry.h"
#include "serve/service.h"
#include "serve/stats.h"

#ifdef __linux__
#include <arpa/inet.h>
#include <csignal>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace {

using namespace sqvae;

struct Percentiles {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

Percentiles percentiles(std::vector<double>& latencies_ms) {
  Percentiles p;
  if (latencies_ms.empty()) return p;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  const auto at = [&](double q) {
    const std::size_t idx = std::min(
        latencies_ms.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(latencies_ms.size())));
    return latencies_ms[idx];
  };
  p.p50_ms = at(0.50);
  p.p99_ms = at(0.99);
  return p;
}

struct RunStats {
  double rps = 0.0;
  Percentiles latency;
};

/// `clients` synchronous threads, `per_client` reconstruct requests each.
RunStats run_load(serve::ModelRegistry& registry, const serve::ServeConfig& cfg,
                  const std::vector<std::vector<double>>& payloads,
                  int clients, int per_client) {
  serve::InferenceService service(registry, cfg);

  // Warm-up: replica construction must happen outside the timed window on
  // every worker that the timed load will engage. Sequential requests all
  // land on one worker (and with coalescing, one worker can swallow a
  // whole concurrent wave as a single batch), so warm with the same
  // closed-loop shape as the measurement: cfg.threads blocking clients,
  // several requests each, keeping multiple batches in flight.
  {
    std::vector<std::thread> warmers;
    for (int w = 0; w < std::max(cfg.threads, 2); ++w) {
      warmers.emplace_back([&] {
        for (int i = 0; i < 8; ++i) service.reconstruct(payloads[0], 0);
      });
    }
    for (std::thread& t : warmers) t.join();
  }

  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  Stopwatch wall;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<double>& mine = latencies[static_cast<std::size_t>(c)];
      mine.reserve(static_cast<std::size_t>(per_client));
      for (int i = 0; i < per_client; ++i) {
        const std::vector<double>& x =
            payloads[static_cast<std::size_t>(c + i) % payloads.size()];
        Stopwatch request;
        const serve::InferenceResult result = service.reconstruct(
            x, static_cast<std::uint64_t>(c) * 1000 +
                   static_cast<std::uint64_t>(i));
        mine.push_back(request.seconds() * 1e3);
        if (!result.ok) {
          std::fprintf(stderr, "request failed: %s\n", result.error.c_str());
          std::exit(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double seconds = wall.seconds();
  service.shutdown();

  std::vector<double> all;
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  RunStats stats;
  stats.rps = static_cast<double>(clients) *
              static_cast<double>(per_client) / seconds;
  stats.latency = percentiles(all);
  return stats;
}

/// Best-of-N wrapper: container/runner jitter hits a short throughput run
/// hard, so each configuration is measured `reps` times and the run with
/// the highest throughput is reported (the standard bench convention for
/// contended machines — the best run is the least-perturbed one).
RunStats best_of(serve::ModelRegistry& registry, const serve::ServeConfig& cfg,
                 const std::vector<std::vector<double>>& payloads, int clients,
                 int per_client, int reps) {
  RunStats best;
  for (int r = 0; r < reps; ++r) {
    RunStats stats = run_load(registry, cfg, payloads, clients, per_client);
    if (stats.rps > best.rps) best = stats;
  }
  return best;
}

struct AbRow {
  int clients = 0;
  int requests = 0;
  std::size_t max_batch = 0;
  RunStats serial;
  RunStats batched;

  double speedup() const {
    return serial.rps > 0.0 ? batched.rps / serial.rps : 0.0;
  }
};

// ---- cache A/B ------------------------------------------------------------

struct CacheRow {
  int clients = 0;
  int requests = 0;
  int unique_keys = 0;
  double uncached_rps = 0.0;
  double cached_rps = 0.0;
  double hit_rate = 0.0;

  double speedup() const {
    return uncached_rps > 0.0 ? cached_rps / uncached_rps : 0.0;
  }
};

/// Closed-loop clients cycling a small key pool (payload × seed), cache
/// off vs on. The workload repeats keys heavily (CI-shaped traffic:
/// identical probe/replay requests), so the cached side answers most
/// requests from memory.
CacheRow run_cache_ab(serve::ModelRegistry& registry,
                      const std::vector<std::vector<double>>& payloads,
                      int clients, int total_requests, int reps) {
  CacheRow row;
  row.clients = clients;
  row.requests = total_requests;
  const int seeds = 4;
  row.unique_keys = static_cast<int>(payloads.size()) * seeds;
  const int per_client = total_requests / clients;

  const auto run_once = [&](std::size_t cache_bytes, double* hit_rate) {
    serve::ServerStats stats;
    serve::ServeConfig cfg;
    cfg.max_batch = 16;
    cfg.threads = 0;  // hardware concurrency
    cfg.cache_bytes = cache_bytes;
    serve::InferenceService service(registry, cfg, &stats);
    for (int w = 0; w < 4; ++w) service.reconstruct(payloads[0], 0);

    std::vector<std::thread> threads;
    Stopwatch wall;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        for (int i = 0; i < per_client; ++i) {
          const int k = (c * per_client + i);
          const auto& x = payloads[static_cast<std::size_t>(k) %
                                   payloads.size()];
          const std::uint64_t seed = static_cast<std::uint64_t>(k % seeds);
          const serve::InferenceResult r =
              service
                  .submit("default", serve::Endpoint::kReconstruct,
                          std::vector<double>(x), seed)
                  .get();
          if (!r.ok) {
            std::fprintf(stderr, "cache A/B request failed: %s\n",
                         r.error.c_str());
            std::exit(1);
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    const double seconds = wall.seconds();
    service.shutdown();
    if (hit_rate != nullptr) {
      const double hits =
          static_cast<double>(stats.cache_hits.load()) +
          static_cast<double>(stats.cache_inflight_joined.load());
      *hit_rate = hits / static_cast<double>(clients * per_client);
    }
    return static_cast<double>(clients * per_client) / seconds;
  };

  for (int r = 0; r < reps; ++r) {
    row.uncached_rps = std::max(row.uncached_rps, run_once(0, nullptr));
    double hit_rate = 0.0;
    const double rps = run_once(64u << 20, &hit_rate);
    if (rps > row.cached_rps) {
      row.cached_rps = rps;
      row.hit_rate = hit_rate;
    }
  }
  return row;
}

// ---- event-loop A/B (Linux only) ------------------------------------------

struct ElRow {
  int conns = 0;
  int requests = 0;  // total across connections
  double thread_rps = 0.0;
  double epoll_rps = 0.0;

  double speedup() const {
    return thread_rps > 0.0 ? epoll_rps / thread_rps : 0.0;
  }
};

#ifdef __linux__

int listen_loopback(int* port_out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 1024) != 0) {
    ::close(fd);
    return -1;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  *port_out = static_cast<int>(ntohs(addr.sin_port));
  return fd;
}

/// The pre-event-loop baseline, preserved here for the A/B: one blocking
/// handler thread per accepted connection (read line, execute via the
/// shared service, write response). Stopped by closing the listener after
/// all clients hung up.
class ThreadPerConnServer {
 public:
  explicit ThreadPerConnServer(serve::InferenceService& service)
      : service_(service) {}

  bool start() {
    listener_ = listen_loopback(&port_);
    if (listener_ < 0) return false;
    acceptor_ = std::thread([this] {
      while (true) {
        const int fd = ::accept(listener_, nullptr, nullptr);
        if (fd < 0) return;  // listener closed: shutting down
        sq::MutexLock lock(mu_);
        handlers_.emplace_back([this, fd] { handle(fd); });
      }
    });
    return true;
  }

  int port() const { return port_; }

  void stop() {
    ::shutdown(listener_, SHUT_RDWR);
    ::close(listener_);
    acceptor_.join();
    sq::MutexLock lock(mu_);
    for (std::thread& t : handlers_) t.join();
    handlers_.clear();
  }

 private:
  void handle(int fd) {
    std::string inbuf;
    char buf[8192];
    while (true) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n <= 0) break;
      inbuf.append(buf, static_cast<std::size_t>(n));
      std::size_t nl;
      while ((nl = inbuf.find('\n')) != std::string::npos) {
        const std::string line = inbuf.substr(0, nl);
        inbuf.erase(0, nl + 1);
        serve::WireRequest request;
        std::string error;
        if (!serve::parse_request_line(line, &request, &error)) continue;
        const serve::InferenceResult result =
            service_
                .submit(request.model, request.endpoint,
                        std::move(request.x), request.seed)
                .get();
        const std::string out = serve::format_response(request, result) + "\n";
        std::size_t off = 0;
        while (off < out.size()) {
          const ssize_t w =
              ::send(fd, out.data() + off, out.size() - off, MSG_NOSIGNAL);
          if (w <= 0) break;
          off += static_cast<std::size_t>(w);
        }
      }
    }
    ::close(fd);
  }

  serve::InferenceService& service_;
  int listener_ = -1;
  int port_ = 0;
  std::thread acceptor_;
  sq::Mutex mu_;
  std::vector<std::thread> handlers_;
};

/// Closed-loop load: `conns` connections, each sending `per_conn`
/// requests one at a time (next request only after the previous
/// response), driven by a single epoll thread on the client side.
/// Returns aggregate requests/second (connect time excluded).
double drive_closed_loop(int port, int conns, int per_conn,
                         const std::string& request_line) {
  struct CConn {
    int fd = -1;
    int remaining = 0;
    std::string inbuf;
  };
  std::vector<CConn> cs(static_cast<std::size_t>(conns));
  const int epfd = ::epoll_create1(EPOLL_CLOEXEC);
  for (int i = 0; i < conns; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      std::fprintf(stderr, "event-loop A/B: connect failed: %s\n",
                   std::strerror(errno));
      std::exit(1);
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    cs[static_cast<std::size_t>(i)].fd = fd;
    cs[static_cast<std::size_t>(i)].remaining = per_conn;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = static_cast<std::uint64_t>(i);
    ::epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &ev);
  }

  // Closed loop: one small request into an empty socket buffer never
  // blocks, so plain blocking sends are safe here.
  const auto send_one = [&](CConn& conn) {
    (void)!::send(conn.fd, request_line.data(), request_line.size(),
                  MSG_NOSIGNAL);
  };

  Stopwatch wall;
  for (CConn& conn : cs) send_one(conn);
  int open = conns;
  epoll_event events[512];
  while (open > 0) {
    const int n = ::epoll_wait(epfd, events, 512, 10000);
    if (n <= 0) {
      std::fprintf(stderr, "event-loop A/B: stalled waiting for responses\n");
      std::exit(1);
    }
    for (int e = 0; e < n; ++e) {
      CConn& conn = cs[static_cast<std::size_t>(events[e].data.u64)];
      if (conn.fd < 0) continue;
      char buf[8192];
      const ssize_t r = ::recv(conn.fd, buf, sizeof(buf), 0);
      if (r <= 0) {
        std::fprintf(stderr, "event-loop A/B: connection died mid-run\n");
        std::exit(1);
      }
      conn.inbuf.append(buf, static_cast<std::size_t>(r));
      std::size_t nl;
      while ((nl = conn.inbuf.find('\n')) != std::string::npos) {
        conn.inbuf.erase(0, nl + 1);
        if (--conn.remaining > 0) {
          send_one(conn);
        } else {
          ::epoll_ctl(epfd, EPOLL_CTL_DEL, conn.fd, nullptr);
          ::close(conn.fd);
          conn.fd = -1;
          --open;
          break;
        }
      }
    }
  }
  const double seconds = wall.seconds();
  ::close(epfd);
  return static_cast<double>(conns) * static_cast<double>(per_conn) / seconds;
}

std::vector<ElRow> run_event_loop_ab(serve::ModelRegistry& registry,
                                     const std::vector<double>& payload,
                                     int total_requests, int max_conns,
                                     int reps) {
  std::signal(SIGPIPE, SIG_IGN);
  // Both transports execute through an identically configured service; an
  // encode request keeps compute small so the rows contrast the
  // *front ends*, not the model.
  serve::WireRequest request;
  request.op = "encode";
  std::string line = "{\"op\": \"encode\", \"seed\": 1, \"x\": [";
  for (std::size_t i = 0; i < payload.size(); ++i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%s%.6f", i > 0 ? ", " : "", payload[i]);
    line += buf;
  }
  line += "]}\n";

  std::vector<ElRow> rows;
  for (int conns : {64, 256, 1024}) {
    if (conns > max_conns) continue;
    ElRow row;
    row.conns = conns;
    const int per_conn = std::max(2, total_requests / conns);
    row.requests = per_conn * conns;
    for (int r = 0; r < reps; ++r) {
      {
        serve::ServeConfig cfg;
        cfg.threads = 0;
        serve::InferenceService service(registry, cfg);
        for (int w = 0; w < 4; ++w) service.encode(payload, 1);
        ThreadPerConnServer server(service);
        if (!server.start()) std::exit(1);
        row.thread_rps = std::max(
            row.thread_rps,
            drive_closed_loop(server.port(), conns, per_conn, line));
        server.stop();
        service.shutdown();
      }
      {
        serve::ServerStats stats;
        serve::ServeConfig cfg;
        cfg.threads = 0;
        cfg.shed_on_full = true;
        serve::InferenceService service(registry, cfg, &stats);
        for (int w = 0; w < 4; ++w) service.encode(payload, 1);
        serve::EventLoopConfig loop_cfg;
        serve::EventLoopServer server(service, loop_cfg, stats);
        std::string error;
        if (!server.start(&error)) {
          std::fprintf(stderr, "%s\n", error.c_str());
          std::exit(1);
        }
        std::thread loop([&] { server.run(); });
        row.epoll_rps = std::max(
            row.epoll_rps,
            drive_closed_loop(server.port(), conns, per_conn, line));
        server.request_stop();
        loop.join();
        service.shutdown();
      }
    }
    rows.push_back(row);
  }
  return rows;
}

#else  // !__linux__

std::vector<ElRow> run_event_loop_ab(serve::ModelRegistry&,
                                     const std::vector<double>&, int, int,
                                     int) {
  std::fprintf(stderr,
               "event_loop_ab skipped: requires Linux epoll "
               "(section omitted from the JSON)\n");
  return {};
}

#endif  // __linux__

void write_json(const std::string& path, const std::vector<AbRow>& rows,
                const std::vector<ElRow>& el_rows, const CacheRow& cache_row,
                int workers) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"benchmark\": \"serve_micro/dispatch_ab\",\n"
      "  \"unit\": \"ms\",\n"
      "  \"description\": \"InferenceService throughput/latency: "
      "single-worker per-request dispatch vs multi-worker micro-batched "
      "dispatch, sq-ae digits model, synchronous clients\",\n"
      "  \"hardware_threads\": %u,\n"
      "  \"workers\": %d,\n"
      "  \"rows\": [\n",
      std::thread::hardware_concurrency(), workers);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const AbRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"clients\": %d, \"requests\": %d, \"max_batch\": %zu, "
        "\"serial_rps\": %.2f, \"batched_rps\": %.2f, "
        "\"serial_p50_ms\": %.4f, \"serial_p99_ms\": %.4f, "
        "\"batched_p50_ms\": %.4f, \"batched_p99_ms\": %.4f, "
        "\"speedup\": %.3f}%s\n",
        r.clients, r.requests, r.max_batch, r.serial.rps, r.batched.rps,
        r.serial.latency.p50_ms, r.serial.latency.p99_ms,
        r.batched.latency.p50_ms, r.batched.latency.p99_ms, r.speedup(),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  if (!el_rows.empty()) {
    std::fprintf(
        f,
        "  \"event_loop_ab\": {\n"
        "    \"description\": \"TCP front-end A/B: epoll event loop vs "
        "thread-per-connection baseline, closed-loop connections, encode "
        "requests, shared worker pool\",\n"
        "    \"rows\": [\n");
    for (std::size_t i = 0; i < el_rows.size(); ++i) {
      const ElRow& r = el_rows[i];
      std::fprintf(f,
                   "      {\"conns\": %d, \"requests\": %d, "
                   "\"thread_rps\": %.2f, \"epoll_rps\": %.2f, "
                   "\"speedup\": %.3f}%s\n",
                   r.conns, r.requests, r.thread_rps, r.epoll_rps,
                   r.speedup(), i + 1 < el_rows.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n  },\n");
  }
  std::fprintf(
      f,
      "  \"cache_ab\": {\n"
      "    \"description\": \"Content-addressed response cache off vs on, "
      "closed-loop clients cycling a small payload x seed pool, reconstruct "
      "requests\",\n"
      "    \"rows\": [\n"
      "      {\"clients\": %d, \"requests\": %d, \"unique_keys\": %d, "
      "\"uncached_rps\": %.2f, \"cached_rps\": %.2f, \"hit_rate\": %.3f, "
      "\"speedup\": %.3f}\n"
      "    ]\n  }\n",
      cache_row.clients, cache_row.requests, cache_row.unique_keys,
      cache_row.uncached_rps, cache_row.cached_rps, cache_row.hit_rate,
      cache_row.speedup());
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("(json written to %s)\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  bench::add_common_flags(flags);
  flags.add_string("json", "BENCH_serve_micro.json", "JSON report path");
  flags.add_int("clients", 8, "largest client-thread count in the sweep");
  flags.add_int("max_batch", 16, "micro-batch cap of the batched side");
  flags.add_int("requests", 0,
                "requests per client (0 = auto: 200 small / 600 paper)");
  flags.add_int("reps", 3, "repetitions per configuration (best-of)");
  flags.add_int("el_requests", 4096,
                "event-loop A/B: total requests per connection-count row");
  flags.add_int("el_conns", 1024,
                "event-loop A/B: largest connection count (rows above it "
                "are skipped)");
  flags.add_int("cache_requests", 2048, "cache A/B: total requests");
  if (!bench::parse_or_die(flags, argc, argv)) return 0;
  const bench::BenchScale scale = bench::scale_from_flags(flags);

  // A trained-shape sq-ae on the digits geometry; serving throughput does
  // not depend on the parameter values, so fresh weights snapshot directly.
  serve::ModelSpec spec;
  spec.kind = "sq-ae";
  spec.input_dim = 64;
  spec.patches = 2;
  spec.entangling_layers = 2;
  std::string error;
  std::unique_ptr<models::Autoencoder> model =
      serve::build_model(spec, &error);
  if (model == nullptr) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  serve::ModelRegistry registry;
  registry.publish("default", serve::LoadedModel::from_model(spec, *model));

  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  std::vector<std::vector<double>> payloads(16);
  for (auto& row : payloads) {
    row.resize(spec.input_dim);
    for (double& v : row) v = rng.uniform();
  }

  int per_client = static_cast<int>(flags.get_int("requests"));
  if (per_client <= 0) per_client = scale.paper ? 600 : 200;
  const int max_clients =
      std::max(4, static_cast<int>(flags.get_int("clients")));
  const std::size_t max_batch =
      static_cast<std::size_t>(flags.get_int("max_batch"));
  int workers = static_cast<int>(std::thread::hardware_concurrency());
  if (workers <= 0) workers = 1;

  serve::ServeConfig serial_cfg;
  serial_cfg.max_batch = 1;
  serial_cfg.max_batch_wait_us = 0;
  serial_cfg.threads = 1;  // the one-request-at-a-time status quo
  serve::ServeConfig batched_cfg;
  batched_cfg.max_batch = max_batch;
  batched_cfg.max_batch_wait_us = 0;  // closed-loop clients: see batch_queue.h
  batched_cfg.threads = workers;

  std::vector<int> client_counts = {1, 4};
  if (max_clients != 4 && max_clients != 1) {
    client_counts.push_back(max_clients);
  }

  std::vector<AbRow> rows;
  for (int clients : client_counts) {
    AbRow row;
    row.clients = clients;
    row.requests = per_client;
    row.max_batch = max_batch;
    row.serial = best_of(registry, serial_cfg, payloads, clients, per_client,
                         static_cast<int>(flags.get_int("reps")));
    row.batched = best_of(registry, batched_cfg, payloads, clients, per_client,
                          static_cast<int>(flags.get_int("reps")));
    rows.push_back(row);
  }

  Table table({"clients", "serial_rps", "batched_rps", "serial_p50_ms",
               "batched_p50_ms", "serial_p99_ms", "batched_p99_ms",
               "speedup"});
  for (const AbRow& r : rows) {
    table.add_row({std::to_string(r.clients), Table::fmt(r.serial.rps, 1),
                   Table::fmt(r.batched.rps, 1),
                   Table::fmt(r.serial.latency.p50_ms, 3),
                   Table::fmt(r.batched.latency.p50_ms, 3),
                   Table::fmt(r.serial.latency.p99_ms, 3),
                   Table::fmt(r.batched.latency.p99_ms, 3),
                   Table::fmt(r.speedup(), 3)});
  }
  bench::emit("Serving dispatch A/B (sq-ae, digits geometry)", table, flags);

  const int reps = static_cast<int>(flags.get_int("reps"));
  const std::vector<ElRow> el_rows = run_event_loop_ab(
      registry, payloads[0],
      static_cast<int>(flags.get_int("el_requests")),
      static_cast<int>(flags.get_int("el_conns")), std::min(reps, 2));
  if (!el_rows.empty()) {
    Table el_table({"conns", "requests", "thread_rps", "epoll_rps",
                    "speedup"});
    for (const ElRow& r : el_rows) {
      el_table.add_row({std::to_string(r.conns), std::to_string(r.requests),
                        Table::fmt(r.thread_rps, 1),
                        Table::fmt(r.epoll_rps, 1),
                        Table::fmt(r.speedup(), 3)});
    }
    bench::emit("TCP front-end A/B (epoll vs thread-per-connection)",
                el_table, flags);
  }

  const CacheRow cache_row =
      run_cache_ab(registry, payloads, /*clients=*/4,
                   static_cast<int>(flags.get_int("cache_requests")), reps);
  Table cache_table({"clients", "requests", "unique_keys", "uncached_rps",
                     "cached_rps", "hit_rate", "speedup"});
  cache_table.add_row(
      {std::to_string(cache_row.clients), std::to_string(cache_row.requests),
       std::to_string(cache_row.unique_keys),
       Table::fmt(cache_row.uncached_rps, 1),
       Table::fmt(cache_row.cached_rps, 1), Table::fmt(cache_row.hit_rate, 3),
       Table::fmt(cache_row.speedup(), 3)});
  bench::emit("Response cache A/B (reconstruct, repeated keys)", cache_table,
              flags);

  write_json(flags.get_string("json"), rows, el_rows, cache_row, workers);
  return 0;
}
