// Table II: drug properties (QED, normalised logP, normalised SA) of
// molecules sampled from SQ-VAEs and classical VAEs at LSDs
// {18, 32, 56, 96} after training on PDBbind ligands. The paper samples
// 1000 molecules per model (use --scale=paper; the default small scale
// samples 200). Dataset reference values are printed for context, plus
// validity/uniqueness diagnostics of the decode-sanitize pipeline.
#include "bench_common.h"
#include "data/molecule_dataset.h"
#include "models/classical.h"
#include "models/generation.h"
#include "models/metrics.h"
#include "models/scalable_quantum.h"
#include "models/trainer.h"

using namespace sqvae;
using namespace sqvae::models;

int main(int argc, char** argv) {
  Flags flags;
  bench::add_common_flags(flags);
  if (!bench::parse_or_die(flags, argc, argv)) return 0;
  const bench::BenchScale scale = bench::scale_from_flags(flags);
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));

  Rng data_rng = rng.split();
  const auto ligands =
      data::make_pdbbind_like(scale.pdbbind_count, 32, data_rng);
  Rng split_rng = rng.split();
  const data::TrainTestSplit split =
      data::train_test_split(ligands.features(), 0.15, split_rng);

  const std::size_t lsds[] = {18, 32, 56, 96};
  GenerationMetrics vae_metrics[4];
  GenerationMetrics sq_metrics[4];
  ExtendedMetrics vae_extended[4];
  ExtendedMetrics sq_extended[4];

  for (int i = 0; i < 4; ++i) {
    const std::size_t lsd = lsds[i];

    Rng r_vae = rng.split();
    ClassicalVae vae(classical_config_1024(lsd), r_vae);
    TrainConfig ccfg;
    ccfg.epochs = scale.epochs;
    ccfg.batch_size = scale.batch_size;
    ccfg.classical_lr = 0.001;
    Trainer(vae, ccfg).fit(split.train.samples, nullptr, r_vae);
    const Matrix vae_samples = vae.sample(scale.table2_samples, r_vae);
    vae_metrics[i] = evaluate_feature_samples(vae_samples, 32);
    vae_extended[i] = evaluate_extended(vae_samples, 32, ligands.molecules);

    Rng r_sq = rng.split();
    ScalableQuantumConfig c;
    c.input_dim = 1024;
    c.patches = patches_for_lsd_1024(lsd);
    c.entangling_layers = 5;
    auto sq_vae = make_sq_vae(c, r_sq);
    TrainConfig qcfg = ccfg;
    qcfg.quantum_lr = 0.03;  // Fig. 7 selection
    qcfg.classical_lr = 0.01;
    Trainer(*sq_vae, qcfg).fit(split.train.samples, nullptr, r_sq);
    const Matrix sq_samples = sq_vae->sample(scale.table2_samples, r_sq);
    sq_metrics[i] = evaluate_feature_samples(sq_samples, 32);
    sq_extended[i] = evaluate_extended(sq_samples, 32, ligands.molecules);
  }

  Table table({"Metrics", "LSD-18", "LSD-32", "LSD-56", "LSD-96"});
  auto add_metric_row = [&](const std::string& name,
                            const GenerationMetrics* m,
                            double GenerationMetrics::*field) {
    table.add_row({name, Table::fmt(m[0].*field, 3), Table::fmt(m[1].*field, 3),
                   Table::fmt(m[2].*field, 3), Table::fmt(m[3].*field, 3)});
  };
  add_metric_row("VAE-QED", vae_metrics, &GenerationMetrics::mean_qed);
  add_metric_row("SQ-VAE-QED", sq_metrics, &GenerationMetrics::mean_qed);
  add_metric_row("VAE-logP", vae_metrics, &GenerationMetrics::mean_logp);
  add_metric_row("SQ-VAE-logP", sq_metrics, &GenerationMetrics::mean_logp);
  add_metric_row("VAE-SA", vae_metrics, &GenerationMetrics::mean_sa);
  add_metric_row("SQ-VAE-SA", sq_metrics, &GenerationMetrics::mean_sa);
  bench::emit("Table II: drug properties of sampled ligands", table, flags);

  std::printf("paper reference:\n"
              "  VAE-QED     0.138 0.179 0.139 0.142\n"
              "  SQ-VAE-QED  0.153 0.177 0.204 0.167\n"
              "  VAE-logP    0.357 0.472 0.496 0.761\n"
              "  SQ-VAE-logP 0.780 0.616 0.709 0.740\n"
              "  VAE-SA      0.192 0.292 0.307 0.599\n"
              "  SQ-VAE-SA   0.626 0.479 0.534 0.547\n\n");

  const GenerationMetrics ref = evaluate_molecules(ligands.molecules);
  std::printf("dataset reference: QED %.3f, logP %.3f, SA %.3f\n",
              ref.mean_qed, ref.mean_logp, ref.mean_sa);

  Table diag({"model", "LSD", "requested", "valid", "unique",
              "mean heavy atoms"});
  for (int i = 0; i < 4; ++i) {
    diag.add_row({"VAE", std::to_string(lsds[i]),
                  std::to_string(vae_metrics[i].requested),
                  std::to_string(vae_metrics[i].valid),
                  std::to_string(vae_metrics[i].unique),
                  Table::fmt(vae_metrics[i].mean_heavy_atoms, 1)});
    diag.add_row({"SQ-VAE", std::to_string(lsds[i]),
                  std::to_string(sq_metrics[i].requested),
                  std::to_string(sq_metrics[i].valid),
                  std::to_string(sq_metrics[i].unique),
                  Table::fmt(sq_metrics[i].mean_heavy_atoms, 1)});
  }
  std::printf("\n== generation diagnostics ==\n%s", diag.to_text().c_str());

  // Extended generative-chemistry metrics (beyond the paper; MOSES-style).
  Table ext({"model", "LSD", "novelty", "dist-to-train", "int-diversity",
             "scaffolds/valid", "Lipinski pass"});
  for (int i = 0; i < 4; ++i) {
    ext.add_row({"VAE", std::to_string(lsds[i]),
                 Table::fmt(vae_extended[i].novelty, 3),
                 Table::fmt(vae_extended[i].mean_distance_to_train, 3),
                 Table::fmt(vae_extended[i].internal_diversity, 3),
                 Table::fmt(vae_extended[i].scaffold_diversity, 3),
                 Table::fmt(vae_extended[i].lipinski_pass_rate, 3)});
    ext.add_row({"SQ-VAE", std::to_string(lsds[i]),
                 Table::fmt(sq_extended[i].novelty, 3),
                 Table::fmt(sq_extended[i].mean_distance_to_train, 3),
                 Table::fmt(sq_extended[i].internal_diversity, 3),
                 Table::fmt(sq_extended[i].scaffold_diversity, 3),
                 Table::fmt(sq_extended[i].lipinski_pass_rate, 3)});
  }
  std::printf("\n== extended metrics (novelty/diversity, not in paper) ==\n%s",
              ext.to_text().c_str());
  return 0;
}
