// Hardware-realism ablation (extension beyond the paper's noiseless
// simulation): how finite measurement shots and gate-level Pauli noise
// would distort the quantities the SQ-VAE trains on. Runs entirely on the
// unified simulation-backend layer (qsim/backend.h):
//
//  (1) shot scaling: RMS error of the shot-estimated per-qubit <Z> vector
//      of one encoder patch circuit vs number of shots (expected 1/sqrt(N)),
//      via ShotSamplingBackend;
//  (2) noise damping: averaged <Z> magnitude vs per-gate Pauli error rate
//      and circuit depth — quantifying how many entangling layers a given
//      error rate can support before the latent signal depolarizes, via
//      TrajectoryBackend;
//  (3) trajectory-vs-density cross-check: the Monte-Carlo estimate against
//      the exact channel, with wall-clock times — the memory/accuracy
//      trade-off the backend layer exists to navigate.
#include <cmath>

#include "bench_common.h"
#include "qsim/backend.h"
#include "qsim/density_matrix.h"
#include "qsim/embedding.h"
#include "qsim/executor.h"

using namespace sqvae;
using namespace sqvae::qsim;

namespace {

SimulationOptions make_options(BackendKind kind, std::size_t shots,
                               double gate_error, std::uint64_t seed) {
  SimulationOptions o;
  o.backend = kind;
  o.shots = shots;
  o.noise.gate_error = gate_error;
  o.seed = seed;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  bench::add_common_flags(flags);
  flags.add_int("qubits", 7, "encoder patch width (paper: 7 for 8 patches)");
  if (!bench::parse_or_die(flags, argc, argv)) return 0;
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed"));
  const int qubits = static_cast<int>(flags.get_int("qubits"));

  // A representative trained-scale patch circuit with random weights.
  Circuit circuit(qubits);
  circuit.strongly_entangling_layers(5, 0);
  std::vector<double> params(
      static_cast<std::size_t>(circuit.num_param_slots()));
  for (double& p : params) p = rng.uniform(-3.14, 3.14);
  const CircuitExecutor exec(circuit);
  const std::vector<double> exact =
      expectations_z(exec.run_from_zero(params));

  Table shots_table({"shots", "RMS error of <Z> vector", "1/sqrt(shots)"});
  for (std::size_t shots : {64u, 256u, 1024u, 4096u, 16384u, 65536u}) {
    // Average RMS over repetitions to reduce the estimate's own noise; each
    // backend call advances its stream, so repetitions are independent.
    ShotSamplingBackend backend(
        make_options(BackendKind::kShotSampling, shots, 0.0, seed));
    double rms_sum = 0.0;
    const int reps = 10;
    for (int r = 0; r < reps; ++r) {
      const auto est = backend.expectations_z(exec, params);
      double se = 0.0;
      for (std::size_t q = 0; q < est.size(); ++q) {
        const double d = est[q] - exact[q];
        se += d * d;
      }
      rms_sum += std::sqrt(se / static_cast<double>(est.size()));
    }
    shots_table.add_row({std::to_string(shots),
                         Table::fmt(rms_sum / reps, 5),
                         Table::fmt(1.0 / std::sqrt(static_cast<double>(shots)),
                                    5)});
  }
  bench::emit("Shot scaling: <Z> estimation error vs measurement shots",
              shots_table, flags);

  Table noise_table({"layers", "p=0", "p=0.001", "p=0.005", "p=0.02"});
  for (int layers : {1, 3, 5, 7, 9}) {
    Circuit c(qubits);
    c.strongly_entangling_layers(layers, 0);
    const CircuitExecutor layer_exec(c);
    std::vector<double> w(static_cast<std::size_t>(c.num_param_slots()));
    for (double& v : w) v = rng.uniform(-3.14, 3.14);

    std::vector<std::string> row = {std::to_string(layers)};
    for (double p : {0.0, 0.001, 0.005, 0.02}) {
      const std::size_t trajectories = p == 0.0 ? 1 : 400;
      TrajectoryBackend backend(
          make_options(BackendKind::kTrajectory, trajectories, p, seed));
      const auto e = backend.expectations_z(layer_exec, w);
      double mag = 0.0;
      for (double v : e) mag += std::abs(v);
      row.push_back(Table::fmt(mag / static_cast<double>(e.size()), 4));
    }
    noise_table.add_row(row);
  }
  bench::emit(
      "Noise damping: mean |<Z>| per qubit vs depth and per-gate error rate",
      noise_table, flags);

  // Trajectory backend vs the exact density-matrix channel: agreement and
  // wall-clock. The density matrix costs O(4^n) per gate and is capped at
  // 12 qubits; trajectories cost O(shots * 2^n) and keep scaling.
  Table xcheck_table({"gate error", "max |traj - exact|", "3/sqrt(M) bound",
                      "trajectory ms", "density ms", "speedup"});
  const std::size_t m = 1000;
  for (double p : {0.001, 0.005, 0.02}) {
    TrajectoryBackend backend(
        make_options(BackendKind::kTrajectory, m, p, seed));
    Stopwatch watch;
    const auto traj = backend.expectations_z(exec, params);
    const double traj_ms = watch.millis();

    watch.reset();
    const DensityMatrix rho = run_density(circuit, params, NoiseModel{p});
    const double density_ms = watch.millis();

    double max_diff = 0.0;
    for (int q = 0; q < qubits; ++q) {
      max_diff = std::max(
          max_diff, std::abs(traj[static_cast<std::size_t>(q)] -
                             rho.expectation_z(q)));
    }
    xcheck_table.add_row(
        {Table::fmt(p, 3), Table::fmt(max_diff, 4),
         Table::fmt(3.0 / std::sqrt(static_cast<double>(m)), 4),
         Table::fmt(traj_ms, 2), Table::fmt(density_ms, 2),
         Table::fmt(density_ms / traj_ms, 1) + "x"});
  }
  bench::emit(
      "Trajectory backend vs exact density matrix (1000 trajectories)",
      xcheck_table, flags);
  return 0;
}
