// Hardware-realism ablation (extension beyond the paper's noiseless
// simulation): how finite measurement shots and gate-level Pauli noise
// would distort the quantities the SQ-VAE trains on.
//
//  (1) shot scaling: RMS error of the shot-estimated per-qubit <Z> vector
//      of one encoder patch circuit vs number of shots (expected 1/sqrt(N));
//  (2) noise damping: averaged <Z> magnitude vs per-gate Pauli error rate
//      and circuit depth — quantifying how many entangling layers a given
//      error rate can support before the latent signal depolarizes, which
//      corroborates the paper's preference for moderate depth (Fig. 6).
#include <cmath>

#include "bench_common.h"
#include "qsim/embedding.h"
#include "qsim/noise.h"
#include "qsim/sampling.h"

using namespace sqvae;
using namespace sqvae::qsim;

int main(int argc, char** argv) {
  Flags flags;
  bench::add_common_flags(flags);
  flags.add_int("qubits", 7, "encoder patch width (paper: 7 for 8 patches)");
  if (!bench::parse_or_die(flags, argc, argv)) return 0;
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  const int qubits = static_cast<int>(flags.get_int("qubits"));

  // A representative trained-scale patch circuit with random weights.
  Circuit circuit(qubits);
  circuit.strongly_entangling_layers(5, 0);
  std::vector<double> params(
      static_cast<std::size_t>(circuit.num_param_slots()));
  for (double& p : params) p = rng.uniform(-3.14, 3.14);
  const Statevector state = run_from_zero(circuit, params);
  const std::vector<double> exact = expectations_z(state);

  Table shots_table({"shots", "RMS error of <Z> vector", "1/sqrt(shots)"});
  for (std::size_t shots : {64u, 256u, 1024u, 4096u, 16384u, 65536u}) {
    // Average RMS over repetitions to reduce the estimate's own noise.
    double rms_sum = 0.0;
    const int reps = 10;
    for (int r = 0; r < reps; ++r) {
      const auto est = estimate_expectations_z(state, shots, rng);
      double se = 0.0;
      for (std::size_t q = 0; q < est.size(); ++q) {
        const double d = est[q] - exact[q];
        se += d * d;
      }
      rms_sum += std::sqrt(se / static_cast<double>(est.size()));
    }
    shots_table.add_row({std::to_string(shots),
                         Table::fmt(rms_sum / reps, 5),
                         Table::fmt(1.0 / std::sqrt(static_cast<double>(shots)), 5)});
  }
  bench::emit("Shot scaling: <Z> estimation error vs measurement shots",
              shots_table, flags);

  Table noise_table({"layers", "p=0", "p=0.001", "p=0.005", "p=0.02"});
  for (int layers : {1, 3, 5, 7, 9}) {
    Circuit c(qubits);
    c.strongly_entangling_layers(layers, 0);
    std::vector<double> w(static_cast<std::size_t>(c.num_param_slots()));
    for (double& v : w) v = rng.uniform(-3.14, 3.14);

    std::vector<std::string> row = {std::to_string(layers)};
    for (double p : {0.0, 0.001, 0.005, 0.02}) {
      const std::size_t trajectories = p == 0.0 ? 1 : 400;
      const auto e = noisy_expectations_z(c, w, NoiseModel{p}, trajectories,
                                          rng);
      double mag = 0.0;
      for (double v : e) mag += std::abs(v);
      row.push_back(Table::fmt(mag / static_cast<double>(e.size()), 4));
    }
    noise_table.add_row(row);
  }
  bench::emit(
      "Noise damping: mean |<Z>| per qubit vs depth and per-gate error rate",
      noise_table, flags);
  return 0;
}
