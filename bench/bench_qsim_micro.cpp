// Simulator micro-benchmarks (google-benchmark) and the gradient-method
// ablation called out in DESIGN.md §4: adjoint differentiation vs
// parameter shift vs finite differences, gate-kernel throughput vs qubit
// count, and the patched-vs-holistic circuit cost that motivates the
// scalable architecture.
#include <benchmark/benchmark.h>

#include <numbers>

#include "common/rng.h"
#include "qsim/adjoint.h"
#include "qsim/circuit.h"
#include "qsim/embedding.h"
#include "qsim/observable.h"
#include "qsim/paramshift.h"

namespace {

using namespace sqvae;
using namespace sqvae::qsim;

std::vector<double> random_params(int count, Rng& rng) {
  std::vector<double> p(static_cast<std::size_t>(count));
  for (double& v : p) v = rng.uniform(-std::numbers::pi, std::numbers::pi);
  return p;
}

void BM_GateKernelSingleQubit(benchmark::State& state) {
  const int qubits = static_cast<int>(state.range(0));
  Statevector sv(qubits);
  const Mat2 ry = gate_matrix(GateKind::kRY, 0.3);
  for (auto _ : state) {
    sv.apply_single(ry, 0);
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sv.dim()));
}
BENCHMARK(BM_GateKernelSingleQubit)->DenseRange(4, 12, 2);

void BM_GateKernelCnot(benchmark::State& state) {
  const int qubits = static_cast<int>(state.range(0));
  Statevector sv(qubits);
  for (auto _ : state) {
    sv.apply_cnot(0, qubits - 1);
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sv.dim()));
}
BENCHMARK(BM_GateKernelCnot)->DenseRange(4, 12, 2);

void BM_CircuitForward(benchmark::State& state) {
  const int qubits = static_cast<int>(state.range(0));
  const int layers = static_cast<int>(state.range(1));
  Rng rng(1);
  Circuit c(qubits);
  c.strongly_entangling_layers(layers, 0);
  const auto params = random_params(c.num_param_slots(), rng);
  for (auto _ : state) {
    Statevector sv = run_from_zero(c, params);
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
}
BENCHMARK(BM_CircuitForward)
    ->Args({6, 3})
    ->Args({7, 5})
    ->Args({9, 5})
    ->Args({10, 3});

// --- Gradient-method ablation: same circuit, three engines. -------------
void BM_GradientAdjoint(benchmark::State& state) {
  const int qubits = static_cast<int>(state.range(0));
  const int layers = static_cast<int>(state.range(1));
  Rng rng(2);
  Circuit c(qubits);
  c.strongly_entangling_layers(layers, 0);
  const auto params = random_params(c.num_param_slots(), rng);
  const auto diag = weighted_z_diagonal(
      qubits, std::vector<double>(static_cast<std::size_t>(qubits), 1.0));
  const Statevector initial(qubits);
  for (auto _ : state) {
    auto result = adjoint_gradient(c, params, initial, diag);
    benchmark::DoNotOptimize(result.param_grads.data());
  }
  state.counters["params"] = static_cast<double>(params.size());
}
BENCHMARK(BM_GradientAdjoint)->Args({6, 3})->Args({7, 5})->Args({9, 5});

void BM_GradientParameterShift(benchmark::State& state) {
  const int qubits = static_cast<int>(state.range(0));
  const int layers = static_cast<int>(state.range(1));
  Rng rng(2);
  Circuit c(qubits);
  c.strongly_entangling_layers(layers, 0);
  const auto params = random_params(c.num_param_slots(), rng);
  const auto diag = weighted_z_diagonal(
      qubits, std::vector<double>(static_cast<std::size_t>(qubits), 1.0));
  const Statevector initial(qubits);
  for (auto _ : state) {
    auto grads = parameter_shift_gradient(c, params, initial, diag);
    benchmark::DoNotOptimize(grads.data());
  }
  state.counters["params"] = static_cast<double>(params.size());
}
BENCHMARK(BM_GradientParameterShift)->Args({6, 3})->Args({7, 5});

void BM_GradientFiniteDifference(benchmark::State& state) {
  const int qubits = static_cast<int>(state.range(0));
  const int layers = static_cast<int>(state.range(1));
  Rng rng(2);
  Circuit c(qubits);
  c.strongly_entangling_layers(layers, 0);
  const auto params = random_params(c.num_param_slots(), rng);
  const auto diag = weighted_z_diagonal(
      qubits, std::vector<double>(static_cast<std::size_t>(qubits), 1.0));
  const Statevector initial(qubits);
  for (auto _ : state) {
    auto grads = finite_difference_gradient(c, params, initial, diag);
    benchmark::DoNotOptimize(grads.data());
  }
}
BENCHMARK(BM_GradientFiniteDifference)->Args({6, 3});

// --- Patched vs holistic: total forward cost of embedding 1024 features.
// One 10-qubit circuit (holistic) vs p circuits of log2(1024/p) qubits.
void BM_PatchedForward1024(benchmark::State& state) {
  const int patches = static_cast<int>(state.range(0));
  const int qubits = [&] {
    int q = 0;
    while ((1024 / patches) > (1 << q)) ++q;
    return q;
  }();
  Rng rng(3);
  Circuit c(qubits);
  c.strongly_entangling_layers(5, 0);
  const auto params = random_params(c.num_param_slots(), rng);
  std::vector<double> features(static_cast<std::size_t>(1024 / patches));
  for (double& f : features) f = rng.uniform(0, 5);
  for (auto _ : state) {
    for (int p = 0; p < patches; ++p) {
      Statevector sv = amplitude_embedding(features, qubits);
      run(c, params, sv);
      auto out = expectations_z(sv);
      benchmark::DoNotOptimize(out.data());
    }
  }
  state.counters["qubits_per_patch"] = qubits;
  state.counters["lsd"] = patches * qubits;
}
BENCHMARK(BM_PatchedForward1024)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
