// Simulator micro-benchmarks (google-benchmark) and the gradient-method
// ablation called out in DESIGN.md §4: adjoint differentiation vs
// parameter shift vs finite differences, gate-kernel throughput vs qubit
// count, and the patched-vs-holistic circuit cost that motivates the
// scalable architecture.
//
// In addition to the google-benchmark registrations, the binary always runs
// a CircuitExecutor A/B comparison — batched gate-fused execution vs the
// naive per-sample interpreter loop on the models' embedding+entangling
// circuit — and writes it as JSON (default BENCH_qsim_micro.json, override
// with --json=PATH; see the BENCH_*.json convention in README.md).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numbers>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "qsim/adjoint.h"
#include "qsim/backend.h"
#include "qsim/circuit.h"
#include "qsim/density_matrix.h"
#include "qsim/embedding.h"
#include "qsim/executor.h"
#include "qsim/kernels.h"
#include "qsim/observable.h"
#include "qsim/paramshift.h"

namespace {

using namespace sqvae;
using namespace sqvae::qsim;

std::vector<double> random_params(int count, Rng& rng) {
  std::vector<double> p(static_cast<std::size_t>(count));
  for (double& v : p) v = rng.uniform(-std::numbers::pi, std::numbers::pi);
  return p;
}

void BM_GateKernelSingleQubit(benchmark::State& state) {
  const int qubits = static_cast<int>(state.range(0));
  Statevector sv(qubits);
  const Mat2 ry = gate_matrix(GateKind::kRY, 0.3);
  for (auto _ : state) {
    sv.apply_single(ry, 0);
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sv.dim()));
}
BENCHMARK(BM_GateKernelSingleQubit)->DenseRange(4, 12, 2);

void BM_GateKernelCnot(benchmark::State& state) {
  const int qubits = static_cast<int>(state.range(0));
  Statevector sv(qubits);
  for (auto _ : state) {
    sv.apply_cnot(0, qubits - 1);
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sv.dim()));
}
BENCHMARK(BM_GateKernelCnot)->DenseRange(4, 12, 2);

void BM_CircuitForward(benchmark::State& state) {
  const int qubits = static_cast<int>(state.range(0));
  const int layers = static_cast<int>(state.range(1));
  Rng rng(1);
  Circuit c(qubits);
  c.strongly_entangling_layers(layers, 0);
  const auto params = random_params(c.num_param_slots(), rng);
  for (auto _ : state) {
    Statevector sv = run_from_zero(c, params);
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
}
BENCHMARK(BM_CircuitForward)
    ->Args({6, 3})
    ->Args({7, 5})
    ->Args({9, 5})
    ->Args({10, 3});

// --- Gradient-method ablation: same circuit, three engines. -------------
void BM_GradientAdjoint(benchmark::State& state) {
  const int qubits = static_cast<int>(state.range(0));
  const int layers = static_cast<int>(state.range(1));
  Rng rng(2);
  Circuit c(qubits);
  c.strongly_entangling_layers(layers, 0);
  const auto params = random_params(c.num_param_slots(), rng);
  const auto diag = weighted_z_diagonal(
      qubits, std::vector<double>(static_cast<std::size_t>(qubits), 1.0));
  const Statevector initial(qubits);
  for (auto _ : state) {
    auto result = adjoint_gradient(c, params, initial, diag);
    benchmark::DoNotOptimize(result.param_grads.data());
  }
  state.counters["params"] = static_cast<double>(params.size());
}
BENCHMARK(BM_GradientAdjoint)->Args({6, 3})->Args({7, 5})->Args({9, 5});

void BM_GradientParameterShift(benchmark::State& state) {
  const int qubits = static_cast<int>(state.range(0));
  const int layers = static_cast<int>(state.range(1));
  Rng rng(2);
  Circuit c(qubits);
  c.strongly_entangling_layers(layers, 0);
  const auto params = random_params(c.num_param_slots(), rng);
  const auto diag = weighted_z_diagonal(
      qubits, std::vector<double>(static_cast<std::size_t>(qubits), 1.0));
  const Statevector initial(qubits);
  for (auto _ : state) {
    auto grads = parameter_shift_gradient(c, params, initial, diag);
    benchmark::DoNotOptimize(grads.data());
  }
  state.counters["params"] = static_cast<double>(params.size());
}
BENCHMARK(BM_GradientParameterShift)->Args({6, 3})->Args({7, 5});

void BM_GradientFiniteDifference(benchmark::State& state) {
  const int qubits = static_cast<int>(state.range(0));
  const int layers = static_cast<int>(state.range(1));
  Rng rng(2);
  Circuit c(qubits);
  c.strongly_entangling_layers(layers, 0);
  const auto params = random_params(c.num_param_slots(), rng);
  const auto diag = weighted_z_diagonal(
      qubits, std::vector<double>(static_cast<std::size_t>(qubits), 1.0));
  const Statevector initial(qubits);
  for (auto _ : state) {
    auto grads = finite_difference_gradient(c, params, initial, diag);
    benchmark::DoNotOptimize(grads.data());
  }
}
BENCHMARK(BM_GradientFiniteDifference)->Args({6, 3});

// --- Patched vs holistic: total forward cost of embedding 1024 features.
// One 10-qubit circuit (holistic) vs p circuits of log2(1024/p) qubits.
void BM_PatchedForward1024(benchmark::State& state) {
  const int patches = static_cast<int>(state.range(0));
  const int qubits = [&] {
    int q = 0;
    while ((1024 / patches) > (1 << q)) ++q;
    return q;
  }();
  Rng rng(3);
  Circuit c(qubits);
  c.strongly_entangling_layers(5, 0);
  const auto params = random_params(c.num_param_slots(), rng);
  std::vector<double> features(static_cast<std::size_t>(1024 / patches));
  for (double& f : features) f = rng.uniform(0, 5);
  for (auto _ : state) {
    for (int p = 0; p < patches; ++p) {
      Statevector sv = amplitude_embedding(features, qubits);
      run(c, params, sv);
      auto out = expectations_z(sv);
      benchmark::DoNotOptimize(out.data());
    }
  }
  state.counters["qubits_per_patch"] = qubits;
  state.counters["lsd"] = patches * qubits;
}
BENCHMARK(BM_PatchedForward1024)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

// --- CircuitExecutor: batched gate-fused execution vs naive loop. -------

/// The models' hot-path circuit: RY angle embedding + L strongly
/// entangling layers, embedding slots varying per sample, weights shared.
struct BatchWorkload {
  Circuit circuit;
  std::vector<std::vector<double>> slots;  // one full slot vector per sample

  BatchWorkload(int qubits, int layers, int batch, Rng& rng)
      : circuit(qubits) {
    const int first_weight = circuit.angle_embedding(0);
    circuit.strongly_entangling_layers(layers, first_weight);
    const auto weights =
        random_params(circuit.num_param_slots() - first_weight, rng);
    slots.reserve(static_cast<std::size_t>(batch));
    for (int i = 0; i < batch; ++i) {
      std::vector<double> s = random_params(first_weight, rng);
      s.insert(s.end(), weights.begin(), weights.end());
      slots.push_back(std::move(s));
    }
  }
};

void BM_BatchNaiveLoop(benchmark::State& state) {
  const int qubits = static_cast<int>(state.range(0));
  const int batch = static_cast<int>(state.range(1));
  Rng rng(5);
  BatchWorkload w(qubits, 5, batch, rng);
  for (auto _ : state) {
    for (const auto& slots : w.slots) {
      Statevector sv = run_from_zero(w.circuit, slots);
      benchmark::DoNotOptimize(sv.amplitudes().data());
    }
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_BatchNaiveLoop)->Args({8, 64})->Args({10, 64});

void BM_BatchExecutorFused(benchmark::State& state) {
  const int qubits = static_cast<int>(state.range(0));
  const int batch = static_cast<int>(state.range(1));
  Rng rng(5);
  BatchWorkload w(qubits, 5, batch, rng);
  const CircuitExecutor exec(w.circuit);
  for (auto _ : state) {
    std::vector<Statevector> states(static_cast<std::size_t>(batch),
                                    Statevector(qubits));
    exec.run_batch(w.slots, states);
    benchmark::DoNotOptimize(states.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_BatchExecutorFused)->Args({8, 64})->Args({10, 64});

// --- Always-on A/B report written as BENCH_qsim_micro.json. -------------

struct AbRow {
  int qubits;
  int layers;
  int batch;
  std::size_t circuit_ops;
  std::size_t plan_ops;
  double naive_ms;
  double fused_ms;
  double speedup;
};

double median_ms(std::vector<double>& samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

AbRow run_ab(int qubits, int layers, int batch, int reps) {
  Rng rng(11);
  BatchWorkload w(qubits, layers, batch, rng);
  const CircuitExecutor exec(w.circuit);

  AbRow row{};
  row.qubits = qubits;
  row.layers = layers;
  row.batch = batch;
  row.circuit_ops = exec.num_circuit_ops();
  row.plan_ops = exec.num_plan_ops();

  // Warm-up plus correctness guard: both paths must agree.
  {
    std::vector<Statevector> states(static_cast<std::size_t>(batch),
                                    Statevector(qubits));
    exec.run_batch(w.slots, states);
    const Statevector ref = run_from_zero(w.circuit, w.slots[0]);
    double max_err = 0.0;
    for (std::size_t i = 0; i < ref.dim(); ++i) {
      max_err = std::max(max_err, std::abs(ref[i] - states[0][i]));
    }
    if (max_err > 1e-9) {
      std::fprintf(stderr, "executor/naive mismatch: %g\n", max_err);
      std::exit(1);
    }
  }

  std::vector<double> naive_samples, fused_samples;
  for (int r = 0; r < reps; ++r) {
    Stopwatch watch;
    for (const auto& slots : w.slots) {
      Statevector sv = run_from_zero(w.circuit, slots);
      benchmark::DoNotOptimize(sv.amplitudes().data());
    }
    naive_samples.push_back(watch.millis());

    // Statevector construction is timed on both sides: the naive loop pays
    // it inside run_from_zero, the fused path pays it here.
    watch.reset();
    std::vector<Statevector> states(static_cast<std::size_t>(batch),
                                    Statevector(qubits));
    exec.run_batch(w.slots, states);
    benchmark::DoNotOptimize(states.data());
    fused_samples.push_back(watch.millis());
  }
  row.naive_ms = median_ms(naive_samples);
  row.fused_ms = median_ms(fused_samples);
  row.speedup = row.naive_ms / row.fused_ms;
  return row;
}

// --- Trajectory backend vs exact density matrix: the noisy-regime A/B. ---
//
// Same estimate both ways — per-qubit <Z> of a noisy entangling circuit —
// once as a TrajectoryBackend Monte-Carlo run (O(trajectories * 2^n)) and
// once through the exact density-matrix channel (O(4^n) per gate). The
// trajectory side is the production path for noisy training; the density
// matrix is the correctness oracle it must outrun.

struct TrajAbRow {
  int qubits;
  int layers;
  double gate_error;
  int trajectories;
  double trajectory_ms;
  double density_ms;
  double speedup;
  double max_abs_diff;  // trajectory mean vs exact, all qubits
};

TrajAbRow run_trajectory_ab(int qubits, int layers, double gate_error,
                            int trajectories, int reps) {
  Rng rng(13);
  Circuit c(qubits);
  c.strongly_entangling_layers(layers, 0);
  const auto params = random_params(c.num_param_slots(), rng);
  const CircuitExecutor exec(c);
  const NoiseModel noise{gate_error};

  SimulationOptions options;
  options.backend = BackendKind::kTrajectory;
  options.shots = static_cast<std::size_t>(trajectories);
  options.noise = noise;
  options.seed = 17;

  TrajAbRow row{};
  row.qubits = qubits;
  row.layers = layers;
  row.gate_error = gate_error;
  row.trajectories = trajectories;

  std::vector<double> traj_ms, density_ms;
  std::vector<double> traj_z;
  std::vector<double> exact_z(static_cast<std::size_t>(qubits));
  for (int r = 0; r < reps; ++r) {
    Stopwatch watch;
    // Fresh backend per rep: every rep times the identical seeded run.
    TrajectoryBackend backend(options);
    traj_z = backend.expectations_z(exec, params);
    traj_ms.push_back(watch.millis());

    watch.reset();
    const DensityMatrix rho = run_density(c, params, noise);
    for (int q = 0; q < qubits; ++q) {
      exact_z[static_cast<std::size_t>(q)] = rho.expectation_z(q);
    }
    density_ms.push_back(watch.millis());
  }
  row.trajectory_ms = median_ms(traj_ms);
  row.density_ms = median_ms(density_ms);
  row.speedup = row.density_ms / row.trajectory_ms;
  for (int q = 0; q < qubits; ++q) {
    row.max_abs_diff =
        std::max(row.max_abs_diff,
                 std::abs(traj_z[static_cast<std::size_t>(q)] -
                          exact_z[static_cast<std::size_t>(q)]));
  }
  // Monte-Carlo sanity: the mean must sit within ~5 standard errors
  // (stderr <= 1/sqrt(M)) of the exact channel result.
  if (row.max_abs_diff >
      5.0 / std::sqrt(static_cast<double>(trajectories))) {
    std::fprintf(stderr, "trajectory/density mismatch: %g\n",
                 row.max_abs_diff);
    std::exit(1);
  }
  return row;
}

// --- Kernel A/B: scalar table vs the runtime-dispatched table. -----------
//
// Times each kernel class in isolation on a normalised random state:
// repeated application of a unitary (or phase table), so the state stays
// well-conditioned however many iterations run. On hosts where dispatch
// resolves to scalar (no AVX2, SQVAE_FORCE_SCALAR, or -DSQVAE_SIMD=OFF)
// both columns time the same code and the speedup sits at ~1.0x; the CI
// gate keys off the recorded "isa" field and only enforces the SIMD bar
// when the dispatcher actually picked avx2.

struct KernelAbRow {
  std::string gate;
  int qubits;
  double scalar_ms;
  double dispatched_ms;
  double speedup;
};

Mat2 bench_unitary(Rng& rng) {
  const Mat2 a = gate_matrix(GateKind::kRZ, rng.uniform(-3.0, 3.0));
  const Mat2 b = gate_matrix(GateKind::kRY, rng.uniform(-3.0, 3.0));
  return matmul2(a, b);
}

std::vector<cplx> random_normalized(int qubits, Rng& rng) {
  std::vector<cplx> amps(std::size_t{1} << qubits);
  double norm_sq = 0.0;
  for (cplx& a : amps) {
    a = cplx{rng.normal(), rng.normal()};
    norm_sq += std::norm(a);
  }
  const double inv = 1.0 / std::sqrt(norm_sq);
  for (cplx& a : amps) a *= inv;
  return amps;
}

KernelAbRow run_kernel_ab(const std::string& gate, int qubits, int reps) {
  Rng rng(19);
  const std::size_t dim = std::size_t{1} << qubits;
  const Mat2 m = bench_unitary(rng);
  const int mid = qubits / 2;

  kernels::DiagonalRun diag_run;
  std::vector<cplx> diag_table;
  if (gate == "diag") {
    for (int q = 0; q < qubits; ++q) {
      const Mat2 rz = gate_matrix(GateKind::kRZ, rng.uniform(-3.0, 3.0));
      diag_run.push_factor(q, rz[0], rz[3]);
    }
    diag_run.push_pair(0, qubits - 1, cplx{1.0, 0.0}, cplx{-1.0, 0.0});
    diag_run.push_pair(mid, mid + 1, cplx{1.0, 0.0}, cplx{-1.0, 0.0});
    kernels::build_diagonal_table(diag_run, qubits, diag_table);
  }

  auto apply = [&](const kernels::KernelTable& kt, cplx* amps) {
    if (gate == "single") {
      kt.apply_single(amps, dim, m, mid);
    } else if (gate == "single_t0") {
      kt.apply_single(amps, dim, m, 0);
    } else if (gate == "controlled") {
      kt.apply_controlled_single(amps, dim, m, qubits - 1, mid);
    } else if (gate == "cnot") {
      kt.apply_cnot(amps, dim, 0, qubits - 1);
    } else if (gate == "cz") {
      kt.apply_cz(amps, dim, 0, qubits - 1);
    } else if (gate == "swap") {
      kt.apply_swap(amps, dim, 0, qubits - 1);
    } else {
      kt.apply_diagonal_table(amps, dim, diag_table.data());
    }
  };

  // Enough applications per sample that the stopwatch resolution is noise.
  const int iters = static_cast<int>(
      std::max<std::size_t>(1, (std::size_t{1} << 21) / dim));
  std::vector<cplx> state = random_normalized(qubits, rng);

  // Correctness guard: one application through each table must agree.
  {
    std::vector<cplx> a = state;
    std::vector<cplx> b = state;
    apply(kernels::scalar_table(), a.data());
    apply(kernels::active(), b.data());
    double max_err = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      max_err = std::max(max_err, std::abs(a[i] - b[i]));
    }
    if (max_err > 1e-9) {
      std::fprintf(stderr, "kernel scalar/dispatched mismatch (%s): %g\n",
                   gate.c_str(), max_err);
      std::exit(1);
    }
  }

  std::vector<double> scalar_samples, dispatched_samples;
  for (int r = 0; r < reps; ++r) {
    std::vector<cplx> a = state;
    Stopwatch watch;
    for (int it = 0; it < iters; ++it) {
      apply(kernels::scalar_table(), a.data());
    }
    benchmark::DoNotOptimize(a.data());
    scalar_samples.push_back(watch.millis());

    std::vector<cplx> b = state;
    watch.reset();
    for (int it = 0; it < iters; ++it) {
      apply(kernels::active(), b.data());
    }
    benchmark::DoNotOptimize(b.data());
    dispatched_samples.push_back(watch.millis());
  }

  KernelAbRow row;
  row.gate = gate;
  row.qubits = qubits;
  row.scalar_ms = median_ms(scalar_samples);
  row.dispatched_ms = median_ms(dispatched_samples);
  row.speedup = row.scalar_ms / row.dispatched_ms;
  return row;
}

// --- Scaling: amplitude-parallel vs serial on one large state. -----------
//
// The 20+ qubit regime the cache-blocked executor targets: a single
// 5-layer strongly-entangling circuit on one statevector, run once with
// the serial kernel tables (threshold pinned to SIZE_MAX) and once with
// the amplitude-parallel table forced on (threshold 1). Both sides run the
// identical compiled plan — including the blocked schedule's reordering —
// so the amplitudes must agree bit for bit; `bit_identical` records that
// check and the CI gate enforces it unconditionally. The speedup column is
// only meaningful on multi-core hosts; the gate tiers off
// hardware_threads and records-without-enforcing on small runners.

struct ScalingRow {
  int qubits;
  int layers;
  bool blocked;
  std::size_t block_groups;
  std::size_t exchange_steps;
  double serial_ms;
  double parallel_ms;
  double speedup;
  bool bit_identical;
};

ScalingRow run_scaling(int qubits, int layers, int reps) {
  Rng rng(23);
  Circuit c(qubits);
  const int slot = c.angle_embedding(0);
  c.strongly_entangling_layers(layers, slot);
  const auto params = random_params(c.num_param_slots(), rng);
  const CircuitExecutor exec(c);

  ScalingRow row{};
  row.qubits = qubits;
  row.layers = layers;
  row.blocked = exec.blocked();
  row.block_groups = exec.num_block_groups();
  row.exchange_steps = exec.num_exchange_steps();

  const std::size_t saved = kernels::parallel_threshold();
  Statevector state(qubits);

  // Warm-up plus the bit-identity check: one run down each path.
  kernels::set_parallel_threshold(SIZE_MAX);
  state.reset();
  exec.run(params, state);
  const std::vector<cplx> serial_amps = state.amplitudes();
  kernels::set_parallel_threshold(1);
  state.reset();
  exec.run(params, state);
  row.bit_identical =
      std::memcmp(serial_amps.data(), state.amplitudes().data(),
                  serial_amps.size() * sizeof(cplx)) == 0;

  // Large states are expensive on one core: shrink the repetition count as
  // the state grows so the sweep stays bounded.
  const int row_reps =
      std::max(1, reps / (1 << std::max(0, qubits - 14)));
  std::vector<double> serial_samples, parallel_samples;
  for (int r = 0; r < row_reps; ++r) {
    kernels::set_parallel_threshold(SIZE_MAX);
    state.reset();
    Stopwatch watch;
    exec.run(params, state);
    benchmark::DoNotOptimize(state.amplitudes().data());
    serial_samples.push_back(watch.millis());

    kernels::set_parallel_threshold(1);
    state.reset();
    watch.reset();
    exec.run(params, state);
    benchmark::DoNotOptimize(state.amplitudes().data());
    parallel_samples.push_back(watch.millis());
  }
  kernels::set_parallel_threshold(saved);

  row.serial_ms = median_ms(serial_samples);
  row.parallel_ms = median_ms(parallel_samples);
  row.speedup = row.serial_ms / row.parallel_ms;
  return row;
}

void write_ab_json(const std::string& path, const std::vector<AbRow>& rows,
                   const std::vector<TrajAbRow>& traj_rows,
                   const std::vector<KernelAbRow>& kernel_rows,
                   const std::vector<ScalingRow>& scaling_rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  // hardware_threads drives the CI gate's core-count tiering: the naive
  // baseline shares the dispatched SIMD kernels, so on a single core the
  // remaining fusion-only win is ~1.5-2x, while with >= 4 cores the
  // OpenMP batch path pushes it well past 2x.
  std::fprintf(f,
               "{\n"
               "  \"benchmark\": \"qsim_micro/executor_batch_ab\",\n"
               "  \"unit\": \"ms\",\n"
               "  \"description\": \"CircuitExecutor::run_batch (gate-fused)"
               " vs naive per-sample qsim::run loop\",\n"
               "  \"hardware_threads\": %u,\n"
               "  \"rows\": [\n",
               std::thread::hardware_concurrency());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const AbRow& r = rows[i];
    std::fprintf(f,
                 "    {\"qubits\": %d, \"layers\": %d, \"batch\": %d, "
                 "\"circuit_ops\": %zu, \"plan_ops\": %zu, "
                 "\"naive_ms\": %.4f, \"fused_ms\": %.4f, "
                 "\"speedup\": %.3f}%s\n",
                 r.qubits, r.layers, r.batch, r.circuit_ops, r.plan_ops,
                 r.naive_ms, r.fused_ms, r.speedup,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n"
               "  \"trajectory_ab\": {\n"
               "    \"description\": \"TrajectoryBackend Monte-Carlo noisy"
               " <Z> estimate vs exact DensityMatrix channel\",\n"
               "    \"rows\": [\n");
  for (std::size_t i = 0; i < traj_rows.size(); ++i) {
    const TrajAbRow& r = traj_rows[i];
    std::fprintf(f,
                 "      {\"qubits\": %d, \"layers\": %d, "
                 "\"gate_error\": %.4f, \"trajectories\": %d, "
                 "\"trajectory_ms\": %.4f, \"density_ms\": %.4f, "
                 "\"speedup\": %.3f, \"max_abs_diff\": %.5f}%s\n",
                 r.qubits, r.layers, r.gate_error, r.trajectories,
                 r.trajectory_ms, r.density_ms, r.speedup, r.max_abs_diff,
                 i + 1 < traj_rows.size() ? "," : "");
  }
  std::fprintf(f,
               "    ]\n"
               "  },\n"
               "  \"kernel_ab\": {\n"
               "    \"description\": \"dispatched statevector kernels vs "
               "the portable scalar table, per gate class\",\n"
               "    \"isa\": \"%s\",\n"
               "    \"simd_compiled\": %s,\n"
               "    \"rows\": [\n",
               kernels::isa_name(kernels::active_isa()),
               kernels::compiled_with_simd() ? "true" : "false");
  for (std::size_t i = 0; i < kernel_rows.size(); ++i) {
    const KernelAbRow& r = kernel_rows[i];
    std::fprintf(f,
                 "      {\"gate\": \"%s\", \"qubits\": %d, "
                 "\"scalar_ms\": %.4f, \"dispatched_ms\": %.4f, "
                 "\"speedup\": %.3f}%s\n",
                 r.gate.c_str(), r.qubits, r.scalar_ms, r.dispatched_ms,
                 r.speedup, i + 1 < kernel_rows.size() ? "," : "");
  }
  std::fprintf(f,
               "    ]\n"
               "  },\n"
               "  \"scaling\": {\n"
               "    \"description\": \"amplitude-parallel vs serial "
               "execution of one 5-layer entangling circuit on a single "
               "large statevector (cache-blocked executor)\",\n"
               "    \"openmp\": %s,\n"
               "    \"rows\": [\n",
#ifdef _OPENMP
               "true"
#else
               "false"
#endif
  );
  for (std::size_t i = 0; i < scaling_rows.size(); ++i) {
    const ScalingRow& r = scaling_rows[i];
    std::fprintf(f,
                 "      {\"qubits\": %d, \"layers\": %d, "
                 "\"blocked\": %s, \"block_groups\": %zu, "
                 "\"exchange_steps\": %zu, \"serial_ms\": %.4f, "
                 "\"parallel_ms\": %.4f, \"speedup\": %.3f, "
                 "\"bit_identical\": %s}%s\n",
                 r.qubits, r.layers, r.blocked ? "true" : "false",
                 r.block_groups, r.exchange_steps, r.serial_ms,
                 r.parallel_ms, r.speedup,
                 r.bit_identical ? "true" : "false",
                 i + 1 < scaling_rows.size() ? "," : "");
  }
  std::fprintf(f,
               "    ]\n"
               "  }\n"
               "}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  // Peel off our flags before google-benchmark sees the arguments.
  std::string json_path = "BENCH_qsim_micro.json";
  bool skip_gbench = false;
  int reps = 15;  // --reps=N scales every A/B's repetition count (the CI
                  // PR lane uses a reduced value to stay fast)
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      reps = std::max(1, std::atoi(argv[i] + 7));
    } else if (std::strcmp(argv[i], "--ab_only") == 0) {
      skip_gbench = true;  // fast path for CI and the checked-in report
    } else {
      args.push_back(argv[i]);
    }
  }
  int gargc = static_cast<int>(args.size());
  benchmark::Initialize(&gargc, args.data());
  if (benchmark::ReportUnrecognizedArguments(gargc, args.data())) return 1;
  if (!skip_gbench) benchmark::RunSpecifiedBenchmarks();

  std::vector<AbRow> rows;
  for (const int qubits : {8, 9, 10}) {
    rows.push_back(run_ab(qubits, /*layers=*/5, /*batch=*/64, reps));
  }
  std::vector<TrajAbRow> traj_rows;
  for (const int qubits : {6, 8}) {
    traj_rows.push_back(run_trajectory_ab(qubits, /*layers=*/5,
                                          /*gate_error=*/0.002,
                                          /*trajectories=*/1000,
                                          std::max(3, reps / 2)));
  }
  std::vector<KernelAbRow> kernel_rows;
  for (const int qubits : {6, 8, 10, 12}) {
    for (const char* gate : {"single", "single_t0", "controlled", "cnot",
                             "cz", "swap", "diag"}) {
      kernel_rows.push_back(
          run_kernel_ab(gate, qubits, std::max(3, reps / 2)));
    }
  }
  std::vector<ScalingRow> scaling_rows;
  for (const int qubits : {12, 14, 16, 18, 20, 22}) {
    scaling_rows.push_back(run_scaling(qubits, /*layers=*/5, reps));
  }
  write_ab_json(json_path, rows, traj_rows, kernel_rows, scaling_rows);
  std::printf("== executor batch A/B (batch=64, 5 layers) ==\n");
  for (const AbRow& r : rows) {
    std::printf(
        "qubits=%2d  ops %zu -> %zu fused  naive %8.3f ms  fused %8.3f ms  "
        "speedup %.2fx\n",
        r.qubits, r.circuit_ops, r.plan_ops, r.naive_ms, r.fused_ms,
        r.speedup);
  }
  std::printf(
      "== trajectory backend vs density matrix (p=0.002, 1000 "
      "trajectories) ==\n");
  for (const TrajAbRow& r : traj_rows) {
    std::printf(
        "qubits=%2d  trajectory %8.3f ms  density %8.3f ms  speedup %.2fx  "
        "max |dZ| %.4f\n",
        r.qubits, r.trajectory_ms, r.density_ms, r.speedup, r.max_abs_diff);
  }
  std::printf("== kernel A/B (dispatched isa: %s) ==\n",
              kernels::isa_name(kernels::active_isa()));
  for (const KernelAbRow& r : kernel_rows) {
    std::printf(
        "%-10s qubits=%2d  scalar %8.3f ms  dispatched %8.3f ms  "
        "speedup %.2fx\n",
        r.gate.c_str(), r.qubits, r.scalar_ms, r.dispatched_ms, r.speedup);
  }
  std::printf("== scaling: amplitude-parallel vs serial (5 layers) ==\n");
  for (const ScalingRow& r : scaling_rows) {
    std::printf(
        "qubits=%2d  %s groups=%zu exch=%zu  serial %9.3f ms  parallel "
        "%9.3f ms  speedup %.2fx  bits %s\n",
        r.qubits, r.blocked ? "blocked " : "plain   ", r.block_groups,
        r.exchange_steps, r.serial_ms, r.parallel_ms, r.speedup,
        r.bit_identical ? "identical" : "DIFFER");
  }
  std::printf("(json written to %s)\n", json_path.c_str());
  benchmark::Shutdown();
  return 0;
}
