// Training-engine micro-benchmark: serial per-batch loop vs the
// data-parallel sharded engine on the digits scenario, written as JSON
// (default BENCH_train_micro.json, --json=PATH) for the CI bench-
// regression gate.
//
// Three measurements per model (identical seeds, fresh model each time):
//   serial_ms      — legacy engine (one tape per mini-batch)
//   sharded_1t_ms  — data-parallel engine pinned to 1 thread
//   sharded_ms     — data-parallel engine at --threads (default 8)
// plus a bitwise comparison of the 1-thread and N-thread sharded results,
// which must be identical (the engine's determinism contract).
//
// The recorded speedup is hardware-bound: on a single-core container the
// 8-thread row cannot beat serial, so the JSON carries hardware_threads
// and the CI gate only enforces the >= 2x threshold on runners with
// enough cores.
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "bench/bench_common.h"
#include "common/stopwatch.h"
#include "data/digits.h"
#include "models/checkpoint.h"
#include "models/classical.h"
#include "models/scalable_quantum.h"
#include "models/trainer.h"

namespace {

using namespace sqvae;

struct AbRow {
  std::string model;
  std::size_t samples = 0;
  std::size_t epochs = 0;
  std::size_t batch = 0;
  double serial_ms = 0.0;
  double sharded_1t_ms = 0.0;
  double sharded_ms = 0.0;
  int threads = 1;
  bool bit_identical = false;

  double speedup() const {
    return sharded_ms > 0.0 ? serial_ms / sharded_ms : 0.0;
  }
};

std::unique_ptr<models::Autoencoder> make_model(const std::string& name,
                                                std::uint64_t seed) {
  Rng rng(seed);
  if (name == "classical-ae") {
    return std::make_unique<models::ClassicalAe>(
        models::classical_config_64(6), rng);
  }
  models::ScalableQuantumConfig c;
  c.input_dim = 64;
  c.patches = 2;
  c.entangling_layers = 2;
  return models::make_sq_ae(c, rng);
}

/// Caps the global OpenMP team size: the "serial" baseline rows must not
/// silently profit from the executor's internal batch parallelism.
void set_global_threads(int threads) {
#ifdef _OPENMP
  omp_set_num_threads(threads);
#else
  (void)threads;
#endif
}

/// One full fit() under `config`; returns wall ms and the final parameters.
double run_fit(const std::string& model_name, const Matrix& data,
               const models::TrainConfig& config, std::string* params_text) {
  auto model = make_model(model_name, 42);
  models::Trainer trainer(*model, config);
  Rng fit_rng(43);
  Stopwatch watch;
  trainer.fit(data, nullptr, fit_rng);
  const double ms = watch.seconds() * 1e3;
  if (params_text != nullptr) *params_text = models::checkpoint_to_text(*model);
  return ms;
}

AbRow measure(const std::string& model_name, const Matrix& data,
              std::size_t epochs, std::size_t batch, int threads) {
  AbRow row;
  row.model = model_name;
  row.samples = data.rows();
  row.epochs = epochs;
  row.batch = batch;
  row.threads = threads;

  models::TrainConfig config;
  config.epochs = epochs;
  config.batch_size = batch;
  config.quantum_lr = 0.03;
  config.classical_lr = 0.01;

  // Serial baseline: the legacy engine on one thread end to end (its
  // executor batch loops would otherwise parallelise internally).
  set_global_threads(1);
  config.data_parallel = false;
  row.serial_ms = run_fit(model_name, data, config, nullptr);

  config.data_parallel = true;
  config.num_threads = 1;
  std::string params_1t;
  row.sharded_1t_ms = run_fit(model_name, data, config, &params_1t);

  set_global_threads(threads);
  config.num_threads = threads;
  std::string params_nt;
  row.sharded_ms = run_fit(model_name, data, config, &params_nt);

  row.bit_identical = params_1t == params_nt;
  return row;
}

void write_json(const std::string& path, const std::vector<AbRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"benchmark\": \"train_micro/epoch_ab\",\n"
      "  \"unit\": \"ms\",\n"
      "  \"description\": \"Trainer epoch throughput: legacy serial "
      "per-batch loop vs data-parallel sharded engine (digits scenario)\",\n"
      "  \"hardware_threads\": %u,\n"
      "  \"rows\": [\n",
      std::thread::hardware_concurrency());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const AbRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"model\": \"%s\", \"samples\": %zu, \"epochs\": %zu, "
        "\"batch\": %zu, \"serial_ms\": %.4f, \"sharded_1t_ms\": %.4f, "
        "\"sharded_ms\": %.4f, \"threads\": %d, \"speedup\": %.3f, "
        "\"bit_identical_1t_vs_nt\": %s}%s\n",
        r.model.c_str(), r.samples, r.epochs, r.batch, r.serial_ms,
        r.sharded_1t_ms, r.sharded_ms, r.threads, r.speedup(),
        r.bit_identical ? "true" : "false", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("(json written to %s)\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  bench::add_common_flags(flags);
  flags.add_string("json", "BENCH_train_micro.json", "JSON report path");
  flags.add_int("threads", 8, "sharded-engine thread count for the A/B");
  if (!bench::parse_or_die(flags, argc, argv)) return 0;
  const bench::BenchScale scale = bench::scale_from_flags(flags);

  const std::size_t samples = scale.paper ? 300 : 128;
  const std::size_t epochs = scale.paper ? 5 : 3;
  const int threads = static_cast<int>(flags.get_int("threads"));

  Rng data_rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  const auto digits = data::make_digits(samples, data_rng);
  const Matrix data = data::scale(digits.features, 1.0 / 16.0).samples;

  std::vector<AbRow> rows;
  rows.push_back(measure("sq-ae", data, epochs, scale.batch_size, threads));
  rows.push_back(
      measure("classical-ae", data, epochs, scale.batch_size, threads));

  Table table({"model", "samples", "epochs", "serial_ms", "sharded_1t_ms",
               "sharded_ms", "threads", "speedup", "bit_identical"});
  for (const AbRow& r : rows) {
    table.add_row({r.model, std::to_string(r.samples), std::to_string(r.epochs),
                   Table::fmt(r.serial_ms, 2), Table::fmt(r.sharded_1t_ms, 2),
                   Table::fmt(r.sharded_ms, 2), std::to_string(r.threads),
                   Table::fmt(r.speedup(), 3), r.bit_identical ? "yes" : "NO"});
  }
  bench::emit("Training-engine epoch A/B (digits)", table, flags);

  write_json(flags.get_string("json"), rows);

  for (const AbRow& r : rows) {
    if (!r.bit_identical) {
      std::fprintf(stderr, "DETERMINISM VIOLATION: %s 1-thread vs %d-thread "
                   "sharded results differ\n", r.model.c_str(), r.threads);
      return 1;
    }
  }
  return 0;
}
