// Fig. 4(a)/(b): train-MSE trajectories of the classical VAE vs the
// baseline quantum VAE on Digits and QM9 molecule matrices.
//
//  (a) original-scale data: the quantum model needs the hybrid output layer
//      (H-BQ-VAE) and shows no advantage over the classical VAE;
//  (b) L1-normalised data: the fully quantum model (F-BQ-VAE) applies and
//      learns in fewer epochs than the classical VAE.
#include <vector>

#include "bench_common.h"
#include "data/digits.h"
#include "data/molecule_dataset.h"
#include "models/baseline_quantum.h"
#include "models/classical.h"
#include "models/trainer.h"

using namespace sqvae;
using namespace sqvae::models;

namespace {

std::vector<double> train_curve(Autoencoder& model, const Matrix& data,
                                const bench::BenchScale& scale, double qlr,
                                double clr, Rng& rng) {
  TrainConfig config;
  config.epochs = scale.epochs;
  config.batch_size = scale.batch_size;
  config.quantum_lr = qlr;
  config.classical_lr = clr;
  Trainer trainer(model, config);
  std::vector<double> curve;
  for (const EpochStats& e : trainer.fit(data, nullptr, rng)) {
    curve.push_back(e.train_mse);
  }
  return curve;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  bench::add_common_flags(flags);
  if (!bench::parse_or_die(flags, argc, argv)) return 0;
  const bench::BenchScale scale = bench::scale_from_flags(flags);
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));

  Rng data_rng = rng.split();
  const auto digits = data::make_digits(scale.digits_count, data_rng);
  const auto qm9 = data::make_qm9_like(scale.qm9_count, 8, data_rng);
  const data::Dataset digits_raw = digits.features;
  const data::Dataset qm9_raw = qm9.features();
  const data::Dataset digits_norm = data::l1_normalize_rows(digits_raw);
  const data::Dataset qm9_norm = data::l1_normalize_rows(qm9_raw);

  struct Series {
    std::string name;
    std::vector<double> curve;
  };
  std::vector<Series> panel_a, panel_b;

  // Panel (a): original scale. H-BQ-VAE vs CVAE.
  {
    Rng r = rng.split();
    auto hbq = make_hbq_vae(64, 3, r);
    panel_a.push_back(
        {"BQ-VAE-Digits", train_curve(*hbq, digits_raw.samples, scale, 0.01,
                                      0.01, r)});
  }
  {
    Rng r = rng.split();
    ClassicalVae cvae(classical_config_64(6), r);
    panel_a.push_back({"CVAE-Digits", train_curve(cvae, digits_raw.samples,
                                                  scale, 0.01, 0.01, r)});
  }
  {
    Rng r = rng.split();
    auto hbq = make_hbq_vae(64, 3, r);
    panel_a.push_back({"BQ-VAE-QM9", train_curve(*hbq, qm9_raw.samples, scale,
                                                 0.01, 0.01, r)});
  }
  {
    Rng r = rng.split();
    ClassicalVae cvae(classical_config_64(6), r);
    panel_a.push_back({"CVAE-QM9", train_curve(cvae, qm9_raw.samples, scale,
                                               0.01, 0.01, r)});
  }

  // Panel (b): L1-normalised. F-BQ-VAE vs CVAE.
  {
    Rng r = rng.split();
    auto fbq = make_fbq_vae(64, 3, r);
    panel_b.push_back({"BQ-VAE-Digits", train_curve(*fbq, digits_norm.samples,
                                                    scale, 0.05, 0.01, r)});
  }
  {
    Rng r = rng.split();
    ClassicalVae cvae(classical_config_64(6), r);
    panel_b.push_back({"CVAE-Digits", train_curve(cvae, digits_norm.samples,
                                                  scale, 0.01, 0.01, r)});
  }
  {
    Rng r = rng.split();
    auto fbq = make_fbq_vae(64, 3, r);
    panel_b.push_back({"BQ-VAE-QM9", train_curve(*fbq, qm9_norm.samples,
                                                 scale, 0.05, 0.01, r)});
  }
  {
    Rng r = rng.split();
    ClassicalVae cvae(classical_config_64(6), r);
    panel_b.push_back({"CVAE-QM9", train_curve(cvae, qm9_norm.samples, scale,
                                               0.01, 0.01, r)});
  }

  auto emit_panel = [&](const char* title, const std::vector<Series>& series,
                        int precision) {
    std::vector<std::string> header = {"epoch"};
    for (const Series& s : series) header.push_back(s.name);
    Table table(header);
    for (std::size_t e = 0; e < scale.epochs; ++e) {
      std::vector<std::string> row = {std::to_string(e + 1)};
      for (const Series& s : series) {
        row.push_back(Table::fmt(s.curve[e], precision));
      }
      table.add_row(row);
    }
    bench::emit(title, table, flags);
  };

  emit_panel("Fig. 4(a): train MSE, original-scale Digits & QM9", panel_a, 4);
  emit_panel("Fig. 4(b): train MSE, L1-normalized Digits & QM9 (x1e-3 scale)",
             panel_b, 8);

  // Shape check the paper reports for panel (b): on normalised data the
  // fully quantum model is already near its loss floor after the first
  // epoch, while the classical VAE needs several epochs to catch up —
  // "BQ-VAE/AE even learns faster ... in terms of the number of training
  // epochs". Report each model's first-epoch loss and the number of epochs
  // the classical model needs to undercut the quantum model's epoch-1 loss.
  auto epochs_to_reach = [](const std::vector<double>& c, double target) {
    for (std::size_t e = 0; e < c.size(); ++e) {
      if (c[e] <= target) return std::to_string(e + 1);
    }
    return std::string(">") + std::to_string(c.size());
  };
  std::printf(
      "normalized Digits: BQ-VAE epoch-1 MSE %.2e; CVAE epoch-1 MSE %.2e; "
      "CVAE reaches BQ-VAE's epoch-1 level at epoch %s\n",
      panel_b[0].curve.front(), panel_b[1].curve.front(),
      epochs_to_reach(panel_b[1].curve, panel_b[0].curve.front()).c_str());
  std::printf(
      "normalized QM9:    BQ-VAE epoch-1 MSE %.2e; CVAE epoch-1 MSE %.2e; "
      "CVAE reaches BQ-VAE's epoch-1 level at epoch %s\n",
      panel_b[2].curve.front(), panel_b[3].curve.front(),
      epochs_to_reach(panel_b[3].curve, panel_b[2].curve.front()).c_str());
  return 0;
}
