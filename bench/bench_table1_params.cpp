// Table I: trainable-parameter comparison between the classical VAE(AE) and
// the baseline quantum autoencoders F-BQ-VAE(AE) and H-BQ-VAE(AE) on the
// 64-dimensional (8x8) datasets.
//
// Paper values: quantum 0/108/108; classical 5694(5610)/84(0)/4386(4202)
// [sic: 4286/4202]; this bench prints the counts measured from the actual
// modules so any residual architecture ambiguity in the paper is visible
// rather than hidden (EXPERIMENTS.md discusses the deltas).
#include "bench_common.h"
#include "common/rng.h"
#include "models/baseline_quantum.h"
#include "models/classical.h"

using namespace sqvae;
using namespace sqvae::models;

int main(int argc, char** argv) {
  Flags flags;
  bench::add_common_flags(flags);
  if (!bench::parse_or_die(flags, argc, argv)) return 0;
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));

  ClassicalVae vae(classical_config_64(6), rng);
  ClassicalAe ae(classical_config_64(6), rng);
  auto fbq_vae = make_fbq_vae(64, 3, rng);
  auto fbq_ae = make_fbq_ae(64, 3, rng);
  auto hbq_vae = make_hbq_vae(64, 3, rng);
  auto hbq_ae = make_hbq_ae(64, 3, rng);

  auto fmt_pair = [](std::size_t v, std::size_t a) {
    return std::to_string(v) + " (" + std::to_string(a) + ")";
  };

  Table table({"Parameter Type", "VAE(AE)", "F-BQ-VAE(AE)", "H-BQ-VAE(AE)"});
  table.add_row({"Quantum", fmt_pair(vae.num_quantum_parameters(),
                                     ae.num_quantum_parameters()),
                 fmt_pair(fbq_vae->num_quantum_parameters(),
                          fbq_ae->num_quantum_parameters()),
                 fmt_pair(hbq_vae->num_quantum_parameters(),
                          hbq_ae->num_quantum_parameters())});
  table.add_row({"Classical", fmt_pair(vae.num_classical_parameters(),
                                       ae.num_classical_parameters()),
                 fmt_pair(fbq_vae->num_classical_parameters(),
                          fbq_ae->num_classical_parameters()),
                 fmt_pair(hbq_vae->num_classical_parameters(),
                          hbq_ae->num_classical_parameters())});
  auto total = [](Autoencoder& m) {
    return m.num_quantum_parameters() + m.num_classical_parameters();
  };
  table.add_row({"Total", fmt_pair(total(vae), total(ae)),
                 fmt_pair(total(*fbq_vae), total(*fbq_ae)),
                 fmt_pair(total(*hbq_vae), total(*hbq_ae))});

  bench::emit("Table I: trainable parameter counts (measured)", table, flags);
  std::printf(
      "paper reference:\n"
      "  Quantum    0 (0)        108 (108)   108 (108)\n"
      "  Classical  5694 (5610)  84 (0)      4286 (4202)\n"
      "  Total      5694 (5610)  192 (108)   4394 (4310)\n");
  return 0;
}
