// Fig. 6: quantum-layer-depth ablation. SQ-AE (8 patches, LSD 56) is
// trained on PDBbind ligands with 1..9 strongly entangling layers; train
// and test reconstruction MSE are reported at two checkpoints (paper:
// epochs 5 and 10). The paper finds a U-shape: too few layers lack
// expressive power, too many create spurious local minima; 5 layers wins.
#include "bench_common.h"
#include "data/molecule_dataset.h"
#include "models/scalable_quantum.h"
#include "models/trainer.h"

using namespace sqvae;
using namespace sqvae::models;

int main(int argc, char** argv) {
  Flags flags;
  bench::add_common_flags(flags);
  flags.add_int("patches", 8, "circuit patches for the SQ-AE");
  flags.add_int("max_layers", 9, "sweep upper bound (paper: 9)");
  if (!bench::parse_or_die(flags, argc, argv)) return 0;
  const bench::BenchScale scale = bench::scale_from_flags(flags);
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));

  Rng data_rng = rng.split();
  const auto ligands =
      data::make_pdbbind_like(scale.pdbbind_count, 32, data_rng);
  Rng split_rng = rng.split();
  const data::TrainTestSplit split =
      data::train_test_split(ligands.features(), 0.15, split_rng);

  const std::size_t mid_epoch = scale.sweep_epochs;      // paper: 5
  const std::size_t final_epoch = 2 * scale.sweep_epochs;  // paper: 10

  Table table({"layers", "train@" + std::to_string(mid_epoch),
               "test@" + std::to_string(mid_epoch),
               "train@" + std::to_string(final_epoch),
               "test@" + std::to_string(final_epoch)});

  double best_test = 1e30;
  int best_layers = 0;
  for (int layers = 1; layers <= flags.get_int("max_layers"); ++layers) {
    Rng r = rng.split();
    ScalableQuantumConfig c;
    c.input_dim = 1024;
    c.patches = static_cast<int>(flags.get_int("patches"));
    c.entangling_layers = layers;
    auto model = make_sq_ae(c, r);

    TrainConfig config;
    config.epochs = final_epoch;
    config.batch_size = scale.batch_size;
    config.quantum_lr = 0.001;  // paper: lr 0.001 for the depth study
    config.classical_lr = 0.001;
    const auto history =
        Trainer(*model, config)
            .fit(split.train.samples, &split.test.samples, r);

    const EpochStats& mid = history[mid_epoch - 1];
    const EpochStats& fin = history[final_epoch - 1];
    table.add_row({std::to_string(layers), Table::fmt(mid.train_mse),
                   Table::fmt(mid.test_mse), Table::fmt(fin.train_mse),
                   Table::fmt(fin.test_mse)});
    if (fin.test_mse < best_test) {
      best_test = fin.test_mse;
      best_layers = layers;
    }
  }
  bench::emit("Fig. 6: SQ-AE train/test MSE vs quantum layer depth", table,
              flags);
  std::printf("best test MSE at %d layers (paper: 5)\n", best_layers);
  return 0;
}
