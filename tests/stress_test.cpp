// Stress and scale tests: deeper graphs, wider registers, longer chains —
// cheap enough for CI but past the sizes the unit suites use.
#include <gtest/gtest.h>

#include <cmath>

#include "autodiff/tape.h"
#include "common/rng.h"
#include "nn/linear.h"
#include "nn/optim.h"
#include "qsim/adjoint.h"
#include "qsim/circuit.h"
#include "qsim/observable.h"

namespace sqvae {
namespace {

TEST(Stress, DeepAutodiffChainGradientIsExact) {
  // f(x) = tanh(tanh(...tanh(x)...)) 60 deep; d/dx = prod (1 - t_i^2).
  ad::Parameter x(Matrix{{0.5}});
  ad::Tape tape;
  ad::Var v = tape.leaf(&x);
  for (int i = 0; i < 60; ++i) v = tape.tanh_(v);
  ad::Var loss = tape.mse_loss(v, Matrix(1, 1));
  x.zero_grad();
  tape.backward(loss);

  double value = 0.5;
  double grad = 1.0;
  for (int i = 0; i < 60; ++i) {
    value = std::tanh(value);
    grad *= 1.0 - value * value;
  }
  // loss = value^2, dloss/dx = 2 * value * grad.
  EXPECT_NEAR(x.grad(0, 0), 2.0 * value * grad, 1e-12);
}

TEST(Stress, WideGraphManyBranchesAccumulate) {
  // loss = mean((sum of 64 copies of x)^2) exercises fan-out accumulation.
  ad::Parameter x(Matrix{{0.25}});
  ad::Tape tape;
  ad::Var v = tape.leaf(&x);
  ad::Var acc = v;
  for (int i = 1; i < 64; ++i) acc = tape.add(acc, v);
  ad::Var loss = tape.mse_loss(acc, Matrix(1, 1));
  x.zero_grad();
  tape.backward(loss);
  // d/dx (64 x)^2 = 2 * 64x * 64.
  EXPECT_NEAR(x.grad(0, 0), 2.0 * 64.0 * 0.25 * 64.0, 1e-9);
}

TEST(Stress, TwelveQubitCircuitRemainsExact) {
  Rng rng(1);
  qsim::Circuit c(12);
  c.strongly_entangling_layers(2, 0);
  std::vector<double> params(static_cast<std::size_t>(c.num_param_slots()));
  for (double& p : params) p = rng.uniform(-3, 3);
  const qsim::Statevector s = qsim::run_from_zero(c, params);
  EXPECT_TRUE(s.is_normalized(1e-9));
  double psum = 0.0;
  for (double p : s.probabilities()) psum += p;
  EXPECT_NEAR(psum, 1.0, 1e-9);
}

TEST(Stress, AdjointOnTenQubitsStillMatchesFiniteDifferenceSpotCheck) {
  Rng rng(2);
  qsim::Circuit c(10);
  c.strongly_entangling_layers(3, 0);
  std::vector<double> params(static_cast<std::size_t>(c.num_param_slots()));
  for (double& p : params) p = rng.uniform(-3, 3);
  std::vector<double> cot(10);
  for (double& v : cot) v = rng.uniform(-1, 1);
  const auto diag = qsim::weighted_z_diagonal(10, cot);
  const qsim::Statevector initial(10);
  const auto adj = qsim::adjoint_gradient(c, params, initial, diag);

  // Spot-check 6 random slots against central differences.
  const double eps = 1e-5;
  for (int k = 0; k < 6; ++k) {
    const std::size_t i = rng.uniform_index(params.size());
    std::vector<double> p = params;
    p[i] += eps;
    qsim::Statevector plus = initial;
    qsim::run(c, p, plus);
    p[i] -= 2 * eps;
    qsim::Statevector minus = initial;
    qsim::run(c, p, minus);
    const double fd =
        (plus.expectation_diag(diag) - minus.expectation_diag(diag)) /
        (2 * eps);
    EXPECT_NEAR(adj.param_grads[i], fd, 1e-6) << "slot " << i;
  }
}

TEST(Stress, LongAdamRunStaysFiniteAtHighLearningRate) {
  Rng rng(3);
  nn::Mlp mlp({8, 16, 8}, nn::Activation::kTanh, rng);
  Matrix x(16, 8);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = rng.uniform(-1, 1);
  nn::Adam opt({nn::ParamGroup{mlp.parameters(), 0.3}});
  double last = 0.0;
  for (int step = 0; step < 300; ++step) {
    ad::Tape tape;
    ad::Var loss = tape.mse_loss(mlp.forward(tape, tape.constant(x)), x);
    opt.zero_grad();
    tape.backward(loss);
    opt.step();
    last = tape.value(loss)(0, 0);
    ASSERT_TRUE(std::isfinite(last)) << "step " << step;
  }
  EXPECT_TRUE(std::isfinite(last));
}

TEST(Stress, RngStreamsRemainHealthyOverMillionsOfDraws) {
  Rng rng(4);
  // Chi-square-ish sanity on byte frequencies of 1e6 draws.
  int buckets[16] = {0};
  const int n = 1000000;
  for (int i = 0; i < n; ++i) {
    ++buckets[rng() & 0xF];
  }
  for (int b = 0; b < 16; ++b) {
    EXPECT_NEAR(buckets[b], n / 16, n / 16 / 10) << b;
  }
}

TEST(Stress, TapeReusePatternManyForwardBackwardCycles) {
  // The training loop builds a fresh tape per batch; make sure repeated
  // cycles neither leak gradients nor corrupt parameters.
  Rng rng(5);
  nn::Linear layer(4, 4, rng);
  Matrix x(2, 4, 0.5);
  nn::Adam opt({nn::ParamGroup{layer.parameters(), 0.01}});
  double first = 0.0, last = 0.0;
  for (int cycle = 0; cycle < 200; ++cycle) {
    ad::Tape tape;
    ad::Var loss =
        tape.mse_loss(layer.forward(tape, tape.constant(x)), Matrix(2, 4, 1.0));
    if (cycle == 0) first = tape.value(loss)(0, 0);
    last = tape.value(loss)(0, 0);
    opt.zero_grad();
    tape.backward(loss);
    opt.step();
  }
  EXPECT_LT(last, first);
  EXPECT_LT(last, 1e-3);
}

}  // namespace
}  // namespace sqvae
