#include "qsim/statevector.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.h"
#include "qsim/gates.h"

namespace sqvae::qsim {
namespace {

constexpr double kTol = 1e-12;

TEST(Statevector, InitializesToZeroState) {
  Statevector s(3);
  EXPECT_EQ(s.num_qubits(), 3);
  EXPECT_EQ(s.dim(), 8u);
  EXPECT_NEAR(std::abs(s[0] - cplx{1.0, 0.0}), 0.0, kTol);
  for (std::size_t i = 1; i < s.dim(); ++i) {
    EXPECT_NEAR(std::abs(s[i]), 0.0, kTol);
  }
  EXPECT_TRUE(s.is_normalized());
}

TEST(Statevector, ConstructFromAmplitudes) {
  const double r = 1.0 / std::numbers::sqrt2;
  Statevector s({cplx{r, 0}, cplx{0, 0}, cplx{0, 0}, cplx{0, r}});
  EXPECT_EQ(s.num_qubits(), 2);
  EXPECT_TRUE(s.is_normalized());
}

TEST(Statevector, PauliXFlipsTargetBit) {
  Statevector s(2);
  s.apply_single(gate_matrix(GateKind::kX, 0), 0);
  EXPECT_NEAR(std::abs(s[1] - cplx{1.0, 0.0}), 0.0, kTol);  // |01> (qubit0=1)
  s.reset();
  s.apply_single(gate_matrix(GateKind::kX, 0), 1);
  EXPECT_NEAR(std::abs(s[2] - cplx{1.0, 0.0}), 0.0, kTol);  // |10>
}

TEST(Statevector, HadamardCreatesUniformSuperposition) {
  Statevector s(1);
  s.apply_single(gate_matrix(GateKind::kH, 0), 0);
  const double r = 1.0 / std::numbers::sqrt2;
  EXPECT_NEAR(s[0].real(), r, kTol);
  EXPECT_NEAR(s[1].real(), r, kTol);
  EXPECT_NEAR(s.expectation_z(0), 0.0, kTol);
}

TEST(Statevector, CnotEntanglesIntoBellState) {
  Statevector s(2);
  s.apply_single(gate_matrix(GateKind::kH, 0), 0);
  s.apply_cnot(0, 1);
  const double half = 0.5;
  auto p = s.probabilities();
  EXPECT_NEAR(p[0], half, kTol);  // |00>
  EXPECT_NEAR(p[3], half, kTol);  // |11>
  EXPECT_NEAR(p[1] + p[2], 0.0, kTol);
}

TEST(Statevector, CnotOnlyActsWhenControlSet) {
  Statevector s(2);
  s.apply_cnot(0, 1);  // control qubit 0 is |0>: no-op
  EXPECT_NEAR(std::abs(s[0] - cplx{1.0, 0.0}), 0.0, kTol);
  s.apply_single(gate_matrix(GateKind::kX, 0), 0);  // |01>
  s.apply_cnot(0, 1);                               // -> |11>
  EXPECT_NEAR(std::abs(s[3] - cplx{1.0, 0.0}), 0.0, kTol);
}

TEST(Statevector, CzFlipsPhaseOf11) {
  Statevector s(2);
  s.apply_single(gate_matrix(GateKind::kH, 0), 0);
  s.apply_single(gate_matrix(GateKind::kH, 0), 1);
  s.apply_cz(0, 1);
  EXPECT_NEAR(s[3].real(), -0.5, kTol);
  EXPECT_NEAR(s[0].real(), 0.5, kTol);
}

TEST(Statevector, SwapExchangesQubits) {
  Statevector s(2);
  s.apply_single(gate_matrix(GateKind::kX, 0), 0);  // |01>
  s.apply_swap(0, 1);                               // |10>
  EXPECT_NEAR(std::abs(s[2] - cplx{1.0, 0.0}), 0.0, kTol);
}

TEST(Statevector, SwapEqualsThreeCnots) {
  Rng rng(7);
  Statevector a(3);
  // Random product state via RY rotations.
  for (int q = 0; q < 3; ++q) {
    a.apply_single(gate_matrix(GateKind::kRY, rng.uniform(-3, 3)), q);
  }
  Statevector b = a;
  a.apply_swap(0, 2);
  b.apply_cnot(0, 2);
  b.apply_cnot(2, 0);
  b.apply_cnot(0, 2);
  for (std::size_t i = 0; i < a.dim(); ++i) {
    EXPECT_NEAR(std::abs(a[i] - b[i]), 0.0, 1e-12);
  }
}

TEST(Statevector, ExpectationZSignConvention) {
  Statevector s(1);
  EXPECT_NEAR(s.expectation_z(0), 1.0, kTol);  // |0> -> +1
  s.apply_single(gate_matrix(GateKind::kX, 0), 0);
  EXPECT_NEAR(s.expectation_z(0), -1.0, kTol);  // |1> -> -1
}

TEST(Statevector, ExpectationZOfRyRotation) {
  // RY(theta)|0> has <Z> = cos(theta).
  for (double theta : {0.0, 0.3, 1.2, std::numbers::pi / 2, 2.8}) {
    Statevector s(1);
    s.apply_single(gate_matrix(GateKind::kRY, theta), 0);
    EXPECT_NEAR(s.expectation_z(0), std::cos(theta), 1e-12) << theta;
  }
}

TEST(Statevector, ExpectationDiagMatchesManualSum) {
  Statevector s(2);
  s.apply_single(gate_matrix(GateKind::kH, 0), 0);
  s.apply_single(gate_matrix(GateKind::kRY, 0.7), 1);
  const std::vector<double> diag = {0.5, -1.0, 2.0, 3.0};
  const auto p = s.probabilities();
  double expect = 0.0;
  for (std::size_t i = 0; i < 4; ++i) expect += diag[i] * p[i];
  EXPECT_NEAR(s.expectation_diag(diag), expect, kTol);
}

TEST(Statevector, InnerProduct) {
  Statevector a(1), b(1);
  b.apply_single(gate_matrix(GateKind::kH, 0), 0);
  const cplx ip = Statevector::inner(a, b);
  EXPECT_NEAR(ip.real(), 1.0 / std::numbers::sqrt2, kTol);
  EXPECT_NEAR(ip.imag(), 0.0, kTol);
}

// Property: random circuits of unitary gates preserve the norm.
class NormPreservation : public ::testing::TestWithParam<int> {};

TEST_P(NormPreservation, RandomCircuitKeepsUnitNorm) {
  const int num_qubits = GetParam();
  Rng rng(1000 + static_cast<std::uint64_t>(num_qubits));
  Statevector s(num_qubits);
  const GateKind one_qubit[] = {GateKind::kRX, GateKind::kRY, GateKind::kRZ,
                                GateKind::kH,  GateKind::kX,  GateKind::kY,
                                GateKind::kZ,  GateKind::kS,  GateKind::kT};
  for (int step = 0; step < 60; ++step) {
    const int t = static_cast<int>(rng.uniform_index(
        static_cast<std::uint64_t>(num_qubits)));
    if (num_qubits >= 2 && rng.bernoulli(0.3)) {
      int c = t;
      while (c == t) {
        c = static_cast<int>(
            rng.uniform_index(static_cast<std::uint64_t>(num_qubits)));
      }
      switch (rng.uniform_int(0, 2)) {
        case 0: s.apply_cnot(c, t); break;
        case 1: s.apply_cz(c, t); break;
        default:
          s.apply_controlled_single(
              gate_matrix(GateKind::kCRZ, rng.uniform(-3, 3)), c, t);
      }
    } else {
      const GateKind k = one_qubit[rng.uniform_index(9)];
      s.apply_single(gate_matrix(k, rng.uniform(-3, 3)), t);
    }
  }
  EXPECT_TRUE(s.is_normalized(1e-9));
  double psum = 0.0;
  for (double p : s.probabilities()) psum += p;
  EXPECT_NEAR(psum, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Widths, NormPreservation,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8, 10));

}  // namespace
}  // namespace sqvae::qsim
